package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pprl"
)

// writeSample writes a small Adult CSV and returns its path.
func writeSample(t *testing.T, n int) string {
	t.Helper()
	schema := pprl.AdultSchema()
	d := pprl.GenerateAdult(schema, n, 5)
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnonymizerByName(t *testing.T) {
	for _, name := range []string{"entropy", "TDS", "DataFly", "mondrian"} {
		if _, err := anonymizerByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := anonymizerByName("bogus"); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestRunListing(t *testing.T) {
	in := writeSample(t, 80)
	var buf bytes.Buffer
	if err := run(&buf, "", in, 8, "entropy", "age,workclass,education", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# method=Entropy k=8 records=80") {
		t.Errorf("header = %q", strings.SplitN(out, "\n", 2)[0])
	}
	if strings.Count(out, "\n") < 2 {
		t.Error("expected at least one class line")
	}
}

func TestRunViewFormat(t *testing.T) {
	in := writeSample(t, 80)
	var buf bytes.Buffer
	if err := run(&buf, "", in, 8, "entropy", "age,workclass", true); err != nil {
		t.Fatal(err)
	}
	view, err := pprl.ReadView(&buf, pprl.AdultSchema())
	if err != nil {
		t.Fatalf("emitted view does not parse: %v", err)
	}
	if view.K != 8 || view.NumSequences() == 0 {
		t.Errorf("parsed view: k=%d sequences=%d", view.K, view.NumSequences())
	}
}

func TestRunWithCustomSchemaFile(t *testing.T) {
	// Export the Adult schema to disk and anonymize through -schema: the
	// custom-schema path must behave identically to the built-in.
	in := writeSample(t, 60)
	dir := t.TempDir()
	if err := pprl.SaveSchema(dir, pprl.AdultSchema()); err != nil {
		t.Fatal(err)
	}
	var builtin, custom bytes.Buffer
	if err := run(&builtin, "", in, 8, "entropy", "age,workclass", false); err != nil {
		t.Fatal(err)
	}
	if err := run(&custom, filepath.Join(dir, "schema.txt"), in, 8, "entropy", "age,workclass", false); err != nil {
		t.Fatal(err)
	}
	if builtin.String() != custom.String() {
		t.Error("custom schema file produced a different anonymization")
	}
	if err := run(nil, "/nonexistent/schema.txt", in, 8, "entropy", "age", false); err == nil {
		t.Error("missing schema manifest should fail")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, "", "", 8, "entropy", "age", false); err == nil {
		t.Error("missing -in should fail")
	}
	if err := run(nil, "", "/nonexistent.csv", 8, "entropy", "age", false); err == nil {
		t.Error("missing file should fail")
	}
	in := writeSample(t, 20)
	if err := run(nil, "", in, 8, "bogus", "age", false); err == nil {
		t.Error("bad method should fail")
	}
	if err := run(nil, "", in, 8, "entropy", "bogus", false); err == nil {
		t.Error("bad QID should fail")
	}
	if err := run(nil, "", in, 0, "entropy", "age", false); err == nil {
		t.Error("k=0 should fail")
	}
}
