// Command pprl-anon k-anonymizes the quasi-identifiers of an Adult-schema
// CSV and prints the published view: one line per equivalence class with
// its size and generalization sequence. This is exactly the artifact a
// data holder would exchange in the hybrid protocol's blocking step.
//
// Usage:
//
//	pprl-anon -in data.csv -k 32 -method entropy
//	pprl-anon -in data.csv -k 8 -method datafly -qids age,workclass,education
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pprl"
	"pprl/internal/anonymize"
	"pprl/internal/cliutil"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV (Adult schema; required)")
		k          = flag.Int("k", 32, "anonymity requirement")
		method     = flag.String("method", "entropy", "anonymization method: entropy, tds, datafly, mondrian")
		qids       = flag.String("qids", strings.Join(pprl.DefaultAdultQIDs(), ","), "comma-separated quasi-identifier attributes")
		schemaPath = flag.String("schema", "", "schema manifest path (default: built-in Adult schema)")
		asView     = flag.Bool("view", false, "emit the machine-readable view exchange format (pprl-block input) instead of the human-readable listing")
	)
	flag.Parse()
	if err := run(os.Stdout, *schemaPath, *in, *k, *method, *qids, *asView); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-anon:", err)
		os.Exit(1)
	}
}

func anonymizerByName(name string) (pprl.Anonymizer, error) {
	switch strings.ToLower(name) {
	case "entropy":
		return pprl.NewMaxEntropy(), nil
	case "tds":
		return pprl.NewTDS(), nil
	case "datafly":
		return pprl.NewDataFly(), nil
	case "mondrian":
		return pprl.NewMondrian(), nil
	default:
		return nil, fmt.Errorf("unknown method %q (want entropy, tds, datafly, or mondrian)", name)
	}
}

func run(out io.Writer, schemaPath, in string, k int, method, qidList string, asView bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	anon, err := anonymizerByName(method)
	if err != nil {
		return err
	}
	schema, err := loadSchema(schemaPath)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := pprl.ReadCSV(schema, bufio.NewReader(f))
	if err != nil {
		return err
	}
	qids, err := schema.Resolve(strings.Split(qidList, ","))
	if err != nil {
		return err
	}
	view, err := anon.Anonymize(data, qids, k)
	if err != nil {
		return err
	}
	if asView {
		return anonymize.WriteView(out, schema, view)
	}
	w := bufio.NewWriter(out)
	defer w.Flush()
	fmt.Fprintf(w, "# method=%s k=%d records=%d sequences=%d min-class=%d avg-class=%.1f suppressed=%d\n",
		view.Method, view.K, data.Len(), view.NumSequences(), view.MinClassSize(),
		view.AvgClassSize(), len(view.Suppressed))
	for _, c := range view.Classes {
		fmt.Fprintf(w, "%d\t%s\n", c.Size(), c.Sequence)
	}
	return nil
}

// loadSchema resolves the -schema flag.
func loadSchema(path string) (*pprl.Schema, error) {
	return cliutil.LoadSchemaOrAdult(path)
}
