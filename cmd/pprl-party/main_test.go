package main

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pprl"
)

func writePairCSVs(t *testing.T) (a, b string) {
	t.Helper()
	schema := pprl.AdultSchema()
	full := pprl.GenerateAdult(schema, 90, 3)
	da, db := pprl.SplitOverlap(full, rand.New(rand.NewSource(4)))
	dir := t.TempDir()
	write := func(d *pprl.Dataset, name string) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := d.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write(da, "a.csv"), write(db, "b.csv")
}

// freePort reserves a localhost port and returns its address.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestThreePartyOverTCP runs the complete distributed deployment: three
// role functions over real TCP sockets on localhost, with real (256-bit)
// Paillier crypto.
func TestThreePartyOverTCP(t *testing.T) {
	aCSV, bCSV := writePairCSVs(t)
	queryAddr := freePort(t)
	peerAddr := freePort(t)

	errs := make(chan error, 2)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runQuery(&out, queryOptions{
			listen:      queryAddr,
			qids:        strings.Join(pprl.DefaultAdultQIDs(), ","),
			theta:       0.05,
			allowance:   0.002,
			heurName:    "minAvgFirst",
			keyBits:     256,
			smcWorkers:  2,
			shuffle:     true,
			journalPath: filepath.Join(t.TempDir(), "party.wal"),
		})
	}()
	go func() {
		errs <- runHolder(context.Background(), "", queryAddr, peerAddr, "", aCSV, 8, "entropy", "", dpOptions{}, "alice")
	}()
	go func() {
		errs <- runHolder(context.Background(), "", queryAddr, "", peerAddr, bCSV, 8, "entropy", "", dpOptions{}, "bob")
	}()
	if err := <-done; err != nil {
		t.Fatalf("query: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("holder: %v", err)
		}
	}
	text := out.String()
	if !strings.Contains(text, "pairs decided") || !strings.Contains(text, "matches:") {
		t.Errorf("query output incomplete: %q", text)
	}
	if !strings.Contains(text, "k=8") {
		t.Errorf("view metadata missing: %q", text)
	}
}

func TestRoleValidation(t *testing.T) {
	if err := runQuery(nil, queryOptions{qids: "age", theta: 0.05, heurName: "minFirst", keyBits: 256}); err == nil {
		t.Error("query without -listen should fail")
	}
	if err := runQuery(nil, queryOptions{listen: "127.0.0.1:0", qids: "age", theta: 0.05, heurName: "bogus", keyBits: 256}); err == nil {
		t.Error("bad heuristic should fail")
	}
	if err := runQuery(nil, queryOptions{listen: "127.0.0.1:0", heurName: "minFirst", journalPath: "x.wal", resumePath: "y.wal"}); err == nil {
		t.Error("-journal with -resume should fail")
	}
	if err := runQuery(nil, queryOptions{listen: "127.0.0.1:0", heurName: "minFirst", resumePath: "/nonexistent.wal"}); err == nil {
		t.Error("missing resume journal should fail")
	}
	if err := runHolder(context.Background(), "", "", "", "", "x.csv", 8, "entropy", "", dpOptions{}, "alice"); err == nil {
		t.Error("holder without -query should fail")
	}
	if err := runHolder(context.Background(), "", "127.0.0.1:1", "", "", "/nonexistent.csv", 8, "entropy", "", dpOptions{}, "bob"); err == nil {
		t.Error("missing data file should fail")
	}
	if err := runHolder(context.Background(), "", "127.0.0.1:1", "", "", "x.csv", 8, "bogus", "", dpOptions{}, "bob"); err == nil {
		t.Error("bad method should fail")
	}
}

// TestThreePartyTierOverTCP runs the distributed deployment with the
// triage tier on: the holders share a tier key out of band, the query
// enables -tier bloom, and the output reports the tier's free labels.
func TestThreePartyTierOverTCP(t *testing.T) {
	aCSV, bCSV := writePairCSVs(t)
	queryAddr := freePort(t)
	peerAddr := freePort(t)

	errs := make(chan error, 2)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runQuery(&out, queryOptions{
			listen:     queryAddr,
			qids:       strings.Join(pprl.DefaultAdultQIDs(), ","),
			theta:      0.05,
			allowance:  0.002,
			heurName:   "minAvgFirst",
			keyBits:    256,
			smcWorkers: 2,
			shuffle:    true,
			tier:       "bloom",
		})
	}()
	go func() {
		errs <- runHolder(context.Background(), "", queryAddr, peerAddr, "", aCSV, 8, "entropy", "tcp-tier-secret", dpOptions{}, "alice")
	}()
	go func() {
		errs <- runHolder(context.Background(), "", queryAddr, "", peerAddr, bCSV, 8, "entropy", "tcp-tier-secret", dpOptions{}, "bob")
	}()
	if err := <-done; err != nil {
		t.Fatalf("query: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("holder: %v", err)
		}
	}
	text := out.String()
	if !strings.Contains(text, "tier:") || !strings.Contains(text, "labeled free") {
		t.Errorf("query output missing tier accounting: %q", text)
	}
}
