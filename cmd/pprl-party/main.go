// Command pprl-party runs one role of the distributed hybrid protocol
// over TCP: the two data holders and the querying party as three
// processes, possibly on three machines. Raw records never leave their
// holder; the wire carries classifier parameters, anonymized views, and
// Paillier ciphertexts.
//
// Topology: the querying party listens; both holders dial it and announce
// their role. Alice additionally listens for Bob's direct link (used for
// the encrypted shares of the SMC circuit).
//
//	# machine Q
//	pprl-party -role query -listen :9000 -theta 0.05 -allowance 0.015
//	# machine A
//	pprl-party -role alice -query q:9000 -peer-listen :9001 -data a.csv -k 32
//	# machine B
//	pprl-party -role bob -query q:9000 -peer a:9001 -data b.csv -k 32
//
// The querying party prints the matched record-index pairs; the holders
// map indexes back to their records.
//
// Holders can opt into differentially private blocking instead of
// k-anonymous generalization: -method dp -epsilon 2 -dp-seed <own seed>
// publishes Laplace-noised bin counts with member lists padded to match
// (the handle space is permuted, dummies behave like records downstream,
// and matches print as handles the holders translate locally); the
// session then requires both holders to opt in (the querying party
// refuses mixed sessions). The seed never crosses the wire and is
// domain-separated by role, so even identical -dp-seed values on the
// two holders draw uncorrelated noise.
//
// A fourth role joins a pprl-serve daemon's SMC worker fleet: the worker
// registers with the daemon's coordinator, receives encoded records per
// job, and serves comparison chunks until the coordinator hangs up.
//
//	pprl-party -role worker -coordinator daemon:9700 -lanes 2
//	# or listen and let the daemon dial out (-worker on pprl-serve):
//	pprl-party -role worker -worker-listen :9701
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pprl"
	"pprl/internal/cliutil"
	"pprl/internal/distrib"
	"pprl/internal/session"
	"pprl/internal/smc"
)

// queryOptions collects the querying party's parameters; flags fill it
// in main, tests fill it directly.
type queryOptions struct {
	schemaPath string
	listen     string
	qids       string
	theta      float64
	allowance  float64
	heurName   string
	keyBits    int
	smcWorkers int
	packing    string
	shuffle    bool
	// tier enables the Bloom triage tier; tierHigh/tierLow are its Dice
	// thresholds (0,0 = defaults).
	tier     string
	tierHigh float64
	tierLow  float64
	// journalPath starts a fresh durable journal; resumePath continues an
	// interrupted one. Mutually exclusive.
	journalPath string
	resumePath  string
	journalSync int
	// ctx interrupts the session between SMC batches.
	ctx context.Context
}

func main() {
	var (
		role        = flag.String("role", "", "query, alice, or bob (required)")
		listen      = flag.String("listen", "", "query: address to accept the two holders on")
		queryAddr   = flag.String("query", "", "holders: the querying party's address")
		peerListen  = flag.String("peer-listen", "", "alice: address to accept bob's peer link on")
		peerAddr    = flag.String("peer", "", "bob: alice's peer-link address")
		data        = flag.String("data", "", "holders: CSV file with this holder's relation")
		k           = flag.Int("k", 32, "holders: anonymity requirement")
		method      = flag.String("method", "entropy", "holders: anonymization method (entropy, tds, datafly, mondrian, or dp with -epsilon)")
		epsilon     = flag.Float64("epsilon", 0, "holders: differential-privacy budget for -method dp")
		dpDelta     = flag.Float64("dp-delta", 0, "holders: DP truncation mass for -method dp (0 = default)")
		dpSeed      = flag.Int64("dp-seed", 0, "holders: private DP noise/padding seed (never sent; role-separated, so a shared default is safe)")
		dpLevel     = flag.Int("dp-level", 0, "holders: VGH binning depth for -method dp (0 = default)")
		qids        = flag.String("qids", strings.Join(pprl.DefaultAdultQIDs(), ","), "query: quasi-identifier attributes")
		theta       = flag.Float64("theta", 0.05, "query: matching threshold")
		allowance   = flag.Float64("allowance", 0.015, "query: SMC allowance fraction")
		heurName    = flag.String("heuristic", "minAvgFirst", "query: selection heuristic")
		keyBits     = flag.Int("keybits", 1024, "query: Paillier key size")
		smcWorkers  = flag.Int("smc-workers", 0, "query: SMC batch-size scaling (0 = default chunking)")
		packing     = flag.String("packing", "packed", "query: SMC result packing (packed or off)")
		shuffle     = flag.Bool("shuffle", true, "query: hide which attribute failed (attribute shuffling)")
		tier        = flag.String("tier", "off", "query: triage tier between blocking and SMC (off or bloom)")
		tierHigh    = flag.Float64("tier-high", 0, "query: tier Dice threshold for Match (0 = default 0.95)")
		tierLow     = flag.Float64("tier-low", 0, "query: tier Dice threshold for NonMatch (0 = default 0.60)")
		tierKey     = flag.String("tier-key", "", "holders: shared secret keying the tier's CLK encodings (required when the query enables the tier)")
		schemaPath  = flag.String("schema", "", "schema manifest path (default: built-in Adult schema)")
		journalPath = flag.String("journal", "", "query: record the run to a durable journal at this path (crash-resumable)")
		resumePath  = flag.String("resume", "", "query: resume an interrupted run from its journal")
		journalSync = flag.Int("journal-sync", 0, "query: fsync the journal every N verdicts (0 = default batching)")

		coordinator  = flag.String("coordinator", "", "worker: dial this coordinator (pprl-serve -fleet-listen address) and register")
		workerListen = flag.String("worker-listen", "", "worker: listen here for a coordinator that dials out (-worker on pprl-serve)")
		workerName   = flag.String("worker-name", "", "worker: advertised name (empty = coordinator-assigned)")
		lanes        = flag.Int("lanes", 1, "worker: parallel SMC lanes for secure jobs")
	)
	flag.Parse()
	// SIGINT/SIGTERM cancel the querying party's context: it checkpoints
	// the journal at the next batch boundary, shuts the holders down, and
	// exits. Holders just die; their state is all derivable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch *role {
	case "query":
		err = runQuery(os.Stdout, queryOptions{
			schemaPath:  *schemaPath,
			listen:      *listen,
			qids:        *qids,
			theta:       *theta,
			allowance:   *allowance,
			heurName:    *heurName,
			keyBits:     *keyBits,
			smcWorkers:  *smcWorkers,
			packing:     *packing,
			shuffle:     *shuffle,
			tier:        *tier,
			tierHigh:    *tierHigh,
			tierLow:     *tierLow,
			journalPath: *journalPath,
			resumePath:  *resumePath,
			journalSync: *journalSync,
			ctx:         ctx,
		})
	case "alice":
		err = runHolder(ctx, *schemaPath, *queryAddr, *peerListen, "", *data, *k, *method, *tierKey, dpOptions{*epsilon, *dpDelta, *dpSeed, *dpLevel}, session.RoleAlice)
	case "bob":
		err = runHolder(ctx, *schemaPath, *queryAddr, "", *peerAddr, *data, *k, *method, *tierKey, dpOptions{*epsilon, *dpDelta, *dpSeed, *dpLevel}, session.RoleBob)
	case "worker":
		err = runWorker(ctx, *coordinator, *workerListen, *workerName, *lanes)
	default:
		err = fmt.Errorf("-role must be query, alice, bob, or worker")
	}
	if err != nil {
		if errors.Is(err, session.ErrInterrupted) {
			journal := *journalPath
			if journal == "" {
				journal = *resumePath
			}
			if journal != "" {
				fmt.Fprintf(os.Stderr, "pprl-party: %v\npprl-party: checkpoint saved; continue with -resume %s\n", err, journal)
			} else {
				fmt.Fprintln(os.Stderr, "pprl-party:", err)
			}
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pprl-party:", err)
		os.Exit(1)
	}
}

// runQuery accepts both holders, identifies them, runs the session and
// prints the results.
func runQuery(out io.Writer, opts queryOptions) error {
	schema, err := cliutil.LoadSchemaOrAdult(opts.schemaPath)
	if err != nil {
		return err
	}
	if opts.listen == "" {
		return fmt.Errorf("query role needs -listen")
	}
	if opts.journalPath != "" && opts.resumePath != "" {
		return fmt.Errorf("-journal and -resume are mutually exclusive (resume appends to the existing journal)")
	}
	// Range-check the float knobs before any holder connects, with the
	// shared error text (cliutil ranges).
	if err := cliutil.ThetaRange.Validate(opts.theta); err != nil {
		return err
	}
	if err := cliutil.AllowanceFractionRange.Validate(opts.allowance); err != nil {
		return err
	}
	if err := cliutil.TierBand(opts.tierLow, opts.tierHigh); err != nil {
		return err
	}
	h, err := cliutil.HeuristicByName(opts.heurName)
	if err != nil {
		return err
	}
	packing, err := cliutil.PackingModeByName(opts.packing)
	if err != nil {
		return err
	}
	tierMode, err := cliutil.TierModeByName(opts.tier)
	if err != nil {
		return err
	}
	var tier *smc.TierParams
	if tierMode == pprl.TierBloom {
		tier = &smc.TierParams{} // session fills the CLK defaults
	}
	var journal pprl.JournalSink
	switch {
	case opts.journalPath != "":
		w, err := pprl.CreateJournal(opts.journalPath, pprl.JournalOptions{SyncEvery: opts.journalSync})
		if err != nil {
			return err
		}
		defer w.Close()
		journal = w
	case opts.resumePath != "":
		w, err := pprl.ResumeJournal(opts.resumePath, pprl.JournalOptions{SyncEvery: opts.journalSync})
		if err != nil {
			return err
		}
		defer w.Close()
		journal = w
	}
	l, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Fprintf(os.Stderr, "query: waiting for two holders on %s\n", l.Addr())

	var alice, bob smc.Conn
	for alice == nil || bob == nil {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		conn := smc.NewNetConn(c)
		role, err := session.Identify(conn)
		if err != nil {
			return err
		}
		switch {
		case role == session.RoleAlice && alice == nil:
			alice = conn
		case role == session.RoleBob && bob == nil:
			bob = conn
		default:
			conn.Close()
			return fmt.Errorf("duplicate hello for role %q", role)
		}
		fmt.Fprintf(os.Stderr, "query: %s connected\n", role)
	}

	res, err := session.RunQuery(alice, bob, session.QueryConfig{
		Schema:            schema,
		QIDs:              strings.Split(opts.qids, ","),
		Theta:             opts.theta,
		AllowanceFraction: opts.allowance,
		Heuristic:         h,
		KeyBits:           opts.keyBits,
		ShuffleAttributes: opts.shuffle,
		SMCWorkers:        opts.smcWorkers,
		Packing:           packing.SMC(),
		Tier:              tier,
		TierHigh:          opts.tierHigh,
		TierLow:           opts.tierLow,
		Journal:           journal,
		Context:           opts.ctx,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "views: alice %s k=%d (%d sequences), bob %s k=%d (%d sequences)\n",
		res.AliceView.Method, res.AliceView.K, res.AliceView.NumSequences(),
		res.BobView.Method, res.BobView.K, res.BobView.NumSequences())
	if res.DP != nil {
		fmt.Fprintf(out, "dp: composed ε=%v δ=%v over %d×%d published bins\n",
			res.DP.TotalEpsilon(), res.DP.TotalDelta(), res.DP.AliceBins, res.DP.BobBins)
	}
	fmt.Fprintf(out, "blocking: %.2f%% of %d pairs decided; %d unknown\n",
		100*res.BlockingEfficiency, res.TotalPairs, res.UnknownPairs)
	if tier != nil {
		fmt.Fprintf(out, "tier: %d match / %d non-match labeled free; %d uncertain\n",
			res.TierMatchedPairs, res.TierNonMatchedPairs, res.TierUncertainPairs)
	}
	fmt.Fprintf(out, "smc: %d invocations of %d allowed\n", res.Invocations, res.Allowance)
	if res.Resume.Resumed() {
		fmt.Fprintf(out, "journal: %v\n", res.Resume)
	}
	fmt.Fprintf(out, "matches: %d record pairs\n", len(res.Matches))
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, p := range res.Matches {
		fmt.Fprintf(w, "%d\t%d\n", p.I, p.J)
	}
	return nil
}

// dpOptions are the holder's differential-privacy parameters (-method
// dp); the zero value means k-anonymous generalization as before.
type dpOptions struct {
	epsilon float64
	delta   float64
	seed    int64
	level   int
}

// validate rejects inconsistent DP flags before anything connects.
func (d dpOptions) validate(method string) error {
	dp := cliutil.IsDPName(method)
	if dp && d.epsilon == 0 {
		return fmt.Errorf("-method dp requires -epsilon")
	}
	if !dp && d.epsilon != 0 {
		return fmt.Errorf("-epsilon requires -method dp, got -method %q", method)
	}
	if d.epsilon == 0 && d.delta == 0 && d.seed == 0 && d.level == 0 {
		return nil
	}
	if err := cliutil.EpsilonRange.Validate(d.epsilon); err != nil {
		return err
	}
	if d.delta != 0 {
		if err := cliutil.DeltaRange.Validate(d.delta); err != nil {
			return err
		}
	}
	if d.level < 0 {
		return fmt.Errorf("-dp-level must be ≥ 0, got %d", d.level)
	}
	return nil
}

// runHolder connects to the querying party, establishes the peer link,
// and serves the session.
func runHolder(ctx context.Context, schemaPath, queryAddr, peerListen, peerAddr, dataPath string, k int, method, tierKey string, dp dpOptions, role string) error {
	schema, err := cliutil.LoadSchemaOrAdult(schemaPath)
	if err != nil {
		return err
	}
	if queryAddr == "" || dataPath == "" {
		return fmt.Errorf("holder roles need -query and -data")
	}
	if queryAddr, err = cliutil.NormalizeAddr(queryAddr); err != nil {
		return fmt.Errorf("-query: %w", err)
	}
	if peerAddr != "" {
		if peerAddr, err = cliutil.NormalizeAddr(peerAddr); err != nil {
			return fmt.Errorf("-peer: %w", err)
		}
	}
	if err := dp.validate(method); err != nil {
		return err
	}
	var anon pprl.Anonymizer
	if !cliutil.IsDPName(method) {
		if anon, err = cliutil.AnonymizerByName(method); err != nil {
			return err
		}
	}
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	data, err := pprl.ReadCSV(schema, bufio.NewReader(f))
	f.Close()
	if err != nil {
		return err
	}

	qc, err := dialRetry(ctx, queryAddr)
	if err != nil {
		return fmt.Errorf("dialing querying party: %w", err)
	}
	query := smc.NewNetConn(qc)
	if err := session.Hello(query, role); err != nil {
		return err
	}

	var peer smc.Conn
	if role == session.RoleAlice {
		if peerListen == "" {
			return fmt.Errorf("alice needs -peer-listen")
		}
		pl, err := net.Listen("tcp", peerListen)
		if err != nil {
			return err
		}
		defer pl.Close()
		fmt.Fprintf(os.Stderr, "alice: waiting for bob on %s\n", pl.Addr())
		pc, err := pl.Accept()
		if err != nil {
			return err
		}
		peer = smc.NewNetConn(pc)
	} else {
		if peerAddr == "" {
			return fmt.Errorf("bob needs -peer")
		}
		pc, err := dialRetry(ctx, peerAddr)
		if err != nil {
			return fmt.Errorf("dialing alice: %w", err)
		}
		peer = smc.NewNetConn(pc)
	}

	cfg := session.HolderConfig{Data: data, K: k, Anonymizer: anon}
	if cliutil.IsDPName(method) {
		// Leave the anonymizer nil: the session installs the deterministic
		// binner and publishes the noised release (DESIGN.md §14).
		cfg.Epsilon = dp.epsilon
		cfg.DPDelta = dp.delta
		cfg.DPSeed = dp.seed
		cfg.DPLevel = dp.level
	}
	if tierKey != "" {
		cfg.TierKey = []byte(tierKey)
	}
	return session.RunHolder(query, peer, cfg, role == session.RoleAlice)
}

// runWorker joins a coordinator's SMC worker fleet and serves comparison
// chunks until the coordinator hangs up (or ctx cancels). The worker
// either dials the coordinator or listens for one dial-out connection.
func runWorker(ctx context.Context, coordinator, workerListen, name string, lanes int) error {
	logger := log.New(os.Stderr, "pprl-party: ", log.LstdFlags)
	opts := distrib.WorkerOptions{Name: name, Lanes: lanes, Logger: logger}
	var conn net.Conn
	switch {
	case coordinator != "" && workerListen != "":
		return fmt.Errorf("-coordinator and -worker-listen are mutually exclusive")
	case coordinator != "":
		addr, err := cliutil.NormalizeAddr(coordinator)
		if err != nil {
			return fmt.Errorf("-coordinator: %w", err)
		}
		conn, err = dialRetry(ctx, addr)
		if err != nil {
			return fmt.Errorf("dialing coordinator: %w", err)
		}
	case workerListen != "":
		ln, err := net.Listen("tcp", workerListen)
		if err != nil {
			return err
		}
		defer ln.Close()
		logger.Printf("worker: waiting for a coordinator on %s", ln.Addr())
		go func() {
			<-ctx.Done()
			ln.Close()
		}()
		conn, err = ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
	default:
		return fmt.Errorf("worker role needs -coordinator or -worker-listen")
	}
	// A signal closes the connection; ServeWorker treats that as the
	// coordinator hanging up and returns nil.
	go func() {
		<-ctx.Done()
		conn.Close()
	}()
	return distrib.ServeWorker(conn, opts)
}

// dialRetry dials with exponential backoff and jitter under a deadline:
// the peer may not be listening yet when the parties start in arbitrary
// order, but a peer that never appears must not hang the holder forever.
func dialRetry(ctx context.Context, addr string) (net.Conn, error) {
	dctx, cancel := context.WithTimeout(ctx, dialDeadline)
	defer cancel()
	return cliutil.DialRetry(dctx, "tcp", addr, cliutil.Backoff{})
}

// dialDeadline bounds how long a holder waits for a peer to start
// listening before giving up.
const dialDeadline = time.Minute
