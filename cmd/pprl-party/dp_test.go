package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"pprl"
)

// TestThreePartyDPOverTCP runs the distributed deployment with both
// holders publishing differentially private releases: -method dp with
// distinct per-holder seeds, real TCP, real (256-bit) Paillier crypto.
func TestThreePartyDPOverTCP(t *testing.T) {
	aCSV, bCSV := writePairCSVs(t)
	queryAddr := freePort(t)
	peerAddr := freePort(t)

	errs := make(chan error, 2)
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- runQuery(&out, queryOptions{
			listen:     queryAddr,
			qids:       strings.Join(pprl.DefaultAdultQIDs(), ","),
			theta:      0.05,
			allowance:  0.02,
			heurName:   "minAvgFirst",
			keyBits:    256,
			smcWorkers: 2,
			shuffle:    true,
		})
	}()
	go func() {
		errs <- runHolder(context.Background(), "", queryAddr, peerAddr, "", aCSV, 8, "dp", "", dpOptions{epsilon: 8, seed: 1}, "alice")
	}()
	go func() {
		errs <- runHolder(context.Background(), "", queryAddr, "", peerAddr, bCSV, 8, "dp", "", dpOptions{epsilon: 8, seed: 2}, "bob")
	}()
	if err := <-done; err != nil {
		t.Fatalf("query: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("holder: %v", err)
		}
	}
	text := out.String()
	if !strings.Contains(text, "alice dp") || !strings.Contains(text, "bob dp") {
		t.Errorf("view metadata missing dp method: %q", text)
	}
	if !strings.Contains(text, "dp: composed ε=16") {
		t.Errorf("query output missing dp accounting: %q", text)
	}
	if !strings.Contains(text, "matches:") {
		t.Errorf("query output incomplete: %q", text)
	}
}

// TestPartyDPFlagValidation: inconsistent holder DP flags and
// out-of-range query knobs fail before anything connects.
func TestPartyDPFlagValidation(t *testing.T) {
	if err := (dpOptions{}).validate("dp"); err == nil || !strings.Contains(err.Error(), "-epsilon") {
		t.Errorf("-method dp without -epsilon: err = %v", err)
	}
	if err := (dpOptions{epsilon: 2}).validate("entropy"); err == nil || !strings.Contains(err.Error(), "-method dp") {
		t.Errorf("-epsilon with k-method: err = %v", err)
	}
	if err := (dpOptions{epsilon: -1}).validate("dp"); err == nil {
		t.Error("negative epsilon accepted")
	}
	if err := (dpOptions{epsilon: 2, delta: 0.9}).validate("dp"); err == nil {
		t.Error("out-of-range delta accepted")
	}
	if err := (dpOptions{epsilon: 2, level: -1}).validate("dp"); err == nil {
		t.Error("negative level accepted")
	}
	if err := (dpOptions{epsilon: 2, delta: 1e-6, seed: 3, level: 2}).validate("dp"); err != nil {
		t.Errorf("valid dp options rejected: %v", err)
	}
	if err := runQuery(nil, queryOptions{listen: "127.0.0.1:0", theta: -0.5}); err == nil || !strings.Contains(err.Error(), "-theta") {
		t.Errorf("negative theta: err = %v", err)
	}
	if err := runQuery(nil, queryOptions{listen: "127.0.0.1:0", theta: 0.05, tierLow: 0.9, tierHigh: 0.5}); err == nil || !strings.Contains(err.Error(), "-tier-low") {
		t.Errorf("inverted tier band: err = %v", err)
	}
}
