// Command pprl-link runs the full hybrid private record linkage pipeline
// between two Adult-schema CSV files and prints the matched entity pairs.
//
// Usage:
//
//	pprl-link -a alice.csv -b bob.csv
//	pprl-link -a alice.csv -b bob.csv -k 64 -theta 0.05 -allowance 0.02 \
//	    -heuristic maxLast -strategy precision -secure -keybits 1024 -eval
//	pprl-link -a alice.csv -b bob.csv -anon dp -epsilon 2 -dp-seed 7
//
// -anon dp replaces k-anonymous generalization with differentially
// private blocking: each holder publishes Laplace-noised bin counts
// (per-holder budget ε, so a run composes to 2ε) and the dummy padding
// is charged against the SMC allowance (DESIGN.md §14).
//
// With -secure the Unknown pairs are resolved by the real three-party
// Paillier protocol; without it the plaintext cost-model oracle is used
// (same verdicts, no cryptography — see DESIGN.md §3). -eval additionally
// scores the result against exact ground truth, which is only possible
// because this command happens to hold both files.
//
// Long runs can be made crash-resumable with a durable journal:
//
//	pprl-link -a alice.csv -b bob.csv -secure -journal run.wal
//	# … ^C, crash, or power loss …
//	pprl-link -a alice.csv -b bob.csv -secure -resume run.wal
//
// SIGINT/SIGTERM checkpoint the journal at the next chunk boundary and
// exit; -resume replays the purchased verdicts and spends only the
// remaining allowance. A resume with changed flags or changed input files
// is refused.
//
// -dedup links one file against itself (duplicate detection inside a
// single relation) through the incremental engine: unordered pairs
// i < j, self-pairs excluded, the -allowance fraction taken of the
// n(n-1)/2 unordered pair space:
//
//	pprl-link -dedup -a data.csv -pairs
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pprl"
	"pprl/internal/cliutil"
	"pprl/internal/distrib"
)

// options collects everything the pipeline run needs; flags fill it in
// main, tests fill it directly.
type options struct {
	schemaPath   string
	aPath, bPath string
	k            int
	// anonName selects the holders' anonymization method; "dp" switches
	// to differentially private blocking and requires epsilon > 0.
	anonName string
	// epsilon is the per-holder DP budget; dpDelta, dpSeed and dpLevel
	// are the remaining dpblock parameters (0 = defaults).
	epsilon   float64
	dpDelta   float64
	dpSeed    int64
	dpLevel   int
	theta     float64
	allowance float64
	heurName  string
	strategy     string
	blocking     string
	qids         string
	secure       bool
	keyBits      int
	smcWorkers   int
	packing      string
	// workers are SMC fleet worker addresses (pprl-party -role worker
	// -worker-listen …); non-empty stripes the SMC step across them.
	workers []string
	// tier enables the Bloom triage tier between blocking and SMC;
	// tierHigh/tierLow are its Dice thresholds (0,0 = defaults).
	tier      string
	tierHigh  float64
	tierLow   float64
	// dedup links -a against itself through the incremental engine
	// (unordered pairs i < j); level is its fixed binning depth.
	dedup     bool
	level     int
	eval      bool
	showPairs bool
	jsonOut   bool
	// journalPath starts a fresh durable journal; resumePath continues an
	// interrupted one. Mutually exclusive.
	journalPath string
	resumePath  string
	journalSync int
	// ctx interrupts the run at SMC chunk boundaries (nil = uninterruptible).
	ctx context.Context
}

func main() {
	var opts options
	flag.StringVar(&opts.aPath, "a", "", "first data holder's CSV (required)")
	flag.StringVar(&opts.bPath, "b", "", "second data holder's CSV (required)")
	flag.IntVar(&opts.k, "k", 32, "anonymity requirement for both holders")
	flag.StringVar(&opts.anonName, "anon", "", "anonymization method: entropy (default), tds, datafly, mondrian, or dp (noised blocking; requires -epsilon)")
	flag.Float64Var(&opts.epsilon, "epsilon", 0, "per-holder differential-privacy budget for -anon dp")
	flag.Float64Var(&opts.dpDelta, "dp-delta", 0, "DP truncation mass for -anon dp (0 = default)")
	flag.Int64Var(&opts.dpSeed, "dp-seed", 0, "deterministic DP noise seed (alice uses the seed, bob seed+1)")
	flag.IntVar(&opts.dpLevel, "dp-level", 0, "VGH binning depth for -anon dp (0 = default)")
	flag.Float64Var(&opts.theta, "theta", 0.05, "matching threshold θ for every attribute")
	flag.Float64Var(&opts.allowance, "allowance", 0.015, "SMC allowance as a fraction of all record pairs")
	flag.StringVar(&opts.heurName, "heuristic", "minAvgFirst", "SMC selection heuristic: minFirst, maxLast, minAvgFirst")
	flag.StringVar(&opts.strategy, "strategy", "precision", "residual labeling: precision, recall, classifier")
	flag.StringVar(&opts.blocking, "blocking", "dense", "blocking engine: dense or indexed (hierarchy index, same labels)")
	flag.StringVar(&opts.qids, "qids", strings.Join(pprl.DefaultAdultQIDs(), ","), "comma-separated quasi-identifier attributes")
	flag.BoolVar(&opts.secure, "secure", false, "run the real Paillier SMC protocol instead of the cost-model oracle")
	flag.IntVar(&opts.keyBits, "keybits", 1024, "Paillier key size for -secure")
	flag.IntVar(&opts.smcWorkers, "smc-workers", 0, "parallel SMC lanes for -secure (0 = GOMAXPROCS)")
	flag.StringVar(&opts.packing, "packing", "packed", "SMC result packing for -secure: packed (slot-packed responses) or off")
	var workerAddrs cliutil.WorkerAddrs
	flag.Var(&workerAddrs, "worker", "SMC fleet worker address (repeatable, or comma-separated); stripes the SMC step across the fleet")
	flag.StringVar(&opts.tier, "tier", "off", "triage tier between blocking and SMC: off or bloom (Dice over CLK encodings)")
	flag.Float64Var(&opts.tierHigh, "tier-high", 0, "tier Dice threshold for Match (0 = default 0.95)")
	flag.Float64Var(&opts.tierLow, "tier-low", 0, "tier Dice threshold for NonMatch (0 = default 0.60)")
	flag.BoolVar(&opts.dedup, "dedup", false, "deduplicate -a against itself (unordered pairs; -b not allowed)")
	flag.IntVar(&opts.level, "level", 0, "fixed binning depth for -dedup (0 = default)")
	flag.BoolVar(&opts.eval, "eval", false, "score against exact ground truth (requires both files, which this command has)")
	flag.BoolVar(&opts.showPairs, "pairs", false, "print matched entity-ID pairs")
	flag.BoolVar(&opts.jsonOut, "json", false, "emit one machine-readable JSON document instead of text")
	flag.StringVar(&opts.schemaPath, "schema", "", "schema manifest path (default: built-in Adult schema)")
	flag.StringVar(&opts.journalPath, "journal", "", "record the run to a durable journal at this path (crash-resumable)")
	flag.StringVar(&opts.resumePath, "resume", "", "resume an interrupted run from its journal")
	flag.IntVar(&opts.journalSync, "journal-sync", 0, "fsync the journal every N verdicts (0 = default batching)")
	flag.Parse()
	opts.workers = workerAddrs

	// SIGINT/SIGTERM cancel the run's context: the engine drains the
	// in-flight SMC chunk (sharded lanes finish cleanly), checkpoints the
	// journal, and Link returns ErrInterrupted. A second signal kills the
	// process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.ctx = ctx

	if err := run(os.Stdout, opts); err != nil {
		if errors.Is(err, pprl.ErrInterrupted) {
			journal := opts.journalPath
			if journal == "" {
				journal = opts.resumePath
			}
			if journal != "" {
				fmt.Fprintf(os.Stderr, "pprl-link: %v\npprl-link: checkpoint saved; continue with -resume %s\n", err, journal)
			} else {
				fmt.Fprintln(os.Stderr, "pprl-link:", err)
			}
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "pprl-link:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, opts options) error {
	if opts.aPath == "" || (opts.bPath == "" && !opts.dedup) {
		return fmt.Errorf("-a and -b are required")
	}
	if opts.journalPath != "" && opts.resumePath != "" {
		return fmt.Errorf("-journal and -resume are mutually exclusive (resume appends to the existing journal)")
	}
	// Range-check the float knobs before touching any data, with the
	// shared error text (cliutil ranges).
	if err := cliutil.ThetaRange.Validate(opts.theta); err != nil {
		return err
	}
	if err := cliutil.AllowanceFractionRange.Validate(opts.allowance); err != nil {
		return err
	}
	if err := cliutil.TierBand(opts.tierLow, opts.tierHigh); err != nil {
		return err
	}
	if opts.dedup {
		return runDedup(out, opts)
	}
	if opts.level != 0 {
		return fmt.Errorf("-level applies only to -dedup")
	}
	dp := cliutil.IsDPName(opts.anonName)
	if dp && opts.epsilon == 0 {
		return fmt.Errorf("-anon dp requires -epsilon")
	}
	if !dp && opts.epsilon != 0 {
		return fmt.Errorf("-epsilon requires -anon dp, got -anon %q", opts.anonName)
	}
	if opts.epsilon != 0 || opts.dpDelta != 0 || opts.dpSeed != 0 || opts.dpLevel != 0 {
		if err := cliutil.EpsilonRange.Validate(opts.epsilon); err != nil {
			return err
		}
		if opts.dpDelta != 0 {
			if err := cliutil.DeltaRange.Validate(opts.dpDelta); err != nil {
				return err
			}
		}
		if opts.dpLevel < 0 {
			return fmt.Errorf("-dp-level must be ≥ 0, got %d", opts.dpLevel)
		}
	}
	schema, err := loadSchema(opts.schemaPath)
	if err != nil {
		return err
	}
	alice, err := readCSV(schema, opts.aPath)
	if err != nil {
		return err
	}
	bob, err := readCSV(schema, opts.bPath)
	if err != nil {
		return err
	}

	cfg := pprl.DefaultConfig(strings.Split(opts.qids, ","))
	cfg.AliceK, cfg.BobK = opts.k, opts.k
	cfg.Theta = opts.theta
	cfg.AllowanceFraction = opts.allowance
	if dp {
		// Leave the anonymizers nil: the config installs the deterministic
		// binner from these parameters.
		cfg.Epsilon = opts.epsilon
		cfg.DPDelta = opts.dpDelta
		cfg.DPSeed = opts.dpSeed
		cfg.DPLevel = opts.dpLevel
	} else if opts.anonName != "" {
		anon, err := cliutil.AnonymizerByName(opts.anonName)
		if err != nil {
			return err
		}
		cfg.AliceAnonymizer, cfg.BobAnonymizer = anon, anon
	}
	if cfg.Heuristic, err = cliutil.HeuristicByName(opts.heurName); err != nil {
		return err
	}
	if cfg.Strategy, err = cliutil.StrategyByName(opts.strategy); err != nil {
		return err
	}
	if cfg.Blocking, err = cliutil.BlockingModeByName(opts.blocking); err != nil {
		return err
	}
	if opts.secure {
		cfg.Comparator = pprl.SecureComparatorFactory(opts.keyBits)
	}
	if len(opts.workers) > 0 {
		pool := distrib.NewPool(distrib.PoolOptions{Logger: log.New(os.Stderr, "pprl-link: ", log.LstdFlags)})
		defer pool.Close()
		dctx := opts.ctx
		if dctx == nil {
			dctx = context.Background()
		}
		dctx, cancel := context.WithTimeout(dctx, time.Minute)
		defer cancel()
		for _, addr := range opts.workers {
			conn, err := cliutil.DialRetry(dctx, "tcp", addr, cliutil.Backoff{})
			if err != nil {
				return fmt.Errorf("worker %s: %w", addr, err)
			}
			if err := pool.AddConn(conn); err != nil {
				return fmt.Errorf("worker %s: %w", addr, err)
			}
		}
		jc := distrib.JobConfig{Job: "link"}
		if opts.secure {
			jc.Engine = distrib.EngineSecure
			jc.KeyBits = opts.keyBits
		}
		cfg.Comparator = pool.Factory(jc)
	}
	cfg.SMCWorkers = opts.smcWorkers
	if cfg.SMCPacking, err = cliutil.PackingModeByName(opts.packing); err != nil {
		return err
	}
	if cfg.Tier, err = cliutil.TierModeByName(opts.tier); err != nil {
		return err
	}
	cfg.TierHigh, cfg.TierLow = opts.tierHigh, opts.tierLow
	cfg.Context = opts.ctx

	switch {
	case opts.journalPath != "":
		w, err := pprl.CreateJournal(opts.journalPath, pprl.JournalOptions{SyncEvery: opts.journalSync})
		if err != nil {
			return err
		}
		defer w.Close()
		cfg.Journal = w
	case opts.resumePath != "":
		w, err := pprl.ResumeJournal(opts.resumePath, pprl.JournalOptions{SyncEvery: opts.journalSync})
		if err != nil {
			return err
		}
		defer w.Close()
		cfg.Journal = w
	}

	res, err := pprl.Link(pprl.Holder{Data: alice}, pprl.Holder{Data: bob}, cfg)
	if err != nil {
		return err
	}
	if opts.jsonOut {
		return writeJSON(out, opts, alice, bob, res)
	}
	fmt.Fprintln(out, res.Summary())
	if res.DP != nil {
		fmt.Fprintf(out, "dp: ε=%v per holder (composed ε=%v, δ=%v) bins=%d+%d dummies=%d dummy-spent=%d\n",
			res.DP.AliceEpsilon, res.DP.TotalEpsilon, res.DP.TotalDelta,
			res.DP.AliceBins, res.DP.BobBins, res.DP.AliceDummies+res.DP.BobDummies, res.DP.DummySpent)
	}
	if res.TierMode() != pprl.TierOff {
		fmt.Fprintf(out, "timings: anonymize=%v+%v blocking=%v tier=%v smc=%v\n",
			res.Timings.AnonymizeAlice, res.Timings.AnonymizeBob, res.Timings.Blocking, res.Timings.Tier, res.Timings.SMC)
	} else {
		fmt.Fprintf(out, "timings: anonymize=%v+%v blocking=%v smc=%v\n",
			res.Timings.AnonymizeAlice, res.Timings.AnonymizeBob, res.Timings.Blocking, res.Timings.SMC)
	}
	if opts.secure {
		fmt.Fprintf(out, "smc engine: workers=%d rate=%.1f comparisons/sec bytes=%d\n",
			res.SMCWorkers, res.SMCRate(), res.SMCBytes)
	}
	if res.Resume.Resumed() {
		fmt.Fprintf(out, "journal: %v\n", res.Resume)
	}

	if opts.eval {
		truth, err := pprl.TruePairs(alice, bob, res.QIDs(), res.Rule())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "evaluation: %v (|truth|=%d)\n", res.Evaluate(truth), len(truth))
	}
	if opts.showPairs {
		w := bufio.NewWriter(out)
		defer w.Flush()
		for i := 0; i < alice.Len(); i++ {
			for j := 0; j < bob.Len(); j++ {
				if res.PairMatched(i, j) {
					fmt.Fprintf(w, "%d\t%d\n", alice.Record(i).EntityID, bob.Record(j).EntityID)
				}
			}
		}
	}
	return nil
}

// writeJSON emits the whole run as one JSON document built from the
// stable marshalers on Result and Confusion, so scripts and the job
// service share one wire format instead of scraping the text output.
func writeJSON(out io.Writer, opts options, alice, bob *pprl.Dataset, res *pprl.Result) error {
	doc := struct {
		Result     *pprl.Result    `json:"result"`
		Evaluation *pprl.Confusion `json:"evaluation,omitempty"`
		TruthPairs *int            `json:"truth_pairs,omitempty"`
		Matches    [][2]int        `json:"matches,omitempty"`
	}{Result: res}
	if opts.eval {
		truth, err := pprl.TruePairs(alice, bob, res.QIDs(), res.Rule())
		if err != nil {
			return err
		}
		ev := res.Evaluate(truth)
		n := len(truth)
		doc.Evaluation = &ev
		doc.TruthPairs = &n
	}
	if opts.showPairs {
		doc.Matches = make([][2]int, 0)
		for i := 0; i < alice.Len(); i++ {
			for j := 0; j < bob.Len(); j++ {
				if res.PairMatched(i, j) {
					doc.Matches = append(doc.Matches, [2]int{alice.Record(i).EntityID, bob.Record(j).EntityID})
				}
			}
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func readCSV(schema *pprl.Schema, path string) (*pprl.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pprl.ReadCSV(schema, bufio.NewReader(f))
}

// loadSchema resolves the -schema flag.
func loadSchema(path string) (*pprl.Schema, error) {
	return cliutil.LoadSchemaOrAdult(path)
}
