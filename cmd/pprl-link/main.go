// Command pprl-link runs the full hybrid private record linkage pipeline
// between two Adult-schema CSV files and prints the matched entity pairs.
//
// Usage:
//
//	pprl-link -a alice.csv -b bob.csv
//	pprl-link -a alice.csv -b bob.csv -k 64 -theta 0.05 -allowance 0.02 \
//	    -heuristic maxLast -strategy precision -secure -keybits 1024 -eval
//
// With -secure the Unknown pairs are resolved by the real three-party
// Paillier protocol; without it the plaintext cost-model oracle is used
// (same verdicts, no cryptography — see DESIGN.md §3). -eval additionally
// scores the result against exact ground truth, which is only possible
// because this command happens to hold both files.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pprl"
	"pprl/internal/cliutil"
	"pprl/internal/heuristic"
)

func main() {
	var (
		aPath      = flag.String("a", "", "first data holder's CSV (required)")
		bPath      = flag.String("b", "", "second data holder's CSV (required)")
		k          = flag.Int("k", 32, "anonymity requirement for both holders")
		theta      = flag.Float64("theta", 0.05, "matching threshold θ for every attribute")
		allowance  = flag.Float64("allowance", 0.015, "SMC allowance as a fraction of all record pairs")
		heurName   = flag.String("heuristic", "minAvgFirst", "SMC selection heuristic: minFirst, maxLast, minAvgFirst")
		strategy   = flag.String("strategy", "precision", "residual labeling: precision, recall, classifier")
		qids       = flag.String("qids", strings.Join(pprl.DefaultAdultQIDs(), ","), "comma-separated quasi-identifier attributes")
		secure     = flag.Bool("secure", false, "run the real Paillier SMC protocol instead of the cost-model oracle")
		keyBits    = flag.Int("keybits", 1024, "Paillier key size for -secure")
		smcWorkers = flag.Int("smc-workers", 0, "parallel SMC lanes for -secure (0 = GOMAXPROCS)")
		evalFlag   = flag.Bool("eval", false, "score against exact ground truth (requires both files, which this command has)")
		showPairs  = flag.Bool("pairs", false, "print matched entity-ID pairs")
		schemaPath = flag.String("schema", "", "schema manifest path (default: built-in Adult schema)")
	)
	flag.Parse()
	if err := run(os.Stdout, *schemaPath, *aPath, *bPath, *k, *theta, *allowance, *heurName, *strategy, *qids, *secure, *keyBits, *smcWorkers, *evalFlag, *showPairs); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-link:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, schemaPath, aPath, bPath string, k int, theta, allowance float64, heurName, strategy, qidList string, secure bool, keyBits, smcWorkers int, evalFlag, showPairs bool) error {
	if aPath == "" || bPath == "" {
		return fmt.Errorf("-a and -b are required")
	}
	schema, err := loadSchema(schemaPath)
	if err != nil {
		return err
	}
	alice, err := readCSV(schema, aPath)
	if err != nil {
		return err
	}
	bob, err := readCSV(schema, bPath)
	if err != nil {
		return err
	}

	cfg := pprl.DefaultConfig(strings.Split(qidList, ","))
	cfg.AliceK, cfg.BobK = k, k
	cfg.Theta = theta
	cfg.AllowanceFraction = allowance
	switch strings.ToLower(heurName) {
	case "minfirst":
		cfg.Heuristic = heuristic.MinFirst{}
	case "maxlast":
		cfg.Heuristic = heuristic.MaxLast{}
	case "minavgfirst":
		cfg.Heuristic = heuristic.MinAvgFirst{}
	default:
		return fmt.Errorf("unknown heuristic %q", heurName)
	}
	switch strings.ToLower(strategy) {
	case "precision":
		cfg.Strategy = pprl.MaximizePrecision
	case "recall":
		cfg.Strategy = pprl.MaximizeRecall
	case "classifier":
		cfg.Strategy = pprl.TrainClassifier
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	if secure {
		cfg.Comparator = pprl.SecureComparatorFactory(keyBits)
	}
	cfg.SMCWorkers = smcWorkers

	res, err := pprl.Link(pprl.Holder{Data: alice}, pprl.Holder{Data: bob}, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.Summary())
	fmt.Fprintf(out, "timings: anonymize=%v+%v blocking=%v smc=%v\n",
		res.Timings.AnonymizeAlice, res.Timings.AnonymizeBob, res.Timings.Blocking, res.Timings.SMC)
	if secure {
		fmt.Fprintf(out, "smc engine: workers=%d rate=%.1f comparisons/sec bytes=%d\n",
			res.SMCWorkers, res.SMCRate(), res.SMCBytes)
	}

	if evalFlag {
		truth, err := pprl.TruePairs(alice, bob, res.QIDs(), res.Rule())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "evaluation: %v (|truth|=%d)\n", res.Evaluate(truth), len(truth))
	}
	if showPairs {
		w := bufio.NewWriter(out)
		defer w.Flush()
		for i := 0; i < alice.Len(); i++ {
			for j := 0; j < bob.Len(); j++ {
				if res.PairMatched(i, j) {
					fmt.Fprintf(w, "%d\t%d\n", alice.Record(i).EntityID, bob.Record(j).EntityID)
				}
			}
		}
	}
	return nil
}

func readCSV(schema *pprl.Schema, path string) (*pprl.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pprl.ReadCSV(schema, bufio.NewReader(f))
}

// loadSchema resolves the -schema flag.
func loadSchema(path string) (*pprl.Schema, error) {
	return cliutil.LoadSchemaOrAdult(path)
}
