package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"pprl"
	"pprl/internal/blocking"
	"pprl/internal/cliutil"
	"pprl/internal/incremental"
	"pprl/internal/journal"
	"pprl/internal/metrics"
	"pprl/internal/oracle"
)

// runDedup links one relation against itself through the incremental
// engine: unordered pairs i < j, self-pairs excluded, same slack rule
// and SMC cost model as the two-party pipeline. The -allowance fraction
// is taken of the n(n-1)/2 unordered pair space.
func runDedup(out io.Writer, opts options) error {
	if opts.bPath != "" {
		return fmt.Errorf("-dedup links -a against itself; -b is not allowed")
	}
	if opts.anonName != "" || opts.epsilon != 0 {
		return fmt.Errorf("-dedup uses fixed-level binning (-level); -anon and -epsilon do not apply")
	}
	if len(opts.workers) > 0 {
		return fmt.Errorf("-dedup does not stripe across a worker fleet")
	}
	schema, err := loadSchema(opts.schemaPath)
	if err != nil {
		return err
	}
	data, err := readCSV(schema, opts.aPath)
	if err != nil {
		return err
	}
	n := int64(data.Len())
	allowance := int64(opts.allowance * float64(n*(n-1)/2))

	cfg := incremental.Config{
		QIDs:      strings.Split(opts.qids, ","),
		Theta:     opts.theta,
		Level:     opts.level,
		Allowance: allowance,
		Dedup:     true,
	}
	if cfg.Heuristic, err = cliutil.HeuristicByName(opts.heurName); err != nil {
		return err
	}
	if cfg.Strategy, err = cliutil.StrategyByName(opts.strategy); err != nil {
		return err
	}
	if cfg.Tier, err = cliutil.TierModeByName(opts.tier); err != nil {
		return err
	}
	cfg.TierHigh, cfg.TierLow = opts.tierHigh, opts.tierLow
	if opts.secure {
		cfg.Comparator = pprl.SecureComparatorFactory(opts.keyBits)
	}
	cfg.SMCWorkers = opts.smcWorkers
	if cfg.SMCPacking, err = cliutil.PackingModeByName(opts.packing); err != nil {
		return err
	}

	switch {
	case opts.journalPath != "":
		w, err := journal.Create(opts.journalPath, journal.Options{SyncEvery: opts.journalSync})
		if err != nil {
			return err
		}
		defer w.Close()
		cfg.Journal = w
	case opts.resumePath != "":
		w, err := journal.Resume(opts.resumePath, journal.Options{SyncEvery: opts.journalSync})
		if err != nil {
			return err
		}
		defer w.Close()
		cfg.Journal = w
		cfg.Recovered = w.Recovered()
	}

	eng, err := incremental.New(schema, cfg)
	if err != nil {
		return err
	}
	res, err := eng.Append(0, data.Records())
	if err != nil {
		return err
	}
	stats := eng.Stats()

	var conf *metrics.Confusion
	var truthPairs int
	if opts.eval {
		c, truth, err := dedupEvaluate(data, cfg.QIDs, opts.theta, res.Deltas)
		if err != nil {
			return err
		}
		conf, truthPairs = c, truth
	}

	if opts.jsonOut {
		doc := struct {
			Dedup      bool                `json:"dedup"`
			Records    int                 `json:"records"`
			Allowance  int64               `json:"allowance"`
			Stats      incremental.Stats   `json:"stats"`
			Evaluation *metrics.Confusion  `json:"evaluation,omitempty"`
			TruthPairs *int                `json:"truth_pairs,omitempty"`
			Matches    []incremental.Delta `json:"matches,omitempty"`
		}{Dedup: true, Records: data.Len(), Allowance: allowance, Stats: stats}
		if conf != nil {
			doc.Evaluation = conf
			doc.TruthPairs = &truthPairs
		}
		if opts.showPairs {
			doc.Matches = res.Deltas
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(out, "dedup: records=%d bins=%d matched-pairs=%d allowance=%d used=%d purchased=%d replayed=%d\n",
		data.Len(), stats.Bins[0], stats.Deltas, allowance, stats.Used, stats.Purchased, stats.Replayed)
	fmt.Fprintf(out, "labels: blocking=%d tier=%d residual=%d purchased=%d\n",
		stats.BlockingMatches, stats.TierMatches, stats.ResidualMatches,
		int64(stats.Deltas)-stats.BlockingMatches-stats.TierMatches-stats.ResidualMatches)
	if conf != nil {
		fmt.Fprintf(out, "evaluation: %v (|truth|=%d)\n", *conf, truthPairs)
	}
	if opts.showPairs {
		w := bufio.NewWriter(out)
		defer w.Flush()
		for _, d := range res.Deltas {
			fmt.Fprintf(w, "%d\t%d\n", d.AliceID, d.BobID)
		}
	}
	return nil
}

// dedupEvaluate scores the emitted pairs against the exact decision rule
// over the unordered pair space — computable here because this command
// holds the (single) file.
func dedupEvaluate(data *pprl.Dataset, qidNames []string, theta float64, deltas []incremental.Delta) (*metrics.Confusion, int, error) {
	schema := data.Schema()
	qids, err := schema.Resolve(qidNames)
	if err != nil {
		return nil, 0, err
	}
	rule, err := blocking.RuleFor(schema, qids, theta)
	if err != nil {
		return nil, 0, err
	}
	orc, err := oracle.New(data, data, qids, rule)
	if err != nil {
		return nil, 0, err
	}
	matched := make(map[[2]int]bool, len(deltas))
	for _, d := range deltas {
		matched[[2]int{d.I, d.J}] = true
	}
	var conf metrics.Confusion
	truth := 0
	for i := 0; i < data.Len(); i++ {
		for j := i + 1; j < data.Len(); j++ {
			want := orc.Matches(i, j)
			got := matched[[2]int{i, j}]
			if want {
				truth++
			}
			switch {
			case want && got:
				conf.TruePositives++
			case !want && got:
				conf.FalsePositives++
			case want && !got:
				conf.FalseNegatives++
			}
		}
	}
	return &conf, truth, nil
}
