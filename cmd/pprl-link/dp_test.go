package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunLinkDP: -anon dp runs the pipeline under differentially
// private blocking and reports the ε accounting; with -eval on, every
// reported match is exact (precision 1) because DP blocking never
// asserts matches itself.
func TestRunLinkDP(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	opts := baseOpts(a, b)
	opts.anonName = "dp"
	opts.epsilon = 8
	opts.dpSeed = 7
	opts.allowance = 0.5
	opts.eval = true
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dp-eps=16") || !strings.Contains(out, "dp: ε=8 per holder") {
		t.Errorf("dp accounting missing from output: %q", out)
	}
	if !strings.Contains(out, "precision=1.0000") {
		t.Errorf("DP run reported inexact matches: %q", out)
	}
}

// TestRunLinkFlagValidation: out-of-range knobs are rejected up front
// with the shared cliutil error text, before any file is read.
func TestRunLinkFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"negative theta", func(o *options) { o.theta = -1 }, "-theta"},
		{"allowance above 1", func(o *options) { o.allowance = 1.5 }, "-allowance"},
		{"inverted tier band", func(o *options) { o.tierLow, o.tierHigh = 0.9, 0.5 }, "-tier-low"},
		{"tier high above 1", func(o *options) { o.tierLow, o.tierHigh = 0.5, 1.5 }, "-tier-high"},
		{"dp without epsilon", func(o *options) { o.anonName = "dp" }, "-epsilon"},
		{"epsilon without dp", func(o *options) { o.epsilon = 2 }, "-anon dp"},
		{"negative epsilon", func(o *options) { o.anonName = "dp"; o.epsilon = -2 }, "-epsilon"},
		{"delta out of range", func(o *options) { o.anonName = "dp"; o.epsilon = 2; o.dpDelta = 0.7 }, "-dp-delta"},
		{"negative dp level", func(o *options) { o.anonName = "dp"; o.epsilon = 2; o.dpLevel = -1 }, "-dp-level"},
	}
	for _, tc := range cases {
		// Nonexistent paths prove validation fires before file loads.
		opts := baseOpts("/nonexistent-a.csv", "/nonexistent-b.csv")
		tc.mut(&opts)
		err := run(nil, opts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
