package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pprl"
)

// writePair writes two small overlapping Adult CSVs.
func writePair(t *testing.T) (a, b string) {
	t.Helper()
	schema := pprl.AdultSchema()
	full := pprl.GenerateAdult(schema, 120, 9)
	da, db := pprl.SplitOverlap(full, rand.New(rand.NewSource(10)))
	dir := t.TempDir()
	write := func(d *pprl.Dataset, name string) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := d.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write(da, "a.csv"), write(db, "b.csv")
}

// baseOpts are the defaults the tests vary from.
func baseOpts(a, b string) options {
	return options{
		aPath:     a,
		bPath:     b,
		k:         8,
		theta:     0.05,
		allowance: 0.01,
		heurName:  "minAvgFirst",
		strategy:  "precision",
		qids:      strings.Join(pprl.DefaultAdultQIDs(), ","),
	}
}

func TestRunLink(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	opts := baseOpts(a, b)
	opts.allowance = 1.0
	opts.eval = true
	opts.showPairs = true
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "strategy=maximize-precision") {
		t.Errorf("summary missing: %q", out)
	}
	if !strings.Contains(out, "precision=1.0000") {
		t.Errorf("evaluation missing or imprecise: %q", out)
	}
	// -pairs emits matched entity pairs; with full allowance and shared
	// entities there must be some.
	pairLines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "\t") == 1 {
			pairLines++
		}
	}
	if pairLines == 0 {
		t.Error("expected matched pairs in output")
	}
}

// TestRunLinkJSON: -json emits one parseable document built from the
// stable marshalers, with evaluation and matches folded in.
func TestRunLinkJSON(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	opts := baseOpts(a, b)
	opts.allowance = 1.0
	opts.eval = true
	opts.showPairs = true
	opts.jsonOut = true
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Result struct {
			TotalPairs   int64  `json:"total_pairs"`
			MatchedPairs int64  `json:"matched_pairs"`
			Strategy     string `json:"strategy"`
		} `json:"result"`
		Evaluation *struct {
			Precision float64 `json:"precision"`
		} `json:"evaluation"`
		TruthPairs *int     `json:"truth_pairs"`
		Matches    [][2]int `json:"matches"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not one JSON document: %v\n%s", err, buf.String())
	}
	if doc.Result.TotalPairs == 0 || doc.Result.Strategy != "maximize-precision" {
		t.Errorf("result summary incomplete: %+v", doc.Result)
	}
	if doc.Evaluation == nil || doc.Evaluation.Precision != 1 {
		t.Errorf("evaluation missing or imprecise: %+v", doc.Evaluation)
	}
	if doc.TruthPairs == nil || *doc.TruthPairs == 0 {
		t.Error("truth_pairs missing")
	}
	if int64(len(doc.Matches)) != doc.Result.MatchedPairs {
		t.Errorf("matches has %d entries, result reports %d", len(doc.Matches), doc.Result.MatchedPairs)
	}
}

func TestRunLinkSecure(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	// Tiny allowance keeps the number of real crypto ops low; 256-bit
	// keys keep the test fast.
	opts := baseOpts(a, b)
	opts.allowance = 0.0005
	opts.heurName = "maxLast"
	opts.strategy = "recall"
	opts.secure = true
	opts.keyBits = 256
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "strategy=maximize-recall") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestRunLinkJournalResume(t *testing.T) {
	a, b := writePair(t)
	wal := filepath.Join(t.TempDir(), "run.wal")

	// Journaled run.
	var first bytes.Buffer
	opts := baseOpts(a, b)
	opts.journalPath = wal
	if err := run(&first, opts); err != nil {
		t.Fatal(err)
	}
	// -journal refuses to clobber the existing journal.
	if err := run(&bytes.Buffer{}, opts); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("re-running -journal over an existing file: err = %v, want refusal pointing at resume", err)
	}
	// -resume replays it: same summary line, zero live comparisons.
	var second bytes.Buffer
	opts.journalPath = ""
	opts.resumePath = wal
	if err := run(&second, opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "journal: resumed=") {
		t.Errorf("resumed run did not report resume stats: %q", second.String())
	}
	if !strings.Contains(second.String(), "smc=0 ") {
		t.Errorf("resume of a complete journal should spend no comparisons: %q", second.String())
	}
	// -resume with changed flags is refused, not silently restarted.
	opts.theta = 0.2
	if err := run(&bytes.Buffer{}, opts); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("resume with changed theta: err = %v, want journal refusal", err)
	}
}

func TestRunLinkErrors(t *testing.T) {
	a, b := writePair(t)
	bad := func(mutate func(*options)) error {
		opts := baseOpts(a, b)
		mutate(&opts)
		return run(nil, opts)
	}
	if err := bad(func(o *options) { o.aPath = "" }); err == nil {
		t.Error("missing -a should fail")
	}
	if err := bad(func(o *options) { o.heurName = "bogus" }); err == nil {
		t.Error("bad heuristic should fail")
	}
	if err := bad(func(o *options) { o.strategy = "bogus" }); err == nil {
		t.Error("bad strategy should fail")
	}
	if err := bad(func(o *options) { o.strategy = "classifier"; o.qids = "nope" }); err == nil {
		t.Error("bad QIDs should fail")
	}
	if err := bad(func(o *options) { o.aPath = "/nonexistent.csv" }); err == nil {
		t.Error("missing file should fail")
	}
	if err := bad(func(o *options) { o.journalPath = "x.wal"; o.resumePath = "y.wal" }); err == nil {
		t.Error("-journal with -resume should fail")
	}
	if err := bad(func(o *options) { o.resumePath = "/nonexistent.wal" }); err == nil {
		t.Error("missing resume journal should fail")
	}
}

// TestRunLinkTier: -tier bloom threads through to the engine — the
// summary reports tier accounting, the timings line gains the tier
// stage, and the JSON document carries the tier counters.
func TestRunLinkTier(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	opts := baseOpts(a, b)
	opts.tier = "bloom"
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tier=bloom") || !strings.Contains(out, "tier-labeled=") {
		t.Errorf("summary missing tier accounting: %q", out)
	}
	if !strings.Contains(out, "tier=") || !strings.Contains(out, "timings:") {
		t.Errorf("timings missing tier stage: %q", out)
	}

	buf.Reset()
	opts.jsonOut = true
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Result struct {
			Tier               string `json:"tier"`
			TierMatchedPairs   int64  `json:"tier_matched_pairs"`
			TierNonMatched     int64  `json:"tier_nonmatched_pairs"`
			TierUncertainPairs int64  `json:"tier_uncertain_pairs"`
		} `json:"result"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON output unparseable: %v\n%s", err, buf.String())
	}
	if doc.Result.Tier != "bloom" {
		t.Errorf("JSON tier = %q, want bloom", doc.Result.Tier)
	}
	if doc.Result.TierMatchedPairs+doc.Result.TierNonMatched+doc.Result.TierUncertainPairs == 0 {
		t.Error("JSON tier counters all zero; the tier never ran")
	}

	// Unknown mode is rejected before any work happens.
	opts.tier = "paillier"
	if err := run(&bytes.Buffer{}, opts); err == nil || !strings.Contains(err.Error(), "unknown tier mode") {
		t.Errorf("bad -tier accepted: %v", err)
	}
}

// TestRunLinkDedup: -dedup links one relation against itself through
// the incremental engine and the emitted unordered pairs match the
// exact rule (ample allowance, perfect evaluation).
func TestRunLinkDedup(t *testing.T) {
	a, _ := writePair(t)
	var buf bytes.Buffer
	opts := baseOpts(a, "")
	opts.dedup = true
	opts.allowance = 0.5 // ample over n(n-1)/2
	opts.eval = true
	opts.jsonOut = true
	opts.showPairs = true
	if err := run(&buf, opts); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dedup      bool `json:"dedup"`
		Records    int  `json:"records"`
		Evaluation *struct {
			FalsePositives int64
			FalseNegatives int64
		} `json:"evaluation"`
		TruthPairs int        `json:"truth_pairs"`
		Matches    [][]int    `json:"-"`
		RawMatches []struct { I, J int } `json:"matches"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if !doc.Dedup || doc.Records == 0 {
		t.Fatalf("dedup doc malformed: %s", buf.String())
	}
	if doc.Evaluation == nil {
		t.Fatal("dedup -eval emitted no evaluation")
	}
	if doc.Evaluation.FalsePositives != 0 || doc.Evaluation.FalseNegatives != 0 {
		t.Errorf("ample-allowance dedup is not exact: %+v (|truth|=%d)", doc.Evaluation, doc.TruthPairs)
	}
	for _, m := range doc.RawMatches {
		if m.I >= m.J {
			t.Errorf("dedup pair (%d,%d) not normalized to i < j", m.I, m.J)
		}
	}

	// Guard rails.
	if err := run(nil, func() options { o := baseOpts(a, a); o.dedup = true; return o }()); err == nil {
		t.Error("-dedup with -b should fail")
	}
	if err := run(nil, func() options { o := baseOpts(a, ""); o.dedup = true; o.epsilon = 1; return o }()); err == nil {
		t.Error("-dedup with -epsilon should fail")
	}
	if err := run(nil, func() options { o := baseOpts(a, a); o.level = 2; return o }()); err == nil {
		t.Error("-level without -dedup should fail")
	}
}
