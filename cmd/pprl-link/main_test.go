package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pprl"
)

// writePair writes two small overlapping Adult CSVs.
func writePair(t *testing.T) (a, b string) {
	t.Helper()
	schema := pprl.AdultSchema()
	full := pprl.GenerateAdult(schema, 120, 9)
	da, db := pprl.SplitOverlap(full, rand.New(rand.NewSource(10)))
	dir := t.TempDir()
	write := func(d *pprl.Dataset, name string) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := d.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write(da, "a.csv"), write(db, "b.csv")
}

func TestRunLink(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	err := run(&buf, "", a, b, 8, 0.05, 1.0, "minAvgFirst", "precision",
		strings.Join(pprl.DefaultAdultQIDs(), ","), false, 0, 0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "strategy=maximize-precision") {
		t.Errorf("summary missing: %q", out)
	}
	if !strings.Contains(out, "precision=1.0000") {
		t.Errorf("evaluation missing or imprecise: %q", out)
	}
	// -pairs emits matched entity pairs; with full allowance and shared
	// entities there must be some.
	pairLines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Count(line, "\t") == 1 {
			pairLines++
		}
	}
	if pairLines == 0 {
		t.Error("expected matched pairs in output")
	}
}

func TestRunLinkSecure(t *testing.T) {
	a, b := writePair(t)
	var buf bytes.Buffer
	// Tiny allowance keeps the number of real crypto ops low; 256-bit
	// keys keep the test fast.
	err := run(&buf, "", a, b, 8, 0.05, 0.0005, "maxLast", "recall",
		strings.Join(pprl.DefaultAdultQIDs(), ","), true, 256, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "strategy=maximize-recall") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestRunLinkErrors(t *testing.T) {
	a, b := writePair(t)
	qids := strings.Join(pprl.DefaultAdultQIDs(), ",")
	if err := run(nil, "", "", b, 8, 0.05, 0.01, "minAvgFirst", "precision", qids, false, 0, 0, false, false); err == nil {
		t.Error("missing -a should fail")
	}
	if err := run(nil, "", a, b, 8, 0.05, 0.01, "bogus", "precision", qids, false, 0, 0, false, false); err == nil {
		t.Error("bad heuristic should fail")
	}
	if err := run(nil, "", a, b, 8, 0.05, 0.01, "minAvgFirst", "bogus", qids, false, 0, 0, false, false); err == nil {
		t.Error("bad strategy should fail")
	}
	if err := run(nil, "", a, b, 8, 0.05, 0.01, "minAvgFirst", "classifier", "nope", false, 0, 0, false, false); err == nil {
		t.Error("bad QIDs should fail")
	}
	if err := run(nil, "", "/nonexistent.csv", b, 8, 0.05, 0.01, "minFirst", "precision", qids, false, 0, 0, false, false); err == nil {
		t.Error("missing file should fail")
	}
}
