package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pprl"
	"pprl/internal/anonymize"
)

// writeView anonymizes a fresh sample and writes its view file.
func writeView(t *testing.T, dir, name string, seed int64, k int) string {
	t.Helper()
	schema := pprl.AdultSchema()
	d := pprl.GenerateAdult(schema, 100, seed)
	qids, err := schema.Resolve(pprl.DefaultAdultQIDs())
	if err != nil {
		t.Fatal(err)
	}
	view, err := pprl.NewMaxEntropy().Anonymize(d, qids, k)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := anonymize.WriteView(f, schema, view); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBlock(t *testing.T) {
	dir := t.TempDir()
	a := writeView(t, dir, "a.view", 11, 8)
	b := writeView(t, dir, "b.view", 12, 4)
	var buf bytes.Buffer
	if err := run(&buf, "", a, b, 0.05, "dense"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pairs: 10000 total") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "blocking efficiency:") {
		t.Error("missing efficiency line")
	}
	if !strings.Contains(out, "k=8") || !strings.Contains(out, "k=4") {
		t.Error("missing per-view metadata")
	}
}

// TestRunBlockIndexed runs both engines over the same views: the summary
// lines must agree exactly, and the indexed run must add pruning stats.
func TestRunBlockIndexed(t *testing.T) {
	dir := t.TempDir()
	a := writeView(t, dir, "a.view", 11, 8)
	b := writeView(t, dir, "b.view", 12, 4)
	var dense, indexed bytes.Buffer
	if err := run(&dense, "", a, b, 0.05, "dense"); err != nil {
		t.Fatal(err)
	}
	if err := run(&indexed, "", a, b, 0.05, "indexed"); err != nil {
		t.Fatal(err)
	}
	out := indexed.String()
	if !strings.HasPrefix(out, dense.String()) {
		t.Errorf("indexed summary diverges from dense:\ndense:\n%s\nindexed:\n%s", dense.String(), out)
	}
	if !strings.Contains(out, "% pruned)") {
		t.Errorf("indexed output missing pruning stats: %q", out)
	}
	if err := run(nil, "", a, b, 0.05, "bogus"); err == nil {
		t.Error("unknown blocking mode should fail")
	}
}

func TestRunBlockErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeView(t, dir, "a.view", 13, 8)
	if err := run(nil, "", "", a, 0.05, "dense"); err == nil {
		t.Error("missing -a should fail")
	}
	if err := run(nil, "", a, "/nonexistent.view", 0.05, "dense"); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.view")
	if err := os.WriteFile(bad, []byte("not a view\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, "", a, bad, 0.05, "dense"); err == nil {
		t.Error("malformed view should fail")
	}
}
