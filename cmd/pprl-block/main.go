// Command pprl-block runs the blocking step from the querying party's
// perspective: it consumes only the two anonymized view files the data
// holders published (see pprl-anon -view) — never raw records — and
// reports how much of the pair space the slack decision rule decides, how
// many pairs remain for the SMC step, and the SMC allowance needed for
// full recall.
//
// Usage:
//
//	pprl-anon -in alice.csv -k 32 -view > alice.view
//	pprl-anon -in bob.csv   -k 32 -view > bob.view
//	pprl-block -a alice.view -b bob.view -theta 0.05
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"pprl"
	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/cliutil"
	"pprl/internal/core"
	"pprl/internal/distance"
	"pprl/internal/index"
)

func main() {
	var (
		aPath      = flag.String("a", "", "first holder's view file (required)")
		bPath      = flag.String("b", "", "second holder's view file (required)")
		theta      = flag.Float64("theta", 0.05, "matching threshold θ for every attribute")
		schemaPath = flag.String("schema", "", "schema manifest path (default: built-in Adult schema)")
		mode       = flag.String("blocking", "dense", "blocking engine: dense (full class-pair scan) or indexed (hierarchy index with candidate pruning)")
	)
	flag.Parse()
	if err := run(os.Stdout, *schemaPath, *aPath, *bPath, *theta, *mode); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-block:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, schemaPath, aPath, bPath string, theta float64, mode string) error {
	if aPath == "" || bPath == "" {
		return fmt.Errorf("-a and -b are required")
	}
	blockingMode, err := cliutil.BlockingModeByName(mode)
	if err != nil {
		return err
	}
	schema, err := loadSchema(schemaPath)
	if err != nil {
		return err
	}
	aView, err := readView(schema, aPath)
	if err != nil {
		return err
	}
	bView, err := readView(schema, bPath)
	if err != nil {
		return err
	}
	rule, err := blocking.UniformRule(distance.MetricsFor(schema, aView.QIDs), theta)
	if err != nil {
		return err
	}
	var res *blocking.Result
	if blockingMode == core.BlockingIndexed {
		res, err = index.Block(aView, bView, rule)
	} else {
		res, err = blocking.Block(aView, bView, rule)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "views: %s k=%d (%d sequences) × %s k=%d (%d sequences)\n",
		aView.Method, aView.K, aView.NumSequences(),
		bView.Method, bView.K, bView.NumSequences())
	fmt.Fprintf(out, "pairs: %d total\n", res.TotalPairs())
	fmt.Fprintf(out, "  matched by blocking:    %d\n", res.MatchedPairs)
	fmt.Fprintf(out, "  mismatched by blocking: %d\n", res.NonMatchedPairs)
	fmt.Fprintf(out, "  unknown (SMC needed):   %d\n", res.UnknownPairs)
	fmt.Fprintf(out, "blocking efficiency: %.2f%%\n", 100*res.Efficiency())
	if total := res.TotalPairs(); total > 0 {
		fmt.Fprintf(out, "SMC allowance for full recall: %.2f%% of all pairs (%d invocations)\n",
			100*float64(res.UnknownPairs)/float64(total), res.UnknownPairs)
	}
	fmt.Fprintf(out, "unknown group pairs: %d\n", len(res.UnknownGroupPairs()))
	if st := res.Stats; st != nil {
		fmt.Fprintf(out, "index: evaluated %d of %d class pairs (%.2f%% pruned)\n",
			st.RuleEvaluations, st.ClassPairs, 100*st.PrunedFraction())
		for _, a := range st.Attrs {
			if !a.Indexed {
				fmt.Fprintf(out, "  attr %-10s not indexed\n", a.Name)
				continue
			}
			fmt.Fprintf(out, "  attr %-10s admitted %d of %d class pairs alone\n", a.Name, a.Admitted, st.ClassPairs)
		}
	}
	return nil
}

func readView(schema *pprl.Schema, path string) (*anonymize.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	view, err := anonymize.ReadView(bufio.NewReader(f), schema)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return view, nil
}

// loadSchema resolves the -schema flag.
func loadSchema(path string) (*pprl.Schema, error) {
	return cliutil.LoadSchemaOrAdult(path)
}
