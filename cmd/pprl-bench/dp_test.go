package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunDPJSON: -json with the dp artifact must write a parseable
// ε-vs-recall-vs-cost report to the -dp-out path, with both sweep arms
// populated and the DP invariants visible in the numbers: the dummy
// charge shrinks as ε grows (for a fixed seed), precision stays exact,
// and no point overspends its allowance.
func TestRunDPJSON(t *testing.T) {
	dpOut := filepath.Join(t.TempDir(), "BENCH_dp.json")
	var buf bytes.Buffer
	if err := run(&buf, "dp", 240, false, 3, true, 512, "", "", "", dpOut, 24, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dpOut)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Records    int     `json:"records"`
		Delta      float64 `json:"delta"`
		Level      int     `json:"level"`
		TruthPairs int     `json:"truth_pairs"`
		EpsPoints  []struct {
			Epsilon      float64 `json:"epsilon"`
			TotalEpsilon float64 `json:"total_epsilon"`
			Allowance    int64   `json:"allowance"`
			LiveSpent    int64   `json:"live_spent"`
			DummySpent   int64   `json:"dummy_spent"`
			DummyPairs   int64   `json:"dummy_pairs"`
			Recall       float64 `json:"recall"`
			Precision    float64 `json:"precision"`
			PerUnit      float64 `json:"recall_per_unit"`
		} `json:"epsilon_points"`
		KPoints []struct {
			K      int     `json:"k"`
			Recall float64 `json:"recall"`
		} `json:"k_points"`
		BestEpsilon float64 `json:"best_epsilon"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Records != 240 || rep.TruthPairs <= 0 || rep.Delta <= 0 || rep.Level <= 0 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.EpsPoints) == 0 || len(rep.KPoints) == 0 {
		t.Fatalf("sweep arms not populated: %d ε points, %d k points", len(rep.EpsPoints), len(rep.KPoints))
	}
	for i, pt := range rep.EpsPoints {
		if pt.TotalEpsilon != 2*pt.Epsilon {
			t.Errorf("ε=%g: composed epsilon %g, want %g", pt.Epsilon, pt.TotalEpsilon, 2*pt.Epsilon)
		}
		if pt.LiveSpent+pt.DummySpent > pt.Allowance {
			t.Errorf("ε=%g: spent %d+%d over allowance %d", pt.Epsilon, pt.LiveSpent, pt.DummySpent, pt.Allowance)
		}
		if pt.DummySpent > pt.DummyPairs {
			t.Errorf("ε=%g: dummy spend %d above padding %d", pt.Epsilon, pt.DummySpent, pt.DummyPairs)
		}
		// Matches only ever come from exact layers, so precision is 1
		// whenever anything matched at all.
		if pt.Recall > 0 && pt.Precision != 1 {
			t.Errorf("ε=%g: recall %v with precision %v; DP blocking must stay exact", pt.Epsilon, pt.Recall, pt.Precision)
		}
		// For a fixed seed the noise scales as 1/ε, so padding shrinks
		// monotonically along the (ascending) sweep.
		if i > 0 && pt.DummyPairs > rep.EpsPoints[i-1].DummyPairs {
			t.Errorf("padding grew with ε: %d at ε=%g, %d at ε=%g",
				rep.EpsPoints[i-1].DummyPairs, rep.EpsPoints[i-1].Epsilon, pt.DummyPairs, pt.Epsilon)
		}
	}
	if rep.BestEpsilon == 0 {
		t.Error("best epsilon not selected")
	}
	if !strings.Contains(buf.String(), "differentially private blocking") {
		t.Error("dp table missing from output")
	}
}
