// Command pprl-bench regenerates the paper's evaluation artifacts — every
// figure of Section VI plus the Section III worked example and two
// ablation tables — and prints them as text tables. EXPERIMENTS.md records
// a reference run next to the paper's reported shapes.
//
// Usage:
//
//	pprl-bench                 # the full suite at the default scale
//	pprl-bench -exp fig3,fig8  # selected artifacts
//	pprl-bench -full           # paper-scale workload (30,162 records; slow)
//	pprl-bench -records 6000   # custom scale
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pprl/internal/experiment"
)

func main() {
	var (
		exps        = flag.String("exp", "all", "comma-separated artifact IDs: fig2..fig8, strategies, anonymizers, baselines, diversity, strings, bloom, timing, smcperf, blocking, tier, dp, distributed, incremental, example, or all")
		records     = flag.Int("records", 0, "workload size (records before the overlap split); 0 = default 1800")
		full        = flag.Bool("full", false, "paper-scale workload: 30,162 records (slow)")
		seed        = flag.Int64("seed", 0, "workload seed; 0 = default")
		asJSON      = flag.Bool("json", false, "emit tables as JSON for external plotting; smcperf and blocking additionally write their report files")
		perfBits    = flag.Int("perf-keybits", 512, "smcperf: Paillier key size (512 keeps the default run fast; use 1024 for acceptance-grade numbers)")
		perfOut     = flag.String("perf-out", "BENCH_smc.json", "smcperf: path of the machine-readable benchmark report (with -json)")
		blockingOut = flag.String("blocking-out", "BENCH_blocking.json", "blocking: path of the machine-readable benchmark report (with -json)")
		tierOut     = flag.String("tier-out", "BENCH_tier.json", "tier: path of the machine-readable benchmark report (with -json)")
		dpOut       = flag.String("dp-out", "BENCH_dp.json", "dp: path of the machine-readable benchmark report (with -json)")
		distPairs   = flag.Int("dist-pairs", 256, "distributed: SMC comparisons striped across each fleet size")
		distOut     = flag.String("distributed-out", "BENCH_distributed.json", "distributed: path of the machine-readable benchmark report (with -json)")
		incrOut     = flag.String("incremental-out", "BENCH_incremental.json", "incremental: path of the machine-readable benchmark report (with -json)")
	)
	flag.Parse()
	if err := run(os.Stdout, *exps, *records, *full, *seed, *asJSON, *perfBits, *perfOut, *blockingOut, *tierOut, *dpOut, *distPairs, *distOut, *incrOut); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-bench:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, exps string, records int, full bool, seed int64, asJSON bool, perfBits int, perfOut, blockingOut, tierOut, dpOut string, distPairs int, distOut, incrOut string) error {
	render := func(t *experiment.Table) error {
		if asJSON {
			return t.RenderJSON(out)
		}
		return t.Render(out)
	}
	opts := experiment.Options{Records: records, Seed: seed}
	if full {
		opts.Records = 30162
	}
	wanted := make(map[string]bool)
	for _, id := range strings.Split(exps, ",") {
		wanted[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := wanted["all"]
	want := func(id string) bool { return all || wanted[id] }

	if want("example") {
		if err := printWorkedExample(out); err != nil {
			return err
		}
	}
	type gen struct {
		id string
		fn func(experiment.Options) (*experiment.Table, error)
	}
	singles := []gen{
		{"fig2", experiment.Fig2},
		{"fig3", experiment.Fig3},
		{"fig4", experiment.Fig4},
		{"fig5", experiment.Fig5},
	}
	for _, g := range singles {
		if !want(g.id) {
			continue
		}
		t, err := g.fn(opts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("fig6") || want("fig7") {
		f6, f7, err := experiment.Fig6and7(opts)
		if err != nil {
			return err
		}
		if want("fig6") {
			if err := render(f6); err != nil {
				return err
			}
		}
		if want("fig7") {
			if err := render(f7); err != nil {
				return err
			}
		}
	}
	tail := []gen{
		{"fig8", experiment.Fig8},
		{"strategies", experiment.Strategies},
		{"anonymizers", experiment.Anonymizers},
		{"baselines", experiment.Baselines},
		{"diversity", experiment.Diversity},
		{"strings", experiment.Strings},
		{"bloom", experiment.Bloom},
	}
	for _, g := range tail {
		if !want(g.id) {
			continue
		}
		t, err := g.fn(opts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("timing") {
		t, err := experiment.Timing(opts, 1024, 5)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}
	if want("smcperf") {
		rep, t, err := experiment.SMCPerf(perfBits, 4, 32, 0)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if asJSON && perfOut != "" {
			f, err := os.Create(perfOut)
			if err != nil {
				return fmt.Errorf("smcperf: %w", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("smcperf: writing report: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "smcperf: report written to %s\n", perfOut)
		}
	}
	if want("blocking") {
		rep, t, err := experiment.BlockingPerf(opts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if asJSON && blockingOut != "" {
			f, err := os.Create(blockingOut)
			if err != nil {
				return fmt.Errorf("blocking: %w", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("blocking: writing report: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "blocking: report written to %s\n", blockingOut)
		}
	}
	if want("tier") {
		rep, t, err := experiment.TierPerf(opts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if asJSON && tierOut != "" {
			f, err := os.Create(tierOut)
			if err != nil {
				return fmt.Errorf("tier: %w", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("tier: writing report: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "tier: report written to %s\n", tierOut)
		}
	}
	if want("dp") {
		rep, t, err := experiment.DPPerf(opts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if asJSON && dpOut != "" {
			f, err := os.Create(dpOut)
			if err != nil {
				return fmt.Errorf("dp: %w", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("dp: writing report: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "dp: report written to %s\n", dpOut)
		}
	}
	if want("distributed") {
		rep, t, err := experiment.DistPerf(opts, perfBits, distPairs)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if asJSON && distOut != "" {
			f, err := os.Create(distOut)
			if err != nil {
				return fmt.Errorf("distributed: %w", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("distributed: writing report: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "distributed: report written to %s\n", distOut)
		}
	}
	if want("incremental") {
		rep, t, err := experiment.IncrementalPerf(opts)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
		if asJSON && incrOut != "" {
			f, err := os.Create(incrOut)
			if err != nil {
				return fmt.Errorf("incremental: %w", err)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("incremental: writing report: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "incremental: report written to %s\n", incrOut)
		}
	}
	return nil
}

// printWorkedExample renders the Section III walkthrough (Tables I & II).
func printWorkedExample(out io.Writer) error {
	d, err := experiment.NewWorkedExample()
	if err != nil {
		return err
	}
	res, err := experiment.WorkedExample()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "example — Section III worked example (Tables I & II)")
	fmt.Fprintln(out, "R' classes:")
	for _, c := range d.R.Classes {
		fmt.Fprintf(out, "  %d× %s\n", c.Size(), c.Sequence)
	}
	fmt.Fprintln(out, "S' classes:")
	for _, c := range d.S.Classes {
		fmt.Fprintf(out, "  %d× %s\n", c.Size(), c.Sequence)
	}
	fmt.Fprintf(out, "slack rule labels: %d matched, %d mismatched, %d unknown of %d pairs (blocking efficiency %.0f%%)\n\n",
		res.MatchedPairs, res.NonMatchedPairs, res.UnknownPairs, res.TotalPairs(), 100*res.Efficiency())
	return nil
}
