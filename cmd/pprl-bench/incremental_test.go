package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunIncrementalJSON: -json with the incremental artifact must write
// a parseable appends-vs-re-runs report to the -incremental-out path,
// with the contract invariants visible in the numbers: both arms agreed
// on the verdict count (the experiment hard-fails otherwise), the
// incremental arm never purchases more than the re-run arm, and the
// amortized figures are consistent with the totals.
func TestRunIncrementalJSON(t *testing.T) {
	incrOut := filepath.Join(t.TempDir(), "BENCH_incremental.json")
	var buf bytes.Buffer
	if err := run(&buf, "incremental", 240, false, 3, true, 512, "", "", "", "", 24, "", incrOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(incrOut)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Theta  float64 `json:"theta"`
		Seed   int64   `json:"seed"`
		Points []struct {
			Records       int     `json:"records"`
			Alice         int     `json:"alice_records"`
			Bob           int     `json:"bob_records"`
			Batches       int     `json:"batches_per_side"`
			Deltas        int     `json:"deltas"`
			IncrPurchased int64   `json:"incremental_purchased"`
			RerunBought   int64   `json:"rerun_purchased"`
			IncrPerRecord float64 `json:"incremental_purchased_per_record"`
			Savings       float64 `json:"purchase_savings"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Theta <= 0 || rep.Seed == 0 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("-records overrides the size sweep with one point; got %d", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.Records != 240 || pt.Alice <= 0 || pt.Bob <= 0 || pt.Batches <= 1 {
		t.Errorf("point header wrong: %+v", pt)
	}
	if pt.Deltas <= 0 {
		t.Error("overlapping split produced no matches")
	}
	if pt.IncrPurchased > pt.RerunBought {
		t.Errorf("incremental arm purchased %d, more than the %d of re-running every prefix", pt.IncrPurchased, pt.RerunBought)
	}
	wantPer := float64(pt.IncrPurchased) / float64(pt.Alice+pt.Bob)
	if diff := pt.IncrPerRecord - wantPer; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("amortized figure %v inconsistent with totals (want %v)", pt.IncrPerRecord, wantPer)
	}
	if pt.Savings < 1 {
		t.Errorf("purchase savings %v < 1: re-running from scratch cannot be cheaper", pt.Savings)
	}
	if !strings.Contains(buf.String(), "incremental appends vs from-scratch re-runs") {
		t.Error("incremental table missing from output")
	}
}
