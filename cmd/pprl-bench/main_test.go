package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestGoldenOutput pins the exact rendered output of a representative
// artifact subset at a fixed seed and scale. Every quantity involved is
// deterministic (seeded generators, exact arithmetic), so any diff means
// behavior actually changed; regenerate deliberately with
// `go test ./cmd/pprl-bench -run Golden -update`.
func TestGoldenOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "example,fig2,fig3,fig8,strategies,baselines", 600, false, 0, false, 512, "", "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden file updated")
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from golden file; diff manually or regenerate with -update.\ngot:\n%s", buf.String())
	}
}

func TestRunSelectedArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "example,fig3", 240, false, 3, false, 512, "", "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "6 matched, 12 mismatched, 18 unknown") {
		t.Error("worked example missing or wrong")
	}
	if !strings.Contains(out, "fig3 — Blocking efficiency") {
		t.Error("fig3 missing")
	}
	if strings.Contains(out, "fig4") {
		t.Error("unselected artifact rendered")
	}
}

func TestRunFig6And7Selection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig7", 240, false, 3, false, 512, "", "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "fig6 —") || !strings.Contains(out, "fig7 —") {
		t.Errorf("fig6/7 selection broken: %q", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", 240, false, 3, true, 512, "", "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	var tab struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tab); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if tab.ID != "fig3" || len(tab.Columns) != 2 || len(tab.Rows) == 0 {
		t.Errorf("parsed table wrong: %+v", tab)
	}
}

func TestRunBaselines(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "baselines", 240, false, 3, false, 512, "", "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pure SMC") {
		t.Error("baselines table missing")
	}
}

// TestRunSMCPerfJSON: -json with the smcperf artifact must write a
// parseable machine-readable report to the -perf-out path.
func TestRunSMCPerfJSON(t *testing.T) {
	perfOut := filepath.Join(t.TempDir(), "BENCH_smc.json")
	var buf bytes.Buffer
	if err := run(&buf, "smcperf", 240, false, 3, true, 512, perfOut, "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(perfOut)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		Workers    int `json:"workers"`
		KeyBits    int `json:"key_bits"`
		Engines    []struct {
			Engine      string  `json:"engine"`
			Packing     string  `json:"packing"`
			Rate        float64 `json:"comparisons_per_sec"`
			Bytes       int64   `json:"bytes_per_comparison"`
			ResultBytes int64   `json:"result_bytes_per_comparison"`
			Decryptions float64 `json:"decryptions_per_comparison"`
		} `json:"engines"`
		Speedup             float64 `json:"speedup"`
		DecryptionReduction float64 `json:"decryption_reduction"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.GOMAXPROCS < 1 || rep.Workers < 1 || rep.KeyBits != 512 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Engines) != 4 {
		t.Fatalf("report has %d engine cells, want 4 (serial/sharded × off/packed)", len(rep.Engines))
	}
	cells := map[string]int{}
	for i, e := range rep.Engines {
		cells[e.Engine+"/"+e.Packing] = i
		if e.Rate <= 0 || e.Bytes <= 0 || e.ResultBytes <= 0 || e.Decryptions <= 0 {
			t.Errorf("engine cell %s/%s metrics not populated: %+v", e.Engine, e.Packing, e)
		}
	}
	for _, want := range []string{"serial/off", "serial/packed", "sharded/off", "sharded/packed"} {
		if _, ok := cells[want]; !ok {
			t.Errorf("missing engine cell %s", want)
		}
	}
	if rep.Speedup <= 0 || rep.DecryptionReduction <= 1 {
		t.Errorf("derived ratios not populated: speedup=%v decryption_reduction=%v", rep.Speedup, rep.DecryptionReduction)
	}
	// Packing must shrink the result leg and the decryption count.
	off, packed := rep.Engines[cells["serial/off"]], rep.Engines[cells["serial/packed"]]
	if packed.ResultBytes >= off.ResultBytes {
		t.Errorf("packed result bytes %d not below unpacked %d", packed.ResultBytes, off.ResultBytes)
	}
	if packed.Decryptions >= off.Decryptions {
		t.Errorf("packed decryptions %v not below unpacked %v", packed.Decryptions, off.Decryptions)
	}
	// The stdout table rides along for humans.
	if !strings.Contains(buf.String(), "smcperf") {
		t.Error("smcperf table missing from output")
	}
}

// TestRunBlockingJSON: -json with the blocking artifact must write a
// parseable dense-vs-indexed report to the -blocking-out path.
func TestRunBlockingJSON(t *testing.T) {
	blockingOut := filepath.Join(t.TempDir(), "BENCH_blocking.json")
	var buf bytes.Buffer
	if err := run(&buf, "blocking", 240, false, 3, true, 512, "", blockingOut, "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(blockingOut)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Records        int     `json:"records"`
		ClassPairs     int64   `json:"class_pairs"`
		DenseRate      float64 `json:"dense_class_pairs_per_sec"`
		IndexedRate    float64 `json:"indexed_class_pairs_per_sec"`
		RuleEvals      int64   `json:"rule_evaluations"`
		Pruned         int64   `json:"pruned_class_pairs"`
		PrunedFraction float64 `json:"pruned_fraction"`
		LabelsBytes    int64   `json:"dense_labels_bytes"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Records != 240 || rep.ClassPairs <= 0 || rep.LabelsBytes <= 0 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.DenseRate <= 0 || rep.IndexedRate <= 0 {
		t.Errorf("report rates not populated: %+v", rep)
	}
	if rep.RuleEvals+rep.Pruned != rep.ClassPairs || rep.PrunedFraction < 0 {
		t.Errorf("pruning accounting inconsistent: %+v", rep)
	}
	if !strings.Contains(buf.String(), "blocking engines") {
		t.Error("blocking table missing from output")
	}
}

// TestRunTierJSON: -json with the tier artifact must write a parseable
// three-tier-vs-baseline report to the -tier-out path.
func TestRunTierJSON(t *testing.T) {
	tierOut := filepath.Join(t.TempDir(), "BENCH_tier.json")
	var buf bytes.Buffer
	if err := run(&buf, "tier", 240, false, 3, true, 512, "", "", tierOut, "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tierOut)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Records      int     `json:"records"`
		TierHigh     float64 `json:"tier_high"`
		TierLow      float64 `json:"tier_low"`
		UnknownPairs int64   `json:"unknown_pairs"`
		Points       []struct {
			Allowance    int64   `json:"allowance"`
			TierSpent    int64   `json:"tier_spent"`
			BaseSpent    int64   `json:"baseline_spent"`
			Gain         float64 `json:"gain"`
			TierMatched  int64   `json:"tier_matched_pairs"`
			TierNonMatch int64   `json:"tier_nonmatched_pairs"`
		} `json:"points"`
		BestGain float64 `json:"best_gain"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Records != 240 || rep.UnknownPairs <= 0 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.TierLow >= rep.TierHigh {
		t.Errorf("thresholds not populated: low=%v high=%v", rep.TierLow, rep.TierHigh)
	}
	if len(rep.Points) == 0 || rep.BestGain <= 0 {
		t.Errorf("sweep points not populated: %+v", rep)
	}
	labeled := false
	for _, pt := range rep.Points {
		if pt.TierMatched+pt.TierNonMatch > 0 {
			labeled = true
		}
		if pt.TierSpent > pt.BaseSpent {
			t.Errorf("tier spent %d above baseline %d at allowance %d", pt.TierSpent, pt.BaseSpent, pt.Allowance)
		}
	}
	if !labeled {
		t.Error("tier never labeled a pair across the sweep")
	}
	if !strings.Contains(buf.String(), "three-tier triage") {
		t.Error("tier table missing from output")
	}
}

// TestRunSMCPerfTextNoFile: without -json no report file is produced.
func TestRunSMCPerfTextNoFile(t *testing.T) {
	perfOut := filepath.Join(t.TempDir(), "BENCH_smc.json")
	var buf bytes.Buffer
	if err := run(&buf, "smcperf", 240, false, 3, false, 512, perfOut, "", "", "", 24, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(perfOut); err == nil {
		t.Error("report written without -json")
	}
	if !strings.Contains(buf.String(), "comparisons/sec") {
		t.Error("smcperf text table missing")
	}
}

// TestRunDistributedJSON: -json with the distributed artifact must write
// a parseable fleet-scaling report to the -distributed-out path.
func TestRunDistributedJSON(t *testing.T) {
	distOut := filepath.Join(t.TempDir(), "BENCH_distributed.json")
	var buf bytes.Buffer
	if err := run(&buf, "distributed", 120, false, 3, true, 64, "", "", "", "", 24, distOut, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Pairs         int     `json:"pairs"`
		CostMsPerPair float64 `json:"cost_ms_per_pair"`
		Fleets        []struct {
			Workers int     `json:"workers"`
			Rate    float64 `json:"comparisons_per_sec"`
			Speedup float64 `json:"speedup"`
		} `json:"fleets"`
		Speedup2 float64 `json:"speedup_2_workers"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Pairs != 24 || rep.CostMsPerPair <= 0 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Fleets) != 3 || rep.Speedup2 <= 0 {
		t.Errorf("fleet cells not populated: %+v", rep)
	}
	for _, f := range rep.Fleets {
		if f.Rate <= 0 {
			t.Errorf("%d-worker rate not populated", f.Workers)
		}
	}
	if !strings.Contains(buf.String(), "distributed SMC fleet scaling") {
		t.Error("distributed table missing from output")
	}
}
