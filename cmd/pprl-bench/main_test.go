package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestGoldenOutput pins the exact rendered output of a representative
// artifact subset at a fixed seed and scale. Every quantity involved is
// deterministic (seeded generators, exact arithmetic), so any diff means
// behavior actually changed; regenerate deliberately with
// `go test ./cmd/pprl-bench -run Golden -update`.
func TestGoldenOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "example,fig2,fig3,fig8,strategies,baselines", 600, false, 0, false); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden file updated")
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output drifted from golden file; diff manually or regenerate with -update.\ngot:\n%s", buf.String())
	}
}

func TestRunSelectedArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "example,fig3", 240, false, 3, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "6 matched, 12 mismatched, 18 unknown") {
		t.Error("worked example missing or wrong")
	}
	if !strings.Contains(out, "fig3 — Blocking efficiency") {
		t.Error("fig3 missing")
	}
	if strings.Contains(out, "fig4") {
		t.Error("unselected artifact rendered")
	}
}

func TestRunFig6And7Selection(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig7", 240, false, 3, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "fig6 —") || !strings.Contains(out, "fig7 —") {
		t.Errorf("fig6/7 selection broken: %q", out)
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", 240, false, 3, true); err != nil {
		t.Fatal(err)
	}
	var tab struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tab); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if tab.ID != "fig3" || len(tab.Columns) != 2 || len(tab.Rows) == 0 {
		t.Errorf("parsed table wrong: %+v", tab)
	}
}

func TestRunBaselines(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "baselines", 240, false, 3, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pure SMC") {
		t.Error("baselines table missing")
	}
}
