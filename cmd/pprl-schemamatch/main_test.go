package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pprl"
)

func TestMatchOverTCP(t *testing.T) {
	// Holder A uses the built-in Adult schema; holder B a custom schema
	// sharing age and sex.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sex.vgh"),
		[]byte(pprl.AdultSchema().Attr(6).Hierarchy.Dump()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ward.vgh"), []byte("ANY\n  icu\n  er\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := "continuous age 17 81 2 3\ncategorical sex sex.vgh\ncategorical ward ward.vgh\n"
	bPath := filepath.Join(dir, "schema.txt")
	if err := os.WriteFile(bPath, []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}

	// The Adult side listens on an ephemeral port and signals readiness
	// over the channel, so the responder connects exactly once with no
	// retry polling and no bind race on a pre-picked port.
	var aOut, bOut bytes.Buffer
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- runNotify(&aOut, "127.0.0.1:0", "", "", ready) }()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("listener exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("listener never became ready")
	}
	if err := run(&bOut, "", addr.String(), bPath); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(aOut.String(), "matched 2 of 8") {
		t.Errorf("initiator output: %q", aOut.String())
	}
	if !strings.Contains(bOut.String(), "matched 2 of 3") {
		t.Errorf("responder output: %q", bOut.String())
	}
	for _, want := range []string{"age", "sex"} {
		if !strings.Contains(bOut.String(), want) {
			t.Errorf("responder missing %q: %q", want, bOut.String())
		}
	}
	if strings.Contains(bOut.String(), "ward") {
		t.Error("private attribute leaked into the intersection")
	}
}

func TestRunValidation(t *testing.T) {
	if err := run(nil, "", "", ""); err == nil {
		t.Error("neither -listen nor -connect should fail")
	}
	if err := run(nil, "x", "y", ""); err == nil {
		t.Error("both -listen and -connect should fail")
	}
	if err := run(nil, "127.0.0.1:0", "", "/nonexistent/schema.txt"); err == nil {
		t.Error("bad schema path should fail")
	}
}
