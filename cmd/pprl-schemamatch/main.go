// Command pprl-schemamatch runs private schema matching between two data
// holders (the preprocessing step the paper assumes in Section II): each
// party learns which attributes — by name, kind, and domain fingerprint —
// the other party also holds, and nothing about the rest beyond the
// schema size. Built on commutative-encryption private set intersection
// (Agrawal et al., the paper's reference [15]).
//
//	# holder A (waits for the peer)
//	pprl-schemamatch -listen :9002 -schema hospital_a/schema.txt
//	# holder B
//	pprl-schemamatch -connect a:9002 -schema hospital_b/schema.txt
//
// Both print the matched attribute names — the candidate quasi-identifier
// set for a subsequent pprl-party run.
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"pprl"
	"pprl/internal/cliutil"
	"pprl/internal/schemamatch"
)

func main() {
	var (
		listen     = flag.String("listen", "", "wait for the peer on this address (initiator)")
		connect    = flag.String("connect", "", "dial the peer at this address (responder)")
		schemaPath = flag.String("schema", "", "schema manifest path (default: built-in Adult schema)")
	)
	flag.Parse()
	if err := run(os.Stdout, *listen, *connect, *schemaPath); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-schemamatch:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, listen, connect, schemaPath string) error {
	return runNotify(out, listen, connect, schemaPath, nil)
}

// runNotify is run plus a readiness hook: once the initiator's listener
// is bound, its address is delivered on ready (when non-nil), so a
// peer in the same process can connect without polling the port.
func runNotify(out io.Writer, listen, connect, schemaPath string, ready chan<- net.Addr) error {
	if (listen == "") == (connect == "") {
		return fmt.Errorf("exactly one of -listen / -connect is required")
	}
	schema, err := cliutil.LoadSchemaOrAdult(schemaPath)
	if err != nil {
		return err
	}
	var conn net.Conn
	initiator := listen != ""
	if initiator {
		l, err := net.Listen("tcp", listen)
		if err != nil {
			return err
		}
		defer l.Close()
		if ready != nil {
			ready <- l.Addr()
		}
		fmt.Fprintf(os.Stderr, "waiting for peer on %s\n", l.Addr())
		conn, err = l.Accept()
		if err != nil {
			return err
		}
	} else {
		conn, err = net.Dial("tcp", connect)
		if err != nil {
			return err
		}
	}
	defer conn.Close()

	names, err := schemamatch.Match(conn, pprl.DefaultCommutativeGroup(), schema, initiator, rand.Reader)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "matched %d of %d attributes:\n", len(names), schema.Len())
	for _, n := range names {
		fmt.Fprintln(out, n)
	}
	return nil
}
