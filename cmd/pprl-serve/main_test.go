package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pprl"
)

// writeData writes two overlapping Adult CSVs into dir.
func writeData(t *testing.T, dir string) {
	t.Helper()
	schema := pprl.AdultSchema()
	full := pprl.GenerateAdult(schema, 100, 17)
	da, db := pprl.SplitOverlap(full, rand.New(rand.NewSource(18)))
	for name, d := range map[string]*pprl.Dataset{"a.csv": da, "b.csv": db} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that drains it and waits for exit.
func startDaemon(t *testing.T, dir, dataDir string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run(&out, options{
			addr:        "127.0.0.1:0",
			dir:         dir,
			dataDir:     dataDir,
			workers:     2,
			journalSync: 1,
			ctx:         ctx,
			ready:       ready,
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before serving: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v\n%s", err, out.String())
			}
		case <-time.After(60 * time.Second):
			t.Fatal("daemon never drained")
		}
	}
	return "http://" + addr, stop
}

// TestServeSmoke boots the daemon, pushes a job through the full HTTP
// lifecycle, drains on the signal path, and restarts on the same state
// directory to confirm the finished job survives.
func TestServeSmoke(t *testing.T) {
	dataDir := t.TempDir()
	writeData(t, dataDir)
	stateDir := filepath.Join(t.TempDir(), "state")

	base, stop := startDaemon(t, stateDir, dataDir)

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"alice_path":"a.csv","bob_path":"b.csv","k":8,"allowance":200}`))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz returned %d", hz.StatusCode)
	}
	stop()

	// Second life: the state directory still knows the job.
	base2, stop2 := startDaemon(t, stateDir, dataDir)
	defer stop2()
	r, err := http.Get(base2 + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result after restart returned %d: %s", r.StatusCode, raw)
	}
	var res struct {
		Result struct {
			Allowance int64 `json:"allowance"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Result.Allowance != 200 {
		t.Errorf("allowance = %d, want 200", res.Result.Allowance)
	}
}
