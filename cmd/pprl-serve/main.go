// Command pprl-serve runs the linkage job service: a long-lived daemon
// that accepts linkage jobs over a JSON HTTP API, executes them on a
// bounded worker pool, and journals every SMC verdict so a killed or
// restarted daemon resumes in-flight jobs without re-spending their
// allowance.
//
//	pprl-serve -dir ./serve-state -data ./datasets -workers 2
//
//	# submit a job
//	curl -X POST localhost:8642/v1/jobs -d '{"alice_path":"a.csv","bob_path":"b.csv"}'
//	# poll it
//	curl localhost:8642/v1/jobs/job-000001
//	# fetch the labeling
//	curl localhost:8642/v1/jobs/job-000001/result
//
// SIGTERM/SIGINT drains gracefully: running jobs checkpoint their
// journals, queued jobs stay queued, and the next start recovers both.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pprl/internal/cliutil"
	"pprl/internal/service"
)

// options collects the daemon's parameters; flags fill it in main,
// tests fill it directly.
type options struct {
	addr        string
	dir         string
	dataDir     string
	workers     int
	journalSync int
	pprof       bool
	// fleetListen accepts SMC worker registrations; fleetWorkers are
	// addresses the daemon dials out to; fleetMinWorkers gates
	// distributed jobs on fleet size.
	fleetListen     string
	fleetWorkers    []string
	fleetMinWorkers int
	// publishExpvar registers the metrics registry under /debug/vars;
	// off in tests because expvar.Publish is once-per-process.
	publishExpvar bool
	// ctx stops the daemon (the signal handler cancels it); ready, when
	// non-nil, receives the bound listener address once serving.
	ctx   context.Context
	ready chan<- string
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "listen", ":8642", "HTTP listen address")
	flag.StringVar(&opts.dir, "dir", "pprl-serve.d", "service state directory (job specs, journals, results)")
	flag.StringVar(&opts.dataDir, "data", "", "confine dataset references to this directory (empty = any path)")
	flag.IntVar(&opts.workers, "workers", 1, "concurrent linkage jobs")
	flag.IntVar(&opts.journalSync, "journal-sync", 0, "fsync the job journal every N verdicts (0 = journal default)")
	flag.BoolVar(&opts.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.StringVar(&opts.fleetListen, "fleet-listen", "", "accept SMC worker registrations on this address (pprl-party -role worker -coordinator)")
	var workerAddrs cliutil.WorkerAddrs
	flag.Var(&workerAddrs, "worker", "SMC fleet worker address to dial out to (repeatable, or comma-separated)")
	flag.IntVar(&opts.fleetMinWorkers, "fleet-min-workers", 1, "workers a distributed job waits for before starting")
	flag.Parse()
	opts.fleetWorkers = workerAddrs

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	opts.ctx = ctx
	opts.publishExpvar = true

	if err := run(os.Stderr, opts); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-serve:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, opts options) error {
	logger := log.New(out, "pprl-serve: ", log.LstdFlags)

	srv, err := service.New(service.Config{
		Dir:             opts.dir,
		DataDir:         opts.dataDir,
		Workers:         opts.workers,
		JournalSync:     opts.journalSync,
		EnablePprof:     opts.pprof,
		FleetListen:     opts.fleetListen,
		FleetWorkers:    opts.fleetWorkers,
		FleetMinWorkers: opts.fleetMinWorkers,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	if opts.publishExpvar {
		expvar.Publish("pprl", srv.Metrics())
	}

	// Retry the bind: after a crash-restart the old socket can linger in
	// TIME_WAIT for a moment.
	ctx := opts.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	bindCtx, cancel := context.WithTimeout(ctx, time.Minute)
	ln, err := cliutil.ListenRetry(bindCtx, "tcp", opts.addr, cliutil.Backoff{})
	cancel()
	if err != nil {
		return err
	}
	logger.Printf("serving on %s (state %s, %d workers)", ln.Addr(), opts.dir, opts.workers)
	if opts.ready != nil {
		opts.ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, checkpoint running jobs, keep the
	// queue for the next start.
	logger.Printf("draining: checkpointing running jobs")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	srv.Drain()
	logger.Printf("drained; interrupted jobs resume on next start")
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}
