package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pprl"
)

func TestRunStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 20, 1, "", ""); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 21 { // header + 20 rows
		t.Fatalf("emitted %d lines, want 21", len(lines))
	}
	if !strings.HasPrefix(lines[0], "entity_id,age,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestRunSplit(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := run(nil, 90, 2, "", a+","+b); err != nil {
		t.Fatal(err)
	}
	schema := pprl.AdultSchema()
	read := func(path string) *pprl.Dataset {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		d, err := pprl.ReadCSV(schema, f)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	da, db := read(a), read(b)
	if da.Len() != 60 || db.Len() != 60 {
		t.Errorf("split sizes %d, %d, want 60, 60", da.Len(), db.Len())
	}
	seen := map[int]bool{}
	for _, r := range da.Records() {
		seen[r.EntityID] = true
	}
	shared := 0
	for _, r := range db.Records() {
		if seen[r.EntityID] {
			shared++
		}
	}
	if shared != 30 {
		t.Errorf("shared entities = %d, want 30", shared)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, 0, 1, "", ""); err == nil {
		t.Error("n=0 should fail")
	}
	if err := run(nil, 10, 1, "", "only-one-path"); err == nil {
		t.Error("malformed -split should fail")
	}
	if err := run(nil, 10, 1, "/nonexistent/dir/x.csv", ""); err == nil {
		t.Error("unwritable output should fail")
	}
}
