// Command pprl-datagen synthesizes Adult-like datasets for the private
// record linkage tools (see DESIGN.md §3 for why synthetic data stands in
// for the UCI file). It can emit a single relation or the paper's
// evaluation construction: two relations sharing a third of their records.
//
// Usage:
//
//	pprl-datagen -n 3000 -seed 1 -o data.csv
//	pprl-datagen -n 3000 -seed 1 -split alice.csv,bob.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"pprl"
)

func main() {
	var (
		n     = flag.Int("n", 3000, "number of records to generate")
		seed  = flag.Int64("seed", 1, "generator seed (deterministic output)")
		out   = flag.String("o", "", "output CSV path (default stdout)")
		split = flag.String("split", "", "write two overlapping relations to the two comma-separated paths (paper's D1/D2 construction)")
		emit  = flag.String("emit-schema", "", "also write the Adult schema as an editable manifest + .vgh files into this directory (the -schema input of the other tools)")
	)
	flag.Parse()
	if *emit != "" {
		if err := pprl.SaveSchema(*emit, pprl.AdultSchema()); err != nil {
			fmt.Fprintln(os.Stderr, "pprl-datagen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote schema manifest to %s\n", *emit)
	}
	if err := run(os.Stdout, *n, *seed, *out, *split); err != nil {
		fmt.Fprintln(os.Stderr, "pprl-datagen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, n int, seed int64, out, split string) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	schema := pprl.AdultSchema()
	data := pprl.GenerateAdult(schema, n, seed)

	if split != "" {
		parts := strings.Split(split, ",")
		if len(parts) != 2 {
			return fmt.Errorf("-split needs exactly two comma-separated paths")
		}
		alice, bob := pprl.SplitOverlap(data, rand.New(rand.NewSource(seed+1)))
		if err := writeCSV(alice, parts[0]); err != nil {
			return err
		}
		if err := writeCSV(bob, parts[1]); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s and %d to %s (%d shared entities)\n",
			alice.Len(), parts[0], bob.Len(), parts[1], n/3)
		return nil
	}
	if out == "" {
		return data.WriteCSV(w)
	}
	if err := writeCSV(data, out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", data.Len(), out)
	return nil
}

func writeCSV(d *pprl.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
