package vgh

import "strings"

// Value is one generalized attribute value: either a taxonomy node of a
// categorical hierarchy or an interval of a continuous hierarchy. Exactly
// one of Node / interval is meaningful; Node == nil marks a continuous
// value.
type Value struct {
	// Node is the categorical generalization; nil for continuous values.
	Node *Node
	// Iv is the continuous generalization; ignored when Node is non-nil.
	Iv Interval
}

// CatValue wraps a taxonomy node as a Value.
func CatValue(n *Node) Value { return Value{Node: n} }

// NumValue wraps an interval as a Value.
func NumValue(iv Interval) Value { return Value{Iv: iv} }

// IsCategorical reports whether the value generalizes a categorical
// attribute.
func (v Value) IsCategorical() bool { return v.Node != nil }

// IsSpecific reports whether the value pins down exactly one concrete
// value (a leaf node, or a point interval).
func (v Value) IsSpecific() bool {
	if v.Node != nil {
		return v.Node.IsLeaf()
	}
	return v.Iv.IsPoint()
}

// SpecSetSize returns the cardinality of the specialization set for
// categorical values. Continuous values report 0; their specialization
// set is an interval, not a finite set.
func (v Value) SpecSetSize() int {
	if v.Node != nil {
		return v.Node.LeafCount()
	}
	return 0
}

// Covers reports whether other's specialization set is a subset of v's.
// Values of mismatched kinds never cover each other.
func (v Value) Covers(other Value) bool {
	if v.Node != nil {
		return other.Node != nil && v.Node.Covers(other.Node)
	}
	return other.Node == nil && v.Iv.ContainsInterval(other.Iv)
}

func (v Value) String() string {
	if v.Node != nil {
		return v.Node.Value
	}
	return v.Iv.String()
}

// Sequence is a full generalization sequence: one Value per quasi-
// identifier attribute, in schema order. Records generalized to the same
// sequence form an equivalence class, and all blocking decisions are made
// per distinct sequence pair.
type Sequence []Value

// Key returns a canonical string identity for the sequence, suitable as a
// map key when grouping records into equivalence classes.
func (s Sequence) Key() string {
	var sb strings.Builder
	for i, v := range s {
		if i > 0 {
			sb.WriteByte('\x1f')
		}
		sb.WriteString(v.String())
	}
	return sb.String()
}

// Equal reports whether two sequences are identical value by value.
func (s Sequence) Equal(other Sequence) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i].Node != other[i].Node {
			return false
		}
		if s[i].Node == nil && s[i].Iv != other[i].Iv {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
