package vgh

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary inputs never panic the parser and that
// every successfully parsed hierarchy passes full validation and
// round-trips through Dump.
func FuzzParse(f *testing.F) {
	f.Add("ANY\n  A\n    a1\n    a2\n  B\n    b1\n")
	f.Add(educationText)
	f.Add("ANY\n")
	f.Add("# comment\nANY\n\tA\n")
	f.Add("ANY\n  A\n  A\n")
	f.Add("  indented root\n")
	f.Fuzz(func(t *testing.T, input string) {
		h, err := Parse("fuzz", strings.NewReader(input))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("parsed hierarchy fails validation: %v\ninput: %q", err, input)
		}
		h2, err := Parse("fuzz", strings.NewReader(h.Dump()))
		if err != nil {
			t.Fatalf("Dump output does not re-parse: %v\ninput: %q", err, input)
		}
		if h2.NumLeaves() != h.NumLeaves() {
			t.Fatalf("round trip changed leaf count %d -> %d", h.NumLeaves(), h2.NumLeaves())
		}
	})
}
