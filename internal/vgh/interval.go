package vgh

import (
	"fmt"
	"math"
)

// Interval is a half-open numeric range [Lo, Hi). A fully specialized
// continuous value is represented as the degenerate interval [v, v].
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval holding a single concrete value.
func Point(v float64) Interval { return Interval{Lo: v, Hi: v} }

// IsPoint reports whether the interval holds exactly one value.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Width returns Hi - Lo; zero for a point.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in the interval. Points contain exactly
// their own value; proper intervals are half-open.
func (iv Interval) Contains(v float64) bool {
	if iv.IsPoint() {
		return v == iv.Lo
	}
	return iv.Lo <= v && v < iv.Hi
}

// ContainsInterval reports whether other is fully inside iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsPoint() {
		return iv.Contains(other.Lo)
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Overlaps reports whether the two intervals share at least one value.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.IsPoint() {
		return other.Contains(iv.Lo)
	}
	if other.IsPoint() {
		return iv.Contains(other.Lo)
	}
	return iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Gap returns the smallest distance between any value of iv and any value
// of other: zero when they overlap.
func (iv Interval) Gap(other Interval) float64 {
	if iv.Overlaps(other) {
		return 0
	}
	if iv.Hi <= other.Lo {
		return other.Lo - iv.Hi
	}
	return iv.Lo - other.Hi
}

// Span returns the largest distance between any value of iv and any value
// of other.
func (iv Interval) Span(other Interval) float64 {
	return math.Max(math.Abs(iv.Hi-other.Lo), math.Abs(other.Hi-iv.Lo))
}

func (iv Interval) String() string {
	if iv.IsPoint() {
		return formatNum(iv.Lo)
	}
	return fmt.Sprintf("[%s-%s)", formatNum(iv.Lo), formatNum(iv.Hi))
}

func formatNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// IntervalHierarchy generalizes continuous values into nested equi-width
// intervals. Level 0 is the root interval [Min, Max); each level below
// splits every interval into Branch equal parts, down to Depth levels,
// mirroring the paper's 4-level hierarchy whose leaf nodes cover 8-unit
// intervals.
type IntervalHierarchy struct {
	name   string
	min    float64
	max    float64
	branch int
	depth  int // number of levels below the root; leaves are at this depth
}

// NewIntervalHierarchy builds a hierarchy over [min, max) with the given
// branching factor and depth. depth 0 means the hierarchy has only the
// root (every value generalizes to [min, max)).
func NewIntervalHierarchy(name string, min, max float64, branch, depth int) (*IntervalHierarchy, error) {
	switch {
	case max <= min:
		return nil, fmt.Errorf("vgh: interval hierarchy %q: max %v <= min %v", name, max, min)
	case branch < 2:
		return nil, fmt.Errorf("vgh: interval hierarchy %q: branch %d < 2", name, branch)
	case depth < 0:
		return nil, fmt.Errorf("vgh: interval hierarchy %q: negative depth %d", name, depth)
	}
	return &IntervalHierarchy{name: name, min: min, max: max, branch: branch, depth: depth}, nil
}

// MustIntervalHierarchy is NewIntervalHierarchy that panics on error, for
// static definitions.
func MustIntervalHierarchy(name string, min, max float64, branch, depth int) *IntervalHierarchy {
	h, err := NewIntervalHierarchy(name, min, max, branch, depth)
	if err != nil {
		panic(err)
	}
	return h
}

// Name returns the attribute name the hierarchy describes.
func (h *IntervalHierarchy) Name() string { return h.name }

// Min returns the inclusive lower bound of the domain.
func (h *IntervalHierarchy) Min() float64 { return h.min }

// Max returns the exclusive upper bound of the domain.
func (h *IntervalHierarchy) Max() float64 { return h.max }

// Range returns the domain width, the normalization factor for distances
// (normFactor in the paper).
func (h *IntervalHierarchy) Range() float64 { return h.max - h.min }

// Depth returns the number of interval levels below the root. A concrete
// point value sits at depth Depth()+1 conceptually: one more specialization
// step past the leaf intervals.
func (h *IntervalHierarchy) Depth() int { return h.depth }

// Branch returns the per-level fan-out.
func (h *IntervalHierarchy) Branch() int { return h.branch }

// LeafWidth returns the width of a deepest-level interval.
func (h *IntervalHierarchy) LeafWidth() float64 {
	return (h.max - h.min) / math.Pow(float64(h.branch), float64(h.depth))
}

// widthAt returns the interval width at the given level (0 = root).
func (h *IntervalHierarchy) widthAt(level int) float64 {
	return (h.max - h.min) / math.Pow(float64(h.branch), float64(level))
}

// At returns the interval at the given level containing v. Level 0 is the
// whole domain; level Depth() is a leaf interval. Values outside the
// domain are clamped to the nearest interval.
func (h *IntervalHierarchy) At(v float64, level int) Interval {
	if level <= 0 {
		return Interval{Lo: h.min, Hi: h.max}
	}
	if level > h.depth {
		level = h.depth
	}
	w := h.widthAt(level)
	idx := math.Floor((v - h.min) / w)
	maxIdx := math.Pow(float64(h.branch), float64(level)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx > maxIdx {
		idx = maxIdx
	}
	return Interval{Lo: h.min + idx*w, Hi: h.min + (idx+1)*w}
}

// Parent returns the interval one level up from iv, or the root interval
// if iv is at or above level 1. Point values are promoted to their leaf
// interval.
func (h *IntervalHierarchy) Parent(iv Interval) Interval {
	if iv.IsPoint() {
		return h.At(iv.Lo, h.depth)
	}
	level := h.LevelOf(iv)
	if level <= 1 {
		return Interval{Lo: h.min, Hi: h.max}
	}
	// Use the midpoint so boundary rounding cannot select a neighbor.
	return h.At(iv.Lo+iv.Width()/2, level-1)
}

// Children returns the Branch sub-intervals one level below iv. Leaf
// intervals have no children; point values have none either.
func (h *IntervalHierarchy) Children(iv Interval) []Interval {
	if iv.IsPoint() {
		return nil
	}
	level := h.LevelOf(iv)
	if level >= h.depth {
		return nil
	}
	w := iv.Width() / float64(h.branch)
	out := make([]Interval, h.branch)
	for i := range out {
		out[i] = Interval{Lo: iv.Lo + float64(i)*w, Hi: iv.Lo + float64(i+1)*w}
	}
	return out
}

// LevelOf returns the hierarchy level whose interval width matches iv.
// Points report Depth()+1 (fully specialized, below the leaf intervals).
func (h *IntervalHierarchy) LevelOf(iv Interval) int {
	if iv.IsPoint() {
		return h.depth + 1
	}
	ratio := (h.max - h.min) / iv.Width()
	level := int(math.Round(math.Log(ratio) / math.Log(float64(h.branch))))
	if level < 0 {
		level = 0
	}
	if level > h.depth {
		level = h.depth
	}
	return level
}

// Root returns the whole-domain interval.
func (h *IntervalHierarchy) Root() Interval { return Interval{Lo: h.min, Hi: h.max} }
