package vgh

import (
	"testing"
)

func TestPrefixHierarchy(t *testing.T) {
	names := []string{"smith", "smyth", "stone", "jones", "johnson", "johnston", "smith"}
	h, err := PrefixHierarchy("surname", names, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.NumLeaves(); got != 6 {
		t.Errorf("NumLeaves = %d, want 6 (dedup)", got)
	}
	// smith sits under sm* under s* under ANY.
	smith := h.MustLookup("smith")
	if smith.Parent.Value != "sm*" || smith.Parent.Parent.Value != "s*" || smith.Parent.Parent.Parent != h.Root() {
		t.Errorf("smith chain: %v <- %v <- %v", smith.Parent, smith.Parent.Parent, smith.Parent.Parent.Parent)
	}
	// jo* covers jones, johnson, johnston.
	jo := h.MustLookup("jo*")
	if jo.LeafCount() != 3 {
		t.Errorf("|specSet(jo*)| = %d, want 3", jo.LeafCount())
	}
	// Disjoint prefixes do not overlap.
	if jo.Overlaps(h.MustLookup("sm*")) {
		t.Error("jo* and sm* should be disjoint")
	}
}

func TestPrefixHierarchyFlat(t *testing.T) {
	h, err := PrefixHierarchy("x", []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Height() != 1 || h.NumLeaves() != 2 {
		t.Errorf("no-prefix hierarchy should be flat: height %d, leaves %d", h.Height(), h.NumLeaves())
	}
	if h.Leaf(0).Value != "a" {
		t.Errorf("leaves should be sorted: %v", h.LeafValues())
	}
}

func TestPrefixHierarchyShortValues(t *testing.T) {
	// Values shorter than a prefix length collapse onto their own label.
	h, err := PrefixHierarchy("x", []string{"a", "ab", "abc"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	a := h.MustLookup("a")
	if a.Parent.Value != "a*" {
		t.Errorf("short value parent = %v, want a*", a.Parent)
	}
	ab := h.MustLookup("ab")
	if ab.Parent.Value != "ab*" {
		t.Errorf("ab parent = %v, want ab*", ab.Parent)
	}
}

func TestPrefixHierarchyErrors(t *testing.T) {
	if _, err := PrefixHierarchy("x", nil, 1); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := PrefixHierarchy("x", []string{"a", ""}, 1); err == nil {
		t.Error("empty value should fail")
	}
	if _, err := PrefixHierarchy("x", []string{"a*b"}, 1); err == nil {
		t.Error("reserved character should fail")
	}
	if _, err := PrefixHierarchy("x", []string{"ab"}, 2, 2); err == nil {
		t.Error("non-ascending prefix lengths should fail")
	}
	if _, err := PrefixHierarchy("x", []string{"ab"}, 0); err == nil {
		t.Error("prefix length 0 should fail")
	}
}
