package vgh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 35, Hi: 37}
	if iv.IsPoint() {
		t.Error("[35,37) is not a point")
	}
	if got := iv.Width(); got != 2 {
		t.Errorf("Width = %v, want 2", got)
	}
	if !iv.Contains(35) || !iv.Contains(36.9) {
		t.Error("[35,37) should contain 35 and 36.9")
	}
	if iv.Contains(37) {
		t.Error("[35,37) is half-open; should not contain 37")
	}
	p := Point(35)
	if !p.IsPoint() || !p.Contains(35) || p.Contains(35.1) {
		t.Error("Point(35) should contain exactly 35")
	}
	if got := iv.String(); got != "[35-37)" {
		t.Errorf("String = %q, want [35-37)", got)
	}
	if got := p.String(); got != "35" {
		t.Errorf("point String = %q, want 35", got)
	}
}

func TestIntervalContainment(t *testing.T) {
	outer := Interval{Lo: 1, Hi: 99}
	inner := Interval{Lo: 35, Hi: 37}
	if !outer.ContainsInterval(inner) {
		t.Error("[1,99) should contain [35,37)")
	}
	if inner.ContainsInterval(outer) {
		t.Error("[35,37) should not contain [1,99)")
	}
	if !outer.ContainsInterval(Point(50)) {
		t.Error("[1,99) should contain point 50")
	}
	if outer.ContainsInterval(Point(99)) {
		t.Error("[1,99) should not contain point 99 (half-open)")
	}
	if !inner.ContainsInterval(inner) {
		t.Error("an interval contains itself")
	}
}

func TestGapAndSpan(t *testing.T) {
	a := Interval{Lo: 1, Hi: 35}
	b := Interval{Lo: 35, Hi: 37}
	if got := a.Gap(b); got != 0 {
		t.Errorf("adjacent intervals Gap = %v, want 0 (touching at boundary counts per half-open semantics as no overlap, gap 0)", got)
	}
	c := Interval{Lo: 40, Hi: 50}
	if got := b.Gap(c); got != 3 {
		t.Errorf("Gap([35,37),[40,50)) = %v, want 3", got)
	}
	if got := c.Gap(b); got != 3 {
		t.Errorf("Gap symmetric: %v, want 3", got)
	}
	if got := b.Span(c); got != 15 {
		t.Errorf("Span([35,37),[40,50)) = %v, want 15", got)
	}
	// Points.
	if got := Point(10).Gap(Point(4)); got != 6 {
		t.Errorf("Gap(10,4) = %v, want 6", got)
	}
	if got := Point(10).Span(Point(4)); got != 6 {
		t.Errorf("Span(10,4) = %v, want 6", got)
	}
}

func TestIntervalHierarchyLevels(t *testing.T) {
	// Mirror the paper's Adult age hierarchy: 4 levels below the root
	// would give leaf width range/2^4; instead the paper states 4 levels
	// total with 8-unit leaves. We build [17,81) with branch 2 depth 3:
	// widths 64, 32, 16, 8.
	h := MustIntervalHierarchy("age", 17, 81, 2, 3)
	if got := h.LeafWidth(); got != 8 {
		t.Fatalf("LeafWidth = %v, want 8", got)
	}
	iv := h.At(35, 3)
	if iv.Lo != 33 || iv.Hi != 41 {
		t.Errorf("leaf of 35 = %v, want [33-41)", iv)
	}
	if got := h.At(35, 0); got != (Interval{Lo: 17, Hi: 81}) {
		t.Errorf("level 0 = %v, want root", got)
	}
	if got := h.LevelOf(iv); got != 3 {
		t.Errorf("LevelOf(leaf) = %d, want 3", got)
	}
	if got := h.LevelOf(h.Root()); got != 0 {
		t.Errorf("LevelOf(root) = %d, want 0", got)
	}
	if got := h.LevelOf(Point(35)); got != 4 {
		t.Errorf("LevelOf(point) = %d, want depth+1 = 4", got)
	}
}

func TestIntervalHierarchyParentChildren(t *testing.T) {
	h := MustIntervalHierarchy("age", 0, 64, 2, 3)
	leaf := h.At(11, 3) // [8,16)
	if leaf.Lo != 8 || leaf.Hi != 16 {
		t.Fatalf("leaf = %v, want [8-16)", leaf)
	}
	parent := h.Parent(leaf)
	if parent.Lo != 0 || parent.Hi != 16 {
		t.Errorf("Parent = %v, want [0-16)", parent)
	}
	grand := h.Parent(parent)
	if grand.Lo != 0 || grand.Hi != 32 {
		t.Errorf("grandparent = %v, want [0-32)", grand)
	}
	if got := h.Parent(grand); got != h.Root() {
		t.Errorf("great-grandparent = %v, want root", got)
	}
	if got := h.Parent(h.Root()); got != h.Root() {
		t.Errorf("Parent(root) = %v, want root (idempotent)", got)
	}
	if got := h.Parent(Point(11)); got != leaf {
		t.Errorf("Parent(point 11) = %v, want its leaf %v", got, leaf)
	}

	kids := h.Children(parent)
	if len(kids) != 2 || kids[0] != (Interval{0, 8}) || kids[1] != (Interval{8, 16}) {
		t.Errorf("Children([0,16)) = %v, want [[0-8) [8-16)]", kids)
	}
	if got := h.Children(leaf); got != nil {
		t.Errorf("Children(leaf) = %v, want nil", got)
	}
	if got := h.Children(Point(3)); got != nil {
		t.Errorf("Children(point) = %v, want nil", got)
	}
}

func TestIntervalHierarchyClamping(t *testing.T) {
	h := MustIntervalHierarchy("age", 0, 64, 2, 3)
	lo := h.At(-5, 3)
	if lo.Lo != 0 || lo.Hi != 8 {
		t.Errorf("below-domain value maps to %v, want first leaf [0-8)", lo)
	}
	hi := h.At(1000, 3)
	if hi.Lo != 56 || hi.Hi != 64 {
		t.Errorf("above-domain value maps to %v, want last leaf [56-64)", hi)
	}
	edge := h.At(64, 3)
	if edge.Lo != 56 || edge.Hi != 64 {
		t.Errorf("Max itself maps to %v, want last leaf", edge)
	}
}

func TestNewIntervalHierarchyErrors(t *testing.T) {
	if _, err := NewIntervalHierarchy("x", 10, 10, 2, 3); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := NewIntervalHierarchy("x", 0, 10, 1, 3); err == nil {
		t.Error("branch < 2 should error")
	}
	if _, err := NewIntervalHierarchy("x", 0, 10, 2, -1); err == nil {
		t.Error("negative depth should error")
	}
}

// Property: At(v, L) always contains v (after clamping into the domain),
// and climbing Parent from the leaf reaches the root in exactly depth
// steps with each interval containing the previous one.
func TestIntervalHierarchyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		min := float64(r.Intn(50))
		width := float64(int(8) * (1 << (2 + r.Intn(3)))) // 32, 64, 128
		branch := 2 + r.Intn(2)
		depth := 1 + r.Intn(3)
		h := MustIntervalHierarchy("p", min, min+width, branch, depth)
		for i := 0; i < 20; i++ {
			v := min + r.Float64()*width*0.999
			cur := h.At(v, depth)
			if !cur.Contains(v) {
				t.Logf("leaf %v does not contain %v", cur, v)
				return false
			}
			steps := 0
			for cur != h.Root() {
				next := h.Parent(cur)
				if !next.ContainsInterval(cur) {
					t.Logf("parent %v does not contain child %v", next, cur)
					return false
				}
				if math.Abs(next.Width()/cur.Width()-float64(branch)) > 1e-9 {
					t.Logf("parent width %v not branch× child width %v", next.Width(), cur.Width())
					return false
				}
				cur = next
				steps++
				if steps > depth {
					t.Logf("did not reach root after %d steps", steps)
					return false
				}
			}
			if steps != depth {
				t.Logf("reached root in %d steps, want %d", steps, depth)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
