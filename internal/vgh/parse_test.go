package vgh

import (
	"strings"
	"testing"
)

func TestParseEducation(t *testing.T) {
	h := education(t)
	if got, want := h.Root().Value, "ANY"; got != want {
		t.Errorf("root = %q, want %q", got, want)
	}
	wantLeaves := []string{"9th", "10th", "11th", "12th", "Bachelors", "Masters", "Doctorate"}
	got := h.LeafValues()
	if len(got) != len(wantLeaves) {
		t.Fatalf("leaves = %v, want %v", got, wantLeaves)
	}
	for i := range got {
		if got[i] != wantLeaves[i] {
			t.Errorf("leaf %d = %q, want %q", i, got[i], wantLeaves[i])
		}
	}
	// "Senior Sec." specializes to {11th, 12th} per the paper's example.
	sen := h.MustLookup("Senior Sec.")
	lo, hi := sen.LeafRange()
	if hi-lo != 2 || h.Leaf(lo).Value != "11th" || h.Leaf(lo+1).Value != "12th" {
		t.Errorf("specSet(Senior Sec.) = leaves[%d:%d], want {11th, 12th}", lo, hi)
	}
}

func TestParseTabs(t *testing.T) {
	h, err := Parse("x", strings.NewReader("ANY\n\tA\n\t\ta1\n\tB\n"))
	if err != nil {
		t.Fatalf("Parse with tabs: %v", err)
	}
	if h.NumLeaves() != 2 {
		t.Errorf("NumLeaves = %d, want 2", h.NumLeaves())
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	text := "# education hierarchy\nANY\n\n  # secondary branch\n  A\n    a1\n"
	h, err := Parse("x", strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if h.NumLeaves() != 1 || h.Leaf(0).Value != "a1" {
		t.Errorf("leaves = %v, want [a1]", h.LeafValues())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"indented root", "  ANY\n"},
		{"two roots", "ANY\nOTHER\n"},
		{"skipped level", "ANY\n    deep\n"},
		{"odd indent", "ANY\n A\n"},
		{"mixed indent", "ANY\n\t  A\n"},
		{"duplicate", "ANY\n  A\n  A\n"},
	}
	for _, c := range cases {
		if _, err := Parse("x", strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid input")
		}
	}()
	MustParse("x", "  bad\n")
}

func TestSequenceKeyAndEqual(t *testing.T) {
	h := education(t)
	s1 := Sequence{CatValue(h.MustLookup("Masters")), NumValue(Interval{35, 37})}
	s2 := Sequence{CatValue(h.MustLookup("Masters")), NumValue(Interval{35, 37})}
	s3 := Sequence{CatValue(h.MustLookup("Masters")), NumValue(Interval{1, 35})}
	if s1.Key() != s2.Key() {
		t.Error("identical sequences should share a key")
	}
	if s1.Key() == s3.Key() {
		t.Error("different sequences should have different keys")
	}
	if !s1.Equal(s2) || s1.Equal(s3) {
		t.Error("Equal disagrees with identity")
	}
	if s1.Equal(s1[:1]) {
		t.Error("sequences of different lengths are not equal")
	}
	clone := s1.Clone()
	clone[0] = CatValue(h.MustLookup("9th"))
	if s1[0].Node.Value != "Masters" {
		t.Error("Clone should be independent")
	}
	if got := s1.String(); got != "(Masters, [35-37))" {
		t.Errorf("String = %q", got)
	}
}

func TestValueCoversAndSpecific(t *testing.T) {
	h := education(t)
	uni := CatValue(h.MustLookup("University"))
	masters := CatValue(h.MustLookup("Masters"))
	if !uni.Covers(masters) || masters.Covers(uni) {
		t.Error("categorical Covers wrong")
	}
	if !masters.IsSpecific() || uni.IsSpecific() {
		t.Error("IsSpecific wrong for categorical values")
	}
	if got := uni.SpecSetSize(); got != 3 {
		t.Errorf("SpecSetSize(University) = %d, want 3", got)
	}
	num := NumValue(Interval{1, 35})
	pt := NumValue(Point(20))
	if !num.Covers(pt) || pt.Covers(num) {
		t.Error("continuous Covers wrong")
	}
	if !pt.IsSpecific() || num.IsSpecific() {
		t.Error("IsSpecific wrong for continuous values")
	}
	if uni.Covers(num) || num.Covers(uni) {
		t.Error("mixed-kind values must not cover each other")
	}
	if uni.IsCategorical() == num.IsCategorical() {
		t.Error("IsCategorical should distinguish kinds")
	}
}
