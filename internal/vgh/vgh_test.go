package vgh

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// educationText is the Education VGH from Figure 1 of the paper.
const educationText = `ANY
  Secondary
    Junior Sec.
      9th
      10th
    Senior Sec.
      11th
      12th
  University
    Bachelors
    Grad School
      Masters
      Doctorate
`

func education(t testing.TB) *Hierarchy {
	t.Helper()
	h, err := Parse("education", strings.NewReader(educationText))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return h
}

func TestBuilderBasic(t *testing.T) {
	h := NewBuilder("attr", "ANY").
		AddAll("ANY", "A", "B").
		AddAll("A", "a1", "a2").
		AddAll("B", "b1", "b2", "b3").
		MustBuild()
	if got, want := h.NumLeaves(), 5; got != want {
		t.Fatalf("NumLeaves = %d, want %d", got, want)
	}
	if got, want := h.Height(), 2; got != want {
		t.Fatalf("Height = %d, want %d", got, want)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.Lookup("a1").Parent != h.Lookup("A") {
		t.Errorf("a1's parent is %v, want A", h.Lookup("a1").Parent)
	}
	if h.Lookup("A").IsLeaf() || !h.Lookup("a1").IsLeaf() {
		t.Errorf("IsLeaf confuses internal and leaf nodes")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x", "ANY").Add("missing", "v").Build(); err == nil {
		t.Error("expected error for unknown parent")
	}
	if _, err := NewBuilder("x", "ANY").Add("ANY", "v").Add("ANY", "v").Build(); err == nil {
		t.Error("expected error for duplicate value")
	}
	if _, err := NewBuilder("x", "ANY").Build(); err != nil {
		// A bare root is a single leaf — legal.
		t.Errorf("bare root should build: %v", err)
	}
}

func TestLeafRangesContiguous(t *testing.T) {
	h := education(t)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := h.NumLeaves(), 7; got != want {
		t.Fatalf("NumLeaves = %d, want %d", got, want)
	}
	sec := h.MustLookup("Secondary")
	lo, hi := sec.LeafRange()
	if hi-lo != 4 {
		t.Errorf("Secondary covers %d leaves, want 4", hi-lo)
	}
	for i := lo; i < hi; i++ {
		if !sec.Covers(h.Leaf(i)) {
			t.Errorf("Secondary should cover leaf %q", h.Leaf(i).Value)
		}
	}
}

func TestCoversOverlapsIntersection(t *testing.T) {
	h := education(t)
	sec := h.MustLookup("Secondary")
	sen := h.MustLookup("Senior Sec.")
	uni := h.MustLookup("University")
	masters := h.MustLookup("Masters")

	if !sec.Covers(sen) {
		t.Error("Secondary should cover Senior Sec.")
	}
	if sen.Covers(sec) {
		t.Error("Senior Sec. should not cover Secondary")
	}
	if sec.Overlaps(uni) {
		t.Error("Secondary and University are disjoint")
	}
	if !uni.Overlaps(masters) {
		t.Error("University overlaps Masters")
	}
	if got := sec.IntersectionSize(sen); got != 2 {
		t.Errorf("|Secondary ∩ Senior Sec.| = %d, want 2", got)
	}
	if got := sec.IntersectionSize(uni); got != 0 {
		t.Errorf("|Secondary ∩ University| = %d, want 0", got)
	}
	if got := masters.IntersectionSize(masters); got != 1 {
		t.Errorf("|Masters ∩ Masters| = %d, want 1", got)
	}
}

func TestGeneralizeToDepth(t *testing.T) {
	h := education(t)
	m := h.MustLookup("Masters")
	if got := h.GeneralizeToDepth(m, 0); got != h.Root() {
		t.Errorf("depth 0 = %v, want root", got)
	}
	if got := h.GeneralizeToDepth(m, 1); got != h.MustLookup("University") {
		t.Errorf("depth 1 = %v, want University", got)
	}
	if got := h.GeneralizeToDepth(m, 2); got != h.MustLookup("Grad School") {
		t.Errorf("depth 2 = %v, want Grad School", got)
	}
	if got := h.GeneralizeToDepth(m, 3); got != m {
		t.Errorf("depth 3 = %v, want Masters itself", got)
	}
	if got := h.GeneralizeToDepth(m, 99); got != m {
		t.Errorf("deeper than node = %v, want node unchanged", got)
	}
}

func TestLCA(t *testing.T) {
	h := education(t)
	cases := []struct{ a, b, want string }{
		{"Masters", "Doctorate", "Grad School"},
		{"Masters", "Bachelors", "University"},
		{"Masters", "9th", "ANY"},
		{"9th", "10th", "Junior Sec."},
		{"9th", "12th", "Secondary"},
		{"Masters", "Masters", "Masters"},
		{"Secondary", "11th", "Secondary"},
	}
	for _, c := range cases {
		if got := h.LCA(h.MustLookup(c.a), h.MustLookup(c.b)); got.Value != c.want {
			t.Errorf("LCA(%s, %s) = %s, want %s", c.a, c.b, got.Value, c.want)
		}
	}
}

func TestAncestors(t *testing.T) {
	h := education(t)
	anc := h.Ancestors(h.MustLookup("Masters"))
	want := []string{"Grad School", "University", "ANY"}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors length = %d, want %d", len(anc), len(want))
	}
	for i, n := range anc {
		if n.Value != want[i] {
			t.Errorf("ancestor %d = %s, want %s", i, n.Value, want[i])
		}
	}
	if got := h.Ancestors(h.Root()); len(got) != 0 {
		t.Errorf("root ancestors = %v, want empty", got)
	}
}

func TestFlat(t *testing.T) {
	h := Flat("sex", "ANY", "Male", "Female")
	if h.Height() != 1 || h.NumLeaves() != 2 {
		t.Fatalf("Flat: height %d leaves %d, want 1 and 2", h.Height(), h.NumLeaves())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	h := education(t)
	h2, err := Parse("education", strings.NewReader(h.Dump()))
	if err != nil {
		t.Fatalf("re-Parse of Dump: %v", err)
	}
	if h2.NumLeaves() != h.NumLeaves() || h2.Height() != h.Height() {
		t.Fatalf("round trip changed shape: %d/%d leaves, %d/%d height",
			h.NumLeaves(), h2.NumLeaves(), h.Height(), h2.Height())
	}
	for i, leaf := range h.Leaves() {
		if h2.Leaf(i).Value != leaf.Value {
			t.Errorf("leaf %d = %q, want %q", i, h2.Leaf(i).Value, leaf.Value)
		}
	}
}

// randomHierarchy builds a random tree for property tests.
func randomHierarchy(r *rand.Rand) *Hierarchy {
	b := NewBuilder("rand", "ANY")
	id := 0
	var grow func(parent string, depth int)
	grow = func(parent string, depth int) {
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			id++
			label := parent + "." + string(rune('a'+i))
			b.Add(parent, label)
			if depth < 3 && r.Intn(2) == 0 {
				grow(label, depth+1)
			}
		}
	}
	grow("ANY", 0)
	return b.MustBuild()
}

// Property: for any two nodes, Overlaps(a,b) iff one is an ancestor of the
// other (trees give laminar leaf ranges), and IntersectionSize equals the
// smaller leaf count in that case.
func TestOverlapIsAncestryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomHierarchy(r)
		if err := h.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		var nodes []*Node
		var collect func(n *Node)
		collect = func(n *Node) {
			nodes = append(nodes, n)
			for _, c := range n.Children {
				collect(c)
			}
		}
		collect(h.Root())
		for i := 0; i < 50; i++ {
			a := nodes[r.Intn(len(nodes))]
			b := nodes[r.Intn(len(nodes))]
			ancestry := a.Covers(b) || b.Covers(a)
			if a.Overlaps(b) != ancestry {
				t.Logf("Overlaps(%s,%s)=%v but ancestry=%v", a, b, a.Overlaps(b), ancestry)
				return false
			}
			wantInter := 0
			if ancestry {
				wantInter = min(a.LeafCount(), b.LeafCount())
			}
			if a.IntersectionSize(b) != wantInter {
				t.Logf("IntersectionSize(%s,%s)=%d want %d", a, b, a.IntersectionSize(b), wantInter)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
