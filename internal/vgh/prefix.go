package vgh

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixHierarchy builds a generalization hierarchy over a string domain
// by clustering values on their prefixes: one internal level per entry of
// prefixLens (ascending), then the values themselves as leaves. It is the
// generalization mechanism for alphanumeric attributes the paper's
// future-work section calls for: generalized values like "sm*" have a
// finite specialization set (all dictionary strings starting "sm"), so
// the slack-distance machinery — with the edit-distance metric — applies
// unchanged.
//
// Values are deduplicated and sorted; internal node labels are the prefix
// followed by '*' ("s*", "sm*"), the root is "ANY".
func PrefixHierarchy(name string, values []string, prefixLens ...int) (*Hierarchy, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("vgh: prefix hierarchy %q needs values", name)
	}
	for i := 1; i < len(prefixLens); i++ {
		if prefixLens[i] <= prefixLens[i-1] {
			return nil, fmt.Errorf("vgh: prefix lengths must be strictly ascending, got %v", prefixLens)
		}
	}
	if len(prefixLens) > 0 && prefixLens[0] < 1 {
		return nil, fmt.Errorf("vgh: prefix lengths must be ≥ 1, got %v", prefixLens)
	}
	uniq := make([]string, 0, len(values))
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		if v == "" {
			return nil, fmt.Errorf("vgh: prefix hierarchy %q has an empty value", name)
		}
		if strings.ContainsAny(v, "*\x1f\t") {
			return nil, fmt.Errorf("vgh: value %q contains a reserved character", v)
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		uniq = append(uniq, v)
	}
	sort.Strings(uniq)

	b := NewBuilder(name, "ANY")
	// parentOf returns the label of the node a value hangs under at the
	// given level (level == len(prefixLens) means the leaf's parent).
	label := func(v string, level int) string {
		if level == 0 {
			return "ANY"
		}
		n := prefixLens[level-1]
		if n > len(v) {
			n = len(v)
		}
		return v[:n] + "*"
	}
	added := make(map[string]struct{})
	added["ANY"] = struct{}{}
	for _, v := range uniq {
		for level := 1; level <= len(prefixLens); level++ {
			l := label(v, level)
			if _, ok := added[l]; ok {
				continue
			}
			b.Add(label(v, level-1), l)
			added[l] = struct{}{}
		}
		b.Add(label(v, len(prefixLens)), v)
	}
	return b.Build()
}
