// Package vgh implements value generalization hierarchies (VGHs), the
// taxonomy structures that k-anonymization algorithms generalize over and
// that the blocking step of hybrid private record linkage reasons about.
//
// A categorical hierarchy is a rooted tree whose leaves are the concrete
// domain values of an attribute (e.g. "Masters", "9th") and whose internal
// nodes are generalizations ("Grad School", "Secondary", "ANY"). A
// continuous hierarchy generalizes numeric values into nested intervals,
// equi-width at the leaf level and widening by a fixed branching factor at
// every level above, as in the 4-level, 8-unit-leaf age hierarchy the paper
// adopts for the Adult data set.
//
// The central concept for blocking is the specialization set of a
// generalized value: the set of concrete values it may stand for. For a
// categorical node that is the set of leaves below it; for a continuous
// value it is an interval. Hierarchies here assign leaves contiguous
// indexes in depth-first order so a node's specialization set is always a
// dense index range, making set intersection and cardinality O(1).
package vgh

import (
	"fmt"
	"sort"
	"strings"
)

// Node is a single value in a categorical hierarchy. Leaves are concrete
// domain values; internal nodes are generalizations of their descendants.
type Node struct {
	// Value is the label of this node, unique within its hierarchy.
	Value string
	// Parent is nil for the root.
	Parent *Node
	// Children are ordered; leaf indexes follow this order.
	Children []*Node

	depth  int // root = 0
	leafLo int // first leaf index covered (inclusive)
	leafHi int // last leaf index covered (exclusive)
}

// IsLeaf reports whether the node is a concrete domain value.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Depth returns the node's distance from the root (root = 0).
func (n *Node) Depth() int { return n.depth }

// LeafCount returns the size of the node's specialization set.
func (n *Node) LeafCount() int { return n.leafHi - n.leafLo }

// LeafRange returns the half-open range [lo, hi) of leaf indexes covered
// by the node. Leaf indexes are assigned in depth-first order, so the set
// of leaves under any node is contiguous.
func (n *Node) LeafRange() (lo, hi int) { return n.leafLo, n.leafHi }

// Covers reports whether other's specialization set is a subset of n's.
func (n *Node) Covers(other *Node) bool {
	return n.leafLo <= other.leafLo && other.leafHi <= n.leafHi
}

// Overlaps reports whether the specialization sets of n and other share at
// least one concrete value. In a tree this happens exactly when one node is
// an ancestor of (or equal to) the other.
func (n *Node) Overlaps(other *Node) bool {
	return n.leafLo < other.leafHi && other.leafLo < n.leafHi
}

// IntersectionSize returns the number of concrete values shared by the
// specialization sets of n and other.
func (n *Node) IntersectionSize(other *Node) int {
	lo := max(n.leafLo, other.leafLo)
	hi := min(n.leafHi, other.leafHi)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func (n *Node) String() string { return n.Value }

// Hierarchy is an immutable categorical value generalization hierarchy.
type Hierarchy struct {
	name   string
	root   *Node
	byName map[string]*Node
	leaves []*Node // in leaf-index order
	height int     // max depth of any leaf
}

// Name returns the attribute name the hierarchy describes.
func (h *Hierarchy) Name() string { return h.name }

// Root returns the most general value (typically "ANY").
func (h *Hierarchy) Root() *Node { return h.root }

// Height returns the maximum leaf depth; a flat domain under a single root
// has height 1.
func (h *Hierarchy) Height() int { return h.height }

// NumLeaves returns the size of the concrete domain.
func (h *Hierarchy) NumLeaves() int { return len(h.leaves) }

// Leaves returns the concrete domain values in leaf-index order. The
// returned slice must not be modified.
func (h *Hierarchy) Leaves() []*Node { return h.leaves }

// Leaf returns the leaf node at the given index.
func (h *Hierarchy) Leaf(i int) *Node { return h.leaves[i] }

// Lookup returns the node with the given label, or nil if absent.
func (h *Hierarchy) Lookup(value string) *Node { return h.byName[value] }

// MustLookup is Lookup that panics on unknown values. It is intended for
// static hierarchies and test fixtures.
func (h *Hierarchy) MustLookup(value string) *Node {
	n := h.byName[value]
	if n == nil {
		panic(fmt.Sprintf("vgh: hierarchy %q has no value %q", h.name, value))
	}
	return n
}

// LeafValues returns the labels of all leaves in index order.
func (h *Hierarchy) LeafValues() []string {
	out := make([]string, len(h.leaves))
	for i, n := range h.leaves {
		out[i] = n.Value
	}
	return out
}

// GeneralizeToDepth returns the ancestor of n at the requested depth. If n
// is already at or above that depth it is returned unchanged. Depth 0 is
// the root.
func (h *Hierarchy) GeneralizeToDepth(n *Node, depth int) *Node {
	for n.depth > depth {
		n = n.Parent
	}
	return n
}

// Ancestors returns the chain from n's parent up to the root, nearest
// first. A root yields an empty slice.
func (h *Hierarchy) Ancestors(n *Node) []*Node {
	var out []*Node
	for p := n.Parent; p != nil; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// LCA returns the lowest common ancestor of a and b.
func (h *Hierarchy) LCA(a, b *Node) *Node {
	for a.depth > b.depth {
		a = a.Parent
	}
	for b.depth > a.depth {
		b = b.Parent
	}
	for a != b {
		a, b = a.Parent, b.Parent
	}
	return a
}

// Builder incrementally constructs a Hierarchy. Nodes may be added in any
// order as long as every parent is added before its children.
type Builder struct {
	name   string
	root   *Node
	byName map[string]*Node
	err    error
}

// NewBuilder starts a hierarchy for the named attribute with the given
// root label (conventionally "ANY").
func NewBuilder(name, rootValue string) *Builder {
	root := &Node{Value: rootValue}
	return &Builder{
		name:   name,
		root:   root,
		byName: map[string]*Node{rootValue: root},
	}
}

// Add inserts value as a child of parent. Errors are deferred to Build so
// call sites can chain without per-call checks.
func (b *Builder) Add(parent, value string) *Builder {
	if b.err != nil {
		return b
	}
	p, ok := b.byName[parent]
	if !ok {
		b.err = fmt.Errorf("vgh: parent %q not defined before child %q", parent, value)
		return b
	}
	if _, dup := b.byName[value]; dup {
		b.err = fmt.Errorf("vgh: duplicate value %q", value)
		return b
	}
	n := &Node{Value: value, Parent: p, depth: p.depth + 1}
	p.Children = append(p.Children, n)
	b.byName[value] = n
	return b
}

// AddAll inserts several children under one parent.
func (b *Builder) AddAll(parent string, values ...string) *Builder {
	for _, v := range values {
		b.Add(parent, v)
	}
	return b
}

// Build finalizes the hierarchy, assigning contiguous leaf indexes.
func (b *Builder) Build() (*Hierarchy, error) {
	if b.err != nil {
		return nil, b.err
	}
	h := &Hierarchy{name: b.name, root: b.root, byName: b.byName}
	h.index(b.root)
	if len(h.leaves) == 0 {
		return nil, fmt.Errorf("vgh: hierarchy %q has no leaves", b.name)
	}
	return h, nil
}

// MustBuild is Build that panics on error, for static hierarchy literals.
func (b *Builder) MustBuild() *Hierarchy {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// index assigns leaf ranges and records leaves in DFS order.
func (h *Hierarchy) index(n *Node) {
	if n.IsLeaf() {
		n.leafLo = len(h.leaves)
		n.leafHi = n.leafLo + 1
		h.leaves = append(h.leaves, n)
		if n.depth > h.height {
			h.height = n.depth
		}
		return
	}
	n.leafLo = len(h.leaves)
	for _, c := range n.Children {
		h.index(c)
	}
	n.leafHi = len(h.leaves)
}

// Flat builds a height-1 hierarchy: every domain value is a direct child
// of the root. Useful for attributes without a meaningful taxonomy.
func Flat(name, rootValue string, values ...string) *Hierarchy {
	b := NewBuilder(name, rootValue)
	b.AddAll(rootValue, values...)
	return b.MustBuild()
}

// Dump renders the hierarchy as the indented text format accepted by
// Parse, one node per line, children indented two spaces beyond parents.
func (h *Hierarchy) Dump() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Value)
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(h.root, 0)
	return sb.String()
}

// Validate checks internal invariants: leaf ranges are contiguous, depths
// are consistent, and every name maps to a reachable node. It exists for
// tests and for hierarchies deserialized from external sources.
func (h *Hierarchy) Validate() error {
	seen := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			if n.leafLo != seen || n.leafHi != seen+1 {
				return fmt.Errorf("vgh: leaf %q has range [%d,%d), want [%d,%d)", n.Value, n.leafLo, n.leafHi, seen, seen+1)
			}
			seen++
			return nil
		}
		lo := seen
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("vgh: node %q has wrong parent link", c.Value)
			}
			if c.depth != n.depth+1 {
				return fmt.Errorf("vgh: node %q depth %d, want %d", c.Value, c.depth, n.depth+1)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		if n.leafLo != lo || n.leafHi != seen {
			return fmt.Errorf("vgh: node %q has range [%d,%d), want [%d,%d)", n.Value, n.leafLo, n.leafHi, lo, seen)
		}
		return nil
	}
	if err := walk(h.root); err != nil {
		return err
	}
	if seen != len(h.leaves) {
		return fmt.Errorf("vgh: %d leaves indexed, %d recorded", seen, len(h.leaves))
	}
	names := make([]string, 0, len(h.byName))
	for name, n := range h.byName {
		if n.Value != name {
			return fmt.Errorf("vgh: name table maps %q to node %q", name, n.Value)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return nil
}
