package vgh

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads a hierarchy from the indented text format:
//
//	ANY
//	  Secondary
//	    Junior Sec.
//	      9th
//	      10th
//	  University
//	    Bachelors
//
// Each line is a node label; indentation (two spaces, or one tab, per
// level) gives the parent/child structure. The first line is the root.
// Blank lines and lines starting with '#' are ignored.
func Parse(name string, r io.Reader) (*Hierarchy, error) {
	sc := bufio.NewScanner(r)
	type frame struct {
		label string
		depth int
	}
	var (
		b     *Builder
		stack []frame
		line  int
	)
	for sc.Scan() {
		line++
		raw := sc.Text()
		trimmed := strings.TrimLeft(raw, " \t")
		label := strings.TrimSpace(trimmed)
		// The comment check must look at the fully trimmed label: a line
		// like "\r#" would otherwise parse as a root named "#", which
		// Dump re-emits as a comment and can never round-trip.
		if trimmed == "" || strings.HasPrefix(label, "#") {
			continue
		}
		depth, err := indentDepth(raw[:len(raw)-len(trimmed)])
		if err != nil {
			return nil, fmt.Errorf("vgh: line %d: %w", line, err)
		}
		if label == "" {
			// Exotic whitespace (e.g. a vertical tab) survives the
			// blank-line check above but is not a usable label.
			return nil, fmt.Errorf("vgh: line %d: empty node label", line)
		}
		if b == nil {
			if depth != 0 {
				return nil, fmt.Errorf("vgh: line %d: root %q must not be indented", line, label)
			}
			b = NewBuilder(name, label)
			stack = []frame{{label: label, depth: 0}}
			continue
		}
		if depth == 0 {
			return nil, fmt.Errorf("vgh: line %d: second root %q; a hierarchy has one root", line, label)
		}
		for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 || stack[len(stack)-1].depth != depth-1 {
			return nil, fmt.Errorf("vgh: line %d: node %q skips an indentation level", line, label)
		}
		b.Add(stack[len(stack)-1].label, label)
		stack = append(stack, frame{label: label, depth: depth})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vgh: reading hierarchy %q: %w", name, err)
	}
	if b == nil {
		return nil, fmt.Errorf("vgh: hierarchy %q is empty", name)
	}
	return b.Build()
}

// indentDepth converts a leading-whitespace prefix to a depth: one tab or
// two spaces per level. Mixed or odd indentation is an error.
func indentDepth(prefix string) (int, error) {
	if strings.Contains(prefix, "\t") {
		if strings.Contains(prefix, " ") {
			return 0, fmt.Errorf("mixed tabs and spaces in indentation")
		}
		return len(prefix), nil
	}
	if len(prefix)%2 != 0 {
		return 0, fmt.Errorf("odd indentation of %d spaces; use two per level", len(prefix))
	}
	return len(prefix) / 2, nil
}

// MustParse is Parse over a string literal that panics on error, for
// static hierarchy definitions.
func MustParse(name, text string) *Hierarchy {
	h, err := Parse(name, strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	return h
}
