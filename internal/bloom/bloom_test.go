package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func enc(t testing.TB) *Encoder {
	t.Helper()
	e, err := NewEncoder(1000, 30, 2, []byte("shared-secret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEncoderValidation(t *testing.T) {
	cases := []struct{ m, k, q int }{
		{4, 30, 2}, {1000, 0, 2}, {1000, 30, 0},
	}
	for _, c := range cases {
		if _, err := NewEncoder(c.m, c.k, c.q, []byte("x")); err == nil {
			t.Errorf("NewEncoder(%v) should fail", c)
		}
	}
	if _, err := NewEncoder(1000, 30, 2, nil); err == nil {
		t.Error("empty key should fail")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	e := enc(t)
	a := e.Encode("smith", "john")
	b := e.Encode("smith", "john")
	if a.Dice(b) != 1 {
		t.Errorf("identical records encode differently: dice = %v", a.Dice(b))
	}
	if a.Ones() == 0 {
		t.Error("encoding set no bits")
	}
}

func TestKeyChangesEncoding(t *testing.T) {
	a, _ := NewEncoder(1000, 30, 2, []byte("key1"))
	b, _ := NewEncoder(1000, 30, 2, []byte("key2"))
	fa := a.Encode("smith")
	fb := b.Encode("smith")
	if fa.Dice(fb) > 0.5 {
		t.Errorf("different keys should decorrelate encodings: dice = %v", fa.Dice(fb))
	}
}

func TestDiceRanksSimilarity(t *testing.T) {
	e := enc(t)
	smith := e.Encode("smith")
	smyth := e.Encode("smyth")
	jones := e.Encode("jones")
	if got := smith.Dice(smyth); got <= smith.Dice(jones) {
		t.Errorf("dice(smith,smyth)=%v should exceed dice(smith,jones)=%v", got, smith.Dice(jones))
	}
	if got := smith.Dice(smyth); got < 0.5 {
		t.Errorf("one-letter typo should stay similar: dice = %v", got)
	}
}

func TestEmptyFields(t *testing.T) {
	e := enc(t)
	empty := e.Encode("")
	if empty.Ones() != 0 {
		t.Errorf("empty record set %d bits", empty.Ones())
	}
	if got := empty.Dice(empty); got != 0 {
		t.Errorf("dice of empty filters = %v, want 0", got)
	}
}

func TestGrams(t *testing.T) {
	e := enc(t)
	got := e.grams("ab")
	want := []string{"_a", "ab", "b_"}
	if len(got) != len(want) {
		t.Fatalf("grams(ab) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gram %d = %q, want %q", i, got[i], want[i])
		}
	}
	if g := e.grams(""); g != nil {
		t.Errorf("grams of empty string = %v", g)
	}
}

func TestDicePanicsOnSizeMismatch(t *testing.T) {
	small, _ := NewEncoder(64, 4, 2, []byte("x"))
	big, _ := NewEncoder(128, 4, 2, []byte("x"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	small.Encode("a").Dice(big.Encode("a"))
}

// Dice is symmetric, bounded in [0,1], and 1 on self (for non-empty
// filters).
func TestDiceProperty(t *testing.T) {
	e := enc(t)
	rng := rand.New(rand.NewSource(9))
	randStr := func() string {
		n := 1 + rng.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	f := func() bool {
		a := e.Encode(randStr(), randStr())
		b := e.Encode(randStr())
		d1, d2 := a.Dice(b), b.Dice(a)
		if d1 != d2 || d1 < 0 || d1 > 1 {
			return false
		}
		return a.Dice(a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
