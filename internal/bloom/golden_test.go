package bloom

import (
	"encoding/hex"
	"testing"
)

// TestGoldenVectors pins the exact encoding bytes of fixed (m, k, q, key)
// inputs. The CLK layout is a wire contract: both holders encode
// independently and the matcher compares their filters bit-for-bit, so
// any drift in the gram padding, the keyed digest, the double-hashing
// probe, or the word serialization silently corrupts every Dice score.
// These vectors fail that drift loudly. Regenerate them only on a
// deliberate, versioned format change.
func TestGoldenVectors(t *testing.T) {
	enc, err := NewEncoder(64, 4, 2, []byte("golden-key"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		fields []string
		ones   int
		hex    string
	}{
		{"single-field", []string{"smith"}, 21, "2a5988c128028e60"},
		{"other-value", []string{"jones"}, 20, "62b450883b204081"},
		{"composite", []string{"smith", "1985"}, 38, "2bdfdbc12b878f75"},
		{"empty-field", []string{""}, 0, "0000000000000000"},
		// Gram extraction lowercases, so case must not change the bytes.
		{"case-folded", []string{"SMITH"}, 21, "2a5988c128028e60"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := enc.Encode(tc.fields...)
			if got := hex.EncodeToString(f.Marshal()); got != tc.hex {
				t.Errorf("Encode(%q) bytes = %s, want %s", tc.fields, got, tc.hex)
			}
			if f.Ones() != tc.ones {
				t.Errorf("Encode(%q) ones = %d, want %d", tc.fields, f.Ones(), tc.ones)
			}
		})
	}

	// One vector at the default production parameters (m=1000, k=30, q=2),
	// where the filter tail occupies a partial word.
	enc2, err := NewEncoder(1000, 30, 2, []byte("pprl-shared-key"))
	if err != nil {
		t.Fatal(err)
	}
	const wantHex = "0281cc830501550a9601b008444c194078803000268c5001d4909008098400521440dc2114204a604c911924b18a40189a140426104d4242251432151801834820100141022143a0300111028a0aa18464a68380237649000a030d22011121201018068a8964410016062012a0ab5141090820a0c22461580d00b49880000000"
	g := enc2.Encode("smith", "1985")
	if got := hex.EncodeToString(g.Marshal()); got != wantHex {
		t.Errorf("default-params encoding drifted:\n got %s\nwant %s", got, wantHex)
	}
	if g.Ones() != 276 {
		t.Errorf("default-params ones = %d, want 276", g.Ones())
	}
	// Dice over pinned encodings is itself pinned: an exact ratio of
	// small integers, not an approximation.
	a, b := enc2.Encode("smith"), enc2.Encode("smyth")
	if got := a.Dice(b); got != 0.70833333333333337 {
		t.Errorf("Dice(smith, smyth) = %.17g, want 0.70833333333333337", got)
	}
}

// TestMarshalRoundTrip checks Unmarshal rebuilds the exact filter and
// rejects payloads that cannot have come from a peer with the same
// parameters.
func TestMarshalRoundTrip(t *testing.T) {
	enc, err := NewEncoder(100, 5, 2, []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	f := enc.Encode("alpha", "beta")
	got, err := Unmarshal(f.Marshal(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dice(f) != 1 || got.Ones() != f.Ones() {
		t.Errorf("round trip changed the filter: dice=%v ones=%d want %d", got.Dice(f), got.Ones(), f.Ones())
	}
	if _, err := Unmarshal(f.Marshal()[:8], 100); err == nil {
		t.Error("Unmarshal accepted a truncated payload")
	}
	bad := f.Marshal()
	bad[len(bad)-1] |= 0x80 // bit 103 of an m=100 filter
	if _, err := Unmarshal(bad, 100); err == nil {
		t.Error("Unmarshal accepted bits beyond m")
	}
	if _, err := Unmarshal(nil, 4); err == nil {
		t.Error("Unmarshal accepted an invalid filter size")
	}
}

// TestClassify spans the three bands and both boundaries (inclusive on
// each side, per the tier contract: ≥ high matches, ≤ low does not).
func TestClassify(t *testing.T) {
	cases := []struct {
		dice, low, high float64
		want            Band
	}{
		{0.95, 0.5, 0.9, BandMatch},
		{0.9, 0.5, 0.9, BandMatch},
		{0.89, 0.5, 0.9, BandUncertain},
		{0.51, 0.5, 0.9, BandUncertain},
		{0.5, 0.5, 0.9, BandNonMatch},
		{0.0, 0.5, 0.9, BandNonMatch},
		{0.7, 0.7, 0.7, BandMatch}, // low == high: no uncertain band
		{0.69, 0.7, 0.7, BandNonMatch},
	}
	for _, tc := range cases {
		if got := Classify(tc.dice, tc.low, tc.high); got != tc.want {
			t.Errorf("Classify(%v, %v, %v) = %v, want %v", tc.dice, tc.low, tc.high, got, tc.want)
		}
	}
}
