// Package bloom implements Bloom-filter record encoding for privacy-
// preserving record linkage (Schnell, Bachteler and Reiher, 2009) — the
// technique most open-source PPRL tools adopted after the paper. It is
// included as a modern baseline to compare the hybrid method against:
// Bloom-filter linkage is cheap (no cryptographic protocol at match time)
// and tolerant of typos, but its privacy is heuristic — encodings are
// vulnerable to frequency cryptanalysis — and its accuracy is
// probabilistic, in contrast to the hybrid method's certain labels.
//
// Records are encoded as composite cryptographic long-term keys (CLKs):
// every field's padded q-grams are hashed into one bit array with k keyed
// hash functions (double hashing over HMAC-style SHA-256 digests); pairs
// are compared with the Dice coefficient.
package bloom

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

// Encoder turns string records into Bloom-filter encodings. Both data
// holders must share the same parameters and secret key.
type Encoder struct {
	m   int // filter bits
	k   int // hash functions per q-gram
	q   int // gram size
	key []byte
}

// NewEncoder validates the CLK parameters. Typical values: m = 1000,
// k = 30, q = 2, with a key shared by the holders and withheld from the
// matcher.
func NewEncoder(m, k, q int, key []byte) (*Encoder, error) {
	switch {
	case m < 8:
		return nil, fmt.Errorf("bloom: filter size %d too small", m)
	case k < 1:
		return nil, fmt.Errorf("bloom: need at least one hash function")
	case q < 1:
		return nil, fmt.Errorf("bloom: q-gram size must be ≥ 1")
	case len(key) == 0:
		return nil, fmt.Errorf("bloom: empty key")
	}
	return &Encoder{m: m, k: k, q: q, key: key}, nil
}

// Filter is one record's encoding.
type Filter struct {
	words []uint64
	m     int
}

// Encode builds the composite filter of a record's string fields.
func (e *Encoder) Encode(fields ...string) *Filter {
	f := &Filter{words: make([]uint64, (e.m+63)/64), m: e.m}
	for _, field := range fields {
		for _, gram := range e.grams(field) {
			h1, h2 := e.hashPair(gram)
			for i := 0; i < e.k; i++ {
				// Double hashing: position_i = h1 + i·h2 mod m.
				pos := (h1 + uint64(i)*h2) % uint64(e.m)
				f.words[pos/64] |= 1 << (pos % 64)
			}
		}
	}
	return f
}

// grams returns the padded q-grams of s ("_s", "sm", …, "h_" for q=2).
func (e *Encoder) grams(s string) []string {
	if s == "" {
		return nil
	}
	pad := strings.Repeat("_", e.q-1)
	padded := pad + strings.ToLower(s) + pad
	if len(padded) < e.q {
		return []string{padded}
	}
	out := make([]string, 0, len(padded)-e.q+1)
	for i := 0; i+e.q <= len(padded); i++ {
		out = append(out, padded[i:i+e.q])
	}
	return out
}

// hashPair derives the two double-hashing seeds from a keyed digest.
func (e *Encoder) hashPair(gram string) (uint64, uint64) {
	h := sha256.New()
	h.Write(e.key)
	h.Write([]byte(gram))
	sum := h.Sum(nil)
	h1 := binary.BigEndian.Uint64(sum[0:8])
	h2 := binary.BigEndian.Uint64(sum[8:16])
	if h2 == 0 {
		h2 = 1 // keep the probe sequence moving
	}
	return h1, h2
}

// Ones returns the number of set bits.
func (f *Filter) Ones() int {
	total := 0
	for _, w := range f.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Dice returns the Dice coefficient 2|A∩B| / (|A|+|B|) of two filters:
// 1 for identical non-empty filters, 0 for disjoint ones.
func (f *Filter) Dice(other *Filter) float64 {
	if f.m != other.m {
		panic("bloom: comparing filters of different sizes")
	}
	inter := 0
	for i := range f.words {
		inter += bits.OnesCount64(f.words[i] & other.words[i])
	}
	denom := f.Ones() + other.Ones()
	if denom == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(denom)
}
