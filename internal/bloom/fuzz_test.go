package bloom

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDiceTier fuzzes CLK inputs and tier thresholds together, asserting
// the algebra the tier engine relies on: the encoder is deterministic,
// Dice is symmetric and confined to [0, 1], serialization round-trips,
// and every similarity lands in exactly one threshold band.
func FuzzDiceTier(f *testing.F) {
	f.Add("smith", "smyth", 0.9, 0.5, uint16(512), uint8(8), uint8(2))
	f.Add("", "jones", 0.95, 0.0, uint16(64), uint8(1), uint8(1))
	f.Add("a", "a", 0.0, 0.0, uint16(8), uint8(30), uint8(3))
	f.Add("ünïcode", "unicode", 1.0, 1.0, uint16(1000), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, sa, sb string, high, low float64, m uint16, k, q uint8) {
		// Clamp the fuzzed parameters into the encoder's valid domain;
		// NewEncoder's rejection of the rest has its own unit tests.
		enc, err := NewEncoder(int(m%2048)+8, int(k%64)+1, int(q%8)+1, []byte("fuzz-key"))
		if err != nil {
			t.Fatalf("clamped parameters rejected: %v", err)
		}
		fa, fb := enc.Encode(sa), enc.Encode(sb)

		// Determinism: re-encoding the same input yields identical bytes.
		if !bytes.Equal(fa.Marshal(), enc.Encode(sa).Marshal()) {
			t.Fatalf("encoder not deterministic for %q", sa)
		}

		// Serialization round-trips to a Dice-identical filter.
		back, err := Unmarshal(fa.Marshal(), fa.M())
		if err != nil {
			t.Fatalf("round trip rejected own output: %v", err)
		}
		if fa.Ones() > 0 && back.Dice(fa) != 1 {
			t.Fatalf("round trip changed the filter: dice=%v", back.Dice(fa))
		}

		// Dice symmetry and range.
		ab, ba := fa.Dice(fb), fb.Dice(fa)
		if ab != ba {
			t.Fatalf("Dice not symmetric: %v vs %v", ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("Dice out of range: %v", ab)
		}
		if sa == sb && fa.Ones() > 0 && ab != 1 {
			t.Fatalf("identical non-empty inputs: dice=%v, want 1", ab)
		}

		// Threshold-band exhaustiveness: with any low ≤ high (fuzzed
		// values are folded into [0,1] and ordered), the similarity lands
		// in exactly one of Match / NonMatch / Uncertain.
		lo, hi := fold01(low), fold01(high)
		if lo > hi {
			lo, hi = hi, lo
		}
		isMatch := ab >= hi
		isNon := !isMatch && ab <= lo
		isUnc := !isMatch && !isNon
		got := Classify(ab, lo, hi)
		switch {
		case isMatch && got != BandMatch,
			isNon && got != BandNonMatch,
			isUnc && got != BandUncertain:
			t.Fatalf("Classify(%v, %v, %v) = %v; bands not exhaustive", ab, lo, hi, got)
		}
	})
}

// fold01 maps an arbitrary fuzzed float64 into [0, 1], sending the
// non-finite values to the boundaries.
func fold01(x float64) float64 {
	switch {
	case x != x: // NaN
		return 0
	case math.IsInf(x, 0):
		return 1
	case x < 0:
		x = -x
	}
	// Fold magnitude into [0,1] without losing low-bit variety.
	for x > 1 {
		x /= 2
	}
	return x
}
