// Tier support: the three-tier hybrid engine (DESIGN.md §12) triages
// Unknown record pairs by Dice similarity over CLK encodings before any
// SMC allowance is spent. This file holds the pieces that tier shares
// across processes — band classification, a stable byte serialization so
// holders can ship encodings to the matcher, and the canonical mapping
// from dataset records to CLK input fields.
package bloom

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"pprl/internal/dataset"
)

// Band is a tier classification of one record pair's Dice similarity.
type Band int

const (
	// BandUncertain marks a pair the encoding cannot confidently label;
	// only these pairs compete for the SMC allowance.
	BandUncertain Band = iota
	// BandMatch marks a pair at or above the high threshold.
	BandMatch
	// BandNonMatch marks a pair at or below the low threshold.
	BandNonMatch
)

// String names the band for tables and logs.
func (b Band) String() string {
	switch b {
	case BandMatch:
		return "match"
	case BandNonMatch:
		return "nonmatch"
	default:
		return "uncertain"
	}
}

// Classify places a Dice similarity into exactly one band: ≥ high is a
// Match, ≤ low a NonMatch, everything strictly between is Uncertain.
// Callers must ensure low ≤ high; when low == high no pair is uncertain.
func Classify(dice, low, high float64) Band {
	switch {
	case dice >= high:
		return BandMatch
	case dice <= low:
		return BandNonMatch
	default:
		return BandUncertain
	}
}

// Marshal serializes the filter's bit array as little-endian 64-bit
// words. The filter size m is not embedded — both sides already share the
// CLK parameters out of band (MsgParams in the session protocol), and
// omitting it keeps the wire form exactly ⌈m/64⌉·8 bytes per record.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 8*len(f.words))
	for i, w := range f.words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// Unmarshal reconstructs a filter of size m from Marshal's output. Bits
// at positions ≥ m must be zero: a foreign or truncated payload fails
// loudly instead of skewing every Dice score it touches.
func Unmarshal(data []byte, m int) (*Filter, error) {
	if m < 8 {
		return nil, fmt.Errorf("bloom: filter size %d too small", m)
	}
	words := (m + 63) / 64
	if len(data) != 8*words {
		return nil, fmt.Errorf("bloom: encoding is %d bytes, want %d for m=%d", len(data), 8*words, m)
	}
	f := &Filter{words: make([]uint64, words), m: m}
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	if tail := m % 64; tail != 0 {
		if f.words[words-1]&^(1<<tail-1) != 0 {
			return nil, fmt.Errorf("bloom: encoding has bits set beyond m=%d", m)
		}
	}
	return f, nil
}

// M returns the filter size in bits.
func (f *Filter) M() int { return f.m }

// FieldsOf renders record i's quasi-identifier cells as the strings the
// CLK hashes: categorical values verbatim, numeric values in their
// shortest decimal form. Both holders must use this same mapping or their
// encodings are incomparable.
func FieldsOf(d *dataset.Dataset, qids []int, i int) []string {
	rec := d.Record(i)
	fields := make([]string, 0, len(qids))
	for _, q := range qids {
		if d.Schema().Attr(q).Kind == dataset.Categorical {
			fields = append(fields, rec.Cells[q].Node.Value)
		} else {
			fields = append(fields, strconv.FormatFloat(rec.Cells[q].Num, 'g', -1, 64))
		}
	}
	return fields
}

// EncodeRecords builds every record's composite CLK over its
// quasi-identifier fields.
func EncodeRecords(enc *Encoder, d *dataset.Dataset, qids []int) []*Filter {
	out := make([]*Filter, d.Len())
	for i := 0; i < d.Len(); i++ {
		out[i] = enc.Encode(FieldsOf(d, qids, i)...)
	}
	return out
}
