package experiment

import (
	"fmt"

	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/metrics"
)

// Baselines reproduces the paper's headline comparison (abstract and
// Section I): the hybrid method against the two families it combines.
//
//   - Pure SMC: every record pair is compared with the secure circuit —
//     perfect accuracy, |R|×|S| invocations.
//   - Pure sanitization: matching is decided on the anonymized views
//     alone, with zero cryptographic cost. Undecidable pairs must be
//     guessed one way or the other: the pessimistic matcher labels them
//     non-match (losing recall), the optimistic matcher labels every
//     still-possible pair match (losing precision). Both rows appear —
//     the accuracy/privacy trade-off the paper's introduction attributes
//     to sanitization techniques.
//   - Hybrid (this paper): blocking plus a budgeted SMC step — 100%
//     precision at a small fraction of pure SMC's invocations.
func Baselines(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	cfg := w.baseConfig()
	p, err := w.prepare(cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: %w", err)
	}
	total := p.block.TotalPairs()

	t := &Table{
		ID:      "baselines",
		Title:   "Hybrid vs. pure-SMC vs. pure-sanitization (paper abstract claim)",
		Columns: []string{"method", "SMC invocations", "precision", "recall"},
	}

	// Pure SMC: exact by construction.
	t.AddRow("pure SMC", fmt.Sprintf("%d", total), pct(1), pct(1))

	// Pure sanitization: decide everything from the anonymized views.
	pess := sanitizationOnly(p, w, false)
	t.AddRow("pure sanitization (pessimistic)", "0", pct(pess.Precision()), pct(pess.Recall()))
	opt := sanitizationOnly(p, w, true)
	t.AddRow("pure sanitization (optimistic)", "0", pct(opt.Precision()), pct(opt.Recall()))

	// Hybrid at the default allowance.
	res, err := core.LinkPrepared(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, p.block, cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: hybrid: %w", err)
	}
	conf := res.Evaluate(p.truth)
	t.AddRow(fmt.Sprintf("hybrid (allowance %.1f%%)", 100*cfg.AllowanceFraction),
		fmt.Sprintf("%d", res.Invocations), pct(conf.Precision()), pct(conf.Recall()))

	// Hybrid with enough allowance for full recall.
	fullCfg := cfg
	fullCfg.AllowanceFraction = 0
	fullCfg.Allowance = p.block.UnknownPairs
	full, err := core.LinkPrepared(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, p.block, fullCfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: hybrid full: %w", err)
	}
	fullConf := full.Evaluate(p.truth)
	t.AddRow("hybrid (full recall)",
		fmt.Sprintf("%d", full.Invocations), pct(fullConf.Precision()), pct(fullConf.Recall()))
	return t, nil
}

// sanitizationOnly evaluates the anonymization-only matcher. Certain
// labels follow the slack rule; Unknown pairs are labeled match when
// optimistic, non-match when pessimistic.
func sanitizationOnly(p *prepared, w Workload, optimistic bool) metrics.Confusion {
	block := p.block
	// Label() works on both the dense and the released/streamed sparse
	// representation, so this matcher is independent of blocking mode.
	guessMatch := make([][]bool, len(block.R.Classes))
	for ri := range block.R.Classes {
		guesses := make([]bool, len(block.S.Classes))
		for si := range block.S.Classes {
			switch block.Label(ri, si) {
			case blocking.Match:
				guesses[si] = true
			case blocking.Unknown:
				guesses[si] = optimistic
			}
		}
		guessMatch[ri] = guesses
	}
	var reported, tp int64
	for ri, guesses := range guessMatch {
		for si, g := range guesses {
			if !g {
				continue
			}
			reported += int64(block.R.Classes[ri].Size()) * int64(block.S.Classes[si].Size())
		}
	}
	for _, pr := range p.truth {
		ri := block.R.ClassOf[pr.I]
		si := block.S.ClassOf[pr.J]
		if guessMatch[ri][si] {
			tp++
		}
	}
	return metrics.Confusion{
		TruePositives:  tp,
		FalsePositives: reported - tp,
		FalseNegatives: int64(len(p.truth)) - tp,
	}
}
