package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSMCPerfReportGoldenSchema pins the exact serialized form of
// BENCH_smc.json. External tooling (plot scripts, CI trend tracking)
// keys on these field names; renaming or retyping one is a breaking
// change this test makes visible instead of silent.
func TestSMCPerfReportGoldenSchema(t *testing.T) {
	rep := &SMCPerfReport{
		GOMAXPROCS:    8,
		Workers:       4,
		KeyBits:       1024,
		Attributes:    4,
		Pairs:         64,
		KeygenSeconds: 0.5,
		Engines: []SMCPerfEngine{
			{
				Engine: "serial", Packing: "off", Workers: 1,
				Seconds: 10.25, Rate: 6.2439,
				BytesPerComparison: 2048, ResultBytesPerComparison: 1040,
				DecryptionsPerComparison: 4,
			},
			{
				Engine: "serial", Packing: "packed", Workers: 1,
				Seconds: 8.5, Rate: 7.5294,
				BytesPerComparison: 1560, ResultBytesPerComparison: 272,
				DecryptionsPerComparison: 1,
			},
		},
		Speedup:             2.9285,
		PackedSpeedup:       1.2058,
		DecryptionReduction: 4,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "gomaxprocs": 8,
  "workers": 4,
  "key_bits": 1024,
  "attributes": 4,
  "pairs": 64,
  "keygen_seconds": 0.5,
  "engines": [
    {
      "engine": "serial",
      "packing": "off",
      "workers": 1,
      "seconds": 10.25,
      "comparisons_per_sec": 6.2439,
      "bytes_per_comparison": 2048,
      "result_bytes_per_comparison": 1040,
      "decryptions_per_comparison": 4
    },
    {
      "engine": "serial",
      "packing": "packed",
      "workers": 1,
      "seconds": 8.5,
      "comparisons_per_sec": 7.5294,
      "bytes_per_comparison": 1560,
      "result_bytes_per_comparison": 272,
      "decryptions_per_comparison": 1
    }
  ],
  "speedup": 2.9285,
  "packed_speedup": 1.2058,
  "decryption_reduction": 4
}
`
	if got := buf.String(); got != golden {
		t.Errorf("BENCH_smc.json schema drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// Independent of formatting: exactly these key sets, every scalar a
	// JSON number except the engine/packing labels.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{
		"gomaxprocs", "workers", "key_bits", "attributes", "pairs",
		"keygen_seconds", "engines",
		"speedup", "packed_speedup", "decryption_reduction",
	}
	if len(m) != len(wantTop) {
		t.Errorf("report has %d fields, want %d: %v", len(m), len(wantTop), keysOf(m))
	}
	for _, k := range wantTop {
		v, ok := m[k]
		if !ok {
			t.Errorf("missing field %q", k)
			continue
		}
		if k == "engines" {
			continue
		}
		if _, isNum := v.(float64); !isNum {
			t.Errorf("field %q is %T, want a JSON number", k, v)
		}
	}
	engines, _ := m["engines"].([]any)
	if len(engines) != 2 {
		t.Fatalf("engines has %d entries, want 2", len(engines))
	}
	wantEngine := []string{
		"engine", "packing", "workers", "seconds", "comparisons_per_sec",
		"bytes_per_comparison", "result_bytes_per_comparison",
		"decryptions_per_comparison",
	}
	for i, e := range engines {
		em, _ := e.(map[string]any)
		if len(em) != len(wantEngine) {
			t.Errorf("engines[%d] has %d fields, want %d: %v", i, len(em), len(wantEngine), keysOf(em))
		}
		for _, k := range wantEngine {
			v, ok := em[k]
			if !ok {
				t.Errorf("engines[%d] missing field %q", i, k)
				continue
			}
			switch k {
			case "engine", "packing":
				if _, isStr := v.(string); !isStr {
					t.Errorf("engines[%d].%s is %T, want a JSON string", i, k, v)
				}
			default:
				if _, isNum := v.(float64); !isNum {
					t.Errorf("engines[%d].%s is %T, want a JSON number", i, k, v)
				}
			}
		}
	}
	if t.Failed() {
		t.Log("fields present: " + strings.Join(keysOf(m), ", "))
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
