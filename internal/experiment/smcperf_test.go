package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSMCPerfReportGoldenSchema pins the exact serialized form of
// BENCH_smc.json. External tooling (plot scripts, CI trend tracking)
// keys on these field names; renaming or retyping one is a breaking
// change this test makes visible instead of silent.
func TestSMCPerfReportGoldenSchema(t *testing.T) {
	rep := &SMCPerfReport{
		GOMAXPROCS:         8,
		Workers:            4,
		KeyBits:            1024,
		Attributes:         3,
		Pairs:              64,
		KeygenSeconds:      0.5,
		SerialSeconds:      10.25,
		ShardedSeconds:     3.5,
		SerialRate:         6.2439,
		ShardedRate:        18.2857,
		Speedup:            2.9285,
		BytesPerComparison: 2048,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "gomaxprocs": 8,
  "workers": 4,
  "key_bits": 1024,
  "attributes": 3,
  "pairs": 64,
  "keygen_seconds": 0.5,
  "serial_seconds": 10.25,
  "sharded_seconds": 3.5,
  "serial_comparisons_per_sec": 6.2439,
  "sharded_comparisons_per_sec": 18.2857,
  "speedup": 2.9285,
  "bytes_per_comparison": 2048
}
`
	if got := buf.String(); got != golden {
		t.Errorf("BENCH_smc.json schema drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// Independent of formatting: exactly this key set, every value a
	// JSON number.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"gomaxprocs", "workers", "key_bits", "attributes", "pairs",
		"keygen_seconds", "serial_seconds", "sharded_seconds",
		"serial_comparisons_per_sec", "sharded_comparisons_per_sec",
		"speedup", "bytes_per_comparison",
	}
	if len(m) != len(want) {
		t.Errorf("report has %d fields, want %d: %v", len(m), len(want), m)
	}
	for _, k := range want {
		v, ok := m[k]
		if !ok {
			t.Errorf("missing field %q", k)
			continue
		}
		if _, isNum := v.(float64); !isNum {
			t.Errorf("field %q is %T, want a JSON number", k, v)
		}
	}
	if t.Failed() {
		t.Log("fields present: " + strings.Join(keysOf(m), ", "))
	}
}

func keysOf(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
