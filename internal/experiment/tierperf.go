package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"pprl/internal/core"
	"pprl/internal/metrics"
)

// TierPerfPoint is one allowance point of the three-tier benchmark: the
// two-tier baseline (blocking + budgeted SMC) against the three-tier
// pipeline (blocking + Bloom triage + budgeted SMC) at the same
// allowance, over the same blocking result.
type TierPerfPoint struct {
	AllowanceFraction float64 `json:"allowance_fraction"`
	Allowance         int64   `json:"allowance"`

	// Spent counts live SMC comparisons (the cost axis); the tier's free
	// labels never appear here.
	BaselineSpent int64 `json:"baseline_spent"`
	TierSpent     int64 `json:"tier_spent"`

	BaselineRecall    float64 `json:"baseline_recall"`
	TierRecall        float64 `json:"tier_recall"`
	BaselinePrecision float64 `json:"baseline_precision"`
	TierPrecision     float64 `json:"tier_precision"`

	// Efficiency is recall per allowance unit actually spent, with spend
	// floored at 1 so the zero-allowance point stays finite; Gain is the
	// three-tier efficiency over the two-tier one. When the baseline buys
	// zero true matches the true ratio is unbounded, so the baseline is
	// floored at one recovered truth pair and Gain is a lower bound.
	BaselineEfficiency float64 `json:"baseline_recall_per_unit"`
	TierEfficiency     float64 `json:"tier_recall_per_unit"`
	Gain               float64 `json:"gain"`

	TierMatched   int64 `json:"tier_matched_pairs"`
	TierNonMatch  int64 `json:"tier_nonmatched_pairs"`
	TierUncertain int64 `json:"tier_uncertain_pairs"`
}

// TierPerfReport is the machine-readable benchmark `pprl-bench -exp
// tier -json` writes to BENCH_tier.json: the recall-per-allowance-unit
// gain of the Bloom triage tier over the two-tier baseline across an
// allowance sweep on the Adult workload.
type TierPerfReport struct {
	Records      int     `json:"records"`
	K            int     `json:"k"`
	Theta        float64 `json:"theta"`
	TierHigh     float64 `json:"tier_high"`
	TierLow      float64 `json:"tier_low"`
	TotalPairs   int64   `json:"total_pairs"`
	UnknownPairs int64   `json:"unknown_pairs"`
	TruthPairs   int     `json:"truth_pairs"`

	Points []TierPerfPoint `json:"points"`

	// BestGain is the largest per-point gain and the allowance fraction
	// it occurred at — the figure the acceptance gate reads.
	BestGain              float64 `json:"best_gain"`
	BestGainAllowanceFrac float64 `json:"best_gain_allowance_fraction"`
}

// WriteJSON renders the report as indented JSON.
func (r *TierPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TierPerf benchmarks the three-tier pipeline against the two-tier
// baseline on the standard Adult workload. Both arms share one blocking
// result and one heuristic ordering; the only difference is the triage
// tier. The headline metric is recall per allowance unit: the tier
// labels the confident Dice bands for free, so at small allowances the
// three-tier arm reaches recall the baseline can only buy.
func TierPerf(opts Options) (*TierPerfReport, *Table, error) {
	w := NewWorkload(opts)
	o := w.Opts
	base := w.baseConfig()
	base.Strategy = core.MaximizePrecision

	prep, err := w.prepare(base)
	if err != nil {
		return nil, nil, fmt.Errorf("tierperf: %w", err)
	}
	run := func(tier core.TierMode, allowanceFrac float64) (*core.Result, metrics.Confusion, error) {
		cfg := base
		cfg.Tier = tier
		cfg.AllowanceFraction = allowanceFrac
		res, err := core.LinkPrepared(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, prep.block, cfg)
		if err != nil {
			return nil, metrics.Confusion{}, err
		}
		return res, res.Evaluate(prep.truth), nil
	}

	rep := &TierPerfReport{
		Records:    o.Records,
		K:          base.AliceK,
		Theta:      o.Theta,
		TruthPairs: len(prep.truth),
	}

	for _, frac := range o.Allowances {
		bRes, bConf, err := run(core.TierOff, frac)
		if err != nil {
			return nil, nil, fmt.Errorf("tierperf: baseline at %.4f: %w", frac, err)
		}
		tRes, tConf, err := run(core.TierBloom, frac)
		if err != nil {
			return nil, nil, fmt.Errorf("tierperf: tier at %.4f: %w", frac, err)
		}
		if rep.TotalPairs == 0 {
			rep.TotalPairs = bRes.Block.TotalPairs()
			rep.UnknownPairs = bRes.Block.UnknownPairs
			rep.TierLow, rep.TierHigh = tRes.TierThresholds()
		}
		spend := func(n int64) int64 {
			if n < 1 {
				return 1
			}
			return n
		}
		pt := TierPerfPoint{
			AllowanceFraction: frac,
			Allowance:         bRes.Allowance,
			BaselineSpent:     bRes.Invocations,
			TierSpent:         tRes.Invocations,
			BaselineRecall:    bConf.Recall(),
			TierRecall:        tConf.Recall(),
			BaselinePrecision: bConf.Precision(),
			TierPrecision:     tConf.Precision(),
			TierMatched:       tRes.TierMatchedPairs(),
			TierNonMatch:      tRes.TierNonMatchedPairs(),
			TierUncertain:     tRes.TierUncertainPairs,
		}
		pt.BaselineEfficiency = pt.BaselineRecall / float64(spend(pt.BaselineSpent))
		pt.TierEfficiency = pt.TierRecall / float64(spend(pt.TierSpent))
		minRecall := 1.0
		if rep.TruthPairs > 0 {
			minRecall = 1.0 / float64(rep.TruthPairs)
		}
		floor := pt.BaselineEfficiency
		if minEff := minRecall / float64(spend(pt.BaselineSpent)); floor < minEff {
			floor = minEff
		}
		pt.Gain = pt.TierEfficiency / floor
		if pt.Gain > rep.BestGain {
			rep.BestGain, rep.BestGainAllowanceFrac = pt.Gain, frac
		}
		rep.Points = append(rep.Points, pt)
	}

	t := &Table{
		ID: "tier",
		Title: fmt.Sprintf("three-tier triage vs two-tier baseline (Adult %d records, k=%d, θ=%.2f, dice bands [%.2f, %.2f], %d unknown pairs)",
			o.Records, rep.K, o.Theta, rep.TierLow, rep.TierHigh, rep.UnknownPairs),
		Columns: []string{"allowance", "base spent", "tier spent", "base recall", "tier recall", "tier precision", "recall/unit gain"},
	}
	for _, pt := range rep.Points {
		t.AddRow(
			fmt.Sprintf("%.4f", pt.AllowanceFraction),
			fmt.Sprintf("%d", pt.BaselineSpent),
			fmt.Sprintf("%d", pt.TierSpent),
			fmt.Sprintf("%.4f", pt.BaselineRecall),
			fmt.Sprintf("%.4f", pt.TierRecall),
			fmt.Sprintf("%.4f", pt.TierPrecision),
			fmt.Sprintf("%.1f×", pt.Gain),
		)
	}
	return rep, t, nil
}
