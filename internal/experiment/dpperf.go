package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/match"
)

// DPPerfPoint is one ε point of the differential-privacy benchmark: a
// full pipeline run under DP blocking at per-holder budget ε, scored
// against exact ground truth. The cost axis counts every allowance unit
// spent — live comparisons plus the dummy charges the noise padding
// forces — so the efficiency figure is comparable to the k-anonymous
// arm, which has no dummy term.
type DPPerfPoint struct {
	Epsilon      float64 `json:"epsilon"`
	TotalEpsilon float64 `json:"total_epsilon"`
	TotalDelta   float64 `json:"total_delta"`

	Allowance  int64 `json:"allowance"`
	LiveSpent  int64 `json:"live_spent"`
	DummySpent int64 `json:"dummy_spent"`
	DummyPairs int64 `json:"dummy_pairs"`
	AliceBins  int   `json:"alice_bins"`
	BobBins    int   `json:"bob_bins"`

	Recall        float64 `json:"recall"`
	Precision     float64 `json:"precision"`
	RecallPerUnit float64 `json:"recall_per_unit"`
}

// DPKPoint is one k point of the k-anonymous comparison arm: the
// existing generalization pipeline at the same allowance fraction.
type DPKPoint struct {
	K             int     `json:"k"`
	Allowance     int64   `json:"allowance"`
	Spent         int64   `json:"spent"`
	Recall        float64 `json:"recall"`
	Precision     float64 `json:"precision"`
	RecallPerUnit float64 `json:"recall_per_unit"`
}

// DPPerfReport is the machine-readable benchmark `pprl-bench -exp dp
// -json` writes to BENCH_dp.json: the ε-vs-recall-vs-cost frontier of
// differentially private blocking against the k-anonymous sweep on the
// Adult workload.
type DPPerfReport struct {
	Records           int     `json:"records"`
	Theta             float64 `json:"theta"`
	AllowanceFraction float64 `json:"allowance_fraction"`
	Delta             float64 `json:"delta"`
	Level             int     `json:"level"`
	Seed              int64   `json:"seed"`
	TruthPairs        int     `json:"truth_pairs"`

	EpsilonPoints []DPPerfPoint `json:"epsilon_points"`
	KPoints       []DPKPoint    `json:"k_points"`

	// BestEpsilon is the ε with the highest recall per allowance unit —
	// the knee the smoke gate reads.
	BestEpsilon       float64 `json:"best_epsilon"`
	BestEpsilonRecall float64 `json:"best_epsilon_recall"`
}

// WriteJSON renders the report as indented JSON.
func (r *DPPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// dpKSweep is the k-anonymous comparison arm; a short sweep keeps the
// default run fast while bracketing the paper's k=32 operating point.
var dpKSweep = []int{8, 32, 128}

// DPPerf benchmarks differentially private blocking across an ε sweep
// against the k-anonymous pipeline across a k sweep, both at the same
// allowance fraction on the standard Adult workload. Every arm pays for
// what it consumes: the DP arm's spend includes the dummy charges of
// the noise padding, so recall per unit reflects the real price of the
// (ε,δ) guarantee, not just the live comparisons.
func DPPerf(opts Options) (*DPPerfReport, *Table, error) {
	w := NewWorkload(opts)
	o := w.Opts

	schema := w.Alice.Schema()
	qids, err := schema.Resolve(o.QIDs)
	if err != nil {
		return nil, nil, fmt.Errorf("dpperf: %w", err)
	}
	rule, err := blocking.RuleFor(schema, qids, o.Theta)
	if err != nil {
		return nil, nil, fmt.Errorf("dpperf: %w", err)
	}
	truth, err := match.TruePairs(w.Alice, w.Bob, qids, rule)
	if err != nil {
		return nil, nil, fmt.Errorf("dpperf: %w", err)
	}

	rep := &DPPerfReport{
		Records:           o.Records,
		Theta:             o.Theta,
		AllowanceFraction: o.AllowanceFraction,
		Seed:              o.Seed,
		TruthPairs:        len(truth),
	}
	spend := func(n int64) int64 {
		if n < 1 {
			return 1
		}
		return n
	}

	for _, eps := range o.Epsilons {
		cfg := w.baseConfig()
		cfg.Strategy = core.MaximizePrecision
		cfg.Epsilon = eps
		cfg.DPSeed = o.Seed
		res, err := core.Link(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("dpperf: ε=%v: %w", eps, err)
		}
		conf := res.Evaluate(truth)
		pt := DPPerfPoint{
			Epsilon:      eps,
			TotalEpsilon: res.DP.TotalEpsilon,
			TotalDelta:   res.DP.TotalDelta,
			Allowance:    res.Allowance,
			LiveSpent:    res.Invocations,
			DummySpent:   res.DP.DummySpent,
			DummyPairs:   res.DP.DummyPairs,
			AliceBins:    res.DP.AliceBins,
			BobBins:      res.DP.BobBins,
			Recall:       conf.Recall(),
			Precision:    conf.Precision(),
		}
		pt.RecallPerUnit = pt.Recall / float64(spend(pt.LiveSpent+pt.DummySpent))
		if rep.Delta == 0 {
			rep.Delta = res.DP.Delta
			rep.Level = res.DP.Level
		}
		if pt.RecallPerUnit > 0 && (rep.BestEpsilon == 0 || pt.RecallPerUnit > bestUnit(rep)) {
			rep.BestEpsilon, rep.BestEpsilonRecall = eps, pt.Recall
		}
		rep.EpsilonPoints = append(rep.EpsilonPoints, pt)
	}

	for _, k := range dpKSweep {
		cfg := w.baseConfig()
		cfg.Strategy = core.MaximizePrecision
		cfg.AliceK = w.capK(k)
		cfg.BobK = w.capK(k)
		res, err := core.Link(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("dpperf: k=%d: %w", k, err)
		}
		conf := res.Evaluate(truth)
		pt := DPKPoint{
			K:         w.capK(k),
			Allowance: res.Allowance,
			Spent:     res.Invocations,
			Recall:    conf.Recall(),
			Precision: conf.Precision(),
		}
		pt.RecallPerUnit = pt.Recall / float64(spend(pt.Spent))
		rep.KPoints = append(rep.KPoints, pt)
	}

	t := &Table{
		ID: "dp",
		Title: fmt.Sprintf("differentially private blocking vs k-anonymous baseline (Adult %d records, θ=%.2f, allowance %.3f, δ=%g, level %d)",
			o.Records, o.Theta, o.AllowanceFraction, rep.Delta, rep.Level),
		Columns: []string{"mode", "allowance", "live spent", "dummy spent", "recall", "precision", "recall/unit"},
	}
	for _, pt := range rep.EpsilonPoints {
		t.AddRow(
			fmt.Sprintf("ε=%g", pt.Epsilon),
			fmt.Sprintf("%d", pt.Allowance),
			fmt.Sprintf("%d", pt.LiveSpent),
			fmt.Sprintf("%d", pt.DummySpent),
			fmt.Sprintf("%.4f", pt.Recall),
			fmt.Sprintf("%.4f", pt.Precision),
			fmt.Sprintf("%.6f", pt.RecallPerUnit),
		)
	}
	for _, pt := range rep.KPoints {
		t.AddRow(
			fmt.Sprintf("k=%d", pt.K),
			fmt.Sprintf("%d", pt.Allowance),
			fmt.Sprintf("%d", pt.Spent),
			"0",
			fmt.Sprintf("%.4f", pt.Recall),
			fmt.Sprintf("%.4f", pt.Precision),
			fmt.Sprintf("%.6f", pt.RecallPerUnit),
		)
	}
	return rep, t, nil
}

// bestUnit returns the recall-per-unit of the current best ε point.
func bestUnit(rep *DPPerfReport) float64 {
	for _, pt := range rep.EpsilonPoints {
		if pt.Epsilon == rep.BestEpsilon {
			return pt.RecallPerUnit
		}
	}
	return 0
}
