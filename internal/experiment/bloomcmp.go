package experiment

import (
	"fmt"
	"math/rand"

	"pprl/internal/blocking"
	"pprl/internal/bloom"
	"pprl/internal/dataset"
	"pprl/internal/metrics"
	"pprl/internal/names"
)

// Bloom compares the hybrid method against Bloom-filter (CLK) linkage —
// the approach most post-2008 open-source PPRL tools adopted — on the
// dirty string workload (30% of surnames misspelled). Both are scored
// against the edit-rule ground truth. The contrast the table shows: CLK
// linkage is free at match time and typo-tolerant, but trades precision
// against recall through its Dice threshold and offers only heuristic
// privacy; the hybrid method keeps precision at exactly 100% and prices
// recall in SMC invocations under provable guarantees.
func Bloom(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	schema := names.Schema()
	population := names.Generate(schema, stringWorkloadSize(opts), opts.Seed)
	alice, bobClean := dataset.SplitOverlap(population, rand.New(rand.NewSource(opts.Seed+1)))
	bob := names.Corrupt(bobClean, 0.3, opts.Seed+2)

	mcs, thresholds, qids, err := names.Rule(schema, 0.25, 0.05)
	if err != nil {
		return nil, err
	}
	editRule, err := blocking.NewRule(mcs, thresholds)
	if err != nil {
		return nil, err
	}
	truth := stringTruth(alice, bob, qids, editRule)
	if len(truth) == 0 {
		return nil, fmt.Errorf("bloom: empty ground truth")
	}

	t := &Table{
		ID:      "bloom",
		Title:   "Hybrid vs. Bloom-filter (CLK) linkage on 30%-misspelled names",
		Columns: []string{"method", "precision", "recall"},
	}

	enc, err := bloom.NewEncoder(1000, 30, 2, []byte("pprl-shared-key"))
	if err != nil {
		return nil, err
	}
	aFilters := bloom.EncodeRecords(enc, alice, qids)
	bFilters := bloom.EncodeRecords(enc, bob, qids)
	for _, tau := range []float64{0.95, 0.90, 0.85} {
		conf := bloomLink(aFilters, bFilters, tau, truth)
		t.AddRow(fmt.Sprintf("Bloom CLK, Dice ≥ %.2f", tau),
			pct(conf.Precision()), pct(conf.Recall()))
	}

	rec, err := stringRecall(alice, bob, qids, editRule, truth)
	if err != nil {
		return nil, err
	}
	t.AddRow("hybrid edit rule (2% SMC budget)", pct(1), pct(rec))
	return t, nil
}

// bloomLink scores the all-pairs Dice threshold matcher against truth.
func bloomLink(a, b []*bloom.Filter, tau float64, truth map[[2]int]bool) metrics.Confusion {
	var tp, fp int64
	for i := range a {
		for j := range b {
			if a[i].Dice(b[j]) < tau {
				continue
			}
			if truth[[2]int{i, j}] {
				tp++
			} else {
				fp++
			}
		}
	}
	return metrics.Confusion{
		TruePositives:  tp,
		FalsePositives: fp,
		FalseNegatives: int64(len(truth)) - tp,
	}
}
