package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// smallOpts keeps the suite fast in CI while exercising every code path.
func smallOpts() Options {
	return Options{
		Records:    360,
		Seed:       99,
		Ks:         []int{2, 16, 64},
		Thetas:     []float64{0.01, 0.05, 0.10},
		QIDCounts:  []int{3, 5, 8},
		Allowances: []float64{0, 0.01, 1.0},
	}
}

// cell parses a "12.34%" or plain numeric cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestFig2Shape(t *testing.T) {
	tab, err := Fig2(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Columns) != 4 {
		t.Fatalf("fig2 shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	// Sequences decrease with k for every method.
	for col := 1; col <= 3; col++ {
		first := cell(t, tab.Rows[0][col])
		last := cell(t, tab.Rows[len(tab.Rows)-1][col])
		if last > first {
			t.Errorf("fig2 %s: sequences rose from %v to %v with k", tab.Columns[col], first, last)
		}
	}
	// Entropy beats TDS and DataFly at the lowest k.
	tds, ent, fly := cell(t, tab.Rows[0][1]), cell(t, tab.Rows[0][2]), cell(t, tab.Rows[0][3])
	if ent < tds || ent < fly {
		t.Errorf("fig2 at k=2: Entropy %v should lead TDS %v and DataFly %v", ent, tds, fly)
	}
}

func TestFig3Decreasing(t *testing.T) {
	tab, err := Fig3(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 101.0
	for _, row := range tab.Rows {
		eff := cell(t, row[1])
		if eff > prev+5 { // small non-monotonic jitter tolerated
			t.Errorf("fig3: efficiency rose sharply from %v to %v", prev, eff)
		}
		prev = eff
	}
	first := cell(t, tab.Rows[0][1])
	last := cell(t, tab.Rows[len(tab.Rows)-1][1])
	if first <= last {
		t.Errorf("fig3: efficiency should fall with k (%v → %v)", first, last)
	}
}

func TestFig4And5Shapes(t *testing.T) {
	for _, f := range []func(Options) (*Table, error){Fig4, Fig5} {
		tab, err := f(smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Columns) != 4 {
			t.Fatalf("%s columns = %v", tab.ID, tab.Columns)
		}
		for _, row := range tab.Rows {
			for col := 1; col < 4; col++ {
				v := cell(t, row[col])
				if v < 0 || v > 100 {
					t.Errorf("%s: recall %v out of range", tab.ID, v)
				}
			}
		}
	}
}

func TestFig6And7(t *testing.T) {
	f6, f7, err := Fig6and7(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 3 || len(f7.Rows) != 3 {
		t.Fatalf("fig6/7 rows: %d, %d", len(f6.Rows), len(f7.Rows))
	}
	// The paper: blocking efficiency increases with more QIDs.
	if cell(t, f6.Rows[0][1]) > cell(t, f6.Rows[2][1]) {
		t.Errorf("fig6: efficiency should grow with QIDs: %v vs %v", f6.Rows[0][1], f6.Rows[2][1])
	}
}

func TestFig8MonotoneInAllowance(t *testing.T) {
	tab, err := Fig8(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col < 4; col++ {
		prev := -1.0
		for _, row := range tab.Rows {
			v := cell(t, row[col])
			if v < prev-1e-9 {
				t.Errorf("fig8 %s: recall fell from %v to %v as allowance grew", tab.Columns[col], prev, v)
			}
			prev = v
		}
		if prev != 100 {
			t.Errorf("fig8 %s: full allowance recall = %v, want 100%%", tab.Columns[col], prev)
		}
	}
}

func TestStrategiesTable(t *testing.T) {
	tab, err := Strategies(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("strategies rows = %d", len(tab.Rows))
	}
	// Strategy 1: precision 100. Strategy 2: recall 100.
	if got := cell(t, tab.Rows[0][1]); got != 100 {
		t.Errorf("maximize-precision precision = %v", got)
	}
	if got := cell(t, tab.Rows[1][2]); got != 100 {
		t.Errorf("maximize-recall recall = %v", got)
	}
}

func TestAnonymizersTable(t *testing.T) {
	tab, err := Anonymizers(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("anonymizers rows = %d", len(tab.Rows))
	}
}

func TestRenderAndAll(t *testing.T) {
	opts := smallOpts()
	opts.Ks = []int{2, 64}
	opts.Thetas = []float64{0.05}
	opts.QIDCounts = []int{5}
	opts.Allowances = []float64{0.015}
	tables, err := All(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 13 {
		t.Fatalf("All returned %d tables, want 13", len(tables))
	}
	var buf bytes.Buffer
	for _, tab := range tables {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, id := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "strategies", "anonymizers"} {
		if !strings.Contains(out, id+" — ") {
			t.Errorf("render output missing %s", id)
		}
	}
}

func TestBaselinesTable(t *testing.T) {
	tab, err := Baselines(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("baselines rows = %d", len(tab.Rows))
	}
	// Pure SMC: perfect but maximal cost.
	if cell(t, tab.Rows[0][2]) != 100 || cell(t, tab.Rows[0][3]) != 100 {
		t.Errorf("pure SMC row should be perfect: %v", tab.Rows[0])
	}
	// Optimistic sanitization trades precision for recall.
	if cell(t, tab.Rows[2][3]) != 100 {
		t.Errorf("optimistic sanitization recall = %v, want 100%%", tab.Rows[2][3])
	}
	if cell(t, tab.Rows[2][2]) >= 100 {
		t.Errorf("optimistic sanitization precision = %v, should be < 100%%", tab.Rows[2][2])
	}
	// The hybrid rows keep 100% precision at far lower invocation counts.
	pureCost := cell(t, tab.Rows[0][1])
	for _, row := range tab.Rows[3:] {
		if cell(t, row[2]) != 100 {
			t.Errorf("%s: precision %v != 100%%", row[0], row[2])
		}
		if cell(t, row[1]) >= pureCost {
			t.Errorf("%s: invocations %v not below pure SMC %v", row[0], row[1], pureCost)
		}
	}
	// Full-recall hybrid reaches 100% recall.
	if cell(t, tab.Rows[4][3]) != 100 {
		t.Errorf("full-recall hybrid recall = %v", tab.Rows[4][3])
	}
}

func TestStringsTable(t *testing.T) {
	tab, err := Strings(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("strings rows = %d", len(tab.Rows))
	}
	// With no corruption the two rules agree on ground truth and both
	// should do well; at 50% corruption the edit rule must beat the
	// exact-equality baseline.
	lastEdit := cell(t, tab.Rows[3][1])
	lastExact := cell(t, tab.Rows[3][2])
	if lastEdit <= lastExact {
		t.Errorf("at 50%% corruption edit (%v) should beat exact (%v)", lastEdit, lastExact)
	}
}

func TestBloomTable(t *testing.T) {
	tab, err := Bloom(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("bloom rows = %d", len(tab.Rows))
	}
	// The hybrid row keeps exact precision.
	hybrid := tab.Rows[3]
	if cell(t, hybrid[1]) != 100 {
		t.Errorf("hybrid precision = %v", hybrid[1])
	}
	// Loosening the Dice threshold trades precision for recall.
	if cell(t, tab.Rows[0][1]) < cell(t, tab.Rows[2][1]) {
		t.Errorf("precision should fall as the threshold loosens: %v vs %v", tab.Rows[0][1], tab.Rows[2][1])
	}
	if cell(t, tab.Rows[0][2]) > cell(t, tab.Rows[2][2]) {
		t.Errorf("recall should rise as the threshold loosens: %v vs %v", tab.Rows[0][2], tab.Rows[2][2])
	}
}

func TestDiversityTable(t *testing.T) {
	tab, err := Diversity(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("diversity rows = %d", len(tab.Rows))
	}
	// More diversity cannot add sequences.
	if cell(t, tab.Rows[1][1]) > cell(t, tab.Rows[0][1]) {
		t.Errorf("l=2 produced more sequences (%v) than l=1 (%v)", tab.Rows[1][1], tab.Rows[0][1])
	}
}

func TestTimingTable(t *testing.T) {
	opts := smallOpts()
	tab, err := Timing(opts, 256, 1) // small key for test speed
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("timing rows = %d, want 8", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "secure comparison") {
		t.Error("timing table missing secure comparison row")
	}
}

func TestWorkedExampleCounts(t *testing.T) {
	res, err := WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedPairs != 6 || res.NonMatchedPairs != 12 || res.UnknownPairs != 18 {
		t.Errorf("worked example = %d/%d/%d, want 6/12/18",
			res.MatchedPairs, res.NonMatchedPairs, res.UnknownPairs)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Records != 1800 || o.K != 32 || o.Theta != 0.05 || o.AllowanceFraction != 0.015 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if len(o.Ks) != 10 || len(o.Thetas) != 10 || len(o.QIDCounts) != 6 || len(o.Allowances) != 7 {
		t.Errorf("sweep defaults wrong: %+v", o)
	}
	if len(o.QIDs) != 5 {
		t.Errorf("default QIDs = %v", o.QIDs)
	}
}

func TestWorkloadCapK(t *testing.T) {
	w := NewWorkload(Options{Records: 90, Seed: 1})
	if got := w.capK(1024); got != 60 {
		t.Errorf("capK(1024) = %d, want relation size 60", got)
	}
	if got := w.capK(5); got != 5 {
		t.Errorf("capK(5) = %d", got)
	}
}
