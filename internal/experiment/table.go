// Package experiment regenerates every table and figure of the paper's
// evaluation (Section VI) over the synthetic Adult workload: one function
// per artifact, each returning a Table whose series correspond to the
// figure's series. DESIGN.md carries the per-experiment index and
// EXPERIMENTS.md the paper-vs-measured comparison.
package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment artifact: an ID matching the paper
// figure, a caption, and rows of pre-formatted cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderJSON writes the table as a JSON object with id, title, columns
// and rows — the machine-readable form for external plotting.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.ID, t.Title, t.Columns, t.Rows})
}

// pct formats a fraction as a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// num formats an integer cell.
func num(v int) string { return fmt.Sprintf("%d", v) }
