package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"time"

	"pprl/internal/adult"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/dpblock"
	"pprl/internal/incremental"
)

// incrementalAmple is the absolute allowance both arms run under: large
// enough that every residual pair is purchasable, so the two arms emit
// identical verdicts and the comparison isolates orchestration cost.
const incrementalAmple = int64(1) << 30

// IncrementalPerfPoint is one workload size of the incremental
// benchmark: a live dataset absorbing the same records in B appended
// batches per side, measured against re-running the frozen pipeline
// from scratch on every union prefix (the only alternative a system
// without delta emission has).
type IncrementalPerfPoint struct {
	Records int `json:"records"`
	Alice   int `json:"alice_records"`
	Bob     int `json:"bob_records"`
	Batches int `json:"batches_per_side"`
	Deltas  int `json:"deltas"`

	// Incremental arm: one engine, 2B appends, no replay.
	IncrementalPurchased int64   `json:"incremental_purchased"`
	IncrementalMillis    float64 `json:"incremental_millis"`

	// Re-run arm: B from-scratch frozen runs over growing prefixes.
	RerunPurchased int64   `json:"rerun_purchased"`
	RerunMillis    float64 `json:"rerun_millis"`

	// Amortized cost per appended record (both sides counted).
	IncrementalPurchasedPerRecord float64 `json:"incremental_purchased_per_record"`
	RerunPurchasedPerRecord       float64 `json:"rerun_purchased_per_record"`
	IncrementalMicrosPerRecord    float64 `json:"incremental_micros_per_record"`
	RerunMicrosPerRecord          float64 `json:"rerun_micros_per_record"`

	// PurchaseSavings is rerun_purchased / incremental_purchased — how
	// many times over the re-run strategy pays for the same verdicts.
	PurchaseSavings float64 `json:"purchase_savings"`
}

// IncrementalPerfReport is the machine-readable benchmark `pprl-bench
// -exp incremental -json` writes to BENCH_incremental.json.
type IncrementalPerfReport struct {
	Theta  float64                `json:"theta"`
	Level  int                    `json:"level"`
	Seed   int64                  `json:"seed"`
	Points []IncrementalPerfPoint `json:"points"`
}

// WriteJSON renders the report as indented JSON.
func (r *IncrementalPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// incrementalBatches is the per-side append count: enough steps that the
// prefix re-runs dominate honestly, few enough that the benchmark stays
// in seconds at the 10k point.
const incrementalBatches = 8

// IncrementalPerf measures the amortized cost of absorbing appends
// through the incremental engine against re-running the frozen pipeline
// on every union prefix. Both arms use fixed-level binning, the same
// rule, and an ample allowance, so they emit identical verdicts and the
// numbers compare orchestration cost alone. Default sizes follow the
// roadmap's N=1k/10k; -records overrides with a single custom size.
func IncrementalPerf(opts Options) (*IncrementalPerfReport, *Table, error) {
	sizes := []int{1000, 10000}
	if opts.Records != 0 {
		sizes = []int{opts.Records}
	}
	o := opts.withDefaults()

	rep := &IncrementalPerfReport{Theta: o.Theta, Seed: o.Seed}
	for _, n := range sizes {
		pt, err := incrementalPoint(n, o)
		if err != nil {
			return nil, nil, fmt.Errorf("incremental: N=%d: %w", n, err)
		}
		rep.Points = append(rep.Points, *pt)
	}

	t := &Table{
		ID: "incremental",
		Title: fmt.Sprintf("incremental appends vs from-scratch re-runs (Adult, θ=%.2f, %d batches/side, ample allowance)",
			o.Theta, incrementalBatches),
		Columns: []string{"records", "deltas", "incr purchased", "rerun purchased", "savings", "incr µs/rec", "rerun µs/rec"},
	}
	for _, pt := range rep.Points {
		t.AddRow(
			fmt.Sprintf("%d", pt.Records),
			fmt.Sprintf("%d", pt.Deltas),
			fmt.Sprintf("%d", pt.IncrementalPurchased),
			fmt.Sprintf("%d", pt.RerunPurchased),
			fmt.Sprintf("%.1f×", pt.PurchaseSavings),
			fmt.Sprintf("%.1f", pt.IncrementalMicrosPerRecord),
			fmt.Sprintf("%.1f", pt.RerunMicrosPerRecord),
		)
	}
	return rep, t, nil
}

// incrementalPoint runs both arms at one workload size.
func incrementalPoint(n int, o Options) (*IncrementalPerfPoint, error) {
	full := adult.Generate(n, o.Seed)
	alice, bob := dataset.SplitOverlap(full, rand.New(rand.NewSource(o.Seed+1)))
	schema := alice.Schema()
	b := incrementalBatches
	if alice.Len() < b || bob.Len() < b {
		return nil, fmt.Errorf("need at least %d records per side (got %d/%d)", b, alice.Len(), bob.Len())
	}

	pt := &IncrementalPerfPoint{
		Records: n,
		Alice:   alice.Len(),
		Bob:     bob.Len(),
		Batches: b,
	}
	total := float64(alice.Len() + bob.Len())

	// Incremental arm: one engine absorbs alternating appends.
	cfg := incremental.Config{
		QIDs:      o.QIDs,
		Theta:     o.Theta,
		Allowance: incrementalAmple,
		Strategy:  core.MaximizePrecision,
	}
	eng, err := incremental.New(schema, cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < b; i++ {
		aPart := alice.Slice(i*alice.Len()/b, (i+1)*alice.Len()/b)
		bPart := bob.Slice(i*bob.Len()/b, (i+1)*bob.Len()/b)
		if _, err := eng.Append(0, aPart.Records()); err != nil {
			return nil, err
		}
		if _, err := eng.Append(1, bPart.Records()); err != nil {
			return nil, err
		}
	}
	pt.IncrementalMillis = float64(time.Since(start)) / float64(time.Millisecond)
	stats := eng.Stats()
	pt.Deltas = stats.Deltas
	pt.IncrementalPurchased = stats.Purchased

	// Re-run arm: a from-scratch frozen run on every union prefix.
	lb, err := dpblock.NewLevelBinner(0)
	if err != nil {
		return nil, err
	}
	frozen := core.DefaultConfig(o.QIDs)
	frozen.Theta = o.Theta
	frozen.AliceAnonymizer, frozen.BobAnonymizer = lb, lb
	frozen.AliceK, frozen.BobK = 1, 1
	frozen.Allowance = incrementalAmple
	frozen.Strategy = core.MaximizePrecision
	frozen.Scale = 1
	var last *core.Result
	start = time.Now()
	for i := 0; i < b; i++ {
		aPrefix := alice.Slice(0, (i+1)*alice.Len()/b)
		bPrefix := bob.Slice(0, (i+1)*bob.Len()/b)
		res, err := core.Link(core.Holder{Data: aPrefix}, core.Holder{Data: bPrefix}, frozen)
		if err != nil {
			return nil, err
		}
		pt.RerunPurchased += res.Invocations
		last = res
	}
	pt.RerunMillis = float64(time.Since(start)) / float64(time.Millisecond)

	// Both arms must land on the same final match set size; a mismatch
	// means the delta contract broke and the numbers are meaningless.
	if got := last.MatchedPairCount(); got != int64(pt.Deltas) {
		return nil, fmt.Errorf("verdict divergence: incremental emitted %d deltas, frozen union run matched %d pairs", pt.Deltas, got)
	}

	pt.IncrementalPurchasedPerRecord = float64(pt.IncrementalPurchased) / total
	pt.RerunPurchasedPerRecord = float64(pt.RerunPurchased) / total
	pt.IncrementalMicrosPerRecord = pt.IncrementalMillis * 1000 / total
	pt.RerunMicrosPerRecord = pt.RerunMillis * 1000 / total
	if pt.IncrementalPurchased > 0 {
		pt.PurchaseSavings = float64(pt.RerunPurchased) / float64(pt.IncrementalPurchased)
	}
	return pt, nil
}
