package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestDistPerfReportGoldenSchema pins the serialized form of
// BENCH_distributed.json the same way the smcperf golden test pins
// BENCH_smc.json: external trend tooling keys on these field names.
func TestDistPerfReportGoldenSchema(t *testing.T) {
	rep := &DistPerfReport{
		GOMAXPROCS:       1,
		Records:          2400,
		Attributes:       5,
		Pairs:            256,
		ChunkPairs:       64,
		KeyBits:          512,
		CalibrationPairs: 8,
		CostMsPerPair:    10.5,
		Fleets: []DistPerfFleet{
			{Workers: 1, Chunks: 4, Seconds: 2.7, Rate: 94.8, Speedup: 1, Efficiency: 1},
			{Workers: 2, Chunks: 8, Seconds: 1.35, Rate: 189.6, Speedup: 2, Efficiency: 1},
		},
		Speedup2: 2,
		Speedup4: 3.9,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "gomaxprocs": 1,
  "records": 2400,
  "attributes": 5,
  "pairs": 256,
  "chunk_pairs": 64,
  "key_bits": 512,
  "calibration_pairs": 8,
  "cost_ms_per_pair": 10.5,
  "fleets": [
    {
      "workers": 1,
      "chunks": 4,
      "seconds": 2.7,
      "comparisons_per_sec": 94.8,
      "speedup": 1,
      "efficiency": 1
    },
    {
      "workers": 2,
      "chunks": 8,
      "seconds": 1.35,
      "comparisons_per_sec": 189.6,
      "speedup": 2,
      "efficiency": 1
    }
  ],
  "speedup_2_workers": 2,
  "speedup_4_workers": 3.9
}
`
	if got := buf.String(); got != golden {
		t.Errorf("BENCH_distributed.json schema drifted:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"speedup_2_workers", "fleets", "cost_ms_per_pair", "calibration_pairs"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing field %q", k)
		}
	}
}

// TestDistPerfSmoke runs the real benchmark at a tiny scale: the fleet
// cells must all agree with the oracle (DistPerf errors on divergence)
// and the report must carry a positive calibrated cost.
func TestDistPerfSmoke(t *testing.T) {
	rep, table, err := DistPerf(Options{Records: 120}, 64, 24)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != 3 {
		t.Fatalf("table = %+v, want 3 fleet rows", table)
	}
	if rep.CostMsPerPair <= 0 {
		t.Errorf("calibrated cost = %v ms, want > 0", rep.CostMsPerPair)
	}
	if len(rep.Fleets) != 3 || rep.Fleets[0].Workers != 1 || rep.Fleets[2].Workers != 4 {
		t.Errorf("fleets = %+v, want 1/2/4 workers", rep.Fleets)
	}
	for _, f := range rep.Fleets {
		if f.Rate <= 0 {
			t.Errorf("%d-worker rate = %v, want > 0", f.Workers, f.Rate)
		}
	}
}
