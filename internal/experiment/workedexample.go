package experiment

import (
	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/distance"
	"pprl/internal/vgh"
)

// WorkedExampleData reconstructs Section III of the paper: relations R and
// S of Tables I and II, their handcrafted 3-anonymous and 2-anonymous
// generalizations, and the classifier (θ₁ = 0.5 Hamming on Education,
// θ₂ = 0.2 Euclidean on WorkHrs with normFactor 98).
type WorkedExampleData struct {
	Education *vgh.Hierarchy
	R, S      *anonymize.Result
	RRecords  []vgh.Sequence
	SRecords  []vgh.Sequence
	Rule      *blocking.Rule
}

// NewWorkedExample builds the Section III fixture.
func NewWorkedExample() (*WorkedExampleData, error) {
	edu := vgh.MustParse("education", `ANY
  Secondary
    Junior Sec.
      9th
      10th
    Senior Sec.
      11th
      12th
  University
    Bachelors
    Grad School
      Masters
      Doctorate
`)
	cat := func(name string) vgh.Value { return vgh.CatValue(edu.MustLookup(name)) }
	num := func(lo, hi float64) vgh.Value { return vgh.NumValue(vgh.Interval{Lo: lo, Hi: hi}) }
	pt := func(v float64) vgh.Value { return vgh.NumValue(vgh.Point(v)) }

	d := &WorkedExampleData{Education: edu}
	d.RRecords = []vgh.Sequence{
		{cat("Masters"), pt(35)}, {cat("Masters"), pt(36)}, {cat("Masters"), pt(36)},
		{cat("9th"), pt(28)}, {cat("10th"), pt(22)}, {cat("12th"), pt(33)},
	}
	d.SRecords = []vgh.Sequence{
		{cat("Masters"), pt(36)}, {cat("Masters"), pt(35)}, {cat("Bachelors"), pt(27)},
		{cat("11th"), pt(33)}, {cat("11th"), pt(22)}, {cat("12th"), pt(27)},
	}
	d.R = &anonymize.Result{
		Method: "paper", K: 3, QIDs: []int{0, 1},
		Classes: []anonymize.Class{
			{Sequence: vgh.Sequence{cat("Masters"), num(35, 37)}, Members: []int{0, 1, 2}},
			{Sequence: vgh.Sequence{cat("Secondary"), num(1, 35)}, Members: []int{3, 4, 5}},
		},
		ClassOf: []int{0, 0, 0, 1, 1, 1},
	}
	d.S = &anonymize.Result{
		Method: "paper", K: 2, QIDs: []int{0, 1},
		Classes: []anonymize.Class{
			{Sequence: vgh.Sequence{cat("Masters"), num(35, 37)}, Members: []int{0, 1}},
			{Sequence: vgh.Sequence{cat("ANY"), num(1, 35)}, Members: []int{2, 3}},
			{Sequence: vgh.Sequence{cat("Senior Sec."), num(1, 35)}, Members: []int{4, 5}},
		},
		ClassOf: []int{0, 0, 1, 1, 2, 2},
	}
	rule, err := blocking.NewRule(
		[]distance.Metric{distance.Hamming{}, distance.Euclidean{Norm: 98}},
		[]float64{0.5, 0.2},
	)
	if err != nil {
		return nil, err
	}
	d.Rule = rule
	return d, nil
}

// WorkedExample blocks the Section III fixture and returns the result
// (expected: 6 matched, 12 mismatched, 18 unknown record pairs — a 50%
// blocking efficiency).
func WorkedExample() (*blocking.Result, error) {
	d, err := NewWorkedExample()
	if err != nil {
		return nil, err
	}
	return blocking.Block(d.R, d.S, d.Rule)
}
