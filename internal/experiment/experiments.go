package experiment

import (
	"fmt"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/core"
	"pprl/internal/heuristic"
)

// Fig2 reproduces Figure 2: the number of distinct generalization
// sequences produced by TDS, the paper's max-entropy method, and DataFly
// as the anonymity requirement k grows.
func Fig2(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	qids, err := w.Alice.Schema().Resolve(w.Opts.QIDs)
	if err != nil {
		return nil, err
	}
	methods := []anonymize.Anonymizer{anonymize.NewTDS(), anonymize.NewMaxEntropy(), anonymize.NewDataFly()}
	t := &Table{
		ID:      "fig2",
		Title:   "Number of generalization sequences vs. anonymity requirement k",
		Columns: []string{"k", "TDS", "Entropy", "DataFly"},
	}
	for _, k := range w.Opts.Ks {
		k = w.capK(k)
		row := []string{num(k)}
		for _, m := range methods {
			res, err := m.Anonymize(w.Alice, qids, k)
			if err != nil {
				return nil, fmt.Errorf("fig2: %s k=%d: %w", m.Name(), k, err)
			}
			row = append(row, num(res.NumSequences()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig3 reproduces Figure 3: blocking efficiency (the fraction of record
// pairs permanently classified by the slack rule) vs. k.
func Fig3(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	t := &Table{
		ID:      "fig3",
		Title:   "Blocking efficiency vs. anonymity requirement k",
		Columns: []string{"k", "blocking efficiency"},
	}
	for _, k := range w.Opts.Ks {
		cfg := w.baseConfig()
		cfg.AliceK = w.capK(k)
		cfg.BobK = w.capK(k)
		p, err := w.prepare(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig3: k=%d: %w", k, err)
		}
		t.AddRow(num(w.capK(k)), pct(p.block.Efficiency()))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: recall vs. k for the three selection
// heuristics under the fixed default SMC allowance.
func Fig4(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	return recallSweep(w, "fig4", "Recall vs. anonymity requirement k", "k",
		w.Opts.Ks, func(cfg *core.Config, k int) string {
			cfg.AliceK = w.capK(k)
			cfg.BobK = w.capK(k)
			return num(w.capK(k))
		})
}

// Fig5 reproduces Figure 5: recall vs. the matching threshold θ for the
// three heuristics. Anonymization does not depend on θ, so the sweep
// re-blocks the same views under each rule.
func Fig5(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	return recallSweep(w, "fig5", "Recall vs. matching threshold θ", "θ",
		w.Opts.Thetas, func(cfg *core.Config, theta float64) string {
			cfg.Theta = theta
			return fmt.Sprintf("%.2f", theta)
		})
}

// Fig6and7 reproduces Figures 6 and 7 in one sweep: blocking efficiency
// and per-heuristic recall vs. the number of quasi-identifiers (the top-q
// attributes of the paper's QID ordering).
func Fig6and7(opts Options) (*Table, *Table, error) {
	w := NewWorkload(opts)
	f6 := &Table{
		ID:      "fig6",
		Title:   "Blocking efficiency vs. number of quasi-identifiers",
		Columns: []string{"QIDs", "blocking efficiency"},
	}
	f7 := &Table{
		ID:      "fig7",
		Title:   "Recall vs. number of quasi-identifiers",
		Columns: []string{"QIDs", "maxLast", "minFirst", "minAvgFirst"},
	}
	for _, q := range w.Opts.QIDCounts {
		cfg := w.baseConfig()
		cfg.QIDs = adult.TopQIDs(q)
		p, err := w.prepare(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("fig6/7: q=%d: %w", q, err)
		}
		f6.AddRow(num(q), pct(p.block.Efficiency()))
		row := []string{num(q)}
		for _, h := range heuristic.All() {
			hCfg := cfg
			hCfg.Heuristic = h
			rec, err := w.recall(p, hCfg)
			if err != nil {
				return nil, nil, fmt.Errorf("fig7: q=%d %s: %w", q, h.Name(), err)
			}
			row = append(row, pct(rec))
		}
		f7.AddRow(row...)
	}
	return f6, f7, nil
}

// Fig8 reproduces Figure 8: recall vs. the SMC allowance (as a percentage
// of all record pairs) for the three heuristics. Anonymization and
// blocking are shared across the whole sweep.
func Fig8(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	cfg := w.baseConfig()
	p, err := w.prepare(cfg)
	if err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	t := &Table{
		ID:      "fig8",
		Title:   "Recall vs. SMC allowance (% of all record pairs)",
		Columns: []string{"allowance", "maxLast", "minFirst", "minAvgFirst"},
	}
	for _, frac := range w.Opts.Allowances {
		row := []string{pct(frac)}
		for _, h := range heuristic.All() {
			hCfg := cfg
			hCfg.Heuristic = h
			hCfg.AllowanceFraction = frac
			// AllowanceFraction == 0 means "no budget" here, which the
			// engine reads as Allowance 0 pairs.
			rec, err := w.recall(p, hCfg)
			if err != nil {
				return nil, fmt.Errorf("fig8: a=%v %s: %w", frac, h.Name(), err)
			}
			row = append(row, pct(rec))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Strategies reproduces the Section V-B analysis: precision and recall of
// the three residual-labeling strategies under the default budget.
func Strategies(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	cfg := w.baseConfig()
	p, err := w.prepare(cfg)
	if err != nil {
		return nil, fmt.Errorf("strategies: %w", err)
	}
	t := &Table{
		ID:      "strategies",
		Title:   "Residual-labeling strategies (Section V-B) at the default allowance",
		Columns: []string{"strategy", "precision", "recall", "reported matches"},
	}
	for _, s := range []core.Strategy{core.MaximizePrecision, core.MaximizeRecall, core.TrainClassifier} {
		sCfg := cfg
		sCfg.Strategy = s
		sCfg.Seed = w.Opts.Seed
		res, err := core.LinkPrepared(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, p.block, sCfg)
		if err != nil {
			return nil, fmt.Errorf("strategies: %v: %w", s, err)
		}
		conf := res.Evaluate(p.truth)
		t.AddRow(s.String(), pct(conf.Precision()), pct(conf.Recall()),
			fmt.Sprintf("%d", res.MatchedPairCount()))
	}
	return t, nil
}

// Anonymizers is an ablation extension: sequence counts, blocking
// efficiency and recall for every implemented anonymizer (including the
// Mondrian extension) at the default k.
func Anonymizers(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	t := &Table{
		ID:      "anonymizers",
		Title:   "Anonymization method ablation at default k",
		Columns: []string{"method", "sequences(A)", "blocking efficiency", "recall"},
	}
	qids, err := w.Alice.Schema().Resolve(w.Opts.QIDs)
	if err != nil {
		return nil, err
	}
	for _, m := range []anonymize.Anonymizer{
		anonymize.NewMaxEntropy(), anonymize.NewTDS(), anonymize.NewDataFly(), anonymize.NewMondrian(),
	} {
		cfg := w.baseConfig()
		cfg.AliceAnonymizer = m
		cfg.BobAnonymizer = m
		p, err := w.prepare(cfg)
		if err != nil {
			return nil, fmt.Errorf("anonymizers: %s: %w", m.Name(), err)
		}
		rec, err := w.recall(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("anonymizers: %s: %w", m.Name(), err)
		}
		aView, err := m.Anonymize(w.Alice, qids, cfg.AliceK)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name(), num(aView.NumSequences()), pct(p.block.Efficiency()), pct(rec))
	}
	return t, nil
}

// Diversity is an extension ablation: the accuracy cost of adding
// distinct l-diversity (of the income class) on top of k-anonymity, for
// l ∈ {1, 2} — the income class is binary, so 2 is the maximum
// achievable diversity. The sweep runs at k = 4, where small equivalence
// classes exist and the diversity constraint actually binds (at the
// default k = 32 every class already mixes both income values). Larger l
// forbids specializations, so sequences, blocking efficiency and recall
// can only drop.
func Diversity(opts Options) (*Table, error) {
	w := NewWorkload(opts)
	t := &Table{
		ID:      "diversity",
		Title:   "l-diversity extension: privacy vs. blocking accuracy at k=4",
		Columns: []string{"l", "sequences(A)", "blocking efficiency", "recall"},
	}
	qids, err := w.Alice.Schema().Resolve(w.Opts.QIDs)
	if err != nil {
		return nil, err
	}
	for _, l := range []int{1, 2} {
		a := anonymize.NewLDiverseEntropy(l)
		cfg := w.baseConfig()
		cfg.AliceK = w.capK(4)
		cfg.BobK = w.capK(4)
		cfg.AliceAnonymizer = a
		cfg.BobAnonymizer = a
		p, err := w.prepare(cfg)
		if err != nil {
			return nil, fmt.Errorf("diversity: l=%d: %w", l, err)
		}
		rec, err := w.recall(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("diversity: l=%d: %w", l, err)
		}
		view, err := a.Anonymize(w.Alice, qids, cfg.AliceK)
		if err != nil {
			return nil, err
		}
		t.AddRow(num(l), num(view.NumSequences()), pct(p.block.Efficiency()), pct(rec))
	}
	return t, nil
}

// recallSweep renders a three-heuristic recall table over a sweep of one
// parameter, reusing the prepared stage per sweep point.
func recallSweep[T any](w Workload, id, title, param string, values []T, apply func(*core.Config, T) string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{param, "maxLast", "minFirst", "minAvgFirst"},
	}
	for _, v := range values {
		cfg := w.baseConfig()
		label := apply(&cfg, v)
		p, err := w.prepare(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %v: %w", id, v, err)
		}
		row := []string{label}
		for _, h := range heuristic.All() {
			hCfg := cfg
			hCfg.Heuristic = h
			rec, err := w.recall(p, hCfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %v %s: %w", id, v, h.Name(), err)
			}
			row = append(row, pct(rec))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// All runs the complete suite in paper order.
func All(opts Options) ([]*Table, error) {
	var out []*Table
	add := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	if err := add(Fig2(opts)); err != nil {
		return nil, err
	}
	if err := add(Fig3(opts)); err != nil {
		return nil, err
	}
	if err := add(Fig4(opts)); err != nil {
		return nil, err
	}
	if err := add(Fig5(opts)); err != nil {
		return nil, err
	}
	f6, f7, err := Fig6and7(opts)
	if err != nil {
		return nil, err
	}
	out = append(out, f6, f7)
	if err := add(Fig8(opts)); err != nil {
		return nil, err
	}
	if err := add(Strategies(opts)); err != nil {
		return nil, err
	}
	if err := add(Anonymizers(opts)); err != nil {
		return nil, err
	}
	if err := add(Baselines(opts)); err != nil {
		return nil, err
	}
	if err := add(Diversity(opts)); err != nil {
		return nil, err
	}
	if err := add(Strings(opts)); err != nil {
		return nil, err
	}
	if err := add(Bloom(opts)); err != nil {
		return nil, err
	}
	return out, nil
}
