package experiment

import (
	"fmt"
	"math/rand"

	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/heuristic"
	"pprl/internal/names"
)

// Strings is the extension experiment for the paper's Section VIII future
// work: private linkage over alphanumeric attributes. One relation's
// surnames are corrupted with near-miss misspellings at increasing rates;
// the table compares the edit-distance rule (with prefix-hierarchy
// blocking, θ_edit = 0.25) against the exact-equality baseline, both
// under a 2% SMC budget resolved by the exact-rule oracle (the secure
// circuit for edit distance is the open problem the paper defers).
// Recall is measured against the edit rule's ground truth, so the
// baseline's inability to see through typos shows up directly.
func Strings(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	schema := names.Schema()
	population := names.Generate(schema, stringWorkloadSize(opts), opts.Seed)
	alice, bobClean := dataset.SplitOverlap(population, rand.New(rand.NewSource(opts.Seed+1)))

	metrics, thresholds, qids, err := names.Rule(schema, 0.25, 0.05)
	if err != nil {
		return nil, err
	}
	editRule, err := blocking.NewRule(metrics, thresholds)
	if err != nil {
		return nil, err
	}
	exactMetrics := []distance.Metric{distance.Hamming{}, metrics[1], metrics[2]}
	exactRule, err := blocking.NewRule(exactMetrics, thresholds)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "strings",
		Title:   "Edit-distance extension: recall vs. surname corruption rate (2% budget)",
		Columns: []string{"corruption", "edit rule", "exact-equality baseline"},
	}
	for _, rate := range []float64{0, 0.1, 0.3, 0.5} {
		bob := names.Corrupt(bobClean, rate, opts.Seed+2)
		truth := stringTruth(alice, bob, qids, editRule)
		if len(truth) == 0 {
			return nil, fmt.Errorf("strings: empty ground truth at rate %v", rate)
		}
		editRec, err := stringRecall(alice, bob, qids, editRule, truth)
		if err != nil {
			return nil, fmt.Errorf("strings: rate %v: %w", rate, err)
		}
		exactRec, err := stringRecall(alice, bob, qids, exactRule, truth)
		if err != nil {
			return nil, fmt.Errorf("strings: rate %v: %w", rate, err)
		}
		t.AddRow(pct(rate), pct(editRec), pct(exactRec))
	}
	return t, nil
}

// stringWorkloadSize caps the string-extension workload: the surname
// dictionary has only ~80 spellings, so beyond a few thousand records a
// larger sample adds duplicates, not signal — and ground truth for the
// edit rule needs a full pairwise scan.
func stringWorkloadSize(opts Options) int {
	n := opts.Records / 3 * 2
	if n > 4000 {
		n = 4000
	}
	return n
}

// stringTruth enumerates the truly matching pairs under the rule (the
// edit rule has no hash-joinable equality attribute, so this is a full
// scan over the modest string workload).
func stringTruth(alice, bob *dataset.Dataset, qids []int, rule *blocking.Rule) map[[2]int]bool {
	truth := make(map[[2]int]bool)
	for i := 0; i < alice.Len(); i++ {
		a := blocking.RecordSequence(alice, qids, i)
		for j := 0; j < bob.Len(); j++ {
			if rule.DecideExact(a, blocking.RecordSequence(bob, qids, j)) {
				truth[[2]int{i, j}] = true
			}
		}
	}
	return truth
}

// stringRecall runs anonymize → block → ordered budget resolution with
// the exact-rule oracle and scores against the supplied truth.
func stringRecall(alice, bob *dataset.Dataset, qids []int, rule *blocking.Rule, truth map[[2]int]bool) (float64, error) {
	anon := anonymize.NewMaxEntropy()
	aView, err := anon.Anonymize(alice, qids, 8)
	if err != nil {
		return 0, err
	}
	bView, err := anon.Anonymize(bob, qids, 8)
	if err != nil {
		return 0, err
	}
	block, err := blocking.Block(aView, bView, rule)
	if err != nil {
		return 0, err
	}
	matched := 0
	for ri, row := range block.Labels {
		for si, l := range row {
			if l != blocking.Match {
				continue
			}
			for _, i := range aView.Classes[ri].Members {
				for _, j := range bView.Classes[si].Members {
					if truth[[2]int{i, j}] {
						matched++
					}
				}
			}
		}
	}
	budget := int64(0.02 * float64(block.TotalPairs()))
	ordered := heuristic.Order(block, rule, heuristic.MinAvgFirst{}, false)
groups:
	for _, gp := range ordered {
		for _, i := range aView.Classes[gp.RI].Members {
			a := blocking.RecordSequence(alice, qids, i)
			for _, j := range bView.Classes[gp.SI].Members {
				if budget <= 0 {
					break groups
				}
				budget--
				if rule.DecideExact(a, blocking.RecordSequence(bob, qids, j)) && truth[[2]int{i, j}] {
					matched++
				}
			}
		}
	}
	return float64(matched) / float64(len(truth)), nil
}
