package experiment

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pprl/internal/paillier"
	"pprl/internal/smc"
)

// SMCPerfReport is the machine-readable SMC engine benchmark that
// `pprl-bench -json` writes to BENCH_smc.json: throughput of the serial
// and sharded comparators over an identical workload, per-stage wall
// times, and the byte cost per comparison.
type SMCPerfReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the sharded engine's lane count.
	Workers    int `json:"workers"`
	KeyBits    int `json:"key_bits"`
	Attributes int `json:"attributes"`
	Pairs      int `json:"pairs"`

	// Wall time per stage, in seconds.
	KeygenSeconds  float64 `json:"keygen_seconds"`
	SerialSeconds  float64 `json:"serial_seconds"`
	ShardedSeconds float64 `json:"sharded_seconds"`

	SerialRate  float64 `json:"serial_comparisons_per_sec"`
	ShardedRate float64 `json:"sharded_comparisons_per_sec"`
	// Speedup is ShardedRate / SerialRate.
	Speedup float64 `json:"speedup"`

	BytesPerComparison int64 `json:"bytes_per_comparison"`
}

// WriteJSON renders the report as indented JSON.
func (r *SMCPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// smcPerfSpec builds an attrs-wide circuit alternating the threshold and
// equality modes, mirroring a mixed quasi-identifier rule.
func smcPerfSpec(attrs int) *smc.Spec {
	spec := &smc.Spec{Scale: 1}
	for a := 0; a < attrs; a++ {
		if a%2 == 0 {
			spec.Attrs = append(spec.Attrs, smc.AttrSpec{Mode: smc.ModeThreshold, T: 16})
		} else {
			spec.Attrs = append(spec.Attrs, smc.AttrSpec{Mode: smc.ModeEquality})
		}
	}
	return spec
}

// SMCPerf benchmarks the secure comparator engines: pairs comparisons at
// keyBits over an attrs-attribute circuit, once through the serial
// SecureComparator and once through the sharded engine with workers lanes
// (≤ 0 = GOMAXPROCS). Both paths run real Paillier circuits over the same
// records; verdict disagreement is an error.
func SMCPerf(keyBits, attrs, pairsN, workers int) (*SMCPerfReport, *Table, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spec := smcPerfSpec(attrs)
	const holders = 24
	alice := make([][]int64, holders)
	bob := make([][]int64, holders)
	for i := range alice {
		alice[i] = make([]int64, attrs)
		bob[i] = make([]int64, attrs)
		for a := 0; a < attrs; a++ {
			alice[i][a] = int64((i*7 + a) % 23)
			bob[i][a] = int64((i*5 + a*3) % 23)
		}
	}
	pairs := make([][2]int, pairsN)
	for k := range pairs {
		pairs[k] = [2]int{(k * 3) % holders, (k * 11) % holders}
	}

	rep := &SMCPerfReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		KeyBits:    keyBits,
		Attributes: attrs,
		Pairs:      pairsN,
	}

	// Keygen is timed separately: it is a fixed per-session cost the
	// throughput numbers deliberately exclude.
	start := time.Now()
	if _, err := paillier.GenerateKey(rand.Reader, keyBits); err != nil {
		return nil, nil, fmt.Errorf("smcperf: keygen: %w", err)
	}
	rep.KeygenSeconds = time.Since(start).Seconds()

	serial, err := smc.NewLocalSecure(spec, alice, bob, keyBits)
	if err != nil {
		return nil, nil, fmt.Errorf("smcperf: serial comparator: %w", err)
	}
	start = time.Now()
	serialVerdicts, err := serial.CompareBatch(pairs)
	if err != nil {
		serial.Close()
		return nil, nil, fmt.Errorf("smcperf: serial batch: %w", err)
	}
	rep.SerialSeconds = time.Since(start).Seconds()
	rep.BytesPerComparison = serial.BytesTransferred() / serial.Invocations()
	serial.Close()

	sharded, err := smc.NewLocalSecureSharded(spec, alice, bob, keyBits, workers)
	if err != nil {
		return nil, nil, fmt.Errorf("smcperf: sharded comparator: %w", err)
	}
	start = time.Now()
	shardedVerdicts, err := sharded.CompareBatch(pairs)
	if err != nil {
		sharded.Close()
		return nil, nil, fmt.Errorf("smcperf: sharded batch: %w", err)
	}
	rep.ShardedSeconds = time.Since(start).Seconds()
	sharded.Close()

	for k := range pairs {
		if serialVerdicts[k] != shardedVerdicts[k] {
			return nil, nil, fmt.Errorf("smcperf: verdict mismatch on pair %v", pairs[k])
		}
	}

	if rep.SerialSeconds > 0 {
		rep.SerialRate = float64(pairsN) / rep.SerialSeconds
	}
	if rep.ShardedSeconds > 0 {
		rep.ShardedRate = float64(pairsN) / rep.ShardedSeconds
	}
	if rep.SerialRate > 0 {
		rep.Speedup = rep.ShardedRate / rep.SerialRate
	}

	t := &Table{
		ID:      "smcperf",
		Title:   fmt.Sprintf("SMC engine throughput (%d-bit key, %d attributes, %d pairs, GOMAXPROCS=%d)", keyBits, attrs, pairsN, rep.GOMAXPROCS),
		Columns: []string{"engine", "workers", "seconds", "comparisons/sec", "bytes/comparison"},
	}
	t.AddRow("serial", "1", fmt.Sprintf("%.3f", rep.SerialSeconds),
		fmt.Sprintf("%.1f", rep.SerialRate), fmt.Sprintf("%d", rep.BytesPerComparison))
	t.AddRow("sharded", fmt.Sprintf("%d", rep.Workers), fmt.Sprintf("%.3f", rep.ShardedSeconds),
		fmt.Sprintf("%.1f", rep.ShardedRate), fmt.Sprintf("%d", rep.BytesPerComparison))
	return rep, t, nil
}
