package experiment

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pprl/internal/paillier"
	"pprl/internal/smc"
)

// SMCPerfEngine is one engine × packing cell of the SMC benchmark grid.
type SMCPerfEngine struct {
	// Engine is "serial" or "sharded"; Packing is "off" or "packed".
	Engine  string `json:"engine"`
	Packing string `json:"packing"`
	Workers int    `json:"workers"`

	Seconds float64 `json:"seconds"`
	Rate    float64 `json:"comparisons_per_sec"`

	// BytesPerComparison is all protocol traffic; ResultBytesPerComparison
	// is just Bob's MsgResult leg — the traffic slot packing compresses.
	BytesPerComparison       int64 `json:"bytes_per_comparison"`
	ResultBytesPerComparison int64 `json:"result_bytes_per_comparison"`
	// DecryptionsPerComparison is the querying party's CRT decryption
	// count per comparison: d unpacked, ⌈d/slots⌉ packed.
	DecryptionsPerComparison float64 `json:"decryptions_per_comparison"`
}

// SMCPerfReport is the machine-readable SMC engine benchmark that
// `pprl-bench -json` writes to BENCH_smc.json: throughput of the serial
// and sharded comparators over an identical workload in both result
// encodings, plus the derived speedup ratios.
type SMCPerfReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the sharded engine's lane count.
	Workers    int `json:"workers"`
	KeyBits    int `json:"key_bits"`
	Attributes int `json:"attributes"`
	Pairs      int `json:"pairs"`

	// KeygenSeconds is the fixed per-session cost the throughput numbers
	// deliberately exclude.
	KeygenSeconds float64 `json:"keygen_seconds"`

	// Engines holds the four grid cells in a fixed order:
	// serial/off, serial/packed, sharded/off, sharded/packed.
	Engines []SMCPerfEngine `json:"engines"`

	// Speedup is sharded-packed rate over serial-packed rate (the lane
	// scaling at the default encoding); PackedSpeedup is serial-packed
	// over serial-off (the tentpole's single-lane win); and
	// DecryptionReduction is the unpacked-to-packed ratio of decryptions
	// per comparison (d over ⌈d/slots⌉).
	Speedup             float64 `json:"speedup"`
	PackedSpeedup       float64 `json:"packed_speedup"`
	DecryptionReduction float64 `json:"decryption_reduction"`
}

// WriteJSON renders the report as indented JSON.
func (r *SMCPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// smcPerfSpec builds an attrs-wide circuit alternating the threshold and
// equality modes, mirroring a mixed quasi-identifier rule.
func smcPerfSpec(attrs int, packing smc.Packing) *smc.Spec {
	spec := &smc.Spec{Scale: 1, Packing: packing}
	for a := 0; a < attrs; a++ {
		if a%2 == 0 {
			spec.Attrs = append(spec.Attrs, smc.AttrSpec{Mode: smc.ModeThreshold, T: 16})
		} else {
			spec.Attrs = append(spec.Attrs, smc.AttrSpec{Mode: smc.ModeEquality})
		}
	}
	return spec
}

// smcPerfComparator is the slice of the comparator surface the benchmark
// reads; both secure engines implement it.
type smcPerfComparator interface {
	smc.Comparator
	CompareBatch(pairs [][2]int) ([]bool, error)
	ResultBytes() int64
	Decryptions() int64
}

// SMCPerf benchmarks the secure comparator engines: pairs comparisons at
// keyBits over an attrs-attribute circuit, through the serial
// SecureComparator and the sharded engine with workers lanes (≤ 0 =
// GOMAXPROCS), each once per result encoding. All four cells run real
// Paillier circuits over the same records; verdict disagreement between
// any two cells is an error.
func SMCPerf(keyBits, attrs, pairsN, workers int) (*SMCPerfReport, *Table, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const holders = 24
	alice := make([][]int64, holders)
	bob := make([][]int64, holders)
	for i := range alice {
		alice[i] = make([]int64, attrs)
		bob[i] = make([]int64, attrs)
		for a := 0; a < attrs; a++ {
			alice[i][a] = int64((i*7 + a) % 23)
			bob[i][a] = int64((i*5 + a*3) % 23)
		}
	}
	pairs := make([][2]int, pairsN)
	for k := range pairs {
		pairs[k] = [2]int{(k * 3) % holders, (k * 11) % holders}
	}

	rep := &SMCPerfReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		KeyBits:    keyBits,
		Attributes: attrs,
		Pairs:      pairsN,
	}

	start := time.Now()
	if _, err := paillier.GenerateKey(rand.Reader, keyBits); err != nil {
		return nil, nil, fmt.Errorf("smcperf: keygen: %w", err)
	}
	rep.KeygenSeconds = time.Since(start).Seconds()

	var baseline []bool
	for _, packing := range []smc.Packing{smc.PackingOff, smc.PackingPacked} {
		spec := smcPerfSpec(attrs, packing)
		for _, engine := range []string{"serial", "sharded"} {
			var (
				cmp smcPerfComparator
				err error
				w   = 1
			)
			if engine == "serial" {
				cmp, err = smc.NewLocalSecure(spec, alice, bob, keyBits)
			} else {
				w = workers
				cmp, err = smc.NewLocalSecureSharded(spec, alice, bob, keyBits, workers)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("smcperf: %s/%s comparator: %w", engine, packing, err)
			}
			start = time.Now()
			verdicts, err := cmp.CompareBatch(pairs)
			if err != nil {
				cmp.Close()
				return nil, nil, fmt.Errorf("smcperf: %s/%s batch: %w", engine, packing, err)
			}
			cell := SMCPerfEngine{
				Engine:                   engine,
				Packing:                  packing.String(),
				Workers:                  w,
				Seconds:                  time.Since(start).Seconds(),
				BytesPerComparison:       cmp.BytesTransferred() / cmp.Invocations(),
				ResultBytesPerComparison: cmp.ResultBytes() / cmp.Invocations(),
				DecryptionsPerComparison: float64(cmp.Decryptions()) / float64(cmp.Invocations()),
			}
			cmp.Close()
			if cell.Seconds > 0 {
				cell.Rate = float64(pairsN) / cell.Seconds
			}
			rep.Engines = append(rep.Engines, cell)

			if baseline == nil {
				baseline = verdicts
				continue
			}
			for k := range pairs {
				if verdicts[k] != baseline[k] {
					return nil, nil, fmt.Errorf("smcperf: %s/%s verdict mismatch on pair %v", engine, packing, pairs[k])
				}
			}
		}
	}

	cell := func(engine, packing string) *SMCPerfEngine {
		for i := range rep.Engines {
			if rep.Engines[i].Engine == engine && rep.Engines[i].Packing == packing {
				return &rep.Engines[i]
			}
		}
		return nil
	}
	serialOff, serialPacked := cell("serial", "off"), cell("serial", "packed")
	shardedPacked := cell("sharded", "packed")
	if serialPacked.Rate > 0 {
		rep.Speedup = shardedPacked.Rate / serialPacked.Rate
	}
	if serialOff.Rate > 0 {
		rep.PackedSpeedup = serialPacked.Rate / serialOff.Rate
	}
	if serialPacked.DecryptionsPerComparison > 0 {
		rep.DecryptionReduction = serialOff.DecryptionsPerComparison / serialPacked.DecryptionsPerComparison
	}

	t := &Table{
		ID:      "smcperf",
		Title:   fmt.Sprintf("SMC engine throughput (%d-bit key, %d attributes, %d pairs, GOMAXPROCS=%d)", keyBits, attrs, pairsN, rep.GOMAXPROCS),
		Columns: []string{"engine", "packing", "workers", "seconds", "comparisons/sec", "decryptions/cmp", "result bytes/cmp"},
	}
	for _, c := range rep.Engines {
		t.AddRow(c.Engine, c.Packing, fmt.Sprintf("%d", c.Workers), fmt.Sprintf("%.3f", c.Seconds),
			fmt.Sprintf("%.1f", c.Rate), fmt.Sprintf("%.3f", c.DecryptionsPerComparison),
			fmt.Sprintf("%d", c.ResultBytesPerComparison))
	}
	return rep, t, nil
}
