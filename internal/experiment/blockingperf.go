package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/index"
)

// BlockingPerfReport is the machine-readable blocking benchmark that
// `pprl-bench -exp blocking -json` writes to BENCH_blocking.json: the
// dense class-pair scan against the hierarchy index over an identical
// Adult workload, with throughput, allocation, and pruning measurements.
type BlockingPerfReport struct {
	Records  int     `json:"records"`
	K        int     `json:"k"`
	Theta    float64 `json:"theta"`
	RClasses int     `json:"r_classes"`
	SClasses int     `json:"s_classes"`
	// ClassPairs is the full candidate space both engines must label.
	ClassPairs int64 `json:"class_pairs"`

	DenseSeconds   float64 `json:"dense_seconds"`
	IndexedSeconds float64 `json:"indexed_seconds"`
	// Rates are class pairs labeled per second — the indexed engine
	// labels the same pair space, it just never enumerates most of it.
	DenseRate   float64 `json:"dense_class_pairs_per_sec"`
	IndexedRate float64 `json:"indexed_class_pairs_per_sec"`
	Speedup     float64 `json:"speedup"`

	// AllocBytes are the total heap allocations of each run; the dense
	// figure includes the Labels matrix the indexed path never builds.
	DenseAllocBytes   uint64 `json:"dense_alloc_bytes"`
	IndexedAllocBytes uint64 `json:"indexed_alloc_bytes"`
	// DenseLabelsBytes is the matrix footprint alone, the part that
	// scales quadratically with class count.
	DenseLabelsBytes int64 `json:"dense_labels_bytes"`

	RuleEvaluations  int64   `json:"rule_evaluations"`
	PrunedClassPairs int64   `json:"pruned_class_pairs"`
	PrunedFraction   float64 `json:"pruned_fraction"`
}

// WriteJSON renders the report as indented JSON.
func (r *BlockingPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// measureAlloc runs f and returns its duration plus the heap bytes it
// allocated (total allocation, not live set — the stable way to compare
// two single-shot runs without depending on GC timing).
func measureAlloc(f func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.TotalAlloc - before.TotalAlloc, err
}

// BlockingPerf benchmarks the two blocking engines over the standard
// Adult workload at low k (k = 4 gives enough equivalence classes for
// the class-pair loop to dominate). Both runs must be label-identical;
// divergence is an error, not a report.
func BlockingPerf(opts Options) (*BlockingPerfReport, *Table, error) {
	w := NewWorkload(opts)
	o := w.Opts
	k := w.capK(4)
	schema := w.Alice.Schema()
	qids, err := schema.Resolve(o.QIDs)
	if err != nil {
		return nil, nil, fmt.Errorf("blockingperf: %w", err)
	}
	rule, err := blocking.RuleFor(schema, qids, o.Theta)
	if err != nil {
		return nil, nil, fmt.Errorf("blockingperf: %w", err)
	}
	anon := anonymize.NewMaxEntropy()
	aView, err := anon.Anonymize(w.Alice, qids, k)
	if err != nil {
		return nil, nil, fmt.Errorf("blockingperf: anonymizing alice: %w", err)
	}
	bView, err := anon.Anonymize(w.Bob, qids, k)
	if err != nil {
		return nil, nil, fmt.Errorf("blockingperf: anonymizing bob: %w", err)
	}

	var dense, indexed *blocking.Result
	denseTime, denseAlloc, err := measureAlloc(func() error {
		dense, err = blocking.Block(aView, bView, rule)
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("blockingperf: dense: %w", err)
	}
	indexedTime, indexedAlloc, err := measureAlloc(func() error {
		indexed, err = index.Block(aView, bView, rule)
		return err
	})
	if err != nil {
		return nil, nil, fmt.Errorf("blockingperf: indexed: %w", err)
	}

	// Label identity is part of the benchmark's contract.
	if dense.MatchedPairs != indexed.MatchedPairs ||
		dense.NonMatchedPairs != indexed.NonMatchedPairs ||
		dense.UnknownPairs != indexed.UnknownPairs {
		return nil, nil, fmt.Errorf("blockingperf: engines disagree: dense M/N/U %d/%d/%d, indexed %d/%d/%d",
			dense.MatchedPairs, dense.NonMatchedPairs, dense.UnknownPairs,
			indexed.MatchedPairs, indexed.NonMatchedPairs, indexed.UnknownPairs)
	}
	for ri := range dense.R.Classes {
		for si := range dense.S.Classes {
			if dense.Label(ri, si) != indexed.Label(ri, si) {
				return nil, nil, fmt.Errorf("blockingperf: label mismatch at class pair (%d,%d)", ri, si)
			}
		}
	}

	st := indexed.Stats
	rep := &BlockingPerfReport{
		Records:           o.Records,
		K:                 k,
		Theta:             o.Theta,
		RClasses:          st.RClasses,
		SClasses:          st.SClasses,
		ClassPairs:        st.ClassPairs,
		DenseSeconds:      denseTime.Seconds(),
		IndexedSeconds:    indexedTime.Seconds(),
		DenseAllocBytes:   denseAlloc,
		IndexedAllocBytes: indexedAlloc,
		DenseLabelsBytes:  blocking.DenseLabelsBytes(aView, bView),
		RuleEvaluations:   st.RuleEvaluations,
		PrunedClassPairs:  st.PrunedClassPairs,
		PrunedFraction:    st.PrunedFraction(),
	}
	if rep.DenseSeconds > 0 {
		rep.DenseRate = float64(rep.ClassPairs) / rep.DenseSeconds
	}
	if rep.IndexedSeconds > 0 {
		rep.IndexedRate = float64(rep.ClassPairs) / rep.IndexedSeconds
	}
	if rep.DenseRate > 0 {
		rep.Speedup = rep.IndexedRate / rep.DenseRate
	}

	t := &Table{
		ID:      "blocking",
		Title:   fmt.Sprintf("blocking engines (Adult %d records, k=%d, θ=%.2f: %d×%d classes, %d class pairs)", o.Records, k, o.Theta, st.RClasses, st.SClasses, st.ClassPairs),
		Columns: []string{"engine", "seconds", "class pairs/sec", "alloc bytes", "rule evals", "pruned"},
	}
	t.AddRow("dense", fmt.Sprintf("%.4f", rep.DenseSeconds), fmt.Sprintf("%.0f", rep.DenseRate),
		fmt.Sprintf("%d", rep.DenseAllocBytes), fmt.Sprintf("%d", rep.ClassPairs), "0.0%")
	t.AddRow("indexed", fmt.Sprintf("%.4f", rep.IndexedSeconds), fmt.Sprintf("%.0f", rep.IndexedRate),
		fmt.Sprintf("%d", rep.IndexedAllocBytes), fmt.Sprintf("%d", rep.RuleEvaluations),
		fmt.Sprintf("%.1f%%", 100*rep.PrunedFraction))
	return rep, t, nil
}
