package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distrib"
	"pprl/internal/smc"
)

// DistPerfFleet is one fleet-size cell of the distributed benchmark.
type DistPerfFleet struct {
	Workers int     `json:"workers"`
	Chunks  int     `json:"chunks"`
	Seconds float64 `json:"seconds"`
	Rate    float64 `json:"comparisons_per_sec"`
	// Speedup is this cell's rate over the 1-worker rate; Efficiency is
	// Speedup/Workers (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// DistPerfReport is the machine-readable distributed-fleet benchmark
// that `pprl-bench -exp distributed -json` writes to
// BENCH_distributed.json: SMC throughput of 1/2/4-worker fleets over an
// identical Adult workload, with every fleet's verdict stream checked
// byte-identical to the single-process oracle.
//
// Methodology: each worker runs EngineModeled — the plaintext circuit
// plus a per-pair sleep calibrated from a real serial Paillier run on
// this host (CalibrationPairs comparisons at KeyBits). That models a
// fleet whose workers each own real CPUs; running W real-crypto workers
// as goroutines on one host would just timeshare the same cores and
// (dishonestly) show no scaling on small machines. The calibrated cost
// and the host's GOMAXPROCS are recorded so readers can judge the model.
type DistPerfReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Records    int `json:"records"`
	Attributes int `json:"attributes"`
	Pairs      int `json:"pairs"`
	ChunkPairs int `json:"chunk_pairs"`

	// KeyBits and CalibrationPairs describe the serial secure run the
	// per-pair cost was measured from; CostMsPerPair is that measurement.
	KeyBits          int     `json:"key_bits"`
	CalibrationPairs int     `json:"calibration_pairs"`
	CostMsPerPair    float64 `json:"cost_ms_per_pair"`

	Fleets []DistPerfFleet `json:"fleets"`

	// Speedup2 and Speedup4 are the 2- and 4-worker rates over the
	// 1-worker rate.
	Speedup2 float64 `json:"speedup_2_workers"`
	Speedup4 float64 `json:"speedup_4_workers"`
}

// WriteJSON renders the report as indented JSON.
func (r *DistPerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// distPerfEncode round-trips both relations through CSV files and the
// chunked stream reader — the out-of-core path a real deployment feeds
// the coordinator from — and returns the encoded rows plus the spec.
func distPerfEncode(w Workload) (alice, bob [][]int64, spec *smc.Spec, err error) {
	schema := w.Alice.Schema()
	qids, err := schema.Resolve(w.Opts.QIDs)
	if err != nil {
		return nil, nil, nil, err
	}
	rule, err := blocking.RuleFor(schema, qids, w.Opts.Theta)
	if err != nil {
		return nil, nil, nil, err
	}
	if spec, err = smc.SpecFromRule(rule, 1); err != nil {
		return nil, nil, nil, err
	}

	dir, err := os.MkdirTemp("", "distperf")
	if err != nil {
		return nil, nil, nil, err
	}
	defer os.RemoveAll(dir)
	encode := func(name string, d *dataset.Dataset) ([][]int64, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		st, err := dataset.OpenStream(schema, path, dataset.StreamOptions{})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		return smc.EncodeStream(st, qids, spec.Scale)
	}
	if alice, err = encode("a.csv", w.Alice); err != nil {
		return nil, nil, nil, fmt.Errorf("distperf: encoding alice: %w", err)
	}
	if bob, err = encode("b.csv", w.Bob); err != nil {
		return nil, nil, nil, fmt.Errorf("distperf: encoding bob: %w", err)
	}
	return alice, bob, spec, nil
}

// distPerfCalibrate measures the real serial secure cost per comparison:
// a NewLocalSecure run over calibPairs pairs at keyBits.
func distPerfCalibrate(spec *smc.Spec, alice, bob [][]int64, keyBits, calibPairs int) (time.Duration, error) {
	pairs := make([][2]int, calibPairs)
	for k := range pairs {
		pairs[k] = [2]int{k % len(alice), (k * 7) % len(bob)}
	}
	cmp, err := smc.NewLocalSecure(spec, alice, bob, keyBits)
	if err != nil {
		return 0, fmt.Errorf("distperf: calibration comparator: %w", err)
	}
	defer cmp.Close()
	start := time.Now()
	if _, err := cmp.CompareBatch(pairs); err != nil {
		return 0, fmt.Errorf("distperf: calibration batch: %w", err)
	}
	return time.Since(start) / time.Duration(calibPairs), nil
}

// DistPerf benchmarks the distributed SMC fleet: pairsN comparisons over
// an Adult workload striped across 1-, 2- and 4-worker fleets of
// in-process workers, each running the calibrated modeled engine. Every
// fleet's verdicts are checked against the single-process oracle; any
// divergence is an error, so the scaling numbers only exist for runs the
// correctness check passed.
func DistPerf(opts Options, keyBits, pairsN int) (*DistPerfReport, *Table, error) {
	w := NewWorkload(opts)
	alice, bob, spec, err := distPerfEncode(w)
	if err != nil {
		return nil, nil, err
	}
	if len(alice) == 0 || len(bob) == 0 {
		return nil, nil, fmt.Errorf("distperf: empty relations")
	}
	if pairsN <= 0 {
		pairsN = 256
	}
	pairs := make([][2]int, pairsN)
	for k := range pairs {
		pairs[k] = [2]int{(k * 3) % len(alice), (k * 11) % len(bob)}
	}

	const calibPairs = 8
	cost, err := distPerfCalibrate(spec, alice, bob, keyBits, calibPairs)
	if err != nil {
		return nil, nil, err
	}

	oracle := smc.NewPlainComparator(spec, alice, bob)
	baseline := make([]bool, len(pairs))
	for k, pr := range pairs {
		if baseline[k], err = oracle.Compare(pr[0], pr[1]); err != nil {
			return nil, nil, err
		}
	}
	oracle.Close()

	rep := &DistPerfReport{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Records:          w.Alice.Len() + w.Bob.Len(),
		Attributes:       len(spec.Attrs),
		Pairs:            pairsN,
		KeyBits:          keyBits,
		CalibrationPairs: calibPairs,
		CostMsPerPair:    float64(cost.Microseconds()) / 1000,
	}

	for _, workers := range []int{1, 2, 4} {
		// Chunks small enough that every worker stays busy, large enough
		// that dispatch overhead stays negligible next to the crypto.
		chunk := pairsN / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
		if rep.ChunkPairs == 0 {
			rep.ChunkPairs = chunk
		}
		cell, err := distPerfFleet(spec, alice, bob, pairs, baseline, workers, chunk, cost)
		if err != nil {
			return nil, nil, err
		}
		rep.Fleets = append(rep.Fleets, *cell)
	}
	base := rep.Fleets[0].Rate
	for i := range rep.Fleets {
		if base > 0 {
			rep.Fleets[i].Speedup = rep.Fleets[i].Rate / base
			rep.Fleets[i].Efficiency = rep.Fleets[i].Speedup / float64(rep.Fleets[i].Workers)
		}
		switch rep.Fleets[i].Workers {
		case 2:
			rep.Speedup2 = rep.Fleets[i].Speedup
		case 4:
			rep.Speedup4 = rep.Fleets[i].Speedup
		}
	}

	t := &Table{
		ID: "distributed",
		Title: fmt.Sprintf("distributed SMC fleet scaling (%d pairs, modeled %.1fms/pair from %d-bit serial run, GOMAXPROCS=%d)",
			pairsN, rep.CostMsPerPair, keyBits, rep.GOMAXPROCS),
		Columns: []string{"workers", "chunks", "seconds", "comparisons/sec", "speedup", "efficiency"},
	}
	for _, c := range rep.Fleets {
		t.AddRow(fmt.Sprintf("%d", c.Workers), fmt.Sprintf("%d", c.Chunks), fmt.Sprintf("%.3f", c.Seconds),
			fmt.Sprintf("%.1f", c.Rate), fmt.Sprintf("%.2f", c.Speedup), fmt.Sprintf("%.2f", c.Efficiency))
	}
	return rep, t, nil
}

// distPerfFleet runs one fleet-size cell: spin workers over in-process
// pipes, stripe the batch, check verdicts, and time it.
func distPerfFleet(spec *smc.Spec, alice, bob [][]int64, pairs [][2]int, baseline []bool, workers, chunk int, cost time.Duration) (*DistPerfFleet, error) {
	pool := distrib.NewPool(distrib.PoolOptions{HeartbeatTimeout: 30 * time.Second})
	defer pool.Close()
	for i := 0; i < workers; i++ {
		coord, side := net.Pipe()
		name := fmt.Sprintf("w%d", i+1)
		go distrib.ServeWorker(side, distrib.WorkerOptions{Name: name})
		go func() {
			if err := pool.AddConn(coord); err != nil {
				coord.Close()
			}
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.WaitWorkers(ctx, workers); err != nil {
		return nil, fmt.Errorf("distperf: %d-worker fleet: %w", workers, err)
	}

	cmp, err := pool.NewComparator(spec, alice, bob, distrib.JobConfig{
		Job:         fmt.Sprintf("distperf-w%d", workers),
		Engine:      distrib.EngineModeled,
		ModeledCost: cost,
		ChunkPairs:  chunk,
	})
	if err != nil {
		return nil, fmt.Errorf("distperf: %d-worker comparator: %w", workers, err)
	}
	defer cmp.Close()

	start := time.Now()
	verdicts, err := cmp.CompareBatch(pairs)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return nil, fmt.Errorf("distperf: %d-worker batch: %w", workers, err)
	}
	for k := range pairs {
		if verdicts[k] != baseline[k] {
			return nil, fmt.Errorf("distperf: %d-worker verdict mismatch on pair %v", workers, pairs[k])
		}
	}
	cell := &DistPerfFleet{
		Workers: workers,
		Chunks:  (len(pairs) + chunk - 1) / chunk,
		Seconds: elapsed,
	}
	if elapsed > 0 {
		cell.Rate = float64(len(pairs)) / elapsed
	}
	return cell, nil
}
