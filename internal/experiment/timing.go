package experiment

import (
	"fmt"
	"time"

	"pprl/internal/core"
	"pprl/internal/metrics"
	"pprl/internal/smc"
)

// paperPerAttribute is the paper's reported cost of one secure continuous-
// attribute comparison: 0.43 s with 1024-bit Paillier on a 2.8 GHz PC
// (Section VI).
const paperPerAttribute = 430 * time.Millisecond

// Timing reproduces the paper's in-text cost measurements: per-stage
// wall-clock times of the non-cryptographic pipeline, the measured cost of
// one real 1024-bit secure comparison on this machine, and the total-cost
// estimates under the invocation cost model — next to the paper's own
// 2008 figures. keyBits is the Paillier size to measure (the paper's
// 1024); smcSamples secure comparisons are averaged.
func Timing(opts Options, keyBits, smcSamples int) (*Table, error) {
	w := NewWorkload(opts)
	cfg := w.baseConfig()
	res, err := core.Link(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, cfg)
	if err != nil {
		return nil, fmt.Errorf("timing: %w", err)
	}

	// Measure a real secure comparison of one record pair over the
	// default five-attribute spec.
	spec := &smc.Spec{Scale: 1, Attrs: []smc.AttrSpec{
		{Mode: smc.ModeThreshold, T: 10},
		{Mode: smc.ModeEquality},
		{Mode: smc.ModeEquality},
		{Mode: smc.ModeEquality},
		{Mode: smc.ModeEquality},
	}}
	cmp, err := smc.NewLocalSecure(spec, [][]int64{{40, 1, 2, 3, 4}}, [][]int64{{41, 1, 2, 3, 4}}, keyBits)
	if err != nil {
		return nil, fmt.Errorf("timing: secure comparator: %w", err)
	}
	defer cmp.Close()
	start := time.Now()
	for i := 0; i < smcSamples; i++ {
		if _, err := cmp.Compare(0, 0); err != nil {
			return nil, fmt.Errorf("timing: secure compare: %w", err)
		}
	}
	perInvocation := time.Since(start) / time.Duration(smcSamples)
	bytesPer := cmp.BytesTransferred() / cmp.Invocations()

	local := metrics.CostModel{PerInvocation: perInvocation, BytesPerInvocation: bytesPer}
	// The paper's figure is per continuous attribute; a five-attribute
	// record comparison costs roughly 5× that on its hardware.
	paper := metrics.CostModel{PerInvocation: 5 * paperPerAttribute}

	t := &Table{
		ID:      "timing",
		Title:   fmt.Sprintf("Stage costs (workload %d×%d pairs, %d-bit keys; paper figures from §VI)", w.Alice.Len(), w.Bob.Len(), keyBits),
		Columns: []string{"stage", "measured", "paper (2008 hw)"},
	}
	t.AddRow("anonymize (Alice)", res.Timings.AnonymizeAlice.Round(time.Millisecond).String(), "2.02 s")
	t.AddRow("anonymize (Bob)", res.Timings.AnonymizeBob.Round(time.Millisecond).String(), "2.03 s")
	t.AddRow("blocking", res.Timings.Blocking.Round(time.Millisecond).String(), "1.35 s")
	t.AddRow("secure comparison (one record pair)", perInvocation.Round(time.Microsecond).String(), "≈ 2.15 s (5 × 0.43 s/attr)")
	t.AddRow("secure comparison wire bytes", fmt.Sprintf("%d B", bytesPer), "n/a")
	t.AddRow(fmt.Sprintf("SMC step at default allowance (%d invocations)", res.Invocations),
		local.Time(res.Invocations).Round(time.Millisecond).String(),
		paper.Time(res.Invocations).Round(time.Second).String())
	t.AddRow("SMC step for full recall, no blocking",
		local.Time(res.Block.TotalPairs()).Round(time.Second).String(),
		paper.Time(res.Block.TotalPairs()).Round(time.Hour).String())
	t.AddRow("SMC step for full recall, with blocking",
		local.Time(res.Block.UnknownPairs).Round(time.Second).String(),
		paper.Time(res.Block.UnknownPairs).Round(time.Hour).String())
	return t, nil
}
