package experiment

import (
	"fmt"
	"math/rand"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/match"
)

// Options scales and seeds the experiment suite. Zero fields take the
// defaults below; the paper's full scale is Records = 30162 (every
// complete Adult record, yielding two 20,108-record relations).
type Options struct {
	// Records is the size of the synthetic Adult sample that is split
	// into the two overlapping relations (each gets 2/3 of it).
	Records int
	// Seed drives generation and the overlap split.
	Seed int64

	// K is the default anonymity requirement (paper: 32).
	K int
	// Theta is the default matching threshold (paper: 0.05).
	Theta float64
	// AllowanceFraction is the default SMC budget (paper: 0.015).
	AllowanceFraction float64
	// QIDs is the default quasi-identifier set (paper: first five).
	QIDs []string

	// Ks is the Figure 2/3/4 sweep (paper: 2..1024 doubling).
	Ks []int
	// Thetas is the Figure 5 sweep (paper: 0.01..0.10).
	Thetas []float64
	// QIDCounts is the Figure 6/7 sweep (paper: 3..8).
	QIDCounts []int
	// Allowances is the Figure 8 sweep, as fractions (paper: 0..0.03).
	Allowances []float64
	// Epsilons is the DP benchmark's per-holder budget sweep.
	Epsilons []float64
}

func (o Options) withDefaults() Options {
	if o.Records == 0 {
		o.Records = 1800
	}
	if o.Seed == 0 {
		o.Seed = 20080407 // ICDE 2008
	}
	if o.K == 0 {
		o.K = 32
	}
	if o.Theta == 0 {
		o.Theta = 0.05
	}
	if o.AllowanceFraction == 0 {
		o.AllowanceFraction = 0.015
	}
	if o.QIDs == nil {
		o.QIDs = adult.DefaultQIDs()
	}
	if o.Ks == nil {
		o.Ks = []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	}
	if o.Thetas == nil {
		o.Thetas = []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	}
	if o.QIDCounts == nil {
		o.QIDCounts = []int{3, 4, 5, 6, 7, 8}
	}
	if o.Allowances == nil {
		o.Allowances = []float64{0, 0.005, 0.010, 0.015, 0.020, 0.025, 0.030}
	}
	if o.Epsilons == nil {
		o.Epsilons = []float64{0.25, 0.5, 1, 2, 4, 8}
	}
	return o
}

// Workload is the pair of overlapping relations every experiment links.
type Workload struct {
	Alice, Bob *dataset.Dataset
	Opts       Options
}

// NewWorkload generates the synthetic Adult sample and splits it into
// D1 = d1 ∪ d3 and D2 = d2 ∪ d3, the paper's construction.
func NewWorkload(opts Options) Workload {
	opts = opts.withDefaults()
	full := adult.Generate(opts.Records, opts.Seed)
	alice, bob := dataset.SplitOverlap(full, rand.New(rand.NewSource(opts.Seed+1)))
	return Workload{Alice: alice, Bob: bob, Opts: opts}
}

// capK clamps a sweep value to the relation sizes so scaled-down runs
// stay valid.
func (w Workload) capK(k int) int {
	n := w.Alice.Len()
	if w.Bob.Len() < n {
		n = w.Bob.Len()
	}
	if k > n {
		return n
	}
	return k
}

// baseConfig returns the default engine configuration for this workload.
func (w Workload) baseConfig() core.Config {
	cfg := core.DefaultConfig(w.Opts.QIDs)
	cfg.Theta = w.Opts.Theta
	cfg.AliceK = w.capK(w.Opts.K)
	cfg.BobK = w.capK(w.Opts.K)
	cfg.AllowanceFraction = w.Opts.AllowanceFraction
	return cfg
}

// prepared bundles the cached anonymize+block stages of a sweep point.
type prepared struct {
	block *blocking.Result
	truth []match.Pair
}

// prepare anonymizes both relations under cfg and blocks them, computing
// ground truth for the rule. The result feeds core.LinkPrepared so
// heuristic/allowance sweeps reuse it.
func (w Workload) prepare(cfg core.Config) (*prepared, error) {
	schema := w.Alice.Schema()
	qids, err := schema.Resolve(cfg.QIDs)
	if err != nil {
		return nil, err
	}
	rule, err := blocking.RuleFor(schema, qids, cfg.Theta)
	if err != nil {
		return nil, err
	}
	anonA := cfg.AliceAnonymizer
	if anonA == nil {
		anonA = anonymize.NewMaxEntropy()
	}
	anonB := cfg.BobAnonymizer
	if anonB == nil {
		anonB = anonymize.NewMaxEntropy()
	}
	aView, err := anonA.Anonymize(w.Alice, qids, cfg.AliceK)
	if err != nil {
		return nil, fmt.Errorf("experiment: anonymizing alice: %w", err)
	}
	bView, err := anonB.Anonymize(w.Bob, qids, cfg.BobK)
	if err != nil {
		return nil, fmt.Errorf("experiment: anonymizing bob: %w", err)
	}
	block, err := blocking.Block(aView, bView, rule)
	if err != nil {
		return nil, err
	}
	truth, err := match.TruePairs(w.Alice, w.Bob, qids, rule)
	if err != nil {
		return nil, err
	}
	return &prepared{block: block, truth: truth}, nil
}

// recall finishes a prepared run under cfg and returns recall against the
// prepared ground truth.
func (w Workload) recall(p *prepared, cfg core.Config) (float64, error) {
	res, err := core.LinkPrepared(core.Holder{Data: w.Alice}, core.Holder{Data: w.Bob}, p.block, cfg)
	if err != nil {
		return 0, err
	}
	return res.Evaluate(p.truth).Recall(), nil
}
