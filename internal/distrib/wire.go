// Package distrib stripes the SMC protocol lanes of a linkage run across
// a fleet of worker processes. A coordinator (Pool) partitions the
// budgeted Unknown-pair list into chunks and dispatches them to
// registered workers; each worker hosts a complete local comparison
// engine over its own copy of the encoded records, so a chunk is
// self-contained and can be reassigned wholesale when a worker dies.
// Verdicts are merged positionally, which keeps the stitched result
// byte-identical to the single-process engine no matter how chunks were
// scheduled — and the crash-resume journal (internal/journal) makes
// reassignment free of double-spending: a verdict is recorded exactly
// once, when its chunk is delivered.
//
// The trust model is unchanged from the single-process engine: verdicts
// are Paillier-key-independent, so each worker generates its own fresh
// key pair and runs the three-party protocol locally (PROTOCOL.md §
// "Distribution"). The coordinator never sees ciphertexts, only the
// boolean verdicts the querying party would learn anyway.
package distrib

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"pprl/internal/smc"
)

// protocolVersion is negotiated in the register/welcome handshake; a
// mismatch is a hard error because the gob message schema below is the
// wire format.
const protocolVersion = 1

// Engine selects the comparison engine each worker builds for a job.
type Engine int

const (
	// EngineOracle runs the plaintext oracle (smc.PlainComparator) on
	// every worker: zero cryptographic cost, used by experiments that
	// charge the paper's invocation-count cost model, and by tests that
	// pin fleet verdicts to the local engine's.
	EngineOracle Engine = iota
	// EngineSecure runs the full three-party Paillier protocol inside
	// each worker, sharded across the worker's lanes.
	EngineSecure
	// EngineModeled runs the oracle but sleeps a calibrated per-pair
	// cost, so fleet scheduling, reassignment, and scaling behave as
	// they would under real cryptographic load without burning CPU on
	// ciphertexts. The calibration source is recorded by the benchmark
	// that uses it.
	EngineModeled
)

func (e Engine) String() string {
	switch e {
	case EngineOracle:
		return "oracle"
	case EngineSecure:
		return "secure"
	case EngineModeled:
		return "modeled"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// msgKind discriminates the coordinator↔worker messages.
type msgKind int

const (
	kindRegister  msgKind = iota + 1 // worker → coordinator: name, lanes
	kindWelcome                      // coordinator → worker: accepted
	kindSetup                        // job parameters
	kindRecords                      // one chunk of a holder's encoded rows
	kindSetupDone                    // all records shipped; build the engine
	kindReady                        // worker's engine is up
	kindChunk                        // compare these pairs
	kindVerdicts                     // chunk results + cumulative stats
	kindHeartbeat                    // worker liveness
	kindTeardown                     // job over; release the engine
	kindError                        // either direction: something failed
)

// message is the single gob-encoded frame type both directions share.
// Unused fields stay zero; gob omits them cheaply.
type message struct {
	Kind  msgKind
	Proto int

	// Registration.
	Name  string
	Lanes int

	// Job setup.
	Job     string
	Engine  Engine
	KeyBits int
	Spec    *smc.Spec
	CostNs  int64 // modeled per-pair cost, nanoseconds

	// Record shipping: rows [Base, Base+len(Rows)) of holder Holder
	// (0 = Alice, 1 = Bob); Total carries both relation sizes in the
	// setup message so the worker can preallocate.
	Holder int
	Base   int
	Rows   [][]int64
	Total  [2]int

	// Chunk dispatch and results. Stats are cumulative per job on the
	// sending worker, so the coordinator keeps only the latest value.
	Chunk    int
	Pairs    [][2]int
	Verdicts []bool
	Bytes    int64
	ResultB  int64
	Decs     int64

	Err string
}

// link wraps a net.Conn with gob framing and a send mutex, so a worker's
// heartbeat goroutine and its reply path (or the coordinator's parallel
// setup senders) can interleave safely. Receiving is single-reader on
// both ends and needs no lock.
type link struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	mu   sync.Mutex
}

func newLink(conn net.Conn) *link {
	return &link{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (l *link) send(m *message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(m)
}

func (l *link) recv() (*message, error) {
	var m message
	if err := l.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (l *link) close() error { return l.conn.Close() }
