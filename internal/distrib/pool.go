package distrib

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pprl/internal/metrics"
	"pprl/internal/smc"
)

// recordShipChunk bounds rows per kindRecords frame, so shipping a large
// holder never builds one giant gob buffer.
const recordShipChunk = 2048

// handshakeTimeout bounds the register/welcome exchange on a new
// connection, so a stray dialer cannot wedge AddConn.
const handshakeTimeout = 10 * time.Second

// PoolOptions configures a coordinator.
type PoolOptions struct {
	// Logger receives correlation-id lifecycle lines
	// (job=… chunk=… worker=…); nil is silent.
	Logger *log.Logger
	// HeartbeatTimeout is how long a worker may go silent before the
	// coordinator declares it dead and reassigns its chunk. ≤ 0 means
	// 30s. Workers beacon every second by default, so the timeout
	// tolerates long GC pauses and slow crypto without false positives.
	HeartbeatTimeout time.Duration
	// ChunksVec/FailuresVec/HeartbeatVec are optional per-worker metric
	// families (label: worker): chunks completed, failures observed, and
	// the unix time of the last heartbeat.
	ChunksVec    *metrics.VarVec
	FailuresVec  *metrics.VarVec
	HeartbeatVec *metrics.VarVec
}

// worker is the coordinator's view of one fleet member.
type worker struct {
	name  string
	lanes int
	link  *link
	// incoming carries non-heartbeat messages from the read loop to
	// whichever coordinator goroutine currently owns this worker (the
	// pool serializes jobs, and within a job each worker serves one
	// chunk at a time, so there is exactly one consumer).
	incoming chan *message
	// dead closes when the read loop exits; lastBeat holds the unix
	// nanos of the most recent message of any kind.
	dead     chan struct{}
	lastBeat atomic.Int64
}

func (w *worker) alive() bool {
	select {
	case <-w.dead:
		return false
	default:
		return true
	}
}

// Pool is the coordinator: it accepts worker registrations (Serve) or
// dials workers (DialWorker), and hands out distributed Comparators that
// stripe comparison chunks across the live fleet. One Pool serves any
// number of sequential jobs; NewComparator serializes them.
type Pool struct {
	opts PoolOptions

	mu      sync.Mutex
	workers map[string]*worker
	seq     int

	jobMu  sync.Mutex
	jobSeq atomic.Int64

	closed    chan struct{}
	closeOnce sync.Once

	lnMu sync.Mutex
	lns  []net.Listener
}

// NewPool builds an empty coordinator.
func NewPool(opts PoolOptions) *Pool {
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 30 * time.Second
	}
	return &Pool{opts: opts, workers: make(map[string]*worker), closed: make(chan struct{})}
}

func (p *Pool) logf(format string, args ...any) {
	if p.opts.Logger != nil {
		p.opts.Logger.Printf(format, args...)
	}
}

// AddConn performs the registration handshake on a fresh connection and
// adds the worker to the fleet. It works for both directions: workers
// that dialed the coordinator and workers the coordinator dialed — the
// worker always speaks first.
func (p *Pool) AddConn(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	l := newLink(conn)
	reg, err := l.recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("distrib: worker handshake: %w", err)
	}
	if reg.Kind != kindRegister {
		conn.Close()
		return fmt.Errorf("distrib: expected registration, got message kind %d", reg.Kind)
	}
	if reg.Proto != protocolVersion {
		l.send(&message{Kind: kindError, Err: fmt.Sprintf("coordinator speaks protocol %d", protocolVersion)})
		conn.Close()
		return fmt.Errorf("distrib: worker speaks protocol %d, coordinator %d", reg.Proto, protocolVersion)
	}
	p.mu.Lock()
	name := reg.Name
	if name == "" {
		p.seq++
		name = fmt.Sprintf("w%d", p.seq)
	}
	for p.workers[name] != nil {
		p.seq++
		name = fmt.Sprintf("%s-%d", reg.Name, p.seq)
	}
	w := &worker{name: name, lanes: reg.Lanes, link: l, incoming: make(chan *message, 8), dead: make(chan struct{})}
	w.lastBeat.Store(time.Now().UnixNano())
	// Registration is the first proof of life; seed the gauge so the
	// worker is visible on /metrics before its first beacon.
	if p.opts.HeartbeatVec != nil {
		p.opts.HeartbeatVec.With(name).Set(time.Now().Unix())
	}
	p.workers[name] = w
	p.mu.Unlock()
	if err := l.send(&message{Kind: kindWelcome, Proto: protocolVersion, Name: name}); err != nil {
		p.remove(w)
		conn.Close()
		return fmt.Errorf("distrib: welcoming worker %s: %w", name, err)
	}
	conn.SetDeadline(time.Time{})
	go p.readLoop(w)
	p.logf("distrib: worker=%s registered lanes=%d addr=%s", name, reg.Lanes, conn.RemoteAddr())
	return nil
}

// readLoop drains one worker's connection: heartbeats refresh liveness,
// everything else is queued for the coordinator goroutine that owns the
// worker. Exit (decode error = connection lost) marks the worker dead
// and removes it from the fleet.
func (p *Pool) readLoop(w *worker) {
	defer func() {
		close(w.dead)
		p.remove(w)
		p.logf("distrib: worker=%s disconnected", w.name)
	}()
	for {
		m, err := w.link.recv()
		if err != nil {
			return
		}
		w.lastBeat.Store(time.Now().UnixNano())
		if m.Kind == kindHeartbeat {
			if p.opts.HeartbeatVec != nil {
				p.opts.HeartbeatVec.With(w.name).Set(time.Now().Unix())
			}
			continue
		}
		select {
		case w.incoming <- m:
		case <-p.closed:
			return
		}
	}
}

func (p *Pool) remove(w *worker) {
	p.mu.Lock()
	if p.workers[w.name] == w {
		delete(p.workers, w.name)
	}
	p.mu.Unlock()
}

// Serve accepts worker registrations on ln until the pool closes. It
// always returns a non-nil error, net/http style; after Close that
// error wraps net.ErrClosed.
func (p *Pool) Serve(ln net.Listener) error {
	p.lnMu.Lock()
	p.lns = append(p.lns, ln)
	p.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return fmt.Errorf("distrib: coordinator closed: %w", net.ErrClosed)
			default:
				return fmt.Errorf("distrib: accept: %w", err)
			}
		}
		go func() {
			if err := p.AddConn(conn); err != nil {
				p.logf("distrib: rejected connection from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// DialWorker connects out to a listening worker and registers it.
func (p *Pool) DialWorker(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("distrib: dialing worker %s: %w", addr, err)
	}
	return p.AddConn(conn)
}

// Workers returns the live fleet's names, sorted.
func (p *Pool) Workers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.workers))
	for n := range p.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WaitWorkers blocks until at least n workers are registered or the
// context expires.
func (p *Pool) WaitWorkers(ctx context.Context, n int) error {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		p.mu.Lock()
		have := len(p.workers)
		p.mu.Unlock()
		if have >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("distrib: %d of %d workers registered: %w", have, n, ctx.Err())
		case <-p.closed:
			return errors.New("distrib: pool closed")
		case <-t.C:
		}
	}
}

// Close shuts the coordinator down: listeners stop accepting and every
// worker connection is dropped (workers exit cleanly on EOF).
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.lnMu.Lock()
		for _, ln := range p.lns {
			ln.Close()
		}
		p.lnMu.Unlock()
		p.mu.Lock()
		for _, w := range p.workers {
			w.link.close()
		}
		p.mu.Unlock()
	})
	return nil
}

// await returns the worker's next queued message, failing when the
// connection drops or the worker goes heartbeat-silent past the timeout.
func (p *Pool) await(w *worker) (*message, error) {
	timeout := p.opts.HeartbeatTimeout
	check := timeout / 4
	if check < 10*time.Millisecond {
		check = 10 * time.Millisecond
	}
	t := time.NewTicker(check)
	defer t.Stop()
	for {
		select {
		case m := <-w.incoming:
			return m, nil
		case <-w.dead:
			return nil, fmt.Errorf("distrib: worker %s connection lost", w.name)
		case <-t.C:
			if silent := time.Since(time.Unix(0, w.lastBeat.Load())); silent > timeout {
				w.link.close()
				return nil, fmt.Errorf("distrib: worker %s heartbeat silent for %v (timeout %v)", w.name, silent.Round(time.Millisecond), timeout)
			}
		}
	}
}

// failWorker drops a worker from the fleet after a mid-job failure.
func (p *Pool) failWorker(w *worker, job string, chunk int, err error) {
	if p.opts.FailuresVec != nil {
		p.opts.FailuresVec.With(w.name).Inc()
	}
	p.logf("distrib: job=%s chunk=%d worker=%s failed: %v (reassigning)", job, chunk, w.name, err)
	w.link.close() // readLoop observes the close, marks dead, removes
}

// JobConfig parameterizes one distributed comparison job.
type JobConfig struct {
	// Job is the correlation id stamped on every log line; empty gets a
	// generated one.
	Job string
	// Engine selects what each worker runs; see the Engine constants.
	Engine Engine
	// KeyBits sizes the Paillier keys for EngineSecure.
	KeyBits int
	// Lanes caps per-worker SMC lanes; 0 keeps each worker's own
	// advertised parallelism.
	Lanes int
	// ModeledCost is the per-pair sleep for EngineModeled.
	ModeledCost time.Duration
	// ChunkPairs is the pairs per dispatched chunk — the reassignment
	// granularity. ≤ 0 means 64.
	ChunkPairs int
}

const defaultChunkPairs = 64

// NewComparator ships both holders' encoded records to every live
// worker, waits for their engines, and returns a Comparator that
// stripes batches across the fleet. It holds the pool's job slot until
// the comparator is closed; concurrent calls queue.
func (p *Pool) NewComparator(spec *smc.Spec, alice, bob [][]int64, cfg JobConfig) (*Comparator, error) {
	p.jobMu.Lock()
	c, err := p.newComparatorLocked(spec, alice, bob, cfg)
	if err != nil {
		p.jobMu.Unlock()
		return nil, err
	}
	return c, nil
}

func (p *Pool) newComparatorLocked(spec *smc.Spec, alice, bob [][]int64, cfg JobConfig) (*Comparator, error) {
	if cfg.Job == "" {
		cfg.Job = fmt.Sprintf("job%d", p.jobSeq.Add(1))
	}
	if cfg.ChunkPairs <= 0 {
		cfg.ChunkPairs = defaultChunkPairs
	}
	p.mu.Lock()
	ws := make([]*worker, 0, len(p.workers))
	for _, w := range p.workers {
		ws = append(ws, w)
	}
	p.mu.Unlock()
	sort.Slice(ws, func(i, j int) bool { return ws[i].name < ws[j].name })
	if len(ws) == 0 {
		return nil, errors.New("distrib: no workers registered")
	}
	p.logf("distrib: job=%s engine=%s shipping %d+%d records to %d workers", cfg.Job, cfg.Engine, len(alice), len(bob), len(ws))
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			errs[wi] = p.setupWorker(w, spec, alice, bob, cfg)
		}(wi, w)
	}
	wg.Wait()
	var live []*worker
	for wi, w := range ws {
		if errs[wi] != nil {
			p.failWorker(w, cfg.Job, -1, errs[wi])
			continue
		}
		live = append(live, w)
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("distrib: job %s: every worker failed setup, first error: %w", cfg.Job, firstErr(errs))
	}
	p.logf("distrib: job=%s ready with %d workers", cfg.Job, len(live))
	return &Comparator{pool: p, cfg: cfg, workers: live, stats: make(map[string]*message)}, nil
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// setupWorker ships one worker everything it needs for the job and
// waits for its engine to come up.
func (p *Pool) setupWorker(w *worker, spec *smc.Spec, alice, bob [][]int64, cfg JobConfig) error {
	setup := &message{
		Kind: kindSetup, Job: cfg.Job, Engine: cfg.Engine, KeyBits: cfg.KeyBits,
		Spec: spec, CostNs: int64(cfg.ModeledCost), Lanes: cfg.Lanes,
		Total: [2]int{len(alice), len(bob)},
	}
	if err := w.link.send(setup); err != nil {
		return fmt.Errorf("sending setup: %w", err)
	}
	for holder, rows := range [2][][]int64{alice, bob} {
		for base := 0; base < len(rows); base += recordShipChunk {
			hi := base + recordShipChunk
			if hi > len(rows) {
				hi = len(rows)
			}
			if err := w.link.send(&message{Kind: kindRecords, Holder: holder, Base: base, Rows: rows[base:hi]}); err != nil {
				return fmt.Errorf("shipping records: %w", err)
			}
		}
	}
	if err := w.link.send(&message{Kind: kindSetupDone, Job: cfg.Job}); err != nil {
		return fmt.Errorf("finishing setup: %w", err)
	}
	for {
		m, err := p.await(w)
		if err != nil {
			return err
		}
		switch m.Kind {
		case kindReady:
			return nil
		case kindError:
			return fmt.Errorf("worker %s: %s", w.name, m.Err)
		default:
			// Stale frame from a previous job; the job lock makes these
			// rare, but a late verdict after a reassignment is harmless.
		}
	}
}

// Factory adapts the pool to the engine's comparator-factory signature
// (core.ComparatorFactory): the workers argument caps per-worker lanes
// when cfg.Lanes does not set its own.
func (p *Pool) Factory(cfg JobConfig) func(alice, bob [][]int64, spec *smc.Spec, workers int) (smc.Comparator, error) {
	return func(alice, bob [][]int64, spec *smc.Spec, workers int) (smc.Comparator, error) {
		c := cfg
		if c.Lanes == 0 {
			c.Lanes = workers
		}
		return p.NewComparator(spec, alice, bob, c)
	}
}

// Comparator stripes comparison batches across the pool's worker fleet.
// It implements smc.Comparator plus the batch and chunk-hint extensions
// the core engine probes for. Like every Comparator in this codebase it
// is driven from one goroutine; the parallelism lives inside
// CompareBatch.
type Comparator struct {
	pool    *Pool
	cfg     JobConfig
	workers []*worker

	chunkSeq    int
	invocations int64
	statsMu     sync.Mutex
	stats       map[string]*message // latest cumulative stats per worker

	closeOnce sync.Once
}

// live filters the job's workers down to those still connected.
func (c *Comparator) live() []*worker {
	var out []*worker
	for _, w := range c.workers {
		if w.alive() {
			out = append(out, w)
		}
	}
	return out
}

// Compare implements smc.Comparator.
func (c *Comparator) Compare(i, j int) (bool, error) {
	v, err := c.CompareBatch([][2]int{{i, j}})
	if err != nil {
		return false, err
	}
	return v[0], nil
}

// chunkJob is one dispatchable slice of a batch.
type chunkJob struct {
	idx    int
	lo, hi int
}

// CompareBatch resolves the batch across the fleet: the batch splits
// into ChunkPairs-sized chunks, live workers drain the chunk queue
// concurrently, and a dead worker's chunk is reassigned to a survivor.
// Verdicts land positionally, so the merged result is byte-identical to
// a single-process run regardless of scheduling. The error case is
// total fleet loss with chunks still outstanding.
func (c *Comparator) CompareBatch(pairs [][2]int) ([]bool, error) {
	out := make([]bool, len(pairs))
	var chunks []chunkJob
	for lo := 0; lo < len(pairs); lo += c.cfg.ChunkPairs {
		hi := lo + c.cfg.ChunkPairs
		if hi > len(pairs) {
			hi = len(pairs)
		}
		chunks = append(chunks, chunkJob{idx: c.chunkSeq, lo: lo, hi: hi})
		c.chunkSeq++
	}
	for len(chunks) > 0 {
		ws := c.live()
		if len(ws) == 0 {
			return nil, fmt.Errorf("distrib: job %s: all workers lost with %d chunks outstanding", c.cfg.Job, len(chunks))
		}
		var (
			qmu   sync.Mutex
			queue = chunks
			retry []chunkJob
			wg    sync.WaitGroup
		)
		pop := func() (chunkJob, bool) {
			qmu.Lock()
			defer qmu.Unlock()
			if len(queue) == 0 {
				return chunkJob{}, false
			}
			ch := queue[0]
			queue = queue[1:]
			return ch, true
		}
		for _, w := range ws {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for {
					ch, ok := pop()
					if !ok {
						return
					}
					if err := c.doChunk(w, ch, pairs, out); err != nil {
						c.pool.failWorker(w, c.cfg.Job, ch.idx, err)
						qmu.Lock()
						retry = append(retry, ch)
						qmu.Unlock()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		// Chunks never popped (every worker died first) join the failed
		// ones for the next round with whatever fleet remains.
		chunks = append(retry, queue...)
	}
	c.invocations += int64(len(pairs))
	return out, nil
}

// doChunk runs one chunk on one worker and merges its verdicts.
func (c *Comparator) doChunk(w *worker, ch chunkJob, pairs [][2]int, out []bool) error {
	sub := pairs[ch.lo:ch.hi]
	if err := w.link.send(&message{Kind: kindChunk, Job: c.cfg.Job, Chunk: ch.idx, Pairs: sub}); err != nil {
		return fmt.Errorf("sending chunk: %w", err)
	}
	for {
		m, err := c.pool.await(w)
		if err != nil {
			return err
		}
		switch m.Kind {
		case kindVerdicts:
			if m.Chunk != ch.idx {
				continue // stale reply from before a reassignment
			}
			if len(m.Verdicts) != len(sub) {
				return fmt.Errorf("worker %s returned %d verdicts for %d pairs", w.name, len(m.Verdicts), len(sub))
			}
			copy(out[ch.lo:ch.hi], m.Verdicts)
			c.statsMu.Lock()
			c.stats[w.name] = m
			c.statsMu.Unlock()
			if c.pool.opts.ChunksVec != nil {
				c.pool.opts.ChunksVec.With(w.name).Inc()
			}
			c.pool.logf("distrib: job=%s chunk=%d worker=%s pairs=%d done", c.cfg.Job, ch.idx, w.name, len(sub))
			return nil
		case kindError:
			return fmt.Errorf("worker %s: %s", w.name, m.Err)
		default:
			continue
		}
	}
}

// ChunkHint tells the core engine how many pairs per batch keep the
// fleet saturated: a few chunks in flight per live worker.
func (c *Comparator) ChunkHint() int {
	n := c.cfg.ChunkPairs * len(c.live()) * 4
	if n > 16384 {
		n = 16384
	}
	return n
}

// Invocations implements smc.Comparator: verdicts delivered, each pair
// counted exactly once no matter how many times a chunk was reassigned
// — the paper's cost unit stays exact under worker churn.
func (c *Comparator) Invocations() int64 { return c.invocations }

// BytesTransferred implements smc.Comparator: the fleet's protocol
// traffic, summing each worker's latest cumulative report.
func (c *Comparator) BytesTransferred() int64 {
	return c.sumStats(func(m *message) int64 { return m.Bytes })
}

// ResultBytes mirrors the secure engines' result-message accounting.
func (c *Comparator) ResultBytes() int64 {
	return c.sumStats(func(m *message) int64 { return m.ResultB })
}

// Decryptions mirrors the secure engines' decryption accounting.
func (c *Comparator) Decryptions() int64 {
	return c.sumStats(func(m *message) int64 { return m.Decs })
}

func (c *Comparator) sumStats(f func(*message) int64) int64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	var total int64
	for _, m := range c.stats {
		total += f(m)
	}
	return total
}

// Close implements smc.Comparator: tears the job down on every worker
// and releases the pool's job slot.
func (c *Comparator) Close() error {
	c.closeOnce.Do(func() {
		for _, w := range c.live() {
			w.link.send(&message{Kind: kindTeardown, Job: c.cfg.Job})
		}
		c.pool.jobMu.Unlock()
	})
	return nil
}
