package distrib

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"time"

	"pprl/internal/smc"
)

// WorkerOptions configures one fleet worker.
type WorkerOptions struct {
	// Name is the worker's advertised identity; the coordinator
	// disambiguates or assigns one if empty or taken.
	Name string
	// Lanes is the worker's SMC parallelism for EngineSecure jobs
	// (sharded comparator lanes). ≤ 0 means 1.
	Lanes int
	// HeartbeatEvery is the liveness beacon cadence; ≤ 0 means 1s.
	HeartbeatEvery time.Duration
	// Logger receives worker lifecycle lines; nil is silent.
	Logger *log.Logger
	// FailAfterChunks, when > 0, drops the connection after serving
	// that many chunks — the fault-injection hook the testkit uses to
	// kill a worker at a deterministic chunk boundary.
	FailAfterChunks int
}

// ServeWorker runs the worker side of the fleet protocol on conn until
// the coordinator hangs up: register, then serve setup/chunk/teardown
// cycles for any number of jobs. It returns nil on a clean hangup (and
// on an injected fault) so process wrappers can exit 0.
func ServeWorker(conn net.Conn, opts WorkerOptions) error {
	if opts.Lanes <= 0 {
		opts.Lanes = 1
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	logf := func(format string, args ...any) {
		if opts.Logger != nil {
			opts.Logger.Printf(format, args...)
		}
	}
	l := newLink(conn)
	if err := l.send(&message{Kind: kindRegister, Proto: protocolVersion, Name: opts.Name, Lanes: opts.Lanes}); err != nil {
		return fmt.Errorf("distrib: register: %w", err)
	}
	welcome, err := l.recv()
	if err != nil {
		return fmt.Errorf("distrib: awaiting welcome: %w", err)
	}
	if welcome.Kind == kindError {
		return fmt.Errorf("distrib: coordinator rejected registration: %s", welcome.Err)
	}
	if welcome.Kind != kindWelcome {
		return fmt.Errorf("distrib: expected welcome, got message kind %d", welcome.Kind)
	}
	if welcome.Proto != protocolVersion {
		return fmt.Errorf("distrib: coordinator speaks protocol %d, this worker %d", welcome.Proto, protocolVersion)
	}
	name := welcome.Name // the coordinator may have renamed us
	logf("distrib-worker: registered as worker=%s lanes=%d", name, opts.Lanes)

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(opts.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := l.send(&message{Kind: kindHeartbeat}); err != nil {
					return
				}
			}
		}
	}()

	var (
		job    string
		engine Engine
		kBits  int
		lanes  int
		spec   *smc.Spec
		costNs int64
		rows   [2][][]int64
		cmp    smc.Comparator
		served int
	)
	closeEngine := func() {
		if cmp != nil {
			cmp.Close()
			cmp = nil
		}
	}
	defer closeEngine()
	for {
		m, err := l.recv()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("distrib: worker receive: %w", err)
		}
		switch m.Kind {
		case kindSetup:
			closeEngine()
			job, engine, kBits, spec, costNs = m.Job, m.Engine, m.KeyBits, m.Spec, m.CostNs
			lanes = opts.Lanes
			if m.Lanes > 0 && m.Lanes < lanes {
				lanes = m.Lanes
			}
			rows[0] = make([][]int64, m.Total[0])
			rows[1] = make([][]int64, m.Total[1])
		case kindRecords:
			if m.Holder < 0 || m.Holder > 1 || m.Base < 0 || m.Base+len(m.Rows) > len(rows[m.Holder]) {
				l.send(&message{Kind: kindError, Job: job, Err: fmt.Sprintf("record chunk [%d,%d) of holder %d out of range", m.Base, m.Base+len(m.Rows), m.Holder)})
				continue
			}
			copy(rows[m.Holder][m.Base:], m.Rows)
		case kindSetupDone:
			cmp, err = buildEngine(engine, spec, rows[0], rows[1], kBits, lanes)
			if err != nil {
				logf("distrib-worker: job=%s worker=%s engine build failed: %v", job, name, err)
				l.send(&message{Kind: kindError, Job: job, Err: err.Error()})
				continue
			}
			logf("distrib-worker: job=%s worker=%s engine=%s ready (%d×%d records)", job, name, engine, len(rows[0]), len(rows[1]))
			if err := l.send(&message{Kind: kindReady, Job: job}); err != nil {
				return fmt.Errorf("distrib: sending ready: %w", err)
			}
		case kindChunk:
			if cmp == nil {
				l.send(&message{Kind: kindError, Job: job, Chunk: m.Chunk, Err: "chunk dispatched before setup completed"})
				continue
			}
			verdicts, err := compareAll(cmp, m.Pairs)
			if err != nil {
				l.send(&message{Kind: kindError, Job: job, Chunk: m.Chunk, Err: err.Error()})
				continue
			}
			if engine == EngineModeled && costNs > 0 {
				time.Sleep(time.Duration(costNs * int64(len(m.Pairs))))
			}
			reply := &message{Kind: kindVerdicts, Job: job, Chunk: m.Chunk, Verdicts: verdicts, Bytes: cmp.BytesTransferred()}
			if rb, ok := cmp.(interface{ ResultBytes() int64 }); ok {
				reply.ResultB = rb.ResultBytes()
			}
			if dc, ok := cmp.(interface{ Decryptions() int64 }); ok {
				reply.Decs = dc.Decryptions()
			}
			if err := l.send(reply); err != nil {
				return fmt.Errorf("distrib: sending verdicts: %w", err)
			}
			served++
			if opts.FailAfterChunks > 0 && served >= opts.FailAfterChunks {
				logf("distrib-worker: job=%s worker=%s injected fault after %d chunks", job, name, served)
				conn.Close()
				return nil
			}
		case kindTeardown:
			logf("distrib-worker: job=%s worker=%s teardown", job, name)
			closeEngine()
		case kindHeartbeat:
			// Coordinator pings are legal but unused today.
		default:
			l.send(&message{Kind: kindError, Job: job, Err: fmt.Sprintf("unexpected message kind %d", m.Kind)})
		}
	}
}

// buildEngine constructs the job's comparison engine from shipped state.
func buildEngine(engine Engine, spec *smc.Spec, alice, bob [][]int64, keyBits, lanes int) (smc.Comparator, error) {
	if spec == nil {
		return nil, errors.New("distrib: setup carried no spec")
	}
	switch engine {
	case EngineOracle, EngineModeled:
		return smc.NewPlainComparator(spec, alice, bob), nil
	case EngineSecure:
		if lanes > 1 {
			return smc.NewLocalSecureSharded(spec, alice, bob, keyBits, lanes)
		}
		return smc.NewLocalSecure(spec, alice, bob, keyBits)
	default:
		return nil, fmt.Errorf("distrib: unknown engine %d", int(engine))
	}
}

// compareAll resolves a chunk through the engine's batch path when it
// has one, per-pair calls otherwise.
func compareAll(cmp smc.Comparator, pairs [][2]int) ([]bool, error) {
	if b, ok := cmp.(interface {
		CompareBatch([][2]int) ([]bool, error)
	}); ok {
		return b.CompareBatch(pairs)
	}
	out := make([]bool, len(pairs))
	for x, p := range pairs {
		v, err := cmp.Compare(p[0], p[1])
		if err != nil {
			return nil, err
		}
		out[x] = v
	}
	return out, nil
}
