package distrib

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"pprl/internal/metrics"
	"pprl/internal/smc"
)

// testSpec is a two-attribute classifier: an equality test and a squared
// threshold, enough to exercise both verdict outcomes.
func testSpec() *smc.Spec {
	return &smc.Spec{
		Scale: 1,
		Attrs: []smc.AttrSpec{
			{Mode: smc.ModeEquality},
			{Mode: smc.ModeThreshold, T: 9},
		},
	}
}

// testRecords builds n deterministic pseudo-random encoded records.
func testRecords(n int, seed int64) [][]int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int64, n)
	for i := range out {
		out[i] = []int64{int64(rng.Intn(4)), int64(rng.Intn(12))}
	}
	return out
}

// allPairs enumerates the full cross product.
func allPairs(na, nb int) [][2]int {
	out := make([][2]int, 0, na*nb)
	for i := 0; i < na; i++ {
		for j := 0; j < nb; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// startWorker wires one in-process worker into the pool over a pipe and
// returns after registration completes.
func startWorker(t *testing.T, p *Pool, opts WorkerOptions) {
	t.Helper()
	coord, work := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- ServeWorker(work, opts) }()
	t.Cleanup(func() {
		work.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("worker did not exit")
		}
	})
	if err := p.AddConn(coord); err != nil {
		t.Fatalf("AddConn: %v", err)
	}
}

func newTestPool(t *testing.T) *Pool {
	t.Helper()
	p := NewPool(PoolOptions{HeartbeatTimeout: 5 * time.Second})
	t.Cleanup(func() { p.Close() })
	return p
}

// TestFleetMatchesLocalOracle pins a 3-worker oracle fleet's verdicts
// and invocation count to the single-process comparator's.
func TestFleetMatchesLocalOracle(t *testing.T) {
	spec := testSpec()
	alice := testRecords(40, 1)
	bob := testRecords(37, 2)
	pairs := allPairs(len(alice), len(bob))

	local := smc.NewPlainComparator(spec, alice, bob)
	want := make([]bool, len(pairs))
	for x, pr := range pairs {
		v, err := local.Compare(pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		want[x] = v
	}

	p := newTestPool(t)
	for _, name := range []string{"w-a", "w-b", "w-c"} {
		startWorker(t, p, WorkerOptions{Name: name, HeartbeatEvery: 50 * time.Millisecond})
	}
	cmp, err := p.NewComparator(spec, alice, bob, JobConfig{Job: "parity", ChunkPairs: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	got, err := cmp.CompareBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("pair %v: fleet says %v, local oracle %v", pairs[x], got[x], want[x])
		}
	}
	if cmp.Invocations() != local.Invocations() {
		t.Errorf("fleet invocations = %d, local = %d", cmp.Invocations(), local.Invocations())
	}
	if hint := cmp.ChunkHint(); hint <= 0 || hint > 16384 {
		t.Errorf("ChunkHint = %d out of range", hint)
	}
}

// TestWorkerDeathReassignment kills one of two workers after its first
// chunk; the batch still completes, verdict-identical, with the dead
// worker's chunk reassigned to the survivor.
func TestWorkerDeathReassignment(t *testing.T) {
	spec := testSpec()
	alice := testRecords(30, 3)
	bob := testRecords(30, 4)
	pairs := allPairs(len(alice), len(bob))

	reg := metrics.NewRegistry("pprl")
	p := NewPool(PoolOptions{
		HeartbeatTimeout: 5 * time.Second,
		ChunksVec:        reg.CounterVec("worker_chunks_total", "worker", ""),
		FailuresVec:      reg.CounterVec("worker_failures_total", "worker", ""),
	})
	defer p.Close()
	startWorker(t, p, WorkerOptions{Name: "doomed", HeartbeatEvery: 50 * time.Millisecond, FailAfterChunks: 1})
	startWorker(t, p, WorkerOptions{Name: "survivor", HeartbeatEvery: 50 * time.Millisecond})

	cmp, err := p.NewComparator(spec, alice, bob, JobConfig{Job: "churn", ChunkPairs: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	got, err := cmp.CompareBatch(pairs)
	if err != nil {
		t.Fatalf("batch failed despite a surviving worker: %v", err)
	}
	for x, pr := range pairs {
		if got[x] != spec.Matches(alice[pr[0]], bob[pr[1]]) {
			t.Fatalf("pair %v wrong after reassignment", pr)
		}
	}
	if cmp.Invocations() != int64(len(pairs)) {
		t.Errorf("invocations = %d, want %d (reassigned chunks must not double-count)", cmp.Invocations(), len(pairs))
	}
	if ws := p.Workers(); len(ws) != 1 || ws[0] != "survivor" {
		t.Errorf("fleet after death = %v, want [survivor]", ws)
	}
	var text strings.Builder
	reg.WritePrometheus(&text)
	if !strings.Contains(text.String(), `pprl_worker_failures_total{worker="doomed"} 1`) {
		t.Errorf("failure counter missing:\n%s", text.String())
	}
}

// TestAllWorkersDead: when every worker dies mid-batch the comparator
// reports the outstanding chunks instead of hanging.
func TestAllWorkersDead(t *testing.T) {
	spec := testSpec()
	alice := testRecords(20, 5)
	bob := testRecords(20, 6)
	p := newTestPool(t)
	startWorker(t, p, WorkerOptions{Name: "w1", HeartbeatEvery: 50 * time.Millisecond, FailAfterChunks: 1})
	cmp, err := p.NewComparator(spec, alice, bob, JobConfig{Job: "doom", ChunkPairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	_, err = cmp.CompareBatch(allPairs(20, 20))
	if err == nil || !strings.Contains(err.Error(), "outstanding") {
		t.Fatalf("total fleet loss returned %v, want outstanding-chunks error", err)
	}
}

// TestSequentialJobsReuseFleet runs two jobs through one pool; teardown
// and re-setup must leave the workers reusable.
func TestSequentialJobsReuseFleet(t *testing.T) {
	spec := testSpec()
	p := newTestPool(t)
	startWorker(t, p, WorkerOptions{Name: "w1", HeartbeatEvery: 50 * time.Millisecond})
	startWorker(t, p, WorkerOptions{Name: "w2", HeartbeatEvery: 50 * time.Millisecond})
	for round := 0; round < 2; round++ {
		alice := testRecords(15, int64(10+round))
		bob := testRecords(15, int64(20+round))
		pairs := allPairs(15, 15)
		cmp, err := p.NewComparator(spec, alice, bob, JobConfig{ChunkPairs: 16})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, err := cmp.CompareBatch(pairs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for x, pr := range pairs {
			if got[x] != spec.Matches(alice[pr[0]], bob[pr[1]]) {
				t.Fatalf("round %d pair %v wrong", round, pr)
			}
		}
		if err := cmp.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRegistrationNamesAndWait: duplicate names are disambiguated,
// WaitWorkers unblocks at the threshold, and anonymous workers get
// generated names.
func TestRegistrationNamesAndWait(t *testing.T) {
	p := newTestPool(t)
	startWorker(t, p, WorkerOptions{Name: "dup", HeartbeatEvery: 50 * time.Millisecond})
	startWorker(t, p, WorkerOptions{Name: "dup", HeartbeatEvery: 50 * time.Millisecond})
	startWorker(t, p, WorkerOptions{HeartbeatEvery: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.WaitWorkers(ctx, 3); err != nil {
		t.Fatal(err)
	}
	ws := p.Workers()
	if len(ws) != 3 {
		t.Fatalf("Workers() = %v, want 3 entries", ws)
	}
	seen := map[string]bool{}
	for _, n := range ws {
		if n == "" || seen[n] {
			t.Fatalf("Workers() = %v: empty or duplicate name", ws)
		}
		seen[n] = true
	}
	if !seen["dup"] {
		t.Errorf("first registrant lost its name: %v", ws)
	}
}

// TestSecureEngineFleet runs the real three-party Paillier protocol
// inside each worker at a tiny key size and pins verdicts to the oracle.
func TestSecureEngineFleet(t *testing.T) {
	spec := testSpec()
	alice := testRecords(6, 7)
	bob := testRecords(6, 8)
	pairs := allPairs(6, 6)
	p := newTestPool(t)
	startWorker(t, p, WorkerOptions{Name: "s1", Lanes: 2, HeartbeatEvery: 50 * time.Millisecond})
	startWorker(t, p, WorkerOptions{Name: "s2", HeartbeatEvery: 50 * time.Millisecond})
	cmp, err := p.NewComparator(spec, alice, bob, JobConfig{Job: "secure", Engine: EngineSecure, KeyBits: 64, ChunkPairs: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	got, err := cmp.CompareBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for x, pr := range pairs {
		if got[x] != spec.Matches(alice[pr[0]], bob[pr[1]]) {
			t.Fatalf("secure fleet pair %v wrong", pr)
		}
	}
	if cmp.BytesTransferred() <= 0 {
		t.Error("secure fleet reported zero protocol traffic")
	}
	if cmp.Decryptions() <= 0 {
		t.Error("secure fleet reported zero decryptions")
	}
}

// TestDialWorker exercises the dial-out direction over real TCP.
func TestDialWorker(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ServeWorker(conn, WorkerOptions{Name: "tcp-w", HeartbeatEvery: 50 * time.Millisecond})
	}()
	p := newTestPool(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.DialWorker(ctx, ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if ws := p.Workers(); len(ws) != 1 || ws[0] != "tcp-w" {
		t.Fatalf("Workers() = %v", ws)
	}
}

// TestModeledEngineSleeps: the modeled engine charges the calibrated
// per-pair cost in wall time.
func TestModeledEngineSleeps(t *testing.T) {
	spec := testSpec()
	alice := testRecords(10, 9)
	bob := testRecords(10, 10)
	pairs := allPairs(10, 10)
	p := newTestPool(t)
	startWorker(t, p, WorkerOptions{Name: "m1", HeartbeatEvery: 50 * time.Millisecond})
	cost := 200 * time.Microsecond
	cmp, err := p.NewComparator(spec, alice, bob, JobConfig{Engine: EngineModeled, ModeledCost: cost, ChunkPairs: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	start := time.Now()
	got, err := cmp.CompareBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Duration(len(pairs))*cost {
		t.Errorf("modeled batch took %v, want ≥ %v", elapsed, time.Duration(len(pairs))*cost)
	}
	for x, pr := range pairs {
		if got[x] != spec.Matches(alice[pr[0]], bob[pr[1]]) {
			t.Fatalf("modeled pair %v wrong", pr)
		}
	}
}
