package journal

import (
	"path/filepath"
	"testing"
)

// TestTierRecordSeparation journals an interleaved mix of tier-labeled
// and purchased verdicts and checks that replay keeps the two streams
// apart: Begin hands a resumed engine only the purchased verdicts (the
// ones that consumed allowance), while the tier labels stay visible to
// auditors through Recovered.TierVerdicts.
func TestTierRecordSeparation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	m := testManifest()
	w, err := Create(path, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(m); err != nil {
		t.Fatal(err)
	}
	// The engine's real write order: the tier pass first, then purchases.
	tier := []Verdict{{I: 1, J: 2, Matched: true}, {I: 3, J: 4, Matched: false}, {I: 5, J: 6, Matched: true}}
	for _, v := range tier {
		if err := w.RecordTier(int(v.I), int(v.J), v.Matched); err != nil {
			t.Fatal(err)
		}
	}
	bought := someVerdicts(4)
	for _, v := range bought {
		if err := w.Record(int(v.I), int(v.J), v.Matched); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Verdicts) != len(bought) {
		t.Fatalf("replayed %d purchased verdicts, wrote %d", len(rec.Verdicts), len(bought))
	}
	for i, v := range bought {
		if rec.Verdicts[i] != v {
			t.Errorf("purchased verdict %d: got %+v, want %+v", i, rec.Verdicts[i], v)
		}
	}
	if len(rec.TierVerdicts) != len(tier) {
		t.Fatalf("replayed %d tier verdicts, wrote %d", len(rec.TierVerdicts), len(tier))
	}
	for i, v := range tier {
		if rec.TierVerdicts[i] != v {
			t.Errorf("tier verdict %d: got %+v, want %+v", i, rec.TierVerdicts[i], v)
		}
	}

	// A resumed writer must replay only the purchased stream.
	rw, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := rw.Begin(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != len(bought) {
		t.Fatalf("resumed Begin returned %d verdicts, want only the %d purchased", len(prior), len(bought))
	}
	// A resumed run re-records its (recomputed) tier labels; the journal
	// is append-only, so both generations coexist on disk.
	if err := rw.RecordTier(7, 8, false); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.TierVerdicts) != len(tier)+1 || len(rec2.Verdicts) != len(bought) {
		t.Errorf("after resume: %d tier / %d purchased, want %d / %d",
			len(rec2.TierVerdicts), len(rec2.Verdicts), len(tier)+1, len(bought))
	}
}
