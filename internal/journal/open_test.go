package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func openManifest() Manifest {
	return Manifest{Allowance: 10, Heuristic: "minAvgFirst", TotalPairs: 100, UnknownPairs: 40}
}

// TestOpenCreatesFresh: no file → a fresh journal, not resumed.
func TestOpenCreatesFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, resumed, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Error("fresh journal reported as resumed")
	}
	if _, err := w.Begin(openManifest()); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenResumesExisting: a closed journal reopens as resumed, and
// Begin replays the recorded verdicts.
func TestOpenResumesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(openManifest()); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(3, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, resumed, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !resumed {
		t.Fatal("existing journal not resumed")
	}
	verdicts, err := w2.Begin(openManifest())
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 1 || verdicts[0] != (Verdict{I: 3, J: 4, Matched: false}) {
		t.Errorf("replayed verdicts = %v", verdicts)
	}
}

// TestOpenRecreatesManifestlessFile: a journal whose process died before
// the manifest became durable holds nothing; Open starts over instead of
// refusing forever.
func TestOpenRecreatesManifestlessFile(t *testing.T) {
	for name, contents := range map[string][]byte{
		"empty":       {},
		"torn-magic":  magic[:5],
		"header-only": append(append([]byte{}, magic[:]...), 1, 0),
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			if err := os.WriteFile(path, contents, 0o644); err != nil {
				t.Fatal(err)
			}
			w, resumed, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("Open should recreate a manifest-less journal: %v", err)
			}
			defer w.Close()
			if resumed {
				t.Error("manifest-less journal reported as resumed")
			}
			if _, err := w.Begin(openManifest()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenRefusesForeignFile: a file that is not a torn pprl journal is
// never deleted or overwritten.
func TestOpenRefusesForeignFile(t *testing.T) {
	for name, contents := range map[string][]byte{
		"short-foreign": []byte("hi"),
		"long-foreign":  bytes.Repeat([]byte("x"), 64),
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			if err := os.WriteFile(path, contents, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Open(path, Options{}); err == nil {
				t.Fatal("Open accepted a foreign file")
			}
			got, err := os.ReadFile(path)
			if err != nil || !bytes.Equal(got, contents) {
				t.Fatalf("foreign file was modified: %v", err)
			}
		})
	}
}

// TestResumeStillRefusesManifestless: the explicit-resume path keeps its
// strict behavior; only Open downgrades the missing manifest to a fresh
// start.
func TestResumeStillRefusesManifestless(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	hdr := append(append([]byte{}, magic[:]...), 1, 0)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Resume(path, Options{})
	if !errors.Is(err, ErrNoManifest) {
		t.Fatalf("Resume returned %v, want ErrNoManifest", err)
	}
}
