package journal

import (
	"encoding/binary"
	"fmt"
)

// Incremental checkpoint records. An incremental run's journal interleaves
// the verdict stream with batch frames: a recBatch mark opens one append
// batch (identifying which side grew, by how much, and the digest of the
// appended records), the batch's purchased and tier verdicts follow, and a
// recBatchCommit seals it. The commit is the delta-exposure barrier — an
// engine only releases a batch's Match deltas after the commit record is
// durable, so a crash anywhere before it re-processes the batch (replaying
// the journaled verdict prefix at zero allowance cost) and a crash after
// it replays the batch wholesale without re-emitting a single delta.
// The format version is unchanged: v1 journals written by the frozen-run
// engines simply contain no batch records.
const (
	recBatch       byte = 4
	recBatchCommit byte = 5
)

const (
	batchMarkPayloadLen   = 1 + 4 + 1 + 4 + 32 // type, batch, side, records, digest
	batchCommitPayloadLen = 1 + 4 + 4 + 8      // type, batch, deltas, spent
)

// BatchMark opens one append batch's verdict frame.
type BatchMark struct {
	// Batch is the 0-based global batch index; marks must appear densely
	// in order, which replay enforces.
	Batch uint32
	// Side is the holder that grew: 0 = alice, 1 = bob (dedup runs always
	// write 0).
	Side uint8
	// Records is how many records the batch appended.
	Records uint32
	// Digest is the watermark: a hash of the appended records, so resume
	// can refuse to replay verdicts against a batch file that changed.
	Digest [32]byte
}

// BatchCommit seals a batch: its deltas may now be released.
type BatchCommit struct {
	Batch uint32
	// Deltas is how many new Match pairs the batch emitted.
	Deltas uint32
	// Spent is the allowance the batch consumed (unit purchases plus any
	// DP dummy share), excluding replayed verdicts.
	Spent int64
}

// BatchSink is the journal interface incremental runs record through:
// the frozen-run Sink plus the batch frame records.
type BatchSink interface {
	Sink
	RecordBatch(m BatchMark) error
	RecordBatchCommit(c BatchCommit) error
}

// RecordBatch implements BatchSink: appends a batch mark opening a new
// verdict frame.
func (w *Writer) RecordBatch(m BatchMark) error {
	if !w.began {
		return fmt.Errorf("journal: RecordBatch before Begin")
	}
	var payload [batchMarkPayloadLen]byte
	payload[0] = recBatch
	binary.LittleEndian.PutUint32(payload[1:5], m.Batch)
	payload[5] = m.Side
	binary.LittleEndian.PutUint32(payload[6:10], m.Records)
	copy(payload[10:42], m.Digest[:])
	if err := w.appendRecord(payload[:]); err != nil {
		return err
	}
	w.unsynced++
	if w.unsynced >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// RecordBatchCommit implements BatchSink: appends the commit record and
// syncs. The sync is the point of the record — a batch's deltas are only
// exposed once the commit is durable, so this call returning nil is the
// engine's license to release them.
func (w *Writer) RecordBatchCommit(c BatchCommit) error {
	if !w.began {
		return fmt.Errorf("journal: RecordBatchCommit before Begin")
	}
	var payload [batchCommitPayloadLen]byte
	payload[0] = recBatchCommit
	binary.LittleEndian.PutUint32(payload[1:5], c.Batch)
	binary.LittleEndian.PutUint32(payload[5:9], c.Deltas)
	binary.LittleEndian.PutUint64(payload[9:17], uint64(c.Spent))
	if err := w.appendRecord(payload[:]); err != nil {
		return err
	}
	return w.Sync()
}

// Recovered exposes the state replayed when the writer was opened with
// Resume (nil for a fresh journal). Incremental engines read the batch
// frames from it; the frozen-run engines keep using Begin's verdict list.
func (w *Writer) Recovered() *Recovered { return w.recovered }

// BatchFrame is one replayed append batch: its mark, the verdicts
// journaled inside it, and whether its commit record made it to disk.
type BatchFrame struct {
	Mark BatchMark
	// Verdicts and TierVerdicts are the batch's journaled resolutions, in
	// resolution order.
	Verdicts     []Verdict
	TierVerdicts []Verdict
	// Committed reports whether the batch's commit record is on disk; at
	// most the last frame of a journal is uncommitted.
	Committed bool
	Commit    BatchCommit
}

func decodeBatchMark(payload []byte) (BatchMark, error) {
	var m BatchMark
	if len(payload) != batchMarkPayloadLen {
		return m, fmt.Errorf("journal: batch record has %d payload bytes, want %d", len(payload), batchMarkPayloadLen)
	}
	m.Batch = binary.LittleEndian.Uint32(payload[1:5])
	m.Side = payload[5]
	m.Records = binary.LittleEndian.Uint32(payload[6:10])
	copy(m.Digest[:], payload[10:42])
	return m, nil
}

func decodeBatchCommit(payload []byte) (BatchCommit, error) {
	var c BatchCommit
	if len(payload) != batchCommitPayloadLen {
		return c, fmt.Errorf("journal: batch commit record has %d payload bytes, want %d", len(payload), batchCommitPayloadLen)
	}
	c.Batch = binary.LittleEndian.Uint32(payload[1:5])
	c.Deltas = binary.LittleEndian.Uint32(payload[5:9])
	c.Spent = int64(binary.LittleEndian.Uint64(payload[9:17]))
	return c, nil
}
