package journal

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenFormat pins the v1 binary layout — magic, version, frame
// framing, manifest field order, verdict encoding — to a golden hex dump,
// so any byte-level drift (which would silently orphan every journal
// written by released builds) breaks CI instead. Mirrors the BENCH_smc
// golden-schema test. Regenerate deliberately, with a version bump, via
// PPRL_UPDATE_GOLDEN=1 go test ./internal/journal -run TestGoldenFormat.
func TestGoldenFormat(t *testing.T) {
	var m Manifest
	for i := range m.ConfigDigest {
		m.ConfigDigest[i] = byte(i)
		m.InputsDigest[i] = byte(255 - i)
	}
	m.TotalPairs = 1_000_000
	m.UnknownPairs = 31_337
	m.Allowance = 15_000
	m.Seed = 42
	m.Heuristic = "minAvgFirst"
	verdicts := []Verdict{
		{I: 0, J: 0, Matched: true},
		{I: 7, J: 4095, Matched: false},
		{I: 4294967295, J: 1, Matched: true},
	}

	path := filepath.Join(t.TempDir(), "golden.wal")
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(m); err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if err := w.Record(int(v.I), int(v.J), v.Matched); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := hexDump(raw)

	goldenPath := filepath.Join("testdata", "golden_v1.hex")
	if os.Getenv("PPRL_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated — this is a format change; bump formatVersion if released journals exist")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("journal v1 binary format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The golden bytes must also replay: a reader regression that still
	// round-trips its own writes would pass the dump comparison alone.
	goldenBytes, err := hex.DecodeString(strings.Join(strings.Fields(string(want)), ""))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := parse(goldenBytes)
	if err != nil {
		t.Fatalf("golden journal does not replay: %v", err)
	}
	if rec.Manifest != m {
		t.Errorf("golden manifest decoded as %+v", rec.Manifest)
	}
	if len(rec.Verdicts) != len(verdicts) {
		t.Fatalf("golden journal replays %d verdicts, want %d", len(rec.Verdicts), len(verdicts))
	}
	for i, v := range verdicts {
		if rec.Verdicts[i] != v {
			t.Errorf("golden verdict %d decoded as %+v, want %+v", i, rec.Verdicts[i], v)
		}
	}
}

// hexDump renders bytes as 32-hex-digit lines, diff-friendly.
func hexDump(b []byte) string {
	s := hex.EncodeToString(b)
	var sb strings.Builder
	for len(s) > 32 {
		sb.WriteString(s[:32])
		sb.WriteByte('\n')
		s = s[32:]
	}
	sb.WriteString(s)
	sb.WriteByte('\n')
	return sb.String()
}
