package journal

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testManifest returns a manifest with distinguishable field values.
func testManifest() Manifest {
	var m Manifest
	for i := range m.ConfigDigest {
		m.ConfigDigest[i] = byte(i)
		m.InputsDigest[i] = byte(200 - i)
	}
	m.TotalPairs = 9000
	m.UnknownPairs = 420
	m.Allowance = 135
	m.Seed = -7
	m.Heuristic = "minAvgFirst"
	return m
}

// writeRun journals a manifest plus verdicts and closes the file.
func writeRun(t *testing.T, path string, m Manifest, verdicts []Verdict, opts Options) {
	t.Helper()
	w, err := Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prior, err := w.Begin(m); err != nil || prior != nil {
		t.Fatalf("fresh Begin = (%v, %v), want (nil, nil)", prior, err)
	}
	for _, v := range verdicts {
		if err := w.Record(int(v.I), int(v.J), v.Matched); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func someVerdicts(n int) []Verdict {
	out := make([]Verdict, n)
	for i := range out {
		out[i] = Verdict{I: uint32(i * 3), J: uint32(i*5 + 1), Matched: i%3 == 0}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	m := testManifest()
	verdicts := someVerdicts(10)
	writeRun(t, path, m, verdicts, Options{})

	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest != m {
		t.Errorf("manifest round-trip:\ngot  %+v\nwant %+v", rec.Manifest, m)
	}
	if rec.TornBytes != 0 {
		t.Errorf("clean journal reports %d torn bytes", rec.TornBytes)
	}
	if len(rec.Verdicts) != len(verdicts) {
		t.Fatalf("replayed %d verdicts, wrote %d", len(rec.Verdicts), len(verdicts))
	}
	for i, v := range verdicts {
		if rec.Verdicts[i] != v {
			t.Errorf("verdict %d: got %+v, want %+v", i, rec.Verdicts[i], v)
		}
	}
}

func TestResumeAppendsAfterReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	m := testManifest()
	writeRun(t, path, m, someVerdicts(4), Options{SyncEvery: 1})

	w, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prior, err := w.Begin(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 4 {
		t.Fatalf("resumed Begin returned %d verdicts, want 4", len(prior))
	}
	if err := w.Record(99, 100, true); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Verdicts) != 5 {
		t.Fatalf("after resume+append, journal has %d verdicts, want 5", len(rec.Verdicts))
	}
	if got := rec.Verdicts[4]; got != (Verdict{I: 99, J: 100, Matched: true}) {
		t.Errorf("appended verdict = %+v", got)
	}
}

// TestTornTailTruncation cuts a valid journal mid-record at every
// possible tail length and checks that resume recovers the intact prefix
// and physically truncates the torn bytes.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.wal")
	verdicts := someVerdicts(3)
	writeRun(t, ref, testManifest(), verdicts, Options{})
	whole, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := int64(len(whole)) - (verdictPayloadLen + 8) // offset of the final record
	for cut := lastLen + 1; cut < int64(len(whole)); cut++ {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Resume(path, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		prior, err := w.Begin(testManifest())
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(prior) != len(verdicts)-1 {
			t.Fatalf("cut at %d: recovered %d verdicts, want %d", cut, len(prior), len(verdicts)-1)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if fi, _ := os.Stat(path); fi.Size() != lastLen {
			t.Fatalf("cut at %d: torn tail not truncated (size %d, want %d)", cut, fi.Size(), lastLen)
		}
		os.Remove(path)
	}
}

// TestCorruptionTruncatesFromFirstBadFrame garbles a mid-file record:
// everything from the first bad frame on is discarded, even later frames
// that would checksum.
func TestCorruptionTruncatesFromFirstBadFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	writeRun(t, path, testManifest(), someVerdicts(5), Options{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the third verdict record.
	recSize := int64(verdictPayloadLen + 8)
	third := int64(len(data)) - 3*recSize + 5
	data[third] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Verdicts) != 2 {
		t.Errorf("replay past a corrupt frame: got %d verdicts, want 2", len(rec.Verdicts))
	}
	if rec.TornBytes != 3*recSize {
		t.Errorf("TornBytes = %d, want %d", rec.TornBytes, 3*recSize)
	}
}

func TestRefusalPaths(t *testing.T) {
	dir := t.TempDir()
	base := testManifest()
	path := filepath.Join(dir, "run.wal")
	writeRun(t, path, base, someVerdicts(2), Options{})

	resumeWith := func(t *testing.T, cur Manifest) error {
		t.Helper()
		w, err := Resume(path, Options{})
		if err != nil {
			return err
		}
		defer w.Close()
		_, err = w.Begin(cur)
		return err
	}

	t.Run("config digest", func(t *testing.T) {
		cur := base
		cur.ConfigDigest[0] ^= 1
		err := resumeWith(t, cur)
		if err == nil || !strings.Contains(err.Error(), "config digest") {
			t.Errorf("err = %v, want config digest refusal", err)
		}
	})
	t.Run("inputs digest", func(t *testing.T) {
		cur := base
		cur.InputsDigest[0] ^= 1
		err := resumeWith(t, cur)
		if err == nil || !strings.Contains(err.Error(), "inputs digest") {
			t.Errorf("err = %v, want inputs digest refusal", err)
		}
	})
	t.Run("heuristic", func(t *testing.T) {
		cur := base
		cur.Heuristic = "maxLast"
		err := resumeWith(t, cur)
		if err == nil || !strings.Contains(err.Error(), "heuristic") {
			t.Errorf("err = %v, want heuristic refusal", err)
		}
	})
	t.Run("allowance", func(t *testing.T) {
		cur := base
		cur.Allowance++
		err := resumeWith(t, cur)
		if err == nil || !strings.Contains(err.Error(), "allowance") {
			t.Errorf("err = %v, want allowance refusal", err)
		}
	})
	t.Run("newer version", func(t *testing.T) {
		vPath := filepath.Join(dir, "v2.wal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint16(data[8:10], formatVersion+1)
		if err := os.WriteFile(vPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(vPath, Options{}); !errors.Is(err, ErrNewerVersion) {
			t.Errorf("err = %v, want ErrNewerVersion", err)
		}
	})
	t.Run("not a journal", func(t *testing.T) {
		gPath := filepath.Join(dir, "garbage.wal")
		if err := os.WriteFile(gPath, []byte("definitely not a journal"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(gPath, Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Errorf("err = %v, want bad-magic refusal", err)
		}
	})
	t.Run("torn before manifest", func(t *testing.T) {
		tPath := filepath.Join(dir, "headless.wal")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(tPath, data[:headerLen+10], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Resume(tPath, Options{}); err == nil || !strings.Contains(err.Error(), "manifest") {
			t.Errorf("err = %v, want no-manifest refusal", err)
		}
	})
	t.Run("create refuses existing", func(t *testing.T) {
		if _, err := Create(path, Options{}); err == nil || !strings.Contains(err.Error(), "resume") {
			t.Errorf("err = %v, want already-exists refusal pointing at resume", err)
		}
	})
}

func TestSyncEveryBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := Create(path, Options{SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Begin(testManifest()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Record(i, i, false); err != nil {
			t.Fatal(err)
		}
		wantUnsynced := (i + 1) % 4
		if w.unsynced != wantUnsynced {
			t.Fatalf("after record %d: %d unsynced, want %d", i, w.unsynced, wantUnsynced)
		}
	}
}

func TestWriterMisuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Record(1, 2, true); err == nil {
		t.Error("Record before Begin should fail")
	}
	if _, err := w.Begin(testManifest()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(testManifest()); err == nil {
		t.Error("second Begin should fail")
	}
	if err := w.Record(-1, 2, true); err == nil {
		t.Error("negative index should fail")
	}
}

// TestRecordedCountsSessionWrites: Recorded counts verdicts appended by
// this writer only — replayed verdicts from a resumed journal do not
// inflate it.
func TestRecordedCountsSessionWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	m := testManifest()
	w, err := Create(path, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(m); err != nil {
		t.Fatal(err)
	}
	if got := w.Recorded(); got != 0 {
		t.Fatalf("fresh writer Recorded() = %d, want 0", got)
	}
	if err := w.Record(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordTier(3, 4, false); err != nil {
		t.Fatal(err)
	}
	if got := w.Recorded(); got != 2 {
		t.Fatalf("Recorded() = %d after two appends, want 2", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Begin(m); err != nil {
		t.Fatal(err)
	}
	if got := r.Recorded(); got != 0 {
		t.Fatalf("resumed writer Recorded() = %d before any append, want 0", got)
	}
	if err := r.Record(5, 6, true); err != nil {
		t.Fatal(err)
	}
	if got := r.Recorded(); got != 1 {
		t.Fatalf("resumed writer Recorded() = %d, want 1", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
