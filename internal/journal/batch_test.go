package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// writeBatchRun journals two committed batches and one uncommitted tail
// batch, returning the path.
func writeBatchRun(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "inc.wal")
	w, err := Create(path, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(testManifest()); err != nil {
		t.Fatal(err)
	}
	mark := func(b uint32, side uint8, n uint32) BatchMark {
		m := BatchMark{Batch: b, Side: side, Records: n}
		for i := range m.Digest {
			m.Digest[i] = byte(b)*31 + byte(i)
		}
		return m
	}
	// Batch 0: two purchased verdicts, one tier verdict, committed.
	if err := w.RecordBatch(mark(0, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordTier(1, 3, false); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(2, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordBatchCommit(BatchCommit{Batch: 0, Deltas: 1, Spent: 2}); err != nil {
		t.Fatal(err)
	}
	// Batch 1: empty (no uncertain pairs), committed.
	if err := w.RecordBatch(mark(1, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordBatchCommit(BatchCommit{Batch: 1, Deltas: 0, Spent: 0}); err != nil {
		t.Fatal(err)
	}
	// Batch 2: one verdict, crash before commit.
	if err := w.RecordBatch(mark(2, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(7, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBatchFramesRoundTrip(t *testing.T) {
	path := writeBatchRun(t, t.TempDir())
	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 3 {
		t.Fatalf("replayed %d batch frames, want 3", len(rec.Batches))
	}
	b0, b1, b2 := rec.Batches[0], rec.Batches[1], rec.Batches[2]
	if !b0.Committed || b0.Commit.Deltas != 1 || b0.Commit.Spent != 2 {
		t.Fatalf("batch 0 commit = %+v committed=%v", b0.Commit, b0.Committed)
	}
	if len(b0.Verdicts) != 2 || len(b0.TierVerdicts) != 1 {
		t.Fatalf("batch 0 has %d/%d verdicts, want 2/1", len(b0.Verdicts), len(b0.TierVerdicts))
	}
	if b0.Mark.Side != 0 || b0.Mark.Records != 5 || b0.Mark.Digest[1] != 1 {
		t.Fatalf("batch 0 mark = %+v", b0.Mark)
	}
	if !b1.Committed || len(b1.Verdicts) != 0 || b1.Mark.Side != 1 {
		t.Fatalf("batch 1 frame = %+v", b1)
	}
	if b2.Committed {
		t.Fatal("tail batch must be uncommitted")
	}
	if len(b2.Verdicts) != 1 || b2.Verdicts[0] != (Verdict{I: 7, J: 0, Matched: true}) {
		t.Fatalf("tail batch verdicts = %+v", b2.Verdicts)
	}
	// The flat lists still see everything, so frozen-run accounting is
	// untouched by the batch framing.
	if len(rec.Verdicts) != 3 || len(rec.TierVerdicts) != 1 {
		t.Fatalf("flat lists have %d/%d verdicts, want 3/1", len(rec.Verdicts), len(rec.TierVerdicts))
	}
}

// TestBatchResumeAppendsIntoOpenFrame resumes a journal whose tail batch
// is uncommitted and finishes it: the continuation's verdicts land in the
// same frame and the commit seals it.
func TestBatchResumeAppendsIntoOpenFrame(t *testing.T) {
	path := writeBatchRun(t, t.TempDir())
	w, err := Resume(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := w.Recovered(); rec == nil || len(rec.Batches) != 3 {
		t.Fatalf("Recovered() = %+v, want 3 batch frames", w.Recovered())
	}
	if _, err := w.Begin(testManifest()); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(7, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordBatchCommit(BatchCommit{Batch: 2, Deltas: 1, Spent: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	b2 := rec.Batches[2]
	if !b2.Committed || len(b2.Verdicts) != 2 {
		t.Fatalf("resumed tail frame = committed %v with %d verdicts, want true/2", b2.Committed, len(b2.Verdicts))
	}
}

// TestBatchTornCommit cuts the file inside the commit record: the frame
// must come back uncommitted with its verdicts intact, and Resume must
// truncate the torn bytes.
func TestBatchTornCommit(t *testing.T) {
	path := writeBatchRun(t, t.TempDir())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The file ends mid-batch-2 already; cut into batch 0's commit region
	// instead: chop the last 3 bytes to tear the final verdict record.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes == 0 {
		t.Fatal("expected torn bytes")
	}
	if len(rec.Batches) != 3 || rec.Batches[2].Committed || len(rec.Batches[2].Verdicts) != 0 {
		t.Fatalf("torn replay frames = %+v", rec.Batches)
	}
}

// TestBatchOrderingEnforced rejects out-of-order marks and stray commits.
func TestBatchOrderingEnforced(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.wal")
	w, err := Create(path, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Begin(testManifest()); err != nil {
		t.Fatal(err)
	}
	if err := w.RecordBatch(BatchMark{Batch: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Replay(path); err == nil {
		t.Fatal("replay accepted a non-dense batch mark")
	}

	path2 := filepath.Join(dir, "bad2.wal")
	w2, err := Create(path2, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Begin(testManifest()); err != nil {
		t.Fatal(err)
	}
	if err := w2.RecordBatchCommit(BatchCommit{Batch: 0}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	if _, err := Replay(path2); err == nil {
		t.Fatal("replay accepted a commit without an open batch")
	}
}
