package journal

import (
	"errors"
	"fmt"
	"os"
)

// Open starts or continues a job's journal at path, the primitive behind
// the multi-job layout of the linkage service (one journal per job
// directory, opened again on every daemon restart):
//
//   - no file yet → a fresh journal is created (resumed = false);
//   - an intact journal → it is resumed, torn tail truncated, and the
//     engine replays its verdicts (resumed = true);
//   - a file the crash cut short before the manifest became durable →
//     there is nothing to resume and nothing to lose, so the file is
//     recreated fresh (resumed = false).
//
// Every other fault — foreign data, a newer format version, corruption
// inside CRC-valid records — stays a hard error exactly as in Resume:
// those files hold (or claim to hold) purchased verdicts this build must
// not silently discard.
func Open(path string, opts Options) (w *Writer, resumed bool, err error) {
	if _, statErr := os.Stat(path); statErr != nil {
		if !os.IsNotExist(statErr) {
			return nil, false, fmt.Errorf("journal: stat: %w", statErr)
		}
		w, err = Create(path, opts)
		return w, false, err
	}
	w, err = Resume(path, opts)
	if err == nil {
		return w, true, nil
	}
	if !errors.Is(err, ErrNoManifest) {
		return nil, false, err
	}
	// The previous process died before the manifest reached disk: the
	// journal never recorded a verdict, so starting over loses nothing.
	if rmErr := os.Remove(path); rmErr != nil {
		return nil, false, fmt.Errorf("journal: recreating manifest-less journal: %w", rmErr)
	}
	w, err = Create(path, opts)
	return w, false, err
}
