package journal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to the replay parser: it must
// never panic, and whatever it accepts must satisfy the format's
// invariants — current version, a manifest before any verdict, and no
// verdicts from a file whose manifest never made it to disk. The seed
// corpus covers a valid journal and truncations/mutations of it, so the
// fuzzer starts at the interesting boundaries (torn frames, flipped CRC
// bytes) instead of random noise.
func FuzzJournalReplay(f *testing.F) {
	var m Manifest
	m.ConfigDigest[0] = 1
	m.InputsDigest[0] = 2
	m.TotalPairs, m.UnknownPairs, m.Allowance, m.Seed = 100, 10, 5, 3
	m.Heuristic = "minFirst"
	valid := buildImage(m, []Verdict{{I: 1, J: 2, Matched: true}, {I: 3, J: 4}})

	f.Add(valid)
	f.Add(valid[:len(valid)-1])              // torn final verdict
	f.Add(valid[:headerLen])                 // header only
	f.Add(valid[:headerLen+5])               // torn manifest
	f.Add([]byte{})                          // empty
	f.Add([]byte("PPRLWAL\x00\x02\x00"))     // newer version
	f.Add(bytes.Repeat([]byte{0xff}, 64))    // noise
	corrupt := append([]byte(nil), valid...) // CRC-breaking flip
	corrupt[len(corrupt)-3] ^= 0x80
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := parse(data)
		if err != nil {
			if rec != nil {
				t.Fatalf("error %v returned alongside recovered state", err)
			}
			return
		}
		// Accepted input: the invariants the engines rely on must hold.
		if binary.LittleEndian.Uint16(data[8:10]) != formatVersion {
			t.Fatalf("accepted a journal of version %d", binary.LittleEndian.Uint16(data[8:10]))
		}
		if rec.goodOffset+rec.TornBytes != int64(len(data)) {
			t.Fatalf("offset accounting: good %d + torn %d != size %d", rec.goodOffset, rec.TornBytes, len(data))
		}
		if rec.TornBytes < 0 || rec.goodOffset < headerLen {
			t.Fatalf("impossible offsets: good %d, torn %d", rec.goodOffset, rec.TornBytes)
		}
	})
}

// buildImage assembles a journal byte image in memory via the writer's
// own encoders, so corpus entries track the real format.
func buildImage(m Manifest, verdicts []Verdict) []byte {
	var out []byte
	var hdr [headerLen]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersion)
	out = append(out, hdr[:]...)
	frame := func(payload []byte) {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	}
	frame(encodeManifest(m))
	for _, v := range verdicts {
		p := make([]byte, verdictPayloadLen)
		p[0] = recVerdict
		binary.LittleEndian.PutUint32(p[1:5], v.I)
		binary.LittleEndian.PutUint32(p[5:9], v.J)
		if v.Matched {
			p[9] = 1
		}
		frame(p)
	}
	return out
}
