package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Recovered is the durable state replayed from a journal: the run
// manifest and every intact verdict, in the order they were resolved.
type Recovered struct {
	Manifest Manifest
	// Verdicts holds the purchased SMC resolutions — the ones a resumed
	// run replays instead of re-spending allowance on.
	Verdicts []Verdict
	// TierVerdicts holds the tier-labeled resolutions. A resumed engine
	// ignores them (tier labels are deterministic and recomputed fresh,
	// possibly under different thresholds); they exist so auditors can
	// distinguish heuristic labels from exact purchased verdicts.
	TierVerdicts []Verdict
	// Batches holds the incremental batch frames, in append order; empty
	// for frozen-run journals. Verdicts recorded inside a batch frame
	// appear both here and in the flat Verdicts/TierVerdicts lists, so
	// frozen-run resume accounting is unchanged by the record type's
	// existence.
	Batches []BatchFrame
	// TornBytes is how much of the file's tail was cut short mid-write
	// (a crash between write and the record's completion) and therefore
	// discarded; 0 for a cleanly closed journal.
	TornBytes int64

	// goodOffset is the file offset just past the last intact record,
	// where Resume truncates and appends.
	goodOffset int64
}

// Replay reads a journal without modifying it. Structural faults before
// the manifest — wrong magic, a newer format version, a manifest record
// that never made it to disk intact — are errors: there is nothing safe
// to resume. A torn tail after the manifest is not an error; the intact
// prefix is returned and TornBytes reports what was dropped.
func Replay(path string) (*Recovered, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return parse(data)
}

// parse decodes a journal image. Framing faults (short frame, oversized
// length, CRC mismatch) end the replay at the last intact record — in an
// append-only file everything past the first bad frame was written after
// it and is equally suspect. Faults inside a CRC-valid payload, by
// contrast, are hard errors: those bytes are exactly what the writer
// stored, so the file is not a journal this version understands.
func parse(data []byte) (*Recovered, error) {
	if len(data) < headerLen {
		// A crash can cut the header itself short. Only a byte-wise
		// prefix of our own header is recognized as that torn write;
		// anything else short is foreign data, not a journal to discard.
		n := len(data)
		if n > len(magic) {
			n = len(magic)
		}
		if bytes.Equal(data[:n], magic[:n]) {
			return nil, fmt.Errorf("%w: file too short for a journal header (%d bytes)", ErrNoManifest, len(data))
		}
		return nil, fmt.Errorf("journal: file too short for a journal header (%d bytes) and not a torn pprl journal", len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("journal: bad magic: not a pprl run journal")
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != formatVersion {
		if v > formatVersion {
			return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrNewerVersion, v, formatVersion)
		}
		return nil, fmt.Errorf("journal: unsupported format version %d", v)
	}
	rec := &Recovered{goodOffset: headerLen}
	sawManifest := false
	// open is the uncommitted batch frame verdicts currently attach to;
	// -1 outside any frame (frozen-run journals stay there forever).
	open := -1
	off := int64(headerLen)
	total := int64(len(data))
	for off < total {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break // torn tail; truncate here
		}
		switch payload[0] {
		case recManifest:
			if sawManifest {
				return nil, fmt.Errorf("journal: duplicate manifest record at offset %d", off)
			}
			m, err := decodeManifest(payload)
			if err != nil {
				return nil, err
			}
			rec.Manifest = m
			sawManifest = true
		case recVerdict, recTierVerdict:
			if !sawManifest {
				return nil, fmt.Errorf("journal: verdict record before the manifest at offset %d", off)
			}
			if len(payload) != verdictPayloadLen {
				return nil, fmt.Errorf("journal: verdict record has %d payload bytes, want %d", len(payload), verdictPayloadLen)
			}
			v := Verdict{
				I:       binary.LittleEndian.Uint32(payload[1:5]),
				J:       binary.LittleEndian.Uint32(payload[5:9]),
				Matched: payload[9] != 0,
			}
			if payload[0] == recTierVerdict {
				rec.TierVerdicts = append(rec.TierVerdicts, v)
				if open >= 0 {
					rec.Batches[open].TierVerdicts = append(rec.Batches[open].TierVerdicts, v)
				}
			} else {
				rec.Verdicts = append(rec.Verdicts, v)
				if open >= 0 {
					rec.Batches[open].Verdicts = append(rec.Batches[open].Verdicts, v)
				}
			}
		case recBatch:
			if !sawManifest {
				return nil, fmt.Errorf("journal: batch record before the manifest at offset %d", off)
			}
			if open >= 0 {
				return nil, fmt.Errorf("journal: batch %d opened at offset %d while batch %d is uncommitted", len(rec.Batches), off, rec.Batches[open].Mark.Batch)
			}
			m, err := decodeBatchMark(payload)
			if err != nil {
				return nil, err
			}
			if int(m.Batch) != len(rec.Batches) {
				return nil, fmt.Errorf("journal: batch mark %d at offset %d, want %d (marks must be dense and ordered)", m.Batch, off, len(rec.Batches))
			}
			rec.Batches = append(rec.Batches, BatchFrame{Mark: m})
			open = len(rec.Batches) - 1
		case recBatchCommit:
			c, err := decodeBatchCommit(payload)
			if err != nil {
				return nil, err
			}
			if open < 0 {
				return nil, fmt.Errorf("journal: batch commit %d at offset %d without an open batch", c.Batch, off)
			}
			if c.Batch != rec.Batches[open].Mark.Batch {
				return nil, fmt.Errorf("journal: batch commit %d at offset %d closes open batch %d", c.Batch, off, rec.Batches[open].Mark.Batch)
			}
			rec.Batches[open].Committed = true
			rec.Batches[open].Commit = c
			open = -1
		default:
			return nil, fmt.Errorf("journal: unknown record type %d at offset %d", payload[0], off)
		}
		off = next
		rec.goodOffset = next
	}
	rec.TornBytes = total - rec.goodOffset
	if !sawManifest {
		return nil, fmt.Errorf("%w (journal torn %d bytes in); nothing to resume", ErrNoManifest, rec.goodOffset)
	}
	return rec, nil
}

// nextFrame decodes the frame starting at off. ok is false when the
// frame is torn: cut short, implausibly long, or failing its checksum.
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+4 > int64(len(data)) {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	if n == 0 || n > maxPayload {
		return nil, 0, false
	}
	end := off + 4 + n + 4
	if end > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+4 : off+4+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+4+n:end]) {
		return nil, 0, false
	}
	return payload, end, true
}

// decodeManifest parses a CRC-valid manifest payload.
func decodeManifest(payload []byte) (Manifest, error) {
	const fixed = 1 + 32 + 32 + 8*4 + 2
	var m Manifest
	if len(payload) < fixed {
		return m, fmt.Errorf("journal: manifest record has %d payload bytes, want ≥ %d", len(payload), fixed)
	}
	p := payload[1:]
	copy(m.ConfigDigest[:], p[:32])
	copy(m.InputsDigest[:], p[32:64])
	m.TotalPairs = int64(binary.LittleEndian.Uint64(p[64:72]))
	m.UnknownPairs = int64(binary.LittleEndian.Uint64(p[72:80]))
	m.Allowance = int64(binary.LittleEndian.Uint64(p[80:88]))
	m.Seed = int64(binary.LittleEndian.Uint64(p[88:96]))
	nameLen := int(binary.LittleEndian.Uint16(p[96:98]))
	if len(p) != 98+nameLen {
		return m, fmt.Errorf("journal: manifest heuristic name: %d bytes declared, %d present", nameLen, len(p)-98)
	}
	m.Heuristic = string(p[98 : 98+nameLen])
	return m, nil
}
