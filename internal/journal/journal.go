// Package journal implements a durable write-ahead journal for linkage
// runs, so the SMC budget — the dollar cost of the hybrid protocol — is
// never re-spent after a crash. A journal file starts with a manifest
// describing the run (digests of the configuration and the input
// relations, the blocking summary, the resolved allowance, the heuristic
// and its seed) followed by one record per SMC pair verdict, appended in
// resolution order as the comparator returns them.
//
// The on-disk format is length-prefixed, CRC-checksummed and versioned
// (see DESIGN.md §8 for the byte layout). Appends are fsync-batched under
// the SyncEvery knob: a crash loses at most the un-synced tail, and those
// pairs are simply re-compared on resume. Opening a journal for resumption
// truncates a torn tail (a record cut short mid-write) at the last intact
// record and refuses — with a descriptive error, never a silent fresh
// start — to continue a run whose configuration or inputs changed, or one
// written by a newer format version.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Format constants. The magic distinguishes journal files from arbitrary
// data; the version gates forward compatibility: a reader refuses files
// written by a newer version instead of guessing at their layout.
const (
	formatVersion = 1
	headerLen     = 10 // 8-byte magic + uint16 version
)

var magic = [8]byte{'P', 'P', 'R', 'L', 'W', 'A', 'L', 0}

// Record types inside the framed payloads. Purchased SMC verdicts
// (recVerdict) and tier-labeled verdicts (recTierVerdict) are distinct
// types on disk because resume accounting treats them differently: only
// purchased verdicts were paid for out of the allowance and must never be
// re-spent, while tier labels are deterministic and free to recompute —
// a resumed run replays the former and regenerates the latter. Old
// journals simply contain no tier records, so the format version is
// unchanged.
const (
	recManifest    byte = 1
	recVerdict     byte = 2
	recTierVerdict byte = 3
)

// maxPayload bounds a single record's payload so a corrupt length prefix
// cannot make the reader allocate gigabytes. The largest legitimate
// record is the manifest, whose only variable part is the heuristic name.
const maxPayload = 1 << 16

// verdictPayloadLen is the fixed payload size of a verdict record:
// type byte, two uint32 record indexes, one verdict byte.
const verdictPayloadLen = 1 + 4 + 4 + 1

// crcTable is the Castagnoli polynomial, chosen over IEEE for its
// hardware support and better burst-error detection.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNewerVersion marks a journal written by a format version this build
// does not know how to read.
var ErrNewerVersion = errors.New("journal: written by a newer format version")

// ErrNoManifest marks a journal file whose manifest never became durable
// — the writer died between Create and the manifest fsync. Such a file
// holds no verdicts, so Open may safely recreate it; Resume still
// refuses it, since a caller asking to resume expected recorded state.
var ErrNoManifest = errors.New("journal: no intact manifest record")

// Manifest identifies the run a journal belongs to. Resumption replays
// verdicts only into a bit-identical run: the digests cover everything
// that influences which pairs are ordered for the SMC budget and what
// their verdicts are, so a mismatch means the journaled verdicts cannot
// be trusted to apply.
type Manifest struct {
	// ConfigDigest hashes the run parameters (QIDs, thresholds, anonymity
	// requirements, anonymizers, heuristic, strategy, allowance, scale,
	// seed). Computed by the layer that owns the configuration.
	ConfigDigest [32]byte
	// InputsDigest hashes the input relations (or, for a distributed
	// querying party, the published anonymized views).
	InputsDigest [32]byte
	// TotalPairs and UnknownPairs summarize the blocking step the journal
	// was recorded under.
	TotalPairs   int64
	UnknownPairs int64
	// Allowance is the resolved SMC budget in record pairs.
	Allowance int64
	// Seed drives the ordering of the TrainClassifier strategy's random
	// pair selection; zero elsewhere.
	Seed int64
	// Heuristic names the selection heuristic that ordered the pairs.
	Heuristic string
}

// CheckCompatible reports whether a journal recorded under m can resume a
// run currently described by cur. Field-specific errors come first so the
// operator learns what changed; the digests catch everything else.
func (m Manifest) CheckCompatible(cur Manifest) error {
	switch {
	case m.Heuristic != cur.Heuristic:
		return fmt.Errorf("journal: heuristic changed: journal recorded %q, run uses %q", m.Heuristic, cur.Heuristic)
	case m.Allowance != cur.Allowance:
		return fmt.Errorf("journal: SMC allowance changed: journal recorded %d, run resolves %d", m.Allowance, cur.Allowance)
	case m.Seed != cur.Seed:
		return fmt.Errorf("journal: ordering seed changed: journal recorded %d, run uses %d", m.Seed, cur.Seed)
	case m.TotalPairs != cur.TotalPairs || m.UnknownPairs != cur.UnknownPairs:
		return fmt.Errorf("journal: blocking summary changed: journal recorded %d pairs (%d unknown), run has %d (%d unknown)",
			m.TotalPairs, m.UnknownPairs, cur.TotalPairs, cur.UnknownPairs)
	case m.ConfigDigest != cur.ConfigDigest:
		return fmt.Errorf("journal: config digest mismatch (journal %x…, run %x…): the run's parameters changed; refusing to resume",
			m.ConfigDigest[:6], cur.ConfigDigest[:6])
	case m.InputsDigest != cur.InputsDigest:
		return fmt.Errorf("journal: inputs digest mismatch (journal %x…, run %x…): the relations changed; refusing to resume",
			m.InputsDigest[:6], cur.InputsDigest[:6])
	}
	return nil
}

// Verdict is one journaled SMC resolution: Alice's record I matched (or
// did not match) Bob's record J.
type Verdict struct {
	I, J    uint32
	Matched bool
}

// Sink is what the linkage engines write runs through. Begin declares the
// run's manifest: a fresh journal persists it, a resumed journal instead
// validates it against the recovered manifest and returns the verdicts
// already purchased, which the engine applies without re-spending
// allowance. Record appends one purchased SMC pair and RecordTier one
// tier-labeled pair — the distinction is what keeps resume accounting
// exact. Sync makes all appended records durable regardless of the fsync
// batching cadence.
type Sink interface {
	Begin(m Manifest) ([]Verdict, error)
	Record(i, j int, matched bool) error
	RecordTier(i, j int, matched bool) error
	Sync() error
}

// Options tunes a journal writer.
type Options struct {
	// SyncEvery is how many verdict records may accumulate before an
	// fsync. 1 syncs every record (maximum durability, slowest); larger
	// values amortize the fsync over a batch, risking at most that many
	// re-comparisons after a crash. ≤ 0 selects the default (64).
	SyncEvery int
}

const defaultSyncEvery = 64

// Writer appends a run to a journal file. It implements Sink. Writers are
// not safe for concurrent use; the engines call them from the linking
// goroutine only.
type Writer struct {
	f         *os.File
	path      string
	syncEvery int
	unsynced  int
	recorded  int
	began     bool
	// recovered is non-nil when the writer was opened with Resume: Begin
	// then validates instead of writing a second manifest.
	recovered *Recovered
}

// Create starts a fresh journal at path. It refuses to overwrite an
// existing file — an existing journal is a resumable run, and clobbering
// it would destroy exactly the verdicts this package exists to keep.
func Create(path string, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("journal: %s already exists; resume it instead of starting over", path)
		}
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], formatVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	return &Writer{f: f, path: path, syncEvery: normalizeSyncEvery(opts.SyncEvery)}, nil
}

// Resume opens an interrupted run's journal for continuation: it replays
// the manifest and verdicts, truncates any torn tail at the last intact
// record, and positions the writer to append. The recovered verdicts are
// handed to the engine by Begin after manifest validation.
func Resume(path string, opts Options) (*Writer, error) {
	rec, err := Replay(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("journal: reopening for append: %w", err)
	}
	if rec.TornBytes > 0 {
		if err := f.Truncate(rec.goodOffset); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncating torn tail (%d bytes): %w", rec.TornBytes, err)
		}
	}
	if _, err := f.Seek(rec.goodOffset, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seeking to append position: %w", err)
	}
	return &Writer{f: f, path: path, syncEvery: normalizeSyncEvery(opts.SyncEvery), recovered: rec}, nil
}

func normalizeSyncEvery(n int) int {
	if n <= 0 {
		return defaultSyncEvery
	}
	return n
}

// Begin implements Sink.
func (w *Writer) Begin(m Manifest) ([]Verdict, error) {
	if w.began {
		return nil, fmt.Errorf("journal: Begin called twice")
	}
	w.began = true
	if w.recovered != nil {
		if err := w.recovered.Manifest.CheckCompatible(m); err != nil {
			return nil, err
		}
		return w.recovered.Verdicts, nil
	}
	if err := w.appendRecord(encodeManifest(m)); err != nil {
		return nil, fmt.Errorf("journal: writing manifest: %w", err)
	}
	// The manifest must be durable before any verdict that cites it.
	if err := w.Sync(); err != nil {
		return nil, err
	}
	return nil, nil
}

// Record implements Sink.
func (w *Writer) Record(i, j int, matched bool) error {
	return w.record(recVerdict, i, j, matched)
}

// RecordTier implements Sink: appends a tier-labeled verdict, which
// resume accounting keeps separate from the purchased ones.
func (w *Writer) RecordTier(i, j int, matched bool) error {
	return w.record(recTierVerdict, i, j, matched)
}

func (w *Writer) record(kind byte, i, j int, matched bool) error {
	if !w.began {
		return fmt.Errorf("journal: Record before Begin")
	}
	if i < 0 || j < 0 || int64(i) > int64(^uint32(0)) || int64(j) > int64(^uint32(0)) {
		return fmt.Errorf("journal: pair (%d,%d) outside the uint32 record-index range", i, j)
	}
	var payload [verdictPayloadLen]byte
	payload[0] = kind
	binary.LittleEndian.PutUint32(payload[1:5], uint32(i))
	binary.LittleEndian.PutUint32(payload[5:9], uint32(j))
	if matched {
		payload[9] = 1
	}
	if err := w.appendRecord(payload[:]); err != nil {
		return err
	}
	w.recorded++
	w.unsynced++
	if w.unsynced >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// Sync implements Sink: flushes appended records to stable storage.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	w.unsynced = 0
	return nil
}

// Close syncs and releases the file.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Path returns the journal's file path, for operator messaging.
func (w *Writer) Path() string { return w.path }

// Recorded reports how many verdicts (purchased and tier-labeled) this
// writer appended in the current session — replayed verdicts from a
// resumed journal are not counted, so after a crash-resume run the value
// is exactly the work done since the crash.
func (w *Writer) Recorded() int { return w.recorded }

// appendRecord frames and writes one payload:
//
//	uint32 LE payload length | payload | uint32 LE CRC32-C(payload)
func (w *Writer) appendRecord(payload []byte) error {
	frame := make([]byte, 4+len(payload)+4)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)
	binary.LittleEndian.PutUint32(frame[4+len(payload):], crc32.Checksum(payload, crcTable))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	return nil
}

// encodeManifest renders the manifest payload:
//
//	type byte | config digest (32) | inputs digest (32) |
//	totalPairs u64 | unknownPairs u64 | allowance u64 | seed u64 |
//	heuristic length u16 | heuristic bytes
func encodeManifest(m Manifest) []byte {
	out := make([]byte, 0, 1+32+32+8*4+2+len(m.Heuristic))
	out = append(out, recManifest)
	out = append(out, m.ConfigDigest[:]...)
	out = append(out, m.InputsDigest[:]...)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.TotalPairs))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.UnknownPairs))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.Allowance))
	out = binary.LittleEndian.AppendUint64(out, uint64(m.Seed))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Heuristic)))
	out = append(out, m.Heuristic...)
	return out
}
