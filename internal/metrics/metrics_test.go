package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestConfusion(t *testing.T) {
	c := Confusion{TruePositives: 8, FalsePositives: 2, FalseNegatives: 8}
	if !almost(c.Precision(), 0.8) {
		t.Errorf("precision = %v", c.Precision())
	}
	if !almost(c.Recall(), 0.5) {
		t.Errorf("recall = %v", c.Recall())
	}
	want := 2 * 0.8 * 0.5 / (0.8 + 0.5)
	if !almost(c.F1(), want) {
		t.Errorf("f1 = %v, want %v", c.F1(), want)
	}
	if !strings.Contains(c.String(), "precision=0.8000") {
		t.Errorf("String = %q", c.String())
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var empty Confusion
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty confusion should report perfect precision/recall")
	}
	zeroF1 := Confusion{FalsePositives: 1, FalseNegatives: 1}
	if zeroF1.F1() != 0 {
		t.Errorf("f1 = %v, want 0", zeroF1.F1())
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{PerInvocation: 430 * time.Millisecond, BytesPerInvocation: 2048}
	if got := m.Time(100); got != 43*time.Second {
		t.Errorf("Time(100) = %v, want 43s (the paper's 0.43s per comparison)", got)
	}
	if got := m.Bytes(3); got != 6144 {
		t.Errorf("Bytes(3) = %d", got)
	}
}

func TestReductionRatio(t *testing.T) {
	if got := ReductionRatio(25, 100); !almost(got, 0.75) {
		t.Errorf("ReductionRatio = %v", got)
	}
	if got := ReductionRatio(0, 0); got != 0 {
		t.Errorf("ReductionRatio(0,0) = %v", got)
	}
}
