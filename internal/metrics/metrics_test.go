package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestConfusion(t *testing.T) {
	c := Confusion{TruePositives: 8, FalsePositives: 2, FalseNegatives: 8}
	if !almost(c.Precision(), 0.8) {
		t.Errorf("precision = %v", c.Precision())
	}
	if !almost(c.Recall(), 0.5) {
		t.Errorf("recall = %v", c.Recall())
	}
	want := 2 * 0.8 * 0.5 / (0.8 + 0.5)
	if !almost(c.F1(), want) {
		t.Errorf("f1 = %v, want %v", c.F1(), want)
	}
	if !strings.Contains(c.String(), "precision=0.8000") {
		t.Errorf("String = %q", c.String())
	}
}

// TestConfusionEdgeCases pins the package's 0/0 conventions, which the
// oracle harness and the experiment sweeps rely on (see the method doc
// comments): degenerate worlds must yield finite, defined scores, never
// NaN.
func TestConfusionEdgeCases(t *testing.T) {
	// Empty relations: nothing labeled, nothing to find.
	var empty Confusion
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty confusion should report perfect precision/recall")
	}
	if empty.F1() != 1 {
		t.Errorf("empty confusion f1 = %v, want 1 (harmonic mean of two 1s)", empty.F1())
	}

	// Zero labeled pairs but existing true matches: the SMC budget ran
	// out before labeling anything. Precision stays 1 (no wrong answer),
	// recall collapses to 0.
	unlabeled := Confusion{FalseNegatives: 5}
	if unlabeled.Precision() != 1 {
		t.Errorf("precision = %v with zero labeled pairs, want 1", unlabeled.Precision())
	}
	if unlabeled.Recall() != 0 {
		t.Errorf("recall = %v with all matches missed, want 0", unlabeled.Recall())
	}

	// Zero true matches but labeled pairs: disjoint relations where the
	// matcher still guessed. Recall stays 1, precision collapses to 0.
	disjoint := Confusion{FalsePositives: 3}
	if disjoint.Recall() != 1 {
		t.Errorf("recall = %v with zero true matches, want 1", disjoint.Recall())
	}
	if disjoint.Precision() != 0 {
		t.Errorf("precision = %v with only false positives, want 0", disjoint.Precision())
	}

	// F1's own 0/0: both components zero is the worst score, not NaN.
	zeroF1 := Confusion{FalsePositives: 1, FalseNegatives: 1}
	if zeroF1.F1() != 0 {
		t.Errorf("f1 = %v, want 0", zeroF1.F1())
	}

	for _, c := range []Confusion{empty, unlabeled, disjoint, zeroF1} {
		for name, v := range map[string]float64{"precision": c.Precision(), "recall": c.Recall(), "f1": c.F1()} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%+v: %s = %v, want finite", c, name, v)
			}
		}
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{PerInvocation: 430 * time.Millisecond, BytesPerInvocation: 2048}
	if got := m.Time(100); got != 43*time.Second {
		t.Errorf("Time(100) = %v, want 43s (the paper's 0.43s per comparison)", got)
	}
	if got := m.Bytes(3); got != 6144 {
		t.Errorf("Bytes(3) = %d", got)
	}
}

func TestReductionRatio(t *testing.T) {
	if got := ReductionRatio(25, 100); !almost(got, 0.75) {
		t.Errorf("ReductionRatio = %v", got)
	}
	if got := ReductionRatio(0, 0); got != 0 {
		t.Errorf("ReductionRatio(0,0) = %v", got)
	}
}

func TestResumeStats(t *testing.T) {
	var fresh ResumeStats
	if fresh.Resumed() {
		t.Error("zero-value ResumeStats claims a resume happened")
	}
	s := ResumeStats{ResumedPairs: 40, ReplayedAllowance: 40}
	if !s.Resumed() {
		t.Error("non-empty replay not reported as resumed")
	}
	if got := s.String(); got != "resumed=40 replayed-allowance=40" {
		t.Errorf("String() = %q", got)
	}
}
