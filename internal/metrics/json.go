package metrics

import "encoding/json"

// The wire forms below pin stable snake_case field names for the HTTP
// API and machine-readable CLI output; renaming a Go field must not
// silently rename a JSON field consumers depend on.

// confusionJSON is Confusion's wire form. The derived rates are included
// on output for consumers that plot without recomputing; input takes the
// three counts and ignores the rates (they are always derivable).
type confusionJSON struct {
	TruePositives  int64    `json:"true_positives"`
	FalsePositives int64    `json:"false_positives"`
	FalseNegatives int64    `json:"false_negatives"`
	Precision      *float64 `json:"precision,omitempty"`
	Recall         *float64 `json:"recall,omitempty"`
	F1             *float64 `json:"f1,omitempty"`
}

// MarshalJSON implements json.Marshaler with stable field names plus the
// derived precision/recall/F1.
func (c Confusion) MarshalJSON() ([]byte, error) {
	p, r, f := c.Precision(), c.Recall(), c.F1()
	return json.Marshal(confusionJSON{
		TruePositives:  c.TruePositives,
		FalsePositives: c.FalsePositives,
		FalseNegatives: c.FalseNegatives,
		Precision:      &p,
		Recall:         &r,
		F1:             &f,
	})
}

// UnmarshalJSON implements json.Unmarshaler; only the counts are read,
// the derived rates are recomputed on demand.
func (c *Confusion) UnmarshalJSON(data []byte) error {
	var w confusionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	c.TruePositives = w.TruePositives
	c.FalsePositives = w.FalsePositives
	c.FalseNegatives = w.FalseNegatives
	return nil
}

// resumeStatsJSON is ResumeStats' wire form.
type resumeStatsJSON struct {
	ResumedPairs      int64 `json:"resumed_pairs"`
	ReplayedAllowance int64 `json:"replayed_allowance"`
}

// MarshalJSON implements json.Marshaler with stable field names.
func (s ResumeStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(resumeStatsJSON{
		ResumedPairs:      s.ResumedPairs,
		ReplayedAllowance: s.ReplayedAllowance,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *ResumeStats) UnmarshalJSON(data []byte) error {
	var w resumeStatsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.ResumedPairs = w.ResumedPairs
	s.ReplayedAllowance = w.ReplayedAllowance
	return nil
}
