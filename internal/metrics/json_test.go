package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestConfusionJSONRoundTrip: counts survive marshal → unmarshal exactly
// and the derived rates appear on the wire.
func TestConfusionJSONRoundTrip(t *testing.T) {
	in := Confusion{TruePositives: 7, FalsePositives: 2, FalseNegatives: 3}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"true_positives", "false_positives", "false_negatives", "precision", "recall", "f1"} {
		if !strings.Contains(string(data), `"`+field+`"`) {
			t.Errorf("wire form missing %q: %s", field, data)
		}
	}
	var out Confusion
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the counts: %+v -> %+v", in, out)
	}
}

// TestConfusionJSONIgnoresStaleRates: the counts are authoritative; wire
// rates that disagree are discarded, not stored.
func TestConfusionJSONIgnoresStaleRates(t *testing.T) {
	var c Confusion
	blob := `{"true_positives":4,"false_positives":0,"false_negatives":4,"precision":0.1,"recall":0.1,"f1":0.1}`
	if err := json.Unmarshal([]byte(blob), &c); err != nil {
		t.Fatal(err)
	}
	if c.Precision() != 1 {
		t.Errorf("precision = %v, want 1 (recomputed from counts)", c.Precision())
	}
	if c.Recall() != 0.5 {
		t.Errorf("recall = %v, want 0.5", c.Recall())
	}
}

// TestResumeStatsJSONRoundTrip: both counters survive exactly.
func TestResumeStatsJSONRoundTrip(t *testing.T) {
	in := ResumeStats{ResumedPairs: 123, ReplayedAllowance: 123}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"resumed_pairs":123,"replayed_allowance":123}`
	if string(data) != want {
		t.Errorf("wire form = %s, want %s", data, want)
	}
	var out ResumeStats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the stats: %+v -> %+v", in, out)
	}
}
