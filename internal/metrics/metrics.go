// Package metrics provides the evaluation measures of the paper's Section
// VI: precision, recall (the paper's accuracy proxy, since precision is
// structurally 100%), blocking efficiency, reduction ratio, and the cost
// model that converts SMC invocation counts to wall-clock estimates using
// a measured per-invocation cost.
package metrics

import (
	"fmt"
	"time"
)

// Confusion summarizes a linkage outcome against ground truth.
type Confusion struct {
	// TruePositives are truly matching pairs the method matched.
	TruePositives int64
	// FalsePositives are non-matching pairs the method matched.
	FalsePositives int64
	// FalseNegatives are truly matching pairs the method missed.
	FalseNegatives int64
}

// Precision returns TP / (TP + FP). The 0/0 case — no pair was labeled
// a match — returns 1 by convention: an empty answer contains no wrong
// answers, and the paper's structural-precision claim must hold even
// for a run whose SMC budget labeled nothing.
func (c Confusion) Precision() float64 {
	denom := c.TruePositives + c.FalsePositives
	if denom == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(denom)
}

// Recall returns TP / (TP + FN). The 0/0 case — the ground truth holds
// no matching pairs, e.g. disjoint relations — returns 1 by convention:
// everything there was to find was found. This keeps recall sweeps
// well-defined on worlds with empty overlap.
func (c Confusion) Recall() float64 {
	denom := c.TruePositives + c.FalseNegatives
	if denom == 0 {
		return 1
	}
	return float64(c.TruePositives) / float64(denom)
}

// F1 returns the harmonic mean of precision and recall. When both are
// zero (every labeled pair wrong and every true match missed) the
// harmonic mean's 0/0 is taken as 0, the worst score — unlike the
// optimistic 0/0 conventions above, there is nothing empty to excuse.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Confusion) String() string {
	return fmt.Sprintf("precision=%.4f recall=%.4f f1=%.4f (tp=%d fp=%d fn=%d)",
		c.Precision(), c.Recall(), c.F1(), c.TruePositives, c.FalsePositives, c.FalseNegatives)
}

// CostModel converts SMC invocation counts to estimated time, following
// the paper's methodology: "we restricted our cost model to the number of
// SMC protocol invocations. If needed, translating this percentage into
// CPU time or network bandwidth is an easy task."
type CostModel struct {
	// PerInvocation is the measured cost of one secure record comparison
	// (the paper reports 0.43 s per continuous attribute at 1024-bit
	// keys on 2008 hardware; run the package benchmarks for this
	// machine's figure).
	PerInvocation time.Duration
	// BytesPerInvocation is the measured traffic per comparison.
	BytesPerInvocation int64
}

// Time estimates wall-clock cost of n invocations.
func (m CostModel) Time(n int64) time.Duration {
	return time.Duration(n) * m.PerInvocation
}

// Bytes estimates traffic of n invocations.
func (m CostModel) Bytes(n int64) int64 { return n * m.BytesPerInvocation }

// ResumeStats accounts for a run resumed from a durable journal: how
// much of the SMC step was stitched in from a previous process instead
// of being bought again. A fresh (unjournaled or uninterrupted) run is
// the zero value. The two counters are reported separately because they
// answer different questions — ResumedPairs is a verdict count (the
// oracle harness checks the stitched labeling with it), ReplayedAllowance
// is the budget the replay consumed (benchmarks check that a resumed run
// spends exactly Allowance − ReplayedAllowance on live comparisons) —
// even though the current uniform cost model makes them numerically
// equal.
type ResumeStats struct {
	// ResumedPairs is the number of pair verdicts replayed from the
	// journal rather than resolved by the comparator.
	ResumedPairs int64
	// ReplayedAllowance is the SMC allowance consumed by the replayed
	// prefix; the live run spends only the remainder.
	ReplayedAllowance int64
}

// Resumed reports whether any journaled state was stitched in.
func (s ResumeStats) Resumed() bool { return s.ResumedPairs > 0 }

func (s ResumeStats) String() string {
	return fmt.Sprintf("resumed=%d replayed-allowance=%d", s.ResumedPairs, s.ReplayedAllowance)
}

// ReductionRatio is the standard blocking measure: the fraction of the
// |R|×|S| comparison space removed before expensive matching. An empty
// comparison space (either relation empty) returns 0 — no work existed,
// so none was saved — rather than the 1 a naive limit would suggest.
func ReductionRatio(candidates, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 1 - float64(candidates)/float64(total)
}
