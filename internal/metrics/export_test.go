package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryPrometheusFormat: names are prefixed, HELP/TYPE lines
// precede each sample, and values reflect the atomic state.
func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry("pprl")
	c := r.Counter("jobs_submitted_total", "jobs accepted by the API")
	g := r.Gauge("jobs_running", "jobs currently executing")
	c.Add(3)
	g.Set(2)
	g.Add(-1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pprl_jobs_submitted_total jobs accepted by the API",
		"# TYPE pprl_jobs_submitted_total counter",
		"pprl_jobs_submitted_total 3",
		"# TYPE pprl_jobs_running gauge",
		"pprl_jobs_running 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE must precede the sample line for each metric.
	if strings.Index(out, "# TYPE pprl_jobs_running gauge") > strings.Index(out, "\npprl_jobs_running 1") {
		t.Errorf("TYPE line does not precede sample:\n%s", out)
	}
}

// TestRegistryExpvarString: the registry is a valid expvar.Var whose
// String() is a JSON object of every metric.
func TestRegistryExpvarString(t *testing.T) {
	r := NewRegistry("svc")
	r.Counter("a_total", "").Add(7)
	r.Gauge("b", "").Set(-2)
	var m map[string]int64
	if err := json.Unmarshal([]byte(r.String()), &m); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, r.String())
	}
	if m["svc_a_total"] != 7 || m["svc_b"] != -2 {
		t.Errorf("expvar view = %v", m)
	}
}

// TestRegistryReregisterReturnsSame: registering a name twice yields the
// same var, so packages can look metrics up idempotently.
func TestRegistryReregisterReturnsSame(t *testing.T) {
	r := NewRegistry("x")
	a := r.Counter("n", "first")
	b := r.Counter("n", "second help ignored")
	if a != b {
		t.Fatal("re-registration created a second var")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("vars not shared")
	}
}

// TestRegistryConcurrentUse: concurrent registration and updates are
// race-free (run under -race) and lose no increments.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry("pprl")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 8000 {
		t.Fatalf("hits_total = %d, want 8000", got)
	}
}

// TestVarVecPrometheusFormat: labeled families render one sample line per
// observed label value under a single HELP/TYPE header, with Prometheus
// label-value quoting.
func TestVarVecPrometheusFormat(t *testing.T) {
	r := NewRegistry("pprl")
	chunks := r.CounterVec("worker_chunks_total", "worker", "SMC chunks completed per fleet worker.")
	beats := r.GaugeVec("worker_heartbeat_seconds", "worker", "Unix time of each worker's last heartbeat.")
	chunks.With("w1").Add(3)
	chunks.With("w2").Inc()
	beats.With(`we"ird\name`).Set(99)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pprl_worker_chunks_total SMC chunks completed per fleet worker.",
		"# TYPE pprl_worker_chunks_total counter",
		`pprl_worker_chunks_total{worker="w1"} 3`,
		`pprl_worker_chunks_total{worker="w2"} 1`,
		"# TYPE pprl_worker_heartbeat_seconds gauge",
		`pprl_worker_heartbeat_seconds{worker="we\"ird\\name"} 99`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestVarVecWithReturnsSame: the same label value yields the same child,
// and children appear in the expvar JSON view.
func TestVarVecWithReturnsSame(t *testing.T) {
	r := NewRegistry("x")
	v := r.CounterVec("chunks_total", "worker", "")
	if v != r.CounterVec("chunks_total", "worker", "other help") {
		t.Fatal("re-registration created a second vec")
	}
	a := v.With("w1")
	a.Add(2)
	if b := v.With("w1"); b != a || b.Value() != 2 {
		t.Fatal("children not shared per label value")
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(r.String()), &m); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, r.String())
	}
	if m[`x_chunks_total{worker="w1"}`] != 2 {
		t.Errorf("expvar view = %v", m)
	}
}

// TestVarVecConcurrentUse: concurrent With and updates across goroutines
// are race-free and lose no increments.
func TestVarVecConcurrentUse(t *testing.T) {
	r := NewRegistry("pprl")
	vec := r.CounterVec("worker_chunks_total", "worker", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i%2))
			for j := 0; j < 1000; j++ {
				vec.With(name).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := vec.With("a").Value() + vec.With("b").Value(); got != 8000 {
		t.Fatalf("total = %d, want 8000", got)
	}
}
