package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryPrometheusFormat: names are prefixed, HELP/TYPE lines
// precede each sample, and values reflect the atomic state.
func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry("pprl")
	c := r.Counter("jobs_submitted_total", "jobs accepted by the API")
	g := r.Gauge("jobs_running", "jobs currently executing")
	c.Add(3)
	g.Set(2)
	g.Add(-1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pprl_jobs_submitted_total jobs accepted by the API",
		"# TYPE pprl_jobs_submitted_total counter",
		"pprl_jobs_submitted_total 3",
		"# TYPE pprl_jobs_running gauge",
		"pprl_jobs_running 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE must precede the sample line for each metric.
	if strings.Index(out, "# TYPE pprl_jobs_running gauge") > strings.Index(out, "\npprl_jobs_running 1") {
		t.Errorf("TYPE line does not precede sample:\n%s", out)
	}
}

// TestRegistryExpvarString: the registry is a valid expvar.Var whose
// String() is a JSON object of every metric.
func TestRegistryExpvarString(t *testing.T) {
	r := NewRegistry("svc")
	r.Counter("a_total", "").Add(7)
	r.Gauge("b", "").Set(-2)
	var m map[string]int64
	if err := json.Unmarshal([]byte(r.String()), &m); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, r.String())
	}
	if m["svc_a_total"] != 7 || m["svc_b"] != -2 {
		t.Errorf("expvar view = %v", m)
	}
}

// TestRegistryReregisterReturnsSame: registering a name twice yields the
// same var, so packages can look metrics up idempotently.
func TestRegistryReregisterReturnsSame(t *testing.T) {
	r := NewRegistry("x")
	a := r.Counter("n", "first")
	b := r.Counter("n", "second help ignored")
	if a != b {
		t.Fatal("re-registration created a second var")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("vars not shared")
	}
}

// TestRegistryConcurrentUse: concurrent registration and updates are
// race-free (run under -race) and lose no increments.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry("pprl")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 8000 {
		t.Fatalf("hits_total = %d, want 8000", got)
	}
}
