package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a small operational-metrics registry: named atomic
// counters and gauges, rendered in the Prometheus text exposition
// format and as an expvar-compatible JSON object. It exists so the job
// service exposes /metrics from the stdlib alone; swapping in a real
// client library later means replacing this file, not the call sites.
//
// Registering is not hot-path work and takes a lock; Add/Set on the
// returned vars are lock-free atomics safe for concurrent use.
type Registry struct {
	// namespace prefixes every exported name ("pprl" → "pprl_jobs_…").
	namespace string

	mu   sync.Mutex
	vars map[string]*Var
	vecs map[string]*VarVec
	// order preserves registration order for stable /metrics output.
	order []string
}

// Var is one exported metric: an atomic int64 with Prometheus metadata.
type Var struct {
	name string // fully prefixed
	help string
	typ  string // "counter" or "gauge"
	v    atomic.Int64
}

// Add increments the metric by n.
func (v *Var) Add(n int64) { v.v.Add(n) }

// Inc increments the metric by one.
func (v *Var) Inc() { v.v.Add(1) }

// Set stores an absolute value; meaningful for gauges.
func (v *Var) Set(n int64) { v.v.Store(n) }

// Value returns the current value.
func (v *Var) Value() int64 { return v.v.Load() }

// NewRegistry creates a registry whose metric names are prefixed with
// namespace and an underscore (empty namespace = bare names).
func NewRegistry(namespace string) *Registry {
	return &Registry{
		namespace: namespace,
		vars:      make(map[string]*Var),
		vecs:      make(map[string]*VarVec),
	}
}

// Counter registers (or returns the existing) monotonically increasing
// metric. The name must be a valid Prometheus metric name fragment
// (lowercase, underscores).
func (r *Registry) Counter(name, help string) *Var { return r.register(name, help, "counter") }

// Gauge registers (or returns the existing) up-and-down metric.
func (r *Registry) Gauge(name, help string) *Var { return r.register(name, help, "gauge") }

func (r *Registry) register(name, help, typ string) *Var {
	full := name
	if r.namespace != "" {
		full = r.namespace + "_" + name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[full]; ok {
		return v
	}
	v := &Var{name: full, help: help, typ: typ}
	r.vars[full] = v
	r.order = append(r.order, full)
	return v
}

// VarVec is a labeled metric family: one metric name, one label key, and
// an atomic Var per observed label value — enough for the per-worker
// fleet counters (`pprl_worker_chunks_total{worker="w1"}`) without
// growing into a full label-set model. With is lock-guarded but cheap;
// hot paths should hold onto the returned *Var.
type VarVec struct {
	name  string // fully prefixed
	help  string
	typ   string // "counter" or "gauge"
	label string

	mu       sync.Mutex
	children map[string]*Var
	order    []string
}

// CounterVec registers (or returns the existing) labeled counter family.
func (r *Registry) CounterVec(name, label, help string) *VarVec {
	return r.registerVec(name, label, help, "counter")
}

// GaugeVec registers (or returns the existing) labeled gauge family.
func (r *Registry) GaugeVec(name, label, help string) *VarVec {
	return r.registerVec(name, label, help, "gauge")
}

func (r *Registry) registerVec(name, label, help, typ string) *VarVec {
	full := name
	if r.namespace != "" {
		full = r.namespace + "_" + name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vecs[full]; ok {
		return v
	}
	v := &VarVec{name: full, help: help, typ: typ, label: label, children: make(map[string]*Var)}
	r.vecs[full] = v
	r.order = append(r.order, full)
	return v
}

// With returns the child Var for one label value, creating it on first
// use. Children render in first-use order.
func (v *VarVec) With(value string) *Var {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	c := &Var{name: fmt.Sprintf("%s{%s=%q}", v.name, v.label, value), help: v.help, typ: v.typ}
	v.children[value] = c
	v.order = append(v.order, value)
	return c
}

// snapshot returns the children in first-use order.
func (v *VarVec) snapshot() []*Var {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Var, len(v.order))
	for i, val := range v.order {
		out[i] = v.children[val]
	}
	return out
}

// WritePrometheus renders every metric in the text exposition format:
//
//	# HELP name help
//	# TYPE name counter
//	name value
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	vars := make([]*Var, len(names))
	vecs := make([]*VarVec, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
		vecs[i] = r.vecs[n]
	}
	r.mu.Unlock()
	header := func(name, help, typ string) error {
		if help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		return err
	}
	for i := range names {
		if v := vars[i]; v != nil {
			if err := header(v.name, v.help, v.typ); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", v.name, v.Value()); err != nil {
				return err
			}
			continue
		}
		vec := vecs[i]
		if err := header(vec.name, vec.help, vec.typ); err != nil {
			return err
		}
		// A family with no observed label values renders as just its
		// HELP/TYPE header, matching Prometheus client conventions.
		for _, c := range vec.snapshot() {
			if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.Value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// String renders the registry as a JSON object of name → value, which
// makes a Registry an expvar.Var: publish it once per process with
// expvar.Publish and it appears under /debug/vars.
func (r *Registry) String() string {
	r.mu.Lock()
	entries := make(map[string]int64, len(r.vars))
	for n, v := range r.vars {
		entries[n] = v.Value()
	}
	for _, vec := range r.vecs {
		for _, c := range vec.snapshot() {
			entries[c.name] = c.Value()
		}
	}
	r.mu.Unlock()
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %d", n, entries[n])
	}
	b.WriteByte('}')
	return b.String()
}
