package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a small operational-metrics registry: named atomic
// counters and gauges, rendered in the Prometheus text exposition
// format and as an expvar-compatible JSON object. It exists so the job
// service exposes /metrics from the stdlib alone; swapping in a real
// client library later means replacing this file, not the call sites.
//
// Registering is not hot-path work and takes a lock; Add/Set on the
// returned vars are lock-free atomics safe for concurrent use.
type Registry struct {
	// namespace prefixes every exported name ("pprl" → "pprl_jobs_…").
	namespace string

	mu   sync.Mutex
	vars map[string]*Var
	// order preserves registration order for stable /metrics output.
	order []string
}

// Var is one exported metric: an atomic int64 with Prometheus metadata.
type Var struct {
	name string // fully prefixed
	help string
	typ  string // "counter" or "gauge"
	v    atomic.Int64
}

// Add increments the metric by n.
func (v *Var) Add(n int64) { v.v.Add(n) }

// Inc increments the metric by one.
func (v *Var) Inc() { v.v.Add(1) }

// Set stores an absolute value; meaningful for gauges.
func (v *Var) Set(n int64) { v.v.Store(n) }

// Value returns the current value.
func (v *Var) Value() int64 { return v.v.Load() }

// NewRegistry creates a registry whose metric names are prefixed with
// namespace and an underscore (empty namespace = bare names).
func NewRegistry(namespace string) *Registry {
	return &Registry{namespace: namespace, vars: make(map[string]*Var)}
}

// Counter registers (or returns the existing) monotonically increasing
// metric. The name must be a valid Prometheus metric name fragment
// (lowercase, underscores).
func (r *Registry) Counter(name, help string) *Var { return r.register(name, help, "counter") }

// Gauge registers (or returns the existing) up-and-down metric.
func (r *Registry) Gauge(name, help string) *Var { return r.register(name, help, "gauge") }

func (r *Registry) register(name, help, typ string) *Var {
	full := name
	if r.namespace != "" {
		full = r.namespace + "_" + name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[full]; ok {
		return v
	}
	v := &Var{name: full, help: help, typ: typ}
	r.vars[full] = v
	r.order = append(r.order, full)
	return v
}

// WritePrometheus renders every metric in the text exposition format:
//
//	# HELP name help
//	# TYPE name counter
//	name value
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	vars := make([]*Var, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
	}
	r.mu.Unlock()
	for _, v := range vars {
		if v.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", v.name, v.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", v.name, v.typ, v.name, v.Value()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the registry as a JSON object of name → value, which
// makes a Registry an expvar.Var: publish it once per process with
// expvar.Publish and it appears under /debug/vars.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %d", n, r.vars[n].Value())
	}
	b.WriteByte('}')
	return b.String()
}
