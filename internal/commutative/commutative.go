// Package commutative implements commutative encryption by exponentiation
// in the quadratic-residue subgroup of a safe-prime group (the
// Pohlig-Hellman construction used by Agrawal, Evfimievski and Srikant,
// "Information sharing across private databases", SIGMOD 2003 — the
// paper's reference [15]): for keys a, b and any element x,
//
//	E_a(E_b(x)) = E_b(E_a(x)) = x^(a·b) mod p,
//
// which is what private set intersection — and through it the private
// schema matching the paper assumes as a preprocessing step (Section II)
// — is built on.
package commutative

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// Group holds the public parameters: a safe prime P = 2Q+1. All protocol
// participants must share the group.
type Group struct {
	// P is the safe prime; arithmetic is in the subgroup of quadratic
	// residues mod P, which has prime order Q.
	P *big.Int
	// Q is the Sophie Germain prime (P-1)/2, the subgroup order.
	Q *big.Int
}

// rfc3526Prime1536 is the 1536-bit MODP group prime of RFC 3526 — a
// well-known safe prime, so no participant can have rigged it.
const rfc3526Prime1536 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"

// DefaultGroup returns the standard 1536-bit group.
func DefaultGroup() *Group {
	p, ok := new(big.Int).SetString(rfc3526Prime1536, 16)
	if !ok {
		panic("commutative: invalid built-in prime")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	return &Group{P: p, Q: q}
}

// NewGroup generates a fresh safe-prime group of the given size; tests
// use small groups for speed, deployments should prefer DefaultGroup.
func NewGroup(random io.Reader, bits int) (*Group, error) {
	if bits < 64 {
		return nil, fmt.Errorf("commutative: group size %d too small", bits)
	}
	for {
		q, err := rand.Prime(random, bits-1)
		if err != nil {
			return nil, fmt.Errorf("commutative: generating q: %w", err)
		}
		p := new(big.Int).Lsh(q, 1)
		p.Add(p, one)
		if p.ProbablyPrime(32) {
			return &Group{P: p, Q: q}, nil
		}
	}
}

// Valid reports whether the group parameters are a plausible safe-prime
// pair; participants should check parameters received from a peer.
func (g *Group) Valid() bool {
	if g == nil || g.P == nil || g.Q == nil {
		return false
	}
	p := new(big.Int).Lsh(g.Q, 1)
	p.Add(p, one)
	return p.Cmp(g.P) == 0 && g.P.ProbablyPrime(20) && g.Q.ProbablyPrime(20)
}

// Hash maps arbitrary bytes into the quadratic-residue subgroup: SHA-256
// output interpreted as an integer, reduced mod P and squared. Squaring
// lands in the QR subgroup, where exponentiation by keys coprime to Q is
// a bijection.
func (g *Group) Hash(data []byte) *big.Int {
	sum := sha256.Sum256(data)
	x := new(big.Int).SetBytes(sum[:])
	x.Mod(x, g.P)
	if x.Sign() == 0 {
		x.SetInt64(4) // 2² — an arbitrary fixed QR, unreachable by SHA anyway
		return x
	}
	return x.Mul(x, x).Mod(x, g.P)
}

// Key is one party's secret exponent.
type Key struct {
	group *Group
	e     *big.Int
}

// NewKey draws a secret exponent in [1, Q) coprime to Q.
func (g *Group) NewKey(random io.Reader) (*Key, error) {
	gcd := new(big.Int)
	for {
		e, err := rand.Int(random, g.Q)
		if err != nil {
			return nil, fmt.Errorf("commutative: drawing key: %w", err)
		}
		if e.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, e, g.Q).Cmp(one) == 0 {
			return &Key{group: g, e: e}, nil
		}
	}
}

// Encrypt raises a group element to the secret exponent. Applying two
// parties' Encrypt in either order yields the same value.
func (k *Key) Encrypt(x *big.Int) *big.Int {
	return new(big.Int).Exp(x, k.e, k.group.P)
}

// EncryptBytes hashes data into the group and encrypts it.
func (k *Key) EncryptBytes(data []byte) *big.Int {
	return k.Encrypt(k.group.Hash(data))
}
