package commutative

import (
	"crypto/rand"
	"encoding/gob"
	"io"
	"math/big"
	"net"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func gobEncoder(w io.Writer) *gob.Encoder { return gob.NewEncoder(w) }
func gobDecoder(r io.Reader) *gob.Decoder { return gob.NewDecoder(r) }

var (
	groupOnce sync.Once
	testGrp   *Group
)

// testGroup is a small (fast) group for protocol tests.
func testGroup(t testing.TB) *Group {
	t.Helper()
	groupOnce.Do(func() {
		g, err := NewGroup(rand.Reader, 256)
		if err != nil {
			t.Fatalf("NewGroup: %v", err)
		}
		testGrp = g
	})
	return testGrp
}

func TestDefaultGroupValid(t *testing.T) {
	g := DefaultGroup()
	if !g.Valid() {
		t.Fatal("RFC 3526 group should validate")
	}
	if g.P.BitLen() != 1536 {
		t.Errorf("P has %d bits, want 1536", g.P.BitLen())
	}
}

func TestNewGroupValid(t *testing.T) {
	g := testGroup(t)
	if !g.Valid() {
		t.Fatal("generated group invalid")
	}
	if _, err := NewGroup(rand.Reader, 16); err == nil {
		t.Error("tiny groups should be rejected")
	}
	if (&Group{}).Valid() {
		t.Error("empty group should be invalid")
	}
}

// Commutativity: E_a(E_b(x)) == E_b(E_a(x)) for random keys and inputs.
func TestCommutativityProperty(t *testing.T) {
	g := testGroup(t)
	f := func(data []byte) bool {
		a, err := g.NewKey(rand.Reader)
		if err != nil {
			return false
		}
		b, err := g.NewKey(rand.Reader)
		if err != nil {
			return false
		}
		x := g.Hash(data)
		ab := a.Encrypt(b.Encrypt(x))
		ba := b.Encrypt(a.Encrypt(x))
		return ab.Cmp(ba) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Injectivity on the test domain: distinct inputs stay distinct through
// hash + encryption (encryption is a bijection on the subgroup).
func TestEncryptionInjective(t *testing.T) {
	g := testGroup(t)
	k, err := g.NewKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	inputs := []string{"age", "workclass", "education", "a", "b", "ab", ""}
	for _, in := range inputs {
		c := string(k.EncryptBytes([]byte(in)).Bytes())
		if prev, dup := seen[c]; dup {
			t.Fatalf("collision between %q and %q", prev, in)
		}
		seen[c] = in
	}
}

func runIntersect(t *testing.T, g *Group, a, b [][]byte) (ia, ib []int) {
	t.Helper()
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		idx []int
		err error
	}
	ch := make(chan res, 1)
	go func() {
		idx, err := Intersect(cb, g, b, false, rand.Reader)
		ch <- res{idx, err}
	}()
	ia, err := Intersect(ca, g, a, true, rand.Reader)
	if err != nil {
		t.Fatalf("initiator: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("responder: %v", r.err)
	}
	return ia, r.idx
}

func TestIntersect(t *testing.T) {
	g := testGroup(t)
	a := [][]byte{[]byte("age"), []byte("workclass"), []byte("ssn"), []byte("education")}
	b := [][]byte{[]byte("education"), []byte("zip"), []byte("age")}
	ia, ib := runIntersect(t, g, a, b)
	sort.Ints(ia)
	sort.Ints(ib)
	if len(ia) != 2 || a[ia[0]] == nil {
		t.Fatalf("initiator matched %v", ia)
	}
	gotA := []string{string(a[ia[0]]), string(a[ia[1]])}
	sort.Strings(gotA)
	if gotA[0] != "age" || gotA[1] != "education" {
		t.Errorf("initiator intersection = %v", gotA)
	}
	gotB := make([]string, len(ib))
	for i, idx := range ib {
		gotB[i] = string(b[idx])
	}
	sort.Strings(gotB)
	if len(gotB) != 2 || gotB[0] != "age" || gotB[1] != "education" {
		t.Errorf("responder intersection = %v", gotB)
	}
}

func TestIntersectEmptyAndDisjoint(t *testing.T) {
	g := testGroup(t)
	ia, ib := runIntersect(t, g, [][]byte{[]byte("x")}, [][]byte{[]byte("y")})
	if len(ia) != 0 || len(ib) != 0 {
		t.Errorf("disjoint sets intersected: %v, %v", ia, ib)
	}
	ia, ib = runIntersect(t, g, nil, [][]byte{[]byte("y")})
	if len(ia) != 0 || len(ib) != 0 {
		t.Errorf("empty set intersected: %v, %v", ia, ib)
	}
}

// Property: intersection computed privately equals the plain intersection
// for random small sets.
func TestIntersectProperty(t *testing.T) {
	g := testGroup(t)
	f := func(seedA, seedB uint8) bool {
		mk := func(seed uint8) [][]byte {
			var out [][]byte
			for i := 0; i < 6; i++ {
				if seed&(1<<i) != 0 {
					out = append(out, []byte{byte('a' + i)})
				}
			}
			return out
		}
		a, b := mk(seedA), mk(seedB)
		ia, ib := runIntersect(t, g, a, b)
		want := map[string]bool{}
		inB := map[string]bool{}
		for _, e := range b {
			inB[string(e)] = true
		}
		for _, e := range a {
			if inB[string(e)] {
				want[string(e)] = true
			}
		}
		if len(ia) != len(want) || len(ib) != len(want) {
			return false
		}
		for _, idx := range ia {
			if !want[string(a[idx])] {
				return false
			}
		}
		for _, idx := range ib {
			if !want[string(b[idx])] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectRejectsInvalidGroup(t *testing.T) {
	ca, _ := net.Pipe()
	defer ca.Close()
	if _, err := Intersect(ca, &Group{}, nil, true, rand.Reader); err == nil {
		t.Error("invalid group should fail")
	}
}

func TestIntersectTransportFailure(t *testing.T) {
	g := testGroup(t)
	ca, cb := net.Pipe()
	cb.Close() // peer gone: the first send must fail cleanly
	defer ca.Close()
	if _, err := Intersect(ca, g, [][]byte{[]byte("x")}, true, rand.Reader); err == nil {
		t.Error("closed peer should fail")
	}
}

func TestIntersectRejectsOutOfGroupElements(t *testing.T) {
	g := testGroup(t)
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	// A misbehaving responder sends an element outside the group.
	go func() {
		dec := gobDecoder(cb)
		var in []*big.Int
		dec.Decode(&in) // consume initiator's round 1
		enc := gobEncoder(cb)
		bad := new(big.Int).Add(g.P, big.NewInt(5))
		enc.Encode([]*big.Int{bad})
	}()
	if _, err := Intersect(ca, g, [][]byte{[]byte("x")}, true, rand.Reader); err == nil {
		t.Error("out-of-group element should be rejected")
	}
}

func TestIntersectPeerShrinksOurList(t *testing.T) {
	g := testGroup(t)
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	go func() {
		dec := gobDecoder(cb)
		enc := gobEncoder(cb)
		var in []*big.Int
		dec.Decode(&in)          // round 1 from initiator
		enc.Encode([]*big.Int{}) // empty own set
		var dbl []*big.Int
		dec.Decode(&dbl)                      // initiator's double of our empty set
		enc.Encode([]*big.Int{big.NewInt(4)}) // wrong arity back
	}()
	if _, err := Intersect(ca, g, [][]byte{[]byte("x"), []byte("y")}, true, rand.Reader); err == nil {
		t.Error("arity mismatch from peer should be rejected")
	}
}
