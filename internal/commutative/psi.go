package commutative

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/big"
)

// Intersect runs the two-party private set intersection protocol of
// Agrawal et al. (SIGMOD 2003) over the stream: both parties end up
// knowing which of their *own* elements are in the intersection — and
// nothing about the peer's other elements beyond the set size.
//
// Exactly one party must call with initiator = true. The group must be
// agreed beforehand (DefaultGroup, or exchanged out of band); rw carries
// gob frames and must be a reliable ordered stream (net.Conn, net.Pipe).
//
// The returned slice holds the indexes into elements that are present in
// the peer's set.
func Intersect(rw io.ReadWriter, group *Group, elements [][]byte, initiator bool, random io.Reader) ([]int, error) {
	if !group.Valid() {
		return nil, fmt.Errorf("commutative: invalid group")
	}
	key, err := group.NewKey(random)
	if err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(rw)
	dec := gob.NewDecoder(rw)

	// Round 1: exchange singly-encrypted sets. The order of our list is
	// the order of `elements`, so the doubly-encrypted list we get back
	// aligns with our indexes.
	ours := make([]*big.Int, len(elements))
	for i, e := range elements {
		ours[i] = key.EncryptBytes(e)
	}
	var theirs []*big.Int
	if initiator {
		if err := send(enc, ours); err != nil {
			return nil, err
		}
		if theirs, err = recv(dec); err != nil {
			return nil, err
		}
	} else {
		if theirs, err = recv(dec); err != nil {
			return nil, err
		}
		if err := send(enc, ours); err != nil {
			return nil, err
		}
	}

	// Round 2: double-encrypt the peer's list and return it in the
	// received order; keep our own copy as the comparison set.
	doubleTheirs := make([]*big.Int, len(theirs))
	for i, x := range theirs {
		if err := checkElement(group, x); err != nil {
			return nil, err
		}
		doubleTheirs[i] = key.Encrypt(x)
	}
	var doubleOurs []*big.Int
	if initiator {
		if err := send(enc, doubleTheirs); err != nil {
			return nil, err
		}
		if doubleOurs, err = recv(dec); err != nil {
			return nil, err
		}
	} else {
		if doubleOurs, err = recv(dec); err != nil {
			return nil, err
		}
		if err := send(enc, doubleTheirs); err != nil {
			return nil, err
		}
	}
	if len(doubleOurs) != len(elements) {
		return nil, fmt.Errorf("commutative: peer returned %d elements, sent %d", len(doubleOurs), len(elements))
	}

	// Intersection: our elements whose double encryption appears in the
	// peer's double-encrypted set (commutativity makes the two double
	// encryptions of a common element identical).
	peerSet := make(map[string]struct{}, len(doubleTheirs))
	for _, x := range doubleTheirs {
		peerSet[string(x.Bytes())] = struct{}{}
	}
	var matched []int
	for i, x := range doubleOurs {
		if err := checkElement(group, x); err != nil {
			return nil, err
		}
		if _, ok := peerSet[string(x.Bytes())]; ok {
			matched = append(matched, i)
		}
	}
	return matched, nil
}

func send(enc *gob.Encoder, elems []*big.Int) error {
	if err := enc.Encode(elems); err != nil {
		return fmt.Errorf("commutative: sending elements: %w", err)
	}
	return nil
}

func recv(dec *gob.Decoder) ([]*big.Int, error) {
	var elems []*big.Int
	if err := dec.Decode(&elems); err != nil {
		return nil, fmt.Errorf("commutative: receiving elements: %w", err)
	}
	return elems, nil
}

func checkElement(group *Group, x *big.Int) error {
	if x == nil || x.Sign() <= 0 || x.Cmp(group.P) >= 0 {
		return fmt.Errorf("commutative: element outside the group")
	}
	return nil
}
