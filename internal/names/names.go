// Package names provides the string-attribute workload for the paper's
// future-work extension to alphanumeric attributes (Section VIII): finite
// dictionaries of person names, prefix generalization hierarchies over
// them, and a corruption model that replaces values with close-by
// dictionary spellings (the classic dirty-linkage scenario that motivates
// edit distance over exact equality).
package names

import (
	"fmt"
	"math/rand"
	"sort"

	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/vgh"
)

// Surnames is the surname dictionary, including clusters of near-identical
// spellings (smith/smyth/smithe…) so edit-distance matching has real work
// to do.
var Surnames = []string{
	"smith", "smyth", "smithe", "schmidt", "schmitt", "stone", "stanton",
	"jones", "johns", "johnson", "johnston", "johnstone", "jonson",
	"williams", "wilson", "willson", "willis", "walters", "watts", "watson",
	"brown", "browne", "braun", "bronson", "brennan", "brannon",
	"taylor", "tayler", "tyler", "thomas", "thompson", "thomson", "tomson",
	"anderson", "andersen", "andrews", "armstrong", "arnold",
	"martin", "martins", "martinez", "marsh", "marshall", "mason",
	"clark", "clarke", "carter", "cartwright", "carson", "clayton",
	"harris", "harrison", "hart", "hartman", "hayes", "haynes",
	"lewis", "lucas", "lukas", "lopez", "lowe", "lowell",
	"miller", "millar", "mills", "milner", "mitchell", "mitchel",
	"roberts", "robertson", "robinson", "robson", "rogers", "rodgers",
	"walker", "wallace", "wallis", "ward", "warden", "warner",
	"young", "yonge", "yates", "yeats",
}

// GivenNames is the given-name dictionary.
var GivenNames = []string{
	"james", "john", "jon", "robert", "michael", "micheal", "william",
	"david", "richard", "joseph", "thomas", "charles", "christopher",
	"daniel", "matthew", "mathew", "anthony", "mark", "marc", "donald",
	"steven", "stephen", "paul", "andrew", "joshua", "kenneth", "kevin",
	"mary", "patricia", "jennifer", "jenifer", "linda", "elizabeth",
	"elisabeth", "barbara", "susan", "suzan", "jessica", "sarah", "sara",
	"karen", "katherine", "catherine", "kathryn", "nancy", "lisa", "betty",
	"margaret", "sandra", "ashley", "ashleigh", "dorothy", "kimberly",
}

// Attribute names of the string workload schema.
const (
	AttrSurname = "surname"
	AttrGiven   = "given_name"
	AttrAge     = "age"
)

// Schema builds the string workload: surname under a two-level prefix
// hierarchy, given name under a one-level prefix hierarchy, and age.
func Schema() *dataset.Schema {
	sur, err := vgh.PrefixHierarchy(AttrSurname, Surnames, 1, 2)
	if err != nil {
		panic(fmt.Sprintf("names: building surname hierarchy: %v", err))
	}
	giv, err := vgh.PrefixHierarchy(AttrGiven, GivenNames, 1)
	if err != nil {
		panic(fmt.Sprintf("names: building given-name hierarchy: %v", err))
	}
	return dataset.MustSchema(
		dataset.CatAttr(sur),
		dataset.CatAttr(giv),
		dataset.NumAttr(vgh.MustIntervalHierarchy(AttrAge, 17, 81, 2, 3)),
	)
}

// Generate synthesizes n person records over the schema.
func Generate(schema *dataset.Schema, n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(schema)
	surIdx, _ := schema.Index(AttrSurname)
	givIdx, _ := schema.Index(AttrGiven)
	ageIdx, _ := schema.Index(AttrAge)
	sur := schema.Attr(surIdx).Hierarchy
	giv := schema.Attr(givIdx).Hierarchy
	for i := 0; i < n; i++ {
		rec := dataset.Record{EntityID: i, Cells: make([]dataset.Cell, schema.Len())}
		rec.Cells[surIdx] = dataset.Cell{Node: sur.Leaf(rng.Intn(sur.NumLeaves()))}
		rec.Cells[givIdx] = dataset.Cell{Node: giv.Leaf(rng.Intn(giv.NumLeaves()))}
		rec.Cells[ageIdx] = dataset.NumCell(float64(17 + rng.Intn(63)))
		d.MustAppend(rec)
	}
	return d
}

// Corrupt returns a copy of d in which each surname is, with probability
// rate, replaced by one of its nearest dictionary neighbours under edit
// distance — a misspelling that stays inside the finite domain. This is
// the noise an exact-equality matcher cannot see through but an
// edit-distance rule with θ ≥ 1 edit can.
func Corrupt(d *dataset.Dataset, rate float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	schema := d.Schema()
	surIdx, _ := schema.Index(AttrSurname)
	sur := schema.Attr(surIdx).Hierarchy
	neighbours := nearestNeighbours(sur, 3)
	out := dataset.New(schema)
	for _, rec := range d.Records() {
		if rng.Float64() < rate {
			lo, _ := rec.Cells[surIdx].Node.LeafRange()
			cands := neighbours[lo]
			cells := make([]dataset.Cell, len(rec.Cells))
			copy(cells, rec.Cells)
			cells[surIdx] = dataset.Cell{Node: sur.Leaf(cands[rng.Intn(len(cands))])}
			rec.Cells = cells
		}
		out.MustAppend(rec)
	}
	return out
}

// nearestNeighbours precomputes, for every leaf, the k leaves at minimal
// positive edit distance.
func nearestNeighbours(h *vgh.Hierarchy, k int) [][]int {
	n := h.NumLeaves()
	out := make([][]int, n)
	type cand struct {
		idx int
		d   int
	}
	for i := 0; i < n; i++ {
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			cands = append(cands, cand{idx: j, d: distance.Levenshtein(h.Leaf(i).Value, h.Leaf(j).Value)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].idx < cands[b].idx
		})
		m := k
		if m > len(cands) {
			m = len(cands)
		}
		picks := make([]int, m)
		for x := 0; x < m; x++ {
			picks[x] = cands[x].idx
		}
		out[i] = picks
	}
	return out
}

// Rule builds the string workload's matching rule: normalized edit
// distance on the surname with threshold editTheta, exact equality on the
// given name, and age within ageTheta of the range.
func Rule(schema *dataset.Schema, editTheta, ageTheta float64) (metrics []distance.Metric, thresholds []float64, qids []int, err error) {
	qids, err = schema.Resolve([]string{AttrSurname, AttrGiven, AttrAge})
	if err != nil {
		return nil, nil, nil, err
	}
	sur := schema.Attr(qids[0]).Hierarchy
	metrics = []distance.Metric{
		distance.NewEdit(sur),
		distance.Hamming{},
		distance.Euclidean{Norm: schema.Attr(qids[2]).Intervals.Range()},
	}
	thresholds = []float64{editTheta, 0.5, ageTheta}
	return metrics, thresholds, qids, nil
}
