package names

import (
	"testing"

	"pprl/internal/blocking"
	"pprl/internal/distance"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if s.Len() != 3 {
		t.Fatalf("schema has %d attributes", s.Len())
	}
	surIdx, ok := s.Index(AttrSurname)
	if !ok {
		t.Fatal("no surname attribute")
	}
	sur := s.Attr(surIdx).Hierarchy
	if err := sur.Validate(); err != nil {
		t.Fatal(err)
	}
	if sur.NumLeaves() != len(Surnames) {
		t.Errorf("surname leaves = %d, want %d", sur.NumLeaves(), len(Surnames))
	}
	if sur.Height() != 3 {
		t.Errorf("surname hierarchy height = %d, want 3 (ANY, x*, xy*, leaf)", sur.Height())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Schema()
	a := Generate(s, 100, 5)
	b := Generate(s, 100, 5)
	for i := 0; i < 100; i++ {
		for j := range a.Record(i).Cells {
			if a.Record(i).Cells[j] != b.Record(i).Cells[j] {
				t.Fatalf("record %d cell %d differs", i, j)
			}
		}
	}
}

func TestCorrupt(t *testing.T) {
	s := Schema()
	d := Generate(s, 400, 6)
	c := Corrupt(d, 0.3, 7)
	if c.Len() != d.Len() {
		t.Fatalf("Corrupt changed the record count")
	}
	surIdx, _ := s.Index(AttrSurname)
	changed, close := 0, 0
	for i := 0; i < d.Len(); i++ {
		orig := d.Record(i).Cells[surIdx].Node.Value
		corr := c.Record(i).Cells[surIdx].Node.Value
		if orig != corr {
			changed++
			// Corruptions are nearest-neighbour misspellings; isolated
			// dictionary words (e.g. "armstrong") can sit several edits
			// from anything, but most words have close neighbours.
			if distance.Levenshtein(orig, corr) <= 2 {
				close++
			}
		}
	}
	if changed < 60 || changed > 180 {
		t.Errorf("changed %d of 400 records at rate 0.3", changed)
	}
	if close < changed/2 {
		t.Errorf("only %d of %d corruptions are within 2 edits; expected near-miss typos", close, changed)
	}
	// The original dataset is untouched.
	d2 := Generate(s, 400, 6)
	for i := 0; i < d.Len(); i++ {
		if d.Record(i).Cells[surIdx] != d2.Record(i).Cells[surIdx] {
			t.Fatal("Corrupt mutated its input")
		}
	}
}

func TestRuleRecoversTypos(t *testing.T) {
	// The point of the extension: with edit distance, a misspelled
	// surname still matches; with Hamming it does not.
	s := Schema()
	metrics, thresholds, qids, err := Rule(s, 0.25, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	editRule, err := blocking.NewRule(metrics, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	hamming := []distance.Metric{distance.Hamming{}, metrics[1], metrics[2]}
	exactRule, err := blocking.NewRule(hamming, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	d := Generate(s, 200, 8)
	c := Corrupt(d, 1.0, 9) // corrupt every surname
	editMatches, exactMatches := 0, 0
	for i := 0; i < d.Len(); i++ {
		a := blocking.RecordSequence(d, qids, i)
		b := blocking.RecordSequence(c, qids, i)
		if editRule.DecideExact(a, b) {
			editMatches++
		}
		if exactRule.DecideExact(a, b) {
			exactMatches++
		}
	}
	if exactMatches != 0 {
		t.Errorf("Hamming matched %d corrupted pairs; typos should break equality", exactMatches)
	}
	if editMatches < d.Len()/3 {
		t.Errorf("edit rule recovered only %d of %d corrupted pairs", editMatches, d.Len())
	}
}
