package core

import (
	"fmt"
	"time"

	"pprl/internal/blocking"
	"pprl/internal/match"
	"pprl/internal/metrics"
)

// Timings records wall-clock durations of the pipeline stages, the
// non-cryptographic costs the paper measures in Section VI.
type Timings struct {
	AnonymizeAlice time.Duration
	AnonymizeBob   time.Duration
	Blocking       time.Duration
	SMC            time.Duration
}

// Result is the complete labeling of the |R|×|S| pair space produced by a
// linkage run, plus the cost accounting needed to reproduce the paper's
// measurements.
type Result struct {
	// Block is the blocking step's outcome over the anonymized views.
	Block *blocking.Result
	// Allowance is the SMC budget that applied (in record pairs).
	Allowance int64
	// Invocations is the number of SMC comparisons actually performed.
	Invocations int64
	// SMCBytes is the protocol traffic of the SMC step; zero when the
	// plaintext oracle resolved the pairs.
	SMCBytes int64
	// SMCWorkers is the resolved parallelism of the SMC step: how many
	// protocol lanes the comparator sharded comparisons across.
	SMCWorkers int
	// Resume accounts for verdicts stitched in from a durable journal
	// when the run continued an interrupted one; zero for fresh runs.
	// Invocations counts only live comparisons, so a resumed run reports
	// Invocations + Resume.ReplayedAllowance ≤ Allowance.
	Resume metrics.ResumeStats
	// Timings holds per-stage durations.
	Timings Timings

	cfg    Config
	rule   *blocking.Rule
	qids   []int
	bobLen int

	// smcLabels maps resolved pair keys to their verdicts.
	smcLabels  map[int64]bool
	smcMatched int64
	// resolvedInGroup counts how many pairs of each Unknown group pair
	// were resolved by SMC.
	resolvedInGroup map[[2]int]int
	// residualMatch is true under MaximizeRecall: unresolved Unknown
	// pairs default to match.
	residualMatch bool
	// groupVerdicts, under TrainClassifier, labels whole Unknown group
	// pairs via the trained classifier.
	groupVerdicts map[[2]int]bool
}

// QIDs returns the resolved quasi-identifier positions.
func (r *Result) QIDs() []int { return r.qids }

// Strategy returns the residual-labeling strategy that produced this
// result; external verifiers use it to decide which invariants apply
// (e.g. precision is structurally 1.0 only under MaximizePrecision).
func (r *Result) Strategy() Strategy { return r.cfg.Strategy }

// Rule returns the matching rule in effect.
func (r *Result) Rule() *blocking.Rule { return r.rule }

// PairMatched returns the final label of record pair (i, j): i indexes
// Alice's relation, j Bob's.
func (r *Result) PairMatched(i, j int) bool {
	ri := r.Block.R.ClassOf[i]
	si := r.Block.S.ClassOf[j]
	switch r.Block.Label(ri, si) {
	case blocking.Match:
		return true
	case blocking.NonMatch:
		return false
	}
	if v, ok := r.smcLabels[pairKey(i, j, r.bobLen)]; ok {
		return v
	}
	if r.groupVerdicts != nil {
		return r.groupVerdicts[[2]int{ri, si}]
	}
	return r.residualMatch
}

// MatchedPairCount returns |reported matches| exactly, without
// enumerating the pair space.
func (r *Result) MatchedPairCount() int64 {
	total := r.Block.MatchedPairs + r.smcMatched
	switch {
	case r.groupVerdicts != nil:
		for key, matched := range r.groupVerdicts {
			if !matched {
				continue
			}
			gpPairs := int64(r.Block.R.Classes[key[0]].Size()) * int64(r.Block.S.Classes[key[1]].Size())
			resolved := int64(r.resolvedInGroup[key])
			total += gpPairs - resolved
		}
	case r.residualMatch:
		resolved := int64(len(r.smcLabels))
		total += r.Block.UnknownPairs - resolved
	}
	return total
}

// SMCResolvedPairs returns how many pairs the SMC step labeled.
func (r *Result) SMCResolvedPairs() int64 { return int64(len(r.smcLabels)) }

// SMCRate returns the SMC step's throughput in comparisons per second,
// or 0 when no comparisons ran.
func (r *Result) SMCRate() float64 {
	if r.Invocations == 0 || r.Timings.SMC <= 0 {
		return 0
	}
	return float64(r.Invocations) / r.Timings.SMC.Seconds()
}

// BlockingEfficiency is the paper's primary blocking measure.
func (r *Result) BlockingEfficiency() float64 { return r.Block.Efficiency() }

// Evaluate scores the result against ground truth (the truly matching
// pairs per the exact decision rule) and returns the confusion summary.
// Under MaximizePrecision the precision is 1 by construction.
func (r *Result) Evaluate(truth []match.Pair) metrics.Confusion {
	var tp int64
	for _, p := range truth {
		if r.PairMatched(p.I, p.J) {
			tp++
		}
	}
	reported := r.MatchedPairCount()
	return metrics.Confusion{
		TruePositives:  tp,
		FalsePositives: reported - tp,
		FalseNegatives: int64(len(truth)) - tp,
	}
}

// Summary renders a one-line overview for logs and CLIs.
func (r *Result) Summary() string {
	return fmt.Sprintf("pairs=%d blocked=%.2f%% unknown=%d allowance=%d smc=%d matched=%d strategy=%v",
		r.Block.TotalPairs(), 100*r.BlockingEfficiency(), r.Block.UnknownPairs,
		r.Allowance, r.Invocations, r.MatchedPairCount(), r.cfg.Strategy)
}

// trainResidualClassifier implements the paper's strategy 3 (classifier
// c3): using the randomly selected SMC outcomes as training data, it
// learns a threshold τ on the average expected distance of a group pair's
// generalizations that minimizes training error, then labels every
// Unknown group pair by comparing its feature to τ. Pairs already
// resolved by SMC keep their exact labels (PairMatched checks smcLabels
// first).
func trainResidualClassifier(res *Result, ordered []blocking.GroupPair, rule *blocking.Rule) map[[2]int]bool {
	type example struct {
		feature float64
		matched bool
		weight  int
	}
	feature := func(gp blocking.GroupPair) float64 {
		exp := rule.ExpectedDistances(
			res.Block.R.Classes[gp.RI].Sequence,
			res.Block.S.Classes[gp.SI].Sequence, nil)
		sum := 0.0
		for _, v := range exp {
			sum += v
		}
		return sum / float64(len(exp))
	}
	// Build one training example per (group, verdict) with the count of
	// SMC pairs behind it. Walk the same order the budget was spent in.
	var examples []example
	for _, gp := range ordered {
		resolved := res.resolvedInGroup[[2]int{gp.RI, gp.SI}]
		if resolved == 0 {
			break // budget ran out here; later groups are unresolved
		}
		f := feature(gp)
		matchedCount := 0
		rc := &res.Block.R.Classes[gp.RI]
		sc := &res.Block.S.Classes[gp.SI]
		seen := 0
	count:
		for _, i := range rc.Members {
			for _, j := range sc.Members {
				if seen >= resolved {
					break count
				}
				if res.smcLabels[pairKey(i, j, res.bobLen)] {
					matchedCount++
				}
				seen++
			}
		}
		if matchedCount > 0 {
			examples = append(examples, example{feature: f, matched: true, weight: matchedCount})
		}
		if resolved-matchedCount > 0 {
			examples = append(examples, example{feature: f, matched: false, weight: resolved - matchedCount})
		}
	}
	verdicts := make(map[[2]int]bool, len(ordered))
	if len(examples) == 0 {
		// No training data (allowance 0): conservative all-non-match.
		for _, gp := range ordered {
			verdicts[[2]int{gp.RI, gp.SI}] = false
		}
		return verdicts
	}
	// Sweep candidate thresholds: τ just below/above each feature value.
	candidates := []float64{-1}
	for _, e := range examples {
		candidates = append(candidates, e.feature)
	}
	bestTau, bestErr := -1.0, int(^uint(0)>>1)
	for _, tau := range candidates {
		errs := 0
		for _, e := range examples {
			pred := e.feature <= tau
			if pred != e.matched {
				errs += e.weight
			}
		}
		if errs < bestErr {
			bestErr, bestTau = errs, tau
		}
	}
	for _, gp := range ordered {
		verdicts[[2]int{gp.RI, gp.SI}] = feature(gp) <= bestTau
	}
	return verdicts
}
