package core

import (
	"fmt"
	"time"

	"pprl/internal/blocking"
	"pprl/internal/match"
	"pprl/internal/metrics"
)

// Timings records wall-clock durations of the pipeline stages, the
// non-cryptographic costs the paper measures in Section VI.
type Timings struct {
	AnonymizeAlice time.Duration
	AnonymizeBob   time.Duration
	// DPNoise is the cost of drawing and attaching the Laplace-noised
	// bin counts in DP mode; zero otherwise.
	DPNoise  time.Duration
	Blocking time.Duration
	Tier     time.Duration
	SMC      time.Duration
}

// DPStats is the privacy and padding accounting of a differentially
// private blocking run (Config.Epsilon > 0); nil otherwise. Epsilon and
// delta compose sequentially across the two holders' releases: the run's
// total privacy spend against any one individual is (TotalEpsilon,
// TotalDelta) in the worst case of a record present on both sides.
type DPStats struct {
	// AliceEpsilon and BobEpsilon are the per-release budgets.
	AliceEpsilon float64 `json:"alice_epsilon"`
	BobEpsilon   float64 `json:"bob_epsilon"`
	// TotalEpsilon is the sequential composition of both releases.
	TotalEpsilon float64 `json:"total_epsilon"`
	// Delta is each release's truncation failure mass; TotalDelta the
	// composed mass.
	Delta      float64 `json:"delta"`
	TotalDelta float64 `json:"total_delta"`
	// Level is the VGH depth the holders binned at.
	Level int `json:"level"`
	// AliceBins and BobBins count the published bins.
	AliceBins int `json:"alice_bins"`
	BobBins   int `json:"bob_bins"`
	// AliceDummies and BobDummies are the total padding records each
	// release added across all bins.
	AliceDummies int64 `json:"alice_dummies"`
	BobDummies   int64 `json:"bob_dummies"`
	// DummyPairs is the padding cost over candidate bin pairs: the
	// comparisons a protocol run over the padded bins would waste on at
	// least one dummy record.
	DummyPairs int64 `json:"dummy_pairs"`
	// DummySpent is the share of the SMC allowance charged for dummy
	// comparisons (Allowance = Invocations + replayed + DummySpent +
	// unspent remainder).
	DummySpent int64 `json:"dummy_spent"`
}

// Result is the complete labeling of the |R|×|S| pair space produced by a
// linkage run, plus the cost accounting needed to reproduce the paper's
// measurements.
type Result struct {
	// Block is the blocking step's outcome over the anonymized views.
	Block *blocking.Result
	// Allowance is the SMC budget that applied (in record pairs).
	Allowance int64
	// Invocations is the number of SMC comparisons actually performed.
	Invocations int64
	// SMCBytes is the protocol traffic of the SMC step; zero when the
	// plaintext oracle resolved the pairs.
	SMCBytes int64
	// SMCWorkers is the resolved parallelism of the SMC step: how many
	// protocol lanes the comparator sharded comparisons across.
	SMCWorkers int
	// Resume accounts for verdicts stitched in from a durable journal
	// when the run continued an interrupted one; zero for fresh runs.
	// Invocations counts only live comparisons, so a resumed run reports
	// Invocations + Resume.ReplayedAllowance ≤ Allowance.
	Resume metrics.ResumeStats
	// TierUncertainPairs counts the Unknown pairs the triage tier could
	// not confidently label — the band the SMC budget is spent on. Zero
	// when the tier is off.
	TierUncertainPairs int64
	// DP is the privacy and padding accounting of a DP-blocking run;
	// nil when Config.Epsilon was unset.
	DP *DPStats
	// Timings holds per-stage durations.
	Timings Timings

	cfg    Config
	rule   *blocking.Rule
	qids   []int
	bobLen int

	// smcLabels maps resolved pair keys to their verdicts.
	smcLabels  map[int64]bool
	smcMatched int64
	// resolvedInGroup counts how many pairs of each Unknown group pair
	// were resolved by SMC.
	resolvedInGroup map[[2]int]int
	// residualMatch is true under MaximizeRecall: unresolved Unknown
	// pairs default to match.
	residualMatch bool
	// groupVerdicts, under TrainClassifier, labels whole Unknown group
	// pairs via the trained classifier.
	groupVerdicts map[[2]int]bool

	// tierLabels maps pair keys the triage tier labeled (heuristically)
	// to their verdicts; nil when the tier is off. A pair never appears
	// in both tierLabels and smcLabels: purchased verdicts are exact and
	// the tier skips them.
	tierLabels                  map[int64]bool
	tierMatched, tierNonMatched int64
	// tierInGroup counts how many pairs of each Unknown group pair the
	// tier labeled, mirroring resolvedInGroup for the SMC step.
	tierInGroup map[[2]int]int
}

// applySMC stores one exact SMC verdict — live or replayed — with its
// group accounting.
func (r *Result) applySMC(key int64, group [2]int, matched bool) {
	r.smcLabels[key] = matched
	if matched {
		r.smcMatched++
	}
	r.resolvedInGroup[group]++
}

// QIDs returns the resolved quasi-identifier positions.
func (r *Result) QIDs() []int { return r.qids }

// Strategy returns the residual-labeling strategy that produced this
// result; external verifiers use it to decide which invariants apply
// (e.g. precision is structurally 1.0 only under MaximizePrecision).
func (r *Result) Strategy() Strategy { return r.cfg.Strategy }

// Rule returns the matching rule in effect.
func (r *Result) Rule() *blocking.Rule { return r.rule }

// PairMatched returns the final label of record pair (i, j): i indexes
// Alice's relation, j Bob's. Precedence mirrors the labels' certainty:
// blocking (certain) → SMC verdicts (exact, purchased) → tier labels
// (heuristic) → the residual strategy.
func (r *Result) PairMatched(i, j int) bool {
	ri := r.Block.R.ClassOf[i]
	si := r.Block.S.ClassOf[j]
	switch r.Block.Label(ri, si) {
	case blocking.Match:
		return true
	case blocking.NonMatch:
		return false
	}
	key := pairKey(i, j, r.bobLen)
	if v, ok := r.smcLabels[key]; ok {
		return v
	}
	if v, ok := r.tierLabels[key]; ok {
		return v
	}
	if r.groupVerdicts != nil {
		return r.groupVerdicts[[2]int{ri, si}]
	}
	return r.residualMatch
}

// TierMode reports the tier configuration this result ran under.
func (r *Result) TierMode() TierMode { return r.cfg.Tier }

// TierThresholds returns the (low, high) Dice thresholds in effect;
// (0, 0) when the tier is off.
func (r *Result) TierThresholds() (low, high float64) { return r.cfg.TierLow, r.cfg.TierHigh }

// TierLabel reports the tier's verdict for pair (i, j), and whether the
// tier labeled it at all. Pairs resolved by blocking or SMC are never
// tier-labeled.
func (r *Result) TierLabel(i, j int) (matched, ok bool) {
	matched, ok = r.tierLabels[pairKey(i, j, r.bobLen)]
	return matched, ok
}

// SMCLabel reports the purchased (exact) SMC verdict for pair (i, j),
// and whether the SMC step resolved it at all.
func (r *Result) SMCLabel(i, j int) (matched, ok bool) {
	matched, ok = r.smcLabels[pairKey(i, j, r.bobLen)]
	return matched, ok
}

// TierResolvedPairs returns how many Unknown pairs the tier labeled.
func (r *Result) TierResolvedPairs() int64 { return int64(len(r.tierLabels)) }

// TierMatchedPairs and TierNonMatchedPairs split the tier's labels.
func (r *Result) TierMatchedPairs() int64    { return r.tierMatched }
func (r *Result) TierNonMatchedPairs() int64 { return r.tierNonMatched }

// MatchedPairCount returns |reported matches| exactly, without
// enumerating the pair space.
func (r *Result) MatchedPairCount() int64 {
	total := r.Block.MatchedPairs + r.smcMatched + r.tierMatched
	switch {
	case r.groupVerdicts != nil:
		for key, matched := range r.groupVerdicts {
			if !matched {
				continue
			}
			gpPairs := int64(r.Block.R.Classes[key[0]].Size()) * int64(r.Block.S.Classes[key[1]].Size())
			resolved := int64(r.resolvedInGroup[key]) + int64(r.tierInGroup[key])
			total += gpPairs - resolved
		}
	case r.residualMatch:
		resolved := int64(len(r.smcLabels)) + int64(len(r.tierLabels))
		total += r.Block.UnknownPairs - resolved
	}
	return total
}

// SMCResolvedPairs returns how many pairs the SMC step labeled.
func (r *Result) SMCResolvedPairs() int64 { return int64(len(r.smcLabels)) }

// SMCRate returns the SMC step's throughput in comparisons per second,
// or 0 when no comparisons ran.
func (r *Result) SMCRate() float64 {
	if r.Invocations == 0 || r.Timings.SMC <= 0 {
		return 0
	}
	return float64(r.Invocations) / r.Timings.SMC.Seconds()
}

// BlockingEfficiency is the paper's primary blocking measure.
func (r *Result) BlockingEfficiency() float64 { return r.Block.Efficiency() }

// Evaluate scores the result against ground truth (the truly matching
// pairs per the exact decision rule) and returns the confusion summary.
// Under MaximizePrecision the precision is 1 by construction.
func (r *Result) Evaluate(truth []match.Pair) metrics.Confusion {
	var tp int64
	for _, p := range truth {
		if r.PairMatched(p.I, p.J) {
			tp++
		}
	}
	reported := r.MatchedPairCount()
	return metrics.Confusion{
		TruePositives:  tp,
		FalsePositives: reported - tp,
		FalseNegatives: int64(len(truth)) - tp,
	}
}

// Summary renders a one-line overview for logs and CLIs.
func (r *Result) Summary() string {
	s := fmt.Sprintf("pairs=%d blocked=%.2f%% unknown=%d allowance=%d smc=%d matched=%d strategy=%v",
		r.Block.TotalPairs(), 100*r.BlockingEfficiency(), r.Block.UnknownPairs,
		r.Allowance, r.Invocations, r.MatchedPairCount(), r.cfg.Strategy)
	if r.cfg.Tier != TierOff {
		s += fmt.Sprintf(" tier=%v tier-labeled=%d/%d uncertain=%d",
			r.cfg.Tier, r.tierMatched, r.tierNonMatched, r.TierUncertainPairs)
	}
	if r.DP != nil {
		s += fmt.Sprintf(" dp-eps=%v dp-delta=%v dummies=%d dummy-spent=%d",
			r.DP.TotalEpsilon, r.DP.TotalDelta, r.DP.AliceDummies+r.DP.BobDummies, r.DP.DummySpent)
	}
	return s
}

// trainResidualClassifier implements the paper's strategy 3 (classifier
// c3): using the randomly selected SMC outcomes as training data, it
// learns a threshold τ on the average expected distance of a group pair's
// generalizations that minimizes training error, then labels every
// Unknown group pair by comparing its feature to τ. Pairs already
// resolved by SMC keep their exact labels (PairMatched checks smcLabels
// first).
func trainResidualClassifier(res *Result, ordered []blocking.GroupPair, rule *blocking.Rule) map[[2]int]bool {
	type example struct {
		feature float64
		matched bool
		weight  int
	}
	feature := func(gp blocking.GroupPair) float64 {
		exp := rule.ExpectedDistances(
			res.Block.R.Classes[gp.RI].Sequence,
			res.Block.S.Classes[gp.SI].Sequence, nil)
		sum := 0.0
		for _, v := range exp {
			sum += v
		}
		return sum / float64(len(exp))
	}
	// Build one training example per (group, verdict) with the count of
	// SMC pairs behind it. Walk the same order the budget was spent in.
	var examples []example
	for _, gp := range ordered {
		resolved := res.resolvedInGroup[[2]int{gp.RI, gp.SI}]
		if resolved == 0 {
			if res.cfg.Tier == TierOff {
				break // budget ran out here; later groups are unresolved
			}
			// With the tier on, a group with no SMC verdicts may simply
			// have been tier-labeled end to end while the budget kept
			// flowing to later groups; keep scanning.
			continue
		}
		f := feature(gp)
		// Count the group's SMC outcomes by lookup rather than assuming
		// they occupy a prefix of the member enumeration: tier labels and
		// replayed cross-mode verdicts interleave with live purchases.
		matchedCount, seen := 0, 0
		rc := &res.Block.R.Classes[gp.RI]
		sc := &res.Block.S.Classes[gp.SI]
	count:
		for _, i := range rc.Members {
			for _, j := range sc.Members {
				if v, ok := res.smcLabels[pairKey(i, j, res.bobLen)]; ok {
					if v {
						matchedCount++
					}
					if seen++; seen == resolved {
						break count
					}
				}
			}
		}
		if matchedCount > 0 {
			examples = append(examples, example{feature: f, matched: true, weight: matchedCount})
		}
		if resolved-matchedCount > 0 {
			examples = append(examples, example{feature: f, matched: false, weight: resolved - matchedCount})
		}
	}
	verdicts := make(map[[2]int]bool, len(ordered))
	if len(examples) == 0 {
		// No training data (allowance 0): conservative all-non-match.
		for _, gp := range ordered {
			verdicts[[2]int{gp.RI, gp.SI}] = false
		}
		return verdicts
	}
	// Sweep candidate thresholds: τ just below/above each feature value.
	candidates := []float64{-1}
	for _, e := range examples {
		candidates = append(candidates, e.feature)
	}
	bestTau, bestErr := -1.0, int(^uint(0)>>1)
	for _, tau := range candidates {
		errs := 0
		for _, e := range examples {
			pred := e.feature <= tau
			if pred != e.matched {
				errs += e.weight
			}
		}
		if errs < bestErr {
			bestErr, bestTau = errs, tau
		}
	}
	for _, gp := range ordered {
		verdicts[[2]int{gp.RI, gp.SI}] = feature(gp) <= bestTau
	}
	return verdicts
}
