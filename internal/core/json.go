package core

import (
	"encoding/json"
	"time"

	"pprl/internal/metrics"
)

// ResultJSON is the stable wire form of a linkage Result, served by the
// job service's result endpoint and pprl-link's -json mode. It is a
// summary view: the full pair labeling is queried via PairMatched (or
// enumerated by the caller), not shipped.
type ResultJSON struct {
	TotalPairs         int64               `json:"total_pairs"`
	UnknownPairs       int64               `json:"unknown_pairs"`
	BlockingEfficiency float64             `json:"blocking_efficiency"`
	MatchedPairs       int64               `json:"matched_pairs"`
	Allowance          int64               `json:"allowance"`
	Invocations        int64               `json:"invocations"`
	SMCResolvedPairs   int64               `json:"smc_resolved_pairs"`
	SMCBytes           int64               `json:"smc_bytes"`
	SMCWorkers         int                 `json:"smc_workers"`
	Strategy           string              `json:"strategy"`
	Heuristic          string              `json:"heuristic"`
	Tier               string              `json:"tier"`
	TierMatchedPairs   int64               `json:"tier_matched_pairs"`
	TierNonMatched     int64               `json:"tier_nonmatched_pairs"`
	TierUncertainPairs int64               `json:"tier_uncertain_pairs"`
	DP                 *DPStats            `json:"dp,omitempty"`
	Resume             metrics.ResumeStats `json:"resume"`
	Timings            Timings             `json:"timings"`
}

// Summarize builds the wire form from a Result.
func (r *Result) Summarize() ResultJSON {
	return ResultJSON{
		TotalPairs:         r.Block.TotalPairs(),
		UnknownPairs:       r.Block.UnknownPairs,
		BlockingEfficiency: r.BlockingEfficiency(),
		MatchedPairs:       r.MatchedPairCount(),
		Allowance:          r.Allowance,
		Invocations:        r.Invocations,
		SMCResolvedPairs:   r.SMCResolvedPairs(),
		SMCBytes:           r.SMCBytes,
		SMCWorkers:         r.SMCWorkers,
		Strategy:           r.cfg.Strategy.String(),
		Heuristic:          r.cfg.Heuristic.Name(),
		Tier:               r.cfg.Tier.String(),
		TierMatchedPairs:   r.tierMatched,
		TierNonMatched:     r.tierNonMatched,
		TierUncertainPairs: r.TierUncertainPairs,
		DP:                 r.DP,
		Resume:             r.Resume,
		Timings:            r.Timings,
	}
}

// MarshalJSON implements json.Marshaler: a Result marshals as its
// ResultJSON summary.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Summarize())
}

// timingsJSON is Timings' wire form; durations travel as integer
// nanoseconds (time.Duration's native representation) under explicit
// names so consumers never guess the unit.
type timingsJSON struct {
	AnonymizeAliceNS int64 `json:"anonymize_alice_ns"`
	AnonymizeBobNS   int64 `json:"anonymize_bob_ns"`
	DPNoiseNS        int64 `json:"dp_noise_ns"`
	BlockingNS       int64 `json:"blocking_ns"`
	TierNS           int64 `json:"tier_ns"`
	SMCNS            int64 `json:"smc_ns"`
}

// MarshalJSON implements json.Marshaler with stable field names.
func (t Timings) MarshalJSON() ([]byte, error) {
	return json.Marshal(timingsJSON{
		AnonymizeAliceNS: int64(t.AnonymizeAlice),
		AnonymizeBobNS:   int64(t.AnonymizeBob),
		DPNoiseNS:        int64(t.DPNoise),
		BlockingNS:       int64(t.Blocking),
		TierNS:           int64(t.Tier),
		SMCNS:            int64(t.SMC),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Timings) UnmarshalJSON(data []byte) error {
	var w timingsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	t.AnonymizeAlice = time.Duration(w.AnonymizeAliceNS)
	t.AnonymizeBob = time.Duration(w.AnonymizeBobNS)
	t.DPNoise = time.Duration(w.DPNoiseNS)
	t.Blocking = time.Duration(w.BlockingNS)
	t.Tier = time.Duration(w.TierNS)
	t.SMC = time.Duration(w.SMCNS)
	return nil
}
