package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/dpblock"
	"pprl/internal/journal"
)

// dpCfg returns a DP-blocking config with a generous ε, so the noise is
// mostly padding and the tests see a non-trivial number of live
// purchases inside a small allowance.
func dpCfg() Config {
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.Epsilon = 8
	cfg.DPSeed = 7
	cfg.Allowance = 3000
	return cfg
}

func TestDPLinkEndToEnd(t *testing.T) {
	alice, bob := workload(t, 600, 42)
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, dpCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.DP == nil {
		t.Fatal("DP run carries no DPStats")
	}
	if res.DP.TotalEpsilon != 16 || res.DP.AliceEpsilon != 8 || res.DP.BobEpsilon != 8 {
		t.Errorf("epsilon accounting = %+v, want 8 + 8 = 16", res.DP)
	}
	if res.DP.Delta != dpblock.DefaultDelta || res.DP.Level != dpblock.DefaultLevel {
		t.Errorf("defaults not resolved: delta=%v level=%d", res.DP.Delta, res.DP.Level)
	}
	if res.DP.AliceBins != len(res.Block.R.Classes) || res.DP.BobBins != len(res.Block.S.Classes) {
		t.Errorf("bin counts %d/%d disagree with the views (%d/%d)",
			res.DP.AliceBins, res.DP.BobBins, len(res.Block.R.Classes), len(res.Block.S.Classes))
	}
	// DP blocking never labels Match: only exact layers have Match
	// authority, so precision stays structurally 1.0.
	if res.Block.MatchedPairs != 0 {
		t.Errorf("DP blocking labeled %d pairs Match", res.Block.MatchedPairs)
	}
	tr := truth(t, alice, bob, res)
	if conf := res.Evaluate(tr); conf.Precision() != 1 {
		t.Errorf("precision = %v, want exactly 1 under maximize-precision", conf.Precision())
	}
	// The allowance funds real comparisons plus the dummy shares; both
	// together never exceed it, and dummies charged never exceed the
	// total padding cost of the candidate bins.
	if spent := res.Invocations + res.DP.DummySpent; spent > res.Allowance {
		t.Errorf("spent %d (real %d + dummy %d) over allowance %d",
			spent, res.Invocations, res.DP.DummySpent, res.Allowance)
	}
	if res.DP.DummySpent > res.DP.DummyPairs {
		t.Errorf("charged %d dummy pairs, only %d exist", res.DP.DummySpent, res.DP.DummyPairs)
	}
	if res.Invocations == 0 {
		t.Error("workload bought no real comparisons; tests need a live budget")
	}
	if !strings.Contains(res.Summary(), "dp-eps=16") {
		t.Errorf("summary lacks DP accounting: %s", res.Summary())
	}
}

// TestDPCostShrinksWithEpsilon is the bench's key coupling at unit-test
// scale: with the seed fixed, a larger ε scales every Laplace draw and
// the truncation shift down, so noised counts — and therefore dummy
// charges — are pointwise no larger, the same allowance buys a superset
// of real comparisons, and matches can only be found, never lost.
func TestDPCostShrinksWithEpsilon(t *testing.T) {
	alice, bob := workload(t, 600, 43)
	run := func(eps float64) *Result {
		cfg := dpCfg()
		cfg.Epsilon = eps
		res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	tight, loose := run(0.5), run(8)
	if loose.DP.DummyPairs >= tight.DP.DummyPairs {
		t.Errorf("padding cost: ε=8 has %d dummy pairs, ε=0.5 has %d; want strictly fewer",
			loose.DP.DummyPairs, tight.DP.DummyPairs)
	}
	if loose.Invocations < tight.Invocations {
		t.Errorf("ε=8 bought %d real comparisons, ε=0.5 bought %d; want at least as many",
			loose.Invocations, tight.Invocations)
	}
	if loose.MatchedPairCount() < tight.MatchedPairCount() {
		t.Errorf("ε=8 matched %d, ε=0.5 matched %d; a longer purchase prefix cannot lose matches",
			loose.MatchedPairCount(), tight.MatchedPairCount())
	}
}

func TestDPConfigValidation(t *testing.T) {
	alice, bob := workload(t, 60, 5)
	link := func(mutate func(*Config)) error {
		cfg := dpCfg()
		mutate(&cfg)
		_, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		return err
	}
	if err := link(func(c *Config) { c.Epsilon = -1 }); err == nil {
		t.Error("negative Epsilon accepted")
	}
	if err := link(func(c *Config) { c.Epsilon = 0; c.DPDelta = 1e-6 }); err == nil ||
		!strings.Contains(err.Error(), "Epsilon") {
		t.Errorf("DPDelta without Epsilon: err = %v", err)
	}
	if err := link(func(c *Config) { c.DPDelta = 0.7 }); err == nil {
		t.Error("out-of-range DPDelta accepted")
	}
	if err := link(func(c *Config) { c.AliceAnonymizer = anonymize.NewDataFly() }); err == nil ||
		!strings.Contains(err.Error(), "dp binner") {
		t.Errorf("Epsilon with a k-anonymizer: err = %v", err)
	}
}

// TestDPLinkPrepared sweeps allowances over one prepared DP blocking
// result, and checks resolve refuses a block whose DP release disagrees
// with the config.
func TestDPLinkPrepared(t *testing.T) {
	alice, bob := workload(t, 600, 44)
	base, err := Link(Holder{Data: alice}, Holder{Data: bob}, dpCfg())
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for _, allowance := range []int64{100, 1000, 3000} {
		cfg := dpCfg()
		cfg.Allowance = allowance
		res, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, base.Block, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.MatchedPairCount(); got < prev {
			t.Errorf("allowance %d matched %d, less than the smaller allowance's %d", allowance, got, prev)
		} else {
			prev = got
		}
	}
	// ε mismatch between config and the prepared block must refuse.
	cfg := dpCfg()
	cfg.Epsilon = 2
	if _, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, base.Block, cfg); err == nil ||
		!strings.Contains(err.Error(), "disagree") {
		t.Errorf("ε mismatch: err = %v", err)
	}
	// A DP block under a non-DP config (and vice versa) must refuse.
	if _, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, base.Block, journalCfg()); err == nil {
		t.Error("DP block accepted under a k-anonymous config")
	}
	plain, err := Link(Holder{Data: alice}, Holder{Data: bob}, journalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, plain.Block, dpCfg()); err == nil {
		t.Error("k-anonymous block accepted under a DP config")
	}
}

// TestDPInterruptResumesExactly: a DP run interrupted mid-budget resumes
// into the identical labeling with identical spend — replayed purchases
// re-charge their dummy shares, so the stitched accounting matches an
// uninterrupted run's to the pair.
func TestDPInterruptResumesExactly(t *testing.T) {
	alice, bob := workload(t, 600, 45)
	path := filepath.Join(t.TempDir(), "dp.wal")

	cfgBase := dpCfg()
	cfgBase.SMCWorkers = 1
	base, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	if base.Invocations < 600 {
		t.Skipf("workload bought only %d pairs; need several chunks to interrupt mid-run", base.Invocations)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := journal.Create(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgBase
	cfg.Journal = &cancelAfter{Sink: w, n: 100, cancel: cancel}
	cfg.Context = ctx
	_, err = Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rw, err := journal.Resume(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfgBase
	cfg2.Journal = rw
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	sameLabeling(t, base, res, alice.Len(), bob.Len())
	if res.Resume.ResumedPairs == 0 {
		t.Fatal("resume replayed nothing")
	}
	if res.Invocations+res.Resume.ReplayedAllowance != base.Invocations {
		t.Errorf("stitched purchases: %d live + %d replayed != %d uninterrupted",
			res.Invocations, res.Resume.ReplayedAllowance, base.Invocations)
	}
	if res.DP.DummySpent != base.DP.DummySpent {
		t.Errorf("stitched dummy spend %d != uninterrupted %d", res.DP.DummySpent, base.DP.DummySpent)
	}
}

// TestDPResumeRefusals: ε, δ, the noise seed and the binning level all
// enter the config digest, so a journal never resumes under silently
// changed DP parameters — and never across dp↔k-anonymous mode changes.
func TestDPResumeRefusals(t *testing.T) {
	alice, bob := workload(t, 300, 46)
	path := filepath.Join(t.TempDir(), "dp.wal")
	w, err := journal.Create(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := dpCfg()
	cfg.Journal = w
	if _, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	resumeWith := func(t *testing.T, cfg Config) error {
		t.Helper()
		rw, err := journal.Resume(path, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer rw.Close()
		cfg.Journal = rw
		_, err = Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		return err
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"changed epsilon", func(c *Config) { c.Epsilon = 2 }},
		{"changed delta", func(c *Config) { c.DPDelta = 1e-3 }},
		{"changed seed", func(c *Config) { c.DPSeed = 8 }},
		{"changed level", func(c *Config) { c.DPLevel = 1 }},
		{"dp to datafly", func(c *Config) {
			c.Epsilon, c.DPSeed = 0, 0
			c.AliceAnonymizer = anonymize.NewDataFly()
			c.BobAnonymizer = anonymize.NewDataFly()
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := dpCfg()
			c.mutate(&cfg)
			err := resumeWith(t, cfg)
			if err == nil || !strings.Contains(err.Error(), "journal") {
				t.Errorf("err = %v, want descriptive journal refusal", err)
			}
		})
	}

	// The reverse crossing: a k-anonymous journal must not resume a dp
	// run either.
	plainPath := filepath.Join(t.TempDir(), "plain.wal")
	pw, err := journal.Create(plainPath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pcfg := journalCfg()
	pcfg.Journal = pw
	if _, err := Link(Holder{Data: alice}, Holder{Data: bob}, pcfg); err != nil {
		t.Fatal(err)
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	rw, err := journal.Resume(plainPath, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	dcfg := dpCfg()
	dcfg.Journal = rw
	if _, err := Link(Holder{Data: alice}, Holder{Data: bob}, dcfg); err == nil {
		t.Error("k-anonymous journal resumed a dp run")
	}
}
