package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pprl/internal/metrics"
)

// TestResultMarshalJSON: a real run's Result marshals into the stable
// wire form, and unmarshaling it back into ResultJSON reproduces the
// accessor values exactly.
func TestResultMarshalJSON(t *testing.T) {
	alice, bob := workload(t, 300, 77)
	cfg := DefaultConfig(alice.Schema().Names())
	cfg.AliceK, cfg.BobK = 8, 8
	cfg.Allowance = 150
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"total_pairs", "unknown_pairs", "blocking_efficiency", "matched_pairs",
		"allowance", "invocations", "smc_resolved_pairs", "smc_bytes",
		"smc_workers", "strategy", "heuristic", "resume", "timings",
	} {
		if !strings.Contains(string(data), `"`+field+`"`) {
			t.Errorf("wire form missing %q: %s", field, data)
		}
	}

	var got ResultJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := res.Summarize()
	if got != want {
		t.Errorf("round trip changed the summary:\n got %+v\nwant %+v", got, want)
	}
	if got.MatchedPairs != res.MatchedPairCount() || got.Invocations != res.Invocations {
		t.Errorf("summary disagrees with accessors: %+v", got)
	}
	if got.Strategy != "maximize-precision" || got.Heuristic != "minAvgFirst" {
		t.Errorf("strategy/heuristic names = %q/%q", got.Strategy, got.Heuristic)
	}
}

// TestTimingsJSONRoundTrip: durations survive exactly as nanoseconds.
func TestTimingsJSONRoundTrip(t *testing.T) {
	in := Timings{
		AnonymizeAlice: 1500 * time.Microsecond,
		AnonymizeBob:   2 * time.Second,
		DPNoise:        5 * time.Microsecond,
		Blocking:       3 * time.Millisecond,
		Tier:           40 * time.Microsecond,
		SMC:            7 * time.Nanosecond,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"anonymize_alice_ns":1500000,"anonymize_bob_ns":2000000000,"dp_noise_ns":5000,"blocking_ns":3000000,"tier_ns":40000,"smc_ns":7}`
	if string(data) != want {
		t.Errorf("wire form = %s, want %s", data, want)
	}
	var out Timings
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the timings: %+v -> %+v", in, out)
	}
}

// TestResultJSONCarriesResumeStats: a resumed run's wire form reports
// the replayed allowance under the metrics package's stable names.
func TestResultJSONCarriesResumeStats(t *testing.T) {
	r := ResultJSON{Resume: metrics.ResumeStats{ResumedPairs: 9, ReplayedAllowance: 9}}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"resumed_pairs":9`) || !strings.Contains(string(data), `"replayed_allowance":9`) {
		t.Errorf("resume stats not inlined: %s", data)
	}
}
