package core

import (
	"fmt"
	"time"

	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/dpblock"
	"pprl/internal/heuristic"
	"pprl/internal/index"
	"pprl/internal/smc"
)

// Holder wraps a data holder's relation. The struct exists so call sites
// read Link(alice, bob, …) with named roles and so holder-side options
// can grow without breaking the signature.
type Holder struct {
	Data *dataset.Dataset
}

// Link runs the full hybrid private record linkage pipeline between two
// relations sharing a schema instance, and returns the labeling of all
// |alice|×|bob| record pairs plus cost accounting. The config is taken by
// value; defaults are filled per DefaultConfig's documentation.
func Link(alice, bob Holder, cfg Config) (*Result, error) {
	schema, err := sharedSchema(alice, bob)
	if err != nil {
		return nil, err
	}
	qids, rule, err := cfg.normalize(schema)
	if err != nil {
		return nil, err
	}

	// Step 1 — each holder anonymizes its relation independently.
	var timings Timings
	start := time.Now()
	aView, err := cfg.AliceAnonymizer.Anonymize(alice.Data, qids, cfg.AliceK)
	if err != nil {
		return nil, fmt.Errorf("core: anonymizing alice: %w", err)
	}
	timings.AnonymizeAlice = time.Since(start)
	cfg.report("anonymize-alice", 1, 1)
	start = time.Now()
	bView, err := cfg.BobAnonymizer.Anonymize(bob.Data, qids, cfg.BobK)
	if err != nil {
		return nil, fmt.Errorf("core: anonymizing bob: %w", err)
	}
	timings.AnonymizeBob = time.Since(start)
	cfg.report("anonymize-bob", 1, 1)

	// Step 1b — DP mode: each holder attaches its Laplace-noised bin
	// counts to the view before the exchange, so the published bin sizes
	// (not just the bins) are ε-DP. Noising is timed apart from binning
	// so the bench can report the mechanism's own cost.
	if cfg.DPEnabled() {
		start = time.Now()
		if err := dpblock.Publish(aView, cfg.dpParams(0)); err != nil {
			return nil, fmt.Errorf("core: noising alice: %w", err)
		}
		if err := dpblock.Publish(bView, cfg.dpParams(1)); err != nil {
			return nil, fmt.Errorf("core: noising bob: %w", err)
		}
		timings.DPNoise = time.Since(start)
		cfg.report("dp-noise", 1, 1)
	}

	// Step 2 — blocking over the exchanged anonymized views.
	start = time.Now()
	block, err := blockViews(aView, bView, rule, &cfg)
	if err != nil {
		return nil, fmt.Errorf("core: blocking: %w", err)
	}
	timings.Blocking = time.Since(start)
	cfg.report("blocking", 1, 1)

	res, err := resolve(alice, bob, block, rule, qids, &cfg)
	if err != nil {
		return nil, err
	}
	res.Timings.AnonymizeAlice = timings.AnonymizeAlice
	res.Timings.AnonymizeBob = timings.AnonymizeBob
	res.Timings.DPNoise = timings.DPNoise
	res.Timings.Blocking = timings.Blocking
	return res, nil
}

// LinkPrepared runs only the SMC-selection and residual-labeling phase
// over a previously computed blocking result. Parameter sweeps use it to
// reuse the (expensive) anonymization and blocking stages across
// heuristics, strategies, and allowances: those knobs do not affect the
// blocked labels, only how the Unknown pairs are spent. The config's rule
// parameters (QIDs, thresholds) must be the ones the blocking result was
// built with.
func LinkPrepared(alice, bob Holder, block *blocking.Result, cfg Config) (*Result, error) {
	schema, err := sharedSchema(alice, bob)
	if err != nil {
		return nil, err
	}
	qids, rule, err := cfg.normalize(schema)
	if err != nil {
		return nil, err
	}
	if len(qids) != len(block.R.QIDs) {
		return nil, fmt.Errorf("core: config has %d QIDs, blocking result has %d", len(qids), len(block.R.QIDs))
	}
	for i := range qids {
		if qids[i] != block.R.QIDs[i] {
			return nil, fmt.Errorf("core: config QID %d (%d) disagrees with blocking result (%d)", i, qids[i], block.R.QIDs[i])
		}
	}
	return resolve(alice, bob, block, rule, qids, &cfg)
}

// blockViews dispatches the blocking step per Config.Blocking. The dense
// path is checked against the memory budget first; the indexed path's
// footprint does not depend on the matrix size, so it runs under any
// budget and reports per-row progress while it streams.
func blockViews(aView, bView *anonymize.Result, rule *blocking.Rule, cfg *Config) (*blocking.Result, error) {
	// DP mode has its own blocking engine — bin intersection over the
	// noised releases — and ignores Config.Blocking: there is no dense
	// rule evaluation to budget and no hierarchy index to build.
	if cfg.DPEnabled() {
		if aView.DP == nil || bView.DP == nil {
			return nil, fmt.Errorf("dp blocking needs noised releases on both views")
		}
		block, _, err := dpblock.Block(aView, bView, rule)
		return block, err
	}
	switch cfg.Blocking {
	case BlockingDense:
		if cfg.BlockingBudgetBytes > 0 {
			if need := blocking.DenseLabelsBytes(aView, bView); need > cfg.BlockingBudgetBytes {
				return nil, fmt.Errorf("dense Labels matrix needs %d bytes, over the %d-byte budget; use Config.Blocking = BlockingIndexed",
					need, cfg.BlockingBudgetBytes)
			}
		}
		return blocking.Block(aView, bView, rule)
	case BlockingIndexed:
		return index.Stream(aView, bView, rule, index.Options{
			Progress: func(done, total int64) { cfg.report("blocking", done, total) },
		}, nil)
	default:
		return nil, fmt.Errorf("unknown blocking mode %v", cfg.Blocking)
	}
}

// resolve implements steps 3-5: heuristic ordering, budgeted SMC, and
// residual labeling.
func resolve(alice, bob Holder, block *blocking.Result, rule *blocking.Rule, qids []int, cfg *Config) (*Result, error) {
	res := &Result{cfg: *cfg, rule: rule, qids: qids, bobLen: bob.Data.Len(), Block: block}

	// DP mode and the blocking result must agree: a prepared block built
	// under different ε or seed would charge the wrong dummy shares.
	dp := cfg.DPEnabled()
	if dp {
		if block.R.DP == nil || block.S.DP == nil {
			return nil, fmt.Errorf("core: Epsilon set but the blocking result has no DP release")
		}
		if block.R.DP.Epsilon != cfg.Epsilon || block.R.DP.Seed != cfg.DPSeed ||
			block.S.DP.Epsilon != cfg.Epsilon || block.S.DP.Seed != cfg.DPSeed+1 {
			return nil, fmt.Errorf("core: config DP parameters (ε=%v seed=%d) disagree with the blocking result's release (ε=%v/%v seeds=%d/%d)",
				cfg.Epsilon, cfg.DPSeed, block.R.DP.Epsilon, block.S.DP.Epsilon, block.R.DP.Seed, block.S.DP.Seed)
		}
	} else if block.R.DP != nil || block.S.DP != nil {
		return nil, fmt.Errorf("core: blocking result carries a DP release but Config.Epsilon is unset")
	}

	// Step 3 — order the Unknown group pairs for the SMC budget.
	var ordered []blocking.GroupPair
	switch cfg.Strategy {
	case MaximizePrecision:
		ordered = heuristic.Order(block, rule, cfg.Heuristic, false)
	case MaximizeRecall:
		// Probably-mismatching pairs first, so the residual "match"
		// default is as safe as the budget allows.
		ordered = heuristic.Order(block, rule, cfg.Heuristic, true)
	case TrainClassifier:
		ordered = heuristic.Shuffle(block, cfg.Seed)
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", cfg.Strategy)
	}
	// The ordering fixed above is the last consumer that scans all class
	// pairs; drop the dense matrix (when one exists) before the SMC phase
	// so its memory is reclaimable during the long crypto loop. Label
	// lookups from here on use the sparse form transparently.
	block.ReleaseLabels()

	// DP accounting: the composed privacy spend of the two releases and
	// the padding cost the noise induced. DummyPairs sums over exactly
	// the candidate (Unknown) bin pairs — dummies in bins that never met
	// a candidate cost nothing.
	if dp {
		res.DP = &DPStats{
			AliceEpsilon: block.R.DP.Epsilon,
			BobEpsilon:   block.S.DP.Epsilon,
			TotalEpsilon: block.R.DP.Epsilon + block.S.DP.Epsilon,
			Delta:        block.R.DP.Delta,
			TotalDelta:   block.R.DP.Delta + block.S.DP.Delta,
			Level:        block.R.DP.Level,
			AliceBins:    len(block.R.Classes),
			BobBins:      len(block.S.Classes),
			AliceDummies: block.R.Dummies(),
			BobDummies:   block.S.Dummies(),
		}
		for _, gp := range ordered {
			real := int64(block.R.Classes[gp.RI].Size()) * int64(block.S.Classes[gp.SI].Size())
			padded := block.R.DP.NoisedCounts[gp.RI] * block.S.DP.NoisedCounts[gp.SI]
			res.DP.DummyPairs += padded - real
		}
	}

	// Step 4 — resolve pairs with the SMC comparator until the allowance
	// is exhausted.
	allowance := cfg.Allowance
	if allowance == 0 {
		allowance = int64(cfg.AllowanceFraction * float64(block.TotalPairs()))
	}
	res.Allowance = allowance

	// Declare the run to the journal before any cryptographic setup: a
	// fresh journal persists the manifest, a resumed one validates it
	// (refusing a run whose config or inputs changed) and hands back the
	// verdicts already purchased by the interrupted run.
	var replayed map[int64]bool
	if cfg.Journal != nil {
		prior, err := cfg.Journal.Begin(runManifest(alice, bob, block, cfg, allowance))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if len(prior) > 0 {
			replayed = make(map[int64]bool, len(prior))
			for _, v := range prior {
				replayed[pairKey(int(v.I), int(v.J), res.bobLen)] = v.Matched
			}
		}
	}

	// The SMC step resolves at most min(allowance, unknown pairs) entries;
	// size the verdict map once instead of growing it through rehashes.
	sized := allowance
	if block.UnknownPairs < sized {
		sized = block.UnknownPairs
	}
	if sized < 0 {
		sized = 0
	}
	res.smcLabels = make(map[int64]bool, sized)
	res.resolvedInGroup = make(map[[2]int]int, len(ordered))

	// Replayed verdicts are applied upfront rather than stitched into the
	// ordered iteration: the ordering the interrupted run purchased under
	// may differ from this run's (the tier mode or thresholds may have
	// changed — both are deliberately outside the manifest digest), but a
	// purchased verdict is exact under any tier configuration. Each one
	// consumes allowance exactly once, here.
	for key, matched := range replayed {
		i := int(key / int64(res.bobLen))
		j := int(key % int64(res.bobLen))
		res.applySMC(key, [2]int{block.R.ClassOf[i], block.S.ClassOf[j]}, matched)
		res.Resume.ResumedPairs++
		res.Resume.ReplayedAllowance++
	}

	// The triage tier labels the confident Unknown pairs for free before
	// any allowance is spent; only the uncertain band reaches the budget
	// loop below.
	if cfg.Tier == TierBloom {
		start := time.Now()
		if err := applyTier(alice, bob, ordered, block, qids, cfg, res, replayed); err != nil {
			return nil, err
		}
		res.Timings.Tier = time.Since(start)
	}

	spec, err := smc.SpecFromRule(rule, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("core: building SMC spec: %w", err)
	}
	spec.Packing = cfg.SMCPacking.SMC()
	cmp, err := cfg.Comparator(
		smc.EncodeRecords(alice.Data, qids, cfg.Scale),
		smc.EncodeRecords(bob.Data, qids, cfg.Scale),
		spec,
		cfg.SMCWorkers,
	)
	if err != nil {
		return nil, fmt.Errorf("core: building comparator: %w", err)
	}
	defer cmp.Close()
	res.SMCWorkers = cfg.SMCWorkers

	start := time.Now()
	// Resolve the budgeted pairs in heuristic order, streaming: a small
	// chunk buffer feeds the pipelined batch path when the comparator
	// supports it (the real SMC protocol), per-pair calls otherwise —
	// never materializing the whole budget (which can be millions of
	// pairs at full allowance). The chunk grows with the worker count so
	// a sharded comparator always has enough pairs to keep every lane's
	// pipeline full.
	type job struct {
		i, j  int
		group [2]int
	}
	batcher, batched := cmp.(interface {
		CompareBatch([][2]int) ([]bool, error)
	})
	chunkSize := 256 * cfg.SMCWorkers
	if chunkSize > 4096 {
		chunkSize = 4096
	}
	// A comparator that knows its own ideal batch size — a distributed
	// pool whose capacity is worker fleet width, not cfg.SMCWorkers —
	// overrides the heuristic. Clamped so a bad hint can neither stall
	// the pipeline nor re-materialize the budget.
	if hinter, ok := cmp.(interface{ ChunkHint() int }); ok {
		if h := hinter.ChunkHint(); h > 0 {
			if h > 16384 {
				h = 16384
			}
			chunkSize = h
		}
	}
	chunk := make([]job, 0, chunkSize)
	pairs := make([][2]int, 0, chunkSize)
	// Progress and budget both start past the replayed verdicts, which
	// were applied (and their allowance consumed) upfront.
	done := res.Resume.ReplayedAllowance
	record := func(jb job, matched bool) error {
		res.applySMC(pairKey(jb.i, jb.j, res.bobLen), jb.group, matched)
		done++
		if done%smcProgressStride == 0 {
			cfg.report("smc", done, allowance)
		}
		if cfg.Journal != nil {
			if err := cfg.Journal.Record(jb.i, jb.j, matched); err != nil {
				return fmt.Errorf("core: journal append (%d,%d): %w", jb.i, jb.j, err)
			}
		}
		return nil
	}
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if batched {
			pairs = pairs[:0]
			for _, jb := range chunk {
				pairs = append(pairs, [2]int{jb.i, jb.j})
			}
			verdicts, err := batcher.CompareBatch(pairs)
			if err != nil {
				return fmt.Errorf("core: SMC batch: %w", err)
			}
			for x, jb := range chunk {
				if err := record(jb, verdicts[x]); err != nil {
					return err
				}
			}
		} else {
			for _, jb := range chunk {
				matched, err := cmp.Compare(jb.i, jb.j)
				if err != nil {
					return fmt.Errorf("core: SMC comparison (%d,%d): %w", jb.i, jb.j, err)
				}
				if err := record(jb, matched); err != nil {
					return err
				}
			}
		}
		chunk = chunk[:0]
		return nil
	}
	// interrupted checkpoints the run at a chunk boundary: every verdict
	// resolved so far is already journaled (record trails the
	// comparator), so a sync makes the prefix durable and the run
	// resumable.
	interrupted := func() error {
		if cfg.Context == nil || cfg.Context.Err() == nil {
			return nil
		}
		if cfg.Journal != nil {
			if err := cfg.Journal.Sync(); err != nil {
				return err
			}
		}
		return fmt.Errorf("core: %w after %d of %d budgeted comparisons: %v",
			ErrInterrupted, done, allowance, cfg.Context.Err())
	}
	if err := interrupted(); err != nil {
		return nil, err
	}
	// Announce the SMC phase before the first stride so pollers (the job
	// service's progress endpoint) see the phase change immediately.
	cfg.report("smc", done, allowance)
	budget := allowance - res.Resume.ReplayedAllowance
	// Under DP every purchased pair also pays its bin's dummy share: the
	// charger interleaves the group's padding cost across its real pairs,
	// so the allowance funds real + dummy comparisons exactly as a
	// protocol run over the padded bins would spend it. Tier-labeled
	// pairs skip both charges (they never reach the protocol), and
	// replayed purchases pay only their dummy share here — their unit
	// cost was already consumed upfront — so a resumed run's total spend
	// equals the uninterrupted run's.
	var charger dpblock.DummyCharger
groups:
	for _, gp := range ordered {
		rc := &block.R.Classes[gp.RI]
		sc := &block.S.Classes[gp.SI]
		if dp {
			charger = dpblock.NewDummyCharger(
				int64(rc.Size()), block.R.DP.NoisedCounts[gp.RI],
				int64(sc.Size()), block.S.DP.NoisedCounts[gp.SI])
		}
		for _, i := range rc.Members {
			for _, j := range sc.Members {
				key := pairKey(i, j, res.bobLen)
				// A pair already carrying a verdict never reaches the
				// comparator: replayed purchased verdicts were applied
				// (and their allowance consumed) upfront, and tier labels
				// are free — the budget below is spent exclusively on the
				// still-uncertain band.
				if _, ok := res.smcLabels[key]; ok {
					if dp {
						d := charger.Next()
						budget -= d
						res.DP.DummySpent += d
					}
					continue
				}
				if _, ok := res.tierLabels[key]; ok {
					continue
				}
				cost := int64(1)
				if dp {
					cost += charger.Next()
				}
				if budget < cost {
					break groups
				}
				budget -= cost
				if dp {
					res.DP.DummySpent += cost - 1
				}
				chunk = append(chunk, job{i: i, j: j, group: [2]int{gp.RI, gp.SI}})
				if len(chunk) == chunkSize {
					if err := flush(); err != nil {
						return nil, err
					}
					if err := interrupted(); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if cfg.Journal != nil {
		// Completion checkpoint: the residual phase is derived state, so
		// a durable journal here means the whole run is reconstructible.
		if err := cfg.Journal.Sync(); err != nil {
			return nil, err
		}
	}
	cfg.report("smc", done, allowance)
	res.Invocations = cmp.Invocations()
	res.SMCBytes = cmp.BytesTransferred()
	res.Timings.SMC = time.Since(start)

	// Step 5 — residual labeling.
	switch cfg.Strategy {
	case MaximizePrecision:
		// Residual pairs stay non-matched; nothing to record.
	case MaximizeRecall:
		res.residualMatch = true
	case TrainClassifier:
		res.groupVerdicts = trainResidualClassifier(res, ordered, rule)
	}
	return res, nil
}

func sharedSchema(alice, bob Holder) (*dataset.Schema, error) {
	if alice.Data == nil || bob.Data == nil {
		return nil, fmt.Errorf("core: both holders need data")
	}
	schema := alice.Data.Schema()
	if bob.Data.Schema() != schema {
		return nil, fmt.Errorf("core: holders must share one schema instance (run private schema matching first)")
	}
	return schema, nil
}

// pairKey packs a record pair into an int64 map key.
func pairKey(i, j, bobLen int) int64 { return int64(i)*int64(bobLen) + int64(j) }

// smcProgressStride is how often the SMC loop emits progress events.
const smcProgressStride = 4096

// report invokes the progress callback if configured.
func (c *Config) report(stage string, done, total int64) {
	if c.Progress != nil {
		c.Progress(stage, done, total)
	}
}
