package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"strconv"

	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/journal"
)

// ErrInterrupted is returned (wrapped) by Link when Config.Context is
// cancelled mid-run: the engine drains the in-flight SMC chunk, syncs the
// journal so every resolved verdict is durable, and stops. A journaled
// run interrupted this way is resumable via journal.Resume.
var ErrInterrupted = errors.New("run interrupted")

// runManifest describes the run for the journal: digests of everything
// that determines the heuristic ordering and the pair verdicts, plus the
// blocking summary and resolved allowance. Two runs with equal manifests
// resolve the same pairs in the same order to the same verdicts, which is
// what makes replaying a journaled prefix sound.
func runManifest(alice, bob Holder, block *blocking.Result, cfg *Config, allowance int64) journal.Manifest {
	return journal.Manifest{
		ConfigDigest: configDigest(cfg, allowance),
		InputsDigest: inputsDigest(alice.Data, bob.Data),
		TotalPairs:   block.TotalPairs(),
		UnknownPairs: block.UnknownPairs,
		Allowance:    allowance,
		Seed:         cfg.Seed,
		Heuristic:    cfg.Heuristic.Name(),
	}
}

// configDigest hashes the normalized run parameters. SMCWorkers,
// SMCPacking and the comparator backend are deliberately excluded: they
// change how fast verdicts arrive (or how they are encoded in transit),
// never which verdicts arrive, so a run may resume with different
// parallelism, the other packing mode, or switch between the plaintext
// oracle and the secure protocol. The Tier knobs (mode, thresholds, CLK
// parameters) are excluded for a different reason: tier labels are
// deterministic, free to recompute, and journaled separately from
// purchased verdicts, while a purchased verdict is exact under any tier
// configuration — so a journaled run may resume with the tier switched
// on, off, or retuned, and the engine applies the replayed purchases
// upfront before recomputing tier labels around them.
func configDigest(cfg *Config, allowance int64) [32]byte {
	h := sha256.New()
	for _, q := range cfg.QIDs {
		hashField(h, "qid", q)
	}
	hashField(h, "theta", strconv.FormatFloat(cfg.Theta, 'g', -1, 64))
	for _, th := range cfg.Thresholds {
		hashField(h, "threshold", strconv.FormatFloat(th, 'g', -1, 64))
	}
	hashField(h, "aliceK", strconv.Itoa(cfg.AliceK))
	hashField(h, "bobK", strconv.Itoa(cfg.BobK))
	hashField(h, "anonA", cfg.AliceAnonymizer.Name())
	hashField(h, "anonB", cfg.BobAnonymizer.Name())
	hashField(h, "heuristic", cfg.Heuristic.Name())
	hashField(h, "strategy", cfg.Strategy.String())
	hashField(h, "allowance", strconv.FormatInt(allowance, 10))
	hashField(h, "scale", strconv.FormatInt(cfg.Scale, 10))
	hashField(h, "seed", strconv.FormatInt(cfg.Seed, 10))
	// The DP parameters are hashed only when DP is enabled, so digests of
	// k-anonymous runs are unchanged from before the mode existed. A dp
	// run and a k-anonymous run already differ via the anonymizer names;
	// these fields refuse resumption across a silently changed ε, δ,
	// noise seed or binning level — any of which changes the padded bins
	// and therefore what every purchased verdict cost.
	if cfg.DPEnabled() {
		hashField(h, "epsilon", strconv.FormatFloat(cfg.Epsilon, 'g', -1, 64))
		hashField(h, "dpdelta", strconv.FormatFloat(cfg.DPDelta, 'g', -1, 64))
		hashField(h, "dpseed", strconv.FormatInt(cfg.DPSeed, 10))
		hashField(h, "dplevel", strconv.Itoa(cfg.DPLevel))
	}
	return [32]byte(h.Sum(nil))
}

// inputsDigest hashes both relations: schema shape plus every record's
// identity, class label and cells. All attributes are covered, not just
// the QIDs, because classification-aware anonymizers (TDS) read beyond
// the QID set.
func inputsDigest(alice, bob *dataset.Dataset) [32]byte {
	h := sha256.New()
	schema := alice.Schema()
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		hashField(h, "attr", a.Name)
		hashField(h, "kind", a.Kind.String())
		hashField(h, "range", strconv.FormatFloat(a.Range(), 'g', -1, 64))
	}
	for _, d := range []*dataset.Dataset{alice, bob} {
		hashField(h, "relation", strconv.Itoa(d.Len()))
		for i := 0; i < d.Len(); i++ {
			rec := d.Record(i)
			hashField(h, "id", strconv.Itoa(rec.EntityID))
			if rec.Class != "" {
				hashField(h, "class", rec.Class)
			}
			for _, c := range rec.Cells {
				if c.Node != nil {
					hashField(h, "cat", c.Node.Value)
				} else {
					hashField(h, "num", strconv.FormatFloat(c.Num, 'g', -1, 64))
				}
			}
		}
	}
	return [32]byte(h.Sum(nil))
}

// hashField writes a length-delimited key/value into the digest, so
// adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
func hashField(h hash.Hash, key, value string) {
	fmt.Fprintf(h, "%s=%d:%s;", key, len(value), value)
}
