package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/dataset"
	"pprl/internal/heuristic"
	"pprl/internal/match"
)

// workload builds the paper's experimental construction at small scale:
// one Adult-like dataset split into two overlapping relations.
func workload(t testing.TB, n int, seed int64) (alice, bob *dataset.Dataset) {
	t.Helper()
	full := adult.Generate(n, seed)
	return dataset.SplitOverlap(full, rand.New(rand.NewSource(seed+1)))
}

func truth(t testing.TB, alice, bob *dataset.Dataset, res *Result) []match.Pair {
	t.Helper()
	pairs, err := match.TruePairs(alice, bob, res.QIDs(), res.Rule())
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestLinkDefaultsEndToEnd(t *testing.T) {
	alice, bob := workload(t, 600, 42)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 8, 8
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Block.TotalPairs() != int64(alice.Len())*int64(bob.Len()) {
		t.Errorf("TotalPairs = %d", res.Block.TotalPairs())
	}
	eff := res.BlockingEfficiency()
	if eff <= 0 || eff > 1 {
		t.Errorf("blocking efficiency = %v", eff)
	}
	tr := truth(t, alice, bob, res)
	if len(tr) == 0 {
		t.Fatal("workload should contain true matches (shared d3 partition)")
	}
	conf := res.Evaluate(tr)
	if conf.Precision() != 1 {
		t.Errorf("precision = %v, want exactly 1 under maximize-precision", conf.Precision())
	}
	if conf.Recall() < 0 || conf.Recall() > 1 {
		t.Errorf("recall = %v out of range", conf.Recall())
	}
	if res.Invocations > res.Allowance {
		t.Errorf("invocations %d exceed allowance %d", res.Invocations, res.Allowance)
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}

// TestExtremeScenarios reproduces Section III's two extremes: k=1 gives
// full blocking and zero SMC cost with perfect recall; k=n degrades the
// anonymized views to the root and leaves (almost) everything to SMC.
func TestExtremeScenarios(t *testing.T) {
	alice, bob := workload(t, 240, 7)

	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 1, 1
	cfg.Allowance = -0 // fraction applies
	cfg.AllowanceFraction = 0
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockingEfficiency() != 1 {
		t.Errorf("k=1 blocking efficiency = %v, want 1 (anonymized relation is the original)", res.BlockingEfficiency())
	}
	if res.Invocations != 0 {
		t.Errorf("k=1 used %d SMC invocations, want 0", res.Invocations)
	}
	conf := res.Evaluate(truth(t, alice, bob, res))
	if conf.Recall() != 1 || conf.Precision() != 1 {
		t.Errorf("k=1: %v, want perfect linkage at zero SMC cost", conf)
	}

	cfg2 := DefaultConfig(adult.DefaultQIDs())
	cfg2.AliceK, cfg2.BobK = alice.Len(), bob.Len()
	cfg2.AllowanceFraction = 0
	res2, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if eff := res2.BlockingEfficiency(); eff != 0 {
		t.Errorf("k=n blocking efficiency = %v, want 0 (every pair unknown, pure-SMC costs)", eff)
	}
	conf2 := res2.Evaluate(truth(t, alice, bob, res2))
	if conf2.Recall() != 0 {
		t.Errorf("k=n with zero allowance recall = %v, want 0", conf2.Recall())
	}
	if conf2.Precision() != 1 {
		t.Errorf("precision still must be 1, got %v", conf2.Precision())
	}
}

func TestRecallMonotoneInAllowance(t *testing.T) {
	alice, bob := workload(t, 360, 11)
	prev := -1.0
	for _, frac := range []float64{0, 0.005, 0.02, 1.0} {
		cfg := DefaultConfig(adult.DefaultQIDs())
		cfg.AliceK, cfg.BobK = 32, 32
		cfg.AllowanceFraction = frac
		res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rec := res.Evaluate(truth(t, alice, bob, res)).Recall()
		if rec < prev-1e-12 {
			t.Errorf("recall decreased from %v to %v as allowance grew to %v", prev, rec, frac)
		}
		prev = rec
		if frac == 1.0 && rec != 1 {
			t.Errorf("full allowance recall = %v, want 1", rec)
		}
	}
}

func TestMaximizeRecallStrategy(t *testing.T) {
	alice, bob := workload(t, 240, 13)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 32, 32
	cfg.Strategy = MaximizeRecall
	cfg.AllowanceFraction = 0.001
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf := res.Evaluate(truth(t, alice, bob, res))
	if conf.Recall() != 1 {
		t.Errorf("maximize-recall recall = %v, want 1 (residual pairs match)", conf.Recall())
	}
	// With a tiny budget at k=32 the paper predicts poor precision.
	if conf.Precision() >= 0.5 {
		t.Logf("note: maximize-recall precision unexpectedly high: %v", conf.Precision())
	}
	if res.MatchedPairCount() <= res.Block.MatchedPairs {
		t.Error("maximize-recall should report residual matches")
	}
}

func TestTrainClassifierStrategy(t *testing.T) {
	alice, bob := workload(t, 240, 17)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 16, 16
	cfg.Strategy = TrainClassifier
	cfg.AllowanceFraction = 0.01
	cfg.Seed = 99
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conf := res.Evaluate(truth(t, alice, bob, res))
	if conf.Recall() < 0 || conf.Recall() > 1 || conf.Precision() < 0 || conf.Precision() > 1 {
		t.Errorf("classifier strategy out-of-range metrics: %v", conf)
	}
	// Zero-allowance classifier degenerates to all-non-match.
	cfg.AllowanceFraction = 0
	res0, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res0.MatchedPairCount(); got != res0.Block.MatchedPairs {
		t.Errorf("untrained classifier matched %d pairs beyond blocking", got-res0.Block.MatchedPairs)
	}
}

func TestHeuristicsAffectOrderNotSoundness(t *testing.T) {
	alice, bob := workload(t, 300, 19)
	for _, h := range heuristic.All() {
		cfg := DefaultConfig(adult.DefaultQIDs())
		cfg.AliceK, cfg.BobK = 32, 32
		cfg.Heuristic = h
		cfg.AllowanceFraction = 0.01
		res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		conf := res.Evaluate(truth(t, alice, bob, res))
		if conf.Precision() != 1 {
			t.Errorf("%s: precision %v != 1", h.Name(), conf.Precision())
		}
	}
}

func TestMixedAnonymizersAndKs(t *testing.T) {
	// The paper: "Participants can choose different anonymization
	// methods, anonymity levels, quasi-identifier attribute sets."
	alice, bob := workload(t, 240, 23)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 4, 64
	cfg.AliceAnonymizer = anonymize.NewDataFly()
	cfg.BobAnonymizer = anonymize.NewMaxEntropy()
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if conf := res.Evaluate(truth(t, alice, bob, res)); conf.Precision() != 1 {
		t.Errorf("mixed configuration broke the precision guarantee: %v", conf)
	}
}

func TestSecureComparatorEndToEnd(t *testing.T) {
	// Small workload, real Paillier circuit at test key size: the full
	// protocol produces identical results to the oracle.
	alice, bob := workload(t, 45, 29)
	base := DefaultConfig(adult.DefaultQIDs())
	base.AliceK, base.BobK = 8, 8
	base.Allowance = 60

	plainCfg := base
	plain, err := Link(Holder{Data: alice}, Holder{Data: bob}, plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	secCfg := base
	secCfg.Comparator = SecureComparatorFactory(256)
	sec, err := Link(Holder{Data: alice}, Holder{Data: bob}, secCfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Invocations != sec.Invocations {
		t.Errorf("invocations differ: plain %d, secure %d", plain.Invocations, sec.Invocations)
	}
	for i := 0; i < alice.Len(); i++ {
		for j := 0; j < bob.Len(); j++ {
			if plain.PairMatched(i, j) != sec.PairMatched(i, j) {
				t.Fatalf("pair (%d,%d): plain %v, secure %v", i, j, plain.PairMatched(i, j), sec.PairMatched(i, j))
			}
		}
	}
}

func TestLinkPrepared(t *testing.T) {
	alice, bob := workload(t, 240, 37)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 16, 16
	full, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-finishing over the cached block with the same config must
	// reproduce the one-shot result.
	again, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, full.Block, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Invocations != again.Invocations || full.MatchedPairCount() != again.MatchedPairCount() {
		t.Errorf("LinkPrepared diverged: %d/%d vs %d/%d",
			full.Invocations, full.MatchedPairCount(), again.Invocations, again.MatchedPairCount())
	}
	// A config over a different QID set must be rejected.
	bad := DefaultConfig(adult.TopQIDs(3))
	bad.AliceK, bad.BobK = 16, 16
	if _, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, full.Block, bad); err == nil {
		t.Error("LinkPrepared should reject a QID mismatch")
	}
}

func TestSMCInvariants(t *testing.T) {
	alice, bob := workload(t, 300, 41)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 32, 32
	cfg.AllowanceFraction = 0.005
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Invocations equal min(allowance, unknown pairs).
	want := res.Allowance
	if res.Block.UnknownPairs < want {
		want = res.Block.UnknownPairs
	}
	if res.Invocations != want {
		t.Errorf("invocations = %d, want %d", res.Invocations, want)
	}
	if res.SMCResolvedPairs() != res.Invocations {
		t.Errorf("resolved pairs %d != invocations %d", res.SMCResolvedPairs(), res.Invocations)
	}
	// The oracle moves no bytes; the real protocol does (checked in
	// TestSecureComparatorEndToEnd via smc tests).
	if res.SMCBytes != 0 {
		t.Errorf("oracle SMCBytes = %d, want 0", res.SMCBytes)
	}
}

func TestConfigValidation(t *testing.T) {
	alice, bob := workload(t, 60, 31)
	mk := func(mut func(*Config)) error {
		cfg := DefaultConfig(adult.DefaultQIDs())
		mut(&cfg)
		_, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		return err
	}
	if err := mk(func(c *Config) { c.QIDs = nil }); err == nil {
		t.Error("missing QIDs should fail")
	}
	if err := mk(func(c *Config) { c.QIDs = []string{"bogus"} }); err == nil {
		t.Error("unknown QID should fail")
	}
	if err := mk(func(c *Config) { c.Theta = 0 }); err == nil {
		t.Error("zero theta should fail")
	}
	if err := mk(func(c *Config) { c.Thresholds = []float64{0.1} }); err == nil {
		t.Error("threshold arity mismatch should fail")
	}
	if err := mk(func(c *Config) { c.AliceK = 0 }); err == nil {
		t.Error("k=0 should fail")
	}
	if err := mk(func(c *Config) { c.AllowanceFraction = -1 }); err == nil {
		t.Error("negative allowance should fail")
	}
	if err := mk(func(c *Config) { c.Strategy = Strategy(99) }); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, err := Link(Holder{}, Holder{Data: bob}, DefaultConfig(adult.DefaultQIDs())); err == nil {
		t.Error("nil data should fail")
	}
	other := adult.Generate(10, 1)
	if _, err := Link(Holder{Data: alice}, Holder{Data: other}, DefaultConfig(adult.DefaultQIDs())); err == nil {
		t.Error("different schema instances should fail")
	}
}

func TestProgressCallback(t *testing.T) {
	alice, bob := workload(t, 240, 53)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 16, 16
	var stages []string
	var lastDone, lastTotal int64
	cfg.Progress = func(stage string, done, total int64) {
		stages = append(stages, stage)
		if stage == "smc" {
			if done < lastDone {
				t.Errorf("smc progress went backwards: %d after %d", done, lastDone)
			}
			lastDone, lastTotal = done, total
		}
	}
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"anonymize-alice", "anonymize-bob", "blocking"}
	for i, w := range want {
		if i >= len(stages) || stages[i] != w {
			t.Fatalf("stages = %v, want prefix %v", stages, want)
		}
	}
	if stages[len(stages)-1] != "smc" {
		t.Errorf("final stage = %q, want smc", stages[len(stages)-1])
	}
	if lastDone != res.Invocations || lastTotal != res.Allowance {
		t.Errorf("final smc progress %d/%d, want %d/%d", lastDone, lastTotal, res.Invocations, res.Allowance)
	}
}

// TestEndToEndSoundnessProperty is the engine-level statement of the
// paper's central guarantee: for random workloads, anonymizers,
// thresholds, budgets and heuristics, the maximize-precision pipeline
// never reports a false match, and every M-blocked pair it reports is
// consistent with the exact rule.
func TestEndToEndSoundnessProperty(t *testing.T) {
	anonymizers := []anonymize.Anonymizer{
		anonymize.NewMaxEntropy(), anonymize.NewDataFly(), anonymize.NewMondrian(),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		full := adult.Generate(60+rng.Intn(120), seed)
		alice, bob := dataset.SplitOverlap(full, rand.New(rand.NewSource(seed+1)))
		cfg := DefaultConfig(adult.TopQIDs(2 + rng.Intn(4)))
		cfg.AliceK = 1 + rng.Intn(16)
		cfg.BobK = 1 + rng.Intn(16)
		cfg.Theta = 0.01 + rng.Float64()*0.2
		cfg.AllowanceFraction = rng.Float64() * 0.05
		cfg.AliceAnonymizer = anonymizers[rng.Intn(len(anonymizers))]
		cfg.BobAnonymizer = anonymizers[rng.Intn(len(anonymizers))]
		cfg.Heuristic = heuristic.All()[rng.Intn(3)]
		res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		tr, err := match.TruePairs(alice, bob, res.QIDs(), res.Rule())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		conf := res.Evaluate(tr)
		if conf.Precision() != 1 {
			t.Logf("seed %d: precision %v", seed, conf.Precision())
			return false
		}
		if conf.FalsePositives != 0 {
			t.Logf("seed %d: %d false positives", seed, conf.FalsePositives)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if MaximizePrecision.String() != "maximize-precision" ||
		MaximizeRecall.String() != "maximize-recall" ||
		TrainClassifier.String() != "train-classifier" {
		t.Error("Strategy.String broken")
	}
}
