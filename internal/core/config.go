// Package core implements the paper's primary contribution: the hybrid
// private record linkage protocol that combines k-anonymization-based
// blocking with budgeted SMC resolution (Sections III–V).
//
// The pipeline: each data holder anonymizes its relation (with its own k
// and anonymization method — the paper explicitly allows them to differ);
// the blocking step labels equivalence-class pairs Match / NonMatch /
// Unknown with the slack decision rule; Unknown pairs are ordered by a
// selection heuristic and resolved by the SMC comparator until the SMC
// allowance is exhausted; the residual-labeling strategy decides the rest.
// Under the default maximize-precision strategy every reported match is
// certain, so precision is always 100% and recall varies with the
// allowance — the paper's privacy/cost/accuracy trade-off.
package core

import (
	"context"
	"fmt"
	"runtime"

	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/dpblock"
	"pprl/internal/heuristic"
	"pprl/internal/journal"
	"pprl/internal/smc"
)

// Strategy selects how record pairs that remain Unknown after the SMC
// budget runs out are labeled (paper Section V-B).
type Strategy int

const (
	// MaximizePrecision labels residual pairs non-match; no false
	// positives are possible, recall may suffer. This is the paper's
	// choice ("Since privacy is our primary concern, we choose to follow
	// the first strategy").
	MaximizePrecision Strategy = iota
	// MaximizeRecall spends the budget on probably-mismatching pairs and
	// labels residual pairs match: full recall, possibly poor precision.
	MaximizeRecall
	// TrainClassifier selects SMC pairs at random and trains a
	// threshold classifier on the SMC outcomes (features are the
	// expected distances of the generalizations) to label residual
	// pairs: a compromise the paper argues cannot attain high precision
	// or recall.
	TrainClassifier
)

func (s Strategy) String() string {
	switch s {
	case MaximizePrecision:
		return "maximize-precision"
	case MaximizeRecall:
		return "maximize-recall"
	case TrainClassifier:
		return "train-classifier"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// BlockingMode selects the blocking engine.
type BlockingMode int

const (
	// BlockingDense (default) evaluates the slack rule on every class
	// pair and materializes the dense Labels matrix, exactly the paper's
	// formulation.
	BlockingDense BlockingMode = iota
	// BlockingIndexed builds the hierarchy-aware inverted index over
	// Bob's view and streams only the candidate class pairs through the
	// rule (see internal/index): label-identical to BlockingDense, but
	// sub-quadratic in practice and never allocating the dense matrix.
	BlockingIndexed
)

func (m BlockingMode) String() string {
	switch m {
	case BlockingDense:
		return "dense"
	case BlockingIndexed:
		return "indexed"
	default:
		return fmt.Sprintf("BlockingMode(%d)", int(m))
	}
}

// PackingMode selects the secure comparator's result-message encoding
// (Config.SMCPacking).
type PackingMode int

const (
	// PackingPacked (default) slot-packs Bob's blinded per-attribute
	// outputs into ⌈d/slots⌉ ciphertexts, cutting the querying party's
	// decryptions and the MsgResult bytes by ~d×. Verdict-identical to
	// PackingOff.
	PackingPacked PackingMode = iota
	// PackingOff sends one result ciphertext per active attribute.
	PackingOff
)

func (m PackingMode) String() string {
	switch m {
	case PackingPacked:
		return "packed"
	case PackingOff:
		return "off"
	default:
		return fmt.Sprintf("PackingMode(%d)", int(m))
	}
}

// SMC maps the engine-level mode onto the protocol spec's packing field.
func (m PackingMode) SMC() smc.Packing {
	if m == PackingOff {
		return smc.PackingOff
	}
	return smc.PackingPacked
}

// TierMode selects the optional triage tier between blocking and the SMC
// budget (DESIGN.md §12): a cheap encoded comparator that labels the
// confidently-similar and confidently-dissimilar Unknown pairs so the
// Paillier allowance is spent only inside the uncertain band.
type TierMode int

const (
	// TierOff (default) runs the paper's two-tier pipeline: every Unknown
	// pair competes for the SMC allowance.
	TierOff TierMode = iota
	// TierBloom triages Unknown pairs by Dice similarity over CLK Bloom
	// encodings (internal/bloom) before any allowance is spent: pairs
	// with similarity ≥ TierHigh are labeled Match, ≤ TierLow NonMatch,
	// and only the band in between is ordered for the SMC budget. Tier
	// labels are heuristic — unlike blocking and SMC verdicts they can be
	// wrong — so precision is no longer structurally 1.0 under
	// MaximizePrecision; the thresholds price that risk.
	TierBloom
)

func (m TierMode) String() string {
	switch m {
	case TierOff:
		return "off"
	case TierBloom:
		return "bloom"
	default:
		return fmt.Sprintf("TierMode(%d)", int(m))
	}
}

// ComparatorFactory builds the SMC comparator over the holders' encoded
// records. workers is the resolved Config.SMCWorkers value; factories
// that cannot parallelize may ignore it. The default (nil) uses the
// plaintext oracle with invocation accounting — the paper's own cost
// model for large sweeps; use SecureComparatorFactory to run real
// Paillier circuits.
type ComparatorFactory func(alice, bob [][]int64, spec *smc.Spec, workers int) (smc.Comparator, error)

// PlainComparatorFactory is the simulation-mode factory (default). The
// oracle does no cryptographic work, so workers is ignored.
func PlainComparatorFactory(alice, bob [][]int64, spec *smc.Spec, workers int) (smc.Comparator, error) {
	return smc.NewPlainComparator(spec, alice, bob), nil
}

// SecureComparatorFactory returns a factory running the full three-party
// Paillier protocol in-process with keys of the given size (the paper
// uses 1024 bits). With workers > 1 it builds the sharded engine —
// workers protocol lanes under one key, sharing the holders' randomizer
// pools and Alice's share cache — otherwise the serial comparator.
func SecureComparatorFactory(keyBits int) ComparatorFactory {
	return func(alice, bob [][]int64, spec *smc.Spec, workers int) (smc.Comparator, error) {
		if workers > 1 {
			return smc.NewLocalSecureSharded(spec, alice, bob, keyBits, workers)
		}
		return smc.NewLocalSecure(spec, alice, bob, keyBits)
	}
}

// Config parameterizes a linkage run. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// QIDs are the quasi-identifier attribute names, resolved against
	// the shared schema. The matching rule compares exactly these.
	QIDs []string
	// Theta is the uniform matching threshold θ_i applied to every
	// attribute (paper default 0.05). Ignored when Thresholds is set.
	Theta float64
	// Thresholds optionally gives per-attribute thresholds.
	Thresholds []float64

	// AliceK and BobK are the holders' anonymity requirements; the
	// participants set them independently (paper default 32 for both).
	AliceK, BobK int
	// AliceAnonymizer and BobAnonymizer choose each holder's
	// anonymization method; nil defaults to the paper's max-entropy
	// method.
	AliceAnonymizer, BobAnonymizer anonymize.Anonymizer

	// Heuristic orders Unknown pairs for the SMC budget; nil defaults to
	// MinAvgFirst (the paper's most robust heuristic on over-perturbed
	// data).
	Heuristic heuristic.Heuristic
	// Strategy picks the residual labeling (default MaximizePrecision).
	Strategy Strategy

	// Allowance is the absolute SMC budget in record pairs. When 0,
	// AllowanceFraction of |R|×|S| is used instead.
	Allowance int64
	// AllowanceFraction is the budget as a fraction of all record pairs
	// (paper default 0.015, i.e. 1.5%).
	AllowanceFraction float64

	// Blocking selects the blocking engine (default BlockingDense). Both
	// modes produce identical labels; BlockingIndexed prunes class pairs
	// via the hierarchy index and keeps memory proportional to the M/U
	// pairs instead of the full class-pair matrix.
	Blocking BlockingMode
	// BlockingBudgetBytes, when positive, caps the memory the dense
	// Labels matrix may commit: a dense run whose matrix estimate exceeds
	// the budget fails fast with a hint to switch to BlockingIndexed,
	// whose footprint does not depend on the matrix size.
	BlockingBudgetBytes int64

	// Tier selects the triage tier between blocking and SMC (default
	// TierOff). Like SMCWorkers and SMCPacking it is excluded from the
	// journal manifest: tier labels are deterministic and free to
	// recompute, so a journaled run may resume with the tier switched on,
	// off, or retuned — the replayed purchased verdicts stay exact and
	// always take precedence over tier labels.
	Tier TierMode
	// TierHigh and TierLow are the Dice thresholds of the tier's three
	// bands: ≥ TierHigh labels Match, ≤ TierLow labels NonMatch, the band
	// strictly between stays Unknown and competes for the SMC allowance.
	// Both zero selects the defaults (0.95, 0.60); otherwise they must
	// satisfy 0 ≤ TierLow ≤ TierHigh ≤ 1.
	TierHigh, TierLow float64
	// TierM, TierK and TierQ are the CLK encoding parameters (filter
	// bits, hash functions per q-gram, gram size); zero values select the
	// conventional 1000/30/2.
	TierM, TierK, TierQ int
	// TierKey is the keyed-hash secret the holders share. In this
	// in-process engine both encoders live in one address space, so an
	// empty key selects a fixed default; the distributed session requires
	// an explicit key on the holders and never reveals it to the matcher.
	TierKey []byte

	// Epsilon, when positive, switches the run to differentially private
	// blocking (DESIGN.md §14): both holders bin their records on fixed
	// VGH ancestors via the deterministic dpblock binner and publish
	// Laplace-noised bin counts, so the exchanged view sizes are
	// (ε, δ)-DP instead of k-anonymous. The noise is pure padding — it
	// never hides a real bin member — but every padded (dummy) pair a
	// candidate bin contributes is charged against the SMC allowance, so
	// smaller ε buys stronger privacy at the price of recall. Epsilon is
	// the per-holder budget; the run's total spend (alice + bob, by
	// sequential composition across the two releases) is reported in
	// Result.DP. Zero (the default) keeps the paper's k-anonymization
	// pipeline. When set, AliceAnonymizer/BobAnonymizer must be nil or
	// dpblock binners, and AliceK/BobK are ignored by the binner.
	Epsilon float64
	// DPDelta is the truncation failure mass δ of the one-sided Laplace
	// mechanism; 0 selects dpblock.DefaultDelta.
	DPDelta float64
	// DPSeed derives both holders' deterministic noise streams (alice
	// uses DPSeed, bob DPSeed+1). It is part of the journal manifest: a
	// resumed run must re-derive identical noised counts.
	DPSeed int64
	// DPLevel is the VGH depth records are binned at (0 selects
	// dpblock.DefaultLevel). Coarser levels (smaller DPLevel) mean fewer,
	// larger bins: fewer candidates missed at bin boundaries but more
	// pairs per candidate bin.
	DPLevel int

	// Scale is the fixed-point factor for continuous values in the SMC
	// circuit; 1 (default via DefaultConfig) is exact for integer data.
	Scale int64
	// Comparator builds the SMC back end; nil = plaintext oracle.
	Comparator ComparatorFactory
	// SMCWorkers is the parallelism of the SMC step: the number of
	// protocol lanes the secure comparator shards comparisons across,
	// and the scaling factor for the engine's batch size. ≤ 0 (the
	// default) selects GOMAXPROCS.
	SMCWorkers int
	// SMCPacking selects the secure comparator's result encoding:
	// PackingPacked (the default and the zero value) or PackingOff.
	// Like SMCWorkers it changes only how verdicts are transported,
	// never what they are, so it is excluded from the journal manifest
	// and a journaled run may resume under either mode. The plaintext
	// oracle ignores it.
	SMCPacking PackingMode
	// Seed drives the random pair selection of TrainClassifier.
	Seed int64
	// Journal, when set, receives the run manifest and one record per
	// resolved SMC pair verdict as the comparator returns them, making
	// the run crash-resumable: a journal.Writer from journal.Create
	// records a fresh run, one from journal.Resume additionally replays
	// the interrupted run's verdicts so the engine never re-spends
	// allowance on pairs already purchased. Nil disables journaling.
	Journal journal.Sink
	// Context, when set, is polled at SMC chunk boundaries. On
	// cancellation the engine drains the in-flight chunk (so sharded
	// comparator lanes finish their frames cleanly), syncs the journal,
	// and returns an error wrapping ErrInterrupted. Nil means the run
	// cannot be interrupted.
	Context context.Context
	// Progress, when set, receives coarse stage events during Link:
	// "anonymize-alice", "anonymize-bob", "blocking" (done == total on
	// completion), periodic "tier" events with Unknown pairs scored vs
	// the Unknown total (TierBloom only), and periodic "smc" events with
	// comparisons done vs the allowance. Called synchronously on the
	// linking goroutine; keep it fast.
	Progress func(stage string, done, total int64)
}

// DefaultConfig returns the paper's Section VI defaults for the given
// quasi-identifier set: k = 32 for both holders, θ_i = 0.05, SMC
// allowance 1.5%, max-entropy anonymization, minAvgFirst ordering,
// maximize-precision labeling.
func DefaultConfig(qids []string) Config {
	return Config{
		QIDs:              qids,
		Theta:             0.05,
		AliceK:            32,
		BobK:              32,
		AllowanceFraction: 0.015,
		Scale:             1,
	}
}

// normalize fills defaults and validates, returning the resolved QID
// positions and the rule.
func (c *Config) normalize(schema *dataset.Schema) ([]int, *blocking.Rule, error) {
	if len(c.QIDs) == 0 {
		return nil, nil, fmt.Errorf("core: config has no quasi-identifiers")
	}
	qids, err := schema.Resolve(c.QIDs)
	if err != nil {
		return nil, nil, err
	}
	var rule *blocking.Rule
	if c.Thresholds != nil {
		if len(c.Thresholds) != len(qids) {
			return nil, nil, fmt.Errorf("core: %d thresholds for %d QIDs", len(c.Thresholds), len(qids))
		}
		rule, err = blocking.NewRule(distance.MetricsFor(schema, qids), c.Thresholds)
	} else {
		if c.Theta <= 0 {
			return nil, nil, fmt.Errorf("core: Theta must be positive (got %v)", c.Theta)
		}
		rule, err = blocking.RuleFor(schema, qids, c.Theta)
	}
	if err != nil {
		return nil, nil, err
	}
	if c.AliceK < 1 || c.BobK < 1 {
		return nil, nil, fmt.Errorf("core: anonymity requirements must be ≥ 1 (got %d, %d)", c.AliceK, c.BobK)
	}
	if c.Allowance < 0 || c.AllowanceFraction < 0 {
		return nil, nil, fmt.Errorf("core: negative SMC allowance")
	}
	if c.Epsilon != 0 || c.DPDelta != 0 || c.DPSeed != 0 || c.DPLevel != 0 {
		if c.Epsilon == 0 {
			return nil, nil, fmt.Errorf("core: DP parameters set without Epsilon > 0")
		}
		binner, err := dpblock.New(c.dpParams(0))
		if err != nil {
			return nil, nil, fmt.Errorf("core: %w", err)
		}
		// Store the resolved defaults back so digests, manifests and
		// reports see the effective δ and level, not the zero sentinels.
		c.DPDelta = binner.Params().Delta
		c.DPLevel = binner.Params().Level
		if c.AliceAnonymizer == nil {
			c.AliceAnonymizer = binner
		}
		if c.BobAnonymizer == nil {
			c.BobAnonymizer = binner
		}
		// Mixing DP blocking with a k-anonymizer is undefined: the
		// blocking step needs noised releases on both sides.
		if _, ok := c.AliceAnonymizer.(*dpblock.Binner); !ok {
			return nil, nil, fmt.Errorf("core: Epsilon set but AliceAnonymizer is %s, not the dp binner", c.AliceAnonymizer.Name())
		}
		if _, ok := c.BobAnonymizer.(*dpblock.Binner); !ok {
			return nil, nil, fmt.Errorf("core: Epsilon set but BobAnonymizer is %s, not the dp binner", c.BobAnonymizer.Name())
		}
	}
	if c.AliceAnonymizer == nil {
		c.AliceAnonymizer = anonymize.NewMaxEntropy()
	}
	if c.BobAnonymizer == nil {
		c.BobAnonymizer = anonymize.NewMaxEntropy()
	}
	if c.Heuristic == nil {
		c.Heuristic = heuristic.MinAvgFirst{}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Comparator == nil {
		c.Comparator = PlainComparatorFactory
	}
	if c.SMCWorkers <= 0 {
		c.SMCWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SMCPacking != PackingPacked && c.SMCPacking != PackingOff {
		return nil, nil, fmt.Errorf("core: unknown SMCPacking mode %d", int(c.SMCPacking))
	}
	switch c.Tier {
	case TierOff:
	case TierBloom:
		if c.TierM == 0 {
			c.TierM = 1000
		}
		if c.TierK == 0 {
			c.TierK = 30
		}
		if c.TierQ == 0 {
			c.TierQ = 2
		}
		if len(c.TierKey) == 0 {
			c.TierKey = []byte(defaultTierKey)
		}
		if c.TierHigh == 0 && c.TierLow == 0 {
			c.TierHigh, c.TierLow = defaultTierHigh, defaultTierLow
		}
		if c.TierLow < 0 || c.TierHigh > 1 || c.TierLow > c.TierHigh {
			return nil, nil, fmt.Errorf("core: tier thresholds must satisfy 0 ≤ low ≤ high ≤ 1 (got low=%v high=%v)", c.TierLow, c.TierHigh)
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown Tier mode %d", int(c.Tier))
	}
	return qids, rule, nil
}

// dpParams assembles the dpblock parameters for one holder. holder 0 is
// Alice, 1 is Bob: each release draws from its own seed so the two noise
// streams are independent even when the holders share bin keys.
func (c *Config) dpParams(holder int64) dpblock.Params {
	return dpblock.Params{
		Epsilon: c.Epsilon,
		Delta:   c.DPDelta,
		Seed:    c.DPSeed + holder,
		Level:   c.DPLevel,
	}
}

// DPEnabled reports whether the run uses differentially private blocking.
func (c *Config) DPEnabled() bool { return c.Epsilon > 0 }

// Tier defaults: the conservative thresholds keep the Match band tight
// (false matches are the costly error under MaximizePrecision) while the
// NonMatch band discards only clearly-dissimilar encodings.
const (
	defaultTierHigh = 0.95
	defaultTierLow  = 0.60
	defaultTierKey  = "pprl-tier-default-key"
)
