package core

import (
	"strings"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/blocking"
)

// TestBlockingModesAgree runs the same linkage under both blocking
// engines and requires identical outputs: same counts, same final label
// for every record pair, same SMC spending.
func TestBlockingModesAgree(t *testing.T) {
	alice, bob := workload(t, 600, 42)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 8, 8

	dense, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Blocking = BlockingIndexed
	indexed, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	db, ib := dense.Block, indexed.Block
	if db.MatchedPairs != ib.MatchedPairs || db.NonMatchedPairs != ib.NonMatchedPairs ||
		db.UnknownPairs != ib.UnknownPairs || db.UnknownGroups != ib.UnknownGroups {
		t.Fatalf("blocking counts diverge: dense M/N/U/UG = %d/%d/%d/%d, indexed = %d/%d/%d/%d",
			db.MatchedPairs, db.NonMatchedPairs, db.UnknownPairs, db.UnknownGroups,
			ib.MatchedPairs, ib.NonMatchedPairs, ib.UnknownPairs, ib.UnknownGroups)
	}
	if dense.Invocations != indexed.Invocations {
		t.Fatalf("SMC invocations diverge: dense %d, indexed %d", dense.Invocations, indexed.Invocations)
	}
	for i := 0; i < alice.Len(); i++ {
		for j := 0; j < bob.Len(); j++ {
			if d, x := dense.PairMatched(i, j), indexed.PairMatched(i, j); d != x {
				t.Fatalf("pair (%d,%d): dense says %v, indexed says %v", i, j, d, x)
			}
		}
	}
	if ib.Stats == nil {
		t.Error("indexed result carries no pruning stats")
	}
}

// TestBlockingBudget exercises the memory-budget gate: a budget smaller
// than the dense Labels matrix fails the dense run with a pointer to the
// indexed mode, while the indexed run completes under the same budget
// with identical results to an unbudgeted dense run.
func TestBlockingBudget(t *testing.T) {
	alice, bob := workload(t, 600, 42)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 4, 4 // low k → many classes → a real matrix

	reference, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	need := int64(len(reference.Block.R.Classes)) * int64(len(reference.Block.S.Classes))
	if need < 2 {
		t.Fatalf("workload degenerated to %d class pairs", need)
	}

	cfg.BlockingBudgetBytes = 64 // far below any real matrix
	if _, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg); err == nil {
		t.Fatal("dense blocking ran despite a 64-byte matrix budget")
	} else if !strings.Contains(err.Error(), "BlockingIndexed") {
		t.Fatalf("budget error should point at BlockingIndexed: %v", err)
	}

	cfg.Blocking = BlockingIndexed
	indexed, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatalf("indexed blocking failed under the budget: %v", err)
	}
	if got, want := indexed.MatchedPairCount(), reference.MatchedPairCount(); got != want {
		t.Fatalf("indexed run under budget reports %d matches, dense reference %d", got, want)
	}
	if indexed.Block.UnknownPairs != reference.Block.UnknownPairs {
		t.Fatalf("unknown pairs diverge: %d vs %d", indexed.Block.UnknownPairs, reference.Block.UnknownPairs)
	}
}

// TestReleaseLabelsKeepsSweepsWorking reuses one blocking result across
// LinkPrepared calls: the first resolve releases the dense matrix, and
// later sweeps must still see identical labels through the sparse form.
func TestReleaseLabelsKeepsSweepsWorking(t *testing.T) {
	alice, bob := workload(t, 400, 7)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 8, 8
	first, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Block.Labels != nil {
		t.Fatal("resolve should have released the dense Labels matrix")
	}
	again, err := LinkPrepared(Holder{Data: alice}, Holder{Data: bob}, first.Block, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.MatchedPairCount() != again.MatchedPairCount() {
		t.Fatalf("sweep over released block diverged: %d vs %d matches",
			first.MatchedPairCount(), again.MatchedPairCount())
	}
}

// TestDenseLabelsBytes sanity-checks the budget estimator the gate uses.
func TestDenseLabelsBytes(t *testing.T) {
	alice, bob := workload(t, 400, 7)
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 8, 8
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := blocking.DenseLabelsBytes(res.Block.R, res.Block.S)
	min := int64(len(res.Block.R.Classes)) * int64(len(res.Block.S.Classes))
	if est < min {
		t.Fatalf("estimate %d below one byte per class pair (%d pairs)", est, min)
	}
}
