package core

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/journal"
)

// journalCfg returns a small budgeted config so journals hold a
// non-trivial but fast number of verdicts.
func journalCfg() Config {
	cfg := DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 8, 8
	cfg.Allowance = 200
	return cfg
}

// sameLabeling asserts two results label every pair identically.
func sameLabeling(t *testing.T, a, b *Result, aliceLen, bobLen int) {
	t.Helper()
	for i := 0; i < aliceLen; i++ {
		for j := 0; j < bobLen; j++ {
			if a.PairMatched(i, j) != b.PairMatched(i, j) {
				t.Fatalf("pair (%d,%d): labelings diverge (%v vs %v)",
					i, j, a.PairMatched(i, j), b.PairMatched(i, j))
			}
		}
	}
}

// TestJournaledRunIsTransparent: journaling must not change a run's
// outcome, and the journal must hold exactly the comparisons performed.
func TestJournaledRunIsTransparent(t *testing.T) {
	alice, bob := workload(t, 300, 91)
	path := filepath.Join(t.TempDir(), "run.wal")

	base, err := Link(Holder{Data: alice}, Holder{Data: bob}, journalCfg())
	if err != nil {
		t.Fatal(err)
	}

	w, err := journal.Create(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := journalCfg()
	cfg.Journal = w
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sameLabeling(t, base, res, alice.Len(), bob.Len())
	if res.Resume.Resumed() {
		t.Errorf("fresh journaled run reports resume stats %v", res.Resume)
	}

	rec, err := journal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rec.Verdicts)) != res.Invocations {
		t.Errorf("journal holds %d verdicts, run performed %d comparisons", len(rec.Verdicts), res.Invocations)
	}
	if rec.Manifest.Allowance != res.Allowance || rec.Manifest.Heuristic != "minAvgFirst" {
		t.Errorf("manifest = %+v", rec.Manifest)
	}
}

// TestResumeNeverRespends: resuming a completed journal replays every
// verdict and performs zero live comparisons.
func TestResumeNeverRespends(t *testing.T) {
	alice, bob := workload(t, 300, 92)
	path := filepath.Join(t.TempDir(), "run.wal")

	w, err := journal.Create(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := journalCfg()
	cfg.Journal = w
	first, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if first.Invocations == 0 {
		t.Fatal("workload produced no SMC comparisons; test needs a live budget")
	}

	rw, err := journal.Resume(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := journalCfg()
	cfg2.Journal = rw
	second, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	if second.Invocations != 0 {
		t.Errorf("resume of a complete journal re-spent %d comparisons", second.Invocations)
	}
	if second.Resume.ResumedPairs != first.Invocations {
		t.Errorf("ResumedPairs = %d, journal held %d", second.Resume.ResumedPairs, first.Invocations)
	}
	if second.Resume.ReplayedAllowance != second.Resume.ResumedPairs {
		t.Errorf("ReplayedAllowance %d != ResumedPairs %d under the uniform cost model",
			second.Resume.ReplayedAllowance, second.Resume.ResumedPairs)
	}
	sameLabeling(t, first, second, alice.Len(), bob.Len())
}

// TestResumeRefusals: a journal must not resume a run whose parameters
// or inputs changed, and the error must say what changed.
func TestResumeRefusals(t *testing.T) {
	alice, bob := workload(t, 300, 93)
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := journal.Create(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := journalCfg()
	cfg.Journal = w
	if _, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	resumeWith := func(t *testing.T, cfg Config, a, b Holder) error {
		t.Helper()
		rw, err := journal.Resume(path, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer rw.Close()
		cfg.Journal = rw
		_, err = Link(a, b, cfg)
		return err
	}

	// Strategy changes the pair ordering but none of the manifest's
	// summary fields, so it must be caught by the config digest.
	t.Run("changed strategy", func(t *testing.T) {
		cfg := journalCfg()
		cfg.Strategy = MaximizeRecall
		err := resumeWith(t, cfg, Holder{Data: alice}, Holder{Data: bob})
		if err == nil || !strings.Contains(err.Error(), "config digest") {
			t.Errorf("err = %v, want config-digest refusal", err)
		}
	})
	t.Run("changed theta", func(t *testing.T) {
		cfg := journalCfg()
		cfg.Theta = 0.1
		err := resumeWith(t, cfg, Holder{Data: alice}, Holder{Data: bob})
		if err == nil || !strings.Contains(err.Error(), "journal") {
			t.Errorf("err = %v, want descriptive journal refusal", err)
		}
	})
	t.Run("changed k", func(t *testing.T) {
		cfg := journalCfg()
		cfg.AliceK = 16
		err := resumeWith(t, cfg, Holder{Data: alice}, Holder{Data: bob})
		if err == nil {
			t.Error("resume with changed k succeeded")
		}
	})
	t.Run("changed relation", func(t *testing.T) {
		a2, b2 := workload(t, 300, 555)
		err := resumeWith(t, journalCfg(), Holder{Data: a2}, Holder{Data: b2})
		if err == nil || !strings.Contains(err.Error(), "journal") {
			t.Errorf("err = %v, want refusal on changed inputs", err)
		}
	})
}

// cancelAfter wraps a journal sink and cancels a context once n verdict
// records have been appended, simulating an operator interrupt mid-run.
type cancelAfter struct {
	journal.Sink
	n      int
	cancel context.CancelFunc
}

func (c *cancelAfter) Record(i, j int, matched bool) error {
	if err := c.Sink.Record(i, j, matched); err != nil {
		return err
	}
	if c.n--; c.n == 0 {
		c.cancel()
	}
	return nil
}

// interruptCfg sizes the run so the SMC loop crosses several chunk
// boundaries (the engine polls the context at chunk boundaries only;
// the chunk holds at least 256 jobs).
func interruptCfg() Config {
	cfg := journalCfg()
	cfg.Allowance = 2000
	cfg.SMCWorkers = 1
	return cfg
}

// TestInterruptCheckpointsAndResumes: a cancelled context stops the run
// with ErrInterrupted, and the journaled prefix resumes into a result
// identical to an uninterrupted run.
func TestInterruptCheckpointsAndResumes(t *testing.T) {
	alice, bob := workload(t, 300, 94)
	path := filepath.Join(t.TempDir(), "run.wal")

	base, err := Link(Holder{Data: alice}, Holder{Data: bob}, interruptCfg())
	if err != nil {
		t.Fatal(err)
	}
	if base.Invocations < 600 {
		t.Skipf("workload resolved only %d pairs; need several chunks to interrupt mid-run", base.Invocations)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := journal.Create(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := interruptCfg()
	cfg.Journal = &cancelAfter{Sink: w, n: 100, cancel: cancel}
	cfg.Context = ctx
	_, err = Link(Holder{Data: alice}, Holder{Data: bob}, cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := journal.Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Verdicts) == 0 || int64(len(rec.Verdicts)) >= base.Invocations {
		t.Fatalf("interrupt checkpointed %d verdicts of %d; wanted a strict prefix", len(rec.Verdicts), base.Invocations)
	}

	rw, err := journal.Resume(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := interruptCfg()
	cfg2.Journal = rw
	res, err := Link(Holder{Data: alice}, Holder{Data: bob}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	sameLabeling(t, base, res, alice.Len(), bob.Len())
	if res.Resume.ResumedPairs != int64(len(rec.Verdicts)) {
		t.Errorf("resumed %d pairs, journal held %d", res.Resume.ResumedPairs, len(rec.Verdicts))
	}
	if res.Invocations+res.Resume.ReplayedAllowance != base.Invocations {
		t.Errorf("stitched accounting: %d live + %d replayed != %d uninterrupted",
			res.Invocations, res.Resume.ReplayedAllowance, base.Invocations)
	}
}
