package core

import (
	"fmt"

	"pprl/internal/blocking"
	"pprl/internal/bloom"
)

// tierProgressStride is how often the tier pass emits progress events.
const tierProgressStride = 1 << 16

// applyTier runs the triage tier (DESIGN.md §12) over the ordered Unknown
// group pairs: each member pair's CLK encodings are compared with the
// Dice coefficient and the confident bands are labeled without touching
// the SMC allowance. Pairs already holding a purchased verdict (replayed
// from a journal) are skipped — an exact verdict is never re-labeled by a
// heuristic one. Labels land in res.tierLabels and the per-group counts
// in res.tierInGroup; every label is journaled as a tier record so resume
// accounting can tell free labels from purchased ones.
func applyTier(alice, bob Holder, ordered []blocking.GroupPair, block *blocking.Result, qids []int, cfg *Config, res *Result, replayed map[int64]bool) error {
	enc, err := bloom.NewEncoder(cfg.TierM, cfg.TierK, cfg.TierQ, cfg.TierKey)
	if err != nil {
		return fmt.Errorf("core: tier encoder: %w", err)
	}
	aF := bloom.EncodeRecords(enc, alice.Data, qids)
	bF := bloom.EncodeRecords(enc, bob.Data, qids)

	res.tierLabels = make(map[int64]bool)
	res.tierInGroup = make(map[[2]int]int)
	total := block.UnknownPairs
	cfg.report("tier", 0, total)
	var done int64
	for _, gp := range ordered {
		rc := &block.R.Classes[gp.RI]
		sc := &block.S.Classes[gp.SI]
		group := [2]int{gp.RI, gp.SI}
		for _, i := range rc.Members {
			for _, j := range sc.Members {
				done++
				if done%tierProgressStride == 0 {
					cfg.report("tier", done, total)
				}
				key := pairKey(i, j, res.bobLen)
				if replayed != nil {
					if _, ok := replayed[key]; ok {
						continue
					}
				}
				switch bloom.Classify(aF[i].Dice(bF[j]), cfg.TierLow, cfg.TierHigh) {
				case bloom.BandMatch:
					res.tierLabels[key] = true
					res.tierMatched++
				case bloom.BandNonMatch:
					res.tierLabels[key] = false
					res.tierNonMatched++
				default:
					res.TierUncertainPairs++
					continue
				}
				res.tierInGroup[group]++
				if cfg.Journal != nil {
					if err := cfg.Journal.RecordTier(i, j, res.tierLabels[key]); err != nil {
						return fmt.Errorf("core: journal tier append (%d,%d): %w", i, j, err)
					}
				}
			}
		}
	}
	cfg.report("tier", done, total)
	return nil
}
