package service

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"pprl/internal/journal"
	"pprl/internal/testkit"
)

// TestServiceRestartRecovery is the acceptance path for journal-backed
// restarts: a job hard-stopped mid-SMC (simulated kill that leaves only
// the journaled prefix on disk) is re-queued by the next daemon start,
// resumes from its journal, completes with verdicts identical to an
// uninterrupted control run, and never re-spends the allowance already
// purchased — exact accounting: replayed + live = control's live total.
func TestServiceRestartRecovery(t *testing.T) {
	dataDir := writeDataDir(t, 120, 21)
	spec := testSpec()
	const crashAfter = 40 // verdicts journaled before the simulated kill

	// Control: the same spec, uninterrupted.
	_, control := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, JournalSync: 1})
	cid := submit(t, control, spec).ID
	waitState(t, control, cid, StateDone)
	want := getResult(t, control, cid)
	if want.Result.Invocations <= crashAfter {
		t.Fatalf("control spent only %d comparisons; crash point %d would not interrupt",
			want.Result.Invocations, crashAfter)
	}

	// Crash run: the journal sink dies after crashAfter verdicts. Like a
	// SIGKILL, no terminal state reaches disk — only the journaled prefix.
	dir := t.TempDir()
	s1, err := New(Config{
		Dir: dir, DataDir: dataDir, JournalSync: 1,
		Hooks: Hooks{
			WrapJournal: func(id string, w *journal.Writer) journal.Sink {
				return &testkit.CrashSink{W: w, Remaining: crashAfter}
			},
			HardStop: testkit.ErrCrash,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	jid := submit(t, ts1, spec).ID
	interrupted := waitState(t, ts1, jid, StateInterrupted)
	if interrupted.Error == "" {
		t.Error("interrupted job carries no error")
	}
	ts1.Close()
	s1.Drain()

	// Restart on the same service root, crash hooks gone. Recovery must
	// re-queue the job and the journal replay must carry the prefix.
	s2, err := New(Config{Dir: dir, DataDir: dataDir, JournalSync: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Drain()
	}()
	recovered := waitState(t, ts2, jid, StateDone)
	if recovered.Resumed == 0 {
		t.Error("recovered job does not report a resumption")
	}

	got := getResult(t, ts2, jid)

	// Identical verdicts: the matched pair set equals the control's.
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Errorf("resumed matches diverge from control: %d vs %d pairs",
			len(got.Matches), len(want.Matches))
	}
	if got.Result.MatchedPairs != want.Result.MatchedPairs ||
		got.Result.TotalPairs != want.Result.TotalPairs ||
		got.Result.Allowance != want.Result.Allowance {
		t.Errorf("resumed summary diverges: %+v vs %+v", got.Result, want.Result)
	}
	if !reflect.DeepEqual(got.Evaluation, want.Evaluation) {
		t.Errorf("resumed evaluation diverges: %+v vs %+v", got.Evaluation, want.Evaluation)
	}

	// Exact allowance accounting: the crashed run journaled crashAfter
	// verdicts; the resumed run replays exactly those and buys only the
	// remainder live. Nothing is purchased twice.
	if got.Result.Resume.ReplayedAllowance != crashAfter {
		t.Errorf("replayed allowance = %d, want %d", got.Result.Resume.ReplayedAllowance, crashAfter)
	}
	if live := got.Result.Invocations; live+crashAfter != want.Result.Invocations {
		t.Errorf("live %d + replayed %d != control's %d comparisons",
			live, crashAfter, want.Result.Invocations)
	}

	// The daemon's counters agree with the per-job accounting.
	if v := s2.mSMCReplayed.Value(); v != crashAfter {
		t.Errorf("smc_replayed_allowance_total = %d, want %d", v, crashAfter)
	}
	if v := s2.mSMCPurchased.Value(); v+crashAfter != want.Result.Invocations {
		t.Errorf("smc_comparisons_total = %d, want %d", v, want.Result.Invocations-crashAfter)
	}
}

// TestServiceDrainResume: a graceful drain (SIGTERM path) checkpoints a
// running job; the next daemon start completes it with full accounting.
func TestServiceDrainResume(t *testing.T) {
	dataDir := writeDataDir(t, 120, 33)
	spec := testSpec()
	spec.Allowance = 100000 // big enough that drain lands mid-run

	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, DataDir: dataDir, JournalSync: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	jid := submit(t, ts1, spec).ID
	waitState(t, ts1, jid, StateRunning, StateDone)
	s1.Drain() // what the daemon does on SIGTERM
	ts1.Close()

	st := s1.job(jid).Status()
	if st.State != StateInterrupted && st.State != StateDone {
		t.Fatalf("drained job settled as %q", st.State)
	}

	s2, err := New(Config{Dir: dir, DataDir: dataDir, JournalSync: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Drain()
	}()
	done := waitState(t, ts2, jid, StateDone)
	if st.State == StateInterrupted && done.Resumed == 0 {
		t.Error("resumed job does not report a resumption")
	}
	res := getResult(t, ts2, jid)
	if res.Result.MatchedPairs != int64(len(res.Matches)) {
		t.Errorf("matched_pairs %d != len(matches) %d", res.Result.MatchedPairs, len(res.Matches))
	}
	if total := res.Result.Invocations + res.Result.Resume.ReplayedAllowance; total > res.Result.Allowance {
		t.Errorf("spent %d > allowance %d", total, res.Result.Allowance)
	}
}
