package service

import (
	"fmt"
	"time"

	"pprl/internal/cliutil"
	"pprl/internal/core"
	"pprl/internal/incremental"
)

// DatasetSpec is the body of POST /v1/datasets: the linkage parameters a
// live dataset is registered under. They are pinned for the dataset's
// lifetime — the delta-equivalence contract (DESIGN.md §15) is stated
// against one fixed configuration, so there is no way to edit a
// registration; register a new dataset instead.
type DatasetSpec struct {
	// SchemaPath references a schema manifest (server-side, confined to
	// the data directory when one is configured); empty selects the
	// built-in Adult schema.
	SchemaPath string `json:"schema_path,omitempty"`
	// QIDs are the quasi-identifier attributes; empty selects the paper's
	// default Adult set (or every schema attribute for a custom schema).
	QIDs []string `json:"qids,omitempty"`
	// Theta is the uniform matching threshold (default 0.05).
	Theta float64 `json:"theta,omitempty"`
	// Level is the fixed binning depth below each hierarchy root (0 =
	// default). It replaces the frozen pipeline's anonymizer choice:
	// live datasets need insertion-stable bins, which only the
	// fixed-level binner provides.
	Level int `json:"level,omitempty"`
	// Allowance is the absolute lifetime SMC pool shared by every batch;
	// 0 means unlimited. There is no fraction form — the pair matrix it
	// would be a fraction of grows forever.
	Allowance int64 `json:"allowance,omitempty"`
	// Heuristic and Strategy take the CLI names; "classifier" is
	// rejected (it needs the full residual population).
	Heuristic string `json:"heuristic,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	// Epsilon > 0 runs the dataset under differentially private blocking.
	// Every append extends the same (ε, δ)-released histogram — see
	// SECURITY.md on repeated releases against a growing dataset.
	Epsilon float64 `json:"epsilon,omitempty"`
	DPDelta float64 `json:"dp_delta,omitempty"`
	DPSeed  int64   `json:"dp_seed,omitempty"`
	// Tier selects the triage tier: "off" (default) or "bloom".
	Tier     string  `json:"tier,omitempty"`
	TierHigh float64 `json:"tier_high,omitempty"`
	TierLow  float64 `json:"tier_low,omitempty"`
	// Secure runs the real Paillier protocol with KeyBits keys; false
	// uses the plaintext cost-model oracle.
	Secure  bool `json:"secure,omitempty"`
	KeyBits int  `json:"key_bits,omitempty"`
	// SMCWorkers is the SMC parallelism; Packing the secure comparator's
	// result encoding ("packed" default, "off").
	SMCWorkers int    `json:"smc_workers,omitempty"`
	Packing    string `json:"packing,omitempty"`
	// Seed is recorded in the journal manifest.
	Seed int64 `json:"seed,omitempty"`
	// Dedup links the dataset against itself: one side, unordered delta
	// pairs i < j. Append batches must then target side "alice".
	Dedup bool `json:"dedup,omitempty"`
	// QueueDepth bounds the per-dataset ingest queue (default 8). A POST
	// arriving at a full queue gets 503 + Retry-After, not a block.
	QueueDepth int `json:"queue_depth,omitempty"`
}

// Validate rejects registrations at the door, before any state exists.
func (s *DatasetSpec) Validate() error {
	if s.Theta != 0 {
		if err := cliutil.ThetaRange.Named("theta").Validate(s.Theta); err != nil {
			return err
		}
	}
	if s.Allowance < 0 || s.Level < 0 || s.KeyBits < 0 || s.QueueDepth < 0 {
		return fmt.Errorf("negative parameters are invalid")
	}
	if _, err := cliutil.HeuristicByName(s.Heuristic); err != nil {
		return err
	}
	strat, err := cliutil.StrategyByName(s.Strategy)
	if err != nil {
		return err
	}
	if strat == core.TrainClassifier {
		return fmt.Errorf("strategy %q needs the full residual population and cannot run incrementally", s.Strategy)
	}
	if s.Epsilon != 0 || s.DPDelta != 0 || s.DPSeed != 0 {
		if err := cliutil.EpsilonRange.Named("epsilon").Validate(s.Epsilon); err != nil {
			return err
		}
		if s.DPDelta != 0 {
			if err := cliutil.DeltaRange.Named("dp_delta").Validate(s.DPDelta); err != nil {
				return err
			}
		}
	}
	if _, err := cliutil.TierModeByName(s.Tier); err != nil {
		return err
	}
	if err := cliutil.TierBand(s.TierLow, s.TierHigh); err != nil {
		return err
	}
	if _, err := cliutil.PackingModeByName(s.Packing); err != nil {
		return err
	}
	return nil
}

// Config materializes the incremental engine configuration. Validate
// must have accepted the spec.
func (s *DatasetSpec) Config(qids []string) (incremental.Config, error) {
	cfg := incremental.Config{
		QIDs:      qids,
		Theta:     s.Theta,
		Level:     s.Level,
		Allowance: s.Allowance,
		Epsilon:   s.Epsilon,
		DPDelta:   s.DPDelta,
		DPSeed:    s.DPSeed,
		TierHigh:  s.TierHigh,
		TierLow:   s.TierLow,
		Seed:      s.Seed,
		Dedup:     s.Dedup,
	}
	var err error
	if cfg.Heuristic, err = cliutil.HeuristicByName(s.Heuristic); err != nil {
		return cfg, err
	}
	if cfg.Strategy, err = cliutil.StrategyByName(s.Strategy); err != nil {
		return cfg, err
	}
	if cfg.Tier, err = cliutil.TierModeByName(s.Tier); err != nil {
		return cfg, err
	}
	if s.Secure {
		keyBits := s.KeyBits
		if keyBits == 0 {
			keyBits = 1024
		}
		cfg.Comparator = core.SecureComparatorFactory(keyBits)
	}
	cfg.SMCWorkers = s.SMCWorkers
	if cfg.SMCPacking, err = cliutil.PackingModeByName(s.Packing); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// DatasetState is a live dataset's lifecycle position.
type DatasetState string

const (
	// DatasetReplaying: the daemon is re-applying journaled batches after
	// a restart; new appends queue behind the replay.
	DatasetReplaying DatasetState = "replaying"
	// DatasetActive: accepting appends and emitting deltas.
	DatasetActive DatasetState = "active"
	// DatasetFailed: an append failed; the engine refuses further batches
	// until the daemon restarts and rebuilds it from the journal.
	DatasetFailed DatasetState = "failed"
)

// DatasetStatus is the wire form of GET /v1/datasets/{id}.
type DatasetStatus struct {
	ID        string       `json:"id"`
	State     DatasetState `json:"state"`
	Error     string       `json:"error,omitempty"`
	Dedup     bool         `json:"dedup,omitempty"`
	CreatedAt time.Time    `json:"created_at"`
	// Accepted counts batches durably accepted (persisted, queued or
	// applied); Applied counts batches the engine has absorbed. Deltas
	// for batches < Applied are final and queryable.
	Accepted int `json:"accepted_batches"`
	Applied  int `json:"applied_batches"`
	// Stats is the engine's lifetime accounting snapshot.
	Stats incremental.Stats `json:"stats"`
}

// AppendRequest is the body of POST /v1/datasets/{id}/records: one batch
// of records as a server-side CSV reference (the daemon never accepts
// record data over the API, exactly as with job submissions).
type AppendRequest struct {
	// Side is "alice" (default) or "bob"; dedup datasets accept only
	// "alice".
	Side string `json:"side,omitempty"`
	// Path references the batch's CSV relation.
	Path string `json:"path"`
}

// AppendAck is the 202 response: the batch is durable and queued; its
// deltas appear under the returned batch index once applied.
type AppendAck struct {
	Dataset string `json:"dataset"`
	Batch   int    `json:"batch"`
	Side    int    `json:"side"`
	Records int    `json:"records"`
}

// DeltasResponse is the body of GET /v1/datasets/{id}/deltas?from=N: the
// Match pairs discovered by batches [from, next), which are exactly the
// pairs a consumer who integrated batches < from is missing. Polling
// with from=next never re-reads a delta.
type DeltasResponse struct {
	Dataset string              `json:"dataset"`
	From    int                 `json:"from"`
	Next    int                 `json:"next"`
	Deltas  []incremental.Delta `json:"deltas"`
}
