package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Store owns the service's on-disk layout. Every job lives in its own
// directory under <root>/jobs:
//
//	<root>/jobs/job-000001/
//	    spec.json    the accepted submission (written before queuing)
//	    run.wal      the core pipeline's journal (written while running)
//	    result.json  the final labeling summary (written on success)
//	    status.json  the terminal state for failed/canceled jobs
//
// The layout is the restart contract: a directory with neither
// result.json nor status.json is a job the daemon still owes the
// submitter, and the recovery scan re-queues it. Sequence-numbered IDs
// sort lexicographically, so recovery preserves the original FIFO
// order.
type Store struct {
	jobsDir string
	dataDir string

	mu        sync.Mutex
	nextSeq   int
	nextDSSeq int
}

// NewStore opens (creating if needed) the service root. dataDir, when
// non-empty, confines dataset references: specs may only name paths
// inside it.
func NewStore(root, dataDir string) (*Store, error) {
	jobsDir := filepath.Join(root, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating job root: %w", err)
	}
	st := &Store{jobsDir: jobsDir, dataDir: dataDir}
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return nil, fmt.Errorf("service: scanning job root: %w", err)
	}
	for _, e := range entries {
		if seq, ok := parseJobID(e.Name()); ok && seq > st.nextSeq {
			st.nextSeq = seq
		}
	}
	if dsEntries, err := os.ReadDir(st.datasetsDir()); err == nil {
		for _, e := range dsEntries {
			if seq, ok := parseDatasetID(e.Name()); ok && seq > st.nextDSSeq {
				st.nextDSSeq = seq
			}
		}
	}
	return st, nil
}

const jobIDPrefix = "job-"

func formatJobID(seq int) string { return fmt.Sprintf("%s%06d", jobIDPrefix, seq) }

func parseJobID(id string) (seq int, ok bool) {
	rest, found := strings.CutPrefix(id, jobIDPrefix)
	if !found {
		return 0, false
	}
	seq, err := strconv.Atoi(rest)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}

// specFile is the durable form of an accepted submission.
type specFile struct {
	ID          string    `json:"id"`
	Seq         int       `json:"seq"`
	SubmittedAt time.Time `json:"submitted_at"`
	Spec        JobSpec   `json:"spec"`
}

// statusFile records a terminal state that is not a result.
type statusFile struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// NewJob allocates the next job ID, creates its directory, and persists
// the spec — after which the job survives a daemon crash.
func (st *Store) NewJob(spec JobSpec) (*Job, error) {
	st.mu.Lock()
	st.nextSeq++
	seq := st.nextSeq
	st.mu.Unlock()
	id := formatJobID(seq)
	dir := st.JobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating job dir: %w", err)
	}
	j := newJob(id, seq, spec, time.Now().UTC())
	sf := specFile{ID: id, Seq: seq, SubmittedAt: j.SubmittedAt, Spec: spec}
	if err := writeJSONFile(filepath.Join(dir, "spec.json"), sf); err != nil {
		return nil, err
	}
	return j, nil
}

// JobDir returns the job's directory.
func (st *Store) JobDir(id string) string { return filepath.Join(st.jobsDir, id) }

// JournalPath returns the job's run journal.
func (st *Store) JournalPath(id string) string {
	return filepath.Join(st.JobDir(id), "run.wal")
}

// WriteResult persists the successful outcome atomically (write-rename),
// so a crash can never leave a readable-but-truncated result: either the
// job looks done or it looks resumable.
func (st *Store) WriteResult(id string, res *JobResult) error {
	return writeJSONFile(filepath.Join(st.JobDir(id), "result.json"), res)
}

// ReadResult loads a completed job's result.
func (st *Store) ReadResult(id string) (*JobResult, error) {
	raw, err := os.ReadFile(filepath.Join(st.JobDir(id), "result.json"))
	if err != nil {
		return nil, err
	}
	var res JobResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("service: corrupt result for %s: %w", id, err)
	}
	return &res, nil
}

// WriteTerminal persists a failed/canceled verdict so recovery does not
// re-run the job.
func (st *Store) WriteTerminal(id string, state State, errMsg string) error {
	return writeJSONFile(filepath.Join(st.JobDir(id), "status.json"), statusFile{State: state, Error: errMsg})
}

// ResolveData maps a spec's dataset reference to a real path. With a
// configured data directory the reference must stay inside it (no
// absolute paths, no ..-escapes); without one, any path goes.
func (st *Store) ResolveData(ref string) (string, error) {
	if ref == "" {
		return "", fmt.Errorf("service: empty dataset reference")
	}
	if st.dataDir == "" {
		return ref, nil
	}
	if filepath.IsAbs(ref) {
		return "", fmt.Errorf("service: dataset reference %q must be relative to the data directory", ref)
	}
	clean := filepath.Clean(ref)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("service: dataset reference %q escapes the data directory", ref)
	}
	return filepath.Join(st.dataDir, clean), nil
}

// Recover scans the job root and rebuilds the in-memory jobs in FIFO
// order. Jobs with a result are done; jobs with a terminal status keep
// it; everything else — including a job whose journal holds a partial
// (or even complete) run — is re-queued, and the journal replay
// guarantees already-purchased SMC verdicts are never bought again.
func (st *Store) Recover() ([]*Job, error) {
	entries, err := os.ReadDir(st.jobsDir)
	if err != nil {
		return nil, fmt.Errorf("service: scanning job root: %w", err)
	}
	var jobs []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := parseJobID(e.Name()); !ok {
			continue
		}
		j, err := st.recoverOne(e.Name())
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	return jobs, nil
}

func (st *Store) recoverOne(id string) (*Job, error) {
	dir := st.JobDir(id)
	raw, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("service: job %s has no readable spec: %w", id, err)
	}
	var sf specFile
	if err := json.Unmarshal(raw, &sf); err != nil {
		return nil, fmt.Errorf("service: job %s has a corrupt spec: %w", id, err)
	}
	j := newJob(id, sf.Seq, sf.Spec, sf.SubmittedAt)

	if _, err := os.Stat(filepath.Join(dir, "result.json")); err == nil {
		j.state = StateDone
		close(j.settled)
		return j, nil
	}
	if raw, err := os.ReadFile(filepath.Join(dir, "status.json")); err == nil {
		var stf statusFile
		if err := json.Unmarshal(raw, &stf); err == nil && stf.State.Terminal() {
			j.state = stf.State
			j.errMsg = stf.Error
			close(j.settled)
			return j, nil
		}
	}
	// In-flight at the previous daemon's death: back to the queue.
	j.markRecovered()
	return j, nil
}

// writeJSONFile writes v as indented JSON via a temp file + rename, so
// readers (and the recovery scan) never observe a partial document.
func writeJSONFile(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding %s: %w", filepath.Base(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: writing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: publishing %s: %w", filepath.Base(path), err)
	}
	return nil
}
