package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pprl/internal/adult"
	"pprl/internal/cliutil"
	"pprl/internal/dataset"
	"pprl/internal/incremental"
	"pprl/internal/journal"
)

// defaultQueueDepth bounds a dataset's ingest queue when the
// registration doesn't choose: enough to smooth a bursty producer,
// small enough that backpressure (503 + Retry-After) arrives before the
// daemon hoards unbounded record batches in memory.
const defaultQueueDepth = 8

// ingestBatch is one accepted append travelling from the HTTP handler to
// the dataset's drainer: the durable entry plus the already-parsed
// records (re-read from the entry's ref on recovery instead).
type ingestBatch struct {
	entry batchEntry
	recs  []dataset.Record
}

// liveDataset is one registered live dataset's runtime: the incremental
// engine, its journal, and the bounded ingest queue drained by a
// dedicated goroutine. Appends are accepted (persisted + queued) on the
// request path and applied asynchronously; deltas become queryable once
// their batch is applied.
type liveDataset struct {
	ID        string
	Seq       int
	Spec      DatasetSpec
	CreatedAt time.Time

	schema *dataset.Schema
	eng    *incremental.Engine
	jw     *journal.Writer
	queue  chan ingestBatch

	mu       sync.Mutex
	state    DatasetState
	errMsg   string
	accepted int
	changed  chan struct{}
}

// Status renders the wire form. A failed-at-recovery dataset has no
// engine; its stats are zero.
func (ld *liveDataset) StatusView() DatasetStatus {
	ld.mu.Lock()
	st := DatasetStatus{
		ID:        ld.ID,
		State:     ld.state,
		Error:     ld.errMsg,
		Dedup:     ld.Spec.Dedup,
		CreatedAt: ld.CreatedAt,
		Accepted:  ld.accepted,
	}
	ld.mu.Unlock()
	if ld.eng != nil {
		st.Stats = ld.eng.Stats()
		st.Applied = st.Stats.Batches
	}
	return st
}

// watch returns a channel closed at the next applied batch or state
// change, for the SSE stream.
func (ld *liveDataset) watch() <-chan struct{} {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.changed
}

// bump wakes watchers.
func (ld *liveDataset) bump() {
	ld.mu.Lock()
	close(ld.changed)
	ld.changed = make(chan struct{})
	ld.mu.Unlock()
}

// fail moves the dataset to failed and wakes watchers.
func (ld *liveDataset) fail(msg string) {
	ld.mu.Lock()
	ld.state = DatasetFailed
	ld.errMsg = msg
	close(ld.changed)
	ld.changed = make(chan struct{})
	ld.mu.Unlock()
}

// datasetSchema loads the registration's schema and default QIDs,
// mirroring how job execution resolves them.
func (s *Server) datasetSchema(spec DatasetSpec) (*dataset.Schema, []string, error) {
	schemaPath := ""
	if spec.SchemaPath != "" {
		p, err := s.store.ResolveData(spec.SchemaPath)
		if err != nil {
			return nil, nil, err
		}
		schemaPath = p
	}
	schema, err := cliutil.LoadSchemaOrAdult(schemaPath)
	if err != nil {
		return nil, nil, err
	}
	qids := spec.QIDs
	if len(qids) == 0 {
		if spec.SchemaPath == "" {
			qids = adult.DefaultQIDs()
		} else {
			qids = schema.Names()
		}
	}
	return schema, qids, nil
}

// buildDataset constructs the runtime for a registration: engine over
// the (possibly resumed) ingest journal, bounded queue, drainer
// goroutine seeded with the stored batches to replay.
func (s *Server) buildDataset(df datasetFile, stored []batchEntry) (*liveDataset, error) {
	schema, qids, err := s.datasetSchema(df.Spec)
	if err != nil {
		return nil, fmt.Errorf("service: dataset %s: %w", df.ID, err)
	}
	cfg, err := df.Spec.Config(qids)
	if err != nil {
		return nil, fmt.Errorf("service: dataset %s: %w", df.ID, err)
	}
	jw, resumed, err := journal.Open(s.store.DatasetJournalPath(df.ID), journal.Options{SyncEvery: s.cfg.JournalSync})
	if err != nil {
		return nil, fmt.Errorf("service: dataset %s: %w", df.ID, err)
	}
	var sink journal.BatchSink = jw
	if s.cfg.Hooks.WrapDatasetJournal != nil {
		sink = s.cfg.Hooks.WrapDatasetJournal(df.ID, jw)
	}
	cfg.Journal = sink
	if resumed {
		cfg.Recovered = jw.Recovered()
	}
	eng, err := incremental.New(schema, cfg)
	if err != nil {
		jw.Close()
		return nil, fmt.Errorf("service: dataset %s: %w", df.ID, err)
	}

	depth := df.Spec.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	ld := &liveDataset{
		ID:        df.ID,
		Seq:       df.Seq,
		Spec:      df.Spec,
		CreatedAt: df.CreatedAt,
		schema:    schema,
		eng:       eng,
		jw:        jw,
		queue:     make(chan ingestBatch, depth),
		state:     DatasetActive,
		accepted:  len(stored),
		changed:   make(chan struct{}),
	}
	if len(stored) > 0 {
		ld.state = DatasetReplaying
	}
	s.dsWG.Add(1)
	go s.runDataset(ld, stored)
	return ld, nil
}

// runDataset is a dataset's drainer: re-apply the stored schedule first
// (journal frames make the committed prefix free), then serve the queue
// until the daemon drains. An apply error ends the drainer — the engine
// is poisoned and only a rebuild from the journal can continue.
func (s *Server) runDataset(ld *liveDataset, stored []batchEntry) {
	defer s.dsWG.Done()
	defer ld.jw.Close()
	for _, be := range stored {
		recs, err := s.readBatchRecords(ld.schema, be.Ref)
		if err != nil {
			s.failDataset(ld, be, fmt.Errorf("re-reading stored batch: %w", err))
			return
		}
		if !s.applyBatch(ld, ingestBatch{entry: be, recs: recs}) {
			return
		}
	}
	ld.mu.Lock()
	if ld.state == DatasetReplaying {
		ld.state = DatasetActive
	}
	ld.mu.Unlock()
	for {
		select {
		case <-s.dsStop:
			// Queued-but-unapplied batches are persisted in batches.json;
			// the next daemon start replays them.
			return
		case ib := <-ld.queue:
			if !s.applyBatch(ld, ib) {
				return
			}
		}
	}
}

// applyBatch feeds one batch to the engine and publishes the outcome.
// Returns false when the dataset failed (real failures persist a
// terminal status; a simulated crash — Hooks.HardStop — leaves the disk
// as a SIGKILL would, so the next start resumes).
func (s *Server) applyBatch(ld *liveDataset, ib ingestBatch) bool {
	br, err := ld.eng.Append(ib.entry.Side, ib.recs)
	if err != nil {
		s.failDataset(ld, ib.entry, err)
		return false
	}
	if br.Replayed {
		s.mDatasetReplayed.Inc()
	} else {
		s.mDatasetBatches.Inc()
		s.mDatasetRecords.Add(int64(br.Records))
		s.mDatasetDeltas.Add(int64(len(br.Deltas)))
		s.mDatasetSpent.Add(br.Spent)
	}
	s.logf("dataset=%s batch=%d side=%d records=%d deltas=%d spent=%d replayed=%v",
		ld.ID, br.Batch, br.Side, br.Records, len(br.Deltas), br.Spent, br.Replayed)
	ld.bump()
	return true
}

func (s *Server) failDataset(ld *liveDataset, be batchEntry, err error) {
	ld.fail(err.Error())
	if s.cfg.Hooks.HardStop != nil && errors.Is(err, s.cfg.Hooks.HardStop) {
		// Simulated SIGKILL: no terminal state on disk, resumable.
		s.logf("dataset=%s batch=%d interrupted error=%q", ld.ID, be.Batch, err)
		return
	}
	if werr := s.store.WriteDatasetTerminal(ld.ID, err.Error()); werr != nil {
		s.logf("dataset=%s persisting failure: %v", ld.ID, werr)
	}
	s.logf("dataset=%s batch=%d state=failed error=%q", ld.ID, be.Batch, err)
}

// readBatchRecords loads one batch's records from its CSV reference.
func (s *Server) readBatchRecords(schema *dataset.Schema, ref string) ([]dataset.Record, error) {
	d, err := s.readDataset(schema, ref)
	if err != nil {
		return nil, err
	}
	return d.Records(), nil
}

// dataset looks a runtime up by id.
func (s *Server) dataset(id string) *liveDataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasets[id]
}

func (s *Server) handleDatasetCreate(w http.ResponseWriter, r *http.Request) {
	var spec DatasetSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, Errf(KindBadRequest, "decoding dataset spec: %v", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeErr(w, Errf(KindBadRequest, "%v", err))
		return
	}
	// Prove the schema loads before any state exists; a bad reference is
	// the submitter's error, not a poisoned dataset.
	if _, _, err := s.datasetSchema(spec); err != nil {
		writeErr(w, Errf(KindBadRequest, "%v", err))
		return
	}
	df, err := s.store.NewDataset(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	ld, err := s.buildDataset(*df, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	s.datasets[ld.ID] = ld
	s.mu.Unlock()
	s.mDatasets.Inc()
	s.logf("req=%s dataset=%s registered dedup=%v", requestID(r.Context()), ld.ID, spec.Dedup)
	writeAPI(w, http.StatusCreated, ld.StatusView())
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	lds := make([]*liveDataset, 0, len(s.datasets))
	for _, ld := range s.datasets {
		lds = append(lds, ld)
	}
	s.mu.Unlock()
	statuses := make([]DatasetStatus, 0, len(lds))
	for _, ld := range lds {
		statuses = append(statuses, ld.StatusView())
	}
	for i := 1; i < len(statuses); i++ {
		for k := i; k > 0 && statuses[k-1].ID > statuses[k].ID; k-- {
			statuses[k-1], statuses[k] = statuses[k], statuses[k-1]
		}
	}
	writeAPI(w, http.StatusOK, statuses)
}

func (s *Server) handleDatasetStatus(w http.ResponseWriter, r *http.Request) {
	ld := s.dataset(r.PathValue("id"))
	if ld == nil {
		writeErr(w, Errf(KindNotFound, "no such dataset"))
		return
	}
	writeAPI(w, http.StatusOK, ld.StatusView())
}

// parseSide maps the wire side name to the engine's index.
func parseSide(name string, dedup bool) (int, error) {
	switch name {
	case "", "alice":
		return 0, nil
	case "bob":
		if dedup {
			return 0, Errf(KindInvalid, "dedup datasets have one side; use \"alice\" or omit it")
		}
		return 1, nil
	default:
		return 0, Errf(KindBadRequest, "unknown side %q (want \"alice\" or \"bob\")", name)
	}
}

func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	ld := s.dataset(r.PathValue("id"))
	if ld == nil {
		writeErr(w, Errf(KindNotFound, "no such dataset"))
		return
	}
	var req AppendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, Errf(KindBadRequest, "decoding append request: %v", err))
		return
	}
	sideIdx, err := parseSide(req.Side, ld.Spec.Dedup)
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Path == "" {
		writeErr(w, Errf(KindBadRequest, "path is required"))
		return
	}
	// Parse the batch on the request path so a bad reference is the
	// caller's 400, not a poisoned engine later.
	recs, err := s.readBatchRecords(ld.schema, req.Path)
	if err != nil {
		writeErr(w, Errf(KindBadRequest, "reading batch: %v", err))
		return
	}
	if len(recs) == 0 {
		writeErr(w, Errf(KindBadRequest, "batch %q holds no records", req.Path))
		return
	}

	// Accept under the dataset lock: the durable schedule entry and the
	// queue slot move together, and only the drainer frees slots, so the
	// capacity check cannot race into a blocked send.
	ld.mu.Lock()
	if ld.state == DatasetFailed {
		ld.mu.Unlock()
		writeErr(w, Errf(KindConflict, "dataset is failed: %s", ld.errMsg))
		return
	}
	if len(ld.queue) == cap(ld.queue) {
		ld.mu.Unlock()
		writeErr(w, Errf(KindUnavailable, "ingest queue is full (%d batches pending); retry shortly", cap(ld.queue)))
		return
	}
	entry := batchEntry{Batch: ld.accepted, Side: sideIdx, Ref: req.Path, At: time.Now().UTC()}
	if err := s.store.AppendBatchEntry(ld.ID, entry); err != nil {
		ld.mu.Unlock()
		writeErr(w, err)
		return
	}
	ld.accepted++
	ld.queue <- ingestBatch{entry: entry, recs: recs}
	ld.mu.Unlock()

	s.logf("req=%s dataset=%s batch=%d side=%d records=%d accepted",
		requestID(r.Context()), ld.ID, entry.Batch, sideIdx, len(recs))
	writeAPI(w, http.StatusAccepted, AppendAck{
		Dataset: ld.ID, Batch: entry.Batch, Side: sideIdx, Records: len(recs),
	})
}

func (s *Server) handleDatasetDeltas(w http.ResponseWriter, r *http.Request) {
	ld := s.dataset(r.PathValue("id"))
	if ld == nil {
		writeErr(w, Errf(KindNotFound, "no such dataset"))
		return
	}
	if ld.eng == nil {
		writeErr(w, Errf(KindConflict, "dataset is failed: %s", ld.StatusView().Error))
		return
	}
	from := 0
	if raw := r.URL.Query().Get("from"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeErr(w, Errf(KindBadRequest, "from must be a non-negative batch index, got %q", raw))
			return
		}
		from = v
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamDeltas(w, r, ld, from)
		return
	}
	writeAPI(w, http.StatusOK, DeltasResponse{
		Dataset: ld.ID, From: from, Next: ld.eng.Batches(), Deltas: ld.eng.Deltas(from),
	})
}

// streamDeltas is the SSE variant: one event per applied-batch window,
// each carrying the deltas since the previous event, so a consumer who
// integrates every event (starting at ?from=N) holds exactly the match
// set of a frozen run — the delta-equivalence contract over a live
// connection.
func (s *Server) streamDeltas(w http.ResponseWriter, r *http.Request, ld *liveDataset, from int) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, Errf(KindInternal, "streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for {
		changed := ld.watch()
		next := ld.eng.Batches()
		if next > from {
			resp := DeltasResponse{Dataset: ld.ID, From: from, Next: next, Deltas: ld.eng.Deltas(from)}
			// Deltas(from) returns everything ≥ from; the window's upper
			// bound is whatever was applied when we snapshotted next.
			trimmed := resp.Deltas[:0]
			for _, d := range resp.Deltas {
				if d.Batch < next {
					trimmed = append(trimmed, d)
				}
			}
			resp.Deltas = trimmed
			raw, err := json.Marshal(resp)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
				return
			}
			flusher.Flush()
			from = next
		}
		if st := ld.StatusView(); st.State == DatasetFailed {
			fmt.Fprintf(w, "event: error\ndata: %q\n\n", st.Error)
			flusher.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.dsStop:
			return
		}
	}
}
