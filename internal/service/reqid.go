package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// requestIDHeader is the correlation-id header: clients may supply one
// (so a retry and its original share an id in the daemon log), the
// daemon generates one otherwise, and every response echoes it.
const requestIDHeader = "X-Request-Id"

type reqIDKey struct{}

// requestID extracts the correlation id installed by withRequestID.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// newRequestID draws a fresh correlation id: 8 random bytes, hex — short
// enough for a log line, unique enough across daemon restarts.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client-supplied ids that are safe to echo into
// headers and log lines: short, printable ASCII, no whitespace.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// withRequestID is the correlation-id middleware: accept or mint the id,
// stash it in the request context for handler log lines (req=… job=…
// dataset=…), and echo it in the response so the client can quote it
// back when reporting a problem.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
	})
}
