package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func specN(n string) JobSpec { return JobSpec{AlicePath: n + "-a.csv", BobPath: n + "-b.csv"} }

func waitSettled(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Settled():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never settled (state %s)", j.ID, j.State())
	}
}

// TestSchedulerFIFO: with one worker, jobs run strictly in submission
// order.
func TestSchedulerFIFO(t *testing.T) {
	var mu sync.Mutex
	var order []string
	s := NewScheduler(1, func(ctx context.Context, j *Job) {
		mu.Lock()
		order = append(order, j.ID)
		mu.Unlock()
		j.finish(StateDone, "")
	})
	defer s.Drain()

	var jobs []*Job
	for i := 1; i <= 5; i++ {
		j := newJob(formatJobID(i), i, specN("x"), time.Now())
		jobs = append(jobs, j)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		waitSettled(t, j)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
	for i, id := range order {
		if want := formatJobID(i + 1); id != want {
			t.Errorf("position %d ran %s, want %s", i, id, want)
		}
	}
}

// TestSchedulerConcurrencyBound: with W workers and N>W jobs, never more
// than W run at once, and all complete.
func TestSchedulerConcurrencyBound(t *testing.T) {
	const workers, n = 3, 12
	var current, peak atomic.Int64
	s := NewScheduler(workers, func(ctx context.Context, j *Job) {
		c := current.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		current.Add(-1)
		j.finish(StateDone, "")
	})
	defer s.Drain()

	var jobs []*Job
	for i := 1; i <= n; i++ {
		j := newJob(formatJobID(i), i, specN("x"), time.Now())
		jobs = append(jobs, j)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		waitSettled(t, j)
		if st := j.State(); st != StateDone {
			t.Errorf("job %s settled as %s", j.ID, st)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", p, workers)
	}
}

// blockingExec mimics the server executor's settle logic: run until the
// context ends, then settle as canceled or interrupted.
func blockingExec(started chan<- *Job) func(ctx context.Context, j *Job) {
	return func(ctx context.Context, j *Job) {
		if started != nil {
			started <- j
		}
		<-ctx.Done()
		if j.UserCanceled() {
			j.finish(StateCanceled, "canceled")
		} else {
			j.finish(StateInterrupted, "interrupted")
		}
	}
}

// TestSchedulerCancelQueued: canceling a job that has not started
// settles it immediately and it never runs.
func TestSchedulerCancelQueued(t *testing.T) {
	started := make(chan *Job, 2)
	s := NewScheduler(1, blockingExec(started))

	first := newJob(formatJobID(1), 1, specN("x"), time.Now())
	second := newJob(formatJobID(2), 2, specN("y"), time.Now())
	if err := s.Enqueue(first); err != nil {
		t.Fatal(err)
	}
	<-started // first occupies the only worker
	if err := s.Enqueue(second); err != nil {
		t.Fatal(err)
	}

	if wasQueued := s.Cancel(second); !wasQueued {
		t.Fatal("Cancel of a queued job should report wasQueued")
	}
	waitSettled(t, second)
	if st := second.State(); st != StateCanceled {
		t.Fatalf("queued job canceled into %s", st)
	}

	s.Drain() // interrupts first; second must not reach the worker
	waitSettled(t, first)
	if st := first.State(); st != StateInterrupted {
		t.Errorf("running job drained into %s", st)
	}
	select {
	case j := <-started:
		t.Errorf("canceled job %s still ran", j.ID)
	default:
	}
}

// TestSchedulerCancelRunning: canceling a running job cancels its
// context and it settles as canceled, freeing the worker.
func TestSchedulerCancelRunning(t *testing.T) {
	started := make(chan *Job, 2)
	s := NewScheduler(1, blockingExec(started))
	defer s.Drain()

	first := newJob(formatJobID(1), 1, specN("x"), time.Now())
	second := newJob(formatJobID(2), 2, specN("y"), time.Now())
	for _, j := range []*Job{first, second} {
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	if wasQueued := s.Cancel(first); wasQueued {
		t.Fatal("Cancel of a running job should not report wasQueued")
	}
	waitSettled(t, first)
	if st := first.State(); st != StateCanceled {
		t.Fatalf("running job canceled into %s", st)
	}
	// The worker must move on to the next job.
	select {
	case j := <-started:
		if j != second {
			t.Fatalf("worker picked up %s, want %s", j.ID, second.ID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker never freed after cancellation")
	}
}

// TestSchedulerDrainKeepsQueue: Drain interrupts running jobs but leaves
// queued jobs queued (they belong to the next daemon start), and refuses
// new submissions.
func TestSchedulerDrainKeepsQueue(t *testing.T) {
	started := make(chan *Job, 1)
	s := NewScheduler(1, blockingExec(started))

	running := newJob(formatJobID(1), 1, specN("x"), time.Now())
	queued := newJob(formatJobID(2), 2, specN("y"), time.Now())
	for _, j := range []*Job{running, queued} {
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	<-started
	s.Drain()
	waitSettled(t, running)
	if st := running.State(); st != StateInterrupted {
		t.Errorf("running job drained into %s", st)
	}
	if st := queued.State(); st != StateQueued {
		t.Errorf("queued job drained into %s, want queued", st)
	}
	if err := s.Enqueue(newJob(formatJobID(3), 3, specN("z"), time.Now())); err == nil {
		t.Error("Enqueue accepted a job after Drain")
	}
}
