package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pprl/internal/adult"
	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/dpblock"
	"pprl/internal/journal"
	"pprl/internal/oracle"
	"pprl/internal/testkit"
)

// serviceAmple is an allowance no smoke-scale run exhausts, so the
// delta-equivalence oracle applies.
const serviceAmple = 1 << 30

// writeCSV writes one dataset (or slice) as a CSV batch file.
func writeCSV(t *testing.T, dir, name string, d *dataset.Dataset) string {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return name
}

// sliceBatches cuts a relation into n contiguous batch files named
// <prefix>0.csv … and returns the refs. The concatenation equals the
// original relation, so frozen-run record indexes line up with the
// incremental engine's.
func sliceBatches(t *testing.T, dir, prefix string, d *dataset.Dataset, n int) []string {
	t.Helper()
	refs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*d.Len()/n, (i+1)*d.Len()/n
		refs = append(refs, writeCSV(t, dir, fmt.Sprintf("%s%d.csv", prefix, i), d.Slice(lo, hi)))
	}
	return refs
}

func registerDataset(t *testing.T, ts *httptest.Server, spec DatasetSpec) DatasetStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("register returned %d: %s", resp.StatusCode, raw)
	}
	var st DatasetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// appendBatch posts one append; returns the HTTP code and, on 202, the ack.
func appendBatch(t *testing.T, ts *httptest.Server, id string, req AppendRequest) (int, AppendAck) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/datasets/"+id+"/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, AppendAck{}
	}
	var ack AppendAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, ack
}

func getDatasetStatus(t *testing.T, ts *httptest.Server, id string) DatasetStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/datasets/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st DatasetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitDataset polls until cond holds or the deadline passes.
func waitDataset(t *testing.T, ts *httptest.Server, id string, what string, cond func(DatasetStatus) bool) DatasetStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getDatasetStatus(t, ts, id)
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset %s never reached %q; last status %+v", id, what, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getDeltas(t *testing.T, ts *httptest.Server, id string, from int) DeltasResponse {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/datasets/%s/deltas?from=%d", ts.URL, id, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("deltas returned %d: %s", resp.StatusCode, raw)
	}
	var dr DeltasResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	return dr
}

// TestServiceIncrementalSmoke is the acceptance path for live datasets:
// register → append batches → simulated kill mid-ingest → restart →
// journal replay plus fresh appends → the exposed delta union is
// pair-identical to a frozen run over the final relations, with exact
// allowance accounting across the crash.
func TestServiceIncrementalSmoke(t *testing.T) {
	dataDir := t.TempDir()
	full := adult.Generate(120, 31)
	da, db := dataset.SplitOverlap(full, rand.New(rand.NewSource(32)))
	aliceRefs := sliceBatches(t, dataDir, "a", da, 3)
	bobRefs := sliceBatches(t, dataDir, "b", db, 2)
	// The append schedule interleaves sides, exercising both directions
	// of the live index.
	schedule := []AppendRequest{
		{Side: "alice", Path: aliceRefs[0]},
		{Side: "bob", Path: bobRefs[0]},
		{Side: "alice", Path: aliceRefs[1]},
		{Side: "bob", Path: bobRefs[1]},
		{Side: "alice", Path: aliceRefs[2]},
	}

	// Frozen oracle: one run over the final relations under the same
	// fixed-level binning the live dataset uses.
	lb, err := dpblock.NewLevelBinner(0)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := core.DefaultConfig(adult.DefaultQIDs())
	fcfg.AliceAnonymizer, fcfg.BobAnonymizer = lb, lb
	fcfg.AliceK, fcfg.BobK = 1, 1
	fcfg.Allowance = serviceAmple
	fcfg.Scale = 1
	frozen, err := core.Link(core.Holder{Data: da}, core.Holder{Data: db}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Invocations < 3 {
		t.Fatalf("frozen run purchased only %d comparisons; workload too small to crash mid-ingest", frozen.Invocations)
	}

	// Phase 1: the ingest journal dies after a handful of appends —
	// like a SIGKILL, nothing terminal reaches disk.
	dir := t.TempDir()
	crashAfter := int(frozen.Invocations / 2)
	s1, err := New(Config{
		Dir: dir, DataDir: dataDir, JournalSync: 1,
		Hooks: Hooks{
			WrapDatasetJournal: func(id string, w *journal.Writer) journal.BatchSink {
				return &testkit.CrashSink{W: w, Remaining: crashAfter}
			},
			HardStop: testkit.ErrCrash,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	ds := registerDataset(t, ts1, DatasetSpec{Allowance: serviceAmple})

	accepted := make([]bool, len(schedule))
	for i, req := range schedule {
		code, ack := appendBatch(t, ts1, ds.ID, req)
		switch code {
		case http.StatusAccepted:
			accepted[i] = true
			if ack.Batch < 0 || ack.Records == 0 {
				t.Fatalf("ack %+v malformed", ack)
			}
		case http.StatusConflict:
			// The drainer already hit the injected crash; later batches
			// are refused and will be re-posted after the restart.
		default:
			t.Fatalf("append %d returned %d", i, code)
		}
	}
	failed := waitDataset(t, ts1, ds.ID, "failed", func(st DatasetStatus) bool {
		return st.State == DatasetFailed
	})
	if failed.Error == "" {
		t.Error("failed dataset carries no error")
	}
	// The injected crash must look like a kill: no terminal state file.
	if _, err := os.Stat(filepath.Join(dir, "datasets", ds.ID, "status.json")); !os.IsNotExist(err) {
		t.Errorf("simulated crash persisted a terminal status (stat err %v)", err)
	}
	// Appends to a failed dataset classify as terminal conflicts.
	code, _ := appendBatch(t, ts1, ds.ID, schedule[0])
	if code != http.StatusConflict {
		t.Errorf("append to failed dataset returned %d, want 409", code)
	}
	ts1.Close()
	s1.Drain()

	// Phase 2: restart on the same root, crash hooks gone. Recovery
	// replays the accepted schedule through the journal.
	s2, err := New(Config{Dir: dir, DataDir: dataDir, JournalSync: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Drain()
	}()
	waitDataset(t, ts2, ds.ID, "replay done", func(st DatasetStatus) bool {
		return st.State == DatasetActive && st.Applied == st.Accepted
	})
	for i, req := range schedule {
		if accepted[i] {
			continue
		}
		if code, _ := appendBatch(t, ts2, ds.ID, req); code != http.StatusAccepted {
			t.Fatalf("re-append %d returned %d", i, code)
		}
	}
	final := waitDataset(t, ts2, ds.ID, "all batches applied", func(st DatasetStatus) bool {
		return st.Applied == len(schedule)
	})

	// The exposed delta union must be pair-identical to the frozen run.
	dr := getDeltas(t, ts2, ds.ID, 0)
	if dr.Next != len(schedule) {
		t.Errorf("deltas next = %d, want %d", dr.Next, len(schedule))
	}
	pairs := make([][2]int, 0, len(dr.Deltas))
	for _, d := range dr.Deltas {
		pairs = append(pairs, [2]int{d.I, d.J})
	}
	if err := oracle.CheckIncrementalDeltas(pairs, frozen, da.Len(), db.Len()); err != nil {
		t.Error(err)
	}

	// Exact accounting across the crash: replayed + live purchases equal
	// the frozen run's comparisons, nothing bought twice.
	if got := final.Stats.Purchased + final.Stats.Replayed; got != frozen.Invocations {
		t.Errorf("purchased %d + replayed %d != frozen invocations %d",
			final.Stats.Purchased, final.Stats.Replayed, frozen.Invocations)
	}
	if final.Stats.Replayed == 0 {
		t.Error("restart replayed no verdicts; the crash point never bit")
	}

	// Incremental paging: from=N serves only batches ≥ N.
	page := getDeltas(t, ts2, ds.ID, 3)
	for _, d := range page.Deltas {
		if d.Batch < 3 {
			t.Errorf("deltas?from=3 returned batch %d", d.Batch)
		}
	}
	if want := len(getDeltas(t, ts2, ds.ID, 0).Deltas) - len(deltasBefore(dr, 3)); len(page.Deltas) != want {
		t.Errorf("paged deltas = %d, want %d", len(page.Deltas), want)
	}

	// The SSE variant serves the same window as its first event.
	streamResp, err := http.Get(fmt.Sprintf("%s/v1/datasets/%s/deltas?from=0&stream=1", ts2.URL, ds.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(streamResp.Body)
	var event DeltasResponse
	for sc.Scan() {
		if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			if err := json.Unmarshal([]byte(line), &event); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if len(event.Deltas) != len(dr.Deltas) || event.Next != dr.Next {
		t.Errorf("stream event (%d deltas, next %d) diverges from poll (%d, %d)",
			len(event.Deltas), event.Next, len(dr.Deltas), dr.Next)
	}

	// Correlation ids: echoed when supplied, minted otherwise.
	req, _ := http.NewRequest("GET", ts2.URL+"/v1/datasets/"+ds.ID, nil)
	req.Header.Set("X-Request-Id", "smoke-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "smoke-req-7" {
		t.Errorf("request id echoed as %q", got)
	}
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Error("no request id minted for an id-less request")
	}
}

// deltasBefore counts a response's deltas with batch < n.
func deltasBefore(dr DeltasResponse, n int) []int {
	var out []int
	for _, d := range dr.Deltas {
		if d.Batch < n {
			out = append(out, d.Batch)
		}
	}
	return out
}

// TestServiceDedupDataset: a dedup registration links one relation with
// itself; the delta union over multiple appends equals the exact rule's
// unordered match pairs, normalized i < j.
func TestServiceDedupDataset(t *testing.T) {
	dataDir := t.TempDir()
	d := adult.Generate(60, 41)
	refs := sliceBatches(t, dataDir, "d", d, 3)

	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir})
	ds := registerDataset(t, ts, DatasetSpec{Dedup: true, Allowance: serviceAmple})
	if !ds.Dedup {
		t.Error("registration lost the dedup flag")
	}

	// Dedup datasets have one side.
	if code, _ := appendBatch(t, ts, ds.ID, AppendRequest{Side: "bob", Path: refs[0]}); code != http.StatusUnprocessableEntity {
		t.Errorf("bob append to dedup dataset returned %d, want 422", code)
	}
	for _, ref := range refs {
		if code, _ := appendBatch(t, ts, ds.ID, AppendRequest{Path: ref}); code != http.StatusAccepted {
			t.Fatalf("append %s returned %d", ref, code)
		}
	}
	waitDataset(t, ts, ds.ID, "applied", func(st DatasetStatus) bool {
		return st.Applied == len(refs)
	})

	schema := d.Schema()
	qids, err := schema.Resolve(adult.DefaultQIDs())
	if err != nil {
		t.Fatal(err)
	}
	rule, err := blocking.RuleFor(schema, qids, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	orc, err := oracle.New(d, d, qids, rule)
	if err != nil {
		t.Fatal(err)
	}
	dr := getDeltas(t, ts, ds.ID, 0)
	pairs := make([][2]int, 0, len(dr.Deltas))
	for _, del := range dr.Deltas {
		pairs = append(pairs, [2]int{del.I, del.J})
	}
	if err := oracle.CheckDedupDeltas(pairs, orc); err != nil {
		t.Error(err)
	}
}

// TestServiceDatasetValidation: registrations and appends are rejected
// at the door with classified errors.
func TestServiceDatasetValidation(t *testing.T) {
	dataDir := t.TempDir()
	d := adult.Generate(20, 5)
	ref := writeCSV(t, dataDir, "d.csv", d)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir})

	bad := []DatasetSpec{
		{Theta: -1},                  // negative threshold
		{Strategy: "classifier"},     // needs the full residual population
		{Heuristic: "nope"},          // unknown heuristic
		{Epsilon: -2},                // bad DP budget
		{SchemaPath: "missing.json"}, // unloadable schema
	}
	for i, spec := range bad {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ae struct {
			Kind      string `json:"kind"`
			Retryable bool   `json:"retryable"`
		}
		json.NewDecoder(resp.Body).Decode(&ae)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d returned %d, want 400", i, resp.StatusCode)
		}
		if ae.Kind != "bad_request" || ae.Retryable {
			t.Errorf("bad spec %d classified kind=%q retryable=%v", i, ae.Kind, ae.Retryable)
		}
	}

	// Unknown dataset: classified not_found.
	resp, err := http.Get(ts.URL + "/v1/datasets/ds-000099")
	if err != nil {
		t.Fatal(err)
	}
	var ae apiError
	json.NewDecoder(resp.Body).Decode(&ae)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || ae.Kind != KindNotFound {
		t.Errorf("unknown dataset returned %d kind=%q", resp.StatusCode, ae.Kind)
	}

	// Bad appends against a real dataset.
	ds := registerDataset(t, ts, DatasetSpec{})
	appends := []struct {
		req  AppendRequest
		code int
	}{
		{AppendRequest{Path: ""}, http.StatusBadRequest},
		{AppendRequest{Side: "carol", Path: ref}, http.StatusBadRequest},
		{AppendRequest{Path: "missing.csv"}, http.StatusBadRequest},
		{AppendRequest{Path: "../escape.csv"}, http.StatusBadRequest},
	}
	for i, c := range appends {
		if code, _ := appendBatch(t, ts, ds.ID, c.req); code != c.code {
			t.Errorf("append case %d returned %d, want %d", i, code, c.code)
		}
	}
}
