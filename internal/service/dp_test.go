package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServiceDPJob: a job submitted with anonymizer "dp" runs under
// differentially private blocking, reports the ε accounting in its
// result, and feeds the DP counters in /metrics.
func TestServiceDPJob(t *testing.T) {
	dataDir := writeDataDir(t, 120, 11)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, Workers: 1})

	spec := testSpec()
	spec.K = 0
	spec.Anonymizer = "dp"
	spec.Epsilon = 8
	spec.DPSeed = 3
	spec.Allowance = 2000
	job := submit(t, ts, spec)
	waitState(t, ts, job.ID, StateDone)
	res := getResult(t, ts, job.ID)

	dp := res.Result.DP
	if dp == nil {
		t.Fatal("DP job result carries no dp accounting")
	}
	if dp.TotalEpsilon != 16 {
		t.Errorf("total_epsilon = %v, want 8 + 8", dp.TotalEpsilon)
	}
	if dp.AliceBins == 0 || dp.BobBins == 0 {
		t.Errorf("bin counts zero: %+v", dp)
	}
	if spent := res.Result.Invocations + dp.DummySpent; spent > res.Result.Allowance {
		t.Errorf("spent %d (real %d + dummy %d) over allowance %d",
			spent, res.Result.Invocations, dp.DummySpent, res.Result.Allowance)
	}
	// DP blocking never asserts matches; with Evaluate on, everything
	// reported came from an exact layer, so precision is 1.
	if res.Evaluation == nil {
		t.Fatal("evaluation missing")
	}
	if res.Evaluation.FalsePositives != 0 {
		t.Errorf("DP job reported %d false positives; exact layers own Match labels",
			res.Evaluation.FalsePositives)
	}

	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	for _, want := range []string{
		"pprl_dp_jobs_total 1",
		"pprl_dp_epsilon_spent_milli_total 16000",
		"pprl_dp_dummy_pairs_total",
		"pprl_dp_dummy_spent_total",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("metrics missing %q:\n%s", want, mraw)
		}
	}
}

// TestServiceDPSpecValidation: malformed DP specs are rejected at submit
// time with HTTP 400.
func TestServiceDPSpecValidation(t *testing.T) {
	dataDir := writeDataDir(t, 40, 11)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, Workers: 1})

	cases := map[string]JobSpec{}

	noEps := testSpec()
	noEps.Anonymizer = "dp"
	cases["dp anonymizer without epsilon"] = noEps

	clash := testSpec()
	clash.Anonymizer = "datafly"
	clash.Epsilon = 2
	cases["epsilon with a k-anonymizer"] = clash

	negEps := testSpec()
	negEps.Anonymizer = "dp"
	negEps.Epsilon = -1
	cases["negative epsilon"] = negEps

	badDelta := testSpec()
	badDelta.Anonymizer = "dp"
	badDelta.Epsilon = 2
	badDelta.DPDelta = 0.7
	cases["delta out of range"] = badDelta

	badLevel := testSpec()
	badLevel.Anonymizer = "dp"
	badLevel.Epsilon = 2
	badLevel.DPLevel = -3
	cases["negative level"] = badLevel

	for name, spec := range cases {
		if _, code := submitCode(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("%s: accepted with HTTP %d", name, code)
		}
	}
}
