package service

import (
	"errors"
	"fmt"
	"net/http"
)

// ErrKind classifies service errors for API clients: every error body
// carries the kind plus a retryable bit, so a caller can distinguish "fix
// your request" (terminal) from "back off and resend the same request"
// (retryable) without parsing message strings.
type ErrKind string

const (
	// KindBadRequest: the request is malformed (unparseable body, bad
	// parameter types). Terminal — resending the same bytes cannot help.
	KindBadRequest ErrKind = "bad_request"
	// KindInvalid: the request parsed but names a configuration the
	// service cannot honor (e.g. a distributed job on a daemon with no
	// worker fleet). Terminal for this daemon configuration.
	KindInvalid ErrKind = "invalid"
	// KindNotFound: the referenced job or dataset does not exist.
	KindNotFound ErrKind = "not_found"
	// KindConflict: the resource exists but is in the wrong state for the
	// operation (result of an unfinished job, appends to a failed
	// dataset). Terminal now, though the state may change on its own.
	KindConflict ErrKind = "conflict"
	// KindUnavailable: a capacity limit (draining scheduler, full ingest
	// queue). Retryable — the same request succeeds once load drains.
	KindUnavailable ErrKind = "unavailable"
	// KindInternal: the service itself failed. Not classified retryable;
	// the operator should look before the client hammers.
	KindInternal ErrKind = "internal"
)

// HTTPStatus maps the kind to its response code.
func (k ErrKind) HTTPStatus() int {
	switch k {
	case KindBadRequest:
		return http.StatusBadRequest
	case KindInvalid:
		return http.StatusUnprocessableEntity
	case KindNotFound:
		return http.StatusNotFound
	case KindConflict:
		return http.StatusConflict
	case KindUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Retryable reports whether resending the identical request can succeed
// without the caller changing anything.
func (k ErrKind) Retryable() bool { return k == KindUnavailable }

// kindFromStatus recovers the kind for handlers that still speak in raw
// status codes, keeping every error body uniformly classified.
func kindFromStatus(code int) ErrKind {
	switch code {
	case http.StatusBadRequest:
		return KindBadRequest
	case http.StatusUnprocessableEntity:
		return KindInvalid
	case http.StatusNotFound:
		return KindNotFound
	case http.StatusConflict:
		return KindConflict
	case http.StatusServiceUnavailable:
		return KindUnavailable
	default:
		return KindInternal
	}
}

// kindError carries a classification along an error chain.
type kindError struct {
	kind ErrKind
	err  error
}

func (e *kindError) Error() string { return e.err.Error() }
func (e *kindError) Unwrap() error { return e.err }

// Errf builds a classified error.
func Errf(kind ErrKind, format string, args ...any) error {
	return &kindError{kind: kind, err: fmt.Errorf(format, args...)}
}

// KindOf extracts the classification, defaulting to KindInternal for
// unclassified errors (the safe default: a 500 draws the operator's eye).
func KindOf(err error) ErrKind {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.kind
	}
	return KindInternal
}

// writeErr renders a classified error. Retryable responses carry a
// Retry-After hint so naive clients don't busy-loop a full queue.
func writeErr(w http.ResponseWriter, err error) {
	kind := KindOf(err)
	if kind.Retryable() {
		w.Header().Set("Retry-After", "1")
	}
	writeAPI(w, kind.HTTPStatus(), apiError{
		Error:     err.Error(),
		Kind:      kind,
		Retryable: kind.Retryable(),
	})
}
