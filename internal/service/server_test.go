package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"pprl/internal/adult"
	"pprl/internal/dataset"
	"pprl/internal/distrib"
	"pprl/internal/journal"
)

// gatedSink stalls verdict appends until the gate opens, pinning its
// job on a worker for as long as a test needs.
type gatedSink struct {
	journal.Sink
	gate <-chan struct{}
}

func (g *gatedSink) Record(i, j int, matched bool) error {
	<-g.gate
	return g.Sink.Record(i, j, matched)
}

// writeDataDir generates two overlapping Adult relations and writes them
// as a.csv and b.csv in a fresh directory.
func writeDataDir(t *testing.T, n int, seed int64) string {
	t.Helper()
	dir := t.TempDir()
	full := adult.Generate(n, seed)
	da, db := dataset.SplitOverlap(full, rand.New(rand.NewSource(seed+1)))
	for name, d := range map[string]*dataset.Dataset{"a.csv": da, "b.csv": db} {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteCSV(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// testSpec is the base submission the service tests vary from: small k
// for speed, an explicit allowance so crash points land mid-budget.
func testSpec() JobSpec {
	return JobSpec{
		AlicePath: "a.csv",
		BobPath:   "b.csv",
		K:         8,
		Allowance: 200,
		Evaluate:  true,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) JobStatus {
	t.Helper()
	st, code := submitCode(t, ts, spec)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("submit returned %d", code)
	}
	return st
}

func submitCode(t *testing.T, ts *httptest.Server, spec JobSpec) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		io.Copy(io.Discard, resp.Body)
		return JobStatus{}, resp.StatusCode
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches one of the wanted states,
// failing fast if it settles anywhere else.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, id)
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %q (err %q), waiting for %v", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getResult(t *testing.T, ts *httptest.Server, id string) JobResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("result returned %d: %s", resp.StatusCode, raw)
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServiceEndToEnd: submit over HTTP, watch it run, fetch the result,
// and check the operational endpoints along the way.
func TestServiceEndToEnd(t *testing.T) {
	dataDir := writeDataDir(t, 120, 9)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, Workers: 2})

	st := submit(t, ts, testSpec())
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}
	done := waitState(t, ts, st.ID, StateDone)
	if done.Progress == nil || done.Progress.Phase != "smc" {
		t.Errorf("final progress = %+v, want smc phase", done.Progress)
	}

	res := getResult(t, ts, st.ID)
	if res.Result.MatchedPairs != int64(len(res.Matches)) {
		t.Errorf("matched_pairs %d != len(matches) %d", res.Result.MatchedPairs, len(res.Matches))
	}
	if res.Result.Allowance != 200 {
		t.Errorf("allowance = %d, want 200", res.Result.Allowance)
	}
	if res.Evaluation == nil || res.TruthPairs == 0 {
		t.Errorf("evaluation missing: %+v truth=%d", res.Evaluation, res.TruthPairs)
	}

	// The events stream replays the settled status and closes.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n\n")
	var last JobStatus
	if err := json.Unmarshal([]byte(strings.TrimPrefix(lines[len(lines)-1], "data: ")), &last); err != nil {
		t.Fatalf("events payload: %v (%q)", err, raw)
	}
	if last.State != StateDone {
		t.Errorf("final event state %q", last.State)
	}

	// Operational endpoints.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if health.Status != "ok" || health.Workers != 2 {
		t.Errorf("healthz = %+v", health)
	}
	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	for _, want := range []string{
		"# TYPE pprl_jobs_done_total counter",
		"pprl_jobs_done_total 1",
		"pprl_smc_comparisons_total",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("metrics missing %q:\n%s", want, mraw)
		}
	}
}

// TestServiceValidation: malformed and invalid submissions are rejected
// before they reach the queue, and lookups of unknown jobs 404.
func TestServiceValidation(t *testing.T) {
	dataDir := writeDataDir(t, 40, 3)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir})

	cases := []JobSpec{
		{},                   // missing datasets
		{AlicePath: "a.csv"}, // missing bob
		{AlicePath: "a.csv", BobPath: "b.csv", Heuristic: "nope"}, // unknown heuristic
		{AlicePath: "a.csv", BobPath: "b.csv", Blocking: "nope"},  // unknown blocking mode
		{AlicePath: "../a.csv", BobPath: "b.csv"},                 // escapes data dir
		{AlicePath: "/etc/passwd", BobPath: "b.csv"},              // absolute ref
		{AlicePath: "a.csv", BobPath: "b.csv", Theta: -1},         // negative parameter
	}
	for i, spec := range cases {
		if _, code := submitCode(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("case %d: submit returned %d, want 400", i, code)
		}
	}

	// Unknown field in the body is a client error too.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"alice_path":"a.csv","bob_path":"b.csv","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field returned %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/v1/jobs/job-000099", "/v1/jobs/job-000099/result", "/v1/jobs/job-000099/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s returned %d, want 404", path, resp.StatusCode)
		}
	}

	// A dataset that fails to load fails the job, not the daemon.
	st := submit(t, ts, JobSpec{AlicePath: "missing.csv", BobPath: "b.csv"})
	failed := waitState(t, ts, st.ID, StateFailed)
	if failed.Error == "" {
		t.Error("failed job carries no error")
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Errorf("result of failed job returned %d, want 409", rr.StatusCode)
	}
}

// TestServiceIndexedBlocking: the same workload linked under both
// blocking engines returns identical results over the API, and the
// indexed run feeds the blocking counters (including pruned pairs).
func TestServiceIndexedBlocking(t *testing.T) {
	dataDir := writeDataDir(t, 120, 9)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, Workers: 1})

	dense := submit(t, ts, testSpec())
	waitState(t, ts, dense.ID, StateDone)
	denseRes := getResult(t, ts, dense.ID)

	spec := testSpec()
	spec.Blocking = "indexed"
	indexed := submit(t, ts, spec)
	waitState(t, ts, indexed.ID, StateDone)
	indexedRes := getResult(t, ts, indexed.ID)

	if len(denseRes.Matches) != len(indexedRes.Matches) {
		t.Fatalf("match counts diverge: dense %d, indexed %d", len(denseRes.Matches), len(indexedRes.Matches))
	}
	for i := range denseRes.Matches {
		if denseRes.Matches[i] != indexedRes.Matches[i] {
			t.Fatalf("match %d diverges: dense %v, indexed %v", i, denseRes.Matches[i], indexedRes.Matches[i])
		}
	}

	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	for _, want := range []string{
		"pprl_blocking_class_pairs_total",
		"pprl_blocking_rule_evaluations_total",
		"pprl_blocking_pruned_class_pairs_total",
		"pprl_blocking_unknown_pairs_total",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("metrics missing %q:\n%s", want, mraw)
		}
	}
	// Two jobs ran; only the indexed one can prune, and at this scale the
	// index always prunes something.
	if strings.Contains(string(mraw), "pprl_blocking_pruned_class_pairs_total 0\n") {
		t.Errorf("indexed job pruned nothing:\n%s", mraw)
	}
}

// TestServiceIdempotencyKey: a retried submission with the same key
// returns the original job instead of spending the budget twice.
func TestServiceIdempotencyKey(t *testing.T) {
	dataDir := writeDataDir(t, 60, 5)
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Dir: dir, DataDir: dataDir})

	spec := testSpec()
	spec.IdempotencyKey = "retry-me"
	first, code := submitCode(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("first submit returned %d", code)
	}
	second, code := submitCode(t, ts, spec)
	if code != http.StatusOK {
		t.Errorf("duplicate submit returned %d, want 200", code)
	}
	if second.ID != first.ID {
		t.Fatalf("duplicate submit created %s, want %s", second.ID, first.ID)
	}
	waitState(t, ts, first.ID, StateDone)

	// The key survives a daemon restart: recovery rebuilds the mapping
	// from the persisted specs.
	s2, err := New(Config{Dir: dir, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	third, code := submitCode(t, ts2, spec)
	if code != http.StatusOK || third.ID != first.ID {
		t.Errorf("post-restart duplicate submit = %s (%d), want %s (200)", third.ID, code, first.ID)
	}
}

// TestServiceCancel: canceling a queued job persists across restart;
// canceling a running job checkpoints and settles as canceled.
func TestServiceCancel(t *testing.T) {
	dataDir := writeDataDir(t, 120, 7)
	dir := t.TempDir()
	// Gate the first job's journal so it deterministically occupies the
	// single worker while the test cancels the job queued behind it.
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	_, ts := newTestServer(t, Config{
		Dir: dir, DataDir: dataDir, Workers: 1,
		Hooks: Hooks{
			WrapJournal: func(id string, w *journal.Writer) journal.Sink {
				if id == formatJobID(1) {
					return &gatedSink{Sink: w, gate: gate}
				}
				return w
			},
		},
	})

	// Occupy the single worker, then cancel the queued job behind it.
	running := submit(t, ts, testSpec())
	queued := submit(t, ts, testSpec())
	waitState(t, ts, running.ID, StateRunning)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	canceled := waitState(t, ts, queued.ID, StateCanceled)
	if canceled.State != StateCanceled {
		t.Fatalf("queued job canceled into %q", canceled.State)
	}
	openGate()
	waitState(t, ts, running.ID, StateDone)

	// After a restart the cancellation still holds — it must not be
	// resurrected as a recoverable job.
	s2, err := New(Config{Dir: dir, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if st := getStatus(t, ts2, queued.ID); st.State != StateCanceled {
		t.Errorf("canceled job recovered as %q", st.State)
	}
	if st := getStatus(t, ts2, running.ID); st.State != StateDone {
		t.Errorf("done job recovered as %q", st.State)
	}
}

// TestServiceConcurrencyBoundUnderLoad: N jobs on W<N workers — the
// running count never exceeds W (observed via /healthz while the burst
// drains), /metrics keeps serving, and every job completes.
func TestServiceConcurrencyBoundUnderLoad(t *testing.T) {
	const workers, n = 2, 8
	dataDir := writeDataDir(t, 120, 11)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, Workers: workers})

	spec := testSpec()
	spec.Allowance = 2000
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s := spec
		s.IdempotencyKey = fmt.Sprintf("load-%d", i)
		ids = append(ids, submit(t, ts, s).ID)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		var health struct {
			Running int `json:"running"`
			Queued  int `json:"queued"`
		}
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if health.Running > workers {
			t.Fatalf("healthz reports %d running, bound is %d", health.Running, workers)
		}
		mresp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mraw, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if !strings.Contains(string(mraw), "pprl_jobs_running") {
			t.Fatalf("metrics stopped serving under load:\n%s", mraw)
		}

		allDone := true
		for _, id := range ids {
			if getStatus(t, ts, id).State != StateDone {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("burst did not drain in time")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Deterministic pipeline + identical specs ⇒ identical results.
	first := getResult(t, ts, ids[0])
	for _, id := range ids[1:] {
		res := getResult(t, ts, id)
		if res.Result.MatchedPairs != first.Result.MatchedPairs || len(res.Matches) != len(first.Matches) {
			t.Errorf("job %s diverged: %d matches vs %d", id, len(res.Matches), len(first.Matches))
		}
	}
}

// TestServiceTierJob: a job submitted with the triage tier on reports
// the tier's accounting in its result and feeds the tier counters in
// /metrics; a tier spec with inverted thresholds is rejected at submit.
func TestServiceTierJob(t *testing.T) {
	dataDir := writeDataDir(t, 120, 11)
	_, ts := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir, Workers: 1})

	spec := testSpec()
	spec.Tier = "bloom"
	job := submit(t, ts, spec)
	waitState(t, ts, job.ID, StateDone)
	res := getResult(t, ts, job.ID)

	if res.Result.Tier != "bloom" {
		t.Errorf("result tier = %q, want bloom", res.Result.Tier)
	}
	if res.Result.TierMatchedPairs+res.Result.TierNonMatched+res.Result.TierUncertainPairs == 0 {
		t.Error("tier counters all zero; the tier never ran")
	}

	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	for _, want := range []string{
		"pprl_tier_matched_pairs_total",
		"pprl_tier_nonmatched_pairs_total",
		"pprl_tier_uncertain_pairs_total",
	} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("metrics missing %q:\n%s", want, mraw)
		}
	}

	bad := testSpec()
	bad.Tier = "bloom"
	bad.TierLow, bad.TierHigh = 0.9, 0.5
	if _, code := submitCode(t, ts, bad); code != http.StatusBadRequest {
		t.Errorf("inverted tier thresholds accepted with HTTP %d", code)
	}
	unknown := testSpec()
	unknown.Tier = "paillier"
	if _, code := submitCode(t, ts, unknown); code != http.StatusBadRequest {
		t.Errorf("unknown tier mode accepted with HTTP %d", code)
	}
}

// TestServiceDistributedFleet runs the same job in-process and striped
// across a two-worker fleet, and requires identical output: the fleet is
// a transport, not a semantics change. It also checks the per-worker
// chunk counters surface on /metrics and that a fleetless daemon rejects
// distributed submissions at the door.
func TestServiceDistributedFleet(t *testing.T) {
	dataDir := writeDataDir(t, 160, 11)

	// Baseline: the identical spec on a plain daemon.
	_, tsLocal := newTestServer(t, Config{Dir: t.TempDir(), DataDir: dataDir})
	base := submit(t, tsLocal, testSpec())
	waitState(t, tsLocal, base.ID, StateDone)
	baseRes := getResult(t, tsLocal, base.ID)

	s, ts := newTestServer(t, Config{
		Dir:             t.TempDir(),
		DataDir:         dataDir,
		FleetListen:     "127.0.0.1:0",
		FleetMinWorkers: 2,
	})
	for _, name := range []string{"fw1", "fw2"} {
		conn, err := net.Dial("tcp", s.FleetAddr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		go distrib.ServeWorker(conn, distrib.WorkerOptions{
			Name:           name,
			HeartbeatEvery: 50 * time.Millisecond,
		})
	}

	spec := testSpec()
	spec.Distributed = true
	job := submit(t, ts, spec)
	waitState(t, ts, job.ID, StateDone)
	res := getResult(t, ts, job.ID)

	if !reflect.DeepEqual(res.Matches, baseRes.Matches) {
		t.Errorf("distributed matches diverge from local run:\n fleet %v\n local %v",
			res.Matches, baseRes.Matches)
	}
	if res.Result.Invocations != baseRes.Result.Invocations {
		t.Errorf("distributed invocations = %d, local = %d",
			res.Result.Invocations, baseRes.Result.Invocations)
	}
	if res.Result.MatchedPairs != baseRes.Result.MatchedPairs {
		t.Errorf("distributed matched pairs = %d, local = %d",
			res.Result.MatchedPairs, baseRes.Result.MatchedPairs)
	}

	mt, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mt.Body)
	mt.Body.Close()
	if !strings.Contains(string(mraw), `pprl_worker_chunks_total{worker="`) {
		t.Errorf("metrics missing per-worker chunk counters:\n%s", mraw)
	}
	if !strings.Contains(string(mraw), `pprl_worker_heartbeat_seconds{worker="fw1"}`) {
		t.Errorf("metrics missing worker heartbeat gauge:\n%s", mraw)
	}

	// A daemon without a fleet must refuse distributed work up front: the
	// spec is well-formed but this daemon cannot honor it — 422, not 400.
	if _, code := submitCode(t, tsLocal, spec); code != http.StatusUnprocessableEntity {
		t.Errorf("fleetless daemon refused distributed job with HTTP %d, want 422", code)
	}
}
