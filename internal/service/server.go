package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"pprl/internal/adult"
	"pprl/internal/cliutil"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/distrib"
	"pprl/internal/journal"
	"pprl/internal/match"
	"pprl/internal/metrics"
)

// Hooks are test seams. Production leaves them zero.
type Hooks struct {
	// WrapJournal, when set, wraps each job's journal writer before the
	// core pipeline sees it. Tests inject testkit.CrashSink here to
	// simulate a daemon killed mid-SMC.
	WrapJournal func(jobID string, w *journal.Writer) journal.Sink
	// WrapDatasetJournal is the same seam for live datasets' ingest
	// journals (the incremental engine records through a BatchSink).
	WrapDatasetJournal func(datasetID string, w *journal.Writer) journal.BatchSink
	// HardStop is the error a wrapped journal returns to simulate that
	// kill. A job failing with it settles in memory as interrupted but —
	// exactly like a SIGKILL — writes no terminal state to disk, so the
	// next daemon start resumes it.
	HardStop error
}

// Config configures a Server.
type Config struct {
	// Dir is the service root; job state lives under Dir/jobs.
	Dir string
	// DataDir, when set, confines spec dataset references to this
	// directory.
	DataDir string
	// Workers bounds concurrent jobs (default 1).
	Workers int
	// JournalSync is the journal's SyncEvery (0 = the journal default).
	JournalSync int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// FleetListen, when set, binds a coordinator listener for SMC worker
	// registrations (pprl-party -role worker -coordinator <addr>).
	FleetListen string
	// FleetWorkers are worker addresses the daemon dials out to at
	// start, for fleets whose workers listen instead of dialing.
	FleetWorkers []string
	// FleetMinWorkers is how many registered workers a distributed job
	// waits for before shipping records (default 1).
	FleetMinWorkers int
	// Logger receives job and fleet lifecycle lines with correlation ids
	// (job=… chunk=… worker=…); nil is silent.
	Logger *log.Logger
	// Hooks are test seams; leave zero in production.
	Hooks Hooks
}

// fleetConfigured reports whether any fleet wiring was requested.
func (c *Config) fleetConfigured() bool {
	return c.FleetListen != "" || len(c.FleetWorkers) > 0
}

// Server is the linkage job service: it owns the store, the scheduler,
// and the HTTP API. Create one with New, serve Handler, and stop with
// Drain.
type Server struct {
	cfg   Config
	store *Store
	sched *Scheduler
	reg   *metrics.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	byKey    map[string]string // idempotency key → job ID
	datasets map[string]*liveDataset

	// dsStop ends every dataset drainer at Drain; dsWG waits for them.
	dsStop chan struct{}
	dsWG   sync.WaitGroup

	mJobsSubmitted *metrics.Var
	mJobsDone      *metrics.Var
	mJobsFailed    *metrics.Var
	mJobsCanceled  *metrics.Var
	mJobsRecovered *metrics.Var
	mJobsQueued    *metrics.Var
	mJobsRunning   *metrics.Var
	mSMCPurchased  *metrics.Var
	mSMCReplayed   *metrics.Var
	mHTTPRequests  *metrics.Var

	mBlockClasses    *metrics.Var
	mBlockClassPairs *metrics.Var
	mBlockEvals      *metrics.Var
	mBlockPruned     *metrics.Var
	mBlockMatched    *metrics.Var
	mBlockNonMatched *metrics.Var
	mBlockUnknown    *metrics.Var

	mTierMatched    *metrics.Var
	mTierNonMatched *metrics.Var
	mTierUncertain  *metrics.Var

	mDPJobs         *metrics.Var
	mDPEpsilonMilli *metrics.Var
	mDPDummyPairs   *metrics.Var
	mDPDummySpent   *metrics.Var

	mDatasets        *metrics.Var
	mDatasetBatches  *metrics.Var
	mDatasetRecords  *metrics.Var
	mDatasetDeltas   *metrics.Var
	mDatasetSpent    *metrics.Var
	mDatasetReplayed *metrics.Var

	mWorkerChunks    *metrics.VarVec
	mWorkerFailures  *metrics.VarVec
	mWorkerHeartbeat *metrics.VarVec

	// pool coordinates the SMC worker fleet; nil when no fleet is
	// configured. fleetLn is the registration listener (when bound) and
	// fleetCancel stops the dial-out goroutines.
	pool        *distrib.Pool
	fleetLn     net.Listener
	fleetCancel context.CancelFunc
}

// New opens the service root, recovers jobs left behind by a previous
// daemon, and starts the worker pool. In-flight jobs from before the
// restart re-enter the queue in their original FIFO order and resume
// from their journals.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	store, err := NewStore(cfg.Dir, cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		reg:      metrics.NewRegistry("pprl"),
		jobs:     make(map[string]*Job),
		byKey:    make(map[string]string),
		datasets: make(map[string]*liveDataset),
		dsStop:   make(chan struct{}),
	}
	s.mJobsSubmitted = s.reg.Counter("jobs_submitted_total", "Jobs accepted over the API.")
	s.mJobsDone = s.reg.Counter("jobs_done_total", "Jobs completed successfully.")
	s.mJobsFailed = s.reg.Counter("jobs_failed_total", "Jobs ended by an error.")
	s.mJobsCanceled = s.reg.Counter("jobs_canceled_total", "Jobs ended by DELETE.")
	s.mJobsRecovered = s.reg.Counter("jobs_recovered_total", "Jobs re-queued from their journals at daemon start.")
	s.mJobsQueued = s.reg.Gauge("jobs_queued", "Jobs waiting for a worker slot.")
	s.mJobsRunning = s.reg.Gauge("jobs_running", "Jobs executing right now.")
	s.mSMCPurchased = s.reg.Counter("smc_comparisons_total", "Live SMC comparisons purchased across completed jobs.")
	s.mSMCReplayed = s.reg.Counter("smc_replayed_allowance_total", "Allowance satisfied from journals instead of live SMC across completed jobs.")
	s.mHTTPRequests = s.reg.Counter("http_requests_total", "API requests served.")
	s.mBlockClasses = s.reg.Counter("blocking_classes_total", "Equivalence classes blocked across completed jobs (both relations).")
	s.mBlockClassPairs = s.reg.Counter("blocking_class_pairs_total", "Class pairs in the blocking candidate space across completed jobs.")
	s.mBlockEvals = s.reg.Counter("blocking_rule_evaluations_total", "Class pairs the slack rule actually evaluated (indexed jobs skip pruned pairs).")
	s.mBlockPruned = s.reg.Counter("blocking_pruned_class_pairs_total", "Class pairs the hierarchy index pruned without a rule evaluation.")
	s.mBlockMatched = s.reg.Counter("blocking_matched_pairs_total", "Record pairs blocking labeled Match across completed jobs.")
	s.mBlockNonMatched = s.reg.Counter("blocking_nonmatched_pairs_total", "Record pairs blocking labeled NonMatch across completed jobs.")
	s.mBlockUnknown = s.reg.Counter("blocking_unknown_pairs_total", "Record pairs blocking left Unknown for SMC across completed jobs.")
	s.mTierMatched = s.reg.Counter("tier_matched_pairs_total", "Unknown pairs the triage tier labeled Match for free across completed jobs.")
	s.mTierNonMatched = s.reg.Counter("tier_nonmatched_pairs_total", "Unknown pairs the triage tier labeled NonMatch for free across completed jobs.")
	s.mTierUncertain = s.reg.Counter("tier_uncertain_pairs_total", "Unknown pairs the tier left for the SMC allowance across completed jobs.")
	s.mDPJobs = s.reg.Counter("dp_jobs_total", "Jobs completed under differentially private blocking.")
	s.mDPEpsilonMilli = s.reg.Counter("dp_epsilon_spent_milli_total", "Composed epsilon spent across completed DP jobs, in thousandths.")
	s.mDPDummyPairs = s.reg.Counter("dp_dummy_pairs_total", "Dummy candidate pairs introduced by noise padding across completed DP jobs.")
	s.mDPDummySpent = s.reg.Counter("dp_dummy_spent_total", "SMC allowance consumed by dummy-pair charges across completed DP jobs.")
	s.mDatasets = s.reg.Counter("datasets_registered_total", "Live datasets registered over the API.")
	s.mDatasetBatches = s.reg.Counter("dataset_batches_total", "Append batches applied across live datasets (excluding journal replays).")
	s.mDatasetRecords = s.reg.Counter("dataset_records_total", "Records ingested across live datasets (excluding journal replays).")
	s.mDatasetDeltas = s.reg.Counter("dataset_deltas_total", "Delta Match pairs emitted across live datasets (excluding journal replays).")
	s.mDatasetSpent = s.reg.Counter("dataset_allowance_spent_total", "SMC allowance consumed by live-dataset appends (excluding journal replays).")
	s.mDatasetReplayed = s.reg.Counter("dataset_batches_replayed_total", "Committed batches reconstructed from ingest journals at daemon start.")
	s.mWorkerChunks = s.reg.CounterVec("worker_chunks_total", "worker", "Comparison chunks completed per fleet worker.")
	s.mWorkerFailures = s.reg.CounterVec("worker_failures_total", "worker", "Failures observed per fleet worker (chunks reassigned).")
	s.mWorkerHeartbeat = s.reg.GaugeVec("worker_heartbeat_seconds", "worker", "Unix time of each fleet worker's last heartbeat.")

	if cfg.fleetConfigured() {
		if err := s.startFleet(); err != nil {
			return nil, err
		}
	}

	recovered, err := store.Recover()
	if err != nil {
		if s.pool != nil {
			s.pool.Close()
		}
		return nil, err
	}
	s.sched = NewScheduler(cfg.Workers, s.runJob)
	for _, j := range recovered {
		s.jobs[j.ID] = j
		if key := j.Spec.IdempotencyKey; key != "" {
			s.byKey[key] = j.ID
		}
		if j.State() == StateQueued {
			s.mJobsRecovered.Inc()
			if err := s.sched.Enqueue(j); err != nil {
				return nil, err
			}
		}
	}
	recoveredDS, err := store.RecoverDatasets()
	if err != nil {
		s.Drain()
		return nil, err
	}
	for _, rd := range recoveredDS {
		if rd.Failed != "" {
			// A persisted ingest failure: surface the dataset read-only
			// instead of replaying into the same wall.
			s.datasets[rd.File.ID] = &liveDataset{
				ID: rd.File.ID, Seq: rd.File.Seq, Spec: rd.File.Spec,
				CreatedAt: rd.File.CreatedAt, accepted: len(rd.Batches),
				state: DatasetFailed, errMsg: rd.Failed,
				changed: make(chan struct{}),
			}
			continue
		}
		ld, err := s.buildDataset(rd.File, rd.Batches)
		if err != nil {
			s.Drain()
			return nil, err
		}
		s.datasets[ld.ID] = ld
		s.logf("dataset=%s recovered batches=%d", ld.ID, len(rd.Batches))
	}
	return s, nil
}

// Metrics returns the server's registry, e.g. for expvar.Publish.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// startFleet brings the SMC worker coordinator up: a registration
// listener when FleetListen is set, plus dial-out goroutines for every
// FleetWorkers address.
func (s *Server) startFleet() error {
	s.pool = distrib.NewPool(distrib.PoolOptions{
		Logger:       s.cfg.Logger,
		ChunksVec:    s.mWorkerChunks,
		FailuresVec:  s.mWorkerFailures,
		HeartbeatVec: s.mWorkerHeartbeat,
	})
	ctx, cancel := context.WithCancel(context.Background())
	s.fleetCancel = cancel
	if s.cfg.FleetListen != "" {
		ln, err := net.Listen("tcp", s.cfg.FleetListen)
		if err != nil {
			s.pool.Close()
			return fmt.Errorf("service: fleet listener: %w", err)
		}
		s.fleetLn = ln
		s.logf("fleet: accepting worker registrations on %s", ln.Addr())
		go s.pool.Serve(ln)
	}
	for _, addr := range s.cfg.FleetWorkers {
		go func(addr string) {
			conn, err := cliutil.DialRetry(ctx, "tcp", addr, cliutil.Backoff{})
			if err != nil {
				s.logf("fleet: worker %s unreachable: %v", addr, err)
				return
			}
			if err := s.pool.AddConn(conn); err != nil {
				s.logf("fleet: worker %s registration failed: %v", addr, err)
			}
		}(addr)
	}
	return nil
}

// FleetAddr returns the bound worker-registration address, empty when
// no fleet listener is up.
func (s *Server) FleetAddr() string {
	if s.fleetLn == nil {
		return ""
	}
	return s.fleetLn.Addr().String()
}

// FleetWorkers returns the names of the currently registered workers.
func (s *Server) FleetWorkers() []string {
	if s.pool == nil {
		return nil
	}
	return s.pool.Workers()
}

// Drain stops the scheduler for shutdown: running jobs checkpoint their
// journals and settle as interrupted; queued jobs stay on disk. Both
// resume on the next daemon start. The worker fleet, if any, is
// released — workers exit cleanly on the hangup.
func (s *Server) Drain() {
	if s.sched != nil {
		s.sched.Drain()
	}
	select {
	case <-s.dsStop:
	default:
		close(s.dsStop)
	}
	s.dsWG.Wait()
	if s.fleetCancel != nil {
		s.fleetCancel()
	}
	if s.pool != nil {
		s.pool.Close()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetCreate)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleDatasetStatus)
	mux.HandleFunc("POST /v1/datasets/{id}/records", s.handleDatasetAppend)
	mux.HandleFunc("GET /v1/datasets/{id}/deltas", s.handleDatasetDeltas)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return withRequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mHTTPRequests.Inc()
		mux.ServeHTTP(w, r)
	}))
}

func writeAPI(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeAPIError(w http.ResponseWriter, code int, format string, args ...any) {
	kind := kindFromStatus(code)
	if kind.Retryable() {
		w.Header().Set("Retry-After", "1")
	}
	writeAPI(w, code, apiError{
		Error:     fmt.Sprintf(format, args...),
		Kind:      kind,
		Retryable: kind.Retryable(),
	})
}

// maxSpecBytes bounds a submission body; specs are a page of JSON, not
// record data.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeAPIError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeAPIError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Distributed && s.pool == nil {
		// The spec is well-formed; it's this daemon that can't honor it —
		// 422, terminal, so clients don't retry into the same wall.
		writeErr(w, Errf(KindInvalid, "distributed jobs need a worker fleet: start the daemon with -fleet-listen or -worker"))
		return
	}
	// Reject unresolvable dataset references at submit time rather than
	// letting the job fail later in the queue.
	for _, ref := range []string{spec.AlicePath, spec.BobPath} {
		if _, err := s.store.ResolveData(ref); err != nil {
			writeAPIError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	s.mu.Lock()
	if key := spec.IdempotencyKey; key != "" {
		if id, ok := s.byKey[key]; ok {
			j := s.jobs[id]
			s.mu.Unlock()
			writeAPI(w, http.StatusOK, j.Status())
			return
		}
	}
	// Holding the lock across NewJob serializes submissions, keeping the
	// key→job mapping race-free; job creation is two small file writes.
	j, err := s.store.NewJob(spec)
	if err != nil {
		s.mu.Unlock()
		writeAPIError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.jobs[j.ID] = j
	if key := spec.IdempotencyKey; key != "" {
		s.byKey[key] = j.ID
	}
	s.mu.Unlock()

	if err := s.sched.Enqueue(j); err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.mJobsSubmitted.Inc()
	s.logf("req=%s job=%s state=queued", requestID(r.Context()), j.ID)
	writeAPI(w, http.StatusCreated, j.Status())
}

func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.Status())
	}
	// FIFO order, matching the scheduler.
	for i := 1; i < len(statuses); i++ {
		for k := i; k > 0 && statuses[k-1].ID > statuses[k].ID; k-- {
			statuses[k-1], statuses[k] = statuses[k], statuses[k-1]
		}
	}
	writeAPI(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, http.StatusNotFound, "no such job")
		return
	}
	writeAPI(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, http.StatusNotFound, "no such job")
		return
	}
	if wasQueued := s.sched.Cancel(j); wasQueued {
		// A queued job settles here; a running one settles on its worker
		// once the engine checkpoints.
		if err := s.store.WriteTerminal(j.ID, StateCanceled, "canceled while queued"); err != nil {
			writeAPIError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.mJobsCanceled.Inc()
	}
	s.logf("req=%s job=%s cancel requested", requestID(r.Context()), j.ID)
	writeAPI(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, http.StatusNotFound, "no such job")
		return
	}
	if st := j.State(); st != StateDone {
		writeAPIError(w, http.StatusConflict, "job is %s, not done", st)
		return
	}
	res, err := s.store.ReadResult(j.ID)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeAPI(w, http.StatusOK, res)
}

// handleEvents streams job status updates as server-sent events: one
// `data:` line per progress change, a final one when the job settles.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeAPIError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeAPIError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func() bool {
		raw, err := json.Marshal(j.Status())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", raw); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for {
		_, changed := j.Progress.Watch()
		if !emit() {
			return
		}
		select {
		case <-j.Settled():
			emit()
			return
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.sched.Counts()
	writeAPI(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.sched.Workers(),
		"queued":  queued,
		"running": running,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, running := s.sched.Counts()
	s.mJobsQueued.Set(int64(queued))
	s.mJobsRunning.Set(int64(running))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// runJob is the scheduler's executor: it settles the job's state from
// the pipeline's outcome. The key distinction is which failures reach
// disk — real failures and cancellations persist a terminal state;
// interruptions (drain, or the test harness's simulated kill) do not,
// which is precisely what makes them resumable.
func (s *Server) runJob(ctx context.Context, job *Job) {
	s.logf("job=%s state=running distributed=%v", job.ID, job.Spec.Distributed)
	err := s.execute(ctx, job)
	switch {
	case err == nil:
		job.finish(StateDone, "")
		s.mJobsDone.Inc()
	case errors.Is(err, core.ErrInterrupted):
		if job.UserCanceled() {
			s.store.WriteTerminal(job.ID, StateCanceled, err.Error())
			job.finish(StateCanceled, err.Error())
			s.mJobsCanceled.Inc()
		} else {
			job.finish(StateInterrupted, err.Error())
		}
	case s.cfg.Hooks.HardStop != nil && errors.Is(err, s.cfg.Hooks.HardStop):
		// Simulated SIGKILL: settle in memory, leave the disk exactly as
		// the crash would — journaled prefix, no terminal state.
		job.finish(StateInterrupted, err.Error())
	default:
		s.store.WriteTerminal(job.ID, StateFailed, err.Error())
		job.finish(StateFailed, err.Error())
		s.mJobsFailed.Inc()
	}
	if err == nil {
		s.logf("job=%s state=done", job.ID)
	} else {
		s.logf("job=%s state=%s error=%q", job.ID, job.State(), err)
	}
}

// execute runs one job through the core pipeline under its journal.
func (s *Server) execute(ctx context.Context, job *Job) error {
	spec := job.Spec

	schemaPath := ""
	if spec.SchemaPath != "" {
		p, err := s.store.ResolveData(spec.SchemaPath)
		if err != nil {
			return err
		}
		schemaPath = p
	}
	schema, err := cliutil.LoadSchemaOrAdult(schemaPath)
	if err != nil {
		return err
	}
	alice, err := s.readDataset(schema, spec.AlicePath)
	if err != nil {
		return fmt.Errorf("reading alice: %w", err)
	}
	bob, err := s.readDataset(schema, spec.BobPath)
	if err != nil {
		return fmt.Errorf("reading bob: %w", err)
	}

	qids := spec.QIDs
	if len(qids) == 0 {
		if spec.SchemaPath == "" {
			qids = adult.DefaultQIDs()
		} else {
			qids = schema.Names()
		}
	}
	cfg, err := spec.Config(qids)
	if err != nil {
		return err
	}
	cfg.Context = ctx
	cfg.Progress = job.Progress.Update

	if spec.Distributed {
		if s.pool == nil {
			return errors.New("service: distributed job but no worker fleet configured")
		}
		min := s.cfg.FleetMinWorkers
		if min < 1 {
			min = 1
		}
		waitCtx, cancel := context.WithTimeout(ctx, time.Minute)
		err := s.pool.WaitWorkers(waitCtx, min)
		cancel()
		if err != nil {
			return err
		}
		jc := distrib.JobConfig{Job: job.ID}
		if spec.Secure {
			jc.Engine = distrib.EngineSecure
			jc.KeyBits = spec.KeyBits
			if jc.KeyBits == 0 {
				jc.KeyBits = 1024
			}
		}
		cfg.Comparator = s.pool.Factory(jc)
		s.logf("job=%s fleet engine=%s workers=%v", job.ID, jc.Engine, s.pool.Workers())
	}

	jw, _, err := journal.Open(s.store.JournalPath(job.ID), journal.Options{SyncEvery: s.cfg.JournalSync})
	if err != nil {
		return err
	}
	defer jw.Close()
	var sink journal.Sink = jw
	if s.cfg.Hooks.WrapJournal != nil {
		sink = s.cfg.Hooks.WrapJournal(job.ID, jw)
	}
	cfg.Journal = sink

	res, err := core.Link(core.Holder{Data: alice}, core.Holder{Data: bob}, cfg)
	if err != nil {
		return err
	}

	jr := &JobResult{Result: res.Summarize()}
	for i := 0; i < alice.Len(); i++ {
		for j := 0; j < bob.Len(); j++ {
			if res.PairMatched(i, j) {
				jr.Matches = append(jr.Matches, [2]int{i, j})
			}
		}
	}
	if spec.Evaluate {
		truth, err := match.TruePairs(alice, bob, res.QIDs(), res.Rule())
		if err != nil {
			return fmt.Errorf("computing ground truth: %w", err)
		}
		conf := res.Evaluate(truth)
		jr.Evaluation = &conf
		jr.TruthPairs = len(truth)
	}
	if err := s.store.WriteResult(job.ID, jr); err != nil {
		return err
	}
	s.mSMCPurchased.Add(res.Invocations)
	s.mSMCReplayed.Add(res.Resume.ReplayedAllowance)
	block := res.Block
	s.mBlockClasses.Add(int64(len(block.R.Classes) + len(block.S.Classes)))
	classPairs := int64(len(block.R.Classes)) * int64(len(block.S.Classes))
	s.mBlockClassPairs.Add(classPairs)
	if st := block.Stats; st != nil {
		s.mBlockEvals.Add(st.RuleEvaluations)
		s.mBlockPruned.Add(st.PrunedClassPairs)
	} else {
		// Dense blocking evaluates the full candidate space.
		s.mBlockEvals.Add(classPairs)
	}
	s.mBlockMatched.Add(block.MatchedPairs)
	s.mBlockNonMatched.Add(block.NonMatchedPairs)
	s.mBlockUnknown.Add(block.UnknownPairs)
	s.mTierMatched.Add(res.TierMatchedPairs())
	s.mTierNonMatched.Add(res.TierNonMatchedPairs())
	s.mTierUncertain.Add(res.TierUncertainPairs)
	if res.DP != nil {
		s.mDPJobs.Add(1)
		// The registry is integer-valued; epsilon is reported in milli-units.
		s.mDPEpsilonMilli.Add(int64(res.DP.TotalEpsilon*1000 + 0.5))
		s.mDPDummyPairs.Add(res.DP.DummyPairs)
		s.mDPDummySpent.Add(res.DP.DummySpent)
	}
	return nil
}

// readDataset loads a holder's relation through the chunked streaming
// reader: anonymization needs the materialized Dataset, but parsing
// happens in bounded chunks rather than row-state-plus-dataset at once.
func (s *Server) readDataset(schema *dataset.Schema, ref string) (*dataset.Dataset, error) {
	path, err := s.store.ResolveData(ref)
	if err != nil {
		return nil, err
	}
	st, err := dataset.OpenStream(schema, path, dataset.StreamOptions{})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.ReadAll()
}
