// Package service implements the linkage job service behind pprl-serve:
// a JSON HTTP API that queues linkage jobs, a bounded FIFO scheduler
// that runs them through the core pipeline with per-job cancellation,
// and a journal-backed store that survives daemon restarts — an
// interrupted job resumes from its per-job journal with zero re-spent
// SMC allowance (see DESIGN.md §9).
//
// The API serves only querying-party-visible data: job summaries,
// progress counters, and matched record-index pairs. Raw records,
// anonymized views and key material never cross it (SECURITY.md).
package service

import (
	"fmt"
	"time"

	"pprl/internal/cliutil"
	"pprl/internal/core"
	"pprl/internal/metrics"
)

// JobSpec is the body of POST /v1/jobs: dataset references plus the
// linkage parameters. Dataset references are server-side paths resolved
// by the store (relative to its data directory when one is configured);
// the daemon never accepts record data over the API.
type JobSpec struct {
	// AlicePath and BobPath reference the two holders' CSV relations.
	AlicePath string `json:"alice_path"`
	BobPath   string `json:"bob_path"`
	// SchemaPath references a schema manifest; empty selects the
	// built-in Adult schema.
	SchemaPath string `json:"schema_path,omitempty"`

	// QIDs are the quasi-identifier attributes; empty selects the
	// paper's default Adult set when the Adult schema is in use.
	QIDs []string `json:"qids,omitempty"`
	// Theta is the uniform matching threshold (default 0.05).
	Theta float64 `json:"theta,omitempty"`
	// K is the anonymity requirement for both holders (default 32).
	K int `json:"k,omitempty"`
	// AllowanceFraction is the SMC budget as a fraction of all record
	// pairs (default 0.015); Allowance, when set, is the absolute budget
	// and takes precedence.
	AllowanceFraction float64 `json:"allowance_fraction,omitempty"`
	Allowance         int64   `json:"allowance,omitempty"`
	// Heuristic, Strategy, Anonymizer and Blocking take the CLI names
	// (see cliutil); empty selects the paper defaults. Anonymizer "dp"
	// selects differentially private blocking and requires Epsilon.
	Heuristic  string `json:"heuristic,omitempty"`
	Strategy   string `json:"strategy,omitempty"`
	Anonymizer string `json:"anonymizer,omitempty"`
	// Epsilon, when positive, runs the job under differentially private
	// blocking: per-holder privacy budget of the noised bin releases
	// (composed spend is 2ε; see core.DPStats). Requires Anonymizer ""
	// or "dp". DPDelta is the truncation mass (0 = default 1e-6), DPSeed
	// the deterministic noise seed, DPLevel the VGH binning depth (0 =
	// default).
	Epsilon float64 `json:"epsilon,omitempty"`
	DPDelta float64 `json:"dp_delta,omitempty"`
	DPSeed  int64   `json:"dp_seed,omitempty"`
	DPLevel int     `json:"dp_level,omitempty"`
	// Blocking selects the blocking engine: "dense" (default) or
	// "indexed" (hierarchy index with candidate pruning and streaming
	// pair emission; same labels, sub-quadratic enumeration).
	Blocking string `json:"blocking,omitempty"`
	// Secure runs the real Paillier protocol in-process with KeyBits
	// keys; false uses the plaintext cost-model oracle.
	Secure  bool `json:"secure,omitempty"`
	KeyBits int  `json:"key_bits,omitempty"`
	// SMCWorkers is the SMC parallelism (0 = GOMAXPROCS).
	SMCWorkers int `json:"smc_workers,omitempty"`
	// Distributed stripes the SMC step across the daemon's registered
	// worker fleet (pprl-party -role worker) instead of running it
	// in-process. Combines with Secure: each worker then runs the real
	// Paillier protocol under its own fresh key. Rejected at submit time
	// when the daemon has no fleet configured.
	Distributed bool `json:"distributed,omitempty"`
	// Packing selects the secure comparator's result encoding: "packed"
	// (default; slot-packed responses, ~d× fewer decryptions) or "off".
	// Verdict-identical either way; ignored by the plaintext oracle.
	Packing string `json:"packing,omitempty"`
	// Tier selects the triage tier between blocking and SMC: "off"
	// (default) or "bloom" (Dice over keyed CLK encodings; confident
	// bands labeled free, allowance reserved for the uncertain middle).
	Tier string `json:"tier,omitempty"`
	// TierHigh and TierLow are the tier's Dice thresholds; both zero
	// selects the defaults (0.95 / 0.60).
	TierHigh float64 `json:"tier_high,omitempty"`
	TierLow  float64 `json:"tier_low,omitempty"`
	// Seed drives the TrainClassifier strategy's random selection.
	Seed int64 `json:"seed,omitempty"`
	// Evaluate additionally scores the result against exact ground
	// truth, which the daemon can compute because it holds both files.
	Evaluate bool `json:"evaluate,omitempty"`

	// IdempotencyKey deduplicates retried submissions: a second POST
	// with the same key returns the first job instead of spending the
	// SMC budget twice.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// Validate checks the parts of a spec that must be rejected at submit
// time (before the job ever reaches the queue).
func (s *JobSpec) Validate() error {
	if s.AlicePath == "" || s.BobPath == "" {
		return fmt.Errorf("alice_path and bob_path are required")
	}
	if s.Allowance < 0 || s.K < 0 {
		return fmt.Errorf("negative parameters are invalid")
	}
	if s.Theta != 0 {
		if err := cliutil.ThetaRange.Named("theta").Validate(s.Theta); err != nil {
			return err
		}
	}
	if s.AllowanceFraction != 0 {
		if err := cliutil.AllowanceFractionRange.Named("allowance_fraction").Validate(s.AllowanceFraction); err != nil {
			return err
		}
	}
	if _, err := cliutil.HeuristicByName(s.Heuristic); err != nil {
		return err
	}
	if _, err := cliutil.StrategyByName(s.Strategy); err != nil {
		return err
	}
	if cliutil.IsDPName(s.Anonymizer) {
		if s.Epsilon == 0 {
			return fmt.Errorf("anonymizer %q requires epsilon > 0", s.Anonymizer)
		}
	} else {
		if _, err := cliutil.AnonymizerByName(s.Anonymizer); err != nil {
			return err
		}
		if s.Anonymizer != "" && s.Epsilon != 0 {
			return fmt.Errorf("epsilon requires anonymizer \"dp\", got %q", s.Anonymizer)
		}
	}
	if s.Epsilon != 0 || s.DPDelta != 0 || s.DPSeed != 0 || s.DPLevel != 0 {
		if err := cliutil.EpsilonRange.Named("epsilon").Validate(s.Epsilon); err != nil {
			return err
		}
		if s.DPDelta != 0 {
			if err := cliutil.DeltaRange.Named("dp_delta").Validate(s.DPDelta); err != nil {
				return err
			}
		}
		if s.DPLevel < 0 {
			return fmt.Errorf("dp_level must be ≥ 0, got %d", s.DPLevel)
		}
	}
	if _, err := cliutil.BlockingModeByName(s.Blocking); err != nil {
		return err
	}
	if _, err := cliutil.PackingModeByName(s.Packing); err != nil {
		return err
	}
	if _, err := cliutil.TierModeByName(s.Tier); err != nil {
		return err
	}
	if err := cliutil.TierBand(s.TierLow, s.TierHigh); err != nil {
		return err
	}
	return nil
}

// Config materializes the core pipeline configuration the spec
// describes. Validate must have accepted the spec.
func (s *JobSpec) Config(qids []string) (core.Config, error) {
	cfg := core.DefaultConfig(qids)
	if s.Theta > 0 {
		cfg.Theta = s.Theta
	}
	if s.K > 0 {
		cfg.AliceK, cfg.BobK = s.K, s.K
	}
	if s.AllowanceFraction > 0 {
		cfg.AllowanceFraction = s.AllowanceFraction
	}
	if s.Allowance > 0 {
		cfg.Allowance = s.Allowance
	}
	var err error
	if cfg.Heuristic, err = cliutil.HeuristicByName(s.Heuristic); err != nil {
		return cfg, err
	}
	if cfg.Strategy, err = cliutil.StrategyByName(s.Strategy); err != nil {
		return cfg, err
	}
	if s.Epsilon != 0 {
		// DP mode: leave the anonymizers nil so the core config installs
		// the deterministic binner with these parameters.
		cfg.Epsilon = s.Epsilon
		cfg.DPDelta = s.DPDelta
		cfg.DPSeed = s.DPSeed
		cfg.DPLevel = s.DPLevel
	} else {
		anon, err := cliutil.AnonymizerByName(s.Anonymizer)
		if err != nil {
			return cfg, err
		}
		cfg.AliceAnonymizer, cfg.BobAnonymizer = anon, anon
	}
	if cfg.Blocking, err = cliutil.BlockingModeByName(s.Blocking); err != nil {
		return cfg, err
	}
	if s.Secure {
		keyBits := s.KeyBits
		if keyBits == 0 {
			keyBits = 1024
		}
		cfg.Comparator = core.SecureComparatorFactory(keyBits)
	}
	cfg.SMCWorkers = s.SMCWorkers
	if cfg.SMCPacking, err = cliutil.PackingModeByName(s.Packing); err != nil {
		return cfg, err
	}
	if cfg.Tier, err = cliutil.TierModeByName(s.Tier); err != nil {
		return cfg, err
	}
	cfg.TierHigh, cfg.TierLow = s.TierHigh, s.TierLow
	cfg.Seed = s.Seed
	return cfg, nil
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: accepted, waiting for a worker slot (FIFO).
	StateQueued State = "queued"
	// StateRunning: executing on a scheduler worker.
	StateRunning State = "running"
	// StateDone: completed; the result endpoint serves its labeling.
	StateDone State = "done"
	// StateFailed: terminated with an error recorded in the status.
	StateFailed State = "failed"
	// StateCanceled: removed by DELETE before or during execution.
	StateCanceled State = "canceled"
	// StateInterrupted: checkpointed mid-run (daemon drain or crash);
	// the next daemon start resumes it from its journal.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Progress is the live position of a running job, fed by the core
// pipeline's progress hook.
type Progress struct {
	// Phase is the pipeline stage: "anonymize-alice", "anonymize-bob",
	// "dp-noise" (DP jobs only), "blocking", "tier", or "smc".
	Phase string `json:"phase"`
	// Done and Total are the stage's position; for the "smc" phase they
	// are pairs purchased vs the resolved allowance.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// PairsPurchased and AllowanceRemaining restate the smc position in
	// the paper's cost-model terms (zero in earlier phases).
	PairsPurchased     int64 `json:"pairs_purchased"`
	AllowanceRemaining int64 `json:"allowance_remaining"`
}

// JobStatus is the wire form of GET /v1/jobs/{id} and the events stream.
type JobStatus struct {
	ID          string    `json:"id"`
	State       State     `json:"state"`
	Error       string    `json:"error,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// Resumed counts how many times daemon restarts re-queued this job
	// from its journal.
	Resumed int `json:"resumed,omitempty"`
	// Progress is present while the job runs (and retains the last
	// position afterwards).
	Progress *Progress `json:"progress,omitempty"`
}

// JobResult is the wire form of GET /v1/jobs/{id}/result: the stable
// Result summary, the matched record-index pairs (the querying party's
// output), and the optional ground-truth evaluation.
type JobResult struct {
	Result  core.ResultJSON `json:"result"`
	Matches [][2]int        `json:"matches"`
	// Evaluation is present when the spec requested it.
	Evaluation *metrics.Confusion `json:"evaluation,omitempty"`
	// TruthPairs is the ground-truth match count behind Evaluation.
	TruthPairs int `json:"truth_pairs,omitempty"`
}

// apiError is the uniform error body. Kind and Retryable classify the
// failure (see ErrKind): retryable errors also carry a Retry-After
// header, terminal ones mean the request must change before resending.
type apiError struct {
	Error     string  `json:"error"`
	Kind      ErrKind `json:"kind,omitempty"`
	Retryable bool    `json:"retryable,omitempty"`
}
