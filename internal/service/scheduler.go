package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Job is one submitted linkage run moving through the service: queued,
// scheduled onto a worker, journaled while running, and settled into a
// terminal (or resumable) state.
type Job struct {
	ID          string
	Seq         int
	Spec        JobSpec
	SubmittedAt time.Time

	// Progress is fed by the core pipeline's progress hook.
	Progress *tracker

	mu           sync.Mutex
	state        State
	errMsg       string
	resumed      int
	cancel       context.CancelFunc
	userCanceled bool
	settled      chan struct{}
}

func newJob(id string, seq int, spec JobSpec, submitted time.Time) *Job {
	return &Job{
		ID:          id,
		Seq:         seq,
		Spec:        spec,
		SubmittedAt: submitted,
		Progress:    newTracker(),
		state:       StateQueued,
		settled:     make(chan struct{}),
	}
}

// State returns the job's current lifecycle position.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status renders the wire form.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Error:       j.errMsg,
		SubmittedAt: j.SubmittedAt,
		Resumed:     j.resumed,
	}
	j.mu.Unlock()
	st.Progress = j.Progress.Snapshot()
	return st
}

// Settled is closed once the job stops executing in this process —
// terminal states and checkpointed interruptions alike.
func (j *Job) Settled() <-chan struct{} { return j.settled }

// UserCanceled reports whether a DELETE requested this job's end (which
// distinguishes a cancellation from a daemon-drain checkpoint when the
// engine returns ErrInterrupted).
func (j *Job) UserCanceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCanceled
}

// begin atomically moves a popped queue entry to running; it fails when
// the job was canceled while queued.
func (j *Job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	return true
}

// finish records the post-execution state and wakes Settled watchers.
// An interrupted job may be re-queued (by recovery in a later process);
// the settled channel is refreshed when that happens.
func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.cancel = nil
	close(j.settled)
	j.mu.Unlock()
}

// markRecovered resets a non-terminal job found on disk back to queued,
// counting the resumption.
func (j *Job) markRecovered() {
	j.mu.Lock()
	j.state = StateQueued
	j.resumed++
	j.mu.Unlock()
}

// Scheduler runs jobs on a bounded worker pool in strict FIFO submit
// order: at most `workers` jobs execute concurrently, the rest wait in
// the queue. Each running job gets its own cancellable context, so a
// DELETE or a daemon drain stops exactly one run at its next SMC chunk
// boundary.
type Scheduler struct {
	exec    func(ctx context.Context, j *Job)
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Job
	running map[*Job]struct{}
	stopped bool
	wg      sync.WaitGroup
}

// NewScheduler starts a pool of `workers` goroutines executing jobs via
// exec. exec owns the job's state transitions after begin.
func NewScheduler(workers int, exec func(ctx context.Context, j *Job)) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{exec: exec, workers: workers, running: make(map[*Job]struct{})}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.loop()
	}
	return s
}

// Workers returns the concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// Enqueue appends the job to the FIFO queue.
func (s *Scheduler) Enqueue(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("service: scheduler is draining; not accepting jobs")
	}
	s.queue = append(s.queue, j)
	s.cond.Signal()
	return nil
}

// Cancel ends the job: a queued job settles to canceled immediately and
// reports wasQueued = true so the caller can persist the terminal state;
// a running job has its context cancelled (the executor settles it) and
// reports wasQueued = false. Settled jobs are left alone.
func (s *Scheduler) Cancel(j *Job) (wasQueued bool) {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.errMsg = "canceled while queued"
		j.userCanceled = true
		close(j.settled)
		j.mu.Unlock()
		return true
	case StateRunning:
		j.userCanceled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return false
	default:
		j.mu.Unlock()
		return false
	}
}

// Counts reports how many jobs are queued (and still runnable) and how
// many are executing right now.
func (s *Scheduler) Counts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.queue {
		if j.State() == StateQueued {
			queued++
		}
	}
	return queued, len(s.running)
}

// Drain stops the pool for daemon shutdown: no new jobs start, every
// running job's context is cancelled — the engine checkpoints its
// journal at the next chunk boundary — and Drain returns once all
// workers have exited. Queued jobs stay queued on disk; the next daemon
// start recovers them.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	s.stopped = true
	for j := range s.running {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// loop is one worker: pop the FIFO head, run it, repeat.
func (s *Scheduler) loop() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		if !j.begin(cancel) {
			cancel() // canceled while queued; nothing to run
			continue
		}
		s.mu.Lock()
		s.running[j] = struct{}{}
		stopping := s.stopped
		s.mu.Unlock()
		if stopping {
			// Drain raced with the pop: checkpoint immediately rather
			// than starting a run the daemon is about to abandon.
			cancel()
		}
		s.exec(ctx, j)
		cancel()
		s.mu.Lock()
		delete(s.running, j)
		s.mu.Unlock()
	}
}

// next blocks until a queued job or a drain arrives.
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		// Stop before popping: a job still in the queue at drain time
		// belongs to the next daemon start, not this one.
		if s.stopped {
			return nil
		}
		for len(s.queue) > 0 {
			j := s.queue[0]
			s.queue = s.queue[1:]
			if j.State() == StateQueued {
				return j
			}
		}
		if s.stopped {
			return nil
		}
		s.cond.Wait()
	}
}
