package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Live datasets get the same directory-per-resource layout as jobs:
//
//	<root>/datasets/ds-000001/
//	    dataset.json  the registration (written before the dataset exists)
//	    batches.json  the accepted append batches, in order (rewritten
//	                  atomically on every accept)
//	    ingest.wal    the incremental engine's batch journal
//	    status.json   a terminal failure verdict, when one exists
//
// The restart contract: batches.json is the authoritative append
// schedule and ingest.wal the verdict history. Recovery re-Appends every
// stored batch in order; the journal replays the committed prefix at
// zero live cost and the engine's per-batch digests refuse a batch file
// that changed since it was accepted. batches.json is always a superset
// of the journal's frames — the entry is persisted before the engine
// sees the batch — so a crash between the two leaves a batch that
// simply re-processes fresh on resume.

const dsIDPrefix = "ds-"

func formatDatasetID(seq int) string { return fmt.Sprintf("%s%06d", dsIDPrefix, seq) }

func parseDatasetID(id string) (seq int, ok bool) {
	rest, found := strings.CutPrefix(id, dsIDPrefix)
	if !found {
		return 0, false
	}
	seq, err := strconv.Atoi(rest)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}

// datasetFile is the durable form of a registration.
type datasetFile struct {
	ID        string      `json:"id"`
	Seq       int         `json:"seq"`
	CreatedAt time.Time   `json:"created_at"`
	Spec      DatasetSpec `json:"spec"`
}

// batchEntry is one accepted append batch: which side grew and the
// server-side CSV reference holding its records. The reference — not a
// copy of the records — is the durable form; the engine's recBatch
// digest watermark detects a reference whose content changed.
type batchEntry struct {
	Batch int       `json:"batch"`
	Side  int       `json:"side"`
	Ref   string    `json:"ref"`
	At    time.Time `json:"at"`
}

// datasetsDir is the dataset root, sibling of jobsDir.
func (st *Store) datasetsDir() string {
	return filepath.Join(filepath.Dir(st.jobsDir), "datasets")
}

// DatasetDir returns the dataset's directory.
func (st *Store) DatasetDir(id string) string {
	return filepath.Join(st.datasetsDir(), id)
}

// DatasetJournalPath returns the dataset's ingest journal.
func (st *Store) DatasetJournalPath(id string) string {
	return filepath.Join(st.DatasetDir(id), "ingest.wal")
}

// NewDataset allocates the next dataset ID and persists the
// registration, after which the dataset survives a daemon crash.
func (st *Store) NewDataset(spec DatasetSpec) (*datasetFile, error) {
	if err := os.MkdirAll(st.datasetsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("service: creating dataset root: %w", err)
	}
	st.mu.Lock()
	st.nextDSSeq++
	seq := st.nextDSSeq
	st.mu.Unlock()
	id := formatDatasetID(seq)
	if err := os.MkdirAll(st.DatasetDir(id), 0o755); err != nil {
		return nil, fmt.Errorf("service: creating dataset dir: %w", err)
	}
	df := &datasetFile{ID: id, Seq: seq, CreatedAt: time.Now().UTC(), Spec: spec}
	if err := writeJSONFile(filepath.Join(st.DatasetDir(id), "dataset.json"), df); err != nil {
		return nil, err
	}
	return df, nil
}

// AppendBatchEntry durably accepts one append batch by rewriting
// batches.json with the entry added. The rewrite is O(batches) per
// accept — fine for the batch counts a live dataset sees (appends are
// batched precisely so this list stays short) — and atomic, so the
// recovery scan never reads a half-accepted schedule.
func (st *Store) AppendBatchEntry(id string, e batchEntry) error {
	entries, err := st.ReadBatchEntries(id)
	if err != nil {
		return err
	}
	if e.Batch != len(entries) {
		return fmt.Errorf("service: batch entry %d for %s arrives out of order (have %d)", e.Batch, id, len(entries))
	}
	return writeJSONFile(filepath.Join(st.DatasetDir(id), "batches.json"), append(entries, e))
}

// ReadBatchEntries loads the accepted batch schedule; a dataset with no
// appends yet has none.
func (st *Store) ReadBatchEntries(id string) ([]batchEntry, error) {
	raw, err := os.ReadFile(filepath.Join(st.DatasetDir(id), "batches.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading batches for %s: %w", id, err)
	}
	var entries []batchEntry
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("service: corrupt batch schedule for %s: %w", id, err)
	}
	return entries, nil
}

// WriteDatasetTerminal persists a real (non-crash) ingest failure so
// recovery does not replay into the same wall; crashes write nothing
// and therefore resume.
func (st *Store) WriteDatasetTerminal(id, errMsg string) error {
	return writeJSONFile(filepath.Join(st.DatasetDir(id), "status.json"),
		statusFile{State: StateFailed, Error: errMsg})
}

// recoveredDataset is one dataset found on disk at daemon start.
type recoveredDataset struct {
	File    datasetFile
	Batches []batchEntry
	// Failed carries a persisted terminal failure; such a dataset is
	// surfaced read-only instead of replayed.
	Failed string
}

// RecoverDatasets scans the dataset root in registration order.
func (st *Store) RecoverDatasets() ([]recoveredDataset, error) {
	entries, err := os.ReadDir(st.datasetsDir())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: scanning dataset root: %w", err)
	}
	var out []recoveredDataset
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, ok := parseDatasetID(e.Name()); !ok {
			continue
		}
		rd, err := st.recoverDataset(e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, rd)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].File.Seq < out[b].File.Seq })
	return out, nil
}

func (st *Store) recoverDataset(id string) (recoveredDataset, error) {
	var rd recoveredDataset
	raw, err := os.ReadFile(filepath.Join(st.DatasetDir(id), "dataset.json"))
	if err != nil {
		return rd, fmt.Errorf("service: dataset %s has no readable registration: %w", id, err)
	}
	if err := json.Unmarshal(raw, &rd.File); err != nil {
		return rd, fmt.Errorf("service: dataset %s has a corrupt registration: %w", id, err)
	}
	if rd.Batches, err = st.ReadBatchEntries(id); err != nil {
		return rd, err
	}
	if raw, err := os.ReadFile(filepath.Join(st.DatasetDir(id), "status.json")); err == nil {
		var stf statusFile
		if err := json.Unmarshal(raw, &stf); err == nil && stf.State == StateFailed {
			rd.Failed = stf.Error
		}
	}
	return rd, nil
}
