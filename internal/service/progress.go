package service

import "sync"

// tracker holds a job's latest progress snapshot and wakes event-stream
// subscribers on every update. The core pipeline calls Update
// synchronously on the linking goroutine (the hook contract says keep it
// fast), so Update is a field copy plus a channel close — no I/O.
type tracker struct {
	mu      sync.Mutex
	snap    Progress
	any     bool
	changed chan struct{}
}

func newTracker() *tracker {
	return &tracker{changed: make(chan struct{})}
}

// Update implements the core.Config.Progress contract.
func (t *tracker) Update(stage string, done, total int64) {
	t.mu.Lock()
	t.snap = Progress{Phase: stage, Done: done, Total: total}
	if stage == "smc" {
		t.snap.PairsPurchased = done
		if rem := total - done; rem > 0 {
			t.snap.AllowanceRemaining = rem
		}
	}
	t.any = true
	close(t.changed)
	t.changed = make(chan struct{})
	t.mu.Unlock()
}

// Snapshot returns the latest position, or nil before the first update.
func (t *tracker) Snapshot() *Progress {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.any {
		return nil
	}
	snap := t.snap
	return &snap
}

// Watch returns the latest position plus a channel closed at the next
// update, so a subscriber loops: read, emit, wait.
func (t *tracker) Watch() (*Progress, <-chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := t.changed
	if !t.any {
		return nil, ch
	}
	snap := t.snap
	return &snap, ch
}
