package cliutil

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Backoff generates exponentially growing retry delays with jitter. The
// zero value uses the defaults below; parties that start in arbitrary
// order (holders dialing the querying party, a daemon rebinding a port
// still in TIME_WAIT) retry under it instead of hammering a fixed
// interval.
type Backoff struct {
	// Base is the first delay (default 50ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 2s).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of the delay randomized symmetrically
	// around it, so synchronized peers do not retry in lockstep
	// (default 0.25; 0 < Jitter ≤ 1 keeps delays positive).
	Jitter float64
}

const (
	defaultBackoffBase   = 50 * time.Millisecond
	defaultBackoffMax    = 2 * time.Second
	defaultBackoffFactor = 2
	defaultBackoffJitter = 0.25
)

// Delay returns the jittered delay for a 0-based attempt number.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	if factor <= 1 {
		factor = defaultBackoffFactor
	}
	if jitter <= 0 || jitter > 1 {
		jitter = defaultBackoffJitter
	}
	d := float64(base)
	for i := 0; i < attempt && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	// Spread the delay over [d·(1−jitter), d·(1+jitter)].
	d *= 1 + jitter*(2*rand.Float64()-1)
	return time.Duration(d)
}

// retry runs op with backoff until it succeeds or ctx ends. The context
// carries the deadline: a caller that wants "give up after a minute"
// passes context.WithTimeout.
func retry(ctx context.Context, b Backoff, what string, op func() error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%s: %w (last attempt: %v)", what, err, lastErr)
			}
			return fmt.Errorf("%s: %w", what, err)
		}
		if lastErr = op(); lastErr == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%s: %w (last attempt: %v)", what, ctx.Err(), lastErr)
		case <-time.After(b.Delay(attempt)):
		}
	}
}

// DialRetry dials addr with exponential backoff and jitter until it
// connects or ctx ends. The peer may not be listening yet when the
// parties start in arbitrary order.
func DialRetry(ctx context.Context, network, addr string, b Backoff) (net.Conn, error) {
	var conn net.Conn
	var d net.Dialer
	err := retry(ctx, b, "dial "+addr, func() error {
		c, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return err
		}
		conn = c
		return nil
	})
	return conn, err
}

// ListenRetry binds addr with exponential backoff and jitter until it
// succeeds or ctx ends. A daemon restarted immediately after a crash may
// find its port briefly unavailable; retrying the bind makes restarts
// (the whole point of journal-backed recovery) reliable.
func ListenRetry(ctx context.Context, network, addr string, b Backoff) (net.Listener, error) {
	var l net.Listener
	var lc net.ListenConfig
	err := retry(ctx, b, "listen "+addr, func() error {
		got, err := lc.Listen(ctx, network, addr)
		if err != nil {
			return err
		}
		l = got
		return nil
	})
	return l, err
}
