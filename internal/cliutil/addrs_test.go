package cliutil

import (
	"flag"
	"reflect"
	"testing"
)

func TestWorkerAddrsRepeatAndCommaList(t *testing.T) {
	var a WorkerAddrs
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Var(&a, "worker", "")
	err := fs.Parse([]string{
		"-worker", "alpha:9101",
		"-worker", "beta:9101, gamma:9102",
		"-worker", "alpha:9101", // duplicate, dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	want := WorkerAddrs{"alpha:9101", "beta:9101", "gamma:9102"}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("parsed %v, want %v", a, want)
	}
	if a.String() != "alpha:9101,beta:9101,gamma:9102" {
		t.Fatalf("String() = %q", a.String())
	}
}

func TestWorkerAddrsRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"", "no-port", "host:", "a:1,,b:2"} {
		var a WorkerAddrs
		if err := a.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted, want error", bad)
		}
	}
}

func TestNormalizeAddr(t *testing.T) {
	cases := map[string]string{
		" host:9000 ": "host:9000",
		":9000":       ":9000",
		"[::1]:80":    "[::1]:80",
	}
	for in, want := range cases {
		got, err := NormalizeAddr(in)
		if err != nil {
			t.Errorf("NormalizeAddr(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := NormalizeAddr("bare-host"); err == nil {
		t.Error("NormalizeAddr accepted a portless address")
	}
}
