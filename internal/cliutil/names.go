package cliutil

import (
	"fmt"
	"strings"

	"pprl/internal/anonymize"
	"pprl/internal/core"
	"pprl/internal/heuristic"
)

// HeuristicByName resolves an SMC selection heuristic from its
// case-insensitive CLI/API name.
func HeuristicByName(name string) (heuristic.Heuristic, error) {
	switch strings.ToLower(name) {
	case "minfirst":
		return heuristic.MinFirst{}, nil
	case "maxlast":
		return heuristic.MaxLast{}, nil
	case "", "minavgfirst":
		return heuristic.MinAvgFirst{}, nil
	default:
		return nil, fmt.Errorf("unknown heuristic %q (want minFirst, maxLast, or minAvgFirst)", name)
	}
}

// StrategyByName resolves a residual-labeling strategy from its
// case-insensitive CLI/API name.
func StrategyByName(name string) (core.Strategy, error) {
	switch strings.ToLower(name) {
	case "", "precision":
		return core.MaximizePrecision, nil
	case "recall":
		return core.MaximizeRecall, nil
	case "classifier":
		return core.TrainClassifier, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want precision, recall, or classifier)", name)
	}
}

// BlockingModeByName resolves a blocking engine from its
// case-insensitive CLI/API name.
func BlockingModeByName(name string) (core.BlockingMode, error) {
	switch strings.ToLower(name) {
	case "", "dense":
		return core.BlockingDense, nil
	case "indexed":
		return core.BlockingIndexed, nil
	default:
		return 0, fmt.Errorf("unknown blocking mode %q (want dense or indexed)", name)
	}
}

// PackingModeByName resolves the SMC result-packing mode from its
// case-insensitive CLI/API name.
func PackingModeByName(name string) (core.PackingMode, error) {
	switch strings.ToLower(name) {
	case "", "packed":
		return core.PackingPacked, nil
	case "off":
		return core.PackingOff, nil
	default:
		return 0, fmt.Errorf("unknown packing mode %q (want packed or off)", name)
	}
}

// TierModeByName resolves the triage-tier mode from its
// case-insensitive CLI/API name.
func TierModeByName(name string) (core.TierMode, error) {
	switch strings.ToLower(name) {
	case "", "off":
		return core.TierOff, nil
	case "bloom":
		return core.TierBloom, nil
	default:
		return 0, fmt.Errorf("unknown tier mode %q (want off or bloom)", name)
	}
}

// AnonymizerByName resolves a k-anonymization method from its
// case-insensitive CLI/API name. The DP binner is not resolvable here —
// it needs the ε parameters, so surfaces accepting "dp" route it
// through Config.Epsilon (see IsDPName) before falling back to this.
func AnonymizerByName(name string) (anonymize.Anonymizer, error) {
	switch strings.ToLower(name) {
	case "", "entropy":
		return anonymize.NewMaxEntropy(), nil
	case "tds":
		return anonymize.NewTDS(), nil
	case "datafly":
		return anonymize.NewDataFly(), nil
	case "mondrian":
		return anonymize.NewMondrian(), nil
	default:
		return nil, fmt.Errorf("unknown anonymization method %q (want entropy, tds, datafly, mondrian, or dp with -epsilon)", name)
	}
}

// IsDPName reports whether the method name selects the differentially
// private blocking mode.
func IsDPName(name string) bool { return strings.EqualFold(name, "dp") }
