package cliutil

import (
	"strings"
	"testing"

	"pprl/internal/core"
)

func TestPackingModeByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want core.PackingMode
	}{
		{"", core.PackingPacked},
		{"packed", core.PackingPacked},
		{"Packed", core.PackingPacked},
		{"off", core.PackingOff},
		{"OFF", core.PackingOff},
	} {
		got, err := PackingModeByName(tc.name)
		if err != nil {
			t.Fatalf("PackingModeByName(%q): %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("PackingModeByName(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, err := PackingModeByName("zip"); err == nil || !strings.Contains(err.Error(), "unknown packing mode") {
		t.Fatalf("PackingModeByName(\"zip\") = %v, want unknown-mode error", err)
	}
}

func TestTierModeByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want core.TierMode
	}{
		{"", core.TierOff},
		{"off", core.TierOff},
		{"OFF", core.TierOff},
		{"bloom", core.TierBloom},
		{"Bloom", core.TierBloom},
	} {
		got, err := TierModeByName(tc.name)
		if err != nil {
			t.Fatalf("TierModeByName(%q): %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("TierModeByName(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
	if _, err := TierModeByName("paillier"); err == nil || !strings.Contains(err.Error(), "unknown tier mode") {
		t.Fatalf("TierModeByName(\"paillier\") = %v, want unknown-mode error", err)
	}
}
