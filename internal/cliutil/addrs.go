package cliutil

import (
	"fmt"
	"net"
	"strings"
)

// NormalizeAddr validates and canonicalizes a TCP address for dialing or
// listening: host:port with the host optionally empty (":9000" binds all
// interfaces). The CLI front ends run every user-supplied address through
// it so a typo fails at flag parsing, not minutes later inside a dial
// retry loop.
func NormalizeAddr(raw string) (string, error) {
	addr := strings.TrimSpace(raw)
	if addr == "" {
		return "", fmt.Errorf("empty address")
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("bad address %q: %v", raw, err)
	}
	if port == "" {
		return "", fmt.Errorf("address %q has no port", raw)
	}
	return net.JoinHostPort(host, port), nil
}

// WorkerAddrs collects fleet worker addresses as a flag.Value: the flag
// may repeat, each occurrence may carry a comma-separated list, and the
// result is validated, canonicalized, and deduplicated in first-seen
// order:
//
//	-worker a:9101 -worker b:9101,c:9101
//
// Register with flag.Var(&addrs, "worker", …).
type WorkerAddrs []string

// String implements flag.Value.
func (a *WorkerAddrs) String() string { return strings.Join(*a, ",") }

// Set implements flag.Value: parse one occurrence of the flag.
func (a *WorkerAddrs) Set(v string) error {
	for _, raw := range strings.Split(v, ",") {
		addr, err := NormalizeAddr(raw)
		if err != nil {
			return fmt.Errorf("worker address: %w", err)
		}
		seen := false
		for _, have := range *a {
			if have == addr {
				seen = true
				break
			}
		}
		if !seen {
			*a = append(*a, addr)
		}
	}
	return nil
}
