package cliutil

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestBackoffDelayGrowsAndCaps: delays grow geometrically from Base and
// never exceed Max·(1+Jitter), even far past the cap attempt.
func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: 0.25}
	for attempt := 0; attempt < 20; attempt++ {
		want := 10 * time.Millisecond << uint(attempt)
		if want > 80*time.Millisecond {
			want = 80 * time.Millisecond
		}
		lo := time.Duration(float64(want) * 0.75)
		hi := time.Duration(float64(want) * 1.25)
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(attempt)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

// TestBackoffZeroValueDefaults: the zero value is usable and positive.
func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 10; attempt++ {
		d := b.Delay(attempt)
		if d <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", attempt, d)
		}
		if d > time.Duration(float64(defaultBackoffMax)*(1+defaultBackoffJitter)) {
			t.Fatalf("attempt %d: delay %v exceeds jittered default cap", attempt, d)
		}
	}
}

// TestDialRetryConnectsToLateListener: the dialer keeps retrying while
// nothing is listening and connects once the listener appears.
func TestDialRetryConnectsToLateListener(t *testing.T) {
	// Reserve a port, then release it so the first dials fail.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	accepted := make(chan struct{})
	go func() {
		time.Sleep(60 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial side will time out and report
		}
		defer l2.Close()
		c, err := l2.Accept()
		if err == nil {
			c.Close()
			close(accepted)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := DialRetry(ctx, "tcp", addr, Backoff{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	c.Close()
	select {
	case <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("listener never accepted the retried dial")
	}
}

// TestDialRetryHonorsDeadline: with nobody listening, the dialer returns
// the context error once the deadline passes instead of spinning forever.
func TestDialRetryHonorsDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := DialRetry(ctx, "tcp", addr, Backoff{Base: 5 * time.Millisecond}); err == nil {
		t.Fatal("DialRetry succeeded with no listener")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("DialRetry took %v to give up on a 50ms deadline", elapsed)
	}
}

// TestListenRetryBindsImmediately: the common case needs no retries.
func TestListenRetryBindsImmediately(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	l, err := ListenRetry(ctx, "tcp", "127.0.0.1:0", Backoff{})
	if err != nil {
		t.Fatalf("ListenRetry: %v", err)
	}
	l.Close()
}
