package cliutil

import (
	"math"
	"strings"
	"testing"
)

func TestRangeValidate(t *testing.T) {
	cases := []struct {
		r    Range
		v    float64
		ok   bool
	}{
		{ThetaRange, 0.05, true},
		{ThetaRange, 1.5, true}, // thresholds ≥ 1 are legal (always-match attribute)
		{ThetaRange, 0, false},
		{ThetaRange, -0.1, false},
		{ThetaRange, math.NaN(), false},
		{EpsilonRange, 0.5, true},
		{EpsilonRange, 100, true},
		{EpsilonRange, 0, false},
		{EpsilonRange, -1, false},
		{EpsilonRange, math.Inf(1), false},
		{DeltaRange, 0, true},
		{DeltaRange, 1e-6, true},
		{DeltaRange, 0.5, false},
		{DeltaRange, -0.1, false},
		{TierHighRange, 1, true},
		{TierHighRange, 0.85, true},
		{TierHighRange, 0, false},
		{TierHighRange, 1.0001, false},
		{TierLowRange, 0, true},
		{TierLowRange, 0.4, true},
		{TierLowRange, 1, false},
		{TierLowRange, -0.2, false},
		{AllowanceFractionRange, 0, true},
		{AllowanceFractionRange, 1, true},
		{AllowanceFractionRange, 1.01, false},
	}
	for _, c := range cases {
		err := c.r.Validate(c.v)
		if (err == nil) != c.ok {
			t.Errorf("%s.Validate(%v): got %v, want ok=%v", c.r.Name, c.v, err, c.ok)
		}
	}
}

func TestRangeErrorText(t *testing.T) {
	err := TierHighRange.Validate(1.5)
	if err == nil {
		t.Fatal("want error")
	}
	want := "-tier-high must be in (0, 1], got 1.5"
	if err.Error() != want {
		t.Errorf("error text %q, want %q", err.Error(), want)
	}
	if err := EpsilonRange.Validate(-2); err == nil || !strings.Contains(err.Error(), "(0, ∞)") {
		t.Errorf("epsilon error text = %v, want open-infinity interval", err)
	}
	if err := EpsilonRange.Named("epsilon").Validate(0); err == nil || !strings.HasPrefix(err.Error(), "epsilon must") {
		t.Errorf("Named did not rename: %v", err)
	}
}

func TestTierBand(t *testing.T) {
	cases := []struct {
		low, high float64
		ok        bool
	}{
		{0, 0, true},      // both unset: engine defaults
		{0.4, 0.85, true}, // the engine's own defaults, explicit
		{0, 0.85, true},   // explicit low of 0 = never label NonMatch
		{0.4, 0, false},   // high unset but low set
		{0.9, 0.8, false}, // inverted
		{0.8, 0.8, false}, // empty band
		{-0.1, 0.8, false},
		{0.4, 1.2, false},
		{math.NaN(), 0.9, false},
	}
	for _, c := range cases {
		err := TierBand(c.low, c.high)
		if (err == nil) != c.ok {
			t.Errorf("TierBand(%v, %v): got %v, want ok=%v", c.low, c.high, err, c.ok)
		}
	}
}
