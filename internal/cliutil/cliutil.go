// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"pprl/internal/adult"
	"pprl/internal/dataset"
)

// LoadSchemaOrAdult loads a schema manifest, or returns the built-in
// Adult schema when path is empty.
func LoadSchemaOrAdult(path string) (*dataset.Schema, error) {
	if path == "" {
		return adult.Schema(), nil
	}
	return dataset.LoadSchema(path)
}
