package cliutil

import (
	"path/filepath"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/dataset"
)

func TestLoadSchemaOrAdult(t *testing.T) {
	s, err := LoadSchemaOrAdult("")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != adult.Schema().Len() {
		t.Errorf("default schema has %d attributes", s.Len())
	}
	if _, err := LoadSchemaOrAdult("/nonexistent/schema.txt"); err == nil {
		t.Error("missing manifest should fail")
	}
	dir := t.TempDir()
	if err := dataset.SaveSchema(dir, adult.Schema()); err != nil {
		t.Fatal(err)
	}
	custom, err := LoadSchemaOrAdult(filepath.Join(dir, dataset.SchemaManifest))
	if err != nil {
		t.Fatal(err)
	}
	if custom.Len() != s.Len() {
		t.Errorf("custom schema has %d attributes, want %d", custom.Len(), s.Len())
	}
}
