package cliutil

import (
	"fmt"
	"math"
	"strconv"
)

// Range is a validated interval for float-valued flags and API fields.
// Every surface that accepts θ, tier thresholds, allowance fractions or
// ε validates through the same Range values, so out-of-range input is
// rejected at flag-parse time with identical error text everywhere
// instead of failing mid-session with whatever the engine happens to
// say.
type Range struct {
	// Name is the flag or field name used in error messages.
	Name string
	// Lo and Hi bound the interval; use ±Inf for unbounded sides.
	Lo, Hi float64
	// LoOpen/HiOpen make the corresponding bound exclusive.
	LoOpen, HiOpen bool
}

// Canonical ranges for the pipeline's float knobs.
var (
	// ThetaRange bounds matching thresholds: any positive value (a
	// threshold ≥ 1 is meaningful — it makes an attribute always
	// match).
	ThetaRange = Range{Name: "-theta", Lo: 0, LoOpen: true, Hi: math.Inf(1), HiOpen: true}
	// EpsilonRange bounds the DP privacy budget.
	EpsilonRange = Range{Name: "-epsilon", Lo: 0, LoOpen: true, Hi: math.Inf(1), HiOpen: true}
	// DeltaRange bounds the DP truncation mass; 0 selects the default.
	DeltaRange = Range{Name: "-dp-delta", Lo: 0, Hi: 0.5, HiOpen: true}
	// TierHighRange and TierLowRange bound the bloom-tier score bands.
	TierHighRange = Range{Name: "-tier-high", Lo: 0, LoOpen: true, Hi: 1}
	TierLowRange = Range{Name: "-tier-low", Lo: 0, Hi: 1, HiOpen: true}
	// AllowanceFractionRange bounds the SMC budget as a share of the
	// Unknown region.
	AllowanceFractionRange = Range{Name: "-allowance", Lo: 0, Hi: 1}
)

// Named returns a copy of the range with the error-message name
// replaced, for API surfaces whose field names differ from the flags.
func (r Range) Named(name string) Range {
	r.Name = name
	return r
}

// Validate rejects values outside the interval (NaN is always outside).
func (r Range) Validate(v float64) error {
	ok := !math.IsNaN(v) &&
		(v > r.Lo || (!r.LoOpen && v == r.Lo)) &&
		(v < r.Hi || (!r.HiOpen && v == r.Hi))
	if !ok {
		return fmt.Errorf("%s must be in %s, got %v", r.Name, r.Interval(), v)
	}
	return nil
}

// Interval renders the bounds in mathematical notation, e.g. "(0, 1]".
func (r Range) Interval() string {
	open, close := "[", "]"
	if r.LoOpen {
		open = "("
	}
	if r.HiOpen {
		close = ")"
	}
	return open + formatBound(r.Lo) + ", " + formatBound(r.Hi) + close
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "∞"
	}
	if math.IsInf(v, -1) {
		return "-∞"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TierBand validates the bloom-tier score band as a pair. Both zero
// means "use the engine defaults" and is always accepted; otherwise both
// thresholds must sit in their ranges with low strictly below high.
func TierBand(low, high float64) error {
	if low == 0 && high == 0 {
		return nil
	}
	if err := TierHighRange.Validate(high); err != nil {
		return err
	}
	if err := TierLowRange.Validate(low); err != nil {
		return err
	}
	if low >= high {
		return fmt.Errorf("%s must be below %s, got %v ≥ %v", TierLowRange.Name, TierHighRange.Name, low, high)
	}
	return nil
}
