package distance

import "pprl/internal/dataset"

// MetricFor returns the paper's default metric for an attribute: Hamming
// for categorical attributes, normalized Euclidean (by the domain range)
// for continuous ones.
func MetricFor(attr dataset.Attribute) Metric {
	if attr.Kind == dataset.Continuous {
		return Euclidean{Norm: attr.Intervals.Range()}
	}
	return Hamming{}
}

// MetricsFor maps MetricFor over a schema restricted to the given
// attribute positions (the quasi-identifier set).
func MetricsFor(schema *dataset.Schema, attrs []int) []Metric {
	out := make([]Metric, len(attrs))
	for i, idx := range attrs {
		out[i] = MetricFor(schema.Attr(idx))
	}
	return out
}
