package distance

import "pprl/internal/vgh"

// Levenshtein returns the classic edit distance (unit-cost insert, delete,
// substitute) between two strings, computed over bytes. It is the building
// block for the paper's future-work extension to alphanumeric attributes.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Edit is the normalized edit distance on string-valued categorical
// attributes, the paper's Section VIII extension. The attribute's domain
// is the leaf set of a vgh.Hierarchy whose leaves are the concrete strings
// (grouped, e.g., by prefix or by semantic clusters); generalized values
// are internal nodes. Slack and expected distances are computed exactly by
// enumerating the (small) specialization sets, so the blocking soundness
// invariant inf ≤ d ≤ sup holds by construction — addressing the paper's
// observation that "distance functions are much more complex than Hamming
// distance" for alphanumeric data.
type Edit struct {
	h    *vgh.Hierarchy
	norm float64
	// dist[i*n+j] caches the raw edit distance between leaves i and j.
	dist []int
	n    int
}

// NewEdit precomputes pairwise edit distances over the hierarchy's leaf
// strings. Distances are normalized by the maximum observed pairwise
// distance so they land in [0, 1]; a single-leaf domain normalizes by 1.
func NewEdit(h *vgh.Hierarchy) *Edit {
	n := h.NumLeaves()
	e := &Edit{h: h, n: n, dist: make([]int, n*n)}
	maxD := 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := Levenshtein(h.Leaf(i).Value, h.Leaf(j).Value)
			e.dist[i*n+j] = d
			e.dist[j*n+i] = d
			if d > maxD {
				maxD = d
			}
		}
	}
	e.norm = float64(maxD)
	return e
}

// Name implements Metric.
func (e *Edit) Name() string { return "edit" }

// Distance implements Metric on two leaf values.
func (e *Edit) Distance(a, b vgh.Value) float64 {
	if a.Node == nil || b.Node == nil {
		panic("distance: Edit applies to categorical values")
	}
	ai, _ := a.Node.LeafRange()
	bi, _ := b.Node.LeafRange()
	return float64(e.dist[ai*e.n+bi]) / e.norm
}

// Bounds implements Metric by exact enumeration of the specialization
// sets.
func (e *Edit) Bounds(v, w vgh.Value) (inf, sup float64) {
	lo1, hi1 := v.Node.LeafRange()
	lo2, hi2 := w.Node.LeafRange()
	minD, maxD := e.dist[lo1*e.n+lo2], e.dist[lo1*e.n+lo2]
	for i := lo1; i < hi1; i++ {
		for j := lo2; j < hi2; j++ {
			d := e.dist[i*e.n+j]
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	return float64(minD) / e.norm, float64(maxD) / e.norm
}

// Expected implements Metric: the mean distance over independent uniform
// draws from the specialization sets (the direct analogue of the paper's
// Equation 1 with the edit distance substituted for d).
func (e *Edit) Expected(v, w vgh.Value) float64 {
	lo1, hi1 := v.Node.LeafRange()
	lo2, hi2 := w.Node.LeafRange()
	sum := 0
	for i := lo1; i < hi1; i++ {
		for j := lo2; j < hi2; j++ {
			sum += e.dist[i*e.n+j]
		}
	}
	pairs := float64((hi1 - lo1) * (hi2 - lo2))
	return float64(sum) / pairs / e.norm
}
