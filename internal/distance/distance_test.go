package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pprl/internal/vgh"
)

func education(t testing.TB) *vgh.Hierarchy {
	t.Helper()
	return vgh.MustParse("education", `ANY
  Secondary
    Junior Sec.
      9th
      10th
    Senior Sec.
      11th
      12th
  University
    Bachelors
    Grad School
      Masters
      Doctorate
`)
}

func TestHammingDistance(t *testing.T) {
	h := education(t)
	m := Hamming{}
	a := vgh.CatValue(h.MustLookup("Masters"))
	b := vgh.CatValue(h.MustLookup("9th"))
	if got := m.Distance(a, a); got != 0 {
		t.Errorf("d(Masters,Masters) = %v, want 0", got)
	}
	if got := m.Distance(a, b); got != 1 {
		t.Errorf("d(Masters,9th) = %v, want 1", got)
	}
}

// TestHammingBoundsPaperExample checks the Section III walkthrough:
// Masters vs Senior Sec. has infimum 1 (no shared specialization), so the
// pair can be mismatched at θ=0.5.
func TestHammingBoundsPaperExample(t *testing.T) {
	h := education(t)
	m := Hamming{}
	masters := vgh.CatValue(h.MustLookup("Masters"))
	senior := vgh.CatValue(h.MustLookup("Senior Sec."))
	inf, sup := m.Bounds(masters, senior)
	if inf != 1 || sup != 1 {
		t.Errorf("Bounds(Masters, Senior Sec.) = %v,%v, want 1,1", inf, sup)
	}
	// Masters vs Masters (both specific): sdl = sds = 0 — matchable.
	inf, sup = m.Bounds(masters, masters)
	if inf != 0 || sup != 0 {
		t.Errorf("Bounds(Masters, Masters) = %v,%v, want 0,0", inf, sup)
	}
	// Masters vs ANY: could be equal, could differ — undecidable.
	any := vgh.CatValue(h.Root())
	inf, sup = m.Bounds(masters, any)
	if inf != 0 || sup != 1 {
		t.Errorf("Bounds(Masters, ANY) = %v,%v, want 0,1", inf, sup)
	}
	// Two copies of the same internal node still have sup 1.
	uni := vgh.CatValue(h.MustLookup("University"))
	inf, sup = m.Bounds(uni, uni)
	if inf != 0 || sup != 1 {
		t.Errorf("Bounds(University, University) = %v,%v, want 0,1", inf, sup)
	}
}

func TestHammingExpected(t *testing.T) {
	h := education(t)
	m := Hamming{}
	// Eq. 5: E[d] = 1 − |V∩W| / (|V||W|).
	uni := vgh.CatValue(h.MustLookup("University"))   // 3 leaves
	grad := vgh.CatValue(h.MustLookup("Grad School")) // 2 leaves, subset
	masters := vgh.CatValue(h.MustLookup("Masters"))  // 1 leaf
	sec := vgh.CatValue(h.MustLookup("Secondary"))    // 4 leaves, disjoint
	if got, want := m.Expected(uni, grad), 1-2.0/(3*2); math.Abs(got-want) > 1e-12 {
		t.Errorf("E[d](Uni,Grad) = %v, want %v", got, want)
	}
	if got := m.Expected(masters, masters); got != 0 {
		t.Errorf("E[d](Masters,Masters) = %v, want 0", got)
	}
	if got := m.Expected(uni, sec); got != 1 {
		t.Errorf("E[d](Uni,Secondary) = %v, want 1", got)
	}
	if got, want := m.Expected(uni, uni), 1-3.0/9; math.Abs(got-want) > 1e-12 {
		t.Errorf("E[d](Uni,Uni) = %v, want %v", got, want)
	}
}

func TestEuclideanDistanceAndBounds(t *testing.T) {
	e := Euclidean{Norm: 98} // WorkHrs [1,99) from the paper
	a := vgh.NumValue(vgh.Point(35))
	b := vgh.NumValue(vgh.Point(36))
	if got, want := e.Distance(a, b), 1.0/98; math.Abs(got-want) > 1e-12 {
		t.Errorf("d(35,36) = %v, want %v", got, want)
	}
	// Paper: any two values in [35,37) are < 19.6 = 0.2·98 apart.
	iv := vgh.NumValue(vgh.Interval{Lo: 35, Hi: 37})
	inf, sup := e.Bounds(iv, iv)
	if inf != 0 {
		t.Errorf("inf([35,37),[35,37)) = %v, want 0", inf)
	}
	if sup >= 0.2 {
		t.Errorf("sup([35,37),[35,37)) = %v, want < 0.2 (the pair matches)", sup)
	}
	// Disjoint intervals.
	low := vgh.NumValue(vgh.Interval{Lo: 1, Hi: 35})
	inf, sup = e.Bounds(iv, low)
	if inf != 0 {
		t.Errorf("inf([35,37),[1,35)) = %v, want 0 (touching)", inf)
	}
	if got, want := sup, 36.0/98; math.Abs(got-want) > 1e-12 {
		t.Errorf("sup = %v, want %v", got, want)
	}
	far := vgh.NumValue(vgh.Interval{Lo: 90, Hi: 99})
	inf, _ = e.Bounds(iv, far)
	if got, want := inf, (90.0-37)/98; math.Abs(got-want) > 1e-12 {
		t.Errorf("inf([35,37),[90,99)) = %v, want %v", got, want)
	}
}

func TestEuclideanExpectedEq8(t *testing.T) {
	e := Euclidean{Norm: 1}
	// Hand-check Eq. 8 against Monte Carlo for two intervals.
	v := vgh.NumValue(vgh.Interval{Lo: 0, Hi: 2})
	w := vgh.NumValue(vgh.Interval{Lo: 1, Hi: 5})
	got := e.Expected(v, w)
	rng := rand.New(rand.NewSource(42))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := 0 + rng.Float64()*2
		y := 1 + rng.Float64()*4
		sum += (x - y) * (x - y)
	}
	want := math.Sqrt(sum / n)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("Expected = %v, Monte Carlo = %v", got, want)
	}
	// Identical points: expected distance 0.
	p := vgh.NumValue(vgh.Point(3))
	if got := e.Expected(p, p); got != 0 {
		t.Errorf("E[d](3,3) = %v, want 0", got)
	}
	// Two points: expected = actual.
	q := vgh.NumValue(vgh.Point(7))
	if got := e.Expected(p, q); math.Abs(got-4) > 1e-9 {
		t.Errorf("E[d](3,7) = %v, want 4", got)
	}
}

func TestNewEuclidean(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewEuclidean(bad); err == nil {
			t.Errorf("NewEuclidean(%v) should fail", bad)
		}
	}
	if _, err := NewEuclidean(98); err != nil {
		t.Errorf("NewEuclidean(98): %v", err)
	}
}

func TestMetricPanicsOnKindMismatch(t *testing.T) {
	h := education(t)
	cat := vgh.CatValue(h.MustLookup("Masters"))
	num := vgh.NumValue(vgh.Point(1))
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("Hamming.Distance", func() { Hamming{}.Distance(cat, num) })
	assertPanics("Hamming.Bounds", func() { Hamming{}.Bounds(num, cat) })
	assertPanics("Hamming.Expected", func() { Hamming{}.Expected(num, num) })
	assertPanics("Euclidean.Distance", func() { Euclidean{Norm: 1}.Distance(cat, num) })
	assertPanics("Euclidean.Bounds", func() { Euclidean{Norm: 1}.Bounds(cat, cat) })
	assertPanics("Euclidean.Distance intervals", func() {
		Euclidean{Norm: 1}.Distance(vgh.NumValue(vgh.Interval{Lo: 0, Hi: 2}), num)
	})
}

// The soundness property behind the paper's 100%-precision claim: for any
// generalizations v ⊇ {r}, w ⊇ {s}, Bounds(v,w) bracket Distance(r,s),
// and Expected lies within the bounds.
func TestHammingSoundnessProperty(t *testing.T) {
	h := education(t)
	m := Hamming{}
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		r := h.Leaf(rng.Intn(h.NumLeaves()))
		s := h.Leaf(rng.Intn(h.NumLeaves()))
		gr := h.GeneralizeToDepth(r, rng.Intn(h.Height()+1))
		gs := h.GeneralizeToDepth(s, rng.Intn(h.Height()+1))
		d := m.Distance(vgh.CatValue(r), vgh.CatValue(s))
		inf, sup := m.Bounds(vgh.CatValue(gr), vgh.CatValue(gs))
		exp := m.Expected(vgh.CatValue(gr), vgh.CatValue(gs))
		return inf <= d && d <= sup && inf <= exp+1e-12 && exp <= sup+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEuclideanSoundnessProperty(t *testing.T) {
	ih := vgh.MustIntervalHierarchy("age", 0, 64, 2, 3)
	m := Euclidean{Norm: ih.Range()}
	rng := rand.New(rand.NewSource(9))
	f := func() bool {
		x := rng.Float64() * 63.99
		y := rng.Float64() * 63.99
		gx := generalizeNum(ih, x, rng.Intn(ih.Depth()+2))
		gy := generalizeNum(ih, y, rng.Intn(ih.Depth()+2))
		d := m.Distance(vgh.NumValue(vgh.Point(x)), vgh.NumValue(vgh.Point(y)))
		inf, sup := m.Bounds(vgh.NumValue(gx), vgh.NumValue(gy))
		exp := m.Expected(vgh.NumValue(gx), vgh.NumValue(gy))
		const eps = 1e-9
		return inf <= d+eps && d <= sup+eps && inf <= exp+eps && exp <= sup+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// generalizeNum returns x generalized by `steps` levels: 0 keeps the point,
// 1 gives its leaf interval, and so on up to the root.
func generalizeNum(ih *vgh.IntervalHierarchy, x float64, steps int) vgh.Interval {
	if steps == 0 {
		return vgh.Point(x)
	}
	level := ih.Depth() - (steps - 1)
	return ih.At(x, level)
}
