// Package distance implements the distance functions of the hybrid private
// record linkage protocol: the concrete per-attribute distances (Hamming
// for categorical attributes, normalized Euclidean for continuous ones,
// and normalized edit distance as the paper's future-work extension), the
// slack distances sdl/sds — the infimum and supremum of the distance over
// the specialization sets of two generalized values (paper Section IV) —
// and the expected distances dExp under the uniform-distribution
// assumption (paper Section V-C, Equations 1-8).
//
// All distances are normalized into [0, 1] so matching thresholds θ are
// directly comparable across attributes, exactly as the paper divides the
// Euclidean threshold by the attribute's normFactor.
//
// The load-bearing contract, property-tested in this package and relied on
// by the blocking step for its 100%-precision guarantee, is:
//
//	Bounds(v, w) = (inf, sup)  ⇒  inf ≤ Distance(r, s) ≤ sup
//
// for every pair of concrete values r, s in the specialization sets of the
// generalized values v, w, and inf ≤ Expected(v, w) ≤ sup.
package distance

import (
	"fmt"
	"math"

	"pprl/internal/vgh"
)

// Metric computes a normalized distance over one attribute, both on
// concrete values and as slack/expected bounds over generalized values.
type Metric interface {
	// Name identifies the metric in diagnostics.
	Name() string
	// Distance returns the normalized distance between two fully
	// specialized values (leaf nodes or point intervals).
	Distance(a, b vgh.Value) float64
	// Bounds returns the infimum (sdl) and supremum (sds) of the distance
	// over all pairs drawn from the specialization sets of v and w.
	Bounds(v, w vgh.Value) (inf, sup float64)
	// Expected returns dExp: the expected distance between values drawn
	// independently and uniformly from the specialization sets.
	Expected(v, w vgh.Value) float64
}

// Hamming is the 0/1 distance on categorical values (paper Section V-C).
type Hamming struct{}

// Name implements Metric.
func (Hamming) Name() string { return "hamming" }

// Distance implements Metric: 0 when the leaf values are equal, 1
// otherwise.
func (Hamming) Distance(a, b vgh.Value) float64 {
	if a.Node == nil || b.Node == nil {
		panic("distance: Hamming applies to categorical values")
	}
	if a.Node == b.Node {
		return 0
	}
	return 1
}

// Bounds implements Metric. The infimum is 0 exactly when the
// specialization sets share a value; the supremum is 0 only when both
// sets are the same singleton.
func (Hamming) Bounds(v, w vgh.Value) (inf, sup float64) {
	if v.Node == nil || w.Node == nil {
		panic("distance: Hamming applies to categorical values")
	}
	inf, sup = 1, 1
	if v.Node.Overlaps(w.Node) {
		inf = 0
	}
	if v.Node == w.Node && v.Node.IsLeaf() {
		sup = 0
	}
	return inf, sup
}

// Expected implements Metric using the paper's Equation 5:
//
//	E[d] = 1 − |V ∩ W| / (|V|·|W|)
//
// under independent uniform draws from the specialization sets V and W.
func (Hamming) Expected(v, w vgh.Value) float64 {
	if v.Node == nil || w.Node == nil {
		panic("distance: Hamming applies to categorical values")
	}
	nv := float64(v.Node.LeafCount())
	nw := float64(w.Node.LeafCount())
	return 1 - float64(v.Node.IntersectionSize(w.Node))/(nv*nw)
}

// Euclidean is the normalized absolute difference |x−y| / Norm on
// continuous values, where Norm is the attribute's domain width
// (normFactor in the paper).
type Euclidean struct {
	// Norm is the normalization factor; must be positive.
	Norm float64
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Distance implements Metric.
func (e Euclidean) Distance(a, b vgh.Value) float64 {
	if a.Node != nil || b.Node != nil {
		panic("distance: Euclidean applies to continuous values")
	}
	if !a.Iv.IsPoint() || !b.Iv.IsPoint() {
		panic("distance: Euclidean Distance needs point values; use Bounds for intervals")
	}
	return math.Abs(a.Iv.Lo-b.Iv.Lo) / e.Norm
}

// Bounds implements Metric: the infimum is the gap between the intervals
// and the supremum is their span, both normalized.
func (e Euclidean) Bounds(v, w vgh.Value) (inf, sup float64) {
	if v.Node != nil || w.Node != nil {
		panic("distance: Euclidean applies to continuous values")
	}
	return v.Iv.Gap(w.Iv) / e.Norm, v.Iv.Span(w.Iv) / e.Norm
}

// Expected implements Metric via the paper's Equation 8: the expected
// squared difference of independent uniform variables on [a1,b1] and
// [a2,b2] is
//
//	E[(V−W)²] = ⅓(a1²+b1²+a2²+b2²+a1b1+a2b2) − ½(a1+b1)(a2+b2)
//
// The paper ranks pairs by the squared distance; we return the (monotone
// equivalent) root, normalized, so expected values remain comparable to
// Hamming's when heuristics average across attributes.
func (e Euclidean) Expected(v, w vgh.Value) float64 {
	if v.Node != nil || w.Node != nil {
		panic("distance: Euclidean applies to continuous values")
	}
	a1, b1 := v.Iv.Lo, v.Iv.Hi
	a2, b2 := w.Iv.Lo, w.Iv.Hi
	ed := (a1*a1+b1*b1+a2*a2+b2*b2+a1*b1+a2*b2)/3 - (a1+b1)*(a2+b2)/2
	if ed < 0 {
		ed = 0 // guard tiny negative rounding when intervals coincide
	}
	return math.Sqrt(ed) / e.Norm
}

// NewEuclidean validates the normalization factor.
func NewEuclidean(norm float64) (Euclidean, error) {
	if norm <= 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return Euclidean{}, fmt.Errorf("distance: invalid normalization factor %v", norm)
	}
	return Euclidean{Norm: norm}, nil
}
