package distance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pprl/internal/vgh"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"smith", "smyth", 1},
		{"johnson", "johnston", 1},
		{"abc", "abc", 0},
		{"abc", "cba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// Levenshtein is a metric: triangle inequality and identity.
func TestLevenshteinMetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randStr := func() string {
		n := rng.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return string(b)
	}
	f := func() bool {
		a, b, c := randStr(), randStr(), randStr()
		dab := Levenshtein(a, b)
		dbc := Levenshtein(b, c)
		dac := Levenshtein(a, c)
		if dac > dab+dbc {
			return false
		}
		return (dab == 0) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// surnames is a small string-attribute hierarchy clustered by first
// letter, the kind of generalization mechanism the paper's future-work
// section contemplates for alphanumeric attributes.
func surnames(t testing.TB) *vgh.Hierarchy {
	t.Helper()
	return vgh.NewBuilder("surname", "ANY").
		AddAll("ANY", "S*", "J*").
		AddAll("S*", "smith", "smyth", "stone").
		AddAll("J*", "jones", "johnson", "johnston").
		MustBuild()
}

func TestEditMetric(t *testing.T) {
	h := surnames(t)
	e := NewEdit(h)
	smith := vgh.CatValue(h.MustLookup("smith"))
	smyth := vgh.CatValue(h.MustLookup("smyth"))
	jones := vgh.CatValue(h.MustLookup("jones"))
	if got := e.Distance(smith, smith); got != 0 {
		t.Errorf("d(smith,smith) = %v, want 0", got)
	}
	dSmyth := e.Distance(smith, smyth)
	dJones := e.Distance(smith, jones)
	if dSmyth >= dJones {
		t.Errorf("edit distance should rank smyth (%v) closer to smith than jones (%v)", dSmyth, dJones)
	}
	if dSmyth <= 0 || dJones > 1 {
		t.Errorf("normalized distances out of range: %v, %v", dSmyth, dJones)
	}
}

func TestEditBoundsAndExpected(t *testing.T) {
	h := surnames(t)
	e := NewEdit(h)
	sStar := vgh.CatValue(h.MustLookup("S*"))
	jStar := vgh.CatValue(h.MustLookup("J*"))
	smith := vgh.CatValue(h.MustLookup("smith"))

	inf, sup := e.Bounds(sStar, jStar)
	if inf <= 0 {
		t.Errorf("inf(S*, J*) = %v; disjoint clusters of different spellings should be > 0", inf)
	}
	if sup > 1 {
		t.Errorf("sup = %v > 1", sup)
	}
	exp := e.Expected(sStar, jStar)
	if exp < inf || exp > sup {
		t.Errorf("Expected %v outside bounds [%v,%v]", exp, inf, sup)
	}

	inf, sup = e.Bounds(sStar, smith)
	if inf != 0 {
		t.Errorf("inf(S*, smith) = %v, want 0 (smith ∈ specSet(S*))", inf)
	}
	if sup == 0 {
		t.Errorf("sup(S*, smith) should be > 0")
	}
}

// Soundness of Edit bounds: for any leaves under the generalizations, the
// concrete distance lies inside the bounds.
func TestEditSoundnessProperty(t *testing.T) {
	h := surnames(t)
	e := NewEdit(h)
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		r := h.Leaf(rng.Intn(h.NumLeaves()))
		s := h.Leaf(rng.Intn(h.NumLeaves()))
		gr := h.GeneralizeToDepth(r, rng.Intn(h.Height()+1))
		gs := h.GeneralizeToDepth(s, rng.Intn(h.Height()+1))
		d := e.Distance(vgh.CatValue(r), vgh.CatValue(s))
		inf, sup := e.Bounds(vgh.CatValue(gr), vgh.CatValue(gs))
		exp := e.Expected(vgh.CatValue(gr), vgh.CatValue(gs))
		const eps = 1e-12
		return inf <= d+eps && d <= sup+eps && inf <= exp+eps && exp <= sup+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
