package match

import (
	"math/rand"
	"testing"

	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/vgh"
)

func toySchema() (*dataset.Schema, *vgh.Hierarchy) {
	edu := vgh.Flat("edu", "ANY", "a", "b", "c")
	ih := vgh.MustIntervalHierarchy("num", 0, 64, 2, 3)
	return dataset.MustSchema(dataset.CatAttr(edu), dataset.NumAttr(ih)), edu
}

func randomData(schema *dataset.Schema, edu *vgh.Hierarchy, n int, rng *rand.Rand) *dataset.Dataset {
	d := dataset.New(schema)
	leaves := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		d.MustAppend(dataset.Record{EntityID: i, Cells: []dataset.Cell{
			dataset.CatCell(edu, leaves[rng.Intn(3)]),
			dataset.NumCell(float64(rng.Intn(64))),
		}})
	}
	return d
}

// TestHashJoinEqualsFullScan verifies the bucketed matcher against the
// naive quadratic scan.
func TestHashJoinEqualsFullScan(t *testing.T) {
	schema, edu := toySchema()
	rng := rand.New(rand.NewSource(3))
	a := randomData(schema, edu, 50, rng)
	b := randomData(schema, edu, 50, rng)
	qids := []int{0, 1}
	rule, err := blocking.RuleFor(schema, qids, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TruePairs(a, b, qids, rule)
	if err != nil {
		t.Fatal(err)
	}
	var slow []Pair
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if rule.DecideExact(blocking.RecordSequence(a, qids, i), blocking.RecordSequence(b, qids, j)) {
				slow = append(slow, Pair{I: i, J: j})
			}
		}
	}
	if len(fast) != len(slow) {
		t.Fatalf("hash join found %d pairs, full scan %d", len(fast), len(slow))
	}
	set := make(map[int64]bool, len(slow))
	for _, p := range slow {
		set[p.Key(b.Len())] = true
	}
	for _, p := range fast {
		if !set[p.Key(b.Len())] {
			t.Fatalf("hash join reported bogus pair %+v", p)
		}
	}
}

// TestNoEqualityAttribute exercises the full-scan fallback: a rule with
// only continuous attributes has nothing to hash-join on.
func TestNoEqualityAttribute(t *testing.T) {
	schema, edu := toySchema()
	rng := rand.New(rand.NewSource(4))
	a := randomData(schema, edu, 20, rng)
	b := randomData(schema, edu, 20, rng)
	rule, err := blocking.NewRule([]distance.Metric{distance.Euclidean{Norm: 64}}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := TruePairs(a, b, []int{1}, rule)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		x := a.Record(p.I).Cells[1].Num
		y := b.Record(p.J).Cells[1].Num
		if diff := x - y; diff > 6.4 || diff < -6.4 {
			t.Fatalf("pair (%d,%d) |%v - %v| exceeds threshold", p.I, p.J, x, y)
		}
	}
	if len(pairs) == 0 {
		t.Error("expected some matches at θ=0.1 over 20×20 pairs")
	}
}

// TestThetaAtLeastOneHamming: a Hamming attribute with θ ≥ 1 must not
// participate in the join key (every pair satisfies it).
func TestThetaAtLeastOneHamming(t *testing.T) {
	schema, edu := toySchema()
	rng := rand.New(rand.NewSource(5))
	a := randomData(schema, edu, 15, rng)
	b := randomData(schema, edu, 15, rng)
	qids := []int{0, 1}
	rule, err := blocking.NewRule(
		[]distance.Metric{distance.Hamming{}, distance.Euclidean{Norm: 64}},
		[]float64{1.0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := TruePairs(a, b, qids, rule)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < b.Len(); j++ {
			if rule.DecideExact(blocking.RecordSequence(a, qids, i), blocking.RecordSequence(b, qids, j)) {
				count++
			}
		}
	}
	if len(pairs) != count {
		t.Fatalf("got %d pairs, full scan says %d", len(pairs), count)
	}
}

func TestRuleArityMismatch(t *testing.T) {
	schema, edu := toySchema()
	rng := rand.New(rand.NewSource(6))
	a := randomData(schema, edu, 5, rng)
	rule, err := blocking.RuleFor(schema, []int{0, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TruePairs(a, a, []int{0}, rule); err == nil {
		t.Error("QID/rule arity mismatch should fail")
	}
}

func TestCount(t *testing.T) {
	schema, edu := toySchema()
	rng := rand.New(rand.NewSource(7))
	a := randomData(schema, edu, 30, rng)
	b := randomData(schema, edu, 30, rng)
	rule, err := blocking.RuleFor(schema, []int{0, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _ := TruePairs(a, b, []int{0, 1}, rule)
	n, err := Count(a, b, []int{0, 1}, rule)
	if err != nil || n != int64(len(pairs)) {
		t.Errorf("Count = %d, %v; want %d", n, err, len(pairs))
	}
}

func TestPairKey(t *testing.T) {
	p := Pair{I: 3, J: 7}
	if got := p.Key(100); got != 307 {
		t.Errorf("Key = %d, want 307", got)
	}
}
