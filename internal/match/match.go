// Package match computes exact (non-private) record linkage: the ground
// truth the paper's recall measurements are defined against. Recall is
// "the percentage of record pairs correctly labeled as match among all
// pairs satisfying the decision rule" (Section VI), so evaluation needs
// the full set of truly matching pairs.
//
// Enumerating |R|×|S| pairs naively is quadratic; TruePairs instead
// hash-joins on the attributes that must be exactly equal (Hamming
// metrics with θ < 1) and verifies the full rule only within buckets,
// which is linear-ish for realistic rules.
package match

import (
	"fmt"
	"strconv"
	"strings"

	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distance"
)

// Pair is a record pair: I indexes the first relation, J the second.
type Pair struct {
	I, J int
}

// Key packs a pair into a single comparable int64 given the second
// relation's size.
func (p Pair) Key(sLen int) int64 { return int64(p.I)*int64(sLen) + int64(p.J) }

// TruePairs returns every record pair of a × b that satisfies the rule,
// in deterministic (I, J) order. The rule's attributes must correspond to
// qids in order.
func TruePairs(a, b *dataset.Dataset, qids []int, rule *blocking.Rule) ([]Pair, error) {
	if rule.Len() != len(qids) {
		return nil, fmt.Errorf("match: rule has %d attributes, %d QIDs given", rule.Len(), len(qids))
	}
	// Attributes that force equality: Hamming with θ < 1.
	var eq []int // positions within qids
	for i := 0; i < rule.Len(); i++ {
		if _, ok := rule.Metric(i).(distance.Hamming); ok && rule.Threshold(i) < 1 {
			eq = append(eq, i)
		}
	}
	var out []Pair
	check := func(i, j int) {
		sa := blocking.RecordSequence(a, qids, i)
		sb := blocking.RecordSequence(b, qids, j)
		if rule.DecideExact(sa, sb) {
			out = append(out, Pair{I: i, J: j})
		}
	}
	if len(eq) == 0 {
		// No equality attribute to join on; full scan.
		for i := 0; i < a.Len(); i++ {
			for j := 0; j < b.Len(); j++ {
				check(i, j)
			}
		}
		return out, nil
	}
	buckets := make(map[string][]int, b.Len())
	var sb strings.Builder
	key := func(d *dataset.Dataset, rec int) string {
		sb.Reset()
		r := d.Record(rec)
		for _, pos := range eq {
			lo, _ := r.Cells[qids[pos]].Node.LeafRange()
			sb.WriteString(strconv.Itoa(lo))
			sb.WriteByte('|')
		}
		return sb.String()
	}
	for j := 0; j < b.Len(); j++ {
		k := key(b, j)
		buckets[k] = append(buckets[k], j)
	}
	for i := 0; i < a.Len(); i++ {
		for _, j := range buckets[key(a, i)] {
			check(i, j)
		}
	}
	return out, nil
}

// Count returns the number of truly matching pairs without materializing
// them (it still walks the joined buckets).
func Count(a, b *dataset.Dataset, qids []int, rule *blocking.Rule) (int64, error) {
	pairs, err := TruePairs(a, b, qids, rule)
	if err != nil {
		return 0, err
	}
	return int64(len(pairs)), nil
}
