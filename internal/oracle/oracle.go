// Package oracle implements a plaintext reference linker: it computes
// exact per-attribute distances and match verdicts directly on the
// unanonymized relations and checks every layer of the hybrid pipeline
// against them. The paper's central claims — the slack decision rule
// labels pairs with zero error (Section IV) and the maximize-precision
// strategy keeps precision at exactly 100% (Section V-B) — are asserted
// here as machine-checkable invariants over arbitrary schemas, VGHs and
// parameters, not just the worked example.
//
// The oracle deliberately shares as little code as possible with the
// pipeline under test: verdicts come from Rule.DecideExact evaluated on
// the raw record cells, never from anonymized views, encoded integers or
// protocol messages. Every checker reports the minimal offending record
// pair with enough context (sequences, bounds, exact distances) to
// reproduce the failure by hand.
package oracle

import (
	"fmt"
	"strings"

	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/metrics"
	"pprl/internal/smc"
	"pprl/internal/vgh"
)

// boundsSlack absorbs float rounding in the sdl ≤ d ≤ sds bracketing
// check: the slack distances and the exact distance take different
// arithmetic paths to the same real number, so equality at interval
// boundaries can differ by an ulp. Genuine bound violations (the bugs
// the oracle exists to catch) are orders of magnitude larger.
const boundsSlack = 1e-9

// Oracle holds the two raw relations and the matching rule, with every
// record pre-rendered as a fully specialized sequence over the QID set.
type Oracle struct {
	alice, bob *dataset.Dataset
	qids       []int
	rule       *blocking.Rule
	aliceSeqs  []vgh.Sequence
	bobSeqs    []vgh.Sequence
}

// New builds the oracle over the unanonymized relations. The rule's
// attributes must correspond to qids in order, exactly as in the
// pipeline configuration under test.
func New(alice, bob *dataset.Dataset, qids []int, rule *blocking.Rule) (*Oracle, error) {
	if alice == nil || bob == nil {
		return nil, fmt.Errorf("oracle: both relations are required")
	}
	if rule.Len() != len(qids) {
		return nil, fmt.Errorf("oracle: rule has %d attributes, %d QIDs given", rule.Len(), len(qids))
	}
	o := &Oracle{
		alice:     alice,
		bob:       bob,
		qids:      qids,
		rule:      rule,
		aliceSeqs: make([]vgh.Sequence, alice.Len()),
		bobSeqs:   make([]vgh.Sequence, bob.Len()),
	}
	for i := 0; i < alice.Len(); i++ {
		o.aliceSeqs[i] = blocking.RecordSequence(alice, qids, i)
	}
	for j := 0; j < bob.Len(); j++ {
		o.bobSeqs[j] = blocking.RecordSequence(bob, qids, j)
	}
	return o, nil
}

// Matches returns the exact decision-rule verdict for record pair
// (i, j): i indexes Alice's relation, j Bob's.
func (o *Oracle) Matches(i, j int) bool {
	return o.rule.DecideExact(o.aliceSeqs[i], o.bobSeqs[j])
}

// Distance returns the exact normalized distance of attribute a for
// record pair (i, j).
func (o *Oracle) Distance(i, j, a int) float64 {
	return o.rule.Metric(a).Distance(o.aliceSeqs[i][a], o.bobSeqs[j][a])
}

// TrueMatchCount counts the truly matching pairs by full enumeration.
func (o *Oracle) TrueMatchCount() int64 {
	var n int64
	for i := range o.aliceSeqs {
		for j := range o.bobSeqs {
			if o.Matches(i, j) {
				n++
			}
		}
	}
	return n
}

// pairFault describes one offending record pair for error reporting.
type pairFault struct {
	i, j int
	msg  string
}

func (f *pairFault) Error() string {
	return fmt.Sprintf("record pair (alice=%d, bob=%d): %s", f.i, f.j, f.msg)
}

// CheckBlocking verifies the zero-blocking-error claim against the
// oracle: for every pair of equivalence classes,
//
//  1. the slack bounds bracket the exact distance on every attribute
//     (sdl ≤ d ≤ sds) for every underlying record pair, and
//  2. a Match label implies every record pair in the class pair truly
//     matches, and a NonMatch label implies none does.
//
// The blocking result must have been built over the oracle's relations
// and rule. The first offense (lowest Alice index, then Bob index) is
// returned with the generalization sequences, bounds and exact
// distances needed to reproduce it.
func (o *Oracle) CheckBlocking(block *blocking.Result) error {
	if len(block.R.ClassOf) != o.alice.Len() || len(block.S.ClassOf) != o.bob.Len() {
		return fmt.Errorf("oracle: blocking result covers %d×%d records, oracle holds %d×%d",
			len(block.R.ClassOf), len(block.S.ClassOf), o.alice.Len(), o.bob.Len())
	}
	var first *pairFault
	note := func(i, j int, format string, args ...any) {
		if first == nil || i < first.i || (i == first.i && j < first.j) {
			first = &pairFault{i: i, j: j, msg: fmt.Sprintf(format, args...)}
		}
	}
	for i := 0; i < o.alice.Len(); i++ {
		ri := block.R.ClassOf[i]
		rSeq := block.R.Classes[ri].Sequence
		for j := 0; j < o.bob.Len(); j++ {
			si := block.S.ClassOf[j]
			sSeq := block.S.Classes[si].Sequence
			for a := 0; a < o.rule.Len(); a++ {
				inf, sup := o.rule.Metric(a).Bounds(rSeq[a], sSeq[a])
				d := o.Distance(i, j, a)
				if d < inf-boundsSlack || d > sup+boundsSlack {
					note(i, j, "attribute %d: exact distance %.9f outside slack bounds [%.9f, %.9f] for generalizations (%v, %v); raw values (%v, %v)",
						a, d, inf, sup, rSeq[a], sSeq[a], o.aliceSeqs[i][a], o.bobSeqs[j][a])
				}
			}
			label := block.Label(ri, si)
			truth := o.Matches(i, j)
			switch {
			case label == blocking.Match && !truth:
				note(i, j, "labeled Match but the exact rule says non-match; classes (%d,%d) generalized to %v / %v, raw records %v / %v",
					ri, si, rSeq, sSeq, o.aliceSeqs[i], o.bobSeqs[j])
			case label == blocking.NonMatch && truth:
				note(i, j, "labeled NonMatch but the exact rule says match; classes (%d,%d) generalized to %v / %v, raw records %v / %v",
					ri, si, rSeq, sSeq, o.aliceSeqs[i], o.bobSeqs[j])
			}
		}
	}
	if first != nil {
		return fmt.Errorf("oracle: blocking error: %w", first)
	}
	return nil
}

// CheckComparator verifies that an SMC comparator's verdict equals the
// oracle's exact threshold comparison for every listed record pair. It
// uses the batch path when the comparator offers one (the pipelined
// secure engines), per-pair Compare otherwise, so the path the linkage
// engine takes in production is the path under test.
func (o *Oracle) CheckComparator(cmp smc.Comparator, pairs [][2]int) error {
	verdicts := make([]bool, len(pairs))
	if batcher, ok := cmp.(interface {
		CompareBatch([][2]int) ([]bool, error)
	}); ok {
		out, err := batcher.CompareBatch(pairs)
		if err != nil {
			return fmt.Errorf("oracle: comparator batch failed: %w", err)
		}
		copy(verdicts, out)
	} else {
		for k, p := range pairs {
			v, err := cmp.Compare(p[0], p[1])
			if err != nil {
				return fmt.Errorf("oracle: comparator failed on pair %v: %w", p, err)
			}
			verdicts[k] = v
		}
	}
	var disagreements []string
	for k, p := range pairs {
		if truth := o.Matches(p[0], p[1]); verdicts[k] != truth {
			disagreements = append(disagreements,
				fmt.Sprintf("pair (alice=%d, bob=%d): comparator says %v, oracle says %v (raw %v / %v)",
					p[0], p[1], verdicts[k], truth, o.aliceSeqs[p[0]], o.bobSeqs[p[1]]))
		}
	}
	if len(disagreements) > 0 {
		return fmt.Errorf("oracle: %d/%d SMC verdicts disagree; first: %s",
			len(disagreements), len(pairs), disagreements[0])
	}
	return nil
}

// Report is the oracle's scoring of one linkage result: the confusion
// against exact ground truth plus the label accounting used by the
// invariant checks.
type Report struct {
	Confusion metrics.Confusion
	// Reported is the number of pairs the result labeled match, counted
	// by enumeration (cross-checked against Result.MatchedPairCount).
	Reported int64
	// TierFalsePositives counts the false positives whose match label
	// came from the triage tier. Tier labels are heuristic by design, so
	// these are excluded from the maximize-precision zero-FP invariant —
	// the invariant covers the exact layers (blocking, SMC, residual),
	// whose false positives remain hard failures.
	TierFalsePositives int64
}

// CheckResult enumerates the full |R|×|S| pair space of a linkage
// result and verifies it against the oracle:
//
//   - under the maximize-precision strategy, every reported match is a
//     true match — precision is exactly 1.0, never approximately;
//   - MatchedPairCount agrees with the enumerated count (the closed-form
//     accounting cannot drift from the actual labeling);
//   - the returned confusion is computed independently of
//     Result.Evaluate, from raw cells only.
func (o *Oracle) CheckResult(res *core.Result) (Report, error) {
	var rep Report
	var firstFalse *pairFault
	for i := 0; i < o.alice.Len(); i++ {
		for j := 0; j < o.bob.Len(); j++ {
			predicted := res.PairMatched(i, j)
			truth := o.Matches(i, j)
			if predicted {
				rep.Reported++
				if truth {
					rep.Confusion.TruePositives++
				} else {
					rep.Confusion.FalsePositives++
					if matched, ok := res.TierLabel(i, j); ok && matched {
						rep.TierFalsePositives++
					} else if firstFalse == nil {
						firstFalse = &pairFault{i: i, j: j, msg: fmt.Sprintf(
							"reported as match but the exact rule says non-match (raw %v / %v)",
							o.aliceSeqs[i], o.bobSeqs[j])}
					}
				}
			} else if truth {
				rep.Confusion.FalseNegatives++
			}
		}
	}
	if got := res.MatchedPairCount(); got != rep.Reported {
		return rep, fmt.Errorf("oracle: MatchedPairCount reports %d, enumeration finds %d", got, rep.Reported)
	}
	if exact := rep.Confusion.FalsePositives - rep.TierFalsePositives; res.Strategy() == core.MaximizePrecision && exact > 0 {
		return rep, fmt.Errorf("oracle: maximize-precision produced %d false positives outside the tier (precision %.6f): %w",
			exact, rep.Confusion.Precision(), firstFalse)
	}
	return rep, nil
}

// TierReport is the oracle's scoring of the triage tier's heuristic
// labels against exact ground truth.
type TierReport struct {
	// Labeled is the number of tier-labeled pairs found by enumeration.
	Labeled int64
	// FalseMatches counts tier Match labels the exact rule rejects;
	// FalseNonMatches counts tier NonMatch labels the rule accepts.
	FalseMatches, FalseNonMatches int64
}

// FalseRate is the fraction of tier labels the exact rule disagrees
// with; 0 when the tier labeled nothing.
func (r TierReport) FalseRate() float64 {
	if r.Labeled == 0 {
		return 0
	}
	return float64(r.FalseMatches+r.FalseNonMatches) / float64(r.Labeled)
}

// CheckTier enumerates the full pair space and verifies the triage
// tier's structural invariants:
//
//   - a pair labeled Certain by blocking (Match or NonMatch) is never
//     tier-labeled — the tier only ever touches the Unknown band;
//   - a pair holding a purchased SMC verdict is never tier-labeled — an
//     exact verdict is never shadowed by a heuristic one;
//   - the result's tier counters agree with enumeration.
//
// It scores every tier label against the exact rule and, when
// maxFalseRate ≥ 0, fails if the tier's false-classification rate
// exceeds it. Pass a negative maxFalseRate to collect the report
// without enforcing a bound (accuracy depends on thresholds and data;
// the structural invariants above are enforced unconditionally).
func (o *Oracle) CheckTier(res *core.Result, maxFalseRate float64) (TierReport, error) {
	var rep TierReport
	var matched, nonMatched int64
	for i := 0; i < o.alice.Len(); i++ {
		ri := res.Block.R.ClassOf[i]
		for j := 0; j < o.bob.Len(); j++ {
			tierMatched, ok := res.TierLabel(i, j)
			if !ok {
				continue
			}
			si := res.Block.S.ClassOf[j]
			if label := res.Block.Label(ri, si); label != blocking.Unknown {
				return rep, fmt.Errorf("oracle: tier re-labeled a Certain pair: %w",
					&pairFault{i: i, j: j, msg: fmt.Sprintf("blocking already labeled it %v", label)})
			}
			if _, bought := res.SMCLabel(i, j); bought {
				return rep, fmt.Errorf("oracle: tier label shadows a purchased SMC verdict: %w",
					&pairFault{i: i, j: j, msg: "pair holds both a tier label and an SMC verdict"})
			}
			rep.Labeled++
			if tierMatched {
				matched++
			} else {
				nonMatched++
			}
			truth := o.Matches(i, j)
			switch {
			case tierMatched && !truth:
				rep.FalseMatches++
			case !tierMatched && truth:
				rep.FalseNonMatches++
			}
		}
	}
	if rep.Labeled != res.TierResolvedPairs() || matched != res.TierMatchedPairs() || nonMatched != res.TierNonMatchedPairs() {
		return rep, fmt.Errorf("oracle: tier counters disagree with enumeration: counted %d (%d/%d), result reports %d (%d/%d)",
			rep.Labeled, matched, nonMatched,
			res.TierResolvedPairs(), res.TierMatchedPairs(), res.TierNonMatchedPairs())
	}
	if rate := rep.FalseRate(); maxFalseRate >= 0 && rate > maxFalseRate {
		return rep, fmt.Errorf("oracle: tier false-classification rate %.6f exceeds bound %.6f (%d false matches, %d false non-matches of %d labels)",
			rate, maxFalseRate, rep.FalseMatches, rep.FalseNonMatches, rep.Labeled)
	}
	return rep, nil
}

// DPBlockReport is the oracle's scoring of a differentially private
// blocking result against exact ground truth.
type DPBlockReport struct {
	// TrueMatches is the exact match count over the full pair space.
	TrueMatches int64
	// Missed counts truly matching record pairs whose bins do not
	// intersect — DP blocking excludes them from the candidate space, so
	// no downstream layer can ever recover them.
	Missed int64
	// CandidatePairs counts record pairs left Unknown for the tiers
	// below (before dummy padding).
	CandidatePairs int64
}

// MissRate is the fraction of true matches the bin intersection lost;
// 0 when the relations hold no true match.
func (r DPBlockReport) MissRate() float64 {
	if r.TrueMatches == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.TrueMatches)
}

// CheckDPBlocking verifies the DP blocking contract against the oracle:
//
//   - the result carries a noised release for both relations, with one
//     padded count ≥ the true size per class (published sizes never
//     understate, so the dummy charge is never negative);
//   - no class pair is labeled Match — DP blocking only ever prunes;
//     match authority stays with the exact layers, which is why noised
//     blocking cannot create false positives;
//   - every truly matching pair that was pruned is counted, and when
//     maxMissRate ≥ 0 the missed-match rate must stay under it. Pass a
//     negative bound to collect the report without enforcing one (the
//     rate depends on the binning depth and data skew; the structural
//     invariants above are enforced unconditionally).
func (o *Oracle) CheckDPBlocking(block *blocking.Result, maxMissRate float64) (DPBlockReport, error) {
	var rep DPBlockReport
	for _, side := range []struct {
		name string
		view *anonymize.Result
	}{{"alice", block.R}, {"bob", block.S}} {
		dp := side.view.DP
		if dp == nil {
			return rep, fmt.Errorf("oracle: %s carries no DP release", side.name)
		}
		if len(dp.NoisedCounts) != len(side.view.Classes) {
			return rep, fmt.Errorf("oracle: %s release has %d counts for %d classes",
				side.name, len(dp.NoisedCounts), len(side.view.Classes))
		}
		for ci, c := range side.view.Classes {
			if dp.NoisedCounts[ci] < int64(c.Size()) {
				return rep, fmt.Errorf("oracle: %s class %d (%v) published count %d below true size %d",
					side.name, ci, c.Sequence, dp.NoisedCounts[ci], c.Size())
			}
		}
	}
	var firstMiss *pairFault
	for i := 0; i < o.alice.Len(); i++ {
		ri := block.R.ClassOf[i]
		for j := 0; j < o.bob.Len(); j++ {
			si := block.S.ClassOf[j]
			label := block.Label(ri, si)
			if label == blocking.Match {
				return rep, fmt.Errorf("oracle: DP blocking asserted a Match label: %w",
					&pairFault{i: i, j: j, msg: fmt.Sprintf("classes (%d,%d) labeled Match; DP blocking must leave match authority to the exact layers", ri, si)})
			}
			if label == blocking.Unknown {
				rep.CandidatePairs++
			}
			if !o.Matches(i, j) {
				continue
			}
			rep.TrueMatches++
			if label == blocking.NonMatch {
				rep.Missed++
				if firstMiss == nil {
					firstMiss = &pairFault{i: i, j: j, msg: fmt.Sprintf(
						"true match pruned: bins %v / %v do not intersect (raw %v / %v)",
						block.R.Classes[ri].Sequence, block.S.Classes[si].Sequence, o.aliceSeqs[i], o.bobSeqs[j])}
				}
			}
		}
	}
	if rate := rep.MissRate(); maxMissRate >= 0 && rate > maxMissRate {
		return rep, fmt.Errorf("oracle: DP blocking missed-match rate %.6f exceeds bound %.6f (%d of %d true matches pruned); first: %w",
			rate, maxMissRate, rep.Missed, rep.TrueMatches, firstMiss)
	}
	return rep, nil
}

// CheckMonotoneRecall asserts that recall never decreases along a
// sequence of linkage results ordered by growing SMC allowance (or any
// other axis where more budget can only resolve a superset of pairs).
// The results must all stem from the same blocking result and
// heuristic, as produced by core.LinkPrepared sweeps.
func (o *Oracle) CheckMonotoneRecall(results []*core.Result, axis string) error {
	prev := -1.0
	prevLabel := ""
	for _, res := range results {
		rep, err := o.CheckResult(res)
		if err != nil {
			return err
		}
		r := rep.Confusion.Recall()
		label := fmt.Sprintf("%s=%d", axis, res.Allowance)
		if r < prev-boundsSlack {
			return fmt.Errorf("oracle: recall not monotone in %s: %.6f at %s after %.6f at %s",
				axis, r, label, prev, prevLabel)
		}
		prev, prevLabel = r, label
	}
	return nil
}

// ViewsNested reports whether, for every record, the generalization
// assigned by coarse covers the one assigned by fine — i.e. coarse is a
// pointwise coarsening of fine. Recall monotonicity in k is only
// guaranteed under nesting (full-domain ladders nest; greedy top-down
// paths may cross-cut), so harnesses gate the k-monotonicity check on
// this predicate.
func ViewsNested(fine, coarse interface {
	SequenceOf(i int) vgh.Sequence
}, records int) bool {
	for i := 0; i < records; i++ {
		f, c := fine.SequenceOf(i), coarse.SequenceOf(i)
		if len(f) != len(c) {
			return false
		}
		for a := range f {
			if !c[a].Covers(f[a]) {
				return false
			}
		}
	}
	return true
}

// DescribePair renders one record pair with its per-attribute exact
// distances and thresholds — the "minimal offending pair" dump harness
// failures print alongside the reproducing seed.
func (o *Oracle) DescribePair(i, j int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "alice[%d]=%v bob[%d]=%v:", i, o.aliceSeqs[i], j, o.bobSeqs[j])
	for a := 0; a < o.rule.Len(); a++ {
		fmt.Fprintf(&sb, " d%d=%.6f/θ=%.6f", a, o.Distance(i, j, a), o.rule.Threshold(a))
	}
	fmt.Fprintf(&sb, " → match=%v", o.Matches(i, j))
	return sb.String()
}
