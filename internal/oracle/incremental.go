package oracle

import (
	"fmt"

	"pprl/internal/core"
)

// CheckIncrementalDeltas verifies the incremental subsystem's delta
// contract against a frozen reference run over the union of all appended
// batches: every pair may be emitted at most once, and the union of
// emitted pairs must equal the frozen run's match set exactly — no
// retraction is representable, so a single missing or surplus pair is a
// hard fault. The frozen result must cover the same final relations the
// deltas were accumulated over (aliceLen × bobLen records).
//
// The check is only sound when both runs could afford every uncertain
// pair (ample allowance): under a binding pool the two spend orders
// legitimately diverge, and the weaker invariants (no overdraw, strategy
// bounds) apply instead.
func CheckIncrementalDeltas(pairs [][2]int, frozen *core.Result, aliceLen, bobLen int) error {
	seen := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= aliceLen || p[1] < 0 || p[1] >= bobLen {
			return fmt.Errorf("oracle: delta (%d,%d) outside the %d×%d pair space", p[0], p[1], aliceLen, bobLen)
		}
		if seen[p] {
			return fmt.Errorf("oracle: pair (%d,%d) emitted as a delta twice — the delta stream retracted or restated a verdict", p[0], p[1])
		}
		seen[p] = true
	}
	for i := 0; i < aliceLen; i++ {
		for j := 0; j < bobLen; j++ {
			want := frozen.PairMatched(i, j)
			got := seen[[2]int{i, j}]
			switch {
			case want && !got:
				return fmt.Errorf("oracle: frozen run matches pair (%d,%d) but no append batch ever emitted it", i, j)
			case got && !want:
				return fmt.Errorf("oracle: delta stream emitted pair (%d,%d) which the frozen run does not match", i, j)
			}
		}
	}
	return nil
}

// CheckDedupDeltas verifies a dedup engine's delta union against the
// exact decision rule over one relation linked with itself: pairs must be
// normalized (i < j), never duplicated, never self-referential, and —
// under an ample allowance — exactly the unordered pairs the rule
// matches. Build the oracle with the same dataset on both sides.
func CheckDedupDeltas(pairs [][2]int, o *Oracle) error {
	if o.alice != o.bob {
		return fmt.Errorf("oracle: dedup check needs the same relation on both sides")
	}
	n := o.alice.Len()
	seen := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		if p[0] >= p[1] {
			return fmt.Errorf("oracle: dedup delta (%d,%d) is not normalized to i < j", p[0], p[1])
		}
		if p[0] < 0 || p[1] >= n {
			return fmt.Errorf("oracle: dedup delta (%d,%d) outside the %d-record relation", p[0], p[1], n)
		}
		if seen[p] {
			return fmt.Errorf("oracle: dedup pair (%d,%d) emitted twice", p[0], p[1])
		}
		seen[p] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want := o.Matches(i, j)
			got := seen[[2]int{i, j}]
			switch {
			case want && !got:
				return fmt.Errorf("oracle: records %d and %d match under the exact rule but were never emitted as a dedup delta", i, j)
			case got && !want:
				return fmt.Errorf("oracle: dedup delta (%d,%d) does not match under the exact rule", i, j)
			}
		}
	}
	return nil
}
