package oracle

import (
	"math/rand"
	"strings"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/match"
	"pprl/internal/smc"
	"pprl/internal/vgh"
)

func workload(t testing.TB, n int, seed int64) (alice, bob *dataset.Dataset) {
	t.Helper()
	full := adult.Generate(n, seed)
	return dataset.SplitOverlap(full, rand.New(rand.NewSource(seed+1)))
}

// link runs the plaintext-comparator pipeline and returns the result
// with the oracle built over the same relations and rule.
func link(t *testing.T, alice, bob *dataset.Dataset, mut func(*core.Config)) (*core.Result, *Oracle) {
	t.Helper()
	cfg := core.DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 8, 8
	if mut != nil {
		mut(&cfg)
	}
	res, err := core.Link(core.Holder{Data: alice}, core.Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(alice, bob, res.QIDs(), res.Rule())
	if err != nil {
		t.Fatal(err)
	}
	return res, o
}

func TestOracleAgreesWithDefaultPipeline(t *testing.T) {
	alice, bob := workload(t, 360, 42)
	res, o := link(t, alice, bob, nil)
	if err := o.CheckBlocking(res.Block); err != nil {
		t.Errorf("blocking disagrees with oracle: %v", err)
	}
	rep, err := o.CheckResult(res)
	if err != nil {
		t.Fatalf("result check failed: %v", err)
	}
	// The oracle's independent confusion must agree with Evaluate over
	// TruePairs — two different enumeration paths, same ground truth.
	truth, err := match.TruePairs(alice, bob, res.QIDs(), res.Rule())
	if err != nil {
		t.Fatal(err)
	}
	conf := res.Evaluate(truth)
	if rep.Confusion != conf {
		t.Errorf("oracle confusion %+v, Evaluate says %+v", rep.Confusion, conf)
	}
	if int64(len(truth)) != o.TrueMatchCount() {
		t.Errorf("TrueMatchCount %d, hash-join finds %d", o.TrueMatchCount(), len(truth))
	}
	if rep.Confusion.Precision() != 1 {
		t.Errorf("precision %v, want exactly 1", rep.Confusion.Precision())
	}
}

func TestOracleAcceptsMaximizeRecall(t *testing.T) {
	// Under maximize-recall false positives are expected and allowed; the
	// oracle reports them in the confusion without failing.
	alice, bob := workload(t, 240, 7)
	res, o := link(t, alice, bob, func(c *core.Config) {
		c.AliceK, c.BobK = 32, 32
		c.Strategy = core.MaximizeRecall
		c.AllowanceFraction = 0.001
	})
	rep, err := o.CheckResult(res)
	if err != nil {
		t.Fatalf("maximize-recall must not trip the precision invariant: %v", err)
	}
	if rep.Confusion.Recall() != 1 {
		t.Errorf("maximize-recall recall %v, want 1", rep.Confusion.Recall())
	}
	if rep.Confusion.FalsePositives == 0 {
		t.Error("tiny-budget maximize-recall at k=32 should produce false positives")
	}
}

func TestOracleCheckComparator(t *testing.T) {
	alice, bob := workload(t, 120, 11)
	res, o := link(t, alice, bob, nil)
	spec, err := smc.SpecFromRule(res.Rule(), 1)
	if err != nil {
		t.Fatal(err)
	}
	aliceEnc := smc.EncodeRecords(alice, res.QIDs(), 1)
	bobEnc := smc.EncodeRecords(bob, res.QIDs(), 1)
	var pairs [][2]int
	for i := 0; i < alice.Len(); i += 7 {
		for j := 0; j < bob.Len(); j += 5 {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	cmp := smc.NewPlainComparator(spec, aliceEnc, bobEnc)
	if err := o.CheckComparator(cmp, pairs); err != nil {
		t.Errorf("plain comparator disagrees with oracle: %v", err)
	}
	// A comparator that inverts its verdicts must be caught with the
	// offending pair named.
	if err := o.CheckComparator(&lyingComparator{cmp}, pairs); err == nil {
		t.Error("inverted comparator passed the oracle check")
	} else if !strings.Contains(err.Error(), "disagree") {
		t.Errorf("unexpected error text: %v", err)
	}
}

// lyingComparator inverts every verdict of the wrapped comparator.
type lyingComparator struct{ inner smc.Comparator }

func (l *lyingComparator) Compare(i, j int) (bool, error) {
	v, err := l.inner.Compare(i, j)
	return !v, err
}
func (l *lyingComparator) Invocations() int64      { return 0 }
func (l *lyingComparator) BytesTransferred() int64 { return 0 }
func (l *lyingComparator) Close() error            { return nil }

// mutantMetric deliberately breaks the slack contract the way ISSUE.md's
// canary prescribes: sds is computed as the infimum, so the supremum it
// reports can undercut the true distance and the slack rule mislabels
// uncertain pairs as Match.
type mutantMetric struct{ distance.Metric }

func (m mutantMetric) Bounds(v, w vgh.Value) (inf, sup float64) {
	inf, _ = m.Metric.Bounds(v, w)
	return inf, inf
}

// mutantRule rebuilds a rule with every metric's sds broken.
func mutantRule(t *testing.T, rule *blocking.Rule) *blocking.Rule {
	t.Helper()
	ms := make([]distance.Metric, rule.Len())
	ths := make([]float64, rule.Len())
	for i := range ms {
		ms[i] = mutantMetric{rule.Metric(i)}
		ths[i] = rule.Threshold(i)
	}
	broken, err := blocking.NewRule(ms, ths)
	if err != nil {
		t.Fatal(err)
	}
	return broken
}

// TestMutantBoundsCanary proves the oracle actually has teeth: blocking
// with a deliberately broken supremum must fail both the bounds
// bracketing check and, end to end, the maximize-precision invariant.
func TestMutantBoundsCanary(t *testing.T) {
	alice, bob := workload(t, 360, 13)
	res, o := link(t, alice, bob, func(c *core.Config) { c.AliceK, c.BobK = 16, 16 })

	broken := mutantRule(t, res.Rule())
	badBlock, err := blocking.Block(res.Block.R, res.Block.S, broken)
	if err != nil {
		t.Fatal(err)
	}
	if badBlock.MatchedPairs <= res.Block.MatchedPairs {
		t.Fatalf("mutant produced no extra Match labels (%d vs %d); canary is vacuous",
			badBlock.MatchedPairs, res.Block.MatchedPairs)
	}
	err = o.CheckBlocking(badBlock)
	if err == nil {
		t.Fatal("oracle accepted blocking built on a broken supremum")
	}
	if !strings.Contains(err.Error(), "blocking error") {
		t.Errorf("unexpected error text: %v", err)
	}

	// End to end: finishing the pipeline over the poisoned blocking must
	// break the precision==1 invariant and CheckResult must say so.
	cfg := core.DefaultConfig(adult.DefaultQIDs())
	cfg.AliceK, cfg.BobK = 16, 16
	badRes, err := core.LinkPrepared(core.Holder{Data: alice}, core.Holder{Data: bob}, badBlock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.CheckResult(badRes); err == nil {
		t.Fatal("oracle accepted false positives under maximize-precision")
	} else if !strings.Contains(err.Error(), "false positives") {
		t.Errorf("unexpected error text: %v", err)
	}
}

func TestCheckMonotoneRecallAllowanceSweep(t *testing.T) {
	alice, bob := workload(t, 240, 17)
	res, o := link(t, alice, bob, func(c *core.Config) { c.AliceK, c.BobK = 32, 32 })
	var sweep []*core.Result
	for _, allowance := range []int64{1, 25, 200, res.Block.UnknownPairs + 1} {
		cfg := core.DefaultConfig(adult.DefaultQIDs())
		cfg.AliceK, cfg.BobK = 32, 32
		cfg.Allowance = allowance
		cfg.AllowanceFraction = 0
		r, err := core.LinkPrepared(core.Holder{Data: alice}, core.Holder{Data: bob}, res.Block, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sweep = append(sweep, r)
	}
	if err := o.CheckMonotoneRecall(sweep, "allowance"); err != nil {
		t.Errorf("allowance sweep not monotone: %v", err)
	}
	// Reversing a sweep whose recall strictly grew must fail.
	first, last := sweep[0], sweep[len(sweep)-1]
	rf, err := o.CheckResult(first)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := o.CheckResult(last)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Confusion.Recall() <= rf.Confusion.Recall() {
		t.Skip("workload recall did not grow with allowance; reversal check vacuous")
	}
	if err := o.CheckMonotoneRecall([]*core.Result{last, first}, "allowance"); err == nil {
		t.Error("reversed sweep passed the monotonicity check")
	}
}

func TestViewsNested(t *testing.T) {
	alice, _ := workload(t, 90, 19)
	qids, err := alice.Schema().Resolve(adult.DefaultQIDs())
	if err != nil {
		t.Fatal(err)
	}
	fine, err := anonymize.NewMaxEntropy().Anonymize(alice, qids, 1)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := anonymize.NewMaxEntropy().Anonymize(alice, qids, alice.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !ViewsNested(fine, coarse, alice.Len()) {
		t.Error("root view must cover the identity view")
	}
	if ViewsNested(coarse, fine, alice.Len()) {
		t.Error("identity view cannot cover the root view")
	}
	if !ViewsNested(fine, fine, alice.Len()) {
		t.Error("a view must cover itself")
	}
}

func TestDescribePair(t *testing.T) {
	alice, bob := workload(t, 60, 23)
	_, o := link(t, alice, bob, nil)
	s := o.DescribePair(0, 0)
	if !strings.Contains(s, "match=") || !strings.Contains(s, "d0=") {
		t.Errorf("DescribePair output incomplete: %q", s)
	}
}

func TestOracleValidation(t *testing.T) {
	alice, bob := workload(t, 60, 29)
	res, o := link(t, alice, bob, nil)
	if _, err := New(nil, bob, res.QIDs(), res.Rule()); err == nil {
		t.Error("nil relation accepted")
	}
	if _, err := New(alice, bob, res.QIDs()[:1], res.Rule()); err == nil {
		t.Error("QID/rule arity mismatch accepted")
	}
	// A blocking result over differently sized relations is rejected.
	tiny, _ := workload(t, 30, 29)
	tinyRes, err := core.Link(core.Holder{Data: tiny}, core.Holder{Data: tiny.Clone()}, func() core.Config {
		c := core.DefaultConfig(adult.DefaultQIDs())
		c.AliceK, c.BobK = 4, 4
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	if err := o.CheckBlocking(tinyRes.Block); err == nil {
		t.Error("mismatched blocking result accepted")
	}
}
