package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
)

// benchKeyBits is the paper's key size; the micro-benchmarks exist to
// keep the kernel costs at that size visible (bench-smoke compiles and
// runs them once per CI pass so they cannot rot).
const benchKeyBits = 1024

var (
	benchOnce sync.Once
	benchSK   *PrivateKey
)

func benchKey(b *testing.B) *PrivateKey {
	b.Helper()
	benchOnce.Do(func() {
		k, err := GenerateKey(rand.Reader, benchKeyBits)
		if err != nil {
			b.Fatalf("GenerateKey: %v", err)
		}
		benchSK = k
	})
	return benchSK
}

func benchCiphertext(b *testing.B, sk *PrivateKey, v int64) *Ciphertext {
	b.Helper()
	ct, err := sk.EncryptInt64(rand.Reader, v)
	if err != nil {
		b.Fatalf("EncryptInt64: %v", err)
	}
	return ct
}

func BenchmarkEncrypt(b *testing.B) {
	sk := benchKey(b)
	m := big.NewInt(123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	sk := benchKey(b)
	ct := benchCiphertext(b, sk, 123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptDirect(b *testing.B) {
	sk := benchKey(b)
	// A key without the prime factors decrypts via Lambda/Mu.
	direct := &PrivateKey{PublicKey: sk.PublicKey, Lambda: sk.Lambda, Mu: sk.Mu}
	ct := benchCiphertext(b, sk, 123456789)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := direct.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	sk := benchKey(b)
	x := benchCiphertext(b, sk, 11)
	y := benchCiphertext(b, sk, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Add(x, y)
	}
}

func BenchmarkAddConst(b *testing.B) {
	sk := benchKey(b)
	ct := benchCiphertext(b, sk, 11)
	k := big.NewInt(-65)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.AddConst(ct, k)
	}
}

// BenchmarkMulConst contrasts the exponent sizes the protocol produces:
// small positive (Bob's record values), small negative (the fast path
// that previously cost a full-width exponentiation), the 40-bit blinding
// factor, and a full-width random constant (the generic path).
func BenchmarkMulConst(b *testing.B) {
	sk := benchKey(b)
	ct := benchCiphertext(b, sk, 17)
	full, err := rand.Int(rand.Reader, sk.N)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		k    *big.Int
	}{
		{"small", big.NewInt(12345)},
		{"small-negative", big.NewInt(-12345)},
		{"blind40", new(big.Int).Lsh(one, 40)},
		{"full-width", full},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sk.MulConst(ct, tc.k)
			}
		})
	}
}

// BenchmarkPackUnpack measures the packed-response kernels at the SMC
// slot width: packing d=4 blinded outputs into one ciphertext versus the
// single decryption that replaces four.
func BenchmarkPackUnpack(b *testing.B) {
	sk := benchKey(b)
	plan, err := NewPackPlan(sk.N.BitLen(), 106)
	if err != nil {
		b.Fatal(err)
	}
	cts := make([]*Ciphertext, 4)
	for i := range cts {
		cts[i] = benchCiphertext(b, sk, int64(i)-2)
	}
	b.Run("pack4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.PackSigned(cts, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	packed, err := sk.PackSigned(cts, plan)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unpack4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.UnpackSigned(packed[0], plan, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
