package paillier

import (
	"crypto/rand"
	"math/big"
	"runtime"
	"sync"
)

// RandomizerPool pregenerates the message-independent factor r^N mod N²
// of Paillier encryptions. The factor costs one full-width modular
// exponentiation — the dominant cost of Encrypt and Rerandomize — but
// depends only on the key, so background workers can compute units ahead
// of demand and the hot path collapses to two modular multiplications.
//
// A unit is consumed by exactly one operation, so pooled encryptions are
// distributionally identical to fresh ones: each uses an independently
// drawn r. The pool is safe for concurrent use by any number of
// goroutines; when the buffer is drained (or after Close) consumers fall
// back to computing the unit inline, so pooled operations are never
// slower than their direct counterparts and never block on the pool.
type RandomizerPool struct {
	pk        *PublicKey
	units     chan *big.Int
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewRandomizerPool starts workers goroutines (≤ 0 means GOMAXPROCS)
// filling a buffer of the given capacity (≤ 0 picks a default scaled to
// the worker count). Close must be called to release the workers.
func NewRandomizerPool(pk *PublicKey, workers, buffer int) *RandomizerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if buffer <= 0 {
		buffer = 16 * workers
	}
	p := &RandomizerPool{
		pk:    pk,
		units: make(chan *big.Int, buffer),
		stop:  make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.fill()
	}
	return p
}

// fill produces noise units until the pool is closed. Once the buffer is
// full the send blocks, so a saturated pool costs no CPU.
func (p *RandomizerPool) fill() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		rn, err := p.pk.noiseUnit(rand.Reader)
		if err != nil {
			return // crypto/rand failure; consumers compute inline
		}
		select {
		case p.units <- rn:
		case <-p.stop:
			return
		}
	}
}

// noise returns a pregenerated unit when one is buffered, computing one
// inline otherwise.
func (p *RandomizerPool) noise() (*big.Int, error) {
	select {
	case rn := <-p.units:
		return rn, nil
	default:
		return p.pk.noiseUnit(rand.Reader)
	}
}

// Public returns the key the pool generates noise for.
func (p *RandomizerPool) Public() *PublicKey { return p.pk }

// Encrypt is PublicKey.Encrypt drawing its randomizer from the pool.
func (p *RandomizerPool) Encrypt(m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(p.pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	rn, err := p.noise()
	if err != nil {
		return nil, err
	}
	return p.pk.encryptWithNoise(m, rn)
}

// EncryptInt64 is PublicKey.EncryptInt64 drawing from the pool.
func (p *RandomizerPool) EncryptInt64(v int64) (*Ciphertext, error) {
	return p.Encrypt(p.pk.encodeSigned(big.NewInt(v)))
}

// Rerandomize is PublicKey.Rerandomize drawing from the pool.
func (p *RandomizerPool) Rerandomize(ct *Ciphertext) (*Ciphertext, error) {
	rn, err := p.noise()
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(ct.C, rn)
	c.Mod(c, p.pk.N2)
	return &Ciphertext{C: c}, nil
}

// Close stops the background workers and waits for them to exit. The
// pool remains usable afterwards — operations compute their randomizers
// inline — so concurrent users need not synchronize with Close.
func (p *RandomizerPool) Close() {
	p.closeOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
	// Drain buffered units so the memory is reclaimable immediately.
	for {
		select {
		case <-p.units:
		default:
			return
		}
	}
}
