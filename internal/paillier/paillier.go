// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, Eurocrypt '99), the additively homomorphic encryption the
// paper's SMC step builds its secure distance protocol on (Section V-A,
// citing [18]): given Enc(m1) and Enc(m2) anyone can compute Enc(m1+m2),
// and given a constant c anyone can compute Enc(c·m1).
//
// The implementation uses only the standard library (crypto/rand,
// math/big) and the usual g = n+1 simplification, so encryption is
// (1+mn)·rⁿ mod n². Messages are elements of Z_n; EncryptInt64/DecryptInt64
// add a signed encoding (values below n/2 are non-negative, values above
// are negative), which the secure threshold-comparison protocol relies on
// to reveal only the sign of a blinded difference. Decryption takes the
// CRT fast path when the prime factors are present.
//
// Security model: semi-honest parties, as in the paper. math/big is not
// constant-time, so — like every big.Int-based cryptosystem — this
// implementation is not hardened against local timing side channels;
// that is outside the paper's (and this reproduction's) threat model.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
)

var one = big.NewInt(1)

// scratch pools big.Int temporaries for the homomorphic operators and the
// decryption fast path. The SMC hot loop calls Add/AddConst/MulConst and
// decryptCRT thousands of times per second; recycling the full-width
// intermediates (products mod N² peak at 4× the key size) keeps the
// allocator off the profile.
var scratch = sync.Pool{New: func() any { return new(big.Int) }}

// PublicKey holds the Paillier modulus. G is fixed to N+1.
type PublicKey struct {
	// N is the RSA-style modulus p·q.
	N *big.Int
	// N2 caches N².
	N2 *big.Int
}

// PrivateKey extends the public key with the decryption trapdoor.
type PrivateKey struct {
	PublicKey
	// Lambda is lcm(p-1, q-1).
	Lambda *big.Int
	// Mu is (L(g^Lambda mod N²))⁻¹ mod N.
	Mu *big.Int
	// P and Q are the prime factors; when present, Decrypt uses the CRT
	// fast path (exponentiation mod p² and q² separately), roughly 3-4×
	// faster than the direct form. Keys deserialized without the factors
	// still decrypt via Lambda/Mu.
	P, Q *big.Int

	// CRT precomputation, derived from P and Q on first use.
	crt     *crtContext
	crtOnce sync.Once

	// halfN caches N>>1, the signed-encoding boundary DecryptSigned
	// tests against on every call; derived lazily so keys built by
	// struct literal (UnmarshalBinary) get it too.
	halfN    *big.Int
	halfOnce sync.Once
}

// crtContext caches the values the CRT decryption path needs.
type crtContext struct {
	p2, q2   *big.Int // p², q²
	pm1, qm1 *big.Int // p-1, q-1
	hp, hq   *big.Int // L_p(g^{p-1} mod p²)⁻¹ mod p, and the q analogue
	qInvP    *big.Int // q⁻¹ mod p
}

// Ciphertext is a Paillier ciphertext: an element of Z*_{n²}. It is a
// distinct type so plaintext and ciphertext integers cannot be confused.
type Ciphertext struct {
	C *big.Int
}

// ErrMessageRange is returned when a plaintext is outside [0, N).
var ErrMessageRange = errors.New("paillier: message outside [0, N)")

// ErrCiphertextRange is returned when a ciphertext is outside [0, N²) or
// shares a factor with N.
var ErrCiphertextRange = errors.New("paillier: invalid ciphertext")

// GenerateKey creates a key pair with an n of the given bit length. The
// paper's experiments use 1024-bit keys; tests use shorter ones for speed.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("paillier: key size %d too small", bits)
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(random, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		n2 := new(big.Int).Mul(n, n)
		// With g = n+1: g^λ mod n² = 1 + λ·n (mod n²), so
		// L(g^λ) = λ mod n and μ = λ⁻¹ mod n.
		mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
		if mu == nil {
			continue // λ not invertible mod n; re-draw primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2},
			Lambda:    lambda,
			Mu:        mu,
			P:         p,
			Q:         q,
		}, nil
	}
}

// Encrypt encrypts m ∈ [0, N) with fresh randomness from random.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	rn, err := pk.noiseUnit(random)
	if err != nil {
		return nil, err
	}
	return pk.encryptWithNoise(m, rn)
}

// noiseUnit computes r^N mod N² for a fresh random unit r: the
// message-independent factor of an encryption, and exactly an encryption
// of zero. This is the single modular exponentiation that dominates
// Encrypt/Rerandomize cost; RandomizerPool precomputes these units in the
// background.
func (pk *PublicKey) noiseUnit(random io.Reader) (*big.Int, error) {
	r, err := pk.randomUnit(random)
	if err != nil {
		return nil, err
	}
	return r.Exp(r, pk.N, pk.N2), nil
}

// encryptWithNoise assembles c = (1 + m·n) · rn mod n² from a message and
// a precomputed noise unit rn = r^n mod n² — two modular multiplications,
// no exponentiation.
func (pk *PublicKey) encryptWithNoise(m, rn *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, ErrMessageRange
	}
	// 1 + m·n < n² for every valid m, so the only reduction needed is the
	// one after multiplying in the noise unit.
	t := scratch.Get().(*big.Int)
	t.Mul(m, pk.N)
	t.Add(t, one)
	t.Mul(t, rn)
	c := new(big.Int).Mod(t, pk.N2)
	scratch.Put(t)
	return &Ciphertext{C: c}, nil
}

// EncryptInt64 encrypts a signed value using the half-range encoding.
func (pk *PublicKey) EncryptInt64(random io.Reader, v int64) (*Ciphertext, error) {
	return pk.Encrypt(random, pk.encodeSigned(big.NewInt(v)))
}

// encodeSigned maps a signed integer into Z_n (negative values wrap).
func (pk *PublicKey) encodeSigned(v *big.Int) *big.Int {
	return new(big.Int).Mod(v, pk.N)
}

// Decrypt recovers m ∈ [0, N).
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(ct); err != nil {
		return nil, err
	}
	if sk.P != nil && sk.Q != nil {
		return sk.decryptCRT(ct), nil
	}
	// m = L(c^λ mod n²) · μ mod n, with L(x) = (x-1)/n.
	x := new(big.Int).Exp(ct.C, sk.Lambda, sk.N2)
	x.Sub(x, one)
	x.Div(x, sk.N)
	x.Mul(x, sk.Mu)
	x.Mod(x, sk.N)
	return x, nil
}

// decryptCRT computes the message modulo p and q separately and combines
// with the Chinese Remainder Theorem; the half-size exponentiations make
// it several times faster than the direct form.
func (sk *PrivateKey) decryptCRT(ct *Ciphertext) *big.Int {
	c := sk.crtInit()
	mp := scratch.Get().(*big.Int)
	mq := scratch.Get().(*big.Int)
	// m_p = L_p(ct^{p-1} mod p²) · hp mod p.
	mp.Exp(ct.C, c.pm1, c.p2)
	mp.Sub(mp, one)
	mp.Div(mp, sk.P)
	mp.Mul(mp, c.hp)
	mp.Mod(mp, sk.P)
	// m_q likewise.
	mq.Exp(ct.C, c.qm1, c.q2)
	mq.Sub(mq, one)
	mq.Div(mq, sk.Q)
	mq.Mul(mq, c.hq)
	mq.Mod(mq, sk.Q)
	// CRT: m = m_q + q·((m_p − m_q)·q⁻¹ mod p); mp doubles as the diff
	// scratch since its value is consumed first.
	mp.Sub(mp, mq)
	mp.Mul(mp, c.qInvP)
	mp.Mod(mp, sk.P)
	m := new(big.Int).Mul(mp, sk.Q)
	m.Add(m, mq)
	m.Mod(m, sk.N)
	scratch.Put(mp)
	scratch.Put(mq)
	return m
}

// crtInit lazily derives the CRT context from P and Q, once.
func (sk *PrivateKey) crtInit() *crtContext {
	sk.crtOnce.Do(sk.buildCRT)
	return sk.crt
}

func (sk *PrivateKey) buildCRT() {
	c := &crtContext{
		p2:  new(big.Int).Mul(sk.P, sk.P),
		q2:  new(big.Int).Mul(sk.Q, sk.Q),
		pm1: new(big.Int).Sub(sk.P, one),
		qm1: new(big.Int).Sub(sk.Q, one),
	}
	// With g = n+1: g^{p-1} mod p² = 1 + (p-1)·n mod p², so
	// L_p(g^{p-1}) = (p-1)·n/p... computed directly for clarity.
	gp := new(big.Int).Add(sk.N, one)
	gp.Exp(gp, c.pm1, c.p2)
	gp.Sub(gp, one)
	gp.Div(gp, sk.P)
	c.hp = gp.ModInverse(gp, sk.P)
	gq := new(big.Int).Add(sk.N, one)
	gq.Exp(gq, c.qm1, c.q2)
	gq.Sub(gq, one)
	gq.Div(gq, sk.Q)
	c.hq = gq.ModInverse(gq, sk.Q)
	c.qInvP = new(big.Int).ModInverse(sk.Q, sk.P)
	sk.crt = c
}

// DecryptSigned recovers a signed value from the half-range encoding:
// plaintexts in [0, N/2) are non-negative, the rest negative.
func (sk *PrivateKey) DecryptSigned(ct *Ciphertext) (*big.Int, error) {
	m, err := sk.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	if m.Cmp(sk.half()) > 0 {
		m.Sub(m, sk.N)
	}
	return m, nil
}

// half lazily caches the signed-encoding boundary N>>1.
func (sk *PrivateKey) half() *big.Int {
	sk.halfOnce.Do(func() { sk.halfN = new(big.Int).Rsh(sk.N, 1) })
	return sk.halfN
}

// Add returns Enc(m1 + m2) from Enc(m1) and Enc(m2) — the +h operator of
// the paper's Section V-A.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	t := scratch.Get().(*big.Int)
	t.Mul(a.C, b.C)
	c := new(big.Int).Mod(t, pk.N2)
	scratch.Put(t)
	return &Ciphertext{C: c}
}

// MulConst returns Enc(k·m) from Enc(m) and a plaintext constant — the ×h
// operator. Negative constants are encoded via the signed mapping.
//
// The exponentiation cost is proportional to the exponent's bit length,
// so small constants take a fast path: a non-negative k < N is used
// directly, and a negative k of magnitude |k| < N is computed as
// (ct^{|k|})⁻¹ mod N² — the protocol's small negative constants would
// otherwise encode to the full-width exponent N−|k| and cost a complete
// modular exponentiation each.
func (pk *PublicKey) MulConst(ct *Ciphertext, k *big.Int) *Ciphertext {
	if k.Sign() < 0 {
		abs := scratch.Get().(*big.Int)
		abs.Neg(k)
		if abs.Cmp(pk.N) < 0 {
			c := new(big.Int).Exp(ct.C, abs, pk.N2)
			scratch.Put(abs)
			if c.ModInverse(c, pk.N2) != nil {
				return &Ciphertext{C: c}
			}
			// ct shares a factor with N — not a valid ciphertext, but the
			// generic path is defined on it, so match that result.
			c.Exp(ct.C, pk.encodeSigned(k), pk.N2)
			return &Ciphertext{C: c}
		}
		scratch.Put(abs)
	} else if k.Cmp(pk.N) < 0 {
		return &Ciphertext{C: new(big.Int).Exp(ct.C, k, pk.N2)}
	}
	return &Ciphertext{C: new(big.Int).Exp(ct.C, pk.encodeSigned(k), pk.N2)}
}

// AddConst returns Enc(m + k) without an extra encryption: Enc(m)·g^k.
func (pk *PublicKey) AddConst(ct *Ciphertext, k *big.Int) *Ciphertext {
	// g^k = 1 + (k mod N)·N ≤ 1 + (N−1)·N < N², so the product with the
	// ciphertext is the only reduction needed.
	gk := scratch.Get().(*big.Int)
	gk.Mod(k, pk.N)
	gk.Mul(gk, pk.N)
	gk.Add(gk, one)
	gk.Mul(gk, ct.C)
	c := new(big.Int).Mod(gk, pk.N2)
	scratch.Put(gk)
	return &Ciphertext{C: c}
}

// Rerandomize multiplies in a fresh encryption of zero so the ciphertext
// is unlinkable to its inputs while decrypting identically.
func (pk *PublicKey) Rerandomize(random io.Reader, ct *Ciphertext) (*Ciphertext, error) {
	rn, err := pk.noiseUnit(random)
	if err != nil {
		return nil, err
	}
	// A noise unit r^n is itself an encryption of zero, so one modular
	// multiplication completes the rerandomization.
	c := new(big.Int).Mul(ct.C, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// randomUnit draws r ∈ [1, N) with gcd(r, N) = 1.
func (pk *PublicKey) randomUnit(random io.Reader) (*big.Int, error) {
	gcd := new(big.Int)
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if gcd.GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// RandomBlind draws a positive multiplicative blinding factor in
// [1, 2^bits) for the order-preserving threshold comparison.
func (pk *PublicKey) RandomBlind(random io.Reader, bits int) (*big.Int, error) {
	limit := new(big.Int).Lsh(one, uint(bits))
	for {
		r, err := rand.Int(random, limit)
		if err != nil {
			return nil, fmt.Errorf("paillier: drawing blind: %w", err)
		}
		if r.Sign() > 0 {
			return r, nil
		}
	}
}

func (sk *PrivateKey) checkCiphertext(ct *Ciphertext) error {
	if ct == nil || ct.C == nil {
		return ErrCiphertextRange
	}
	if ct.C.Sign() <= 0 || ct.C.Cmp(sk.N2) >= 0 {
		return ErrCiphertextRange
	}
	g := scratch.Get().(*big.Int)
	ok := g.GCD(nil, nil, ct.C, sk.N).Cmp(one) == 0
	scratch.Put(g)
	if !ok {
		return ErrCiphertextRange
	}
	return nil
}

// Public returns the public half of the key.
func (sk *PrivateKey) Public() *PublicKey { return &sk.PublicKey }
