package paillier

import (
	"errors"
	"fmt"
	"math/big"
)

// Ciphertext slot packing: k signed plaintexts, each of magnitude below
// 2^{w-1}, ride in one ciphertext as disjoint w-bit slots of the single
// plaintext Σ (vᵢ + 2^{w-1})·2^{i·w}. Packing is pure homomorphics — the
// packer holds only ciphertexts — built from the cheap operators: raising
// a ciphertext to 2^w is w squarings (shifting its plaintext left by one
// slot), the per-slot sign offset 2^{w-1} is one AddConst of a public
// constant, and merging slots is ciphertext multiplication. The private
// key side then performs ONE decryption per packed ciphertext instead of
// one per value, which is what makes packing the SMC response hot-path
// optimization: decryption is the querying party's dominant cost.
//
// The offset makes every slot value non-negative (vᵢ + 2^{w-1} ∈ [0, 2^w)
// exactly when |vᵢ| < 2^{w-1}), so slots never borrow from their
// neighbours and the packed plaintext stays below 2^{Slots·w} < N — the
// plan guarantees Slots·w ≤ N.BitLen()−1. UnpackSigned checks that the
// bits above the occupied slots are zero and fails with ErrPackedOverflow
// otherwise; a value that overflows its own slot into a neighbour is not
// detectable here (the carry is absorbed by the next slot), which is why
// callers must enforce the |vᵢ| < 2^{w-1} bound before packing.

// ErrPackedOverflow reports a packed plaintext with non-zero bits above
// its occupied slots: some packed value exceeded the slot bound, or the
// ciphertext was not produced by PackSigned under the same plan.
var ErrPackedOverflow = errors.New("paillier: packed plaintext overflows its slots")

// PackPlan fixes the slot geometry both ends of a packed exchange must
// share: the slot width and how many slots one ciphertext carries.
type PackPlan struct {
	// SlotBits is the slot width w; packed values must satisfy
	// |v| < 2^{w-1}.
	SlotBits int
	// Slots is the per-ciphertext capacity: ⌊(modBits−1)/w⌋, so a full
	// ciphertext's plaintext stays strictly below 2^{modBits−1} ≤ N.
	Slots int
}

// NewPackPlan derives the packing geometry for a modulus of modBits bits
// and the given slot width. It fails fast when even a single slot does
// not fit — the caller must use a larger key or disable packing.
func NewPackPlan(modBits, slotBits int) (PackPlan, error) {
	if slotBits < 2 {
		return PackPlan{}, fmt.Errorf("paillier: slot width %d too small", slotBits)
	}
	slots := (modBits - 1) / slotBits
	if slots < 1 {
		return PackPlan{}, fmt.Errorf("paillier: %d-bit slots do not fit a %d-bit modulus", slotBits, modBits)
	}
	return PackPlan{SlotBits: slotBits, Slots: slots}, nil
}

// Ciphertexts returns how many packed ciphertexts carry count values:
// ⌈count/Slots⌉.
func (p PackPlan) Ciphertexts(count int) int {
	return (count + p.Slots - 1) / p.Slots
}

// offset returns the public constant Σ 2^{w-1}·2^{i·w} for i < m: the sum
// of all m per-slot sign offsets, added homomorphically in one AddConst.
func (p PackPlan) offset(m int) *big.Int {
	o := new(big.Int)
	for i := 0; i < m; i++ {
		o.SetBit(o, i*p.SlotBits+p.SlotBits-1, 1)
	}
	return o
}

// PackSigned packs the signed plaintexts of cts into ⌈len(cts)/Slots⌉
// ciphertexts under the plan. Slot i of output ciphertext c holds the
// plaintext of cts[c·Slots+i]; every input plaintext must have magnitude
// below 2^{SlotBits-1} (not checkable here — enforce before encrypting).
// The output randomness is a product of the inputs' units; rerandomize
// before sending anything adversarial-facing.
func (pk *PublicKey) PackSigned(cts []*Ciphertext, plan PackPlan) ([]*Ciphertext, error) {
	if plan.Slots < 1 || plan.SlotBits < 2 {
		return nil, fmt.Errorf("paillier: invalid pack plan %+v", plan)
	}
	out := make([]*Ciphertext, 0, plan.Ciphertexts(len(cts)))
	shift := new(big.Int).Lsh(one, uint(plan.SlotBits)) // exponent 2^w: one slot left
	for lo := 0; lo < len(cts); lo += plan.Slots {
		group := cts[lo:min(lo+plan.Slots, len(cts))]
		// Horner from the highest slot down: each step shifts the
		// accumulated slots up by w bits (SlotBits squarings) and merges
		// the next value into the vacated low slot.
		acc := new(big.Int).Set(group[len(group)-1].C)
		for i := len(group) - 2; i >= 0; i-- {
			acc.Exp(acc, shift, pk.N2)
			acc.Mul(acc, group[i].C)
			acc.Mod(acc, pk.N2)
		}
		// All sign offsets land in one homomorphic constant addition.
		out = append(out, pk.AddConst(&Ciphertext{C: acc}, plan.offset(len(group))))
	}
	return out, nil
}

// UnpackSigned decrypts one packed ciphertext and extracts its first
// count signed slot values, in packing order. It returns
// ErrPackedOverflow when plaintext bits remain above the occupied slots.
func (sk *PrivateKey) UnpackSigned(ct *Ciphertext, plan PackPlan, count int) ([]*big.Int, error) {
	if count < 1 || count > plan.Slots {
		return nil, fmt.Errorf("paillier: unpacking %d values from a %d-slot plan", count, plan.Slots)
	}
	m, err := sk.Decrypt(ct)
	if err != nil {
		return nil, err
	}
	w := uint(plan.SlotBits)
	mask := new(big.Int).Sub(new(big.Int).Lsh(one, w), one)
	half := new(big.Int).Lsh(one, w-1)
	out := make([]*big.Int, count)
	for i := 0; i < count; i++ {
		v := new(big.Int).And(m, mask)
		out[i] = v.Sub(v, half)
		m.Rsh(m, w)
	}
	if m.Sign() != 0 {
		return nil, ErrPackedOverflow
	}
	return out, nil
}
