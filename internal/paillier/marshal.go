package paillier

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/big"
)

// wireKey is the serialized form of a private key. The CRT factors are
// optional; a key restored without them decrypts via the Lambda/Mu slow
// path.
type wireKey struct {
	N, Lambda, Mu, P, Q *big.Int
}

// MarshalBinary implements encoding.BinaryMarshaler for key storage.
func (sk *PrivateKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := wireKey{N: sk.N, Lambda: sk.Lambda, Mu: sk.Mu, P: sk.P, Q: sk.Q}
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("paillier: marshaling key: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler and validates the
// restored key's internal consistency.
func (sk *PrivateKey) UnmarshalBinary(data []byte) error {
	var w wireKey
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("paillier: unmarshaling key: %w", err)
	}
	if w.N == nil || w.Lambda == nil || w.Mu == nil {
		return fmt.Errorf("paillier: key is missing components")
	}
	if w.N.Sign() <= 0 || w.Lambda.Sign() <= 0 || w.Mu.Sign() <= 0 {
		return fmt.Errorf("paillier: key has non-positive components")
	}
	if (w.P == nil) != (w.Q == nil) {
		return fmt.Errorf("paillier: key has only one CRT factor")
	}
	if w.P != nil && new(big.Int).Mul(w.P, w.Q).Cmp(w.N) != 0 {
		return fmt.Errorf("paillier: CRT factors do not multiply to N")
	}
	// μ must invert λ mod N.
	check := new(big.Int).Mul(new(big.Int).Mod(w.Lambda, w.N), w.Mu)
	if check.Mod(check, w.N).Cmp(one) != 0 {
		return fmt.Errorf("paillier: Mu is not the inverse of Lambda mod N")
	}
	*sk = PrivateKey{
		PublicKey: PublicKey{N: w.N, N2: new(big.Int).Mul(w.N, w.N)},
		Lambda:    w.Lambda,
		Mu:        w.Mu,
		P:         w.P,
		Q:         w.Q,
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pk.N); err != nil {
		return nil, fmt.Errorf("paillier: marshaling public key: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	var n big.Int
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&n); err != nil {
		return fmt.Errorf("paillier: unmarshaling public key: %w", err)
	}
	if n.Sign() <= 0 {
		return fmt.Errorf("paillier: non-positive modulus")
	}
	pk.N = &n
	pk.N2 = new(big.Int).Mul(&n, &n)
	return nil
}
