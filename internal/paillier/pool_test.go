package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
)

func poolTestKey(t testing.TB) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestPoolEncryptDecrypt(t *testing.T) {
	sk := poolTestKey(t)
	pool := NewRandomizerPool(sk.Public(), 2, 8)
	defer pool.Close()

	for _, v := range []int64{0, 1, -1, 123456, -98765} {
		ct, err := pool.EncryptInt64(v)
		if err != nil {
			t.Fatalf("EncryptInt64(%d): %v", v, err)
		}
		got, err := sk.DecryptSigned(ct)
		if err != nil {
			t.Fatalf("DecryptSigned(%d): %v", v, err)
		}
		if got.Int64() != v {
			t.Errorf("roundtrip %d = %d", v, got.Int64())
		}
	}

	// Out-of-range messages are rejected just like PublicKey.Encrypt.
	if _, err := pool.Encrypt(new(big.Int).Neg(one)); err != ErrMessageRange {
		t.Errorf("negative message: err = %v, want ErrMessageRange", err)
	}
	if _, err := pool.Encrypt(sk.N); err != ErrMessageRange {
		t.Errorf("message = N: err = %v, want ErrMessageRange", err)
	}
}

func TestPoolRerandomizeUnlinkable(t *testing.T) {
	sk := poolTestKey(t)
	pool := NewRandomizerPool(sk.Public(), 1, 4)
	defer pool.Close()

	ct, err := pool.EncryptInt64(42)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := pool.Rerandomize(ct)
	if err != nil {
		t.Fatal(err)
	}
	if rr.C.Cmp(ct.C) == 0 {
		t.Error("rerandomized ciphertext equals its input")
	}
	got, err := sk.DecryptSigned(rr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("rerandomized plaintext = %d, want 42", got.Int64())
	}
}

// TestPoolDistinctUnits: two pooled encryptions of the same message must
// use independent randomizers (a repeat would link the ciphertexts).
func TestPoolDistinctUnits(t *testing.T) {
	sk := poolTestKey(t)
	pool := NewRandomizerPool(sk.Public(), 1, 4)
	defer pool.Close()
	a, err := pool.EncryptInt64(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.EncryptInt64(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.C.Cmp(b.C) == 0 {
		t.Error("two pooled encryptions of the same message are identical")
	}
}

// TestPoolConcurrent hammers one pool from many goroutines; run with
// -race. Verdicts are verified to catch torn unit reuse.
func TestPoolConcurrent(t *testing.T) {
	sk := poolTestKey(t)
	pool := NewRandomizerPool(sk.Public(), 4, 16)
	defer pool.Close()

	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := int64(g*1000 + i)
				ct, err := pool.EncryptInt64(v)
				if err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					if ct, err = pool.Rerandomize(ct); err != nil {
						errs <- err
						return
					}
				}
				got, err := sk.DecryptSigned(ct)
				if err != nil {
					errs <- err
					return
				}
				if got.Int64() != v {
					t.Errorf("goroutine %d: roundtrip %d = %d", g, v, got.Int64())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolUsableAfterClose: Close stops the workers but operations fall
// back to inline computation instead of failing.
func TestPoolUsableAfterClose(t *testing.T) {
	sk := poolTestKey(t)
	pool := NewRandomizerPool(sk.Public(), 2, 4)
	pool.Close()
	pool.Close() // double close tolerated

	ct, err := pool.EncryptInt64(9)
	if err != nil {
		t.Fatalf("EncryptInt64 after Close: %v", err)
	}
	got, err := sk.DecryptSigned(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 9 {
		t.Errorf("roundtrip after Close = %d, want 9", got.Int64())
	}
}

// BenchmarkEncryptPooled vs BenchmarkEncryptFresh isolates the pool's
// amortization at the paper's key size.
func BenchmarkEncryptFresh1024(b *testing.B) {
	sk, err := GenerateKey(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptPooled1024(b *testing.B) {
	sk, err := GenerateKey(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	pool := NewRandomizerPool(sk.Public(), 0, 0)
	defer pool.Close()
	m := big.NewInt(123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}
