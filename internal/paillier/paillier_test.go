package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKeyBits keeps tests fast; the benchmarks measure the paper's
// 1024-bit configuration.
const testKeyBits = 256

var (
	keyOnce sync.Once
	testKey *PrivateKey
)

func key(t testing.TB) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		k, err := GenerateKey(rand.Reader, testKeyBits)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestGenerateKeyShape(t *testing.T) {
	sk := key(t)
	if sk.N.BitLen() != testKeyBits {
		t.Errorf("N has %d bits, want %d", sk.N.BitLen(), testKeyBits)
	}
	if got := new(big.Int).Mul(sk.N, sk.N); got.Cmp(sk.N2) != 0 {
		t.Error("N2 != N²")
	}
	if _, err := GenerateKey(rand.Reader, 32); err == nil {
		t.Error("tiny keys should be rejected")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, 2, 42, 1 << 40} {
		ct, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.Encrypt(rand.Reader, big.NewInt(-1)); err != ErrMessageRange {
		t.Errorf("negative message: err = %v, want ErrMessageRange", err)
	}
	if _, err := sk.Encrypt(rand.Reader, sk.N); err != ErrMessageRange {
		t.Errorf("message = N: err = %v, want ErrMessageRange", err)
	}
	big := new(big.Int).Sub(sk.N, big.NewInt(1))
	if _, err := sk.Encrypt(rand.Reader, big); err != nil {
		t.Errorf("message = N-1 should encrypt: %v", err)
	}
}

func TestDecryptRejectsBadCiphertext(t *testing.T) {
	sk := key(t)
	cases := []*Ciphertext{
		nil,
		{},
		{C: big.NewInt(0)},
		{C: new(big.Int).Neg(big.NewInt(5))},
		{C: sk.N2},
		{C: new(big.Int).Set(sk.N)}, // shares a factor with N
	}
	for i, ct := range cases {
		if _, err := sk.Decrypt(ct); err == nil {
			t.Errorf("case %d: bad ciphertext accepted", i)
		}
	}
}

func TestProbabilisticEncryption(t *testing.T) {
	sk := key(t)
	m := big.NewInt(7)
	a, _ := sk.Encrypt(rand.Reader, m)
	b, _ := sk.Encrypt(rand.Reader, m)
	if a.C.Cmp(b.C) == 0 {
		t.Error("two encryptions of the same message should differ")
	}
}

func TestSignedEncoding(t *testing.T) {
	sk := key(t)
	for _, v := range []int64{0, 1, -1, 12345, -12345, 1 << 50, -(1 << 50)} {
		ct, err := sk.EncryptInt64(rand.Reader, v)
		if err != nil {
			t.Fatalf("EncryptInt64(%d): %v", v, err)
		}
		got, err := sk.DecryptSigned(ct)
		if err != nil {
			t.Fatalf("DecryptSigned: %v", err)
		}
		if got.Int64() != v {
			t.Errorf("signed round trip %d -> %v", v, got)
		}
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := key(t)
	a, _ := sk.EncryptInt64(rand.Reader, 20)
	b, _ := sk.EncryptInt64(rand.Reader, 22)
	sum, err := sk.DecryptSigned(sk.Add(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 42 {
		t.Errorf("Enc(20)+Enc(22) decrypts to %v", sum)
	}
}

func TestHomomorphicMulConst(t *testing.T) {
	sk := key(t)
	a, _ := sk.EncryptInt64(rand.Reader, 21)
	got, err := sk.DecryptSigned(sk.MulConst(a, big.NewInt(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("2 × Enc(21) decrypts to %v", got)
	}
	neg, err := sk.DecryptSigned(sk.MulConst(a, big.NewInt(-2)))
	if err != nil {
		t.Fatal(err)
	}
	if neg.Int64() != -42 {
		t.Errorf("-2 × Enc(21) decrypts to %v", neg)
	}
}

func TestAddConst(t *testing.T) {
	sk := key(t)
	a, _ := sk.EncryptInt64(rand.Reader, 40)
	got, _ := sk.DecryptSigned(sk.AddConst(a, big.NewInt(2)))
	if got.Int64() != 42 {
		t.Errorf("Enc(40)+2 = %v", got)
	}
	got, _ = sk.DecryptSigned(sk.AddConst(a, big.NewInt(-50)))
	if got.Int64() != -10 {
		t.Errorf("Enc(40)-50 = %v", got)
	}
}

func TestRerandomize(t *testing.T) {
	sk := key(t)
	a, _ := sk.EncryptInt64(rand.Reader, 9)
	b, err := sk.Rerandomize(rand.Reader, a)
	if err != nil {
		t.Fatal(err)
	}
	if a.C.Cmp(b.C) == 0 {
		t.Error("rerandomization should change the ciphertext")
	}
	got, _ := sk.DecryptSigned(b)
	if got.Int64() != 9 {
		t.Errorf("rerandomized ciphertext decrypts to %v", got)
	}
}

func TestRandomBlindPositive(t *testing.T) {
	sk := key(t)
	for i := 0; i < 20; i++ {
		r, err := sk.RandomBlind(rand.Reader, 40)
		if err != nil {
			t.Fatal(err)
		}
		if r.Sign() <= 0 || r.BitLen() > 40 {
			t.Fatalf("blind %v out of range", r)
		}
	}
}

// Property: the homomorphic identities of the paper's Section V-A —
// Dec(Enc(m1) +h Enc(m2)) = m1+m2 and Dec(k ×h Enc(m)) = k·m — hold for
// arbitrary signed 32-bit operands (products stay far from N/2 at 256
// bits).
func TestHomomorphicProperty(t *testing.T) {
	sk := key(t)
	f := func(m1, m2 int32, k int16) bool {
		a, err := sk.EncryptInt64(rand.Reader, int64(m1))
		if err != nil {
			return false
		}
		b, err := sk.EncryptInt64(rand.Reader, int64(m2))
		if err != nil {
			return false
		}
		sum, err := sk.DecryptSigned(sk.Add(a, b))
		if err != nil || sum.Int64() != int64(m1)+int64(m2) {
			return false
		}
		prod, err := sk.DecryptSigned(sk.MulConst(a, big.NewInt(int64(k))))
		if err != nil || prod.Int64() != int64(k)*int64(m1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
