package paillier

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
)

func TestPackPlanGeometry(t *testing.T) {
	plan, err := NewPackPlan(256, 100)
	if err != nil {
		t.Fatalf("NewPackPlan: %v", err)
	}
	if plan.Slots != 2 {
		t.Errorf("256-bit modulus, 100-bit slots: got %d slots, want 2", plan.Slots)
	}
	for _, tc := range []struct{ count, cts int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}} {
		if got := plan.Ciphertexts(tc.count); got != tc.cts {
			t.Errorf("Ciphertexts(%d) = %d, want %d", tc.count, got, tc.cts)
		}
	}
	if _, err := NewPackPlan(128, 200); err == nil {
		t.Error("slot wider than the modulus must be rejected")
	}
	if _, err := NewPackPlan(256, 1); err == nil {
		t.Error("1-bit slots must be rejected")
	}
}

// encryptSigned encrypts one signed value for the packing tests.
func encryptSigned(t *testing.T, sk *PrivateKey, v *big.Int) *Ciphertext {
	t.Helper()
	ct, err := sk.Encrypt(rand.Reader, sk.encodeSigned(v))
	if err != nil {
		t.Fatalf("Encrypt(%v): %v", v, err)
	}
	return ct
}

// packUnpack round-trips values through PackSigned/UnpackSigned.
func packUnpack(t *testing.T, sk *PrivateKey, plan PackPlan, values []*big.Int) []*big.Int {
	t.Helper()
	cts := make([]*Ciphertext, len(values))
	for i, v := range values {
		cts[i] = encryptSigned(t, sk, v)
	}
	packed, err := sk.PackSigned(cts, plan)
	if err != nil {
		t.Fatalf("PackSigned: %v", err)
	}
	if want := plan.Ciphertexts(len(values)); len(packed) != want {
		t.Fatalf("packed into %d ciphertexts, want %d", len(packed), want)
	}
	var out []*big.Int
	for c, ct := range packed {
		count := min(plan.Slots, len(values)-c*plan.Slots)
		vals, err := sk.UnpackSigned(ct, plan, count)
		if err != nil {
			t.Fatalf("UnpackSigned(ct %d): %v", c, err)
		}
		out = append(out, vals...)
	}
	return out
}

func TestPackSignedRoundTrip(t *testing.T) {
	sk := key(t)
	plan, err := NewPackPlan(sk.N.BitLen(), 64)
	if err != nil {
		t.Fatalf("NewPackPlan: %v", err)
	}
	bound := new(big.Int).Lsh(one, 63) // slot magnitude bound 2^{w-1}
	maxV := new(big.Int).Sub(bound, one)
	minV := new(big.Int).Neg(maxV)
	values := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(-1),
		big.NewInt(123456789), big.NewInt(-987654321),
		maxV, minV, // overflow boundary: the extreme representable slots
	}
	got := packUnpack(t, sk, plan, values)
	for i, v := range values {
		if got[i].Cmp(v) != 0 {
			t.Errorf("slot %d: %v -> %v", i, v, got[i])
		}
	}
}

func TestPackSignedSingleSlot(t *testing.T) {
	sk := key(t)
	// A slot nearly as wide as the modulus leaves exactly one slot per
	// ciphertext: packing degenerates to offset-plus-rerandomize.
	plan, err := NewPackPlan(sk.N.BitLen(), sk.N.BitLen()-1)
	if err != nil {
		t.Fatalf("NewPackPlan: %v", err)
	}
	if plan.Slots != 1 {
		t.Fatalf("got %d slots, want 1", plan.Slots)
	}
	values := []*big.Int{big.NewInt(-42), big.NewInt(7), big.NewInt(0)}
	got := packUnpack(t, sk, plan, values)
	for i, v := range values {
		if got[i].Cmp(v) != 0 {
			t.Errorf("slot %d: %v -> %v", i, v, got[i])
		}
	}
}

func TestUnpackDetectsOverflow(t *testing.T) {
	sk := key(t)
	plan, err := NewPackPlan(sk.N.BitLen(), 64)
	if err != nil {
		t.Fatalf("NewPackPlan: %v", err)
	}
	// A plaintext with a bit above the top slot cannot come from honest
	// packing; every slot count must reject it.
	over := new(big.Int).Lsh(one, uint(plan.Slots*plan.SlotBits))
	ct, err := sk.Encrypt(rand.Reader, over)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := sk.UnpackSigned(ct, plan, plan.Slots); !errors.Is(err, ErrPackedOverflow) {
		t.Errorf("got %v, want ErrPackedOverflow", err)
	}
}

func TestUnpackCountValidation(t *testing.T) {
	sk := key(t)
	plan, err := NewPackPlan(sk.N.BitLen(), 64)
	if err != nil {
		t.Fatalf("NewPackPlan: %v", err)
	}
	ct := encryptSigned(t, sk, big.NewInt(5))
	if _, err := sk.UnpackSigned(ct, plan, 0); err == nil {
		t.Error("count 0 must be rejected")
	}
	if _, err := sk.UnpackSigned(ct, plan, plan.Slots+1); err == nil {
		t.Error("count beyond the plan's slots must be rejected")
	}
}

// TestMulConstFastPathMatchesGeneric pins the small-exponent MulConst
// paths (direct small positive, inverted small negative) to the generic
// full-width-exponent computation they replace.
func TestMulConstFastPathMatchesGeneric(t *testing.T) {
	sk := key(t)
	ct := encryptSigned(t, sk, big.NewInt(17))
	for _, k := range []int64{0, 1, 3, 1 << 40, -1, -2, -7, -(1 << 40)} {
		kb := big.NewInt(k)
		got, err := sk.DecryptSigned(sk.MulConst(ct, kb))
		if err != nil {
			t.Fatalf("DecryptSigned(MulConst %d): %v", k, err)
		}
		generic := new(big.Int).Exp(ct.C, sk.encodeSigned(kb), sk.N2)
		want, err := sk.DecryptSigned(&Ciphertext{C: generic})
		if err != nil {
			t.Fatalf("DecryptSigned(generic %d): %v", k, err)
		}
		if got.Cmp(want) != 0 {
			t.Errorf("MulConst(%d): got %v, generic path %v", k, got, want)
		}
	}
}

// FuzzPackedSigned fuzzes the pack/unpack round trip over random slot
// widths, counts, and signed values, including the ±(2^{w-1}−1) overflow
// boundary and the single-slot degenerate geometry.
func FuzzPackedSigned(f *testing.F) {
	f.Add(uint8(64), uint8(3), int64(12345), true)
	f.Add(uint8(8), uint8(17), int64(-1), false)
	f.Add(uint8(200), uint8(2), int64(0), true)  // single-slot plan at 256 bits
	f.Add(uint8(2), uint8(40), int64(99), false) // minimal slot width
	f.Fuzz(func(t *testing.T, widthSeed, countSeed uint8, valueSeed int64, boundary bool) {
		sk := key(t)
		modBits := sk.N.BitLen()
		slotBits := 2 + int(widthSeed)%(modBits-2)
		plan, err := NewPackPlan(modBits, slotBits)
		if err != nil {
			t.Fatalf("NewPackPlan(%d, %d): %v", modBits, slotBits, err)
		}
		count := 1 + int(countSeed)%(3*plan.Slots)
		bound := new(big.Int).Lsh(one, uint(slotBits-1)) // values in (−2^{w-1}, 2^{w-1})
		span := new(big.Int).Sub(new(big.Int).Lsh(bound, 1), one)
		rng := mrand.New(mrand.NewSource(valueSeed))
		values := make([]*big.Int, count)
		for i := range values {
			if boundary && i%2 == 0 {
				// Extreme representable slot values, alternating sign.
				values[i] = new(big.Int).Sub(bound, one)
				if i%4 == 0 {
					values[i] = new(big.Int).Neg(values[i])
				}
			} else {
				v := new(big.Int).Rand(rng, span)
				values[i] = v.Sub(v, new(big.Int).Sub(bound, one))
			}
		}
		got := packUnpack(t, sk, plan, values)
		for i, v := range values {
			if got[i].Cmp(v) != 0 {
				t.Fatalf("w=%d count=%d slot %d: %v -> %v", slotBits, count, i, v, got[i])
			}
		}
	})
}
