package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// TestCRTMatchesDirect: the CRT fast path must agree with the direct
// Lambda/Mu decryption on every ciphertext.
func TestCRTMatchesDirect(t *testing.T) {
	sk := key(t)
	slow := &PrivateKey{ // same key without the factors: direct path
		PublicKey: sk.PublicKey,
		Lambda:    sk.Lambda,
		Mu:        sk.Mu,
	}
	f := func(v int64) bool {
		ct, err := sk.EncryptInt64(rand.Reader, v)
		if err != nil {
			return false
		}
		fast, err := sk.DecryptSigned(ct)
		if err != nil {
			return false
		}
		direct, err := slow.DecryptSigned(ct)
		if err != nil {
			return false
		}
		return fast.Cmp(direct) == 0 && fast.Int64() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCRTAfterHomomorphicOps(t *testing.T) {
	sk := key(t)
	a, _ := sk.EncryptInt64(rand.Reader, 1000)
	b, _ := sk.EncryptInt64(rand.Reader, -58)
	got, err := sk.DecryptSigned(sk.MulConst(sk.Add(a, b), big.NewInt(3)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 3*(1000-58) {
		t.Errorf("CRT decryption of homomorphic result = %v", got)
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	sk := key(t)
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored PrivateKey
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	ct, _ := sk.EncryptInt64(rand.Reader, 777)
	got, err := restored.DecryptSigned(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 777 {
		t.Errorf("restored key decrypts to %v", got)
	}
	// Restored key kept the CRT factors.
	if restored.P == nil || restored.Q == nil {
		t.Error("CRT factors lost in round trip")
	}

	// Public key round trip.
	pdata, err := sk.Public().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(pdata); err != nil {
		t.Fatal(err)
	}
	ct2, err := pk.EncryptInt64(rand.Reader, 41)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := sk.DecryptSigned(ct2); got.Int64() != 41 {
		t.Errorf("encryption under restored public key decrypts to %v", got)
	}
}

func TestKeyUnmarshalRejectsCorruption(t *testing.T) {
	sk := key(t)
	data, _ := sk.MarshalBinary()

	var broken PrivateKey
	if err := broken.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	// Tamper: flip Mu by re-encoding a wrong wireKey.
	bad := &PrivateKey{PublicKey: sk.PublicKey, Lambda: sk.Lambda, Mu: big.NewInt(12345), P: sk.P, Q: sk.Q}
	badData, _ := bad.MarshalBinary()
	if err := broken.UnmarshalBinary(badData); err == nil {
		t.Error("inconsistent Mu should fail validation")
	}
	// Tamper: wrong factors.
	bad2 := &PrivateKey{PublicKey: sk.PublicKey, Lambda: sk.Lambda, Mu: sk.Mu, P: big.NewInt(17), Q: big.NewInt(19)}
	badData2, _ := bad2.MarshalBinary()
	if err := broken.UnmarshalBinary(badData2); err == nil {
		t.Error("wrong CRT factors should fail validation")
	}
	_ = data
}

func TestKeyWithoutFactorsStillDecrypts(t *testing.T) {
	sk := key(t)
	noFactors := &PrivateKey{PublicKey: sk.PublicKey, Lambda: sk.Lambda, Mu: sk.Mu}
	data, err := noFactors.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored PrivateKey
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	ct, _ := sk.EncryptInt64(rand.Reader, -9)
	got, err := restored.DecryptSigned(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != -9 {
		t.Errorf("factor-less key decrypts to %v", got)
	}
}
