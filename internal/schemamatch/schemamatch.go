// Package schemamatch implements private schema matching, the
// preprocessing step the paper assumes (Section II: "If not, schemas of R
// and S can be matched using private schema matching techniques"): two
// data holders discover which attributes their schemas share — by name,
// kind, and domain fingerprint — without revealing anything about the
// attributes the other party does not have.
//
// The protocol is private set intersection over canonical attribute
// descriptors (package commutative); what leaks is only the intersection
// itself and the schema sizes.
package schemamatch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"pprl/internal/commutative"
	"pprl/internal/dataset"
)

// Descriptor canonicalizes one attribute: two attributes match exactly
// when their descriptors are byte-identical. The domain fingerprint
// covers the hierarchy's leaf labels (categorical) or the interval
// parameters (continuous), so "education over the Adult taxonomy" and
// "education over some other code list" do not spuriously match.
func Descriptor(a dataset.Attribute) string {
	var domain string
	if a.Kind == dataset.Categorical {
		leaves := append([]string(nil), a.Hierarchy.LeafValues()...)
		sort.Strings(leaves)
		sum := sha256.Sum256([]byte(strings.Join(leaves, "\x1f")))
		domain = hex.EncodeToString(sum[:8])
	} else {
		domain = fmt.Sprintf("%g:%g:%d:%d",
			a.Intervals.Min(), a.Intervals.Max(), a.Intervals.Branch(), a.Intervals.Depth())
	}
	return fmt.Sprintf("%s|%v|%s", a.Name, a.Kind, domain)
}

// Descriptors canonicalizes a whole schema in attribute order.
func Descriptors(s *dataset.Schema) []string {
	out := make([]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		out[i] = Descriptor(s.Attr(i))
	}
	return out
}

// Match runs private schema matching over the stream and returns the
// names of this party's attributes that the peer also holds, in schema
// order. Exactly one party passes initiator = true; both must use the
// same group.
func Match(rw io.ReadWriter, group *commutative.Group, schema *dataset.Schema, initiator bool, random io.Reader) ([]string, error) {
	descs := Descriptors(schema)
	elems := make([][]byte, len(descs))
	for i, d := range descs {
		elems[i] = []byte(d)
	}
	matched, err := commutative.Intersect(rw, group, elems, initiator, random)
	if err != nil {
		return nil, fmt.Errorf("schemamatch: %w", err)
	}
	names := make([]string, len(matched))
	for i, idx := range matched {
		names[i] = schema.Attr(idx).Name
	}
	return names, nil
}
