package schemamatch

import (
	"crypto/rand"
	"net"
	"sort"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/commutative"
	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

func group(t testing.TB) *commutative.Group {
	t.Helper()
	g, err := commutative.NewGroup(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDescriptorDistinguishesDomains(t *testing.T) {
	eduA := vgh.Flat("education", "ANY", "a", "b")
	eduB := vgh.Flat("education", "ANY", "a", "c") // same name, other domain
	dA := Descriptor(dataset.CatAttr(eduA))
	dB := Descriptor(dataset.CatAttr(eduB))
	if dA == dB {
		t.Error("different domains must yield different descriptors")
	}
	if dA != Descriptor(dataset.CatAttr(vgh.Flat("education", "ANY", "b", "a"))) {
		t.Error("leaf order must not affect the descriptor")
	}
	num := Descriptor(dataset.NumAttr(vgh.MustIntervalHierarchy("education", 0, 10, 2, 1)))
	if num == dA {
		t.Error("kind must affect the descriptor")
	}
}

func TestMatchSharedAttributes(t *testing.T) {
	g := group(t)
	// Alice: the full Adult schema. Bob: a hospital schema sharing only
	// some attributes (same hierarchies) plus private ones.
	aliceSchema := adult.Schema()
	bobSchema := dataset.MustSchema(
		dataset.NumAttr(adult.AgeHierarchy()),
		dataset.CatAttr(adult.SexHierarchy()),
		dataset.CatAttr(vgh.Flat("diagnosis", "ANY", "flu", "ok")),
		dataset.CatAttr(adult.EducationHierarchy()),
	)

	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	type res struct {
		names []string
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		names, err := Match(cb, g, bobSchema, false, rand.Reader)
		ch <- res{names, err}
	}()
	aliceNames, err := Match(ca, g, aliceSchema, true, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob := <-ch
	if bob.err != nil {
		t.Fatal(bob.err)
	}
	sort.Strings(aliceNames)
	sort.Strings(bob.names)
	want := []string{"age", "education", "sex"}
	if len(aliceNames) != 3 || len(bob.names) != 3 {
		t.Fatalf("matched %v / %v, want %v", aliceNames, bob.names, want)
	}
	for i := range want {
		if aliceNames[i] != want[i] || bob.names[i] != want[i] {
			t.Fatalf("matched %v / %v, want %v", aliceNames, bob.names, want)
		}
	}
	// Bob's private "diagnosis" never matched — and Alice has no way to
	// know it exists beyond the set size, by the PSI guarantee.
}

func TestMatchDisjointSchemas(t *testing.T) {
	g := group(t)
	a := dataset.MustSchema(dataset.CatAttr(vgh.Flat("x", "ANY", "1")))
	b := dataset.MustSchema(dataset.CatAttr(vgh.Flat("y", "ANY", "1")))
	ca, cb := net.Pipe()
	defer ca.Close()
	defer cb.Close()
	ch := make(chan []string, 1)
	go func() {
		names, _ := Match(cb, g, b, false, rand.Reader)
		ch <- names
	}()
	names, err := Match(ca, g, a, true, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 || len(<-ch) != 0 {
		t.Error("disjoint schemas must not match")
	}
}
