package anonymize

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

// The view exchange format is what a data holder actually publishes in
// the hybrid protocol: generalization sequences, class membership (record
// indexes — the handles the SMC step addresses records by), and the
// anonymization parameters. It deliberately cannot carry raw cell values.
//
// Layout (tab-separated lines):
//
//	pprl-view	1
//	method	Entropy
//	k	32
//	qids	age	workclass	…
//	suppressed	4	17            (optional)
//	dp	0.5	1e-06	2             (optional: ε δ level)
//	noised	12,9,31               (optional: published bin sizes, class order)
//	class	c:Masters␟n:35:37	0,1,2
//	…
//
// Sequence values are prefixed by kind — c: categorical label,
// n:<lo>:<hi> interval, p:<v> point — and joined with the unit separator
// (U+001F), so labels containing spaces or punctuation round-trip.
// The dp/noised pair appears only on views published by the DP binner;
// a view carrying one without the other is rejected. Two things about a
// DP release deliberately never appear on the wire: the noise seed
// (anyone holding it could recompute each bin's padding and subtract it,
// recovering the true counts — it stays with the holder, like the tier
// key), and the true class sizes (member lists must already be padded to
// the noised counts by dpblock.Pad, so every class lists exactly its
// published size in dummy-interleaved handles; a DP view whose member
// counts disagree with its noised counts is rejected on both ends).

const viewMagic = "pprl-view"

// WriteView serializes an anonymized view against its schema.
func WriteView(w io.Writer, schema *dataset.Schema, res *Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\t1\n", viewMagic)
	fmt.Fprintf(bw, "method\t%s\n", res.Method)
	fmt.Fprintf(bw, "k\t%d\n", res.K)
	names := make([]string, len(res.QIDs))
	for i, q := range res.QIDs {
		names[i] = schema.Attr(q).Name
	}
	fmt.Fprintf(bw, "qids\t%s\n", strings.Join(names, "\t"))
	if len(res.Suppressed) > 0 {
		parts := make([]string, len(res.Suppressed))
		for i, s := range res.Suppressed {
			parts[i] = strconv.Itoa(s)
		}
		fmt.Fprintf(bw, "suppressed\t%s\n", strings.Join(parts, "\t"))
	}
	if res.DP != nil {
		if len(res.DP.NoisedCounts) != len(res.Classes) {
			return fmt.Errorf("anonymize: DP view has %d noised counts for %d classes",
				len(res.DP.NoisedCounts), len(res.Classes))
		}
		for i, c := range res.Classes {
			if int64(len(c.Members)) != res.DP.NoisedCounts[i] {
				return fmt.Errorf("anonymize: DP class %d lists %d members for noised count %d; pad the release (dpblock.Pad) before serializing",
					i, len(c.Members), res.DP.NoisedCounts[i])
			}
		}
		fmt.Fprintf(bw, "dp\t%s\t%s\t%d\n",
			strconv.FormatFloat(res.DP.Epsilon, 'g', -1, 64),
			strconv.FormatFloat(res.DP.Delta, 'g', -1, 64),
			res.DP.Level)
		counts := make([]string, len(res.DP.NoisedCounts))
		for i, n := range res.DP.NoisedCounts {
			counts[i] = strconv.FormatInt(n, 10)
		}
		fmt.Fprintf(bw, "noised\t%s\n", strings.Join(counts, ","))
	}
	for ci, c := range res.Classes {
		vals := make([]string, len(c.Sequence))
		for i, v := range c.Sequence {
			vals[i] = encodeValue(v)
		}
		members := make([]string, len(c.Members))
		for i, m := range c.Members {
			members[i] = strconv.Itoa(m)
		}
		if _, err := fmt.Fprintf(bw, "class\t%s\t%s\n",
			strings.Join(vals, "\x1f"), strings.Join(members, ",")); err != nil {
			return fmt.Errorf("anonymize: writing class %d: %w", ci, err)
		}
	}
	return bw.Flush()
}

// ReadView parses a view written by WriteView, resolving categorical
// labels against the schema's hierarchies and rebuilding the ClassOf
// index.
func ReadView(r io.Reader, schema *dataset.Schema) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	next := func() ([]string, bool) {
		for sc.Scan() {
			line++
			text := sc.Text()
			if text == "" {
				continue
			}
			return strings.Split(text, "\t"), true
		}
		return nil, false
	}
	fields, ok := next()
	if !ok || len(fields) < 2 || fields[0] != viewMagic || fields[1] != "1" {
		return nil, fmt.Errorf("anonymize: not a pprl-view v1 file")
	}
	res := &Result{}
	maxMember, totalMembers := -1, 0
	for {
		fields, ok := next()
		if !ok {
			break
		}
		switch fields[0] {
		case "method":
			if len(fields) != 2 {
				return nil, fmt.Errorf("anonymize: line %d: malformed method", line)
			}
			res.Method = fields[1]
		case "k":
			if len(fields) != 2 {
				return nil, fmt.Errorf("anonymize: line %d: malformed k", line)
			}
			k, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("anonymize: line %d: bad k: %w", line, err)
			}
			res.K = k
		case "qids":
			for _, name := range fields[1:] {
				idx, ok := schema.Index(name)
				if !ok {
					return nil, fmt.Errorf("anonymize: line %d: schema has no attribute %q", line, name)
				}
				res.QIDs = append(res.QIDs, idx)
			}
		case "suppressed":
			for _, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("anonymize: line %d: bad suppressed index: %w", line, err)
				}
				res.Suppressed = append(res.Suppressed, v)
			}
		case "dp":
			if len(fields) != 4 {
				return nil, fmt.Errorf("anonymize: line %d: dp needs ε, δ and level", line)
			}
			eps, err1 := strconv.ParseFloat(fields[1], 64)
			delta, err2 := strconv.ParseFloat(fields[2], 64)
			level, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("anonymize: line %d: malformed dp directive", line)
			}
			// The delta range mirrors dpblock.Params: a published release
			// always carries a concrete δ in (0, 0.5) (zero is only a
			// config-time "use the default"), so anything else is a view
			// the pipeline could never have produced.
			if !(eps > 0) || !(delta > 0) || delta >= 0.5 || level < 0 {
				return nil, fmt.Errorf("anonymize: line %d: dp parameters out of range (ε=%v δ=%v level=%d; want ε>0, δ in (0,0.5), level≥0)", line, eps, delta, level)
			}
			counts := []int64(nil)
			if res.DP != nil {
				counts = res.DP.NoisedCounts
			}
			res.DP = &DPInfo{Epsilon: eps, Delta: delta, Level: level, NoisedCounts: counts}
		case "noised":
			if len(fields) != 2 {
				return nil, fmt.Errorf("anonymize: line %d: malformed noised counts", line)
			}
			var counts []int64
			for _, f := range strings.Split(fields[1], ",") {
				n, err := strconv.ParseInt(f, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("anonymize: line %d: bad noised count %q", line, f)
				}
				counts = append(counts, n)
			}
			if res.DP == nil {
				res.DP = &DPInfo{NoisedCounts: counts}
			} else {
				res.DP.NoisedCounts = counts
			}
		case "class":
			if len(fields) != 3 {
				return nil, fmt.Errorf("anonymize: line %d: class needs sequence and members", line)
			}
			if len(res.QIDs) == 0 {
				return nil, fmt.Errorf("anonymize: line %d: class before qids", line)
			}
			rawVals := strings.Split(fields[1], "\x1f")
			if len(rawVals) != len(res.QIDs) {
				return nil, fmt.Errorf("anonymize: line %d: %d values for %d QIDs", line, len(rawVals), len(res.QIDs))
			}
			seq := make(vgh.Sequence, len(rawVals))
			for i, raw := range rawVals {
				v, err := decodeValue(schema.Attr(res.QIDs[i]), raw)
				if err != nil {
					return nil, fmt.Errorf("anonymize: line %d: %w", line, err)
				}
				seq[i] = v
			}
			var members []int
			for _, f := range strings.Split(fields[2], ",") {
				m, err := strconv.Atoi(f)
				if err != nil || m < 0 {
					return nil, fmt.Errorf("anonymize: line %d: bad member %q", line, f)
				}
				if m > maxMember {
					maxMember = m
				}
				totalMembers++
				members = append(members, m)
			}
			res.Classes = append(res.Classes, Class{Sequence: seq, Members: members})
		default:
			return nil, fmt.Errorf("anonymize: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("anonymize: reading view: %w", err)
	}
	if len(res.Classes) == 0 {
		return nil, fmt.Errorf("anonymize: view has no classes")
	}
	if res.DP != nil {
		if !(res.DP.Epsilon > 0) {
			return nil, fmt.Errorf("anonymize: noised counts without a dp directive")
		}
		if len(res.DP.NoisedCounts) != len(res.Classes) {
			return nil, fmt.Errorf("anonymize: dp view has %d noised counts for %d classes",
				len(res.DP.NoisedCounts), len(res.Classes))
		}
		// A DP view on the wire is always padded: exactly the noised
		// count of handles per class. Accepting fewer would mean the true
		// bin size arrived alongside the noised one, voiding the release.
		for i, c := range res.Classes {
			if res.DP.NoisedCounts[i] != int64(len(c.Members)) {
				return nil, fmt.Errorf("anonymize: class %d lists %d members for noised count %d (DP views must be padded)",
					i, len(c.Members), res.DP.NoisedCounts[i])
			}
		}
	}
	// Record indexes must cover 0..maxMember exactly once (gaps and
	// duplicates are both rejected below), so a consistent view has
	// maxMember+1 == totalMembers. Checking the cheap direction first
	// bounds the ClassOf allocation by the number of parsed member
	// tokens — a hostile view cannot name record 10¹² and force a
	// terabyte-sized index.
	if maxMember+1 > totalMembers {
		return nil, fmt.Errorf("anonymize: view references record %d but lists only %d members", maxMember, totalMembers)
	}
	res.ClassOf = make([]int, maxMember+1)
	for i := range res.ClassOf {
		res.ClassOf[i] = -1
	}
	for ci, c := range res.Classes {
		for _, m := range c.Members {
			if res.ClassOf[m] != -1 {
				return nil, fmt.Errorf("anonymize: record %d appears in classes %d and %d", m, res.ClassOf[m], ci)
			}
			res.ClassOf[m] = ci
		}
	}
	for m, ci := range res.ClassOf {
		if ci == -1 {
			return nil, fmt.Errorf("anonymize: record %d missing from the view", m)
		}
	}
	return res, nil
}

func encodeValue(v vgh.Value) string {
	if v.Node != nil {
		return "c:" + v.Node.Value
	}
	if v.Iv.IsPoint() {
		return "p:" + strconv.FormatFloat(v.Iv.Lo, 'g', -1, 64)
	}
	return fmt.Sprintf("n:%s:%s",
		strconv.FormatFloat(v.Iv.Lo, 'g', -1, 64),
		strconv.FormatFloat(v.Iv.Hi, 'g', -1, 64))
}

func decodeValue(attr dataset.Attribute, raw string) (vgh.Value, error) {
	switch {
	case strings.HasPrefix(raw, "c:"):
		if attr.Kind != dataset.Categorical {
			return vgh.Value{}, fmt.Errorf("categorical value for continuous attribute %q", attr.Name)
		}
		label := raw[2:]
		n := attr.Hierarchy.Lookup(label)
		if n == nil {
			return vgh.Value{}, fmt.Errorf("attribute %q has no value %q", attr.Name, label)
		}
		return vgh.CatValue(n), nil
	case strings.HasPrefix(raw, "p:"):
		if attr.Kind != dataset.Continuous {
			return vgh.Value{}, fmt.Errorf("numeric value for categorical attribute %q", attr.Name)
		}
		v, err := strconv.ParseFloat(raw[2:], 64)
		if err != nil {
			return vgh.Value{}, fmt.Errorf("bad point value %q: %w", raw, err)
		}
		return vgh.NumValue(vgh.Point(v)), nil
	case strings.HasPrefix(raw, "n:"):
		if attr.Kind != dataset.Continuous {
			return vgh.Value{}, fmt.Errorf("numeric value for categorical attribute %q", attr.Name)
		}
		parts := strings.Split(raw[2:], ":")
		if len(parts) != 2 {
			return vgh.Value{}, fmt.Errorf("bad interval %q", raw)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		if err1 != nil || err2 != nil || hi < lo {
			return vgh.Value{}, fmt.Errorf("bad interval %q", raw)
		}
		return vgh.NumValue(vgh.Interval{Lo: lo, Hi: hi}), nil
	default:
		return vgh.Value{}, fmt.Errorf("unknown value encoding %q", raw)
	}
}
