package anonymize

import (
	"math"
	"sort"

	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

// partition is a working set of records that currently share a
// generalization sequence.
type partition struct {
	seq     vgh.Sequence
	members []int
}

// split is one candidate specialization of a partition on one attribute:
// the child groups the members fall into, keyed deterministically.
type split struct {
	attr   int // index into qids
	keys   []string
	groups map[string]*partition
}

// topDown is the shared recursive specialization engine behind TDS and
// MaxEntropy. Starting from the fully generalized partition, it repeatedly
// picks, per partition, the best valid specialization according to score,
// until no specialization is valid (every child group must keep ≥ k
// records) and beneficial (score reports ok).
type topDown struct {
	name string
	// score rates a candidate split; ok=false marks it not beneficial.
	score func(d *dataset.Dataset, p *partition, s *split) (float64, bool)
	// contLevelLimit caps how deep continuous attributes may specialize:
	// 0 means unlimited (leaf intervals, then exact points); a positive
	// limit L stops at interval level L, reproducing TDS's shallow
	// on-the-fly hierarchies for continuous attributes (the paper's
	// disadvantage (3) of TDS for blocking).
	contLevelLimit int
	// extraValid, when set, adds a per-child-group validity condition on
	// top of the ≥ k size requirement (used by the l-diversity
	// extension).
	extraValid func(members []int) bool
}

func (t *topDown) Name() string { return t.name }

// Anonymize implements Anonymizer.
func (t *topDown) Anonymize(d *dataset.Dataset, qids []int, k int) (*Result, error) {
	if err := validateInputs(d, qids, k); err != nil {
		return nil, err
	}
	all := make([]int, d.Len())
	for i := range all {
		all[i] = i
	}
	seqs := make([]vgh.Sequence, d.Len())
	queue := []*partition{{seq: rootSequence(d.Schema(), qids), members: all}}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		best := t.bestSplit(d, qids, p, k)
		if best == nil {
			for _, m := range p.members {
				seqs[m] = p.seq
			}
			continue
		}
		for _, key := range best.keys {
			queue = append(queue, best.groups[key])
		}
	}
	return buildResult(t.name, k, qids, seqs, nil), nil
}

// bestSplit returns the highest-scoring valid, beneficial specialization
// of p, or nil if none exists.
func (t *topDown) bestSplit(d *dataset.Dataset, qids []int, p *partition, k int) *split {
	var best *split
	bestScore := math.Inf(-1)
	for j := range qids {
		s := t.childGroups(d, qids, p, j)
		if s == nil {
			continue
		}
		valid := true
		for _, g := range s.groups {
			if len(g.members) < k || (t.extraValid != nil && !t.extraValid(g.members)) {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		score, ok := t.score(d, p, s)
		if !ok {
			continue
		}
		if score > bestScore {
			bestScore, best = score, s
		}
	}
	return best
}

// childGroups computes the specialization of p on QID j, or nil when the
// value is already fully specialized (or capped for continuous values).
func (t *topDown) childGroups(d *dataset.Dataset, qids []int, p *partition, j int) *split {
	attr := d.Schema().Attr(qids[j])
	cur := p.seq[j]
	s := &split{attr: j, groups: make(map[string]*partition)}
	add := func(key string, v vgh.Value, member int) {
		g, ok := s.groups[key]
		if !ok {
			child := p.seq.Clone()
			child[j] = v
			g = &partition{seq: child}
			s.groups[key] = g
			s.keys = append(s.keys, key)
		}
		g.members = append(g.members, member)
	}
	switch attr.Kind {
	case dataset.Categorical:
		if cur.Node.IsLeaf() {
			return nil
		}
		h := attr.Hierarchy
		for _, m := range p.members {
			leaf := d.Record(m).Cells[qids[j]].Node
			child := h.GeneralizeToDepth(leaf, cur.Node.Depth()+1)
			add(child.Value, vgh.CatValue(child), m)
		}
	case dataset.Continuous:
		ih := attr.Intervals
		level := ih.LevelOf(cur.Iv)
		limit := ih.Depth() + 1 // points allowed by default
		if t.contLevelLimit > 0 && t.contLevelLimit < limit {
			limit = t.contLevelLimit
		}
		if level >= limit {
			return nil
		}
		if level >= ih.Depth() {
			// Specialize the leaf interval to the exact values present.
			for _, m := range p.members {
				v := d.Record(m).Cells[qids[j]].Num
				pt := vgh.Point(v)
				add(pt.String(), vgh.NumValue(pt), m)
			}
		} else {
			for _, m := range p.members {
				v := d.Record(m).Cells[qids[j]].Num
				child := ih.At(v, level+1)
				add(child.String(), vgh.NumValue(child), m)
			}
		}
	}
	// A "split" into zero groups cannot happen (members non-empty); a
	// single-group split is legal and keeps the partition together at a
	// more specific value.
	sort.Strings(s.keys)
	return s
}

// entropy returns the Shannon entropy (nats) of the member distribution
// across the split's child groups.
func (s *split) entropy() float64 {
	total := 0
	for _, g := range s.groups {
		total += len(g.members)
	}
	h := 0.0
	for _, g := range s.groups {
		p := float64(len(g.members)) / float64(total)
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// classEntropy returns the Shannon entropy of the Class-label distribution
// over the given records.
func classEntropy(d *dataset.Dataset, members []int) float64 {
	counts := make(map[string]int)
	for _, m := range members {
		counts[d.Record(m).Class]++
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(len(members))
		h -= p * math.Log(p)
	}
	return h
}

// NewMaxEntropy builds the paper's anonymizer (Section VI-A): top-down
// specialization where every specialization is beneficial and, at each
// step, the attribute with maximum entropy is chosen, heuristically
// maximizing the number of distinct generalization sequences and hence
// blocking efficiency.
func NewMaxEntropy() Anonymizer {
	return &topDown{
		name: "Entropy",
		score: func(_ *dataset.Dataset, _ *partition, s *split) (float64, bool) {
			// Tie-break single-group splits (entropy 0) below real splits
			// but keep them beneficial, per the paper: "every
			// specialization is considered beneficial".
			return s.entropy(), true
		},
	}
}

// NewTDS builds Fung et al.'s top-down specialization anonymizer: the
// specialization maximizing information gain with respect to the class
// label is chosen; zero-gain specializations are not performed, and
// continuous attributes specialize only through a shallow on-the-fly
// hierarchy (level 1), reproducing the disadvantages the paper lists for
// blocking purposes.
func NewTDS() Anonymizer {
	return &topDown{
		name:           "TDS",
		contLevelLimit: 1,
		score: func(d *dataset.Dataset, p *partition, s *split) (float64, bool) {
			base := classEntropy(d, p.members)
			cond := 0.0
			for _, g := range s.groups {
				w := float64(len(g.members)) / float64(len(p.members))
				cond += w * classEntropy(d, g.members)
			}
			gain := base - cond
			return gain, gain > 1e-12
		},
	}
}

// NewMondrian builds a Mondrian-style multidimensional partitioner
// (LeFevre et al., related work): it recursively splits the partition on
// the attribute with the widest normalized spread — at the median for
// continuous attributes (arbitrary cut points, not hierarchy levels) and
// through the taxonomy for categorical ones. Included as an extension for
// ablation against the hierarchy-bound methods.
func NewMondrian() Anonymizer { return &mondrian{} }

type mondrian struct{}

func (m *mondrian) Name() string { return "Mondrian" }

func (m *mondrian) Anonymize(d *dataset.Dataset, qids []int, k int) (*Result, error) {
	if err := validateInputs(d, qids, k); err != nil {
		return nil, err
	}
	all := make([]int, d.Len())
	for i := range all {
		all[i] = i
	}
	seqs := make([]vgh.Sequence, d.Len())
	var recurse func(p *partition)
	recurse = func(p *partition) {
		if sub := m.bestSplit(d, qids, p, k); sub != nil {
			for _, g := range sub {
				recurse(g)
			}
			return
		}
		for _, r := range p.members {
			seqs[r] = p.seq
		}
	}
	recurse(&partition{seq: rootSequence(d.Schema(), qids), members: all})
	return buildResult(m.Name(), k, qids, seqs, nil), nil
}

// bestSplit picks the widest-spread attribute whose split keeps every side
// at ≥ k records. Returns nil when the partition can no longer split.
func (m *mondrian) bestSplit(d *dataset.Dataset, qids []int, p *partition, k int) []*partition {
	type cand struct {
		spread float64
		groups []*partition
	}
	var best *cand
	for j, q := range qids {
		attr := d.Schema().Attr(q)
		var groups []*partition
		var spread float64
		if attr.Kind == dataset.Continuous {
			groups, spread = m.medianSplit(d, q, j, p)
			spread /= attr.Intervals.Range()
		} else {
			td := topDown{}
			s := td.childGroups(d, qids, p, j)
			if s == nil {
				continue
			}
			for _, key := range s.keys {
				groups = append(groups, s.groups[key])
			}
			spread = float64(p.seq[j].Node.LeafCount()) / float64(attr.Hierarchy.NumLeaves())
		}
		if len(groups) < 2 {
			continue
		}
		ok := true
		for _, g := range groups {
			if len(g.members) < k {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || spread > best.spread {
			best = &cand{spread: spread, groups: groups}
		}
	}
	if best == nil {
		return nil
	}
	return best.groups
}

// medianSplit cuts the partition's continuous values at the median into
// two sub-intervals and reports the value spread.
func (m *mondrian) medianSplit(d *dataset.Dataset, q, j int, p *partition) ([]*partition, float64) {
	vals := make([]float64, len(p.members))
	for i, r := range p.members {
		vals[i] = d.Record(r).Cells[q].Num
	}
	sort.Float64s(vals)
	lo, hi := vals[0], vals[len(vals)-1]
	if lo == hi {
		return nil, 0
	}
	median := vals[len(vals)/2]
	if median == lo {
		// Degenerate median; cut just above the minimum instead.
		i := sort.SearchFloat64s(vals, lo+1e-12)
		if i >= len(vals) {
			return nil, 0
		}
		median = vals[i]
	}
	cur := p.seq[j].Iv
	left := &partition{seq: p.seq.Clone()}
	right := &partition{seq: p.seq.Clone()}
	left.seq[j] = vgh.NumValue(vgh.Interval{Lo: cur.Lo, Hi: median})
	right.seq[j] = vgh.NumValue(vgh.Interval{Lo: median, Hi: cur.Hi})
	for _, r := range p.members {
		if d.Record(r).Cells[q].Num < median {
			left.members = append(left.members, r)
		} else {
			right.members = append(right.members, r)
		}
	}
	return []*partition{left, right}, hi - lo
}
