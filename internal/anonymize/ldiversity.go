package anonymize

import (
	"fmt"

	"pprl/internal/dataset"
)

// NewLDiverseEntropy extends the paper's max-entropy anonymizer with
// distinct l-diversity (Machanavajjhala et al., cited as [10] in the
// paper's related work): every equivalence class must contain at least l
// distinct values of the sensitive attribute, so lack of diversity cannot
// leak the sensitive value even when an attacker pins down someone's
// class. The sensitive value is the record's Class label.
//
// Specializations that would create a class with fewer than l distinct
// sensitive values are invalid, exactly like k-size violations, so the
// output satisfies both k-anonymity and l-diversity. l = 1 degenerates to
// plain max-entropy anonymization.
func NewLDiverseEntropy(l int) Anonymizer {
	base := NewMaxEntropy().(*topDown)
	return &lDiverse{topDown: base, l: l}
}

type lDiverse struct {
	*topDown
	l int
}

func (a *lDiverse) Name() string { return fmt.Sprintf("Entropy+%d-diverse", a.l) }

// Anonymize implements Anonymizer. It reuses the top-down engine with a
// diversity-aware validity check and then verifies the guarantee,
// returning an error when the data cannot satisfy it at all (fewer than l
// distinct sensitive values overall).
func (a *lDiverse) Anonymize(d *dataset.Dataset, qids []int, k int) (*Result, error) {
	if a.l < 1 {
		return nil, fmt.Errorf("anonymize: l must be ≥ 1, got %d", a.l)
	}
	if got := distinctClasses(d, allRecords(d)); got < a.l {
		return nil, fmt.Errorf("anonymize: dataset has %d distinct sensitive values, cannot be %d-diverse", got, a.l)
	}
	engine := &topDown{
		name:           a.Name(),
		score:          a.topDown.score,
		contLevelLimit: a.topDown.contLevelLimit,
		extraValid: func(members []int) bool {
			return distinctClasses(d, members) >= a.l
		},
	}
	res, err := engine.Anonymize(d, qids, k)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Diversity returns the minimum number of distinct sensitive (Class)
// values over the result's equivalence classes — the achieved l.
func Diversity(d *dataset.Dataset, res *Result) int {
	min := -1
	for _, c := range res.Classes {
		n := distinctClasses(d, c.Members)
		if min == -1 || n < min {
			min = n
		}
	}
	return min
}

func distinctClasses(d *dataset.Dataset, members []int) int {
	seen := make(map[string]struct{})
	for _, m := range members {
		seen[d.Record(m).Class] = struct{}{}
	}
	return len(seen)
}

func allRecords(d *dataset.Dataset) []int {
	out := make([]int, d.Len())
	for i := range out {
		out[i] = i
	}
	return out
}
