package anonymize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pprl/internal/adult"
	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

func adultSample(t testing.TB, n int) (*dataset.Dataset, []int) {
	t.Helper()
	d := adult.Generate(n, 1234)
	qids, err := d.Schema().Resolve(adult.DefaultQIDs())
	if err != nil {
		t.Fatal(err)
	}
	return d, qids
}

func allAnonymizers() []Anonymizer {
	return []Anonymizer{NewMaxEntropy(), NewTDS(), NewDataFly(), NewMondrian()}
}

func TestAnonymizersSatisfyK(t *testing.T) {
	d, qids := adultSample(t, 400)
	for _, a := range allAnonymizers() {
		for _, k := range []int{2, 8, 32} {
			res, err := a.Anonymize(d, qids, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", a.Name(), k, err)
			}
			if err := res.Validate(d); err != nil {
				t.Errorf("%s k=%d: %v", a.Name(), k, err)
			}
			if min := res.MinClassSize(); min < k && res.NumSequences() > 1 {
				t.Errorf("%s k=%d: min class size %d", a.Name(), k, min)
			}
			if len(res.Suppressed) > k {
				t.Errorf("%s k=%d: %d suppressed records, want ≤ k", a.Name(), k, len(res.Suppressed))
			}
		}
	}
}

func TestK1IsIdentityForTopDown(t *testing.T) {
	// Paper Section III extreme scenario (1): k=1 means the anonymized
	// relation is (effectively) the original relation — every sequence
	// value is fully specific.
	d, qids := adultSample(t, 60)
	for _, a := range []Anonymizer{NewMaxEntropy(), NewDataFly()} {
		res, err := a.Anonymize(d, qids, 1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		for i := 0; i < d.Len(); i++ {
			seq := res.SequenceOf(i)
			for j, q := range qids {
				if !seq[j].IsSpecific() {
					t.Fatalf("%s: record %d attr %s generalized to %v at k=1",
						a.Name(), i, d.Schema().Attr(q).Name, seq[j])
				}
			}
		}
	}
}

func TestKEqualsNIsRoot(t *testing.T) {
	// Extreme scenario (2): k=|R| forces (close to) the fully general
	// sequence; with k=n a single class must hold everyone.
	d, qids := adultSample(t, 50)
	for _, a := range allAnonymizers() {
		res, err := a.Anonymize(d, qids, d.Len())
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.NumSequences() != 1 {
			t.Errorf("%s: %d sequences at k=n, want 1", a.Name(), res.NumSequences())
		}
	}
}

func TestSequencesDecreaseWithK(t *testing.T) {
	d, qids := adultSample(t, 600)
	for _, a := range allAnonymizers() {
		loose, err := a.Anonymize(d, qids, 2)
		if err != nil {
			t.Fatal(err)
		}
		tight, err := a.Anonymize(d, qids, 64)
		if err != nil {
			t.Fatal(err)
		}
		if loose.NumSequences() < tight.NumSequences() {
			t.Errorf("%s: sequences k=2 (%d) < k=64 (%d); Figure 2 trend violated",
				a.Name(), loose.NumSequences(), tight.NumSequences())
		}
	}
}

func TestEntropyBeatsTDSAndDataFlyAtLowK(t *testing.T) {
	// The paper's Figure 2 claim: the max-entropy metric yields more
	// generalization sequences than DataFly and TDS for low k.
	d, qids := adultSample(t, 800)
	k := 8
	ent, _ := NewMaxEntropy().Anonymize(d, qids, k)
	tds, _ := NewTDS().Anonymize(d, qids, k)
	fly, _ := NewDataFly().Anonymize(d, qids, k)
	if ent.NumSequences() <= tds.NumSequences() {
		t.Errorf("Entropy (%d) should beat TDS (%d) at k=%d", ent.NumSequences(), tds.NumSequences(), k)
	}
	if ent.NumSequences() <= fly.NumSequences() {
		t.Errorf("Entropy (%d) should beat DataFly (%d) at k=%d", ent.NumSequences(), fly.NumSequences(), k)
	}
}

func TestTDSWithoutClassLabels(t *testing.T) {
	// With no class labels every split has zero information gain; TDS
	// performs no specialization at all (paper disadvantage (1)).
	d, qids := adultSample(t, 100)
	stripped := dataset.New(d.Schema())
	for _, r := range d.Records() {
		r.Class = ""
		stripped.MustAppend(r)
	}
	res, err := NewTDS().Anonymize(stripped, qids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSequences() != 1 {
		t.Errorf("TDS without labels produced %d sequences, want 1 (no beneficial splits)", res.NumSequences())
	}
}

func TestInputValidation(t *testing.T) {
	d, qids := adultSample(t, 20)
	empty := dataset.New(d.Schema())
	for _, a := range allAnonymizers() {
		if _, err := a.Anonymize(empty, qids, 2); err == nil {
			t.Errorf("%s: empty dataset should fail", a.Name())
		}
		if _, err := a.Anonymize(d, nil, 2); err == nil {
			t.Errorf("%s: empty QIDs should fail", a.Name())
		}
		if _, err := a.Anonymize(d, []int{99}, 2); err == nil {
			t.Errorf("%s: out-of-range QID should fail", a.Name())
		}
		if _, err := a.Anonymize(d, qids, 0); err == nil {
			t.Errorf("%s: k=0 should fail", a.Name())
		}
		if _, err := a.Anonymize(d, qids, d.Len()+1); err == nil {
			t.Errorf("%s: k>n should fail", a.Name())
		}
	}
}

func TestResultAccessors(t *testing.T) {
	d, qids := adultSample(t, 120)
	res, err := NewMaxEntropy().Anonymize(d, qids, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "Entropy" || res.K != 8 {
		t.Errorf("metadata: %q k=%d", res.Method, res.K)
	}
	if res.AvgClassSize() < 8 {
		t.Errorf("AvgClassSize %v < k", res.AvgClassSize())
	}
	if res.Discernibility() < d.Len() {
		t.Errorf("Discernibility %d < n", res.Discernibility())
	}
	total := 0
	for _, c := range res.Classes {
		total += c.Size()
	}
	if total != d.Len() {
		t.Errorf("classes cover %d records, want %d", total, d.Len())
	}
}

func TestDeterminism(t *testing.T) {
	d, qids := adultSample(t, 300)
	for _, a := range allAnonymizers() {
		r1, err := a.Anonymize(d, qids, 16)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a.Anonymize(d, qids, 16)
		if err != nil {
			t.Fatal(err)
		}
		if r1.NumSequences() != r2.NumSequences() {
			t.Fatalf("%s: nondeterministic sequence count", a.Name())
		}
		for i := range r1.Classes {
			if !r1.Classes[i].Sequence.Equal(r2.Classes[i].Sequence) {
				t.Fatalf("%s: class %d sequences differ between runs", a.Name(), i)
			}
		}
	}
}

// Property: on random small datasets over a toy schema, every algorithm
// produces a structurally valid k-anonymous result (generalization
// accuracy — the Covers invariant — included).
func TestAnonymizersValidProperty(t *testing.T) {
	edu := vgh.MustParse("edu", `ANY
  Low
    a
    b
  High
    c
    d
`)
	ih := vgh.MustIntervalHierarchy("num", 0, 32, 2, 2)
	schema := dataset.MustSchema(dataset.CatAttr(edu), dataset.NumAttr(ih))
	leaves := []string{"a", "b", "c", "d"}
	classes := []string{"x", "y"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		d := dataset.New(schema)
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Record{
				EntityID: i,
				Cells: []dataset.Cell{
					dataset.CatCell(edu, leaves[rng.Intn(len(leaves))]),
					dataset.NumCell(float64(rng.Intn(32))),
				},
				Class: classes[rng.Intn(2)],
			})
		}
		k := 1 + rng.Intn(5)
		for _, a := range allAnonymizers() {
			res, err := a.Anonymize(d, []int{0, 1}, k)
			if err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
			if err := res.Validate(d); err != nil {
				t.Logf("%s seed=%d k=%d: %v", a.Name(), seed, k, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
