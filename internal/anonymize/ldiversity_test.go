package anonymize

import (
	"testing"

	"pprl/internal/dataset"
)

func TestLDiverseSatisfiesBothGuarantees(t *testing.T) {
	d, qids := adultSample(t, 500)
	for _, l := range []int{1, 2} {
		a := NewLDiverseEntropy(l)
		res, err := a.Anonymize(d, qids, 8)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if err := res.Validate(d); err != nil {
			t.Errorf("l=%d: %v", l, err)
		}
		if min := res.MinClassSize(); min < 8 && res.NumSequences() > 1 {
			t.Errorf("l=%d: min class size %d < k", l, min)
		}
		if got := Diversity(d, res); got < l {
			t.Errorf("l=%d: achieved diversity %d", l, got)
		}
	}
}

func TestLDiversityReducesSequences(t *testing.T) {
	// Demanding diversity can only forbid specializations, so sequence
	// counts cannot increase.
	d, qids := adultSample(t, 500)
	plain, err := NewMaxEntropy().Anonymize(d, qids, 8)
	if err != nil {
		t.Fatal(err)
	}
	diverse, err := NewLDiverseEntropy(2).Anonymize(d, qids, 8)
	if err != nil {
		t.Fatal(err)
	}
	if diverse.NumSequences() > plain.NumSequences() {
		t.Errorf("2-diverse produced %d sequences, plain %d; diversity should not add sequences",
			diverse.NumSequences(), plain.NumSequences())
	}
}

func TestLDiverseImpossible(t *testing.T) {
	// All records share one sensitive value: 2-diversity is unachievable.
	d, qids := adultSample(t, 60)
	mono := dataset.New(d.Schema())
	for _, r := range d.Records() {
		r.Class = "same"
		mono.MustAppend(r)
	}
	if _, err := NewLDiverseEntropy(2).Anonymize(mono, qids, 4); err == nil {
		t.Error("2-diversity over a single sensitive value should fail")
	}
	if _, err := NewLDiverseEntropy(0).Anonymize(d, qids, 4); err == nil {
		t.Error("l=0 should be rejected")
	}
}

func TestLDiverseName(t *testing.T) {
	if got := NewLDiverseEntropy(3).Name(); got != "Entropy+3-diverse" {
		t.Errorf("Name = %q", got)
	}
}
