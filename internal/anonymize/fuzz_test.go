package anonymize

import (
	"bytes"
	"strings"
	"testing"

	"pprl/internal/adult"
)

// FuzzReadView checks that arbitrary view files never panic the parser
// and that accepted views are structurally consistent (every record in
// exactly one class).
func FuzzReadView(f *testing.F) {
	schema := adult.Schema()
	// Seed with a real view.
	d := adult.Generate(40, 1)
	qids, err := schema.Resolve(adult.DefaultQIDs())
	if err != nil {
		f.Fatal(err)
	}
	res, err := NewMaxEntropy().Anonymize(d, qids, 4)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteView(&buf, schema, res); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("pprl-view\t1\nqids\tage\nclass\tp:4\t0\n")
	f.Add("pprl-view\t1\nk\t-3\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		view, err := ReadView(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		seen := make(map[int]bool)
		for _, c := range view.Classes {
			for _, m := range c.Members {
				if seen[m] {
					t.Fatalf("accepted view has duplicate member %d", m)
				}
				seen[m] = true
			}
		}
		if len(seen) != len(view.ClassOf) {
			t.Fatalf("ClassOf covers %d records, classes cover %d", len(view.ClassOf), len(seen))
		}
	})
}
