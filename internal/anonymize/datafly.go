package anonymize

import (
	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

// NewDataFly builds Sweeney's DataFly anonymizer: bottom-up full-domain
// generalization that repeatedly generalizes the attribute with the most
// distinct values until the anonymity requirement holds or can be met by
// suppressing at most k records (paper Section VI-A).
func NewDataFly() Anonymizer { return &dataFly{} }

type dataFly struct{}

func (f *dataFly) Name() string { return "DataFly" }

func (f *dataFly) Anonymize(d *dataset.Dataset, qids []int, k int) (*Result, error) {
	if err := validateInputs(d, qids, k); err != nil {
		return nil, err
	}
	schema := d.Schema()
	// Per-QID full-domain generalization level, most specific first:
	// categorical = hierarchy height (leaves), continuous = depth+1
	// (exact points).
	levels := make([]int, len(qids))
	maxLevel := make([]int, len(qids))
	for j, q := range qids {
		attr := schema.Attr(q)
		if attr.Kind == dataset.Categorical {
			maxLevel[j] = attr.Hierarchy.Height()
		} else {
			maxLevel[j] = attr.Intervals.Depth() + 1
		}
		levels[j] = maxLevel[j]
	}

	seqs := make([]vgh.Sequence, d.Len())
	var classes map[string][]int
	recompute := func() {
		classes = make(map[string][]int)
		for i := 0; i < d.Len(); i++ {
			seqs[i] = f.generalize(d, qids, i, levels)
			key := seqs[i].Key()
			classes[key] = append(classes[key], i)
		}
	}
	recompute()

	for {
		below := 0
		for _, members := range classes {
			if len(members) < k {
				below += len(members)
			}
		}
		if below <= k {
			break
		}
		// Generalize the attribute with the most distinct values one step.
		bestAttr, bestDistinct := -1, -1
		for j := range qids {
			if levels[j] == 0 {
				continue
			}
			distinct := make(map[string]struct{})
			for i := range seqs {
				distinct[seqs[i][j].String()] = struct{}{}
			}
			if n := len(distinct); n > bestDistinct {
				bestDistinct, bestAttr = n, j
			}
		}
		if bestAttr == -1 {
			break // everything at the root already
		}
		levels[bestAttr]--
		recompute()
	}

	// Suppress the ≤ k records still in small classes into the fully
	// general sequence.
	var suppressed []int
	root := rootSequence(schema, qids)
	for _, members := range classes {
		if len(members) < k {
			for _, m := range members {
				seqs[m] = root
				suppressed = append(suppressed, m)
			}
		}
	}
	return buildResult(f.Name(), k, qids, seqs, suppressed), nil
}

// generalize renders record i's sequence at the given full-domain levels.
func (f *dataFly) generalize(d *dataset.Dataset, qids []int, i int, levels []int) vgh.Sequence {
	schema := d.Schema()
	seq := make(vgh.Sequence, len(qids))
	for j, q := range qids {
		attr := schema.Attr(q)
		cell := d.Record(i).Cells[q]
		if attr.Kind == dataset.Categorical {
			seq[j] = vgh.CatValue(attr.Hierarchy.GeneralizeToDepth(cell.Node, levels[j]))
			continue
		}
		ih := attr.Intervals
		if levels[j] > ih.Depth() {
			seq[j] = vgh.NumValue(vgh.Point(cell.Num))
		} else {
			seq[j] = vgh.NumValue(ih.At(cell.Num, levels[j]))
		}
	}
	return seq
}
