// Package anonymize implements the k-anonymization algorithms evaluated in
// the paper's Section VI-A: DataFly (Sweeney's bottom-up full-domain
// method), TDS (Fung et al.'s top-down specialization driven by
// information gain), and the paper's own maximum-entropy top-down method,
// which heuristically maximizes the number of distinct generalization
// sequences and therefore blocking efficiency. A Mondrian-style
// multidimensional partitioner (LeFevre et al., cited in related work) is
// included as an extension.
//
// All algorithms share the same contract: given a dataset, a
// quasi-identifier attribute subset and an anonymity requirement k, they
// return one generalization sequence per record such that (modulo
// DataFly's bounded suppression) at least k records share every sequence.
package anonymize

import (
	"fmt"
	"sort"

	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

// Class is one equivalence class of the anonymized output: the set of
// records that share a generalization sequence.
type Class struct {
	// Sequence is the shared generalization, one value per QID in the
	// order of Result.QIDs.
	Sequence vgh.Sequence
	// Members are record positions in the input dataset.
	Members []int
}

// Size returns the number of records in the class.
func (c Class) Size() int { return len(c.Members) }

// Result is an anonymized view of a dataset: the published artifact a
// data holder releases. It intentionally exposes only generalization
// sequences and class membership counts, never raw cells.
type Result struct {
	// Method names the algorithm that produced the view.
	Method string
	// K is the anonymity requirement the view was built under.
	K int
	// QIDs are the generalized attribute positions, in sequence order.
	QIDs []int
	// Classes are the equivalence classes, in deterministic order.
	Classes []Class
	// ClassOf maps record position -> index into Classes.
	ClassOf []int
	// Suppressed lists records DataFly removed into the fully general
	// class instead of meeting k by generalization; empty for the
	// top-down methods. Suppressed records are members of the root-
	// sequence class and are exempt from the k-size guarantee.
	Suppressed []int
	// DP carries the differential-privacy release parameters when the
	// view was published by the DP binner (dpblock); nil for the
	// k-anonymous methods.
	DP *DPInfo
}

// DPInfo records the (ε, δ) release a DP-binned view was published
// under. The k-anonymous class-size guarantee does not apply to such
// views (classes are deterministic bins, possibly of size 1); instead
// the published bin sizes — NoisedCounts — carry calibrated one-sided
// Laplace noise, and the matcher must treat the surplus over the true
// membership as dummy records a faithful deployment would pad in.
type DPInfo struct {
	// Epsilon is the privacy budget this release consumed.
	Epsilon float64
	// Delta is the truncation failure mass of the one-sided mechanism.
	Delta float64
	// Seed keys the deterministic per-bin noise draws and the padding
	// permutation. It is holder-private: WriteView never serializes it
	// (a recipient holding the seed could recompute and subtract every
	// bin's noise), so views parsed from the wire carry Seed 0. Only
	// in-process views — the single-trust-domain engine — retain it.
	Seed int64
	// Level is the hierarchy depth records were binned at (0 = root).
	Level int
	// NoisedCounts[i] is the published size of Classes[i]: the true
	// membership plus non-negative noise, so padding only ever adds
	// dummies and never hides a real member. Before such a view leaves
	// its holder, dpblock.Pad stretches each member list to exactly this
	// count with dummy handles, so the wire form never reveals the true
	// size next to the noised one.
	NoisedCounts []int64
}

// Dummies returns the total dummy records the noised release implies
// beyond the member lists: Σ (NoisedCounts[i] − |Classes[i]|). Only
// meaningful on an in-process (unpadded) view; once dpblock.Pad has
// stretched the member lists — i.e. on any view that crossed the wire —
// it returns 0, which is exactly what a recipient is allowed to know.
func (r *Result) Dummies() int64 {
	if r.DP == nil {
		return 0
	}
	var total int64
	for i, c := range r.Classes {
		total += r.DP.NoisedCounts[i] - int64(c.Size())
	}
	return total
}

// NumSequences returns the number of distinct generalization sequences,
// the quality metric of the paper's Figure 2.
func (r *Result) NumSequences() int { return len(r.Classes) }

// SequenceOf returns the generalization sequence of record i.
func (r *Result) SequenceOf(i int) vgh.Sequence { return r.Classes[r.ClassOf[i]].Sequence }

// MinClassSize returns the smallest non-suppressed class size; for a valid
// k-anonymization it is ≥ k.
func (r *Result) MinClassSize() int {
	suppressedClass := -1
	if len(r.Suppressed) > 0 {
		suppressedClass = r.ClassOf[r.Suppressed[0]]
	}
	min := -1
	for i, c := range r.Classes {
		if i == suppressedClass {
			continue
		}
		if min == -1 || c.Size() < min {
			min = c.Size()
		}
	}
	return min
}

// AvgClassSize returns the mean equivalence-class size.
func (r *Result) AvgClassSize() float64 {
	if len(r.Classes) == 0 {
		return 0
	}
	total := 0
	for _, c := range r.Classes {
		total += c.Size()
	}
	return float64(total) / float64(len(r.Classes))
}

// Discernibility returns the discernibility metric Σ |class|², a standard
// information-loss measure: lower is better.
func (r *Result) Discernibility() int {
	sum := 0
	for _, c := range r.Classes {
		sum += c.Size() * c.Size()
	}
	return sum
}

// Validate checks the structural invariants: every record belongs to
// exactly one class, sequences have one value per QID, every sequence
// value covers the member's original value (generalizations are accurate,
// the property the blocking step's soundness rests on), and all
// non-suppressed classes meet k.
func (r *Result) Validate(d *dataset.Dataset) error {
	if len(r.ClassOf) != d.Len() {
		return fmt.Errorf("anonymize: ClassOf covers %d records, dataset has %d", len(r.ClassOf), d.Len())
	}
	seen := make([]bool, d.Len())
	for ci, c := range r.Classes {
		if len(c.Sequence) != len(r.QIDs) {
			return fmt.Errorf("anonymize: class %d sequence has %d values, want %d", ci, len(c.Sequence), len(r.QIDs))
		}
		for _, m := range c.Members {
			if seen[m] {
				return fmt.Errorf("anonymize: record %d in multiple classes", m)
			}
			seen[m] = true
			if r.ClassOf[m] != ci {
				return fmt.Errorf("anonymize: record %d ClassOf mismatch", m)
			}
			for j, qid := range r.QIDs {
				orig := d.Record(m).Value(qid)
				if !c.Sequence[j].Covers(orig) {
					return fmt.Errorf("anonymize: class %d value %v does not cover record %d's %v (attr %s)",
						ci, c.Sequence[j], m, orig, d.Schema().Attr(qid).Name)
				}
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("anonymize: record %d not in any class", i)
		}
	}
	if min := r.MinClassSize(); min != -1 && min < r.K && len(r.Classes) > 1 {
		return fmt.Errorf("anonymize: min class size %d violates k=%d", min, r.K)
	}
	return nil
}

// Anonymizer is a k-anonymization algorithm.
type Anonymizer interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Anonymize generalizes the QID attributes of d under requirement k.
	Anonymize(d *dataset.Dataset, qids []int, k int) (*Result, error)
}

// BuildResult groups records by the sequence assigned to them and fills
// the Result bookkeeping deterministically (classes sorted by key). It is
// the assembly step shared by every anonymizer in this package and by
// external binning strategies (dpblock's deterministic VGH binner).
func BuildResult(method string, k int, qids []int, seqs []vgh.Sequence, suppressed []int) *Result {
	return buildResult(method, k, qids, seqs, suppressed)
}

// buildResult groups records by the sequence assigned to them and fills
// the Result bookkeeping deterministically (classes sorted by key).
func buildResult(method string, k int, qids []int, seqs []vgh.Sequence, suppressed []int) *Result {
	byKey := make(map[string]int)
	res := &Result{Method: method, K: k, QIDs: qids, ClassOf: make([]int, len(seqs)), Suppressed: suppressed}
	type entry struct {
		key string
		idx int
	}
	var order []entry
	for i, s := range seqs {
		key := s.Key()
		ci, ok := byKey[key]
		if !ok {
			ci = len(res.Classes)
			byKey[key] = ci
			res.Classes = append(res.Classes, Class{Sequence: s})
			order = append(order, entry{key: key, idx: ci})
		}
		res.Classes[ci].Members = append(res.Classes[ci].Members, i)
		res.ClassOf[i] = ci
	}
	// Deterministic class order: sort by key, remap.
	sort.Slice(order, func(a, b int) bool { return order[a].key < order[b].key })
	remap := make([]int, len(res.Classes))
	newClasses := make([]Class, len(res.Classes))
	for newIdx, e := range order {
		remap[e.idx] = newIdx
		newClasses[newIdx] = res.Classes[e.idx]
	}
	res.Classes = newClasses
	for i := range res.ClassOf {
		res.ClassOf[i] = remap[res.ClassOf[i]]
	}
	return res
}

// validateInputs rejects degenerate parameters shared by all algorithms.
func validateInputs(d *dataset.Dataset, qids []int, k int) error {
	if d.Len() == 0 {
		return fmt.Errorf("anonymize: empty dataset")
	}
	if len(qids) == 0 {
		return fmt.Errorf("anonymize: empty quasi-identifier set")
	}
	for _, q := range qids {
		if q < 0 || q >= d.Schema().Len() {
			return fmt.Errorf("anonymize: QID index %d out of range", q)
		}
	}
	if k < 1 {
		return fmt.Errorf("anonymize: k must be ≥ 1, got %d", k)
	}
	if k > d.Len() {
		return fmt.Errorf("anonymize: k=%d exceeds dataset size %d", k, d.Len())
	}
	return nil
}

// rootSequence returns the fully generalized sequence for the QID set.
func rootSequence(s *dataset.Schema, qids []int) vgh.Sequence {
	seq := make(vgh.Sequence, len(qids))
	for i, q := range qids {
		seq[i] = s.Attr(q).RootValue()
	}
	return seq
}
