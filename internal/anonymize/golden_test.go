package anonymize_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/dpblock"
)

var update = flag.Bool("update", false, "rewrite the golden view files")

// goldenViews builds one deterministic view per anonymizer mode — the
// four k-anonymous methods plus the DP binner with its noised release —
// over a fixed Adult sample. This lives in an external test package
// because the DP binner (dpblock) imports anonymize.
func goldenViews(t *testing.T) map[string]*anonymize.Result {
	t.Helper()
	d := adult.Generate(120, 1)
	qids, err := d.Schema().Resolve(adult.TopQIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	views := make(map[string]*anonymize.Result)
	for _, a := range []anonymize.Anonymizer{
		anonymize.NewMaxEntropy(), anonymize.NewTDS(), anonymize.NewDataFly(), anonymize.NewMondrian(),
	} {
		res, err := a.Anonymize(d, qids, 8)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		views[a.Name()] = res
	}
	binner, err := dpblock.New(dpblock.Params{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := binner.Anonymize(d, qids, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dpblock.Publish(res, binner.Params()); err != nil {
		t.Fatal(err)
	}
	// A DP view must be padded before it can serialize: the wire form
	// carries only noised sizes and permuted handles, never true bin
	// membership.
	if _, err := dpblock.Pad(res); err != nil {
		t.Fatal(err)
	}
	views[binner.Name()] = res
	return views
}

// TestViewGoldenFiles pins the serialized form of every anonymizer mode:
// the writer's output must match the committed golden file byte for
// byte, and reading the golden back and re-writing it must be the
// identity (the format is canonical). Regenerate with `go test
// ./internal/anonymize -run TestViewGoldenFiles -update` after a
// deliberate format change.
func TestViewGoldenFiles(t *testing.T) {
	d := adult.Generate(120, 1)
	for name, res := range goldenViews(t) {
		path := filepath.Join("testdata", "golden_"+name+".view")
		var buf bytes.Buffer
		if err := anonymize.WriteView(&buf, d.Schema(), res); err != nil {
			t.Fatalf("%s: WriteView: %v", name, err)
		}
		if *update {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		golden, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with -update): %v", name, err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Errorf("%s: serialized view diverged from %s", name, path)
		}
		parsed, err := anonymize.ReadView(bytes.NewReader(golden), d.Schema())
		if err != nil {
			t.Fatalf("%s: ReadView(golden): %v", name, err)
		}
		var again bytes.Buffer
		if err := anonymize.WriteView(&again, d.Schema(), parsed); err != nil {
			t.Fatalf("%s: rewrite: %v", name, err)
		}
		if !bytes.Equal(again.Bytes(), golden) {
			t.Errorf("%s: read→write is not the identity on the golden file", name)
		}
	}
}

// TestDPViewRoundTrip checks the DP release survives serialization
// exactly — parameters, level, every noised count — while the holder's
// secrets stay home: the noise seed is withheld and the padded member
// lists reveal no dummy surplus.
func TestDPViewRoundTrip(t *testing.T) {
	d := adult.Generate(120, 1)
	res := goldenViews(t)[dpblock.MethodName]
	var buf bytes.Buffer
	if err := anonymize.WriteView(&buf, d.Schema(), res); err != nil {
		t.Fatal(err)
	}
	got, err := anonymize.ReadView(&buf, d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got.DP == nil {
		t.Fatal("DP release lost in round trip")
	}
	if got.DP.Epsilon != res.DP.Epsilon || got.DP.Delta != res.DP.Delta ||
		got.DP.Level != res.DP.Level {
		t.Fatalf("DP parameters changed: %+v vs %+v", got.DP, res.DP)
	}
	if got.DP.Seed != 0 {
		t.Fatalf("noise seed %d crossed the wire; a recipient could subtract the padding", got.DP.Seed)
	}
	if len(got.DP.NoisedCounts) != len(res.DP.NoisedCounts) {
		t.Fatal("noised count arity changed")
	}
	for i := range got.DP.NoisedCounts {
		if got.DP.NoisedCounts[i] != res.DP.NoisedCounts[i] {
			t.Fatalf("noised count %d changed: %d vs %d", i, got.DP.NoisedCounts[i], res.DP.NoisedCounts[i])
		}
		if int64(got.Classes[i].Size()) != got.DP.NoisedCounts[i] {
			t.Fatalf("class %d: wire member list has %d handles, published count %d",
				i, got.Classes[i].Size(), got.DP.NoisedCounts[i])
		}
	}
	if got.Dummies() != 0 {
		t.Fatalf("wire view reveals %d dummies; padding must hide the surplus", got.Dummies())
	}
}

// TestDPViewUnpaddedRefused pins the boundary invariant: an un-padded DP
// view never serializes, so true bin sizes cannot leave the holder even
// by mistake.
func TestDPViewUnpaddedRefused(t *testing.T) {
	d := adult.Generate(120, 1)
	qids, err := d.Schema().Resolve(adult.TopQIDs(4))
	if err != nil {
		t.Fatal(err)
	}
	binner, err := dpblock.New(dpblock.Params{Epsilon: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := binner.Anonymize(d, qids, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := dpblock.Publish(res, binner.Params()); err != nil {
		t.Fatal(err)
	}
	if res.Dummies() == 0 {
		t.Skip("noise draw added no padding; nothing to refuse")
	}
	var buf bytes.Buffer
	if err := anonymize.WriteView(&buf, d.Schema(), res); err == nil {
		t.Fatal("WriteView accepted a DP view whose member lists reveal true bin sizes")
	}
}
