package anonymize

import (
	"bytes"
	"strings"
	"testing"
)

func TestViewRoundTrip(t *testing.T) {
	d, qids := adultSample(t, 300)
	for _, a := range []Anonymizer{NewMaxEntropy(), NewTDS(), NewDataFly(), NewMondrian()} {
		res, err := a.Anonymize(d, qids, 8)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteView(&buf, d.Schema(), res); err != nil {
			t.Fatalf("%s: WriteView: %v", a.Name(), err)
		}
		got, err := ReadView(&buf, d.Schema())
		if err != nil {
			t.Fatalf("%s: ReadView: %v", a.Name(), err)
		}
		if got.Method != res.Method || got.K != res.K {
			t.Errorf("%s: metadata changed: %q/%d", a.Name(), got.Method, got.K)
		}
		if got.NumSequences() != res.NumSequences() {
			t.Fatalf("%s: %d sequences after round trip, want %d", a.Name(), got.NumSequences(), res.NumSequences())
		}
		for ci := range res.Classes {
			if !got.Classes[ci].Sequence.Equal(res.Classes[ci].Sequence) {
				t.Errorf("%s: class %d sequence %v != %v", a.Name(),
					ci, got.Classes[ci].Sequence, res.Classes[ci].Sequence)
			}
			if len(got.Classes[ci].Members) != len(res.Classes[ci].Members) {
				t.Errorf("%s: class %d members differ", a.Name(), ci)
			}
		}
		for i := range res.ClassOf {
			if got.ClassOf[i] != res.ClassOf[i] {
				t.Fatalf("%s: ClassOf[%d] = %d, want %d", a.Name(), i, got.ClassOf[i], res.ClassOf[i])
			}
		}
		if len(got.Suppressed) != len(res.Suppressed) {
			t.Errorf("%s: suppressed list changed", a.Name())
		}
		// The round-tripped view still validates against the data.
		if err := got.Validate(d); err != nil {
			t.Errorf("%s: round-tripped view invalid: %v", a.Name(), err)
		}
	}
}

func TestViewContainsNoRawCells(t *testing.T) {
	// The published artifact must not leak exact continuous values when
	// classes are generalized (k > 1 forces intervals or shared points).
	d, qids := adultSample(t, 300)
	res, err := NewMaxEntropy().Anonymize(d, qids, 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteView(&buf, d.Schema(), res); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "pprl-view\t1\n") {
		t.Error("missing magic header")
	}
	// Header carries only attribute names, parameters and generalized
	// values; spot-check that the class labels (sensitive values) never
	// appear.
	if strings.Contains(text, ">50K") || strings.Contains(text, "<=50K") {
		t.Error("view leaks sensitive class labels")
	}
}

func TestReadViewErrors(t *testing.T) {
	d, _ := adultSample(t, 10)
	schema := d.Schema()
	cases := []struct{ name, text string }{
		{"bad magic", "nope\t1\nqids\tage\nclass\tp:4\t0\n"},
		{"bad version", "pprl-view\t2\n"},
		{"unknown attr", "pprl-view\t1\nqids\tbogus\nclass\tp:4\t0\n"},
		{"class before qids", "pprl-view\t1\nclass\tp:4\t0\n"},
		{"arity mismatch", "pprl-view\t1\nqids\tage\tworkclass\nclass\tp:4\t0\n"},
		{"bad member", "pprl-view\t1\nqids\tage\nclass\tp:4\tx\n"},
		{"duplicate member", "pprl-view\t1\nqids\tage\nclass\tp:4\t0,0\n"},
		{"missing member", "pprl-view\t1\nqids\tage\nclass\tp:4\t0,2\n"},
		{"unknown directive", "pprl-view\t1\nwat\t1\n"},
		{"unknown leaf", "pprl-view\t1\nqids\tworkclass\nclass\tc:Nope\t0\n"},
		{"kind mismatch", "pprl-view\t1\nqids\tage\nclass\tc:Private\t0\n"},
		{"bad interval", "pprl-view\t1\nqids\tage\nclass\tn:9:1\t0\n"},
		{"bad encoding", "pprl-view\t1\nqids\tage\nclass\tq:4\t0\n"},
		{"no classes", "pprl-view\t1\nqids\tage\n"},
		{"bad k", "pprl-view\t1\nk\tx\nqids\tage\nclass\tp:4\t0\n"},
		{"dp arity (legacy seed field)", "pprl-view\t1\nqids\tage\ndp\t0.5\t1e-06\t7\t2\nnoised\t1\nclass\tp:4\t0\n"},
		{"dp bad epsilon", "pprl-view\t1\nqids\tage\ndp\t0\t1e-06\t2\nnoised\t1\nclass\tp:4\t0\n"},
		{"dp bad delta", "pprl-view\t1\nqids\tage\ndp\t0.5\t1.5\t2\nnoised\t1\nclass\tp:4\t0\n"},
		{"dp delta at half", "pprl-view\t1\nqids\tage\ndp\t0.5\t0.5\t2\nnoised\t1\nclass\tp:4\t0\n"},
		{"dp zero delta", "pprl-view\t1\nqids\tage\ndp\t0.5\t0\t2\nnoised\t1\nclass\tp:4\t0\n"},
		{"dp without noised", "pprl-view\t1\nqids\tage\ndp\t0.5\t1e-06\t2\nclass\tp:4\t0\n"},
		{"noised without dp", "pprl-view\t1\nqids\tage\nnoised\t1\nclass\tp:4\t0\n"},
		{"noised arity", "pprl-view\t1\nqids\tage\ndp\t0.5\t1e-06\t2\nnoised\t1,2\nclass\tp:4\t0\n"},
		{"noised below size", "pprl-view\t1\nqids\tage\ndp\t0.5\t1e-06\t2\nnoised\t1\nclass\tp:4\t0,1\n"},
		{"unpadded dp view", "pprl-view\t1\nqids\tage\ndp\t0.5\t1e-06\t2\nnoised\t3\nclass\tp:4\t0,1\n"},
		{"noised negative", "pprl-view\t1\nqids\tage\ndp\t0.5\t1e-06\t2\nnoised\t-1\nclass\tp:4\t0\n"},
	}
	for _, c := range cases {
		if _, err := ReadView(strings.NewReader(c.text), schema); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadViewMinimal(t *testing.T) {
	d, _ := adultSample(t, 10)
	text := "pprl-view\t1\nmethod\tmanual\nk\t1\nqids\tage\tworkclass\n" +
		"class\tn:17:81\x1fc:ANY\t0,1\n"
	res, err := ReadView(strings.NewReader(text), d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "manual" || res.K != 1 || res.NumSequences() != 1 {
		t.Errorf("parsed view wrong: %+v", res)
	}
	seq := res.Classes[0].Sequence
	if seq[0].Iv.Lo != 17 || seq[0].Iv.Hi != 81 {
		t.Errorf("interval = %v", seq[0].Iv)
	}
	if seq[1].Node.Value != "ANY" {
		t.Errorf("node = %v", seq[1])
	}
}
