// Package incremental implements live-dataset linkage: long-lived
// engine state that absorbs append-only record batches and emits, per
// batch, only the *delta* of newly discovered Match pairs, spending the
// SMC allowance once per pair over the dataset's lifetime instead of
// once per re-run.
//
// The equivalence contract (DESIGN.md §15) is what makes deltas
// meaningful: the union of deltas across K batches is pair-identical to
// one frozen run over the final relations, so a consumer integrating the
// stream never sees a retraction. The contract holds because every layer
// the engine reuses is insertion-stable — records are generalized by
// fixed-level binning (dpblock.LevelBinner), whose output for a record
// never depends on the rest of the dataset; blocking labels are a pure
// function of two bin sequences; tier labels are a pure function of two
// records; and SMC verdicts are exact. A new record therefore only ever
// *adds* candidate pairs (new × existing population, via the live
// inverted index), and a pair's verdict is fixed the moment it is
// resolved.
//
// In DP mode the engine keeps the composition ledger honest across
// batches: bin noise is the same deterministic draw the frozen run uses
// — constant per (seed, bin key) — so K appends still constitute one
// logical (ε, δ) release of the growing histogram, and the dummy-pair
// padding cost telescopes: each batch charges the surplus its records
// added over what previous batches already charged, so the lifetime
// dummy spend never exceeds the frozen run's padding for the final
// counts.
package incremental

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"strconv"

	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/dpblock"
	"pprl/internal/heuristic"
	"pprl/internal/journal"
)

// Config parameterizes a live dataset. The zero value is not usable;
// QIDs are required, everything else defaults per the field comments.
type Config struct {
	// QIDs names the quasi-identifier attributes (required).
	QIDs []string
	// Theta is the uniform distance threshold (0 selects the paper's
	// 0.05); Thresholds optionally gives per-attribute thresholds and
	// overrides Theta.
	Theta      float64
	Thresholds []float64
	// Level is the fixed binning depth below each hierarchy root
	// (0 selects dpblock.DefaultLevel). It plays the role the anonymizer
	// choice plays in the frozen pipeline; deeper bins prune more pairs
	// but miss more boundary-straddling matches.
	Level int
	// Allowance is the absolute lifetime SMC pool shared by all batches;
	// 0 means unlimited. There is no fraction form: the matrix it would
	// be a fraction of grows forever.
	Allowance int64
	// Heuristic orders each batch's uncertain groups (nil selects
	// minAvgFirst); Strategy decides residual labels when the pool runs
	// dry (TrainClassifier is not supported incrementally).
	Heuristic heuristic.Heuristic
	Strategy  core.Strategy
	// Tier enables the CLK triage tier with the same knobs as the frozen
	// engine.
	Tier     core.TierMode
	TierHigh float64
	TierLow  float64
	TierM    int
	TierK    int
	TierQ    int
	TierKey  []byte
	// Epsilon > 0 switches blocking to DP bin intersection with noised
	// counts and dummy charging; DPDelta 0 selects dpblock.DefaultDelta.
	// DPSeed keys the noise (side 0 draws with DPSeed, side 1 with
	// DPSeed+1, exactly as the frozen engine).
	Epsilon float64
	DPDelta float64
	DPSeed  int64
	// Dedup links the dataset against itself: one side, unordered pairs
	// i<j, self-pairs excluded.
	Dedup bool
	// Comparator builds the SMC backend per batch (nil selects the
	// plaintext oracle); SMCWorkers and SMCPacking pass through to it.
	Comparator core.ComparatorFactory
	SMCWorkers int
	SMCPacking core.PackingMode
	// Scale is the fixed-point encoding scale (0 selects 1).
	Scale int64
	// Seed goes into the journal manifest for parity with the frozen
	// manifest; the incremental engine itself has no random choices.
	Seed int64
	// Journal, when set, makes the run durable: batch marks, verdicts and
	// commits are framed per DESIGN.md §15. Recovered must then carry the
	// replayed state when resuming (journal.Writer.Recovered()); nil for
	// a fresh journal.
	Journal   journal.BatchSink
	Recovered *journal.Recovered
}

// withDefaults fills the zero-value knobs, mirroring core.DefaultConfig
// where the knob has a frozen-run counterpart.
func (c Config) withDefaults() Config {
	if c.Theta == 0 && c.Thresholds == nil {
		c.Theta = 0.05
	}
	if c.Level == 0 {
		c.Level = dpblock.DefaultLevel
	}
	if c.Heuristic == nil {
		c.Heuristic = heuristic.MinAvgFirst{}
	}
	if c.Comparator == nil {
		c.Comparator = core.PlainComparatorFactory
	}
	if c.SMCWorkers <= 0 {
		c.SMCWorkers = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Tier == core.TierBloom {
		if c.TierHigh == 0 {
			c.TierHigh = 0.95
		}
		if c.TierLow == 0 {
			c.TierLow = 0.60
		}
		if c.TierM == 0 {
			c.TierM = 1000
		}
		if c.TierK == 0 {
			c.TierK = 30
		}
		if c.TierQ == 0 {
			c.TierQ = 2
		}
		if len(c.TierKey) == 0 {
			c.TierKey = []byte("pprl-tier-default-key")
		}
	}
	if c.Epsilon > 0 && c.DPDelta == 0 {
		c.DPDelta = dpblock.DefaultDelta
	}
	return c
}

// validate rejects configurations the incremental engine cannot honor.
func (c Config) validate() error {
	if len(c.QIDs) == 0 {
		return fmt.Errorf("incremental: QIDs are required")
	}
	if c.Strategy == core.TrainClassifier {
		return fmt.Errorf("incremental: the TrainClassifier strategy needs the full residual population and cannot run incrementally")
	}
	if c.Allowance < 0 {
		return fmt.Errorf("incremental: negative allowance %d", c.Allowance)
	}
	if c.Epsilon > 0 {
		if err := (dpblock.Params{Epsilon: c.Epsilon, Delta: c.DPDelta, Seed: c.DPSeed, Level: c.Level}).Validate(); err != nil {
			return err
		}
	}
	if c.Journal == nil && c.Recovered != nil {
		return fmt.Errorf("incremental: Recovered set without a Journal")
	}
	return nil
}

// manifest builds the journal manifest for the run. TotalPairs and
// UnknownPairs are 0 — a live dataset has no final pair matrix to
// summarize — and InputsDigest covers the registration (schema shape,
// QIDs, dedup flag), not the record data: the records are watermarked
// per batch by the recBatch digests instead.
func (c *Config) manifest(schema *dataset.Schema, qids []int) journal.Manifest {
	return journal.Manifest{
		ConfigDigest: c.configDigest(),
		InputsDigest: registrationDigest(schema, qids, c.Dedup),
		Allowance:    c.Allowance,
		Seed:         c.Seed,
		Heuristic:    c.Heuristic.Name(),
	}
}

// configDigest hashes the parameters that determine which pairs are
// resolved and what they cost. As in the frozen engine, SMCWorkers,
// SMCPacking, the comparator backend and the tier knobs are excluded:
// they change speed or free labels, never purchased verdicts.
func (c *Config) configDigest() [32]byte {
	h := sha256.New()
	for _, q := range c.QIDs {
		hashField(h, "qid", q)
	}
	hashField(h, "theta", strconv.FormatFloat(c.Theta, 'g', -1, 64))
	for _, th := range c.Thresholds {
		hashField(h, "threshold", strconv.FormatFloat(th, 'g', -1, 64))
	}
	hashField(h, "level", strconv.Itoa(c.Level))
	hashField(h, "allowance", strconv.FormatInt(c.Allowance, 10))
	hashField(h, "heuristic", c.Heuristic.Name())
	hashField(h, "strategy", c.Strategy.String())
	hashField(h, "scale", strconv.FormatInt(c.Scale, 10))
	hashField(h, "seed", strconv.FormatInt(c.Seed, 10))
	hashField(h, "dedup", strconv.FormatBool(c.Dedup))
	if c.Epsilon > 0 {
		hashField(h, "epsilon", strconv.FormatFloat(c.Epsilon, 'g', -1, 64))
		hashField(h, "dpdelta", strconv.FormatFloat(c.DPDelta, 'g', -1, 64))
		hashField(h, "dpseed", strconv.FormatInt(c.DPSeed, 10))
	}
	return [32]byte(h.Sum(nil))
}

// registrationDigest hashes what a dataset registration pins: the schema
// shape and the linkage arity.
func registrationDigest(schema *dataset.Schema, qids []int, dedup bool) [32]byte {
	h := sha256.New()
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		hashField(h, "attr", a.Name)
		hashField(h, "kind", a.Kind.String())
		hashField(h, "range", strconv.FormatFloat(a.Range(), 'g', -1, 64))
	}
	for _, q := range qids {
		hashField(h, "qid", strconv.Itoa(q))
	}
	hashField(h, "dedup", strconv.FormatBool(dedup))
	return [32]byte(h.Sum(nil))
}

// BatchDigest is the recBatch watermark: a hash of one appended batch's
// records and target side. Resume re-reads the stored batch files and
// refuses to replay journal verdicts against a batch whose digest
// changed.
func BatchDigest(side int, recs []dataset.Record) [32]byte {
	h := sha256.New()
	hashField(h, "side", strconv.Itoa(side))
	hashField(h, "records", strconv.Itoa(len(recs)))
	for _, rec := range recs {
		hashField(h, "id", strconv.Itoa(rec.EntityID))
		if rec.Class != "" {
			hashField(h, "class", rec.Class)
		}
		for _, c := range rec.Cells {
			if c.Node != nil {
				hashField(h, "cat", c.Node.Value)
			} else {
				hashField(h, "num", strconv.FormatFloat(c.Num, 'g', -1, 64))
			}
		}
	}
	return [32]byte(h.Sum(nil))
}

// hashField writes a length-delimited key/value into the digest, so
// adjacent fields cannot alias.
func hashField(h hash.Hash, key, value string) {
	fmt.Fprintf(h, "%s=%d:%s;", key, len(value), value)
}
