package incremental

import (
	"fmt"
	"sort"
	"sync"

	"pprl/internal/blocking"
	"pprl/internal/bloom"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/dpblock"
	"pprl/internal/index"
	"pprl/internal/journal"
	"pprl/internal/smc"
	"pprl/internal/vgh"
)

// Delta is one newly discovered Match pair. I and J are record positions
// (I on side 0, J on side 1; for dedup both on side 0 with I < J);
// AliceID/BobID are the corresponding entity identifiers for consumers
// that never see positional indexes.
type Delta struct {
	Batch   int `json:"batch"`
	I       int `json:"i"`
	J       int `json:"j"`
	AliceID int `json:"alice_id"`
	BobID   int `json:"bob_id"`
}

// BatchResult summarizes one Append.
type BatchResult struct {
	// Batch is the global 0-based batch index.
	Batch int
	// Side is the holder that grew (always 0 for dedup).
	Side int
	// Records is how many records the batch appended.
	Records int
	// Deltas are the batch's newly discovered Match pairs.
	Deltas []Delta
	// Spent is the allowance the batch consumed (unit purchases plus DP
	// dummy shares), counting replayed verdicts at their original cost.
	Spent int64
	// Replayed reports the batch was reconstructed wholesale from a
	// committed journal frame: verdicts applied from disk, zero allowance
	// re-spent, and — because the original commit already exposed them —
	// its deltas must not be re-emitted to consumers.
	Replayed bool
}

// Stats is the engine's lifetime accounting.
type Stats struct {
	Batches int
	// Records and Bins are per side; side 1 stays zero for dedup.
	Records [2]int
	Bins    [2]int
	// Deltas counts emitted Match pairs; BlockingMatches, TierMatches and
	// ResidualMatches break out the free ones (the remainder were
	// purchased).
	Deltas          int
	BlockingMatches int64
	TierMatches     int64
	TierNonMatches  int64
	ResidualMatches int64
	// Purchased counts live comparator invocations by this process;
	// Replayed counts verdicts applied from the journal instead.
	Purchased int64
	Replayed  int64
	// Used is the lifetime pool position: unit purchases plus DP dummy
	// shares, including the replayed share. LiveSpent/ReplaySpent split
	// it by who paid in this process's lifetime; DummySpent is the DP
	// padding portion.
	Used        int64
	LiveSpent   int64
	ReplaySpent int64
	DummySpent  int64
	// Epoch advances once per applied batch; readers use it to detect
	// growth between snapshots.
	Epoch uint64
}

// bin is one equivalence bin of a side: the shared fixed-level sequence
// and its member record positions in append order.
type bin struct {
	seq     vgh.Sequence
	members []int32
}

// side is one holder's live state.
type side struct {
	data  *dataset.Dataset
	enc   [][]int64
	clk   []*bloom.Filter
	binOf []int32
	bins  []bin
	byKey map[string]int32
	live  *index.Live
	// noise is the DP padding per bin: the same deterministic draw the
	// frozen release uses, computed once when the bin first appears and
	// constant forever after — which is exactly why K appends remain one
	// logical release.
	noise map[int32]int64
}

// Engine owns one live dataset (dedup) or one live dataset pair. Append
// is serialized by an internal lock; Deltas/Stats may be called
// concurrently with it and see committed state only.
type Engine struct {
	mu     sync.RWMutex
	cfg    Config
	schema *dataset.Schema
	qids   []int
	rule   *blocking.Rule
	spec   *smc.Spec
	dp     bool
	tier   bool
	tenc   *bloom.Encoder
	sides  []*side

	nextBatch int
	frames    []journal.BatchFrame
	replay    map[[2]int32]bool
	tierOnWAL map[[2]int32]bool
	// dummyCharged tracks, per candidate bin pair, the DP dummy
	// comparisons already paid for, so each batch charges only the
	// increment its records added (the telescoping sum).
	dummyCharged map[[2]int32]int64

	deltas []Delta
	stats  Stats
	failed bool
}

// New builds an engine over a schema. When resuming, cfg.Journal must be
// a writer opened with journal.Open/Resume and cfg.Recovered its
// Recovered() state; the engine then expects the caller to re-Append
// every stored batch in the original order — committed batches replay
// from the journal at zero live cost, the uncommitted tail batch
// re-processes with its journaled verdict prefix applied free.
func New(schema *dataset.Schema, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	qids, err := schema.Resolve(cfg.QIDs)
	if err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	var rule *blocking.Rule
	if len(cfg.Thresholds) > 0 {
		rule, err = blocking.NewRule(distance.MetricsFor(schema, qids), cfg.Thresholds)
	} else {
		rule, err = blocking.RuleFor(schema, qids, cfg.Theta)
	}
	if err != nil {
		return nil, fmt.Errorf("incremental: %w", err)
	}
	spec, err := smc.SpecFromRule(rule, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("incremental: building SMC spec: %w", err)
	}
	spec.Packing = cfg.SMCPacking.SMC()

	e := &Engine{
		cfg:          cfg,
		schema:       schema,
		qids:         qids,
		rule:         rule,
		spec:         spec,
		dp:           cfg.Epsilon > 0,
		tier:         cfg.Tier == core.TierBloom,
		replay:       make(map[[2]int32]bool),
		tierOnWAL:    make(map[[2]int32]bool),
		dummyCharged: make(map[[2]int32]int64),
	}
	if e.tier {
		e.tenc, err = bloom.NewEncoder(cfg.TierM, cfg.TierK, cfg.TierQ, cfg.TierKey)
		if err != nil {
			return nil, fmt.Errorf("incremental: tier encoder: %w", err)
		}
	}
	nSides := 2
	if cfg.Dedup {
		nSides = 1
	}
	for s := 0; s < nSides; s++ {
		e.sides = append(e.sides, &side{
			data:  dataset.New(schema),
			byKey: make(map[string]int32),
			live:  index.NewLive(rule),
			noise: make(map[int32]int64),
		})
	}
	if cfg.Journal != nil {
		if _, err := cfg.Journal.Begin(cfg.manifest(schema, qids)); err != nil {
			return nil, fmt.Errorf("incremental: %w", err)
		}
		if cfg.Recovered != nil {
			e.frames = cfg.Recovered.Batches
			for _, fr := range e.frames {
				for _, v := range fr.Verdicts {
					e.replay[[2]int32{int32(v.I), int32(v.J)}] = v.Matched
				}
				for _, v := range fr.TierVerdicts {
					e.tierOnWAL[[2]int32{int32(v.I), int32(v.J)}] = true
				}
			}
		}
	}
	return e, nil
}

// Dedup reports whether the engine links one dataset against itself.
func (e *Engine) Dedup() bool { return e.cfg.Dedup }

// Batches returns how many batches have been applied.
func (e *Engine) Batches() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.nextBatch
}

// PendingReplay reports how many journaled batches have not been
// re-applied yet; a resuming caller must Append exactly that many stored
// batches before accepting new traffic.
func (e *Engine) PendingReplay() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.nextBatch >= len(e.frames) {
		return 0
	}
	return len(e.frames) - e.nextBatch
}

// Stats returns a snapshot of the lifetime accounting.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// Deltas returns the emitted deltas of all batches with index ≥ from, in
// emission order.
func (e *Engine) Deltas(from int) []Delta {
	e.mu.RLock()
	defer e.mu.RUnlock()
	i := sort.Search(len(e.deltas), func(i int) bool { return e.deltas[i].Batch >= from })
	out := make([]Delta, len(e.deltas)-i)
	copy(out, e.deltas[i:])
	return out
}

// group is one candidate bin pair touched by a batch: its uncertain new
// pairs in deterministic order plus the heuristic score.
type group struct {
	a, b  int32 // cross: side-0 bin, side-1 bin; dedup: a ≤ b
	score float64
	pairs [][2]int32
}

// Append applies one batch of records to one side and returns the delta.
// Any error poisons the engine (state may be half-applied); callers
// rebuild it from the journal, exactly as the service does after a
// crash.
func (e *Engine) Append(sideIdx int, recs []dataset.Record) (*BatchResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failed {
		return nil, fmt.Errorf("incremental: engine poisoned by an earlier error; rebuild from the journal")
	}
	res, err := e.append(sideIdx, recs)
	if err != nil {
		e.failed = true
		return nil, err
	}
	return res, nil
}

func (e *Engine) append(sideIdx int, recs []dataset.Record) (*BatchResult, error) {
	if sideIdx < 0 || sideIdx >= len(e.sides) {
		return nil, fmt.Errorf("incremental: side %d out of range (dedup=%v)", sideIdx, e.cfg.Dedup)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("incremental: empty batch")
	}
	batch := e.nextBatch
	digest := BatchDigest(sideIdx, recs)

	// Match the batch against its journal frame when replaying.
	var frame *journal.BatchFrame
	if batch < len(e.frames) {
		frame = &e.frames[batch]
		if int(frame.Mark.Side) != sideIdx || int(frame.Mark.Records) != len(recs) || frame.Mark.Digest != digest {
			return nil, fmt.Errorf("incremental: batch %d does not match its journal frame (side %d/%d, records %d/%d, digest equal=%v): the stored batch changed since the crash",
				batch, sideIdx, frame.Mark.Side, len(recs), frame.Mark.Records, frame.Mark.Digest == digest)
		}
	}
	committedReplay := frame != nil && frame.Committed
	if frame == nil && e.cfg.Journal != nil {
		if err := e.cfg.Journal.RecordBatch(journal.BatchMark{
			Batch: uint32(batch), Side: uint8(sideIdx), Records: uint32(len(recs)), Digest: digest,
		}); err != nil {
			return nil, err
		}
	}

	// Grow the side: records, bins, live index, encodings.
	s := e.sides[sideIdx]
	base := s.data.Len()
	for _, rec := range recs {
		if err := s.data.Append(rec); err != nil {
			return nil, fmt.Errorf("incremental: %w", err)
		}
	}
	touched, err := e.binNew(sideIdx, base)
	if err != nil {
		return nil, err
	}
	s.enc = smc.EncodeRecords(s.data, e.qids, e.cfg.Scale)
	if e.tier {
		for i := base; i < s.data.Len(); i++ {
			s.clk = append(s.clk, e.tenc.Encode(bloom.FieldsOf(s.data, e.qids, i)...))
		}
	}

	// Candidate generation: new pairs only, labeled by the same predicate
	// the frozen run uses (slack rule, or bin intersection under DP).
	var batchDeltas []Delta
	groups := e.collectGroups(sideIdx, base, touched, batch, &batchDeltas)
	sort.SliceStable(groups, func(x, y int) bool {
		gx, gy := groups[x], groups[y]
		if gx.score != gy.score {
			if e.cfg.Strategy == core.MaximizeRecall {
				return gx.score > gy.score
			}
			return gx.score < gy.score
		}
		if gx.a != gy.a {
			return gx.a < gy.a
		}
		return gx.b < gy.b
	})

	spent, err := e.resolve(sideIdx, groups, batch, committedReplay, &batchDeltas)
	if err != nil {
		return nil, err
	}

	if e.cfg.Journal != nil && !committedReplay {
		if err := e.cfg.Journal.RecordBatchCommit(journal.BatchCommit{
			Batch: uint32(batch), Deltas: uint32(len(batchDeltas)), Spent: spent,
		}); err != nil {
			return nil, err
		}
	}

	e.deltas = append(e.deltas, batchDeltas...)
	e.nextBatch++
	e.stats.Batches = e.nextBatch
	e.stats.Records[sideIdx] = s.data.Len()
	e.stats.Bins[sideIdx] = len(s.bins)
	e.stats.Deltas = len(e.deltas)
	e.stats.Epoch++
	out := make([]Delta, len(batchDeltas))
	copy(out, batchDeltas)
	return &BatchResult{
		Batch: batch, Side: sideIdx, Records: len(recs),
		Deltas: out, Spent: spent, Replayed: committedReplay,
	}, nil
}

// binNew assigns every record appended at or after base to its
// fixed-level bin, inserting unseen bins into the live index (and, in DP
// mode, drawing their constant noise). It returns the touched bin ids in
// ascending order.
func (e *Engine) binNew(sideIdx, base int) ([]int32, error) {
	s := e.sides[sideIdx]
	touchedSet := make(map[int32]bool)
	for i := base; i < s.data.Len(); i++ {
		seq, err := dpblock.BinRecord(s.data, e.qids, i, e.cfg.Level)
		if err != nil {
			return nil, err
		}
		key := seq.Key()
		bi, ok := s.byKey[key]
		if !ok {
			id, err := s.live.Insert(seq)
			if err != nil {
				return nil, fmt.Errorf("incremental: %w", err)
			}
			bi = int32(id)
			if int(bi) != len(s.bins) {
				return nil, fmt.Errorf("incremental: live index id %d, want %d", bi, len(s.bins))
			}
			s.bins = append(s.bins, bin{seq: seq})
			s.byKey[key] = bi
			if e.dp {
				s.noise[bi] = dpblock.Noise(e.dpSeed(sideIdx), key, e.cfg.Epsilon, e.cfg.DPDelta)
			}
		}
		s.bins[bi].members = append(s.bins[bi].members, int32(i))
		s.binOf = append(s.binOf, bi)
		touchedSet[bi] = true
	}
	touched := make([]int32, 0, len(touchedSet))
	for bi := range touchedSet {
		touched = append(touched, bi)
	}
	sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
	return touched, nil
}

// dpSeed is the holder's noise seed, matching the frozen engine's
// arithmetic separation (DPSeed for side 0, DPSeed+1 for side 1).
func (e *Engine) dpSeed(sideIdx int) int64 { return e.cfg.DPSeed + int64(sideIdx) }

// collectGroups enumerates the batch's new candidate pairs. Certain
// blocking Matches are emitted as deltas immediately (they cost
// nothing); Unknown groups are returned scored for the budget loop;
// everything else is a certain NonMatch and is dropped unenumerated
// where the live index excluded it.
func (e *Engine) collectGroups(sideIdx, base int, touched []int32, batch int, deltas *[]Delta) []group {
	var groups []group
	buf := make([]float64, e.rule.Len())
	s := e.sides[sideIdx]

	addGroup := func(a, b int32, seqA, seqB vgh.Sequence, pairs [][2]int32) {
		if len(pairs) == 0 {
			return
		}
		label := blocking.Unknown
		if e.dp {
			// DP blocking has no certain-match evidence; intersecting bins
			// are Unknown, the rest NonMatch (dpblock.Block's predicate).
			if !dpblock.SequencesIntersect(seqA, seqB) {
				return
			}
		} else {
			label = e.rule.Decide(seqA, seqB)
			if label == blocking.NonMatch {
				return
			}
		}
		if label == blocking.Match {
			for _, p := range pairs {
				*deltas = append(*deltas, e.delta(batch, p))
				e.stats.BlockingMatches++
			}
			return
		}
		groups = append(groups, group{
			a: a, b: b,
			score: e.cfg.Heuristic.Score(e.rule.ExpectedDistances(seqA, seqB, buf)),
			pairs: pairs,
		})
	}

	if !e.cfg.Dedup {
		o := e.sides[1-sideIdx]
		for _, bi := range touched {
			b := &s.bins[bi]
			newM := newMembers(b.members, base)
			o.live.Candidates(b.seq, func(ci int) {
				oc := &o.bins[ci]
				pairs := make([][2]int32, 0, len(newM)*len(oc.members))
				if sideIdx == 0 {
					for _, i := range newM {
						for _, j := range oc.members {
							pairs = append(pairs, [2]int32{i, j})
						}
					}
					addGroup(bi, int32(ci), b.seq, oc.seq, pairs)
				} else {
					for _, i := range oc.members {
						for _, j := range newM {
							pairs = append(pairs, [2]int32{i, j})
						}
					}
					addGroup(int32(ci), bi, oc.seq, b.seq, pairs)
				}
			})
		}
		return groups
	}

	// Dedup: unordered bin pairs over one side, each processed once per
	// batch; pairs are unordered record pairs with at least one new
	// endpoint, self-pairs excluded.
	seen := make(map[[2]int32]bool)
	for _, bi := range touched {
		b := &s.bins[bi]
		s.live.Candidates(b.seq, func(ci int) {
			lo, hi := bi, int32(ci)
			if lo > hi {
				lo, hi = hi, lo
			}
			k := [2]int32{lo, hi}
			if seen[k] {
				return
			}
			seen[k] = true
			lb, hb := &s.bins[lo], &s.bins[hi]
			var pairs [][2]int32
			if lo == hi {
				m := lb.members
				for x := 0; x < len(m); x++ {
					for y := x + 1; y < len(m); y++ {
						if m[x] < int32(base) && m[y] < int32(base) {
							continue
						}
						pairs = append(pairs, [2]int32{m[x], m[y]})
					}
				}
			} else {
				for _, i := range lb.members {
					for _, j := range hb.members {
						if i < int32(base) && j < int32(base) {
							continue
						}
						if i < j {
							pairs = append(pairs, [2]int32{i, j})
						} else {
							pairs = append(pairs, [2]int32{j, i})
						}
					}
				}
			}
			addGroup(lo, hi, lb.seq, hb.seq, pairs)
		})
	}
	return groups
}

// newMembers returns the suffix of an ascending member list with record
// position ≥ base.
func newMembers(members []int32, base int) []int32 {
	i := sort.Search(len(members), func(i int) bool { return members[i] >= int32(base) })
	return members[i:]
}

// resolve runs the budget loop over the batch's uncertain groups: tier
// triage first (free), then journal replay (free), then purchased SMC
// comparisons until the lifetime pool runs dry, then residual labeling
// per the strategy.
func (e *Engine) resolve(sideIdx int, groups []group, batch int, committedReplay bool, deltas *[]Delta) (int64, error) {
	if len(groups) == 0 {
		return 0, nil
	}
	var cmp smc.Comparator
	defer func() {
		if cmp != nil {
			cmp.Close()
		}
	}()
	getCmp := func() (smc.Comparator, error) {
		if cmp != nil {
			return cmp, nil
		}
		encA := e.sides[0].enc
		encB := encA
		if !e.cfg.Dedup {
			encB = e.sides[1].enc
		}
		var err error
		cmp, err = e.cfg.Comparator(encA, encB, e.spec, e.cfg.SMCWorkers)
		if err != nil {
			return nil, fmt.Errorf("incremental: building comparator: %w", err)
		}
		return cmp, nil
	}

	var spent int64
	exhausted := false
	for _, g := range groups {
		var charger dpblock.DummyCharger
		gkey := [2]int32{g.a, g.b}
		if e.dp {
			extra := e.groupExcess(sideIdx, g) - e.dummyCharged[gkey]
			if extra < 0 {
				extra = 0
			}
			charger = dpblock.NewDeltaCharger(int64(len(g.pairs)), extra)
		}
		var paidDummies int64
		for _, p := range g.pairs {
			key := p
			// An exact purchased verdict always wins; replay is free of
			// live cost but advances the lifetime pool at original price.
			if matched, ok := e.replay[key]; ok {
				cost := int64(1)
				if e.dp {
					cost += charger.Next()
				}
				e.stats.Used += cost
				e.stats.ReplaySpent += cost
				e.stats.Replayed++
				if e.dp {
					paidDummies += cost - 1
					e.stats.DummySpent += cost - 1
				}
				spent += cost
				if matched {
					*deltas = append(*deltas, e.delta(batch, p))
				}
				continue
			}
			// Tier triage: deterministic, free, recomputed on replay.
			if e.tier {
				var dice float64
				if e.cfg.Dedup {
					dice = e.sides[0].clk[p[0]].Dice(e.sides[0].clk[p[1]])
				} else {
					dice = e.sides[0].clk[p[0]].Dice(e.sides[1].clk[p[1]])
				}
				switch bloom.Classify(dice, e.cfg.TierLow, e.cfg.TierHigh) {
				case bloom.BandMatch:
					e.stats.TierMatches++
					*deltas = append(*deltas, e.delta(batch, p))
					if err := e.journalTier(p, true, committedReplay); err != nil {
						return spent, err
					}
					continue
				case bloom.BandNonMatch:
					e.stats.TierNonMatches++
					if err := e.journalTier(p, false, committedReplay); err != nil {
						return spent, err
					}
					continue
				}
			}
			if exhausted {
				e.residual(batch, p, deltas)
				continue
			}
			cost := int64(1)
			var dummy int64
			if e.dp {
				dummy = charger.Next()
				cost += dummy
			}
			if e.cfg.Allowance > 0 && e.stats.Used+cost > e.cfg.Allowance {
				// Mirror the frozen engine's break: once a pair is
				// unaffordable, everything after it in this batch is
				// residual — partial groups stay honest and the pool is
				// never overdrawn by a cheaper later pair.
				exhausted = true
				e.residual(batch, p, deltas)
				continue
			}
			if committedReplay {
				return spent, fmt.Errorf("incremental: committed batch %d needs a fresh purchase for pair (%d,%d): journal and engine state diverged", batch, p[0], p[1])
			}
			c, err := getCmp()
			if err != nil {
				return spent, err
			}
			matched, err := c.Compare(int(p[0]), int(p[1]))
			if err != nil {
				return spent, fmt.Errorf("incremental: SMC comparison (%d,%d): %w", p[0], p[1], err)
			}
			if e.cfg.Journal != nil {
				if err := e.cfg.Journal.Record(int(p[0]), int(p[1]), matched); err != nil {
					return spent, fmt.Errorf("incremental: journal append (%d,%d): %w", p[0], p[1], err)
				}
			}
			e.stats.Used += cost
			e.stats.LiveSpent += cost
			e.stats.Purchased++
			if e.dp {
				paidDummies += dummy
				e.stats.DummySpent += dummy
			}
			spent += cost
			if matched {
				*deltas = append(*deltas, e.delta(batch, p))
			}
		}
		if e.dp {
			e.dummyCharged[gkey] += paidDummies
		}
	}
	return spent, nil
}

// residual labels a pair the pool could not afford: non-match under
// MaximizePrecision (structural precision preserved — residuals are
// never emitted), match under MaximizeRecall.
func (e *Engine) residual(batch int, p [2]int32, deltas *[]Delta) {
	if e.cfg.Strategy == core.MaximizeRecall {
		e.stats.ResidualMatches++
		*deltas = append(*deltas, e.delta(batch, p))
	}
}

// journalTier records a tier label unless the journal already holds it
// (the pair was labeled before a crash, or the whole batch is replaying).
func (e *Engine) journalTier(p [2]int32, matched, committedReplay bool) error {
	if e.cfg.Journal == nil || committedReplay || e.tierOnWAL[p] {
		return nil
	}
	if err := e.cfg.Journal.RecordTier(int(p[0]), int(p[1]), matched); err != nil {
		return fmt.Errorf("incremental: journal tier append (%d,%d): %w", p[0], p[1], err)
	}
	return nil
}

// groupExcess is the candidate bin pair's current dummy-pair surplus:
// padded products minus real products, with self-pair arithmetic for
// dedup.
func (e *Engine) groupExcess(sideIdx int, g group) int64 {
	if !e.cfg.Dedup {
		a, b := e.sides[0], e.sides[1]
		nA := int64(len(a.bins[g.a].members))
		nB := int64(len(b.bins[g.b].members))
		pA := nA + a.noise[g.a]
		pB := nB + b.noise[g.b]
		return pA*pB - nA*nB
	}
	s := e.sides[0]
	if g.a == g.b {
		n := int64(len(s.bins[g.a].members))
		p := n + s.noise[g.a]
		return p*(p-1)/2 - n*(n-1)/2
	}
	nA := int64(len(s.bins[g.a].members))
	nB := int64(len(s.bins[g.b].members))
	pA := nA + s.noise[g.a]
	pB := nB + s.noise[g.b]
	return pA*pB - nA*nB
}

// delta materializes one emitted Match pair.
func (e *Engine) delta(batch int, p [2]int32) Delta {
	d := Delta{Batch: batch, I: int(p[0]), J: int(p[1])}
	d.AliceID = e.sides[0].data.Record(d.I).EntityID
	if e.cfg.Dedup {
		d.BobID = e.sides[0].data.Record(d.J).EntityID
	} else {
		d.BobID = e.sides[1].data.Record(d.J).EntityID
	}
	return d
}
