package incremental_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"pprl/internal/blocking"
	"pprl/internal/core"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/dpblock"
	"pprl/internal/incremental"
	"pprl/internal/journal"
	"pprl/internal/testkit"
)

// ample is an allowance no test workload can exhaust.
const ample = int64(1) << 40

// batchesOf splits a dataset's records into batches of at most n.
func batchesOf(d *dataset.Dataset, n int) [][]dataset.Record {
	recs := d.Records()
	var out [][]dataset.Record
	for len(recs) > 0 {
		k := n
		if k > len(recs) {
			k = len(recs)
		}
		out = append(out, recs[:k])
		recs = recs[k:]
	}
	return out
}

// appendInterleaved drives eng through alternating alice/bob batches and
// returns the union of emitted delta pairs, failing on any duplicate
// emission (the delta contract: a pair is announced at most once).
func appendInterleaved(t *testing.T, eng *incremental.Engine, alice, bob *dataset.Dataset) map[[2]int]bool {
	t.Helper()
	ab := batchesOf(alice, alice.Len()/3+1)
	bb := batchesOf(bob, bob.Len()/2+1)
	union := make(map[[2]int]bool)
	for len(ab) > 0 || len(bb) > 0 {
		if len(ab) > 0 {
			res, err := eng.Append(0, ab[0])
			if err != nil {
				t.Fatal(err)
			}
			addDeltas(t, union, res.Deltas)
			ab = ab[1:]
		}
		if len(bb) > 0 {
			res, err := eng.Append(1, bb[0])
			if err != nil {
				t.Fatal(err)
			}
			addDeltas(t, union, res.Deltas)
			bb = bb[1:]
		}
	}
	return union
}

func addDeltas(t *testing.T, union map[[2]int]bool, ds []incremental.Delta) {
	t.Helper()
	for _, d := range ds {
		key := [2]int{d.I, d.J}
		if union[key] {
			t.Fatalf("pair (%d,%d) emitted twice", d.I, d.J)
		}
		union[key] = true
	}
}

// frozenMatches runs the frozen pipeline and enumerates its match set.
func frozenMatches(t *testing.T, alice, bob *dataset.Dataset, cfg core.Config) (*core.Result, map[[2]int]bool) {
	t.Helper()
	res, err := core.Link(core.Holder{Data: alice}, core.Holder{Data: bob}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	matches := make(map[[2]int]bool)
	for i := 0; i < alice.Len(); i++ {
		for j := 0; j < bob.Len(); j++ {
			if res.PairMatched(i, j) {
				matches[[2]int{i, j}] = true
			}
		}
	}
	return res, matches
}

// frozenConfig builds the frozen counterpart of an incremental run: both
// holders anonymize with the fixed-level binner (k is irrelevant to it),
// same rule, same absolute allowance.
func frozenConfig(t *testing.T, w *testkit.World, allowance int64) core.Config {
	t.Helper()
	lb, err := dpblock.NewLevelBinner(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(w.Alice.Schema().Names())
	cfg.Theta = w.Cfg.Theta
	cfg.Thresholds = w.Cfg.Thresholds
	cfg.AliceAnonymizer, cfg.BobAnonymizer = lb, lb
	cfg.AliceK, cfg.BobK = 1, 1
	cfg.Allowance = allowance
	cfg.Strategy = core.MaximizePrecision
	cfg.Scale = 1
	return cfg
}

func incrementalConfig(w *testkit.World, allowance int64) incremental.Config {
	return incremental.Config{
		QIDs:       w.Alice.Schema().Names(),
		Theta:      w.Cfg.Theta,
		Thresholds: w.Cfg.Thresholds,
		Allowance:  allowance,
		Strategy:   core.MaximizePrecision,
	}
}

func diffPairSets(t *testing.T, got, want map[[2]int]bool, label string) {
	t.Helper()
	for p := range want {
		if !got[p] {
			t.Errorf("%s: pair (%d,%d) in frozen match set but never emitted as a delta", label, p[0], p[1])
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("%s: delta (%d,%d) emitted but not in the frozen match set", label, p[0], p[1])
		}
	}
}

// TestIncrementalMatchesFrozen is the core equivalence oracle: the union
// of deltas across interleaved append batches must be pair-identical to
// one frozen run over the final relations, at identical purchased cost.
func TestIncrementalMatchesFrozen(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := testkit.Generate(seed)
		frozen, want := frozenMatches(t, w.Alice, w.Bob, frozenConfig(t, w, ample))
		eng, err := incremental.New(w.Alice.Schema(), incrementalConfig(w, ample))
		if err != nil {
			t.Fatal(err)
		}
		got := appendInterleaved(t, eng, w.Alice, w.Bob)
		diffPairSets(t, got, want, fmt.Sprintf("seed %d", seed))
		st := eng.Stats()
		if st.Purchased != frozen.Invocations {
			t.Errorf("seed %d: incremental purchased %d comparisons, frozen run %d", seed, st.Purchased, frozen.Invocations)
		}
		if st.Used != st.LiveSpent || st.Used != st.Purchased {
			t.Errorf("seed %d: accounting drift: used=%d live=%d purchased=%d", seed, st.Used, st.LiveSpent, st.Purchased)
		}
		if st.Epoch == 0 || st.Batches == 0 {
			t.Errorf("seed %d: stats not advancing: %+v", seed, st)
		}
	}
}

// TestIncrementalDPMatchesFrozen checks the DP mode: same delta set, and
// the telescoped dummy charges sum to exactly the frozen run's padding
// spend, so K appends cost what one release over the final counts costs.
func TestIncrementalDPMatchesFrozen(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := testkit.Generate(seed)
		cfg := frozenConfig(t, w, ample)
		cfg.AliceAnonymizer, cfg.BobAnonymizer = nil, nil
		cfg.Epsilon = 1.0
		cfg.DPSeed = seed
		frozen, want := frozenMatches(t, w.Alice, w.Bob, cfg)

		icfg := incrementalConfig(w, ample)
		icfg.Epsilon = 1.0
		icfg.DPSeed = seed
		eng, err := incremental.New(w.Alice.Schema(), icfg)
		if err != nil {
			t.Fatal(err)
		}
		got := appendInterleaved(t, eng, w.Alice, w.Bob)
		diffPairSets(t, got, want, fmt.Sprintf("dp seed %d", seed))
		st := eng.Stats()
		if st.Purchased != frozen.Invocations {
			t.Errorf("dp seed %d: purchased %d, frozen %d", seed, st.Purchased, frozen.Invocations)
		}
		if frozen.DP == nil {
			t.Fatalf("dp seed %d: frozen run has no DP stats", seed)
		}
		if st.DummySpent != frozen.DP.DummySpent {
			t.Errorf("dp seed %d: incremental dummy spend %d, frozen %d", seed, st.DummySpent, frozen.DP.DummySpent)
		}
		if st.Used != st.Purchased+st.DummySpent {
			t.Errorf("dp seed %d: used=%d ≠ purchased+dummies=%d", seed, st.Used, st.Purchased+st.DummySpent)
		}
	}
}

// TestIncrementalTierMatchesFrozen checks tier composition: identical
// delta set and identical purchased invocations (the tier's free labels
// are deterministic, so both pipelines skip the same pairs).
func TestIncrementalTierMatchesFrozen(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := testkit.Generate(seed)
		cfg := frozenConfig(t, w, ample)
		cfg.Tier = core.TierBloom
		frozen, want := frozenMatches(t, w.Alice, w.Bob, cfg)

		icfg := incrementalConfig(w, ample)
		icfg.Tier = core.TierBloom
		eng, err := incremental.New(w.Alice.Schema(), icfg)
		if err != nil {
			t.Fatal(err)
		}
		got := appendInterleaved(t, eng, w.Alice, w.Bob)
		diffPairSets(t, got, want, fmt.Sprintf("tier seed %d", seed))
		if st := eng.Stats(); st.Purchased != frozen.Invocations {
			t.Errorf("tier seed %d: purchased %d, frozen %d", seed, st.Purchased, frozen.Invocations)
		}
	}
}

// TestIncrementalDedup checks the self-linkage mode: batch splitting must
// not change the delta union, pairs are normalized (i < j, no
// self-pairs), and with an ample allowance the union equals the exact
// rule's match set over all unordered pairs.
func TestIncrementalDedup(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w := testkit.Generate(seed)
		d, err := w.Alice.Concat(w.Bob)
		if err != nil {
			t.Fatal(err)
		}
		icfg := incrementalConfig(w, ample)
		icfg.Dedup = true

		runDedup := func(batches [][]dataset.Record) (map[[2]int]bool, incremental.Stats) {
			eng, err := incremental.New(d.Schema(), icfg)
			if err != nil {
				t.Fatal(err)
			}
			if !eng.Dedup() {
				t.Fatal("engine lost the dedup flag")
			}
			union := make(map[[2]int]bool)
			for _, b := range batches {
				res, err := eng.Append(0, b)
				if err != nil {
					t.Fatal(err)
				}
				addDeltas(t, union, res.Deltas)
			}
			return union, eng.Stats()
		}

		multi, mstats := runDedup(batchesOf(d, d.Len()/4+1))
		single, sstats := runDedup(batchesOf(d, d.Len()))
		diffPairSets(t, multi, single, fmt.Sprintf("dedup seed %d multi-vs-single", seed))
		if mstats.Purchased != sstats.Purchased || mstats.Used != sstats.Used {
			t.Errorf("dedup seed %d: multi-batch spend (%d,%d) differs from single-batch (%d,%d)",
				seed, mstats.Purchased, mstats.Used, sstats.Purchased, sstats.Used)
		}

		// Ground truth: the exact decision rule over all unordered pairs.
		qids, err := d.Schema().Resolve(d.Schema().Names())
		if err != nil {
			t.Fatal(err)
		}
		rule := mustRule(t, d.Schema(), qids, w.Cfg.Theta, w.Cfg.Thresholds)
		truth := make(map[[2]int]bool)
		for i := 0; i < d.Len(); i++ {
			si := blocking.RecordSequence(d, qids, i)
			for j := i + 1; j < d.Len(); j++ {
				if rule.DecideExact(si, blocking.RecordSequence(d, qids, j)) {
					truth[[2]int{i, j}] = true
				}
			}
		}
		diffPairSets(t, multi, truth, fmt.Sprintf("dedup seed %d vs exact rule", seed))
		for p := range multi {
			if p[0] >= p[1] {
				t.Errorf("dedup seed %d: pair (%d,%d) not normalized to i<j", seed, p[0], p[1])
			}
		}
	}
}

func mustRule(t *testing.T, schema *dataset.Schema, qids []int, theta float64, thresholds []float64) *blocking.Rule {
	t.Helper()
	var rule *blocking.Rule
	var err error
	if len(thresholds) > 0 {
		rule, err = blocking.NewRule(distance.MetricsFor(schema, qids), thresholds)
	} else {
		rule, err = blocking.RuleFor(schema, qids, theta)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rule
}

// commitCrash injects a crash at the delta-exposure barrier: the verdicts
// of the target batch reach the journal but its commit record does not.
type commitCrash struct {
	*journal.Writer
	failBatch uint32
}

func (c *commitCrash) RecordBatchCommit(b journal.BatchCommit) error {
	if b.Batch == c.failBatch {
		return fmt.Errorf("injected crash before commit of batch %d", b.Batch)
	}
	return c.Writer.RecordBatchCommit(b)
}

// TestIncrementalCrashResume kills the engine between a batch's journaled
// verdicts and its commit, rebuilds it from the journal, replays the
// stored batches, and asserts the exposed delta stream equals a
// never-crashed run's — with the committed prefix replayed at zero live
// cost and no delta emitted twice.
func TestIncrementalCrashResume(t *testing.T) {
	w := testkit.Generate(3)
	batches := batchesOf(w.Alice, w.Alice.Len()/3+1)
	if len(batches) < 3 {
		t.Fatalf("fixture too small: %d batches", len(batches))
	}
	bobBatch := w.Bob.Records()
	icfg := incrementalConfig(w, ample)

	// Reference: an uninterrupted run over the same append sequence.
	ref, err := incremental.New(w.Alice.Schema(), icfg)
	if err != nil {
		t.Fatal(err)
	}
	refUnion := make(map[[2]int]bool)
	var refPerBatch [][]incremental.Delta
	appendRef := func(side int, recs []dataset.Record) {
		res, err := ref.Append(side, recs)
		if err != nil {
			t.Fatal(err)
		}
		addDeltas(t, refUnion, res.Deltas)
		refPerBatch = append(refPerBatch, res.Deltas)
	}
	appendRef(1, bobBatch)
	for _, b := range batches {
		appendRef(0, b)
	}

	// Phase 1: journaled run, crash at batch 2's commit barrier.
	path := filepath.Join(t.TempDir(), "live.wal")
	jw, err := journal.Create(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := icfg
	cfg1.Journal = &commitCrash{Writer: jw, failBatch: 2}
	eng1, err := incremental.New(w.Alice.Schema(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	exposed := make(map[[2]int]bool)
	r0, err := eng1.Append(1, bobBatch)
	if err != nil {
		t.Fatal(err)
	}
	addDeltas(t, exposed, r0.Deltas)
	r1, err := eng1.Append(0, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	addDeltas(t, exposed, r1.Deltas)
	if _, err := eng1.Append(0, batches[1]); err == nil {
		t.Fatal("injected commit crash did not surface")
	}
	// The engine is poisoned now; further appends must refuse.
	if _, err := eng1.Append(0, batches[1]); err == nil {
		t.Fatal("poisoned engine accepted another batch")
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: rebuild from the journal and re-append everything stored.
	jw2, err := journal.Resume(path, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	cfg2 := icfg
	cfg2.Journal = jw2
	cfg2.Recovered = jw2.Recovered()
	eng2, err := incremental.New(w.Alice.Schema(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng2.PendingReplay(); got != 3 {
		t.Fatalf("PendingReplay() = %d, want 3 (two committed + one open frame)", got)
	}
	// Committed batches replay: identical deltas, flagged Replayed, and
	// not re-exposed.
	for i, stored := range [][]dataset.Record{bobBatch, batches[0]} {
		side := 0
		if i == 0 {
			side = 1
		}
		res, err := eng2.Append(side, stored)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Replayed {
			t.Fatalf("committed batch %d did not replay", i)
		}
		want := refPerBatch[i]
		if len(res.Deltas) != len(want) {
			t.Fatalf("replayed batch %d emitted %d deltas, original %d", i, len(res.Deltas), len(want))
		}
		for k := range want {
			if res.Deltas[k] != want[k] {
				t.Fatalf("replayed batch %d delta %d = %+v, want %+v", i, k, res.Deltas[k], want[k])
			}
		}
	}
	if live := eng2.Stats().LiveSpent; live != 0 {
		t.Fatalf("committed replay spent %d live allowance, want 0", live)
	}
	// The torn batch re-processes: its journaled verdict prefix is free,
	// its deltas are exposed now (the crash preceded the barrier).
	res2, err := eng2.Append(0, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if res2.Replayed {
		t.Fatal("uncommitted tail batch must not report Replayed")
	}
	addDeltas(t, exposed, res2.Deltas)
	// Remaining batches run fresh.
	for _, b := range batches[2:] {
		res, err := eng2.Append(0, b)
		if err != nil {
			t.Fatal(err)
		}
		addDeltas(t, exposed, res.Deltas)
	}
	diffPairSets(t, exposed, refUnion, "crash-resume")
	st, rst := eng2.Stats(), ref.Stats()
	if st.Used != rst.Used {
		t.Errorf("resumed lifetime pool position %d, uninterrupted run %d", st.Used, rst.Used)
	}
	if st.Replayed == 0 {
		t.Error("resume replayed no verdicts despite journaled batches")
	}
	if st.Purchased+st.Replayed != rst.Purchased {
		t.Errorf("purchased %d + replayed %d ≠ uninterrupted purchases %d", st.Purchased, st.Replayed, rst.Purchased)
	}

	// A tampered stored batch must be refused, not silently relinked.
	jw3, err := journal.Resume(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw3.Close()
	cfg3 := icfg
	cfg3.Journal = jw3
	cfg3.Recovered = jw3.Recovered()
	eng3, err := incremental.New(w.Alice.Schema(), cfg3)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]dataset.Record(nil), bobBatch...)
	tampered[0].EntityID += 1000
	if _, err := eng3.Append(1, tampered); err == nil {
		t.Fatal("digest mismatch on a stored batch was not detected")
	}
}

// TestIncrementalBindingAllowance checks the weaker invariants of an
// exhausted pool: precision mode emits only true matches and never
// overdraws; recall mode emits a superset of the true matches.
func TestIncrementalBindingAllowance(t *testing.T) {
	w := testkit.Generate(7)
	qids, err := w.Alice.Schema().Resolve(w.Alice.Schema().Names())
	if err != nil {
		t.Fatal(err)
	}
	rule := mustRule(t, w.Alice.Schema(), qids, w.Cfg.Theta, w.Cfg.Thresholds)
	truth := make(map[[2]int]bool)
	for i := 0; i < w.Alice.Len(); i++ {
		si := blocking.RecordSequence(w.Alice, qids, i)
		for j := 0; j < w.Bob.Len(); j++ {
			if rule.DecideExact(si, blocking.RecordSequence(w.Bob, qids, j)) {
				truth[[2]int{i, j}] = true
			}
		}
	}
	for _, strat := range []core.Strategy{core.MaximizePrecision, core.MaximizeRecall} {
		icfg := incrementalConfig(w, 25)
		icfg.Strategy = strat
		eng, err := incremental.New(w.Alice.Schema(), icfg)
		if err != nil {
			t.Fatal(err)
		}
		got := appendInterleaved(t, eng, w.Alice, w.Bob)
		st := eng.Stats()
		if st.Used > 25 {
			t.Errorf("%v: pool overdrawn: used %d of 25", strat, st.Used)
		}
		switch strat {
		case core.MaximizePrecision:
			for p := range got {
				if !truth[p] {
					t.Errorf("precision mode emitted false pair (%d,%d)", p[0], p[1])
				}
			}
		case core.MaximizeRecall:
			for p := range truth {
				if !got[p] {
					t.Errorf("recall mode missed true pair (%d,%d)", p[0], p[1])
				}
			}
		}
	}
}

// TestIncrementalRejects exercises the config and batch validation edges.
func TestIncrementalRejects(t *testing.T) {
	w := testkit.Generate(1)
	schema := w.Alice.Schema()
	if _, err := incremental.New(schema, incremental.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	bad := incrementalConfig(w, 0)
	bad.Strategy = core.TrainClassifier
	if _, err := incremental.New(schema, bad); err == nil {
		t.Error("TrainClassifier accepted")
	}
	eng, err := incremental.New(schema, incrementalConfig(w, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Append(0, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := eng.Append(2, w.Alice.Records()); err == nil {
		t.Error("out-of-range side accepted")
	}
	ded := incrementalConfig(w, 0)
	ded.Dedup = true
	deng, err := incremental.New(schema, ded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deng.Append(1, w.Alice.Records()); err == nil {
		t.Error("dedup engine accepted side 1")
	}
}
