package blocking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pprl/internal/anonymize"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/vgh"
)

// educationFig1 is the Education VGH of the paper's Figure 1.
func educationFig1(t testing.TB) *vgh.Hierarchy {
	t.Helper()
	return vgh.MustParse("education", `ANY
  Secondary
    Junior Sec.
      9th
      10th
    Senior Sec.
      11th
      12th
  University
    Bachelors
    Grad School
      Masters
      Doctorate
`)
}

// paperViews constructs Tables I and II of the paper: relations R and S
// with their 3-anonymous and 2-anonymous generalizations R' and S'. The
// generalizations are handcrafted exactly as printed (the WorkHrs VGH of
// Figure 1 is irregular, so we do not rerun an anonymizer here).
func paperViews(t testing.TB) (r, s *anonymize.Result, rule *Rule, rRecords, sRecords []vgh.Sequence) {
	t.Helper()
	edu := educationFig1(t)
	cat := func(name string) vgh.Value { return vgh.CatValue(edu.MustLookup(name)) }
	num := func(lo, hi float64) vgh.Value { return vgh.NumValue(vgh.Interval{Lo: lo, Hi: hi}) }
	pt := func(v float64) vgh.Value { return vgh.NumValue(vgh.Point(v)) }

	// Original records (Education, WorkHrs).
	rRecords = []vgh.Sequence{
		{cat("Masters"), pt(35)}, {cat("Masters"), pt(36)}, {cat("Masters"), pt(36)},
		{cat("9th"), pt(28)}, {cat("10th"), pt(22)}, {cat("12th"), pt(33)},
	}
	sRecords = []vgh.Sequence{
		{cat("Masters"), pt(36)}, {cat("Masters"), pt(35)}, {cat("Bachelors"), pt(27)},
		{cat("11th"), pt(33)}, {cat("11th"), pt(22)}, {cat("12th"), pt(27)},
	}

	r = &anonymize.Result{
		Method: "paper", K: 3, QIDs: []int{0, 1},
		Classes: []anonymize.Class{
			{Sequence: vgh.Sequence{cat("Masters"), num(35, 37)}, Members: []int{0, 1, 2}},
			{Sequence: vgh.Sequence{cat("Secondary"), num(1, 35)}, Members: []int{3, 4, 5}},
		},
		ClassOf: []int{0, 0, 0, 1, 1, 1},
	}
	s = &anonymize.Result{
		Method: "paper", K: 2, QIDs: []int{0, 1},
		Classes: []anonymize.Class{
			{Sequence: vgh.Sequence{cat("Masters"), num(35, 37)}, Members: []int{0, 1}},
			{Sequence: vgh.Sequence{cat("ANY"), num(1, 35)}, Members: []int{2, 3}},
			{Sequence: vgh.Sequence{cat("Senior Sec."), num(1, 35)}, Members: []int{4, 5}},
		},
		ClassOf: []int{0, 0, 1, 1, 2, 2},
	}

	// θ1 = 0.5 Hamming on education, θ2 = 0.2 Euclidean with
	// normFactor 98 (the WorkHrs range [1,99)).
	var err error
	rule, err = NewRule(
		[]distance.Metric{distance.Hamming{}, distance.Euclidean{Norm: 98}},
		[]float64{0.5, 0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return r, s, rule, rRecords, sRecords
}

// TestPaperWorkedExample reproduces the Section III walkthrough: of the 36
// record pairs, 12 are mismatched and 6 matched through the anonymized
// relations, leaving 18 unknown — a blocking efficiency of 50%.
func TestPaperWorkedExample(t *testing.T) {
	r, s, rule, _, _ := paperViews(t)
	res, err := Block(r, s, rule)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatchedPairs != 6 {
		t.Errorf("matched pairs = %d, want 6", res.MatchedPairs)
	}
	if res.NonMatchedPairs != 12 {
		t.Errorf("mismatched pairs = %d, want 12", res.NonMatchedPairs)
	}
	if res.UnknownPairs != 18 {
		t.Errorf("unknown pairs = %d, want 18", res.UnknownPairs)
	}
	if got := res.Efficiency(); got != 0.5 {
		t.Errorf("blocking efficiency = %v, want 0.5", got)
	}
	if got := res.TotalPairs(); got != 36 {
		t.Errorf("total pairs = %d, want 36", got)
	}
	// Individual labels from the walkthrough.
	want := [][]Label{
		// S classes: (Masters,[35-37)), (ANY,[1-35)), (Senior Sec.,[1-35))
		{Match, Unknown, NonMatch},   // R class (Masters,[35-37))
		{NonMatch, Unknown, Unknown}, // R class (Secondary,[1-35))
	}
	for ri := range want {
		for si := range want[ri] {
			if res.Labels[ri][si] != want[ri][si] {
				t.Errorf("Labels[%d][%d] = %v, want %v", ri, si, res.Labels[ri][si], want[ri][si])
			}
		}
	}
	ups := res.UnknownGroupPairs()
	totalU := 0
	for _, g := range ups {
		totalU += g.Pairs
	}
	if len(ups) != 3 || totalU != 18 {
		t.Errorf("unknown group pairs = %d covering %d record pairs, want 3 covering 18", len(ups), totalU)
	}
	if res.UnknownGroups != int64(len(ups)) {
		t.Errorf("UnknownGroups = %d, want %d", res.UnknownGroups, len(ups))
	}
	if cap(ups) != len(ups) {
		t.Errorf("UnknownGroupPairs cap = %d, want exact %d", cap(ups), len(ups))
	}
}

// TestBlockingSound verifies against ground truth that no blocked label is
// wrong in the worked example — the 100%-precision invariant.
func TestBlockingSound(t *testing.T) {
	r, s, rule, rRecs, sRecs := paperViews(t)
	res, err := Block(r, s, rule)
	if err != nil {
		t.Fatal(err)
	}
	for ri, rc := range r.Classes {
		for si, sc := range s.Classes {
			for _, i := range rc.Members {
				for _, j := range sc.Members {
					truth := rule.DecideExact(rRecs[i], sRecs[j])
					switch res.Labels[ri][si] {
					case Match:
						if !truth {
							t.Errorf("pair (r%d,s%d) labeled M but does not match", i+1, j+1)
						}
					case NonMatch:
						if truth {
							t.Errorf("pair (r%d,s%d) labeled N but matches", i+1, j+1)
						}
					}
				}
			}
		}
	}
}

func TestRuleValidation(t *testing.T) {
	if _, err := NewRule(nil, nil); err == nil {
		t.Error("empty rule should fail")
	}
	if _, err := NewRule([]distance.Metric{distance.Hamming{}}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewRule([]distance.Metric{distance.Hamming{}}, []float64{-0.1}); err == nil {
		t.Error("negative threshold should fail")
	}
	r, err := UniformRule([]distance.Metric{distance.Hamming{}, distance.Hamming{}}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Threshold(0) != 0.05 || r.Threshold(1) != 0.05 {
		t.Error("UniformRule misconfigured")
	}
	if r.Metric(0).Name() != "hamming" {
		t.Error("Metric accessor broken")
	}
}

func TestBlockMismatchedViews(t *testing.T) {
	r, s, rule, _, _ := paperViews(t)
	bad := &anonymize.Result{QIDs: []int{0}}
	if _, err := Block(bad, s, rule); err == nil {
		t.Error("QID arity mismatch should fail")
	}
	bad2 := &anonymize.Result{QIDs: []int{0, 2}}
	if _, err := Block(r, bad2, rule); err == nil {
		t.Error("QID identity mismatch should fail")
	}
	_ = s
}

func TestExpectedDistances(t *testing.T) {
	r, s, rule, _, _ := paperViews(t)
	buf := rule.ExpectedDistances(r.Classes[0].Sequence, s.Classes[1].Sequence, nil)
	if len(buf) != 2 {
		t.Fatalf("ExpectedDistances len = %d", len(buf))
	}
	// Masters vs ANY over 7 leaves: 1 - 1/7.
	if want := 1 - 1.0/7; buf[0] < want-1e-9 || buf[0] > want+1e-9 {
		t.Errorf("expected Hamming = %v, want %v", buf[0], want)
	}
	// Reuse the buffer.
	buf2 := rule.ExpectedDistances(r.Classes[0].Sequence, s.Classes[0].Sequence, buf)
	if &buf2[0] != &buf[0] {
		t.Error("ExpectedDistances should reuse a large-enough buffer")
	}
}

// End-to-end soundness property: anonymize random data with the paper's
// method, block, and verify every M/N label against the exact rule. This
// is the theorem behind "precision is always 100%".
func TestBlockingSoundnessProperty(t *testing.T) {
	edu := vgh.MustParse("edu", `ANY
  Low
    a
    b
  High
    c
    d
`)
	ih := vgh.MustIntervalHierarchy("num", 0, 32, 2, 2)
	schema := dataset.MustSchema(dataset.CatAttr(edu), dataset.NumAttr(ih))
	leaves := []string{"a", "b", "c", "d"}
	anonymizers := []anonymize.Anonymizer{
		anonymize.NewMaxEntropy(),
		anonymize.NewDataFly(), // exercises the suppression path
		anonymize.NewMondrian(),
		anonymize.NewTDS(),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		anon := anonymizers[rng.Intn(len(anonymizers))]
		mk := func(n int) *dataset.Dataset {
			d := dataset.New(schema)
			for i := 0; i < n; i++ {
				d.MustAppend(dataset.Record{
					EntityID: i,
					Cells: []dataset.Cell{
						dataset.CatCell(edu, leaves[rng.Intn(4)]),
						dataset.NumCell(float64(rng.Intn(32))),
					},
				})
			}
			return d
		}
		dR, dS := mk(12+rng.Intn(20)), mk(12+rng.Intn(20))
		k := 1 + rng.Intn(4)
		qids := []int{0, 1}
		ar, err := anon.Anonymize(dR, qids, k)
		if err != nil {
			return false
		}
		as, err := anon.Anonymize(dS, qids, k)
		if err != nil {
			return false
		}
		theta := rng.Float64() * 0.5
		rule, err := RuleFor(schema, qids, theta)
		if err != nil {
			return false
		}
		res, err := Block(ar, as, rule)
		if err != nil {
			return false
		}
		for ri, rc := range ar.Classes {
			for si, sc := range as.Classes {
				l := res.Labels[ri][si]
				if l == Unknown {
					continue
				}
				for _, i := range rc.Members {
					for _, j := range sc.Members {
						truth := rule.DecideExact(
							RecordSequence(dR, qids, i),
							RecordSequence(dS, qids, j),
						)
						if (l == Match) != truth {
							t.Logf("seed=%d k=%d θ=%v: label %v wrong for records %d,%d", seed, k, theta, l, i, j)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
