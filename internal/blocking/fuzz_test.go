package blocking

import (
	"fmt"
	"math/rand"
	"testing"

	"pprl/internal/distance"
	"pprl/internal/vgh"
)

// fuzzTaxonomy builds a random two-level taxonomy from the fuzzed rng:
// 2-4 groups of 1-4 leaves each.
func fuzzTaxonomy(rng *rand.Rand) *vgh.Hierarchy {
	b := vgh.NewBuilder("cat", "ANY")
	groups := 2 + rng.Intn(3)
	for g := 0; g < groups; g++ {
		gname := fmt.Sprintf("g%d", g)
		b.Add("ANY", gname)
		leaves := 1 + rng.Intn(4)
		for l := 0; l < leaves; l++ {
			b.Add(gname, fmt.Sprintf("g%d-v%d", g, l))
		}
	}
	return b.MustBuild()
}

// catValueAt picks a random generalized value: a leaf or any of its
// ancestors up to the root.
func catValueAt(rng *rand.Rand, h *vgh.Hierarchy) vgh.Value {
	leaf := h.Leaf(rng.Intn(h.NumLeaves()))
	nodes := append([]*vgh.Node{leaf}, h.Ancestors(leaf)...)
	return vgh.CatValue(nodes[rng.Intn(len(nodes))])
}

// catSpecialize picks a random leaf under a generalized categorical
// value, i.e. a member of its specialization set.
func catSpecialize(rng *rand.Rand, h *vgh.Hierarchy, v vgh.Value) vgh.Value {
	lo, hi := v.Node.LeafRange()
	return vgh.CatValue(h.Leaf(lo + rng.Intn(hi-lo)))
}

// numValueAt picks a random interval at a random generalization level.
func numValueAt(rng *rand.Rand, h *vgh.IntervalHierarchy) vgh.Value {
	x := rng.Float64() * h.Max()
	level := rng.Intn(h.Depth() + 1)
	return vgh.NumValue(h.At(x, level))
}

// numSpecialize picks a random point inside a generalized interval.
func numSpecialize(rng *rand.Rand, v vgh.Value) vgh.Value {
	p := v.Iv.Lo + rng.Float64()*v.Iv.Width()
	return vgh.NumValue(vgh.Point(p))
}

// FuzzSlackDecisionRule fuzzes the load-bearing contract of the blocking
// step (paper Section IV): for any pair of generalized sequences and any
// specializations drawn from their specialization sets,
//
//	sdl(v,w) ≤ d(r,s) ≤ sds(v,w)   per attribute, and therefore
//	Decide(v,w) == Match    ⇒ DecideExact(r,s)
//	Decide(v,w) == NonMatch ⇒ !DecideExact(r,s)
//
// A violation of either implication is exactly a blocking error, which
// the paper's 100%-precision argument requires to be impossible.
func FuzzSlackDecisionRule(f *testing.F) {
	f.Add(int64(1), uint16(50))
	f.Add(int64(42), uint16(0))
	f.Add(int64(-7), uint16(999))
	f.Add(int64(52600), uint16(333))
	f.Fuzz(func(t *testing.T, seed int64, thetaBits uint16) {
		rng := rand.New(rand.NewSource(seed))
		theta := float64(thetaBits%1000) / 999

		cat := fuzzTaxonomy(rng)
		num := vgh.MustIntervalHierarchy("num", 0, float64((1+rng.Intn(5))*4), 2, 2)
		metrics := []distance.Metric{distance.Hamming{}, distance.Euclidean{Norm: num.Range()}}
		rule, err := UniformRule(metrics, theta)
		if err != nil {
			t.Fatal(err)
		}

		v := vgh.Sequence{catValueAt(rng, cat), numValueAt(rng, num)}
		w := vgh.Sequence{catValueAt(rng, cat), numValueAt(rng, num)}
		label := rule.Decide(v, w)

		// Several random specializations per generalized pair; every one
		// must respect the bounds and the label implication.
		const eps = 1e-9
		for round := 0; round < 8; round++ {
			r := vgh.Sequence{catSpecialize(rng, cat, v[0]), numSpecialize(rng, v[1])}
			s := vgh.Sequence{catSpecialize(rng, cat, w[0]), numSpecialize(rng, w[1])}
			for i, m := range metrics {
				inf, sup := m.Bounds(v[i], w[i])
				if inf > sup {
					t.Fatalf("attr %d: inverted bounds [%v, %v] for %v vs %v", i, inf, sup, v[i], w[i])
				}
				d := m.Distance(r[i], s[i])
				if d < inf-eps || d > sup+eps {
					t.Fatalf("attr %d: exact distance %v outside bounds [%v, %v] for %v⊑%v vs %v⊑%v",
						i, d, inf, sup, r[i], v[i], s[i], w[i])
				}
			}
			exact := rule.DecideExact(r, s)
			if label == Match && !exact {
				t.Fatalf("blocking error: Decide(%v, %v)=M but %v vs %v do not match (θ=%v)", v, w, r, s, theta)
			}
			if label == NonMatch && exact {
				t.Fatalf("blocking error: Decide(%v, %v)=N but %v vs %v match (θ=%v)", v, w, r, s, theta)
			}
		}
	})
}
