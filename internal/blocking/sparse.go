package blocking

import (
	"sort"
	"unsafe"

	"pprl/internal/anonymize"
)

// Stats summarizes how a blocking result was produced: how many class
// pairs exist, how many actually reached the slack rule, and how many the
// hierarchy index excluded without enumeration. Pruned pairs are always a
// subset of the NonMatch pairs — the index only excludes a pair when some
// attribute's infimum distance provably exceeds its threshold, the exact
// condition under which the rule itself would return NonMatch.
type Stats struct {
	// RClasses and SClasses are the views' equivalence-class counts.
	RClasses, SClasses int
	// ClassPairs = RClasses × SClasses.
	ClassPairs int64
	// RuleEvaluations counts class pairs the slack rule actually scored.
	RuleEvaluations int64
	// PrunedClassPairs counts class pairs the index excluded; always
	// ClassPairs − RuleEvaluations.
	PrunedClassPairs int64
	// Attrs holds one entry per rule attribute (index-built results only).
	Attrs []AttrStats
}

// AttrStats is one attribute's contribution to index pruning.
type AttrStats struct {
	// Name is the metric name ("hamming", "euclidean", …).
	Name string
	// Indexed reports whether the attribute constrains candidates: an
	// attribute whose threshold admits every S class (e.g. Hamming with
	// θ ≥ 1) or whose metric the index does not understand is skipped.
	Indexed bool
	// Admitted sums, over all R classes, the S classes this attribute
	// alone would admit; lower means the attribute prunes harder.
	Admitted int64
}

// PrunedFraction is the share of class pairs never enumerated.
func (s *Stats) PrunedFraction() float64 {
	if s.ClassPairs == 0 {
		return 0
	}
	return float64(s.PrunedClassPairs) / float64(s.ClassPairs)
}

// Label returns the slack rule's label for class pair (ri, si) under
// either representation: the dense matrix when present, otherwise the
// sparse map (where a missing entry is NonMatch).
func (res *Result) Label(ri, si int) Label {
	if res.Labels != nil {
		return res.Labels[ri][si]
	}
	if l, ok := res.sparse[[2]int32{int32(ri), int32(si)}]; ok {
		return l
	}
	return NonMatch
}

// ReleaseLabels converts a dense result to the sparse representation,
// dropping the |R-classes| × |S-classes| matrix while keeping Label and
// UnknownGroupPairs working. The engine calls it once the heuristic
// ordering is fixed, so the matrix is garbage before the SMC phase
// starts; NonMatch pairs — the overwhelming majority under effective
// blocking — cost nothing in the sparse form. Idempotent.
func (res *Result) ReleaseLabels() {
	if res.Labels == nil {
		return
	}
	sparse := make(map[[2]int32]Label, res.UnknownGroups)
	unknown := make([]GroupPair, 0, res.UnknownGroups)
	for ri, row := range res.Labels {
		for si, l := range row {
			switch l {
			case Match:
				sparse[[2]int32{int32(ri), int32(si)}] = Match
			case Unknown:
				sparse[[2]int32{int32(ri), int32(si)}] = Unknown
				unknown = append(unknown, GroupPair{
					RI:    ri,
					SI:    si,
					Pairs: res.R.Classes[ri].Size() * res.S.Classes[si].Size(),
				})
			}
		}
	}
	res.sparse = sparse
	res.unknownList = unknown
	res.Labels = nil
}

// DenseLabelsBytes estimates the memory the dense Labels matrix commits
// for a view pair: one Label per class pair plus a row header per R
// class. This is what Config.BlockingBudgetBytes is checked against.
func DenseLabelsBytes(r, s *anonymize.Result) int64 {
	rows, cols := int64(len(r.Classes)), int64(len(s.Classes))
	const sliceHeader = int64(unsafe.Sizeof([]Label(nil)))
	return rows*cols*int64(unsafe.Sizeof(Label(0))) + rows*sliceHeader
}

// ResultBuilder assembles a Result incrementally without ever holding the
// dense matrix — the back end of streaming blocking paths such as the
// hierarchy index. Builders are not safe for concurrent use; parallel
// producers collect locally and merge under their own lock.
type ResultBuilder struct {
	res *Result
}

// NewBuilder starts a sparse result over two validated views.
func NewBuilder(r, s *anonymize.Result) *ResultBuilder {
	return &ResultBuilder{res: &Result{
		R:      r,
		S:      s,
		sparse: make(map[[2]int32]Label),
	}}
}

// Observe records the rule's label for class pair (ri, si), updating the
// record-pair counts and, for M and U, the sparse map.
func (b *ResultBuilder) Observe(ri, si int, l Label) {
	res := b.res
	pairs := int64(res.R.Classes[ri].Size()) * int64(res.S.Classes[si].Size())
	switch l {
	case Match:
		res.MatchedPairs += pairs
		res.sparse[[2]int32{int32(ri), int32(si)}] = Match
	case NonMatch:
		res.NonMatchedPairs += pairs
	default:
		res.UnknownPairs += pairs
		res.UnknownGroups++
		res.sparse[[2]int32{int32(ri), int32(si)}] = Unknown
		res.unknownList = append(res.unknownList, GroupPair{RI: ri, SI: si, Pairs: int(pairs)})
	}
}

// AddNonMatched adds record pairs to the NonMatch tally in bulk: both
// evaluated NonMatch pairs (which the sparse form never stores) and pairs
// the index pruned without evaluation (certain NonMatches by
// construction).
func (b *ResultBuilder) AddNonMatched(recordPairs int64) {
	b.res.NonMatchedPairs += recordPairs
}

// Result finalizes: the unknown list is sorted into row-major (RI, SI)
// order so downstream consumers (heuristic ordering, journaled resume)
// see exactly the sequence a dense scan would have produced.
func (b *ResultBuilder) Result(stats *Stats) *Result {
	res := b.res
	sort.Slice(res.unknownList, func(i, j int) bool {
		a, c := res.unknownList[i], res.unknownList[j]
		if a.RI != c.RI {
			return a.RI < c.RI
		}
		return a.SI < c.SI
	})
	res.Stats = stats
	return res
}
