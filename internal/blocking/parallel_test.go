package blocking

import (
	"math/rand"
	"testing"

	"pprl/internal/anonymize"
	"pprl/internal/dataset"
	"pprl/internal/vgh"
)

// TestParallelMatchesSerial forces both execution paths over the same
// input and requires identical labels and counts.
func TestParallelMatchesSerial(t *testing.T) {
	edu := vgh.MustParse("edu", `ANY
  L
    a
    b
    c
  H
    d
    e
    f
`)
	ih := vgh.MustIntervalHierarchy("num", 0, 64, 2, 3)
	schema := dataset.MustSchema(dataset.CatAttr(edu), dataset.NumAttr(ih))
	rng := rand.New(rand.NewSource(8))
	leaves := []string{"a", "b", "c", "d", "e", "f"}
	mk := func(n int) *dataset.Dataset {
		d := dataset.New(schema)
		for i := 0; i < n; i++ {
			d.MustAppend(dataset.Record{EntityID: i, Cells: []dataset.Cell{
				dataset.CatCell(edu, leaves[rng.Intn(6)]),
				dataset.NumCell(float64(rng.Intn(64))),
			}})
		}
		return d
	}
	a, b := mk(400), mk(400)
	qids := []int{0, 1}
	anon := anonymize.NewMaxEntropy()
	av, err := anon.Anonymize(a, qids, 2)
	if err != nil {
		t.Fatal(err)
	}
	bv, err := anon.Anonymize(b, qids, 2)
	if err != nil {
		t.Fatal(err)
	}
	rule, err := RuleFor(schema, qids, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	old := parallelThreshold
	defer func() { parallelThreshold = old }()

	parallelThreshold = 1 << 30 // force serial
	serial, err := Block(av, bv, rule)
	if err != nil {
		t.Fatal(err)
	}
	parallelThreshold = 0 // force parallel
	parallel, err := Block(av, bv, rule)
	if err != nil {
		t.Fatal(err)
	}

	if serial.MatchedPairs != parallel.MatchedPairs ||
		serial.NonMatchedPairs != parallel.NonMatchedPairs ||
		serial.UnknownPairs != parallel.UnknownPairs {
		t.Fatalf("counts differ: serial %d/%d/%d, parallel %d/%d/%d",
			serial.MatchedPairs, serial.NonMatchedPairs, serial.UnknownPairs,
			parallel.MatchedPairs, parallel.NonMatchedPairs, parallel.UnknownPairs)
	}
	for ri := range serial.Labels {
		for si := range serial.Labels[ri] {
			if serial.Labels[ri][si] != parallel.Labels[ri][si] {
				t.Fatalf("label (%d,%d) differs", ri, si)
			}
		}
	}
}
