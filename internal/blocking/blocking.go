// Package blocking implements the blocking step of the hybrid private
// record linkage protocol (paper Section IV): given the k-anonymized views
// published by the two data holders, the slack decision rule labels every
// record pair Match, NonMatch, or Unknown using only the infimum (sdl) and
// supremum (sds) distances over the specialization sets of the generalized
// values. M and N labels are *certain* — the source of the method's 100%
// precision — while Unknown pairs are deferred to the SMC step.
//
// Because every record in an equivalence class shares the same
// generalization sequence, the rule is evaluated once per pair of classes,
// never per pair of records ("We do not need to repeat the process for
// pairs generalized to the same sequences", Section III), so blocking cost
// is quadratic in the number of distinct sequences, not records.
package blocking

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pprl/internal/anonymize"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/vgh"
)

// Label is the three-valued outcome of the slack decision rule.
type Label int8

const (
	// Unknown means the anonymized views cannot decide the pair; it goes
	// to the SMC step.
	Unknown Label = iota
	// Match means every attribute's supremum distance is within its
	// threshold: the records certainly match.
	Match
	// NonMatch means some attribute's infimum distance exceeds its
	// threshold: the records certainly do not match.
	NonMatch
)

func (l Label) String() string {
	switch l {
	case Match:
		return "M"
	case NonMatch:
		return "N"
	case Unknown:
		return "U"
	default:
		return fmt.Sprintf("Label(%d)", int8(l))
	}
}

// Rule is the matching classifier supplied by the querying party: one
// normalized distance metric and threshold per quasi-identifier attribute.
// A record pair matches iff every attribute distance is ≤ its threshold.
type Rule struct {
	metrics    []distance.Metric
	thresholds []float64
}

// NewRule validates and pairs metrics with thresholds.
func NewRule(metrics []distance.Metric, thresholds []float64) (*Rule, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("blocking: rule needs at least one attribute")
	}
	if len(metrics) != len(thresholds) {
		return nil, fmt.Errorf("blocking: %d metrics but %d thresholds", len(metrics), len(thresholds))
	}
	for i, th := range thresholds {
		if th < 0 {
			return nil, fmt.Errorf("blocking: threshold %d is negative (%v)", i, th)
		}
	}
	return &Rule{metrics: metrics, thresholds: thresholds}, nil
}

// UniformRule builds a rule with the same threshold θ on every attribute,
// the configuration of the paper's experiments (θ_i = 0.05 by default).
func UniformRule(metrics []distance.Metric, theta float64) (*Rule, error) {
	th := make([]float64, len(metrics))
	for i := range th {
		th[i] = theta
	}
	return NewRule(metrics, th)
}

// RuleFor builds the paper's default rule over a schema's QID subset:
// Hamming for categorical attributes, range-normalized Euclidean for
// continuous ones, uniform threshold θ.
func RuleFor(schema *dataset.Schema, qids []int, theta float64) (*Rule, error) {
	return UniformRule(distance.MetricsFor(schema, qids), theta)
}

// Len returns the number of attributes the rule compares.
func (r *Rule) Len() int { return len(r.metrics) }

// Metric returns the metric of attribute i.
func (r *Rule) Metric(i int) distance.Metric { return r.metrics[i] }

// Threshold returns θ_i.
func (r *Rule) Threshold(i int) float64 { return r.thresholds[i] }

// Decide applies the slack decision rule sdr (Section IV) to two
// generalization sequences:
//
//	N  if ∃i: sdl(v_i, w_i) > θ_i
//	M  if ∀i: sds(v_i, w_i) ≤ θ_i
//	U  otherwise
func (r *Rule) Decide(v, w vgh.Sequence) Label {
	allWithin := true
	for i, m := range r.metrics {
		inf, sup := m.Bounds(v[i], w[i])
		if inf > r.thresholds[i] {
			return NonMatch
		}
		if sup > r.thresholds[i] {
			allWithin = false
		}
	}
	if allWithin {
		return Match
	}
	return Unknown
}

// DecideExact applies the exact decision rule dr (Section II) to two
// fully specialized sequences: true iff every attribute distance is within
// its threshold. This is what the SMC step computes under encryption and
// what ground-truth evaluation uses in the clear.
func (r *Rule) DecideExact(a, b vgh.Sequence) bool {
	for i, m := range r.metrics {
		if m.Distance(a[i], b[i]) > r.thresholds[i] {
			return false
		}
	}
	return true
}

// ExpectedDistances returns dExp per attribute for a sequence pair, the
// inputs to the SMC selection heuristics (Section V-C).
func (r *Rule) ExpectedDistances(v, w vgh.Sequence, dst []float64) []float64 {
	if cap(dst) < len(r.metrics) {
		dst = make([]float64, len(r.metrics))
	}
	dst = dst[:len(r.metrics)]
	for i, m := range r.metrics {
		dst[i] = m.Expected(v[i], w[i])
	}
	return dst
}

// RecordSequence renders record i of d as a fully specialized sequence
// over the QID subset, the form DecideExact consumes.
func RecordSequence(d *dataset.Dataset, qids []int, i int) vgh.Sequence {
	seq := make(vgh.Sequence, len(qids))
	rec := d.Record(i)
	for j, q := range qids {
		seq[j] = rec.Value(q)
	}
	return seq
}

// GroupPair identifies a pair of equivalence classes (R-side index,
// S-side index) and caches the number of record pairs it stands for.
type GroupPair struct {
	RI, SI int
	// Pairs = |class R| × |class S|.
	Pairs int
}

// Result is the outcome of the blocking step over two anonymized views.
type Result struct {
	// R and S are the data holders' published views.
	R, S *anonymize.Result
	// Labels[ri][si] is the slack rule's label for the class pair. It is
	// nil for streamed results and after ReleaseLabels; use Label, which
	// works in both representations.
	Labels [][]Label
	// MatchedPairs, NonMatchedPairs and UnknownPairs count *record* pairs
	// under each label.
	MatchedPairs    int64
	NonMatchedPairs int64
	UnknownPairs    int64
	// UnknownGroups counts the *class* pairs labeled Unknown, so
	// UnknownGroupPairs can size its output exactly.
	UnknownGroups int64
	// Stats carries the per-attribute pruning statistics when the result
	// was produced by the hierarchy index (nil for dense Block).
	Stats *Stats

	// sparse holds only the M and U class pairs when Labels is nil; a
	// missing key is NonMatch (which is why NonMatch, not the zero-valued
	// Unknown, is the implicit label).
	sparse map[[2]int32]Label
	// unknownList is the precomputed U class-pair list for the sparse
	// representation, sorted by (RI, SI) to match the dense scan order.
	unknownList []GroupPair
}

// parallelThreshold is the class-pair count above which Block fans out
// across CPUs. Small inputs stay serial to avoid goroutine overhead.
var parallelThreshold = 1 << 14

// Block evaluates the slack decision rule on every pair of equivalence
// classes. The rule's attribute order must correspond to the views' QID
// order, and both views must have been built over the same QID list.
// Large inputs are processed in parallel; the result is identical either
// way.
func Block(r, s *anonymize.Result, rule *Rule) (*Result, error) {
	if err := ValidateViews(r, s, rule); err != nil {
		return nil, err
	}
	res := &Result{R: r, S: s, Labels: make([][]Label, len(r.Classes))}
	workers := runtime.GOMAXPROCS(0)
	if len(r.Classes)*len(s.Classes) < parallelThreshold || workers < 2 {
		workers = 1
	}
	var (
		wg                           sync.WaitGroup
		nextRow                      atomic.Int64
		matched, nonMatched, unknown atomic.Int64
		unknownGroups                atomic.Int64
	)
	worker := func() {
		defer wg.Done()
		var m, n, u, ug int64
		for {
			ri := int(nextRow.Add(1)) - 1
			if ri >= len(r.Classes) {
				break
			}
			row := make([]Label, len(s.Classes))
			rc := &r.Classes[ri]
			for si := range s.Classes {
				sc := &s.Classes[si]
				l := rule.Decide(rc.Sequence, sc.Sequence)
				row[si] = l
				pairs := int64(rc.Size()) * int64(sc.Size())
				switch l {
				case Match:
					m += pairs
				case NonMatch:
					n += pairs
				default:
					u += pairs
					ug++
				}
			}
			res.Labels[ri] = row
		}
		matched.Add(m)
		nonMatched.Add(n)
		unknown.Add(u)
		unknownGroups.Add(ug)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	res.MatchedPairs = matched.Load()
	res.NonMatchedPairs = nonMatched.Load()
	res.UnknownPairs = unknown.Load()
	res.UnknownGroups = unknownGroups.Load()
	return res, nil
}

// ValidateViews checks that two anonymized views and a rule agree on the
// QID list, the precondition shared by every blocking path (dense Block
// and the hierarchy index).
func ValidateViews(r, s *anonymize.Result, rule *Rule) error {
	if len(r.QIDs) != rule.Len() || len(s.QIDs) != rule.Len() {
		return fmt.Errorf("blocking: rule has %d attributes, views have %d and %d QIDs",
			rule.Len(), len(r.QIDs), len(s.QIDs))
	}
	for i := range r.QIDs {
		if r.QIDs[i] != s.QIDs[i] {
			return fmt.Errorf("blocking: views disagree on QID %d (%d vs %d)", i, r.QIDs[i], s.QIDs[i])
		}
	}
	return nil
}

// TotalPairs returns |R| × |S| in record pairs.
func (res *Result) TotalPairs() int64 {
	return res.MatchedPairs + res.NonMatchedPairs + res.UnknownPairs
}

// Efficiency returns the paper's blocking-efficiency measure: the fraction
// of record pairs permanently classified (M or N) by the slack rule.
func (res *Result) Efficiency() float64 {
	total := res.TotalPairs()
	if total == 0 {
		return 0
	}
	return float64(res.MatchedPairs+res.NonMatchedPairs) / float64(total)
}

// UnknownGroupPairs lists the class pairs labeled U, the SMC step's
// candidate set, in row-major (RI, SI) order under both representations.
// The output is sized from the counts Block already took, so a sweep
// calling this per configuration does one allocation instead of
// log₂(|U|) slice growths. Callers may reorder the returned slice.
func (res *Result) UnknownGroupPairs() []GroupPair {
	if res.Labels == nil {
		return append([]GroupPair(nil), res.unknownList...)
	}
	out := make([]GroupPair, 0, res.UnknownGroups)
	for ri, row := range res.Labels {
		for si, l := range row {
			if l == Unknown {
				out = append(out, GroupPair{
					RI:    ri,
					SI:    si,
					Pairs: res.R.Classes[ri].Size() * res.S.Classes[si].Size(),
				})
			}
		}
	}
	return out
}
