package blocking

import (
	"math/rand"
	"testing"

	"pprl/internal/adult"
	"pprl/internal/anonymize"
	"pprl/internal/dataset"
)

// benchFixture anonymizes a mid-size workload at low k so there are
// enough equivalence classes for the class-pair loop to matter.
func benchFixture(b *testing.B) (av, bv *anonymize.Result, rule *Rule) {
	b.Helper()
	full := adult.Generate(3000, 13)
	alice, bob := dataset.SplitOverlap(full, rand.New(rand.NewSource(14)))
	qids, err := full.Schema().Resolve(adult.DefaultQIDs())
	if err != nil {
		b.Fatal(err)
	}
	anon := anonymize.NewMaxEntropy()
	av, err = anon.Anonymize(alice, qids, 4)
	if err != nil {
		b.Fatal(err)
	}
	bv, err = anon.Anonymize(bob, qids, 4)
	if err != nil {
		b.Fatal(err)
	}
	rule, err = RuleFor(full.Schema(), qids, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	return av, bv, rule
}

func benchBlock(b *testing.B, threshold int) {
	b.Helper()
	av, bv, rule := benchFixture(b)
	old := parallelThreshold
	parallelThreshold = threshold
	defer func() { parallelThreshold = old }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Block(av, bv, rule)
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalPairs() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkBlockSerial and BenchmarkBlockParallel quantify the fan-out
// speedup of the class-pair loop.
func BenchmarkBlockSerial(b *testing.B)   { benchBlock(b, 1<<62) }
func BenchmarkBlockParallel(b *testing.B) { benchBlock(b, 0) }
