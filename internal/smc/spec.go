package smc

import (
	"fmt"
	"io"
	"math"
	"math/bits"

	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distance"
	"pprl/internal/paillier"
)

// AttrMode selects the per-attribute comparison the circuit evaluates.
type AttrMode int

const (
	// ModeThreshold checks (a−b)² ≤ T: the Euclidean comparison on a
	// scaled integer encoding.
	ModeThreshold AttrMode = iota
	// ModeEquality checks a == b: the Hamming comparison with θ < 1,
	// where only distance 0 satisfies the threshold.
	ModeEquality
	// ModeAlways accepts the attribute unconditionally: a Hamming
	// comparison with θ ≥ 1, which every pair satisfies. No ciphertexts
	// are exchanged for such attributes.
	ModeAlways
)

func (m AttrMode) String() string {
	switch m {
	case ModeThreshold:
		return "threshold"
	case ModeEquality:
		return "equality"
	case ModeAlways:
		return "always"
	default:
		return fmt.Sprintf("AttrMode(%d)", int(m))
	}
}

// Packing selects the encoding of Bob's result message (DESIGN.md §11).
type Packing int

const (
	// PackingOff sends one result ciphertext per active attribute — the
	// original wire format, and the zero value so a zero Spec keeps it.
	PackingOff Packing = iota
	// PackingPacked slot-packs the blinded per-attribute outputs into
	// ⌈d/slots⌉ ciphertexts after the shuffle, cutting MsgResult bytes
	// and the querying party's decryptions by ~d×. Verdict-identical to
	// PackingOff; ignored under RevealDistance, whose positional
	// per-attribute distances cannot be merged.
	PackingPacked
)

func (p Packing) String() string {
	switch p {
	case PackingOff:
		return "off"
	case PackingPacked:
		return "packed"
	default:
		return fmt.Sprintf("Packing(%d)", int(p))
	}
}

// DefaultValueBits bounds encoded attribute magnitudes (|v| < 2^30) when
// a packing spec does not set its own bound. Leaf indexes and scaled
// continuous values in this codebase are far below it; the bound exists
// so the packed slot width is derivable from public parameters alone.
const DefaultValueBits = 30

// packSlackBits is headroom added to the derived slot width so the
// packed magnitude analysis never sits exactly on a power-of-two edge.
const packSlackBits = 2

// AttrSpec configures one attribute of the secure comparison.
type AttrSpec struct {
	Mode AttrMode
	// T is the inclusive bound on the squared integer difference for
	// ModeThreshold.
	T int64
}

// Spec is the public classifier description all three parties share: the
// per-attribute comparison modes and integer thresholds, plus the fixed-
// point scale used to encode continuous values.
type Spec struct {
	Attrs []AttrSpec
	// Scale is the fixed-point factor applied to continuous values
	// before encryption (v ↦ round(v·Scale)).
	Scale int64
	// RevealDistance switches to the paper's base protocol where the
	// querying party decrypts the squared distances themselves and
	// compares locally, instead of learning only the sign of a blinded,
	// threshold-shifted value.
	RevealDistance bool
	// ShuffleAttributes makes Bob permute the per-attribute result
	// ciphertexts randomly for every comparison, so the querying party
	// learns how many attributes violated their thresholds but not which
	// ones. The match verdict is order-independent (a pair matches iff
	// every attribute is within threshold), so correctness is unchanged.
	// Ignored under RevealDistance, whose per-attribute comparison needs
	// positional thresholds.
	ShuffleAttributes bool
	// Packing selects Bob's result encoding: PackingOff (one ciphertext
	// per active attribute) or PackingPacked (slot-packed). Both ends
	// derive the same PackPlan from the spec and the public modulus, so
	// no extra negotiation happens on the wire.
	Packing Packing
	// ValueBits bounds encoded attribute magnitudes (|v| < 2^ValueBits)
	// under PackingPacked; 0 means DefaultValueBits. The slot width is
	// derived from it, and the engines reject out-of-bound records
	// before any ciphertext is built.
	ValueBits int
}

// valueBits resolves the packing magnitude bound.
func (s *Spec) valueBits() int {
	if s.ValueBits > 0 {
		return s.ValueBits
	}
	return DefaultValueBits
}

// packActive reports whether this spec's results travel packed.
func (s *Spec) packActive() bool {
	return s.Packing == PackingPacked && !s.RevealDistance
}

// slotBits derives the packed slot width w from the public parameters:
// Bob's blinded output is ρ·(d²−T−1)+δ with ρ,δ < 2^blindBits,
// |d| < 2^{ValueBits+1} and T the largest threshold, so its magnitude is
// below 2^{blindBits+mag+1}; one more bit gives the sign offset 2^{w-1}
// headroom, plus fixed slack.
func (s *Spec) slotBits() int {
	mag := 2*s.valueBits() + 2 // d² = (a−b)² < 2^{2·ValueBits+2}
	for _, a := range s.Attrs {
		if a.Mode != ModeThreshold {
			continue
		}
		t := a.T
		if t < 0 {
			t = -t
		}
		if tb := bits.Len64(uint64(t) + 1); tb > mag {
			mag = tb
		}
	}
	return blindBits + mag + 2 + packSlackBits
}

// packPlan derives the packing geometry shared by Bob and the querying
// party from the spec and the public modulus size, failing fast when the
// derived slot does not fit the modulus.
func (s *Spec) packPlan(modBits int) (paillier.PackPlan, error) {
	plan, err := paillier.NewPackPlan(modBits, s.slotBits())
	if err != nil {
		return paillier.PackPlan{}, fmt.Errorf("packed results need w=%d-bit slots: %w (use a larger key, lower Spec.ValueBits, or disable packing)", s.slotBits(), err)
	}
	return plan, nil
}

// checkRecords enforces the packing magnitude bound on a holder's
// encoded records before any of them is encrypted: a value at or beyond
// 2^ValueBits could overflow its slot, which packing cannot detect
// after the fact (the carry lands in a neighbouring slot).
func (s *Spec) checkRecords(records [][]int64) error {
	if !s.packActive() || s.valueBits() >= 62 {
		return nil
	}
	limit := int64(1) << uint(s.valueBits())
	active := s.activeAttrs()
	for i, rec := range records {
		for _, ai := range active {
			if v := rec[ai]; v <= -limit || v >= limit {
				return fmt.Errorf("record %d attribute %d value %d exceeds the packing bound ±2^%d (raise Spec.ValueBits or disable packing)", i, ai, v, s.valueBits())
			}
		}
	}
	return nil
}

// SpecFromRule translates the querying party's matching rule into circuit
// parameters. Hamming attributes become equality tests (or ModeAlways if
// θ ≥ 1); Euclidean attributes become squared-threshold tests with
// T = ⌊(θ·norm·scale)²⌋ — for integer-valued data at scale 1 this is
// exactly equivalent to the clear-text rule, because the squared integer
// difference can never land strictly between T and (θ·norm)². Metrics
// outside {Hamming, Euclidean} (e.g. edit distance) need a different
// circuit and are rejected.
func SpecFromRule(rule *blocking.Rule, scale int64) (*Spec, error) {
	if scale < 1 {
		return nil, fmt.Errorf("smc: scale must be ≥ 1, got %d", scale)
	}
	spec := &Spec{Scale: scale, Attrs: make([]AttrSpec, rule.Len())}
	for i := 0; i < rule.Len(); i++ {
		theta := rule.Threshold(i)
		switch m := rule.Metric(i).(type) {
		case distance.Hamming:
			if theta >= 1 {
				spec.Attrs[i] = AttrSpec{Mode: ModeAlways}
			} else {
				spec.Attrs[i] = AttrSpec{Mode: ModeEquality}
			}
		case distance.Euclidean:
			bound := theta * m.Norm * float64(scale)
			spec.Attrs[i] = AttrSpec{Mode: ModeThreshold, T: int64(math.Floor(bound * bound))}
		default:
			return nil, fmt.Errorf("smc: attribute %d uses metric %q, which has no arithmetic circuit", i, rule.Metric(i).Name())
		}
	}
	return spec, nil
}

// EncodeRecords converts a dataset's QID projection into the integer
// vectors the protocol encrypts: categorical leaves become their leaf
// index, continuous values are fixed-point scaled.
func EncodeRecords(d *dataset.Dataset, qids []int, scale int64) [][]int64 {
	out := make([][]int64, d.Len())
	for i := 0; i < d.Len(); i++ {
		out[i] = encodeRecord(d.Schema(), d.Record(i), qids, scale)
	}
	return out
}

// encodeRecord encodes one record's QID projection.
func encodeRecord(schema *dataset.Schema, rec dataset.Record, qids []int, scale int64) []int64 {
	row := make([]int64, len(qids))
	for j, q := range qids {
		if schema.Attr(q).Kind == dataset.Categorical {
			lo, _ := rec.Cells[q].Node.LeafRange()
			row[j] = int64(lo)
		} else {
			row[j] = int64(math.Round(rec.Cells[q].Num * float64(scale)))
		}
	}
	return row
}

// EncodeStream is the out-of-core counterpart of EncodeRecords: it drains
// a chunked dataset.Stream and encodes each chunk as it arrives, so the
// only full-relation state ever resident is the encoded rows themselves —
// 8 bytes per quasi-identifier per record, not parsed Records or a
// Dataset. A million-record holder feeds the SMC engines (or ships rows
// to a distributed worker fleet) through this path.
func EncodeStream(s *dataset.Stream, qids []int, scale int64) ([][]int64, error) {
	var out [][]int64
	for {
		chunk, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		for _, rec := range chunk {
			out = append(out, encodeRecord(s.Schema(), rec, qids, scale))
		}
	}
}

// Matches evaluates the spec's integer arithmetic in the clear: the
// reference semantics both the secure circuit and the plaintext oracle
// must agree with.
func (s *Spec) Matches(a, b []int64) bool {
	for i, att := range s.Attrs {
		switch att.Mode {
		case ModeAlways:
			continue
		case ModeEquality:
			if a[i] != b[i] {
				return false
			}
		case ModeThreshold:
			d := a[i] - b[i]
			if d*d > att.T {
				return false
			}
		}
	}
	return true
}
