package smc

import (
	"fmt"
	"math"

	"pprl/internal/blocking"
	"pprl/internal/dataset"
	"pprl/internal/distance"
)

// AttrMode selects the per-attribute comparison the circuit evaluates.
type AttrMode int

const (
	// ModeThreshold checks (a−b)² ≤ T: the Euclidean comparison on a
	// scaled integer encoding.
	ModeThreshold AttrMode = iota
	// ModeEquality checks a == b: the Hamming comparison with θ < 1,
	// where only distance 0 satisfies the threshold.
	ModeEquality
	// ModeAlways accepts the attribute unconditionally: a Hamming
	// comparison with θ ≥ 1, which every pair satisfies. No ciphertexts
	// are exchanged for such attributes.
	ModeAlways
)

func (m AttrMode) String() string {
	switch m {
	case ModeThreshold:
		return "threshold"
	case ModeEquality:
		return "equality"
	case ModeAlways:
		return "always"
	default:
		return fmt.Sprintf("AttrMode(%d)", int(m))
	}
}

// AttrSpec configures one attribute of the secure comparison.
type AttrSpec struct {
	Mode AttrMode
	// T is the inclusive bound on the squared integer difference for
	// ModeThreshold.
	T int64
}

// Spec is the public classifier description all three parties share: the
// per-attribute comparison modes and integer thresholds, plus the fixed-
// point scale used to encode continuous values.
type Spec struct {
	Attrs []AttrSpec
	// Scale is the fixed-point factor applied to continuous values
	// before encryption (v ↦ round(v·Scale)).
	Scale int64
	// RevealDistance switches to the paper's base protocol where the
	// querying party decrypts the squared distances themselves and
	// compares locally, instead of learning only the sign of a blinded,
	// threshold-shifted value.
	RevealDistance bool
	// ShuffleAttributes makes Bob permute the per-attribute result
	// ciphertexts randomly for every comparison, so the querying party
	// learns how many attributes violated their thresholds but not which
	// ones. The match verdict is order-independent (a pair matches iff
	// every attribute is within threshold), so correctness is unchanged.
	// Ignored under RevealDistance, whose per-attribute comparison needs
	// positional thresholds.
	ShuffleAttributes bool
}

// SpecFromRule translates the querying party's matching rule into circuit
// parameters. Hamming attributes become equality tests (or ModeAlways if
// θ ≥ 1); Euclidean attributes become squared-threshold tests with
// T = ⌊(θ·norm·scale)²⌋ — for integer-valued data at scale 1 this is
// exactly equivalent to the clear-text rule, because the squared integer
// difference can never land strictly between T and (θ·norm)². Metrics
// outside {Hamming, Euclidean} (e.g. edit distance) need a different
// circuit and are rejected.
func SpecFromRule(rule *blocking.Rule, scale int64) (*Spec, error) {
	if scale < 1 {
		return nil, fmt.Errorf("smc: scale must be ≥ 1, got %d", scale)
	}
	spec := &Spec{Scale: scale, Attrs: make([]AttrSpec, rule.Len())}
	for i := 0; i < rule.Len(); i++ {
		theta := rule.Threshold(i)
		switch m := rule.Metric(i).(type) {
		case distance.Hamming:
			if theta >= 1 {
				spec.Attrs[i] = AttrSpec{Mode: ModeAlways}
			} else {
				spec.Attrs[i] = AttrSpec{Mode: ModeEquality}
			}
		case distance.Euclidean:
			bound := theta * m.Norm * float64(scale)
			spec.Attrs[i] = AttrSpec{Mode: ModeThreshold, T: int64(math.Floor(bound * bound))}
		default:
			return nil, fmt.Errorf("smc: attribute %d uses metric %q, which has no arithmetic circuit", i, rule.Metric(i).Name())
		}
	}
	return spec, nil
}

// EncodeRecords converts a dataset's QID projection into the integer
// vectors the protocol encrypts: categorical leaves become their leaf
// index, continuous values are fixed-point scaled.
func EncodeRecords(d *dataset.Dataset, qids []int, scale int64) [][]int64 {
	out := make([][]int64, d.Len())
	for i := 0; i < d.Len(); i++ {
		rec := d.Record(i)
		row := make([]int64, len(qids))
		for j, q := range qids {
			if d.Schema().Attr(q).Kind == dataset.Categorical {
				lo, _ := rec.Cells[q].Node.LeafRange()
				row[j] = int64(lo)
			} else {
				row[j] = int64(math.Round(rec.Cells[q].Num * float64(scale)))
			}
		}
		out[i] = row
	}
	return out
}

// Matches evaluates the spec's integer arithmetic in the clear: the
// reference semantics both the secure circuit and the plaintext oracle
// must agree with.
func (s *Spec) Matches(a, b []int64) bool {
	for i, att := range s.Attrs {
		switch att.Mode {
		case ModeAlways:
			continue
		case ModeEquality:
			if a[i] != b[i] {
				return false
			}
		case ModeThreshold:
			d := a[i] - b[i]
			if d*d > att.T {
				return false
			}
		}
	}
	return true
}
