package smc

import (
	"crypto/rand"
	"math/big"
	"strings"
	"testing"

	"pprl/internal/paillier"
)

// failure-injection tests: every party loop must reject malformed or
// out-of-protocol messages with a descriptive error instead of hanging or
// panicking.

func startAlice(t *testing.T, records [][]int64, spec *Spec) (query, bob Conn, errs chan error) {
	t.Helper()
	qa, aq := NewConnPair()
	ab, ba := NewConnPair()
	errs = make(chan error, 1)
	go func() { errs <- RunAlice(aq, ab, records, spec) }()
	return qa, ba, errs
}

func startBob(t *testing.T, records [][]int64, spec *Spec) (query, alice Conn, errs chan error) {
	t.Helper()
	qb, bq := NewConnPair()
	ab, ba := NewConnPair()
	errs = make(chan error, 1)
	go func() { errs <- RunBob(bq, ba, records, spec) }()
	return qb, ab, errs
}

func sendKey(t *testing.T, c Conn) *paillier.PrivateKey {
	t.Helper()
	sk, err := paillier.GenerateKey(rand.Reader, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(&Message{Kind: MsgPublicKey, N: sk.N}); err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestAliceRejectsGarbageBeforeKey(t *testing.T) {
	spec := testSpec()
	qa, _, errs := startAlice(t, [][]int64{{1, 2, 3}}, spec)
	if err := qa.Send(&Message{Kind: MsgCompare, Record: 0}); err != nil {
		t.Fatal(err)
	}
	err := <-errs
	if err == nil || !strings.Contains(err.Error(), "public key") {
		t.Errorf("alice error = %v, want public-key complaint", err)
	}
}

func TestAliceRejectsOutOfRangeRecord(t *testing.T) {
	spec := testSpec()
	qa, _, errs := startAlice(t, [][]int64{{1, 2, 3}}, spec)
	sendKey(t, qa)
	if err := qa.Send(&Message{Kind: MsgCompare, Record: 7}); err != nil {
		t.Fatal(err)
	}
	err := <-errs
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("alice error = %v, want out-of-range complaint", err)
	}
}

func TestAliceRejectsUnexpectedKind(t *testing.T) {
	spec := testSpec()
	qa, _, errs := startAlice(t, [][]int64{{1, 2, 3}}, spec)
	sendKey(t, qa)
	if err := qa.Send(&Message{Kind: MsgResult}); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err == nil {
		t.Error("alice should reject a MsgResult from the querying party")
	}
}

func TestBobRejectsMalformedShares(t *testing.T) {
	spec := testSpec()
	qb, alice, errs := startBob(t, [][]int64{{1, 2, 3}}, spec)
	sendKey(t, qb)
	if err := qb.Send(&Message{Kind: MsgCompare, Record: 0}); err != nil {
		t.Fatal(err)
	}
	// Wrong arity: the spec has two active attributes.
	if err := alice.Send(&Message{Kind: MsgShares, Sq: []*big.Int{big.NewInt(1)}, Lin: []*big.Int{big.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	err := <-errs
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("bob error = %v, want malformed-shares complaint", err)
	}
}

func TestBobRejectsOutOfRangeRecord(t *testing.T) {
	spec := testSpec()
	qb, _, errs := startBob(t, [][]int64{{1, 2, 3}}, spec)
	sendKey(t, qb)
	if err := qb.Send(&Message{Kind: MsgCompare, Record: -1}); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err == nil {
		t.Error("bob should reject a negative record index")
	}
}

func TestPartyStopsOnClosedConn(t *testing.T) {
	spec := testSpec()
	qa, _, errs := startAlice(t, [][]int64{{1, 2, 3}}, spec)
	qa.Close()
	if err := <-errs; err == nil {
		t.Error("alice should surface a transport error when the query link closes")
	}
}

func TestQueryRejectsBadResult(t *testing.T) {
	// A malicious Bob answering with garbage ciphertexts must not crash
	// the querying party.
	spec := testSpec()
	qa, aq := NewConnPair()
	qb, bq := NewConnPair()
	go func() {
		// Fake Alice: consume the key and request, do nothing else.
		aq.Recv()
		aq.Recv()
	}()
	go func() {
		bq.Recv() // key
		bq.Recv() // compare
		// Garbage: right arity (2 active attrs), invalid ciphertext 0.
		bq.Send(&Message{Kind: MsgResult, Res: []*big.Int{big.NewInt(0), big.NewInt(0)}})
	}()
	q, err := NewQuerySession(qa, qb, spec, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Compare(0, 0); err == nil {
		t.Error("querying party should reject invalid ciphertexts")
	}
}

func TestQueryRejectsWrongArityResult(t *testing.T) {
	spec := testSpec()
	qa, aq := NewConnPair()
	qb, bq := NewConnPair()
	go func() {
		aq.Recv()
		aq.Recv()
	}()
	go func() {
		bq.Recv()
		bq.Recv()
		bq.Send(&Message{Kind: MsgResult, Res: []*big.Int{big.NewInt(5)}})
	}()
	q, err := NewQuerySession(qa, qb, spec, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Compare(0, 0); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("error = %v, want malformed-result complaint", err)
	}
}

func TestReceiveKeyRejectsBadModulus(t *testing.T) {
	a, b := NewConnPair()
	go a.Send(&Message{Kind: MsgPublicKey, N: big.NewInt(-5)})
	if _, err := receiveKey(b); err == nil {
		t.Error("non-positive modulus should be rejected")
	}
}
