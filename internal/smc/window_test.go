package smc

import (
	"testing"
)

// TestPipelineWindowFor: the window shrinks to the smallest frame buffer
// among the session's connections and never drops below one request.
func TestPipelineWindowFor(t *testing.T) {
	wide, _ := NewConnPair()
	narrow, _ := NewConnPairBuffer(3)
	tiny, _ := NewConnPairBuffer(1)

	if w := pipelineWindowFor(wide, wide); w != defaultPipelineWindow {
		t.Errorf("wide window = %d, want %d", w, defaultPipelineWindow)
	}
	if w := pipelineWindowFor(wide, narrow); w != 3 {
		t.Errorf("narrow window = %d, want 3", w)
	}
	if w := pipelineWindowFor(tiny, narrow); w != 1 {
		t.Errorf("tiny window = %d, want 1", w)
	}
	// Unbuffered transports (e.g. TCP) keep the default.
	if w := pipelineWindowFor(); w != defaultPipelineWindow {
		t.Errorf("no-conn window = %d, want %d", w, defaultPipelineWindow)
	}
}

// TestCompareBatchTinyBuffer is the regression test for the pipelining
// window: with a frame buffer far below the old hard-coded window of 16,
// a large batch must still complete (the session caps in-flight requests
// at the buffer size, so no Send can deadlock against unread results)
// and return the same verdicts as the plaintext oracle.
func TestCompareBatchTinyBuffer(t *testing.T) {
	spec := testSpec()
	alice := shardedTestRecords(7, 11)
	bob := shardedTestRecords(7, 12)
	pairs := allPairs(len(alice), len(bob)) // 49 pairs ≫ buffer of 2

	qa, aq := NewConnPairBuffer(2)
	qb, bq := NewConnPairBuffer(2)
	ab, ba := NewConnPairBuffer(2)
	errs := make(chan error, 2)
	go func() { errs <- RunAlice(aq, ab, alice, spec) }()
	go func() { errs <- RunBob(bq, ba, bob, spec) }()

	q, err := NewQuerySession(qa, qb, spec, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	if q.window != 2 {
		t.Fatalf("session window = %d, want 2", q.window)
	}

	got, err := q.CompareBatch(pairs)
	if err != nil {
		t.Fatalf("CompareBatch over tiny buffer: %v", err)
	}
	plain := NewPlainComparator(spec, alice, bob)
	for k, p := range pairs {
		truth, _ := plain.Compare(p[0], p[1])
		if got[k] != truth {
			t.Errorf("pair %v: got %v, want %v", p, got[k], truth)
		}
	}

	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Errorf("party loop: %v", err)
		}
	}
	for _, c := range []Conn{qa, qb, ab} {
		c.Close()
	}
}
