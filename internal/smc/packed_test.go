package smc

import (
	"math/big"
	"strings"
	"testing"
)

// packedSpec returns testSpec with packed results.
func packedSpec() *Spec {
	s := testSpec()
	s.Packing = PackingPacked
	return s
}

// packedRecords exercises negative values and both verdicts under
// testSpec (equality attr, threshold T=16 attr, always attr).
func packedRecords() (alice, bob [][]int64, pairs [][2]int) {
	alice = [][]int64{{1, 10, 0}, {2, -3, 5}, {3, 100, 1}, {1, -20, 9}}
	bob = [][]int64{{1, 14, 7}, {2, 1, 0}, {9, 100, 2}, {1, -17, 3}}
	for i := range alice {
		for j := range bob {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return alice, bob, pairs
}

// runComparator collects per-pair verdicts.
func runComparator(t *testing.T, cmp Comparator, pairs [][2]int) []bool {
	t.Helper()
	out := make([]bool, len(pairs))
	for k, p := range pairs {
		got, err := cmp.Compare(p[0], p[1])
		if err != nil {
			t.Fatalf("Compare(%d,%d): %v", p[0], p[1], err)
		}
		out[k] = got
	}
	return out
}

// TestPackedMatchesUnpacked pins the packed engines — serial and sharded,
// with and without the attribute shuffle — to the plaintext oracle, and
// checks the packed accounting: one decryption per packed ciphertext
// instead of one per attribute, and strictly fewer result bytes.
func TestPackedMatchesUnpacked(t *testing.T) {
	alice, bob, pairs := packedRecords()
	plain := NewPlainComparator(testSpec(), alice, bob)
	want := runComparator(t, plain, pairs)

	for _, shuffle := range []bool{false, true} {
		spec := packedSpec()
		spec.ShuffleAttributes = shuffle
		packed, err := NewLocalSecure(spec, alice, bob, testKeyBits)
		if err != nil {
			t.Fatal(err)
		}
		got := runComparator(t, packed, pairs)
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("shuffle=%v pair %v: packed %v, oracle %v", shuffle, pairs[k], got[k], want[k])
			}
		}
		if packed.Invocations() != int64(len(pairs)) {
			t.Errorf("invocations = %d, want %d", packed.Invocations(), len(pairs))
		}
		// Two active attributes fit one 106-bit-slot ciphertext at 256
		// bits: exactly one decryption per comparison.
		plan, err := spec.packPlan(256)
		if err != nil {
			t.Fatal(err)
		}
		wantDec := int64(len(pairs) * plan.Ciphertexts(len(spec.activeAttrs())))
		if packed.Decryptions() != wantDec {
			t.Errorf("decryptions = %d, want %d", packed.Decryptions(), wantDec)
		}
		packedBytes := packed.ResultBytes()
		packed.Close()

		unspec := testSpec()
		unspec.ShuffleAttributes = shuffle
		unpacked, err := NewLocalSecure(unspec, alice, bob, testKeyBits)
		if err != nil {
			t.Fatal(err)
		}
		got = runComparator(t, unpacked, pairs)
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("shuffle=%v pair %v: unpacked %v, oracle %v", shuffle, pairs[k], got[k], want[k])
			}
		}
		if unpacked.Decryptions() != int64(len(pairs)*len(unspec.activeAttrs())) {
			t.Errorf("unpacked decryptions = %d, want %d", unpacked.Decryptions(), len(pairs)*len(unspec.activeAttrs()))
		}
		if unpackedBytes := unpacked.ResultBytes(); packedBytes >= unpackedBytes {
			t.Errorf("shuffle=%v: packed result bytes %d not below unpacked %d", shuffle, packedBytes, unpackedBytes)
		}
		unpacked.Close()
	}
}

// TestPackedShardedMatchesOracle runs the packed sharded engine,
// including the batch path, against the oracle.
func TestPackedShardedMatchesOracle(t *testing.T) {
	alice, bob, pairs := packedRecords()
	plain := NewPlainComparator(testSpec(), alice, bob)
	want := runComparator(t, plain, pairs)

	spec := packedSpec()
	spec.ShuffleAttributes = true
	cmp, err := NewLocalSecureSharded(spec, alice, bob, testKeyBits, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	got, err := cmp.CompareBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("pair %v: packed sharded %v, oracle %v", pairs[k], got[k], want[k])
		}
	}
	if cmp.Invocations() != int64(len(pairs)) {
		t.Errorf("invocations = %d, want %d", cmp.Invocations(), len(pairs))
	}
	if cmp.Decryptions() >= cmp.Invocations()*int64(len(spec.activeAttrs())) {
		t.Errorf("decryptions %d not reduced below attrs×invocations %d",
			cmp.Decryptions(), cmp.Invocations()*int64(len(spec.activeAttrs())))
	}
}

// TestPackedChunksAcrossCiphertexts uses enough active attributes that
// one packed ciphertext cannot hold them all at the test key size, so
// the chunked path (⌈d/slots⌉ > 1) is exercised.
func TestPackedChunksAcrossCiphertexts(t *testing.T) {
	spec := &Spec{
		Scale:   1,
		Packing: PackingPacked,
		Attrs: []AttrSpec{
			{Mode: ModeEquality},
			{Mode: ModeThreshold, T: 16},
			{Mode: ModeEquality},
			{Mode: ModeThreshold, T: 4},
			{Mode: ModeEquality},
		},
	}
	plan, err := spec.packPlan(testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ciphertexts(len(spec.activeAttrs())) < 2 {
		t.Fatalf("want a chunked plan at %d bits, got %d slots for %d attrs",
			testKeyBits, plan.Slots, len(spec.activeAttrs()))
	}
	alice := [][]int64{{1, 10, 2, 5, 3}, {4, -8, 2, 0, 3}}
	bob := [][]int64{{1, 13, 2, 4, 3}, {1, 10, 2, 5, 9}, {4, -6, 2, 2, 3}}
	unpackedSpec := *spec
	unpackedSpec.Packing = PackingOff
	plain := NewPlainComparator(&unpackedSpec, alice, bob)

	cmp, err := NewLocalSecure(spec, alice, bob, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	for i := range alice {
		for j := range bob {
			want, _ := plain.Compare(i, j)
			got, err := cmp.Compare(i, j)
			if err != nil {
				t.Fatalf("Compare(%d,%d): %v", i, j, err)
			}
			if got != want {
				t.Errorf("pair (%d,%d): packed %v, oracle %v", i, j, got, want)
			}
		}
	}
}

// TestPackedRevealDistanceIgnored: RevealDistance needs positional
// per-attribute distances, so packing must be silently inert there.
func TestPackedRevealDistanceIgnored(t *testing.T) {
	spec := packedSpec()
	spec.RevealDistance = true
	if spec.packActive() {
		t.Fatal("packing should be inert under RevealDistance")
	}
	alice, bob, pairs := packedRecords()
	plain := NewPlainComparator(testSpec(), alice, bob)
	want := runComparator(t, plain, pairs)
	cmp, err := NewLocalSecure(spec, alice, bob, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	defer cmp.Close()
	got := runComparator(t, cmp, pairs)
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("pair %v: reveal-distance %v, oracle %v", pairs[k], got[k], want[k])
		}
	}
}

// TestPackedRejectsOversizedRecords: the fail-fast magnitude check fires
// at construction, before any ciphertext is built.
func TestPackedRejectsOversizedRecords(t *testing.T) {
	spec := packedSpec()
	spec.ValueBits = 8
	bad := [][]int64{{1, 300, 0}} // 300 ≥ 2^8 on an active attribute
	ok := [][]int64{{1, 5, 0}}
	if _, err := NewLocalSecure(spec, bad, ok, testKeyBits); err == nil || !strings.Contains(err.Error(), "packing bound") {
		t.Errorf("serial alice error = %v, want packing-bound complaint", err)
	}
	if _, err := NewLocalSecure(spec, ok, bad, testKeyBits); err == nil || !strings.Contains(err.Error(), "packing bound") {
		t.Errorf("serial bob error = %v, want packing-bound complaint", err)
	}
	if _, err := NewLocalSecureSharded(spec, bad, ok, testKeyBits, 2); err == nil || !strings.Contains(err.Error(), "packing bound") {
		t.Errorf("sharded error = %v, want packing-bound complaint", err)
	}
	// ModeAlways attributes exchange no ciphertexts and are exempt.
	exempt := [][]int64{{1, 5, 1 << 40}}
	cmp, err := NewLocalSecure(spec, exempt, ok, testKeyBits)
	if err != nil {
		t.Errorf("ModeAlways value should be exempt from the bound: %v", err)
	} else {
		cmp.Close()
	}
}

// TestPackedPlanInfeasibleFailsFast: a slot width beyond the modulus is
// an immediate construction error, not a hang or a wrong verdict.
func TestPackedPlanInfeasibleFailsFast(t *testing.T) {
	spec := packedSpec()
	spec.ValueBits = 120 // w = 40 + 242 + 4 ≫ 256
	alice, bob, _ := packedRecords()
	if _, err := NewLocalSecure(spec, alice, bob, testKeyBits); err == nil || !strings.Contains(err.Error(), "slots") {
		t.Errorf("error = %v, want infeasible-slot complaint", err)
	}
}

// TestPackedQueryRejectsWrongArity: a packed result with the unpacked
// ciphertext count (or any other wrong count) is malformed.
func TestPackedQueryRejectsWrongArity(t *testing.T) {
	spec := packedSpec() // 2 active attrs → 1 packed ciphertext expected
	qa, aq := NewConnPair()
	qb, bq := NewConnPair()
	go func() {
		aq.Recv()
		aq.Recv()
	}()
	go func() {
		bq.Recv()
		bq.Recv()
		bq.Send(&Message{Kind: MsgResult, Res: []*big.Int{big.NewInt(5), big.NewInt(6)}})
	}()
	q, err := NewQuerySession(qa, qb, spec, testKeyBits)
	if err != nil {
		t.Fatal(err)
	}
	if !q.packed || q.plan.Ciphertexts(len(spec.activeAttrs())) != 1 {
		t.Fatalf("expected a packed session wanting 1 ciphertext, got packed=%v plan=%+v", q.packed, q.plan)
	}
	if _, err := q.Compare(0, 0); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("error = %v, want malformed-result complaint", err)
	}
}
